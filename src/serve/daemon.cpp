#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <iomanip>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "serve/snapshot.hpp"
#include "stream/io_elements.hpp"
#include "stream/scheduler.hpp"

namespace ff::serve {

namespace {

/// Thrown out of on_round to unwind a session the daemon asked to stop.
struct SessionAborted {};

/// A control client streaming bytes without newlines is garbage, not a
/// command; cut it off before the buffer grows without bound.
constexpr std::size_t kMaxCtlLine = 1 << 16;

/// How long a queued element command may wait for a session quiescent
/// point before its client gets `err timeout`. Reference rounds tick at
/// worst every SocketSource poll_ms (~50 ms), so 2 s only fires on a
/// genuinely wedged session. The wait is serviced from the driver loop
/// (service_ctl_replies), never blocked on.
constexpr auto kCtlReplyTimeout = std::chrono::seconds(2);

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      // Control characters (errno/detail strings can carry tabs or
      // newlines) would make the FFERR line invalid JSON if passed raw.
      char esc[8];
      std::snprintf(esc, sizeof esc, "\\u%04x", u);
      out += esc;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

RelayDaemon::RelayDaemon(DaemonConfig cfg) : cfg_(std::move(cfg)) {
  metrics_ = cfg_.metrics != nullptr ? cfg_.metrics : &own_metrics_;
  FF_CHECK_MSG(!cfg_.graph_text.empty(), "RelayDaemon: empty graph description");
  FF_CHECK_MSG(cfg_.batch_size >= 1, "RelayDaemon: batch_size must be >= 1");
  spec_ = stream::parse_graph(cfg_.graph_text, cfg_.graph_source);

  // Probe build: instantiate + configure the whole graph (and apply the
  // presets) once up front, so a bad class name, parameter, or preset fails
  // at daemon startup with a source-located error, not at the first client.
  stream::Graph probe;
  const std::vector<stream::Element*> elems = stream::build_graph(
      probe, spec_, stream::ElementRegistry::builtin(), cfg_.default_capacity);
  for (const eval::HandlerWrite& w : cfg_.presets) {
    const stream::Handler& h = probe.handler(w.element, w.handler);
    FF_CHECK_MSG(h.writable(),
                 "preset " << w.element << "." << w.handler << " is not writable");
    h.write(w.value);
  }

  // Discover the listen-mode socket endpoints the daemon will own. Connect-
  // mode (dial-out) socket elements keep managing themselves per session.
  std::set<std::string> endpoints;
  if (!cfg_.control.empty())
    endpoints.insert(stream::parse_endpoint("control endpoint", cfg_.control).text());
  for (stream::Element* e : elems) {
    SocketPort port;
    if (auto* src = dynamic_cast<stream::SocketSource*>(e)) {
      if (!src->listening()) continue;
      FF_CHECK_MSG(src->endpoint().has_value(),
                   "RelayDaemon: listening SocketSource '" << src->name()
                                                           << "' has no endpoint=");
      port = SocketPort{src->name(), *src->endpoint(), /*is_source=*/true};
    } else if (auto* sink = dynamic_cast<stream::SocketSink*>(e)) {
      if (!sink->listening()) continue;
      FF_CHECK_MSG(sink->endpoint().has_value(),
                   "RelayDaemon: listening SocketSink '" << sink->name()
                                                         << "' has no endpoint=");
      port = SocketPort{sink->name(), *sink->endpoint(), /*is_source=*/false};
    } else {
      continue;
    }
    FF_CHECK_MSG(endpoints.insert(port.endpoint.text()).second,
                 "RelayDaemon: endpoint " << port.endpoint.text()
                                          << " used more than once ('" << port.element
                                          << "')");
    ports_.push_back(std::move(port));
  }
}

RelayDaemon::~RelayDaemon() {
  // Normal teardown happens at the end of run(); this only covers run()
  // unwinding on an exception with a session still alive.
  if (session_ && session_->thread.joinable()) {
    abort_session();
    session_->thread.join();
  }
}

void RelayDaemon::log(const std::string& line) const {
  if (cfg_.log)
    cfg_.log(line);
  else
    std::fprintf(stderr, "ffrelayd: %s\n", line.c_str());
}

void RelayDaemon::run() {
  start_time_ = std::chrono::steady_clock::now();
  next_snapshot_ =
      start_time_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(cfg_.snapshot_period_s));

  for (const SocketPort& p : ports_) {
    data_listeners_.push_back(stream::wire_listen(p.endpoint));
    log("listening on " + p.endpoint.text() + " (" + p.element + ")");
  }
  if (!cfg_.control.empty()) {
    control_listener_ =
        stream::wire_listen(stream::parse_endpoint("control endpoint", cfg_.control));
    log("control on " + cfg_.control);
  }

  while (true) {
    reap_session();
    // Break even with a session in flight: the post-loop block aborts it
    // (shutting down its data connections unblocks socket I/O) and joins,
    // so request_stop()/SIGINT never hangs on a quiet peer.
    if (stopping()) break;
    // --once / --max-sessions: once the quota of sessions has been started
    // and the last one reaped, there is nothing left to serve.
    if (!session_ && cfg_.max_sessions != 0 && sessions_started_ >= cfg_.max_sessions)
      break;
    maybe_start_session();
    poll_once(/*timeout_ms=*/50);
    service_ctl_replies();
    maybe_periodic_snapshot();
  }

  if (session_) {
    abort_session();
    if (session_->thread.joinable()) session_->thread.join();
    reap_session();
  }
  flush_ctl_queue("no-session", "daemon shutting down");
  // Deliver the flushed answers before dropping the control clients, so a
  // command caught by the shutdown gets `err no-session`, not silence.
  service_ctl_replies();
  write_snapshot("shutdown");

  ctl_clients_.clear();
  pending_.clear();
  control_listener_.reset();
  data_listeners_.clear();
  if (!cfg_.control.empty()) {
    const stream::WireEndpoint ep =
        stream::parse_endpoint("control endpoint", cfg_.control);
    if (ep.kind == stream::WireEndpoint::Kind::kUnix) ::unlink(ep.path.c_str());
  }
  for (const SocketPort& p : ports_)
    if (p.endpoint.kind == stream::WireEndpoint::Kind::kUnix)
      ::unlink(p.endpoint.path.c_str());
  log("shutdown complete: " + stats_line());
}

void RelayDaemon::maybe_start_session() {
  if (session_ || stopping()) return;
  if (cfg_.max_sessions != 0 && sessions_started_ >= cfg_.max_sessions) return;
  for (const SocketPort& p : ports_)
    if (pending_.find(p.element) == pending_.end()) return;

  auto s = std::make_unique<Session>();
  s->id = sessions_started_ + 1;
  stream::build_graph(s->graph, spec_, stream::ElementRegistry::builtin(),
                      cfg_.default_capacity);
  // Presets were validated against the probe graph in the constructor, so
  // these writes cannot fail on a well-formed session graph.
  for (const eval::HandlerWrite& w : cfg_.presets)
    s->graph.handler(w.element, w.handler).write(w.value);
  for (const SocketPort& p : ports_) {
    auto it = pending_.find(p.element);
    stream::OwnedFd conn = std::move(it->second.fd);
    pending_.erase(it);
    // Raw fd recorded for abort_session(): the element keeps the fd open
    // until the graph dies, which is strictly after the thread join, so a
    // later shutdown(2) on it can never hit a recycled descriptor.
    s->data_fds.push_back(conn.get());
    stream::Element& e = s->graph.at(p.element);
    if (p.is_source) {
      auto* src = dynamic_cast<stream::SocketSource*>(&e);
      FF_CHECK_MSG(src != nullptr, "element '" << p.element << "' is not a SocketSource");
      src->adopt_connection(std::move(conn));
    } else {
      auto* sink = dynamic_cast<stream::SocketSink*>(&e);
      FF_CHECK_MSG(sink != nullptr, "element '" << p.element << "' is not a SocketSink");
      sink->adopt_connection(std::move(conn));
    }
  }

  ++sessions_started_;
  metrics_->add("serve.sessions_started");
  metrics_->set("serve.session_active", 1.0);
  log("session " + std::to_string(s->id) + " started (mode=" +
      (cfg_.throughput ? "throughput" : "reference") + ")");
  Session* raw = s.get();
  session_ = std::move(s);
  session_->thread = std::thread([this, raw] { session_body(*raw); });
}

void RelayDaemon::session_body(Session& s) {
  try {
    stream::SchedulerConfig sc;
    sc.threads = cfg_.threads;
    sc.metrics = metrics_;
    sc.batch_size = cfg_.batch_size;
    sc.mode = cfg_.throughput ? stream::SchedulerMode::kThroughput
                              : stream::SchedulerMode::kReference;
    // No watchdog: a daemon session idling on a quiet peer is normal.
    sc.watchdog_ms = 0.0;
    if (!cfg_.throughput) {
      sc.on_round = [this, &s](std::uint64_t) {
        if (s.abort.load(std::memory_order_relaxed)) throw SessionAborted{};
        drain_ctl_queue(s.graph);
      };
    }
    stream::Scheduler sched(s.graph, std::move(sc));
    sched.run();
    // A throughput-mode abort unwinds by EOF (abort_session shuts the data
    // connections down), which can look like a clean completion here.
    if (s.abort.load(std::memory_order_relaxed)) s.error = "aborted by shutdown";
  } catch (const SessionAborted&) {
    s.error = "aborted by shutdown";
  } catch (const std::exception& e) {
    s.error = s.abort.load(std::memory_order_relaxed) ? "aborted by shutdown"
                                                      : std::string(e.what());
  }
  s.done.store(true, std::memory_order_release);
}

void RelayDaemon::reap_session() {
  if (!session_ || !session_->done.load(std::memory_order_acquire)) return;
  if (session_->thread.joinable()) session_->thread.join();
  if (session_->error.empty()) {
    ++sessions_completed_;
    metrics_->add("serve.sessions_completed");
    log("session " + std::to_string(session_->id) + " completed");
  } else {
    ++sessions_aborted_;
    metrics_->add("serve.sessions_aborted");
    log("session " + std::to_string(session_->id) + " failed: " + session_->error);
  }
  metrics_->set("serve.session_active", 0.0);
  flush_ctl_queue("no-session", "session ended before the command ran");
  session_.reset();
  write_snapshot("session-end");
}

void RelayDaemon::abort_session() {
  if (!session_ || session_->abort.exchange(true)) return;
  // Reference mode notices the flag at the next round; blocked socket I/O
  // (both modes) is unblocked by shutting the connections down, which the
  // elements observe as EOF / send failure.
  for (const int fd : session_->data_fds) ::shutdown(fd, SHUT_RDWR);
  log("session " + std::to_string(session_->id) + " abort requested");
}

void RelayDaemon::poll_once(int timeout_ms) {
  struct Entry {
    int fd;
    enum { kCtlListener, kCtlClient, kPendingPeer, kDataListener } type;
    std::size_t index;
    std::string elem;  // kPendingPeer: the pending_ key
  };
  std::vector<Entry> entries;
  if (control_listener_.valid())
    entries.push_back({control_listener_.get(), Entry::kCtlListener, 0, {}});
  for (std::size_t i = 0; i < ctl_clients_.size(); ++i)
    entries.push_back({ctl_clients_[i].fd.get(), Entry::kCtlClient, i, {}});
  // Pending peers are watched for hangup only (events = 0: POLLHUP/POLLERR
  // are always reported), so a peer that dies before its session starts
  // releases the endpoint instead of claiming it forever. Ordered before
  // the data listeners so a reconnect in the same poll round is admitted.
  for (const auto& [elem, peer] : pending_)
    if (!peer.eof_ok) entries.push_back({peer.fd.get(), Entry::kPendingPeer, 0, elem});
  for (std::size_t i = 0; i < data_listeners_.size(); ++i)
    entries.push_back({data_listeners_[i].get(), Entry::kDataListener, i, {}});

  std::vector<pollfd> fds(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i)
    fds[i] = pollfd{entries[i].fd,
                    static_cast<short>(entries[i].type == Entry::kPendingPeer ? 0
                                                                              : POLLIN),
                    0};
  // No sockets at all (no control plane, no socket elements): plain sleep
  // so back-to-back sessions still pace the loop.
  const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                        static_cast<nfds_t>(fds.size()), timeout_ms);
  if (rc <= 0) return;  // timeout or EINTR: the driver loop comes round again

  std::vector<std::size_t> drop;  // ctl_clients_ indices to remove
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    switch (entries[i].type) {
      case Entry::kCtlListener:
        ctl_clients_.emplace_back();
        ctl_clients_.back().fd = stream::wire_accept(control_listener_.get());
        break;
      case Entry::kCtlClient: {
        char buf[4096];
        const ssize_t n = ::recv(entries[i].fd, buf, sizeof buf, 0);
        if (n <= 0) {
          drop.push_back(entries[i].index);
          break;
        }
        CtlClient& client = ctl_clients_[entries[i].index];
        client.lines.append(buf, static_cast<std::size_t>(n));
        if (client.lines.pending() > kMaxCtlLine) {
          drop.push_back(entries[i].index);
          break;
        }
        if (!pump_ctl_client(client)) drop.push_back(entries[i].index);
        break;
      }
      case Entry::kPendingPeer: {
        auto it = pending_.find(entries[i].elem);
        if (it == pending_.end()) break;
        char probe = 0;
        const ssize_t n = ::recv(it->second.fd.get(), &probe, 1,
                                 MSG_PEEK | MSG_DONTWAIT);
        if (n > 0) {
          // The peer delivered bytes and hung up: the buffered stream is
          // still a complete session input, so the claim stands (and the
          // fd leaves the poll set — its state can no longer change).
          it->second.eof_ok = true;
        } else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
          log("waiting peer on " + entries[i].elem +
              " disconnected before session start; endpoint released");
          pending_.erase(it);
        }
        break;
      }
      case Entry::kDataListener:
        accept_data_client(entries[i].index);
        break;
    }
  }
  for (auto it = drop.rbegin(); it != drop.rend(); ++it)
    ctl_clients_.erase(ctl_clients_.begin() + static_cast<std::ptrdiff_t>(*it));
}

void RelayDaemon::accept_data_client(std::size_t port_index) {
  stream::OwnedFd conn = stream::wire_accept(data_listeners_[port_index].get());
  const SocketPort& port = ports_[port_index];

  std::string reject;
  if (stopping())
    reject = "daemon shutting down";
  else if (session_)
    reject = "a relay session is already in progress";
  else if (pending_.find(port.element) != pending_.end())
    reject = "endpoint already claimed by a waiting peer";
  if (!reject.empty()) {
    ++admission_rejected_;
    metrics_->add("serve.admission_rejected");
    log("rejected peer on " + port.endpoint.text() + ": " + reject);
    try {
      stream::wire_send_text(
          conn.get(), "FFERR {\"code\":\"busy\",\"endpoint\":\"" +
                          json_escape(port.endpoint.text()) + "\",\"element\":\"" +
                          json_escape(port.element) + "\",\"detail\":\"" +
                          json_escape(reject) + "\"}\n");
    } catch (const std::exception&) {
      // Peer already hung up; the rejection line is best-effort.
    }
    return;
  }
  pending_[port.element] = PendingPeer{std::move(conn)};
  log("peer connected on " + port.endpoint.text() + " (" + port.element + ")");
}

std::string RelayDaemon::handle_control_line(CtlClient& client,
                                             const std::string& line) {
  if (line.empty()) return "";
  metrics_->add("serve.control.commands");

  ControlCommand cmd;
  std::string error;
  if (!parse_control_line(line, cmd, error)) return err_response("bad-command", error);

  using Verb = ControlCommand::Verb;
  switch (cmd.verb) {
    case Verb::kPing:
      return ok_response("pong");
    case Verb::kStats:
      return ok_response(stats_line());
    case Verb::kElements:
      return ok_response(elements_line());
    case Verb::kShutdown:
      stop_.store(true, std::memory_order_relaxed);
      return ok_response("shutting-down");
    case Verb::kSnapshot:
      if (cfg_.snapshot_path.empty())
        return err_response("bad-command", "no snapshot path configured (--snapshot)");
      try {
        write_snapshot_atomic(*metrics_, cfg_.snapshot_path);
        metrics_->add("serve.snapshots_written");
        return ok_response(cfg_.snapshot_path);
      } catch (const std::exception& e) {
        return err_response("io-error", e.what());
      }
    case Verb::kRead:
    case Verb::kWrite:
      break;  // queued below
  }

  if (!session_) return err_response("no-session", "no relay session is running");
  if (cfg_.throughput)
    return err_response("busy",
                        "throughput sessions have no quiescent point; element "
                        "commands need --mode reference");
  auto req = std::make_unique<CtlRequest>();
  req->cmd = cmd;
  client.pending = req->reply.get_future();
  client.pending_deadline = std::chrono::steady_clock::now() + kCtlReplyTimeout;
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    ctl_queue_.push_back(std::move(req));
  }
  return "";  // answered by service_ctl_replies() once the session executes it
}

void RelayDaemon::send_ctl_response(CtlClient& client, const std::string& resp) {
  if (resp.rfind("err ", 0) == 0) metrics_->add("serve.control.errors");
  stream::wire_send_text(client.fd.get(), resp);
}

bool RelayDaemon::pump_ctl_client(CtlClient& client) {
  try {
    std::string line;
    while (!client.pending.valid() && client.lines.next_line(line)) {
      const std::string resp = handle_control_line(client, line);
      if (!resp.empty()) send_ctl_response(client, resp);
    }
  } catch (const std::exception&) {
    return false;  // response write failed: the peer is gone
  }
  return true;
}

void RelayDaemon::service_ctl_replies() {
  std::vector<std::size_t> drop;
  for (std::size_t i = 0; i < ctl_clients_.size(); ++i) {
    CtlClient& client = ctl_clients_[i];
    if (!client.pending.valid()) continue;
    std::string resp;
    if (client.pending.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      resp = client.pending.get();
      client.pending = {};
    } else if (std::chrono::steady_clock::now() >= client.pending_deadline) {
      // The request stays queued; the session (or the reap path) settles
      // the abandoned promise later, harmlessly — only this response gives
      // up on waiting.
      client.pending = {};
      resp = err_response("timeout", "session did not reach a quiescent point");
    } else {
      continue;
    }
    bool alive = true;
    try {
      send_ctl_response(client, resp);
    } catch (const std::exception&) {
      alive = false;
    }
    // The reply unblocks this client's line queue; later commands may have
    // accumulated behind it.
    if (alive) alive = pump_ctl_client(client);
    if (!alive) drop.push_back(i);
  }
  for (auto it = drop.rbegin(); it != drop.rend(); ++it)
    ctl_clients_.erase(ctl_clients_.begin() + static_cast<std::ptrdiff_t>(*it));
}

std::string RelayDaemon::exec_element_command(stream::Graph& g,
                                              const ControlCommand& cmd) {
  stream::Element* e = g.find(cmd.element);
  if (e == nullptr)
    return err_response("no-element", "no element named '" + cmd.element + "'");
  const stream::Handler* h = e->handlers().find(cmd.handler);
  if (h == nullptr)
    return err_response("no-handler",
                        cmd.element + " has no handler '" + cmd.handler + "'");
  try {
    if (cmd.verb == ControlCommand::Verb::kRead) {
      if (!h->readable())
        return err_response("not-readable", cmd.element + "." + cmd.handler);
      return ok_response(h->read());
    }
    if (!h->writable())
      return err_response("not-writable", cmd.element + "." + cmd.handler);
    h->write(cmd.value);
    return ok_response();
  } catch (const std::exception& e2) {
    return err_response("bad-value", e2.what());
  }
}

void RelayDaemon::drain_ctl_queue(stream::Graph& g) {
  for (;;) {
    std::unique_ptr<CtlRequest> req;
    {
      std::lock_guard<std::mutex> lock(ctl_mu_);
      if (ctl_queue_.empty()) return;
      req = std::move(ctl_queue_.front());
      ctl_queue_.pop_front();
    }
    req->reply.set_value(exec_element_command(g, req->cmd));
  }
}

void RelayDaemon::flush_ctl_queue(const std::string& code, const std::string& detail) {
  for (;;) {
    std::unique_ptr<CtlRequest> req;
    {
      std::lock_guard<std::mutex> lock(ctl_mu_);
      if (ctl_queue_.empty()) return;
      req = std::move(ctl_queue_.front());
      ctl_queue_.pop_front();
    }
    req->reply.set_value(err_response(code, detail));
  }
}

std::string RelayDaemon::stats_line() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_)
          .count();
  std::ostringstream os;
  os << "sessions_started=" << sessions_started_
     << " sessions_completed=" << sessions_completed_
     << " sessions_aborted=" << sessions_aborted_
     << " rejected=" << admission_rejected_ << " active=" << (session_ ? 1 : 0)
     << " pending=" << pending_.size() << " uptime_s=" << std::fixed
     << std::setprecision(1) << uptime_s;
  return os.str();
}

std::string RelayDaemon::elements_line() const {
  std::string out;
  for (const stream::ElementDecl& d : spec_.decls) {
    if (!out.empty()) out += ',';
    out += d.name + ":" + d.class_name;
  }
  return out;
}

void RelayDaemon::write_snapshot(const char* reason) {
  if (cfg_.snapshot_path.empty()) return;
  try {
    write_snapshot_atomic(*metrics_, cfg_.snapshot_path);
    metrics_->add("serve.snapshots_written");
  } catch (const std::exception& e) {
    // A broken snapshot path must not take the relay down with it.
    log(std::string("snapshot (") + reason + ") failed: " + e.what());
  }
}

void RelayDaemon::maybe_periodic_snapshot() {
  if (cfg_.snapshot_path.empty() || cfg_.snapshot_period_s <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now < next_snapshot_) return;
  write_snapshot("periodic");
  next_snapshot_ =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(cfg_.snapshot_period_s));
}

}  // namespace ff::serve
