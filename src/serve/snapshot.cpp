#include "serve/snapshot.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace ff::serve {

void write_snapshot_atomic(const MetricsRegistry& registry, const std::string& path) {
  FF_CHECK_MSG(!path.empty(), "snapshot path must not be empty");
  const std::string json = registry.snapshot().to_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  FF_CHECK_MSG(f != nullptr, "snapshot: cannot open '" << tmp << "'");
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool write_ok = n == json.size() && std::fflush(f) == 0;
  std::fclose(f);
  FF_CHECK_MSG(write_ok, "snapshot: short write to '" << tmp << "'");
  FF_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "snapshot: rename '" << tmp << "' -> '" << path << "' failed");
}

}  // namespace ff::serve
