#include "serve/control.hpp"

#include <cctype>

namespace ff::serve {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Split `elem.handler` at the first '.'; false when either half is empty.
bool split_target(const std::string& target, ControlCommand& out) {
  const auto dot = target.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == target.size()) return false;
  out.element = target.substr(0, dot);
  out.handler = target.substr(dot + 1);
  return true;
}

}  // namespace

bool parse_control_line(const std::string& line, ControlCommand& out,
                        std::string& error) {
  const std::string text = trim(line);
  const auto sp = text.find(' ');
  const std::string verb = sp == std::string::npos ? text : text.substr(0, sp);
  const std::string rest = sp == std::string::npos ? "" : trim(text.substr(sp + 1));

  if (verb == "ping" || verb == "stats" || verb == "elements" ||
      verb == "snapshot" || verb == "shutdown") {
    if (!rest.empty()) {
      error = "'" + verb + "' takes no arguments";
      return false;
    }
    out.verb = verb == "ping"       ? ControlCommand::Verb::kPing
               : verb == "stats"    ? ControlCommand::Verb::kStats
               : verb == "elements" ? ControlCommand::Verb::kElements
               : verb == "snapshot" ? ControlCommand::Verb::kSnapshot
                                    : ControlCommand::Verb::kShutdown;
    return true;
  }
  if (verb == "read") {
    out.verb = ControlCommand::Verb::kRead;
    if (rest.empty() || !split_target(rest, out)) {
      error = "usage: read <elem>.<handler>";
      return false;
    }
    return true;
  }
  if (verb == "write") {
    out.verb = ControlCommand::Verb::kWrite;
    const auto vsp = rest.find(' ');
    const std::string target = vsp == std::string::npos ? rest : rest.substr(0, vsp);
    if (target.empty() || !split_target(target, out)) {
      error = "usage: write <elem>.<handler> <value>";
      return false;
    }
    out.value = vsp == std::string::npos ? "" : trim(rest.substr(vsp + 1));
    return true;
  }
  error = text.empty() ? "empty command"
                       : "unknown command '" + verb +
                             "' (ping|stats|elements|read|write|snapshot|shutdown)";
  return false;
}

std::string ok_response(const std::string& payload) {
  return payload.empty() ? "ok\n" : "ok " + payload + "\n";
}

std::string err_response(const std::string& code, const std::string& detail) {
  std::string flat;
  flat.reserve(detail.size());
  for (const char c : detail) flat.push_back(c == '\n' || c == '\r' ? ' ' : c);
  return "err " + code + (flat.empty() ? "" : " " + flat) + "\n";
}

bool LineBuffer::next_line(std::string& out) {
  const auto nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  out = buf_.substr(0, nl);
  if (!out.empty() && out.back() == '\r') out.pop_back();
  buf_.erase(0, nl + 1);
  return true;
}

}  // namespace ff::serve
