// Atomic ff-metrics-v1 snapshot files: ffrelayd's periodic telemetry export.
//
// A long-running daemon can't wait for exit to dump metrics, and a scraper
// reading the file mid-write must never see half a JSON document. So the
// writer renders the full snapshot to `<path>.tmp` and rename(2)s it over
// `<path>` — readers always observe either the previous complete snapshot
// or the new complete snapshot, never a torn one (rename within a
// filesystem is atomic on POSIX).
#pragma once

#include <string>

#include "common/telemetry.hpp"

namespace ff::serve {

/// Render `registry` as ff-metrics-v1 JSON and atomically replace `path`
/// with it (tmp file + rename). FF_CHECK on I/O failure.
void write_snapshot_atomic(const MetricsRegistry& registry, const std::string& path);

}  // namespace ff::serve
