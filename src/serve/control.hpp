// ffrelayd's control-plane line protocol: the runtime introspection surface
// of PR 7's read/write handlers, served over a socket.
//
// A control client connects to the daemon's control endpoint and exchanges
// newline-terminated text, one command per line, one response line per
// command (in order):
//
//   ping                        -> ok pong
//   stats                       -> ok sessions=N active=0|1 ...
//   elements                    -> ok src:PacketSource,relay:Pipeline,...
//   read <elem>.<handler>       -> ok <value>
//   write <elem>.<handler> <v>  -> ok
//   snapshot                    -> ok <path>      (forces a metrics write)
//   shutdown                    -> ok shutting-down
//
// Errors are `err <code> <detail>` lines; codes are stable strings
// (bad-command, no-session, no-element, no-handler, not-readable,
// not-writable, bad-value, timeout, busy, io-error). `write` takes the rest of the
// line verbatim as the value, so complex values like (0.9,-0.2) pass
// through unquoted. The daemon executes element commands only at scheduler
// quiescent points (docs/DAEMON.md), which is what makes a live `write
// src_cfo.set_cfo 200` exactly as safe as `--set` at startup.
#pragma once

#include <string>

namespace ff::serve {

struct ControlCommand {
  enum class Verb { kPing, kStats, kElements, kRead, kWrite, kSnapshot, kShutdown };
  Verb verb = Verb::kPing;
  std::string element;  // kRead / kWrite
  std::string handler;  // kRead / kWrite
  std::string value;    // kWrite: rest of line, verbatim
};

/// Parse one command line (no trailing newline). On failure returns false
/// and fills `error` with the detail for an `err bad-command` response.
bool parse_control_line(const std::string& line, ControlCommand& out,
                        std::string& error);

/// `ok\n` or `ok <payload>\n`.
std::string ok_response(const std::string& payload = "");
/// `err <code> <detail>\n` (detail has newlines stripped).
std::string err_response(const std::string& code, const std::string& detail);

/// Splits a byte stream into lines: append() raw reads, next_line() pops
/// complete lines (without the terminator; a trailing '\r' is dropped so
/// `nc -C` works too).
class LineBuffer {
 public:
  void append(const char* data, std::size_t n) { buf_.append(data, n); }
  bool next_line(std::string& out);
  /// Guard against a client streaming garbage without newlines.
  std::size_t pending() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace ff::serve
