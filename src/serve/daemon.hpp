// RelayDaemon: the streaming graph packaged as a long-running server — the
// ROADMAP's "relay-as-a-service" item, and the Click userlevel driver's
// role in this codebase (load a declarative graph once, then serve it).
//
// The daemon parses one `.ff` graph at startup and runs it as a sequence of
// SESSIONS. A session is one complete pass of the graph from first block to
// drained channels — the graph object is single-use, so the daemon rebuilds
// it from the spec for every session (cheap: element construction, no DSP).
// Three runtime surfaces hang off the driver loop:
//
//   * data transports — every listen-mode SocketSource/SocketSink in the
//     graph gets its listener OWNED BY THE DAEMON. A session starts when
//     every such endpoint has an accepted peer; the connections are adopted
//     into the freshly built graph (io_elements.hpp). Admission control is
//     one-session-at-a-time: a connection arriving while a session is in
//     progress (or while its endpoint already has a waiting peer) is
//     rejected with a structured `FFERR {...}` line and closed, instead of
//     being silently queued into a stream it will never join. Graphs with
//     no socket endpoints run sessions back-to-back (bounded by
//     max_sessions).
//
//   * control plane — a line protocol (serve/control.hpp) on its own
//     socket. Element read/write commands are executed ONLY at scheduler
//     quiescent points: the driver enqueues the request and the session's
//     on_round callback (reference mode) executes it between rounds, so a
//     live `write src_cfo.set_cfo 200` is exactly as safe as `--set` at
//     startup. Throughput-mode sessions have no global quiescent point and
//     answer `err busy` for element commands (stats/snapshot still work).
//
//   * telemetry export — the daemon-lifetime MetricsRegistry (serve.*
//     counters plus every session's stream.* metrics, accumulated) is
//     written atomically as ff-metrics-v1 every snapshot_period_s and at
//     every session boundary (serve/snapshot.hpp), not only at exit.
//
// Threading: the driver loop owns sockets and admission; each session runs
// in one std::thread (which itself fans out per SchedulerConfig). The
// MetricsRegistry is thread-safe by per-thread sharding; element state is
// only ever touched from the session thread at quiescent points.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.hpp"
#include "eval/cli.hpp"
#include "serve/control.hpp"
#include "stream/graph.hpp"
#include "stream/lang.hpp"
#include "stream/wire.hpp"

namespace ff::serve {

struct DaemonConfig {
  /// The graph description (lang.hpp text) and its name for diagnostics.
  std::string graph_text;
  std::string graph_source = "<graph>";

  /// Control-plane endpoint (unix:<path> | tcp:<host>:<port>); "" = none.
  std::string control;

  /// Periodic ff-metrics-v1 snapshot file; "" = no snapshot export.
  std::string snapshot_path;
  double snapshot_period_s = 5.0;

  /// Scheduler selection per session (SchedulerConfig semantics). The
  /// watchdog is disabled: a daemon session idling on a quiet peer is
  /// normal, not a deadlock.
  bool throughput = false;
  std::size_t threads = 1;
  std::size_t batch_size = 1;
  std::size_t default_capacity = stream::Graph::kDefaultChannelCapacity;

  /// Stop after this many sessions (0 = serve until shutdown). The --once
  /// flag of ffrelayd is max_sessions = 1.
  std::uint64_t max_sessions = 0;

  /// Write handlers applied to every freshly built session graph before it
  /// runs (the --set surface). Validated against the graph at construction.
  std::vector<eval::HandlerWrite> presets;

  /// Telemetry sink for serve.* and all session stream.* metrics. nullptr =
  /// the daemon owns a private registry (snapshots still work).
  MetricsRegistry* metrics = nullptr;

  /// Log line sink; nullptr = stderr prefixed "ffrelayd: ".
  std::function<void(const std::string&)> log;
};

class RelayDaemon {
 public:
  /// Parses and validates the graph (a probe instance is built and the
  /// presets applied to it, so configuration errors fail HERE, not at the
  /// first client). FF_CHECK on any error.
  explicit RelayDaemon(DaemonConfig cfg);
  ~RelayDaemon();

  RelayDaemon(const RelayDaemon&) = delete;
  RelayDaemon& operator=(const RelayDaemon&) = delete;

  /// Serve until `shutdown` (control plane), request_stop(), or
  /// max_sessions completed sessions. Returns normally on clean shutdown.
  void run();

  /// Ask the driver loop to wind down (safe from a signal handler: one
  /// relaxed atomic store). In-flight reference-mode sessions are aborted
  /// at the next round; socket-fed throughput sessions are unblocked by
  /// shutting down their data connections.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  // ---- observability (driver thread / post-run) ----------------------
  std::uint64_t sessions_started() const { return sessions_started_; }
  std::uint64_t sessions_completed() const { return sessions_completed_; }
  std::uint64_t sessions_aborted() const { return sessions_aborted_; }
  std::uint64_t admission_rejected() const { return admission_rejected_; }

 private:
  /// A listen-mode socket element discovered in the graph spec.
  struct SocketPort {
    std::string element;
    stream::WireEndpoint endpoint;
    bool is_source = false;
  };

  /// One connected control client, its partial-line buffer, and (for an
  /// element command awaiting a quiescent point) the in-flight reply. While
  /// `pending` is valid, further lines from this client stay buffered — the
  /// protocol answers strictly in order — and the driver loop polls the
  /// future instead of blocking on it, so one slow command never stalls
  /// admission, other control clients, or periodic snapshots.
  struct CtlClient {
    stream::OwnedFd fd;
    LineBuffer lines;
    std::future<std::string> pending;
    std::chrono::steady_clock::time_point pending_deadline{};
  };

  /// A data peer accepted before its session starts. `eof_ok` marks a peer
  /// that already sent bytes and hung up (a complete pre-delivered stream):
  /// it keeps its claim but is no longer polled for liveness.
  struct PendingPeer {
    stream::OwnedFd fd;
    bool eof_ok = false;
  };

  /// One in-flight session: the single-use graph, its worker thread, and
  /// the raw fds adopted into it (for shutdown(2)-based unblocking; the
  /// elements own the fds and close them when the graph dies, strictly
  /// after thread join).
  struct Session {
    std::uint64_t id = 0;
    stream::Graph graph;
    std::vector<int> data_fds;
    std::thread thread;
    std::atomic<bool> done{false};
    std::atomic<bool> abort{false};
    std::string error;  // set before done; empty = clean completion
  };

  /// An element command awaiting a quiescent point.
  struct CtlRequest {
    ControlCommand cmd;
    std::promise<std::string> reply;
  };

  void log(const std::string& line) const;
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  void maybe_start_session();
  void session_body(Session& s);
  void reap_session();
  void abort_session();

  void poll_once(int timeout_ms);
  void accept_data_client(std::size_t port_index);
  /// Returns the response to send now, or "" when the command was queued
  /// for a quiescent point (service_ctl_replies() delivers it later).
  std::string handle_control_line(CtlClient& client, const std::string& line);
  /// Processes the client's buffered lines while it has no pending reply.
  /// Returns false when the client should be dropped (its peer is gone).
  bool pump_ctl_client(CtlClient& client);
  /// Sends the response and counts err metrics; throws if the peer is gone.
  void send_ctl_response(CtlClient& client, const std::string& resp);
  /// Delivers ready (or timed-out) pending element-command replies.
  void service_ctl_replies();
  std::string exec_element_command(stream::Graph& g, const ControlCommand& cmd);
  void drain_ctl_queue(stream::Graph& g);
  void flush_ctl_queue(const std::string& code, const std::string& detail);

  std::string stats_line() const;
  std::string elements_line() const;
  void write_snapshot(const char* reason);
  void maybe_periodic_snapshot();

  DaemonConfig cfg_;
  stream::GraphSpec spec_;
  std::vector<SocketPort> ports_;
  MetricsRegistry own_metrics_;
  MetricsRegistry* metrics_ = nullptr;

  std::atomic<bool> stop_{false};

  stream::OwnedFd control_listener_;
  std::vector<stream::OwnedFd> data_listeners_;  // parallel to ports_
  std::vector<CtlClient> ctl_clients_;
  std::map<std::string, PendingPeer> pending_;  // element -> waiting peer
  std::unique_ptr<Session> session_;

  std::mutex ctl_mu_;
  std::deque<std::unique_ptr<CtlRequest>> ctl_queue_;

  std::uint64_t sessions_started_ = 0;
  std::uint64_t sessions_completed_ = 0;
  std::uint64_t sessions_aborted_ = 0;
  std::uint64_t admission_rejected_ = 0;

  std::chrono::steady_clock::time_point start_time_{};
  std::chrono::steady_clock::time_point next_snapshot_{};
};

}  // namespace ff::serve
