// The relay's three-channel knowledge base (Sec. 4.2).
//
// For construct-and-forward the relay needs, per AP-client pair:
//   - source->relay   : measured directly from any received AP packet,
//   - relay->client   : measured from client ACKs / poll replies,
//   - source->client  : NOT observable by the relay — snooped from the
//     802.11n/ac sounding feedback (the AP sounds every 50 ms and clients
//     reply with compressed CSI; in LTE the client feeds CSI back anyway).
// By reciprocity and commutativity the same constructive filter serves both
// link directions (footnote 1: the amplification differs per direction).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/types.hpp"

namespace ff::relay {

struct ChannelRecord {
  CVec response;        // per-subcarrier channel estimate
  double timestamp_s = 0.0;
};

class ChannelBook {
 public:
  /// Channel estimates become stale after this long (paper: sounding every
  /// 50 ms, so anything older than a few periods is distrusted).
  explicit ChannelBook(double max_age_s = 0.2) : max_age_s_(max_age_s) {}

  void update_source_relay(std::uint32_t client, CVec h, double now_s);
  void update_relay_client(std::uint32_t client, CVec h, double now_s);
  void update_source_client(std::uint32_t client, CVec h, double now_s);

  /// Fresh (non-stale) estimates, or nullopt.
  std::optional<CVec> source_relay(std::uint32_t client, double now_s) const;
  std::optional<CVec> relay_client(std::uint32_t client, double now_s) const;
  std::optional<CVec> source_client(std::uint32_t client, double now_s) const;

  /// True when all three channels are known and fresh — i.e. the relay may
  /// constructively forward for this client. Otherwise it must stay silent
  /// (a false-negative costs nothing, Sec. 6).
  bool ready(std::uint32_t client, double now_s) const;

  std::size_t known_clients() const { return relay_client_.size(); }

 private:
  std::optional<CVec> lookup(const std::map<std::uint32_t, ChannelRecord>& m,
                             std::uint32_t client, double now_s) const;

  double max_age_s_;
  std::map<std::uint32_t, ChannelRecord> source_relay_;
  std::map<std::uint32_t, ChannelRecord> relay_client_;
  std::map<std::uint32_t, ChannelRecord> source_client_;
};

}  // namespace ff::relay
