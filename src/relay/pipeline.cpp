#include "relay/pipeline.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::relay {

ForwardPipeline::ForwardPipeline(PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      cfo_remove_(-cfg_.cfo_hz, cfg_.sample_rate_hz),
      cfo_restore_(cfg_.restore_cfo ? cfg_.cfo_hz : 0.0, cfg_.sample_rate_hz),
      prefilter_(cfg_.prefilter),
      tx_filter_(cfg_.tx_filter.empty() ? CVec{Complex{1.0, 0.0}} : cfg_.tx_filter),
      prefilter32_(dsp::kernels::narrowed(cfg_.prefilter)),
      tx_filter32_(dsp::kernels::narrowed(
          cfg_.tx_filter.empty() ? CVec{Complex{1.0, 0.0}} : cfg_.tx_filter)),
      delay_line_(std::max<std::size_t>(delay_fifo_len(), 1), Complex{}),
      gain_linear_(amplitude_from_db(cfg_.gain_db)),
      gain_rotation_(gain_linear_ * cfg_.analog_rotation),
      gain_rotation32_(static_cast<float>(gain_rotation_.real()),
                       static_cast<float>(gain_rotation_.imag())) {
  FF_CHECK(!cfg_.prefilter.empty());
  FF_CHECK_MSG(std::isfinite(cfg_.sample_rate_hz) && cfg_.sample_rate_hz > 0.0,
               "PipelineConfig.sample_rate_hz must be positive and finite, got "
                   << cfg_.sample_rate_hz);
  FF_CHECK_MSG(std::isfinite(cfg_.cfo_hz), "PipelineConfig.cfo_hz must be finite");
  FF_CHECK_MSG(std::isfinite(cfg_.gain_db), "PipelineConfig.gain_db must be finite");
  FF_CHECK_MSG(std::isfinite(cfg_.analog_rotation.real()) &&
                   std::isfinite(cfg_.analog_rotation.imag()),
               "PipelineConfig.analog_rotation must be finite");
  if (cfg_.metrics) {
    metrics::add(cfg_.metrics, "relay.pipeline.instances");
    metrics::observe(cfg_.metrics, "relay.pipeline.max_delay_s", max_delay_s());
    metrics::set(cfg_.metrics, "relay.pipeline.prefilter_taps",
                 static_cast<double>(cfg_.prefilter.size()));
    // Which arithmetic width the forward path runs at (64 or 32) — like
    // ff.kernels.isa, the tag that lets a snapshot explain a perf delta.
    metrics::set(cfg_.metrics, "ff.kernels.precision",
                 cfg_.precision == Precision::kF32 ? 32.0 : 64.0);
  }
}

void ForwardPipeline::set_metrics(MetricsRegistry* metrics) {
  if (metrics == cfg_.metrics) return;
  cfg_.metrics = metrics;
  if (cfg_.metrics) {
    metrics::add(cfg_.metrics, "relay.pipeline.instances");
    metrics::observe(cfg_.metrics, "relay.pipeline.max_delay_s", max_delay_s());
    metrics::set(cfg_.metrics, "relay.pipeline.prefilter_taps",
                 static_cast<double>(cfg_.prefilter.size()));
    metrics::set(cfg_.metrics, "ff.kernels.precision",
                 cfg_.precision == Precision::kF32 ? 32.0 : 64.0);
  }
}

std::size_t ForwardPipeline::delay_fifo_len() const {
  // With a TX filter, the converter latency lives in the filter's group
  // delay; only the artificial buffering remains a FIFO.
  if (!cfg_.tx_filter.empty()) return cfg_.extra_buffer_samples;
  return bulk_delay_samples();
}

double ForwardPipeline::max_delay_s() const {
  return (static_cast<double>(bulk_delay_samples()) +
          static_cast<double>(cfg_.prefilter.size() - 1)) /
         cfg_.sample_rate_hz;
}

Complex ForwardPipeline::push(Complex rx) {
  if (cfg_.precision == Precision::kF32) {
    // The f32 path is block-formulated (convert once, run the f32 stages,
    // convert back); a push is a 1-sample block. Identical bits to any other
    // blocking of the stream — the block-size invariance contract.
    Complex out;
    process_into(CSpan{&rx, 1}, CMutSpan{&out, 1});
    return out;
  }
  if (cfg_.scrub_nonfinite &&
      (!std::isfinite(rx.real()) || !std::isfinite(rx.imag()))) {
    rx = Complex{};
    ++scrubbed_;
  }
  // CFO remove -> digital CNF -> CFO restore -> amplify -> analog CNF
  // -> DAC/TX reconstruction filter.
  Complex s = cfo_remove_.push(rx);
  s = prefilter_.push(s);
  s = cfo_restore_.push(s);
  s *= gain_rotation_;
  if (!cfg_.tx_filter.empty()) s = tx_filter_.push(s);

  // Remaining bulk delay FIFO (converter latency when no TX filter models
  // it, plus any artificial buffering).
  if (delay_fifo_len() == 0) return s;
  const Complex out = delay_line_[delay_pos_];
  delay_line_[delay_pos_] = s;
  delay_pos_ = (delay_pos_ + 1) % delay_line_.size();
  return out;
}

CVec ForwardPipeline::process(CSpan rx) {
  CVec out(rx.size());
  process_into(rx, out);
  return out;
}

void ForwardPipeline::process_into(CSpan rx, CMutSpan out) {
  FF_CHECK_MSG(out.size() == rx.size(),
               "ForwardPipeline::process_into needs out.size() == rx.size(), got "
                   << out.size() << " vs " << rx.size());
  const std::uint64_t scrubbed_before = scrubbed_;
  const std::size_t n = rx.size();
  if (n > 0 && cfg_.precision == Precision::kF32) {
    process_into_f32(rx, out);
  } else if (n > 0) {
    // Stage-wise over the block. Every stage is causal (sample i of a
    // stage's output depends only on samples <= i of its input), so running
    // the stages block-at-a-time instead of interleaved per sample moves no
    // arithmetic and changes no bits relative to push().
    if (cfg_.scrub_nonfinite) {
      for (std::size_t i = 0; i < n; ++i) {
        Complex v = rx[i];
        if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
          v = Complex{};
          ++scrubbed_;
        }
        out[i] = v;
      }
    } else if (out.data() != rx.data()) {
      std::copy(rx.begin(), rx.end(), out.begin());
    }
    cfo_remove_.process_into(out, out, ws_);
    prefilter_.process_into(out, out, ws_);
    cfo_restore_.process_into(out, out, ws_);
    dsp::kernels::scale(gain_rotation_, out, out);
    if (!cfg_.tx_filter.empty()) tx_filter_.process_into(out, out, ws_);
    if (delay_fifo_len() > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const Complex s = out[i];
        out[i] = delay_line_[delay_pos_];
        delay_line_[delay_pos_] = s;
        ++delay_pos_;
        if (delay_pos_ == delay_line_.size()) delay_pos_ = 0;
      }
    }
  }
  // Counted per batch, not per sample: the hot loops stay metrics-free.
  metrics::add(cfg_.metrics, "relay.pipeline.samples", rx.size());
  if (scrubbed_ > scrubbed_before)
    metrics::add(cfg_.metrics, "relay.pipeline.scrubbed", scrubbed_ - scrubbed_before);
  if (cfg_.metrics && ws_.grows() > ws_grows_reported_) {
    // Workspace growth only ever happens in the first blocks; a quiet
    // ff.alloc.workspace_grows counter is the telemetry proof that the
    // steady-state path performs zero heap allocations.
    metrics::add(cfg_.metrics, "ff.alloc.workspace_grows",
                 ws_.grows() - ws_grows_reported_);
    ws_grows_reported_ = ws_.grows();
    metrics::set(cfg_.metrics, "ff.alloc.workspace_bytes",
                 static_cast<double>(ws_.bytes()));
  }
  if (cfg_.metrics && ws_.grows_f32() > ws_f32_grows_reported_) {
    // Same proof for the float32 slots (non-zero only in kF32 mode).
    metrics::add(cfg_.metrics, "ff.alloc.workspace_f32_grows",
                 ws_.grows_f32() - ws_f32_grows_reported_);
    ws_f32_grows_reported_ = ws_.grows_f32();
    metrics::set(cfg_.metrics, "ff.alloc.workspace_f32_bytes",
                 static_cast<double>(ws_.bytes_f32()));
  }
}

void ForwardPipeline::process_into_f32(CSpan rx, CMutSpan out) {
  // Convert once at the edges, stay f32 inside. The stage sequence, the
  // scrub rule and the delay FIFO are those of the f64 path; scrubbing and
  // the FIFO run on the double-width values (the scrub test must see the
  // original sample; the FIFO is a pure shuffle and widen() is exact, so
  // running it after the widening edge moves no arithmetic into f32).
  const std::size_t n = rx.size();
  CMutSpan32 buf = ws_.get_f32(1, n);  // slot 0 is per-stage scratch
  if (cfg_.scrub_nonfinite) {
    for (std::size_t i = 0; i < n; ++i) {
      Complex v = rx[i];
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        v = Complex{};
        ++scrubbed_;
      }
      buf[i] = {static_cast<float>(v.real()), static_cast<float>(v.imag())};
    }
  } else {
    dsp::kernels::narrow(rx, buf);
  }
  cfo_remove_.process_into(buf, buf, ws_);
  prefilter32_.process_into(buf, buf, ws_);
  cfo_restore_.process_into(buf, buf, ws_);
  dsp::kernels::scale(gain_rotation32_, buf, buf);
  if (!cfg_.tx_filter.empty()) tx_filter32_.process_into(buf, buf, ws_);
  dsp::kernels::widen(buf, out);
  if (delay_fifo_len() > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const Complex s = out[i];
      out[i] = delay_line_[delay_pos_];
      delay_line_[delay_pos_] = s;
      ++delay_pos_;
      if (delay_pos_ == delay_line_.size()) delay_pos_ = 0;
    }
  }
}

void ForwardPipeline::reset() {
  cfo_remove_.reset();
  cfo_restore_.reset();
  prefilter_.reset();
  tx_filter_.reset();
  prefilter32_.reset();
  tx_filter32_.reset();
  std::fill(delay_line_.begin(), delay_line_.end(), Complex{});
  delay_pos_ = 0;
  // A reset pipeline should report like a fresh one; leaving the scrub count
  // behind double-counted glitches across experiment repetitions.
  scrubbed_ = 0;
}

}  // namespace ff::relay
