#include "relay/pipeline.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::relay {

ForwardPipeline::ForwardPipeline(PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      cfo_remove_(-cfg_.cfo_hz, cfg_.sample_rate_hz),
      cfo_restore_(cfg_.restore_cfo ? cfg_.cfo_hz : 0.0, cfg_.sample_rate_hz),
      prefilter_(cfg_.prefilter),
      tx_filter_(cfg_.tx_filter.empty() ? CVec{Complex{1.0, 0.0}} : cfg_.tx_filter),
      delay_line_(std::max<std::size_t>(delay_fifo_len(), 1), Complex{}),
      gain_linear_(amplitude_from_db(cfg_.gain_db)),
      gain_rotation_(gain_linear_ * cfg_.analog_rotation) {
  FF_CHECK(!cfg_.prefilter.empty());
  FF_CHECK_MSG(std::isfinite(cfg_.sample_rate_hz) && cfg_.sample_rate_hz > 0.0,
               "PipelineConfig.sample_rate_hz must be positive and finite, got "
                   << cfg_.sample_rate_hz);
  FF_CHECK_MSG(std::isfinite(cfg_.cfo_hz), "PipelineConfig.cfo_hz must be finite");
  FF_CHECK_MSG(std::isfinite(cfg_.gain_db), "PipelineConfig.gain_db must be finite");
  FF_CHECK_MSG(std::isfinite(cfg_.analog_rotation.real()) &&
                   std::isfinite(cfg_.analog_rotation.imag()),
               "PipelineConfig.analog_rotation must be finite");
  if (cfg_.metrics) {
    metrics::add(cfg_.metrics, "relay.pipeline.instances");
    metrics::observe(cfg_.metrics, "relay.pipeline.max_delay_s", max_delay_s());
    metrics::set(cfg_.metrics, "relay.pipeline.prefilter_taps",
                 static_cast<double>(cfg_.prefilter.size()));
  }
}

void ForwardPipeline::set_metrics(MetricsRegistry* metrics) {
  if (metrics == cfg_.metrics) return;
  cfg_.metrics = metrics;
  if (cfg_.metrics) {
    metrics::add(cfg_.metrics, "relay.pipeline.instances");
    metrics::observe(cfg_.metrics, "relay.pipeline.max_delay_s", max_delay_s());
    metrics::set(cfg_.metrics, "relay.pipeline.prefilter_taps",
                 static_cast<double>(cfg_.prefilter.size()));
  }
}

std::size_t ForwardPipeline::delay_fifo_len() const {
  // With a TX filter, the converter latency lives in the filter's group
  // delay; only the artificial buffering remains a FIFO.
  if (!cfg_.tx_filter.empty()) return cfg_.extra_buffer_samples;
  return bulk_delay_samples();
}

double ForwardPipeline::max_delay_s() const {
  return (static_cast<double>(bulk_delay_samples()) +
          static_cast<double>(cfg_.prefilter.size() - 1)) /
         cfg_.sample_rate_hz;
}

Complex ForwardPipeline::push(Complex rx) {
  if (cfg_.scrub_nonfinite &&
      (!std::isfinite(rx.real()) || !std::isfinite(rx.imag()))) {
    rx = Complex{};
    ++scrubbed_;
  }
  // CFO remove -> digital CNF -> CFO restore -> amplify -> analog CNF
  // -> DAC/TX reconstruction filter.
  Complex s = cfo_remove_.push(rx);
  s = prefilter_.push(s);
  s = cfo_restore_.push(s);
  s *= gain_rotation_;
  if (!cfg_.tx_filter.empty()) s = tx_filter_.push(s);

  // Remaining bulk delay FIFO (converter latency when no TX filter models
  // it, plus any artificial buffering).
  if (delay_fifo_len() == 0) return s;
  const Complex out = delay_line_[delay_pos_];
  delay_line_[delay_pos_] = s;
  delay_pos_ = (delay_pos_ + 1) % delay_line_.size();
  return out;
}

CVec ForwardPipeline::process(CSpan rx) {
  CVec out(rx.size());
  process_into(rx, out);
  return out;
}

void ForwardPipeline::process_into(CSpan rx, CMutSpan out) {
  FF_CHECK_MSG(out.size() == rx.size(),
               "ForwardPipeline::process_into needs out.size() == rx.size(), got "
                   << out.size() << " vs " << rx.size());
  const std::uint64_t scrubbed_before = scrubbed_;
  const std::size_t n = rx.size();
  if (n > 0) {
    // Stage-wise over the block. Every stage is causal (sample i of a
    // stage's output depends only on samples <= i of its input), so running
    // the stages block-at-a-time instead of interleaved per sample moves no
    // arithmetic and changes no bits relative to push().
    if (cfg_.scrub_nonfinite) {
      for (std::size_t i = 0; i < n; ++i) {
        Complex v = rx[i];
        if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
          v = Complex{};
          ++scrubbed_;
        }
        out[i] = v;
      }
    } else if (out.data() != rx.data()) {
      std::copy(rx.begin(), rx.end(), out.begin());
    }
    cfo_remove_.process_into(out, out, ws_);
    prefilter_.process_into(out, out, ws_);
    cfo_restore_.process_into(out, out, ws_);
    dsp::kernels::scale(gain_rotation_, out, out);
    if (!cfg_.tx_filter.empty()) tx_filter_.process_into(out, out, ws_);
    if (delay_fifo_len() > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const Complex s = out[i];
        out[i] = delay_line_[delay_pos_];
        delay_line_[delay_pos_] = s;
        ++delay_pos_;
        if (delay_pos_ == delay_line_.size()) delay_pos_ = 0;
      }
    }
  }
  // Counted per batch, not per sample: the hot loops stay metrics-free.
  metrics::add(cfg_.metrics, "relay.pipeline.samples", rx.size());
  if (scrubbed_ > scrubbed_before)
    metrics::add(cfg_.metrics, "relay.pipeline.scrubbed", scrubbed_ - scrubbed_before);
  if (cfg_.metrics && ws_.grows() > ws_grows_reported_) {
    // Workspace growth only ever happens in the first blocks; a quiet
    // ff.alloc.workspace_grows counter is the telemetry proof that the
    // steady-state path performs zero heap allocations.
    metrics::add(cfg_.metrics, "ff.alloc.workspace_grows",
                 ws_.grows() - ws_grows_reported_);
    ws_grows_reported_ = ws_.grows();
    metrics::set(cfg_.metrics, "ff.alloc.workspace_bytes",
                 static_cast<double>(ws_.bytes()));
  }
}

void ForwardPipeline::reset() {
  cfo_remove_.reset();
  cfo_restore_.reset();
  prefilter_.reset();
  tx_filter_.reset();
  std::fill(delay_line_.begin(), delay_line_.end(), Complex{});
  delay_pos_ = 0;
  // A reset pipeline should report like a fresh one; leaving the scrub count
  // behind double-counted glitches across experiment repetitions.
  scrubbed_ = 0;
}

}  // namespace ff::relay
