// Sample-level relay forward path (Sec. 4.1 + 4.3).
//
// Stages, in order, with their latency contribution at 20 Msps:
//   ADC                      ~0.5 sample   (modelled within adc_dac_delay)
//   CFO correction           0             (one complex multiply)
//   causal digital cancel    0             (the Sec. 3.3 invention)
//   digital CNF pre-filter   (taps-1) * Ts of delay spread
//   CFO restore              0
//   amplify                  0
//   DAC                      ~0.5 sample
//   analog CNF rotator       ~0.3 ns
//
// The CFO trick: the relay corrects the source's carrier offset for its own
// processing, then re-applies it before transmission, so the destination
// sees one consistent offset across the direct and relayed paths and its
// own CFO correction still works.
#pragma once

#include "channel/cfo.hpp"
#include "common/types.hpp"
#include "dsp/fir.hpp"
#include "dsp/kernels/workspace.hpp"
#include "phy/params.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::relay {

struct PipelineConfig {
  double sample_rate_hz = 20e6;
  std::size_t adc_dac_delay_samples = 1;   // 50 ns at 20 Msps (paper's figure)
  std::size_t extra_buffer_samples = 0;    // artificial latency (Fig. 16 sweeps)
  double cfo_hz = 0.0;                     // relay's estimate of the source CFO
  bool restore_cfo = true;                 // Sec. 4.1 (ablation: false)
  CVec prefilter{Complex{1.0, 0.0}};       // digital CNF taps
  Complex analog_rotation{1.0, 0.0};       // analog CNF response at carrier
  double gain_db = 0.0;
  /// DAC reconstruction / TX low-pass filter. When non-empty it REPLACES
  /// the plain ADC/DAC delay FIFO: its group delay ((taps-1)/2 samples)
  /// should equal adc_dac_delay_samples, since in real hardware those
  /// filters ARE where the converter latency lives. It is what keeps
  /// amplified out-of-band receiver noise from reaching the antenna.
  CVec tx_filter{};
  /// Scrub non-finite input samples, forwarding 0 in their place. A single
  /// NaN from a glitching converter would otherwise live in the FIR delay
  /// lines forever and poison every later output; zeroing is what real
  /// front-ends do (a clamped/blanked sample) and bounds the damage to the
  /// filter memory around the glitch. Scrubbed samples are counted as
  /// `relay.pipeline.scrubbed` when metrics is set.
  bool scrub_nonfinite = true;
  /// Optional metrics sink: construction records the pipeline's worst-case
  /// forward delay (`relay.pipeline.max_delay_s`) and prefilter tap count;
  /// process() counts forwarded samples. Default nullptr records nothing.
  MetricsRegistry* metrics = nullptr;
  /// Arithmetic precision of the forward path. kF32 converts each block to
  /// float32 once on entry, runs the CFO/prefilter/gain/TX-filter stages on
  /// the f32 kernel family (double the SIMD lanes), and widens once on exit
  /// — the mixed-precision fast path (docs/PERFORMANCE.md, "The float32
  /// family"). Taps and CFO phase recurrences stay double; only the sample
  /// stream narrows. f32 output is deterministic (its own pinned checksum
  /// family) but numerically distinct from kF64, the accuracy reference.
  Precision precision = Precision::kF64;
};

/// Streaming forward-path processor. Push received (already SI-cancelled)
/// samples, get transmit samples with all latencies applied.
class ForwardPipeline {
 public:
  explicit ForwardPipeline(PipelineConfig cfg);

  const PipelineConfig& config() const { return cfg_; }

  /// Bulk (integer-sample) delay of the pipeline: ADC/DAC + extra buffering.
  /// The pre-filter's delay spread rides on top via its tap positions.
  std::size_t bulk_delay_samples() const {
    return cfg_.adc_dac_delay_samples + cfg_.extra_buffer_samples;
  }

  /// Worst-case extra delay of any relayed signal component (seconds):
  /// bulk delay plus the last pre-filter tap.
  double max_delay_s() const;

  Complex push(Complex rx);
  CVec process(CSpan rx);

  /// Process a block into a caller-owned buffer (stateful). `out` must be
  /// exactly rx.size() samples and may alias `rx`: the streaming runtime's
  /// allocation-free block path. Metrics accounting matches process().
  ///
  /// Runs stage-wise over the block (scrub, CFO remove, prefilter, CFO
  /// restore, gain+rotation, TX filter, delay FIFO) with every stage's
  /// vectorized block op bit-identical to its per-sample push() — the
  /// stages are causal, so stage-wise and sample-interleaved orders produce
  /// the same bits. Scratch comes from the pipeline-owned Workspace; after
  /// warmup no heap allocation happens here (`ff.alloc.*` telemetry and
  /// tests/kernels_test.cpp hold that).
  void process_into(CSpan rx, CMutSpan out);

  /// Non-finite input samples zeroed so far (see PipelineConfig::scrub_nonfinite).
  std::uint64_t scrubbed_samples() const { return scrubbed_; }

  /// Install (or remove, nullptr) a telemetry sink after construction — the
  /// declarative stream path builds the pipeline before a registry exists
  /// and injects it via Graph::set_metrics. Transitioning from no registry
  /// to one records the same construction-time gauges the metrics-carrying
  /// constructor would have; re-installing the current registry is a no-op
  /// (no double-counted instances).
  void set_metrics(MetricsRegistry* metrics);

  /// Return to the freshly-constructed state: clears every delay line, both
  /// CFO phases, and the scrubbed-sample count.
  void reset();

 private:
  std::size_t delay_fifo_len() const;

  void process_into_f32(CSpan rx, CMutSpan out);

  PipelineConfig cfg_;
  channel::CfoRotator cfo_remove_;
  channel::CfoRotator cfo_restore_;
  dsp::FirFilter prefilter_;
  dsp::FirFilter tx_filter_;
  // Float32 twins of the FIR stages (used only when precision == kF32;
  // construction is a one-time tap narrow, so both precisions always exist
  // and precision never changes filter state layout).
  dsp::FirFilter32 prefilter32_;
  dsp::FirFilter32 tx_filter32_;
  CVec delay_line_;      // bulk delay FIFO
  std::size_t delay_pos_ = 0;
  double gain_linear_;
  Complex gain_rotation_;  // gain_linear_ * analog_rotation, precomputed
  Complex32 gain_rotation32_;
  std::uint64_t scrubbed_ = 0;
  dsp::kernels::Workspace ws_;  // shared scratch for all block stages
  std::uint64_t ws_grows_reported_ = 0;  // ff.alloc.* telemetry watermark
  std::uint64_t ws_f32_grows_reported_ = 0;
};

}  // namespace ff::relay
