#include "relay/cnf_design.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "opt/optimizers.hpp"

namespace ff::relay {

CVec cnf_siso_ideal(CSpan h_sd, CSpan h_sr, CSpan h_rd) {
  FF_CHECK(h_sd.size() == h_sr.size() && h_sd.size() == h_rd.size());
  CVec f(h_sd.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    const Complex relay_path = h_rd[i] * h_sr[i];
    if (std::abs(relay_path) < 1e-30) {
      f[i] = Complex{1.0, 0.0};
      continue;
    }
    // If the direct path is dead, any phase works; align to real axis.
    const double theta =
        std::abs(h_sd[i]) > 1e-30 ? std::arg(h_sd[i]) - std::arg(relay_path)
                                  : -std::arg(relay_path);
    f[i] = Complex{std::cos(theta), std::sin(theta)};
  }
  return f;
}

CVec combined_channel_siso(CSpan h_sd, CSpan h_sr, CSpan h_rd, CSpan filter,
                           double amp_linear) {
  FF_CHECK(h_sd.size() == h_sr.size() && h_sd.size() == h_rd.size() &&
           h_sd.size() == filter.size());
  CVec out(h_sd.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = h_sd[i] + h_rd[i] * filter[i] * amp_linear * h_sr[i];
  return out;
}

std::size_t unitary_param_count(std::size_t k) {
  return k * (k - 1) / 2 + k * (k + 1) / 2;  // = k*k
}

linalg::Matrix unitary_from_params(std::span<const double> params, std::size_t k) {
  FF_CHECK(params.size() == unitary_param_count(k));
  // Start from a diagonal of phases, then apply Givens rotations (each with
  // its own phase) on every pair (p, q). This parameterization is surjective
  // onto U(k).
  std::size_t idx = 0;
  linalg::Matrix u(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    const double phi = params[idx++];
    u(i, i) = Complex{std::cos(phi), std::sin(phi)};
  }
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t q = p + 1; q < k; ++q) {
      const double theta = params[idx++];
      const double phi = params[idx++];
      linalg::Matrix g = linalg::Matrix::identity(k);
      const double c = std::cos(theta), s = std::sin(theta);
      const Complex e{std::cos(phi), std::sin(phi)};
      g(p, p) = c;
      g(p, q) = -s * std::conj(e);
      g(q, p) = s * e;
      g(q, q) = c;
      u = g * u;
    }
  }
  return u;
}

linalg::Matrix combined_channel_mimo(const linalg::Matrix& h_sd, const linalg::Matrix& h_sr,
                                     const linalg::Matrix& h_rd, const linalg::Matrix& filter,
                                     double amp_linear) {
  return h_sd + h_rd * filter * Complex{amp_linear, 0.0} * h_sr;
}

CnfMimoResult cnf_mimo_design(const linalg::Matrix& h_sd, const linalg::Matrix& h_sr,
                              const linalg::Matrix& h_rd, double amp_linear,
                              const std::vector<double>* warm_start) {
  const std::size_t k = h_rd.cols();
  FF_CHECK(h_sr.rows() == k);
  FF_CHECK(h_sd.is_square());

  const auto objective = [&](const std::vector<double>& params) {
    const linalg::Matrix f = unitary_from_params(params, k);
    const linalg::Matrix h = combined_channel_mimo(h_sd, h_sr, h_rd, f, amp_linear);
    return -std::abs(linalg::determinant(h));  // minimize the negative
  };

  // Multi-start Nelder-Mead: the objective is non-convex with phase
  // wrap-around, a handful of starts finds the global basin reliably for
  // the K <= 4 sizes relays have.
  const std::size_t np = unitary_param_count(k);
  opt::NelderMeadOptions nm;
  nm.initial_step = 0.8;
  nm.max_iterations = 600;
  nm.tolerance = 1e-12;

  opt::OptResult best;
  best.value = 1e300;
  if (warm_start != nullptr && warm_start->size() == np) {
    opt::NelderMeadOptions warm = nm;
    warm.initial_step = 0.15;
    warm.max_iterations = 200;
    best = opt::nelder_mead(objective, *warm_start, warm);
  } else {
    for (int start = 0; start < 5; ++start) {
      std::vector<double> x0(np, 0.0);
      for (std::size_t d = 0; d < np; ++d)
        x0[d] = (static_cast<double>(((start + 1) * 2654435761u + d * 40503u) % 1000) /
                     1000.0 -
                 0.5) * kTwoPi;
      const auto r = opt::nelder_mead(objective, x0, nm);
      if (r.value < best.value) best = r;
    }
  }

  CnfMimoResult out;
  out.filter = unitary_from_params(best.x, k);
  out.params = best.x;
  out.objective = -best.value;
  out.baseline = std::abs(linalg::determinant(h_sd));
  return out;
}

}  // namespace ff::relay
