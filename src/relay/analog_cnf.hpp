// The analog constructive filter (Fig. 10): four delay lines spaced 100 ps
// apart (a quarter period at 2.45 GHz, i.e. 90 degrees), each with a tunable
// non-negative gain. Splitting the signal across the taps and re-summing
// synthesizes any phase rotation in [0, 360) with sub-degree resolution —
// phase precision a sample-spaced digital filter would need huge
// interpolators to match (Sec. 3.4).
//
// Across a 20 MHz baseband the tap delays are tiny (2*pi*f*100ps <= 0.7
// degrees), so the filter is deliberately frequency-flat: per-subcarrier
// shaping is the digital pre-filter's job.
#pragma once

#include "common/types.hpp"

namespace ff::relay {

struct AnalogCnfConfig {
  double carrier_hz = 2.45e9;
  int taps = 4;
  double tap_spacing_s = 100e-12;   // 90 degrees at 2.45 GHz
  double gain_step_db = 0.25;       // attenuator quantization
  double max_gain_db = 0.0;         // per-tap ceiling (0 dB = unity)
  double min_gain_db = -40.0;       // attenuator floor (below: off)
};

class AnalogCnfFilter {
 public:
  explicit AnalogCnfFilter(AnalogCnfConfig cfg = {});

  const AnalogCnfConfig& config() const { return cfg_; }
  const std::vector<double>& gains() const { return gains_; }

  /// Tune the tap gains so the filter's carrier-frequency response best
  /// approximates `target` (|target| <= ~2 is reachable; unit-magnitude
  /// rotations are the design point). Returns the achieved response.
  Complex tune(Complex target);

  /// Response at baseband offset `f_bb_hz` from the carrier.
  Complex response(double f_bb_hz) const;

  /// Responses at several baseband frequencies.
  CVec response(RSpan f_bb_hz) const;

  /// Group delay of the filter (max tap delay) — part of the relay latency
  /// budget (about 0.3 ns: negligible next to the CP).
  double max_delay_s() const;

 private:
  double quantize(double gain) const;

  AnalogCnfConfig cfg_;
  std::vector<double> delays_;
  std::vector<double> gains_;
};

}  // namespace ff::relay
