#include "relay/digital_prefilter.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"
#include "linalg/matrix.hpp"

namespace ff::relay {

namespace {

Complex prefilter_response(CSpan hp, double f_hz, double fs) {
  return dsp::freq_response(hp, f_hz / fs);
}

}  // namespace

double CnfSplit::insertion_gain() const {
  if (realized.empty()) return 1.0;
  double acc = 0.0;
  for (const Complex r : realized) acc += std::abs(r);
  return std::max(acc / static_cast<double>(realized.size()), 1e-6);
}

namespace {

double split_error_db(CSpan h_c, CSpan realized) {
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < h_c.size(); ++i) {
    err += std::norm(h_c[i] - realized[i]);
    ref += std::norm(h_c[i]);
  }
  if (ref <= 0.0) return -400.0;
  return 10.0 * std::log10(std::max(err / ref, 1e-40));
}

/// Least-squares fit of the pre-filter taps given the analog response.
///
/// The ridge term is a real hardware constraint, not a numerical nicety: it
/// bounds the tap energy ||hp||^2, which equals the filter's full-band
/// (Nyquist) average power gain. An unconstrained fit against a target the
/// taps cannot realize (e.g. a steep delay ramp) otherwise runs the gains to
/// +60 dB with near-cancelling signs — blowing fixed-point dynamic range and
/// amplifying out-of-band receiver noise into the transmit chain.
CVec fit_prefilter(CSpan h_c, RSpan f_grid, const CVec& analog_resp, std::size_t taps,
                   double fs) {
  linalg::Matrix a(f_grid.size(), taps), b(f_grid.size(), 1);
  for (std::size_t i = 0; i < f_grid.size(); ++i) {
    for (std::size_t n = 0; n < taps; ++n) {
      const double ang = -kTwoPi * f_grid[i] / fs * static_cast<double>(n);
      a(i, n) = analog_resp[i] * Complex{std::cos(ang), std::sin(ang)};
    }
    b(i, 0) = h_c[i];
  }
  // Ridge sized for ~20 dB of out-of-band gain headroom: enough for the
  // in-band phase-advance trajectories the 4x-oversampled prototype needs,
  // while keeping tap energy inside fixed-point dynamic range.
  const double ridge = 0.002 * static_cast<double>(f_grid.size());
  const linalg::Matrix x = linalg::least_squares(a, b, ridge);
  CVec hp(taps);
  for (std::size_t n = 0; n < taps; ++n) hp[n] = x(n, 0);
  return hp;
}

/// Remove the scale degeneracy of the (Ha, Hp) product: normalize the
/// pre-filter to unit mean in-band magnitude and return the scale so the
/// analog stage can absorb it (its attenuators own the magnitude).
double normalize_prefilter(CVec& hp, RSpan f_grid, double fs) {
  double acc = 0.0;
  for (const double f : f_grid) acc += std::abs(dsp::freq_response(hp, f / fs));
  const double scale = acc / static_cast<double>(f_grid.size());
  if (scale < 1e-12) return 1.0;
  for (auto& t : hp) t /= scale;
  return scale;
}

}  // namespace

CnfSplit design_cnf_split(CSpan h_c, RSpan f_grid_hz, const CnfSplitConfig& cfg) {
  FF_CHECK(h_c.size() == f_grid_hz.size());
  FF_CHECK(cfg.prefilter_taps >= 1);

  CnfSplit out;
  out.analog = AnalogCnfFilter(cfg.analog);

  // Initialize the analog rotator at the circular-mean phase of H_c so the
  // pre-filter starts near unity (keeping its gains well-conditioned).
  Complex mean{0.0, 0.0};
  for (const Complex h : h_c) mean += h;
  if (std::abs(mean) < 1e-20) mean = Complex{1.0, 0.0};
  out.analog.tune(mean / std::abs(mean) *
                  std::min(std::abs(mean) / static_cast<double>(h_c.size()), 1.2));

  for (int it = 0; it < cfg.iterations; ++it) {
    // hp step: linear least squares given the analog response, then push the
    // magnitude into the analog stage (its attenuators own the scale).
    const CVec aresp = out.analog.response(f_grid_hz);
    out.prefilter = fit_prefilter(h_c, f_grid_hz, aresp, cfg.prefilter_taps,
                                  cfg.sample_rate_hz);
    const double scale = normalize_prefilter(out.prefilter, f_grid_hz, cfg.sample_rate_hz);

    // analog step: 1-D projection of the residual rotation given hp, with
    // the hp scale folded in and the magnitude clamped to the attenuators'
    // physical range.
    Complex num{0.0, 0.0};
    double den = 0.0;
    for (std::size_t i = 0; i < h_c.size(); ++i) {
      const Complex hp = prefilter_response(out.prefilter, f_grid_hz[i], cfg.sample_rate_hz);
      num += std::conj(hp) * h_c[i];
      den += std::norm(hp);
    }
    if (den > 1e-30) {
      Complex target = num / den;
      (void)scale;  // already divided out of hp; target carries it naturally
      const double mag = std::abs(target);
      if (mag > 1.2) target *= 1.2 / mag;
      if (mag < 0.05) target = Complex{0.05, 0.0} * (mag > 1e-12 ? target / mag : Complex{1.0, 0.0});
      out.analog.tune(target);
    }
  }

  // Final hp refit against the final analog setting, then score.
  const CVec aresp = out.analog.response(f_grid_hz);
  out.prefilter = fit_prefilter(h_c, f_grid_hz, aresp, cfg.prefilter_taps,
                                cfg.sample_rate_hz);
  out.realized.resize(h_c.size());
  for (std::size_t i = 0; i < h_c.size(); ++i)
    out.realized[i] =
        aresp[i] * prefilter_response(out.prefilter, f_grid_hz[i], cfg.sample_rate_hz);
  out.error_db = split_error_db(h_c, out.realized);
  return out;
}

CnfSplit design_analog_only(CSpan h_c, RSpan f_grid_hz, const CnfSplitConfig& cfg) {
  FF_CHECK(h_c.size() == f_grid_hz.size());
  CnfSplit out;
  out.analog = AnalogCnfFilter(cfg.analog);
  Complex mean{0.0, 0.0};
  for (const Complex h : h_c) mean += h;
  mean /= static_cast<double>(h_c.size());
  if (std::abs(mean) > 1e-20) out.analog.tune(mean);
  out.prefilter = {Complex{1.0, 0.0}};
  out.realized = out.analog.response(f_grid_hz);
  out.error_db = split_error_db(h_c, out.realized);
  return out;
}

CnfSplit design_digital_only(CSpan h_c, RSpan f_grid_hz, const CnfSplitConfig& cfg) {
  FF_CHECK(h_c.size() == f_grid_hz.size());
  CnfSplit out;
  // Pass-through analog stage (tap 0 at unit gain).
  AnalogCnfConfig acfg = cfg.analog;
  out.analog = AnalogCnfFilter(acfg);
  out.analog.tune(Complex{1.0, 0.0});
  const CVec aresp = out.analog.response(f_grid_hz);
  out.prefilter = fit_prefilter(h_c, f_grid_hz, aresp, cfg.prefilter_taps,
                                cfg.sample_rate_hz);
  out.realized.resize(h_c.size());
  for (std::size_t i = 0; i < h_c.size(); ++i)
    out.realized[i] =
        aresp[i] * prefilter_response(out.prefilter, f_grid_hz[i], cfg.sample_rate_hz);
  out.error_db = split_error_db(h_c, out.realized);
  return out;
}

}  // namespace ff::relay
