// Amplification control (Sec. 3.5 + Fig. 7).
//
// Two ceilings bound the relay gain:
//  1. Stability: amplifying beyond the achieved TX->RX isolation C leaves
//     residual self-interference that is re-amplified every loop — an
//     unstable positive feedback loop. A >= C is forbidden (margin below).
//  2. Noise: the relay amplifies its own receiver noise; by the time the
//     relayed noise reaches the destination it must sit below the
//     destination's noise floor, or it drowns the direct signal. With
//     relay->destination attenuation `a` dB, the paper's rule is
//     A <= a - 3 dB (3 dB safety margin).
#pragma once

namespace ff::relay {

struct AmplificationConfig {
  double stability_margin_db = 6.0;  // keep A at least this far below C
  double noise_margin_db = 3.0;      // the paper's "(a - 3) dB" rule
  double max_tx_power_dbm = 20.0;    // hardware ceiling
};

struct AmplificationDecision {
  double gain_db = 0.0;
  double stability_limit_db = 0.0;
  double noise_limit_db = 0.0;
  double power_limit_db = 0.0;
  bool noise_limited = false;  // which ceiling was binding
};

/// Decide the relay gain.
///   cancellation_db : achieved TX->RX isolation C
///   rd_attenuation_db : relay->destination channel attenuation a (positive)
///   rx_power_dbm : power of the (cancelled) received signal at the relay
AmplificationDecision decide_amplification(double cancellation_db,
                                           double rd_attenuation_db, double rx_power_dbm,
                                           const AmplificationConfig& cfg = {});

/// The blind repeater policy (Sec. 5.5 ablation): amplify to the stability
/// limit, ignoring the noise rule.
AmplificationDecision decide_amplification_blind(double cancellation_db,
                                                 double rx_power_dbm,
                                                 const AmplificationConfig& cfg = {});

}  // namespace ff::relay
