// Construct-and-forward (CNF) filter design — the heart of FastForward
// (Sec. 3.2).
//
// SISO: per subcarrier, the destination sees  h_sd + h_rd * F * A * h_sr.
// The relay picks the unit-modulus F that rotates its path into alignment
// with the direct path, turning would-be destructive multipath into a
// coherent SNR gain:  F = exp(j (angle(h_sd) - angle(h_rd * h_sr))).
//
// MIMO (Eq. 2): maximize |det(H_sd + H_rd F A H_sr)| over a K x K unitary
// (rotation) F, solved with a derivative-free non-linear optimizer on a
// phase/Givens parameterization — the paper likewise resorts to non-linear
// optimization, noting it runs only on channel updates, not per packet.
#pragma once

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace ff::relay {

/// Ideal per-subcarrier SISO constructive filter (unit modulus).
/// All spans must have the same length (one entry per subcarrier).
CVec cnf_siso_ideal(CSpan h_sd, CSpan h_sr, CSpan h_rd);

/// The resulting per-subcarrier destination channel h_sd + h_rd F A h_sr.
CVec combined_channel_siso(CSpan h_sd, CSpan h_sr, CSpan h_rd, CSpan filter,
                           double amp_linear);

/// Build a K x K unitary matrix from its parameter vector (K*K real
/// parameters: K*(K-1)/2 Givens angles and K*(K+1)/2 phases).
linalg::Matrix unitary_from_params(std::span<const double> params, std::size_t k);

/// Number of parameters for a K x K unitary.
std::size_t unitary_param_count(std::size_t k);

struct CnfMimoResult {
  linalg::Matrix filter;        // K x K unitary F
  std::vector<double> params;   // optimizer parameters (for warm starts)
  double objective = 0.0;       // |det(H_sd + H_rd F A H_sr)|
  double baseline = 0.0;        // |det(H_sd)| for comparison
};

/// Solve Eq. 2 for one subcarrier. `warm_start`, when given, seeds the
/// optimizer with a previous solution's parameters (adjacent subcarriers
/// have nearly identical channels, so warm starts cut the multi-start search
/// to a single local refinement).
CnfMimoResult cnf_mimo_design(const linalg::Matrix& h_sd, const linalg::Matrix& h_sr,
                              const linalg::Matrix& h_rd, double amp_linear,
                              const std::vector<double>* warm_start = nullptr);

/// Per-subcarrier MIMO combined channel H_sd + H_rd F A H_sr.
linalg::Matrix combined_channel_mimo(const linalg::Matrix& h_sd, const linalg::Matrix& h_sr,
                                     const linalg::Matrix& h_rd, const linalg::Matrix& filter,
                                     double amp_linear);

}  // namespace ff::relay
