// Frequency-domain relay design facade: given the three links' per-subcarrier
// channel matrices, produce the constructive filter, the amplification
// decision, and the effective end-to-end channel + relay-injected noise the
// destination experiences. This is what the evaluation harness consumes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "relay/amplification.hpp"
#include "relay/cnf_design.hpp"
#include "relay/digital_prefilter.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::relay {

/// Per-subcarrier channel state for one source-relay-destination triple.
struct RelayLink {
  std::vector<linalg::Matrix> h_sd;  // source -> destination, N x M
  std::vector<linalg::Matrix> h_sr;  // source -> relay, K x M
  std::vector<linalg::Matrix> h_rd;  // relay -> destination, N x K
  double source_power_dbm = 20.0;
  double dest_noise_dbm = -90.0;
  double relay_noise_dbm = -90.0;
  double cancellation_db = 110.0;  // achieved isolation at the relay

  std::size_t subcarriers() const { return h_sd.size(); }
  bool siso() const {
    return !h_sd.empty() && h_sd[0].rows() == 1 && h_sd[0].cols() == 1 &&
           h_sr[0].rows() == 1 && h_rd[0].cols() == 1;
  }
};

enum class RelayPolicy {
  kConstructForward,  // FF: CNF filter + noise-aware amplification
  kAmplifyForward,    // blind repeater: flat filter, max stable gain
};

struct RelayDesign {
  RelayPolicy policy = RelayPolicy::kConstructForward;
  std::vector<linalg::Matrix> filter;      // per-subcarrier F (K x K)
  AmplificationDecision amp;
  /// Linear amplifier gain actually applied (amp.gain_db plus the realized
  /// filter's insertion-loss compensation). h_eff = H_sd + H_rd F a H_sr
  /// with a = amp_linear_eff; callers re-evaluating the design on other
  /// channel estimates need this value.
  double amp_linear_eff = 1.0;
  std::vector<linalg::Matrix> h_eff;       // combined channel per subcarrier
  std::vector<double> relay_noise_mw;      // injected noise at dest (per sc, per rx antenna)
  double split_error_db = -400.0;          // SISO: realized-filter approximation error
};

struct DesignOptions {
  AmplificationConfig amp{};
  /// SISO: realize the ideal filter through the digital-prefilter + analog
  /// rotator split (true) or use the ideal response (false).
  bool use_realized_split = true;
  CnfSplitConfig split{};
  /// Baseband frequency of each subcarrier (needed for the split design).
  std::vector<double> f_grid_hz;
  /// Optional metrics sink: each design records its counter
  /// (`relay.design.ff` / `relay.design.af`), the amplification decision
  /// (`relay.design.gain_db`), and — when the realized split runs — the
  /// CNF approximation residual (`relay.cnf.split_error_db`) plus the split
  /// fit count and tap budget. Default nullptr records nothing.
  MetricsRegistry* metrics = nullptr;
};

/// Design a FastForward construct-and-forward relay for the link.
RelayDesign design_ff_relay(const RelayLink& link, const DesignOptions& opts = {});

/// Design a blind amplify-and-forward repeater (Sec. 5.5 baseline).
RelayDesign design_af_relay(const RelayLink& link, const DesignOptions& opts = {});

/// Mean attenuation (positive dB) of the relay->destination link.
double rd_attenuation_db(const RelayLink& link);

/// Power (dBm) the relay receives from the source.
double relay_rx_power_dbm(const RelayLink& link);

}  // namespace ff::relay
