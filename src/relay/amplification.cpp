#include "relay/amplification.hpp"

#include <algorithm>

namespace ff::relay {

AmplificationDecision decide_amplification(double cancellation_db,
                                           double rd_attenuation_db, double rx_power_dbm,
                                           const AmplificationConfig& cfg) {
  AmplificationDecision d;
  d.stability_limit_db = cancellation_db - cfg.stability_margin_db;
  d.noise_limit_db = rd_attenuation_db - cfg.noise_margin_db;
  d.power_limit_db = cfg.max_tx_power_dbm - rx_power_dbm;
  d.gain_db = std::max(0.0, std::min({d.stability_limit_db, d.noise_limit_db,
                                      d.power_limit_db}));
  d.noise_limited = d.noise_limit_db <= d.stability_limit_db &&
                    d.noise_limit_db <= d.power_limit_db;
  return d;
}

AmplificationDecision decide_amplification_blind(double cancellation_db,
                                                 double rx_power_dbm,
                                                 const AmplificationConfig& cfg) {
  AmplificationDecision d;
  d.stability_limit_db = cancellation_db - cfg.stability_margin_db;
  d.noise_limit_db = 1e9;  // ignored by the blind repeater
  d.power_limit_db = cfg.max_tx_power_dbm - rx_power_dbm;
  d.gain_db = std::max(0.0, std::min(d.stability_limit_db, d.power_limit_db));
  d.noise_limited = false;
  return d;
}

}  // namespace ff::relay
