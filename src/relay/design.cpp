#include "relay/design.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"

namespace ff::relay {

namespace {

/// Mean per-entry power gain of a stack of channel matrices.
double mean_matrix_power_gain(const std::vector<linalg::Matrix>& h) {
  FF_CHECK(!h.empty());
  double acc = 0.0;
  for (const auto& m : h) {
    const double f = m.frobenius();
    acc += f * f / static_cast<double>(m.rows() * m.cols());
  }
  return acc / static_cast<double>(h.size());
}

/// Effective noise at the relay's receiver: thermal floor plus the residual
/// self-interference the cancellation stack could not remove. The residual
/// sits at (TX power - C) dBm; with the paper's 110 dB of cancellation it
/// lands exactly on the -90 dBm floor, but every dB of lost cancellation
/// raises it dB-for-dB — the mechanism behind Fig. 18.
double effective_relay_noise_mw(const RelayLink& link, double tx_power_dbm) {
  return power_from_db(link.relay_noise_dbm) +
         power_from_db(tx_power_dbm - link.cancellation_db);
}

/// Relay noise reaching the destination per subcarrier (per rx antenna, mW):
/// the relay's receiver noise (thermal + SI residual) passes through F, the
/// gain and H_rd.
std::vector<double> relay_noise_at_dest(const RelayLink& link,
                                        const std::vector<linalg::Matrix>& filter,
                                        double gain_linear_amp, double n_relay_mw) {
  std::vector<double> out(link.subcarriers(), 0.0);
  for (std::size_t i = 0; i < link.subcarriers(); ++i) {
    const linalg::Matrix g = link.h_rd[i] * filter[i];
    const double f = g.frobenius();
    // Each relay antenna injects independent noise: total at each rx antenna
    // ~ sum over relay chains |(H_rd F)_{n,k}|^2 * A^2 * N_r; average over
    // rx antennas.
    out[i] = f * f / static_cast<double>(g.rows()) * gain_linear_amp * gain_linear_amp *
             n_relay_mw;
  }
  return out;
}

}  // namespace

double rd_attenuation_db(const RelayLink& link) {
  const double g = mean_matrix_power_gain(link.h_rd);
  return g > 0.0 ? -db_from_power(g) : 400.0;
}

double relay_rx_power_dbm(const RelayLink& link) {
  // Per-relay-antenna received power: the source splits its power across its
  // M antennas, and each relay antenna sums M sub-channels, so the mean
  // per-entry gain is directly the per-antenna power ratio.
  const double g = mean_matrix_power_gain(link.h_sr);
  return link.source_power_dbm + (g > 0.0 ? db_from_power(g) : -400.0);
}

namespace {

/// Shared precondition audit for both relay policies: a link with
/// inconsistent per-subcarrier stacks or non-finite powers would otherwise
/// fail deep inside the linear algebra with an unrelated message — or not
/// fail at all and emit a garbage design.
void check_link(const RelayLink& link) {
  FF_CHECK_MSG(link.subcarriers() > 0, "RelayLink needs at least one subcarrier");
  FF_CHECK_MSG(
      link.h_sr.size() == link.subcarriers() && link.h_rd.size() == link.subcarriers(),
      "RelayLink per-subcarrier stacks disagree: h_sd=" << link.h_sd.size()
          << " h_sr=" << link.h_sr.size() << " h_rd=" << link.h_rd.size());
  FF_CHECK_MSG(std::isfinite(link.source_power_dbm) && std::isfinite(link.dest_noise_dbm) &&
                   std::isfinite(link.relay_noise_dbm) && std::isfinite(link.cancellation_db),
               "RelayLink powers must be finite");
}

}  // namespace

RelayDesign design_ff_relay(const RelayLink& link, const DesignOptions& opts) {
  check_link(link);

  RelayDesign d;
  d.policy = RelayPolicy::kConstructForward;
  d.amp = decide_amplification(link.cancellation_db, rd_attenuation_db(link),
                               relay_rx_power_dbm(link), opts.amp);
  const double a = amplitude_from_db(d.amp.gain_db);

  const std::size_t n_sc = link.subcarriers();
  d.filter.resize(n_sc);
  d.h_eff.resize(n_sc);
  double a_eff = a;  // amplifier gain incl. filter insertion-loss compensation

  if (link.siso()) {
    // Collect scalar responses.
    CVec h_sd(n_sc), h_sr(n_sc), h_rd(n_sc);
    for (std::size_t i = 0; i < n_sc; ++i) {
      h_sd[i] = link.h_sd[i](0, 0);
      h_sr[i] = link.h_sr[i](0, 0);
      h_rd[i] = link.h_rd[i](0, 0);
    }
    CVec f = cnf_siso_ideal(h_sd, h_sr, h_rd);
    if (opts.use_realized_split && !opts.f_grid_hz.empty()) {
      FF_CHECK(opts.f_grid_hz.size() == n_sc);
      const CnfSplit split = design_cnf_split(f, opts.f_grid_hz, opts.split);
      f = split.realized;
      d.split_error_db = split.error_db;
      // The amplifier absorbs the realized filter's insertion loss so the
      // TOTAL forward gain sits at the decided ceiling.
      a_eff = a / split.insertion_gain();
    }
    for (std::size_t i = 0; i < n_sc; ++i) {
      d.filter[i] = linalg::Matrix{{f[i]}};
      d.h_eff[i] = linalg::Matrix{{h_sd[i] + h_rd[i] * f[i] * a_eff * h_sr[i]}};
    }
  } else {
    std::vector<double> warm;
    for (std::size_t i = 0; i < n_sc; ++i) {
      const CnfMimoResult r = cnf_mimo_design(link.h_sd[i], link.h_sr[i], link.h_rd[i], a,
                                              warm.empty() ? nullptr : &warm);
      warm = r.params;
      d.filter[i] = r.filter;
    }
    if (opts.use_realized_split && !opts.f_grid_hz.empty()) {
      // Each of the K x K filter entries is realized in hardware by its own
      // digital-prefilter + analog-rotator chain (the prototype uses four
      // analog CNF boards for 2x2, Sec. 5); fit each entry's per-subcarrier
      // trajectory through the split and substitute the realizable response.
      FF_CHECK(opts.f_grid_hz.size() == n_sc);
      const std::size_t k = d.filter[0].rows();
      double err_acc = 0.0;
      double insertion_acc = 0.0;
      for (std::size_t fi = 0; fi < k; ++fi) {
        for (std::size_t fj = 0; fj < k; ++fj) {
          CVec target(n_sc);
          for (std::size_t i = 0; i < n_sc; ++i) target[i] = d.filter[i](fi, fj);
          const CnfSplit split = design_cnf_split(target, opts.f_grid_hz, opts.split);
          for (std::size_t i = 0; i < n_sc; ++i) d.filter[i](fi, fj) = split.realized[i];
          err_acc += power_from_db(split.error_db);
          insertion_acc += split.insertion_gain();
        }
      }
      d.split_error_db = db_from_power(err_acc / static_cast<double>(k * k));
      a_eff = a / std::max(insertion_acc / static_cast<double>(k * k), 1e-6);
    }
    for (std::size_t i = 0; i < n_sc; ++i)
      d.h_eff[i] = combined_channel_mimo(link.h_sd[i], link.h_sr[i], link.h_rd[i],
                                         d.filter[i], a_eff);
  }

  d.amp_linear_eff = a_eff;
  {
    const double tx_dbm = relay_rx_power_dbm(link) + d.amp.gain_db;
    d.relay_noise_mw =
        relay_noise_at_dest(link, d.filter, a_eff, effective_relay_noise_mw(link, tx_dbm));
  }
  if (opts.metrics) {
    metrics::add(opts.metrics, "relay.design.ff");
    metrics::observe(opts.metrics, "relay.design.gain_db", d.amp.gain_db);
    if (opts.use_realized_split && !opts.f_grid_hz.empty()) {
      metrics::observe(opts.metrics, "relay.cnf.split_error_db", d.split_error_db);
      const std::size_t k = d.filter.empty() ? 0 : d.filter[0].rows();
      metrics::add(opts.metrics, "relay.cnf.splits", link.siso() ? 1 : k * k);
      metrics::set(opts.metrics, "relay.cnf.prefilter_taps",
                   static_cast<double>(opts.split.prefilter_taps));
    }
  }
  return d;
}

RelayDesign design_af_relay(const RelayLink& link, const DesignOptions& opts) {
  check_link(link);
  RelayDesign d;
  d.policy = RelayPolicy::kAmplifyForward;
  d.amp = decide_amplification_blind(link.cancellation_db, relay_rx_power_dbm(link),
                                     opts.amp);
  const double a = amplitude_from_db(d.amp.gain_db);

  const std::size_t n_sc = link.subcarriers();
  const std::size_t k = link.h_rd[0].cols();
  d.filter.assign(n_sc, linalg::Matrix::identity(k));
  d.h_eff.resize(n_sc);
  for (std::size_t i = 0; i < n_sc; ++i)
    d.h_eff[i] = combined_channel_mimo(link.h_sd[i], link.h_sr[i], link.h_rd[i],
                                       d.filter[i], a);
  d.amp_linear_eff = a;
  {
    const double tx_dbm = relay_rx_power_dbm(link) + d.amp.gain_db;
    d.relay_noise_mw =
        relay_noise_at_dest(link, d.filter, a, effective_relay_noise_mw(link, tx_dbm));
  }
  metrics::add(opts.metrics, "relay.design.af");
  if (opts.metrics) metrics::observe(opts.metrics, "relay.design.gain_db", d.amp.gain_db);
  return d;
}

}  // namespace ff::relay
