#include "relay/analog_cnf.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::relay {

AnalogCnfFilter::AnalogCnfFilter(AnalogCnfConfig cfg) : cfg_(cfg) {
  FF_CHECK(cfg_.taps >= 3);  // need >= 3 phasors to span the plane with g >= 0
  delays_.resize(static_cast<std::size_t>(cfg_.taps));
  for (int k = 0; k < cfg_.taps; ++k)
    delays_[static_cast<std::size_t>(k)] = k * cfg_.tap_spacing_s;
  gains_.assign(delays_.size(), 0.0);
}

double AnalogCnfFilter::quantize(double gain) const {
  const double min_gain = amplitude_from_db(cfg_.min_gain_db);
  const double max_gain = amplitude_from_db(cfg_.max_gain_db);
  if (gain < min_gain / 2.0) return 0.0;
  const double clamped = std::clamp(gain, min_gain, max_gain);
  const double atten = cfg_.max_gain_db - db_from_amplitude(clamped);
  const double snapped = std::round(atten / cfg_.gain_step_db) * cfg_.gain_step_db;
  return amplitude_from_db(cfg_.max_gain_db - snapped);
}

Complex AnalogCnfFilter::tune(Complex target) {
  // Tap k contributes g_k * e^{-j 2 pi fc tau_k}; with 100 ps spacing at
  // 2.45 GHz the four phasors sit ~90 degrees apart, so any target phase
  // falls between two adjacent taps. Project the target onto that pair.
  const std::size_t n = delays_.size();
  std::vector<Complex> basis(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -kTwoPi * cfg_.carrier_hz * delays_[k];
    basis[k] = Complex{std::cos(ang), std::sin(ang)};
  }
  std::fill(gains_.begin(), gains_.end(), 0.0);

  // Choose the pair of taps bracketing the target phase: solve the 2x2 real
  // system target = g_a basis[a] + g_b basis[b] for every adjacent pair and
  // keep the non-negative solution with the smallest quantized error.
  double best_err = std::norm(target);
  std::vector<double> best_gains(n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t b = (a + 1) % n;
    const double a1 = basis[a].real(), a2 = basis[a].imag();
    const double b1 = basis[b].real(), b2 = basis[b].imag();
    const double det = a1 * b2 - a2 * b1;
    if (std::abs(det) < 1e-12) continue;
    const double ga = (target.real() * b2 - target.imag() * b1) / det;
    const double gb = (target.imag() * a1 - target.real() * a2) / det;
    if (ga < 0.0 || gb < 0.0) continue;
    std::vector<double> cand(n, 0.0);
    cand[a] = quantize(ga);
    cand[b] = quantize(gb);
    Complex achieved{0.0, 0.0};
    for (std::size_t k = 0; k < n; ++k) achieved += cand[k] * basis[k];
    const double err = std::norm(achieved - target);
    if (err < best_err) {
      best_err = err;
      best_gains = cand;
    }
  }
  gains_ = best_gains;

  Complex achieved{0.0, 0.0};
  for (std::size_t k = 0; k < n; ++k) achieved += gains_[k] * basis[k];
  return achieved;
}

Complex AnalogCnfFilter::response(double f_bb_hz) const {
  Complex acc{0.0, 0.0};
  for (std::size_t k = 0; k < delays_.size(); ++k) {
    const double ang = -kTwoPi * (cfg_.carrier_hz + f_bb_hz) * delays_[k];
    acc += gains_[k] * Complex{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

CVec AnalogCnfFilter::response(RSpan f_bb_hz) const {
  CVec out(f_bb_hz.size());
  for (std::size_t i = 0; i < f_bb_hz.size(); ++i) out[i] = response(f_bb_hz[i]);
  return out;
}

double AnalogCnfFilter::max_delay_s() const {
  double d = 0.0;
  for (std::size_t k = 0; k < delays_.size(); ++k)
    if (gains_[k] > 0.0) d = std::max(d, delays_[k]);
  return d;
}

}  // namespace ff::relay
