#include "relay/channel_book.hpp"

namespace ff::relay {

void ChannelBook::update_source_relay(std::uint32_t client, CVec h, double now_s) {
  source_relay_[client] = {std::move(h), now_s};
}

void ChannelBook::update_relay_client(std::uint32_t client, CVec h, double now_s) {
  relay_client_[client] = {std::move(h), now_s};
}

void ChannelBook::update_source_client(std::uint32_t client, CVec h, double now_s) {
  source_client_[client] = {std::move(h), now_s};
}

std::optional<CVec> ChannelBook::lookup(const std::map<std::uint32_t, ChannelRecord>& m,
                                        std::uint32_t client, double now_s) const {
  const auto it = m.find(client);
  if (it == m.end()) return std::nullopt;
  if (now_s - it->second.timestamp_s > max_age_s_) return std::nullopt;
  return it->second.response;
}

std::optional<CVec> ChannelBook::source_relay(std::uint32_t client, double now_s) const {
  return lookup(source_relay_, client, now_s);
}

std::optional<CVec> ChannelBook::relay_client(std::uint32_t client, double now_s) const {
  return lookup(relay_client_, client, now_s);
}

std::optional<CVec> ChannelBook::source_client(std::uint32_t client, double now_s) const {
  return lookup(source_client_, client, now_s);
}

bool ChannelBook::ready(std::uint32_t client, double now_s) const {
  return source_relay(client, now_s).has_value() &&
         relay_client(client, now_s).has_value() &&
         source_client(client, now_s).has_value();
}

}  // namespace ff::relay
