// Splitting the ideal constructive filter between the digital pre-filter and
// the analog rotator (Sec. 3.4).
//
// The ideal CNF response H_c(f) is frequency-selective (channels differ per
// subcarrier) but the analog rotator applies one rotation to the whole band.
// A short digital FIR pre-filter (<= 4 taps: each tap costs 50 ns of group
// delay at 80 Msps, 50 ns total budget — at our 20 Msps grid the budget is
// one tap of look-back per 50 ns) pre-rotates each subcarrier so that after
// the analog rotation all subcarriers line up:
//
//   minimize_{hp, Ha}  sum_i | H_c(f_i) - Ha(f_i) * Hp(f_i) |^2
//
// solved by alternating least squares (the sequential-convex-programming
// approach the paper references): hp is linear given Ha, and the analog
// target is a 1-D projection given hp.
#pragma once

#include "common/types.hpp"
#include "relay/analog_cnf.hpp"

namespace ff::relay {

struct CnfSplitConfig {
  /// The paper's pre-filter: 4 taps at 80 Msps = 50 ns delay budget. The
  /// 4x oversampling relative to the 20 MHz signal is essential — it gives
  /// the causal filter in-band phase freedom to absorb the relay chain's
  /// bulk delay (ADC+DAC ~50 ns) so the relayed path still combines
  /// coherently at the destination.
  std::size_t prefilter_taps = 4;
  double sample_rate_hz = 80e6;
  int iterations = 4;
  AnalogCnfConfig analog{};
};

struct CnfSplit {
  CVec prefilter;          // digital taps hp[0..N)
  AnalogCnfFilter analog;  // tuned rotator
  CVec realized;           // Ha(f_i) * Hp(f_i) on the design grid
  double error_db = 0.0;   // 10 log10(sum|H_c - realized|^2 / sum|H_c|^2)

  /// Mean in-band magnitude of the realized filter. The constrained fit may
  /// land below the target's unit magnitude (insertion loss); the relay's
  /// amplifier stage compensates it, so gain decisions should subtract
  /// 20*log10(insertion_gain()) from the filter chain's budget.
  double insertion_gain() const;

  /// Group delay the digital pre-filter adds to the relay's forward path.
  double prefilter_delay_s(double sample_rate_hz) const {
    return prefilter.empty() ? 0.0
                             : static_cast<double>(prefilter.size() - 1) / sample_rate_hz;
  }
};

/// Design the split for an ideal response `h_c` sampled at baseband
/// frequencies `f_grid_hz`.
CnfSplit design_cnf_split(CSpan h_c, RSpan f_grid_hz, const CnfSplitConfig& cfg = {});

/// Ablation helper: best purely-analog approximation (no pre-filter).
CnfSplit design_analog_only(CSpan h_c, RSpan f_grid_hz, const CnfSplitConfig& cfg = {});

/// Ablation helper: best purely-digital approximation with the same tap
/// budget (no analog rotator; shows why the fine-grained analog stage
/// matters for phase resolution).
CnfSplit design_digital_only(CSpan h_c, RSpan f_grid_hz, const CnfSplitConfig& cfg = {});

}  // namespace ff::relay
