// Downlink source/destination identification (Sec. 6, Fig. 19/20).
//
// The AP prepends a per-client pseudo-random signature (4 us, repeated
// twice) to every downlink packet. The relay continuously correlates its
// receive stream against every associated client's signature; on a match it
// switches in that client's constructive filter before the standard WiFi
// preamble even begins — which is essential, because the destination
// estimates its channel from the PHY preamble, so the filter must already
// be in place by then.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/types.hpp"

namespace ff::ident {

struct PnDetection {
  std::uint32_t client = 0;
  std::size_t offset = 0;      // sample index where the signature starts
  double peak = 0.0;           // normalized correlation in [0, 1]
};

class PnSignatureDetector {
 public:
  /// `threshold`: minimum normalized correlation to accept a match.
  explicit PnSignatureDetector(double threshold = 0.6) : threshold_(threshold) {}

  /// Register a client's signature (the relay learns these on the fly as the
  /// AP transmits; registration models that learned state).
  void register_client(std::uint32_t client, CVec signature);

  /// Register the standard signature for `client` with the given length.
  void register_client(std::uint32_t client, std::size_t signature_len);

  std::size_t known_clients() const { return signatures_.size(); }

  /// Scan a receive stream; returns the best match above threshold, if any.
  /// Detection requires BOTH halves of the repeated signature to match
  /// (the repetition is the AP's guard against random correlation spikes).
  std::optional<PnDetection> detect(CSpan samples) const;

 private:
  double threshold_;
  std::map<std::uint32_t, CVec> signatures_;
};

}  // namespace ff::ident
