#include "ident/stf_fingerprint.hpp"

#include <cmath>

#include "common/check.hpp"
#include "dsp/fft.hpp"
#include "phy/preamble.hpp"

namespace ff::ident {

CVec stf_channel_imprint(CSpan stf_rx, const phy::OfdmParams& params) {
  const std::size_t n = params.fft_size;
  FF_CHECK_MSG(stf_rx.size() >= 2 * n, "need at least two 64-sample STF blocks");

  // Average two 64-sample blocks (8 STF words) and read the occupied bins.
  const dsp::FftPlan& plan = dsp::FftPlan::cached(n);
  const CVec ref = phy::stf_used_values(params);
  const auto used = params.used_subcarriers();

  CVec acc(n, Complex{});
  for (int block = 0; block < 2; ++block) {
    CVec f(stf_rx.begin() + block * static_cast<long>(n),
           stf_rx.begin() + (block + 1) * static_cast<long>(n));
    plan.forward(f);
    for (std::size_t i = 0; i < n; ++i) acc[i] += f[i];
  }

  CVec imprint;
  imprint.reserve(16);
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (std::abs(ref[i]) < 1e-12) continue;  // STF occupies every 4th tone
    imprint.push_back(acc[params.fft_bin(used[i])] / ref[i]);
  }
  return imprint;
}

// Threshold scale: with an indoor channel dominated by one path plus
// -15..-20 dB multipath, the 14-tone imprints of two clients differ mainly
// through their bulk-delay difference (a Dirichlet kernel across the tones),
// putting typical cross-client distances at 0.02-0.15 while same-channel
// re-measurements sit below ~0.005 at usable SNR. The aggressive setting
// therefore accepts only very tight matches AND demands a clear margin over
// the runner-up; the passive one accepts almost anything close.
FingerprintConfig aggressive_config() { return {0.005, 0.0015}; }
FingerprintConfig passive_config() { return {0.05, 0.0}; }

StfFingerprinter::StfFingerprinter(phy::OfdmParams params, FingerprintConfig cfg)
    : params_(params), cfg_(cfg) {}

void StfFingerprinter::enroll(std::uint32_t client, CVec imprint) {
  FF_CHECK(!imprint.empty());
  database_[client] = std::move(imprint);
}

void StfFingerprinter::enroll_from_stf(std::uint32_t client, CSpan stf_rx) {
  enroll(client, stf_channel_imprint(stf_rx, params_));
}

double StfFingerprinter::distance(CSpan a, CSpan b) {
  FF_CHECK(a.size() == b.size() && !a.empty());
  Complex inner{0.0, 0.0};
  double pa = 0.0, pb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    inner += std::conj(a[i]) * b[i];
    pa += std::norm(a[i]);
    pb += std::norm(b[i]);
  }
  if (pa <= 0.0 || pb <= 0.0) return 1.0;
  // Phase compensation = take |inner|; distance = 1 - normalized match.
  return 1.0 - std::abs(inner) / std::sqrt(pa * pb);
}

std::optional<FingerprintMatch> StfFingerprinter::identify(CSpan stf_rx) const {
  if (database_.empty()) return std::nullopt;
  const CVec imprint = stf_channel_imprint(stf_rx, params_);

  double best = 2.0, second = 2.0;
  std::uint32_t best_client = 0;
  for (const auto& [client, db] : database_) {
    if (db.size() != imprint.size()) continue;
    const double d = distance(imprint, db);
    if (d < best) {
      second = best;
      best = d;
      best_client = client;
    } else if (d < second) {
      second = d;
    }
  }
  if (best > cfg_.max_distance) return std::nullopt;
  const double margin = second - best;
  if (database_.size() > 1 && margin < cfg_.min_margin) return std::nullopt;
  return FingerprintMatch{best_client, best, margin};
}

}  // namespace ff::ident
