// Uplink sender identification by channel fingerprinting (Sec. 6, Fig. 20/21).
//
// Clients cannot be modified, so there is no PN signature on the uplink. But
// the destination is always the AP, and every WiFi packet starts with the
// same known STF — which arrives at the relay transformed by the client->
// relay channel. The relay already tracks that channel for every client, so
// it identifies the sender by matching the received STF's channel imprint
// against its per-client database: a minimum-distance search with phase
// compensation (timing/oscillator phase is not reproducible packet to
// packet, so only the channel's *shape* is matched).
//
// Thresholds: a false negative (no match) is harmless — the relay stays
// silent and the network behaves as stock WiFi. A false positive (wrong
// client) applies the wrong filter and can hurt SNR, so FF runs an
// "aggressive" (strict) threshold: near-zero false positives at the cost of
// ~5% false negatives (Fig. 21).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/types.hpp"
#include "phy/params.hpp"

namespace ff::ident {

/// Channel imprint on the STF's occupied subcarriers.
CVec stf_channel_imprint(CSpan stf_rx, const phy::OfdmParams& params);

struct FingerprintConfig {
  /// Maximum normalized distance (0 = identical shape, 1 = orthogonal) for a
  /// match. The "aggressive" setting of the paper.
  double max_distance = 0.10;
  /// The best match must beat the runner-up by at least this distance
  /// margin, or the decision is too ambiguous and the relay abstains.
  double min_margin = 0.05;
};

FingerprintConfig aggressive_config();
FingerprintConfig passive_config();

struct FingerprintMatch {
  std::uint32_t client = 0;
  double distance = 0.0;
  double margin = 0.0;
};

class StfFingerprinter {
 public:
  StfFingerprinter(phy::OfdmParams params, FingerprintConfig cfg = aggressive_config());

  /// Store/update a client's channel imprint (from packets whose identity
  /// was established, e.g. poll responses).
  void enroll(std::uint32_t client, CVec imprint);

  /// Enroll from a received STF.
  void enroll_from_stf(std::uint32_t client, CSpan stf_rx);

  std::size_t known_clients() const { return database_.size(); }

  /// Identify the sender of a packet from its received STF. nullopt = no
  /// confident match (false negative by design when ambiguous).
  std::optional<FingerprintMatch> identify(CSpan stf_rx) const;

  /// Phase-compensated normalized distance between two imprints, in [0, 1].
  static double distance(CSpan a, CSpan b);

 private:
  phy::OfdmParams params_;
  FingerprintConfig cfg_;
  std::map<std::uint32_t, CVec> database_;
};

}  // namespace ff::ident
