#include "ident/pn_detector.hpp"

#include "common/check.hpp"
#include "dsp/correlation.hpp"
#include "dsp/sequence.hpp"

namespace ff::ident {

void PnSignatureDetector::register_client(std::uint32_t client, CVec signature) {
  FF_CHECK(!signature.empty());
  signatures_[client] = std::move(signature);
}

void PnSignatureDetector::register_client(std::uint32_t client, std::size_t signature_len) {
  register_client(client, dsp::pn_signature(client, signature_len));
}

std::optional<PnDetection> PnSignatureDetector::detect(CSpan samples) const {
  std::optional<PnDetection> best;
  for (const auto& [client, sig] : signatures_) {
    if (samples.size() < 2 * sig.size()) continue;
    const auto corr = dsp::normalized_correlation(samples, sig);
    // Both halves of the repeated signature must match at the same offset.
    for (std::size_t n = 0; n + sig.size() < corr.size(); ++n) {
      const double first = corr[n];
      if (first < threshold_) continue;
      const double second = corr[n + sig.size()];
      if (second < threshold_) continue;
      const double peak = std::min(first, second);
      if (!best || peak > best->peak) best = PnDetection{client, n, peak};
      break;  // earliest qualifying offset per client
    }
  }
  return best;
}

}  // namespace ff::ident
