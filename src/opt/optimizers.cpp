#include "opt/optimizers.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ff::opt {

OptResult nelder_mead(const Objective& f, std::vector<double> x0,
                      const NelderMeadOptions& opts) {
  FF_CHECK(!x0.empty());
  const std::size_t n = x0.size();

  // Build the initial simplex: x0 plus a perturbation along each axis.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += opts.initial_step;
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  constexpr double alpha = 1.0;   // reflection
  constexpr double gamma = 2.0;   // expansion
  constexpr double rho = 0.5;     // contraction
  constexpr double sigma = 0.5;   // shrink

  std::size_t iter = 0;
  for (; iter < opts.max_iterations; ++iter) {
    // Order the simplex by objective value.
    std::vector<std::size_t> order(n + 1);
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

    const std::size_t best = order[0], worst = order[n], second_worst = order[n - 1];
    if (values[worst] - values[best] < opts.tolerance) break;

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d)
        p[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
      return p;
    };

    const std::vector<double> reflected = blend(alpha);
    const double fr = f(reflected);
    if (fr < values[best]) {
      const std::vector<double> expanded = blend(gamma);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
      continue;
    }
    if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
      continue;
    }
    const std::vector<double> contracted = blend(-rho);
    const double fc = f(contracted);
    if (fc < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = fc;
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d)
        simplex[i][d] = simplex[best][d] + sigma * (simplex[i][d] - simplex[best][d]);
      values[i] = f(simplex[i]);
    }
  }

  const std::size_t best =
      static_cast<std::size_t>(std::min_element(values.begin(), values.end()) - values.begin());
  return {simplex[best], values[best], iter};
}

OptResult gradient_descent(const Objective& f, std::vector<double> x0,
                           const std::function<void(std::vector<double>&)>& project,
                           const GradientOptions& opts) {
  FF_CHECK(!x0.empty());
  std::vector<double> x = std::move(x0);
  if (project) project(x);
  double fx = f(x);
  const std::size_t n = x.size();
  std::vector<double> grad(n);

  std::size_t iter = 0;
  for (; iter < opts.max_iterations; ++iter) {
    // Central-difference gradient.
    for (std::size_t d = 0; d < n; ++d) {
      const double saved = x[d];
      x[d] = saved + opts.fd_epsilon;
      const double fp = f(x);
      x[d] = saved - opts.fd_epsilon;
      const double fm = f(x);
      x[d] = saved;
      grad[d] = (fp - fm) / (2.0 * opts.fd_epsilon);
    }
    double gnorm = 0.0;
    for (const double g : grad) gnorm += g * g;
    if (gnorm < 1e-24) break;

    // Backtracking line search.
    double step = opts.step;
    bool improved = false;
    for (int bt = 0; bt < 30; ++bt) {
      std::vector<double> cand = x;
      for (std::size_t d = 0; d < n; ++d) cand[d] -= step * grad[d];
      if (project) project(cand);
      const double fc = f(cand);
      if (fc < fx - opts.tolerance) {
        x = std::move(cand);
        fx = fc;
        improved = true;
        break;
      }
      step *= 0.5;
    }
    if (!improved) break;
  }
  return {x, fx, iter};
}

double golden_section(const std::function<double(double)>& f, double lo, double hi,
                      double tol) {
  FF_CHECK(lo <= hi);
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - gr * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + gr * (b - a);
      fd = f(d);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace ff::opt
