// Generic numerical optimizers.
//
// The CNF MIMO filter problem (Eq. 2 in the paper) is non-convex; the paper
// solves it with a generic non-linear technique, and the digital/analog
// filter-splitting problem (Sec. 3.4) with sequential convex programming.
// These solvers provide the corresponding machinery: derivative-free
// Nelder-Mead for the unitary-filter search, numerical-gradient ascent with
// projection for refinement, and 1-D golden-section search for scalar tuning
// (e.g. attenuator sweeps).
#pragma once

#include <functional>
#include <vector>

namespace ff::opt {

using Objective = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  std::size_t max_iterations = 2000;
  double initial_step = 0.5;
  double tolerance = 1e-10;  // stop when simplex value spread drops below this
};

struct OptResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
};

/// Minimize `f` starting from `x0` with the Nelder-Mead simplex method.
OptResult nelder_mead(const Objective& f, std::vector<double> x0,
                      const NelderMeadOptions& opts = {});

struct GradientOptions {
  std::size_t max_iterations = 500;
  double step = 0.1;
  double fd_epsilon = 1e-6;   // central-difference step
  double tolerance = 1e-12;   // stop when improvement drops below this
};

/// Minimize `f` by gradient descent with numerical central differences and
/// backtracking line search. `project`, if given, is applied after each step
/// (projected gradient for constrained problems); pass nullptr when
/// unconstrained.
OptResult gradient_descent(const Objective& f, std::vector<double> x0,
                           const std::function<void(std::vector<double>&)>& project = nullptr,
                           const GradientOptions& opts = {});

/// Golden-section search for the minimum of a unimodal scalar function on
/// [lo, hi].
double golden_section(const std::function<double(double)>& f, double lo, double hi,
                      double tol = 1e-9);

}  // namespace ff::opt
