// Deterministic parallel execution engine.
//
// A fixed pool of workers dispatches chunked index ranges; callers use
// parallel_for(n, body) for embarrassingly parallel loops. The engine makes
// three guarantees the evaluation harness depends on:
//
//   1. Every index in [0, n) is executed exactly once.
//   2. The first exception thrown by any body is rethrown in the caller
//      (after all workers have left the loop), never swallowed.
//   3. A body that itself calls parallel_for runs the nested loop inline on
//      the calling thread — nesting can never deadlock the pool.
//
// Determinism is the caller's contract: bodies must only write state owned
// by their own index (e.g. slot i of a pre-sized results vector) and draw
// randomness from per-index RNG streams prepared serially beforehand. Under
// that contract, results are bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace ff {

/// Worker count used when a caller passes threads == 0: the FF_THREADS
/// environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency(), else 1.
std::size_t default_thread_count();

/// Run body(i) for every i in [0, n), using up to `threads` threads
/// (0 = default_thread_count()). The calling thread participates, so
/// threads == 1 degenerates to a plain serial loop with zero overhead.
/// Work is handed out as contiguous index chunks from a shared atomic
/// cursor; chunk boundaries never affect results under the determinism
/// contract above.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// True while the current thread is executing inside a parallel_for body;
/// nested parallel_for calls detect this and run inline.
bool inside_parallel_region();

}  // namespace ff
