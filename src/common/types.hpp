// Fundamental scalar and buffer types shared by every FastForward module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ff {

/// Complex baseband sample. Double precision throughout: the cancellation
/// experiments measure residuals 110 dB below the signal, which is close to
/// the float32 mantissa floor; double keeps numerical noise ~250 dB down.
using Complex = std::complex<double>;

/// A contiguous buffer of IQ samples.
using CVec = std::vector<Complex>;

/// Non-owning views used across module boundaries.
using CSpan = std::span<const Complex>;
using CMutSpan = std::span<Complex>;

using RSpan = std::span<const double>;

inline constexpr Complex kI{0.0, 1.0};

}  // namespace ff
