// Fundamental scalar and buffer types shared by every FastForward module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ff {

/// Complex baseband sample. Double precision throughout: the cancellation
/// experiments measure residuals 110 dB below the signal, which is close to
/// the float32 mantissa floor; double keeps numerical noise ~250 dB down.
using Complex = std::complex<double>;

/// A contiguous buffer of IQ samples.
using CVec = std::vector<Complex>;

/// Non-owning views used across module boundaries.
using CSpan = std::span<const Complex>;
using CMutSpan = std::span<Complex>;

using RSpan = std::span<const double>;

/// Single-precision twin of the sample types, for the float32 kernel family
/// (docs/PERFORMANCE.md, "The float32 family"). The relay's forward path can
/// run in f32 — twice the SIMD lanes per register — when ~-120 dB numerical
/// noise is acceptable; the default stays double for the reason above.
using Complex32 = std::complex<float>;
using CVec32 = std::vector<Complex32>;
using CSpan32 = std::span<const Complex32>;
using CMutSpan32 = std::span<Complex32>;

/// Arithmetic precision of a sample-processing path. Components that offer a
/// float32 fast path (relay::ForwardPipeline, the stream elements) take this
/// in their config; kF64 is always the default and the accuracy reference.
/// Each precision has its OWN pinned determinism checksums — switching
/// precision changes the bits by design, but within one precision the output
/// stays invariant across block sizes, threads and SIMD on/off.
enum class Precision : std::uint8_t { kF64, kF32 };

/// Canonical names ("f64" / "f32") — the `precision=` Params key and the
/// --precision CLI flag use these.
inline const char* to_string(Precision p) {
  return p == Precision::kF32 ? "f32" : "f64";
}

inline constexpr Complex kI{0.0, 1.0};

}  // namespace ff
