#include "common/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/json_writer.hpp"

namespace ff {

std::string to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kTimer: return "timer";
  }
  return "?";
}

// ------------------------------------------------------------------ shards

struct MetricsRegistry::Shard {
  // Only the owning thread writes; the mutex exists so snapshot()/clear()
  // can read from another thread mid-run. Uncontended locks on the
  // per-event path are nanoseconds — and events are per-tune/per-design,
  // not per-sample.
  std::mutex mu;
  std::unordered_map<std::string, std::uint64_t> counters;
  std::unordered_map<std::string, double> gauges;  // last set value
  std::unordered_map<std::string, std::vector<double>> histograms;
  std::unordered_map<std::string, std::vector<double>> timers;
};

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1);
}

/// Per-thread shard cache keyed by process-unique registry id, so a thread
/// finds its shard without touching the registry mutex after first use.
/// Ids are never reused, so an entry for a destroyed registry is simply
/// never looked up again. Stored as void* because Shard is private to the
/// registry; local_shard() is the only reader and knows the real type.
std::unordered_map<std::uint64_t, void*>& shard_cache() {
  thread_local std::unordered_map<std::uint64_t, void*> cache;
  return cache;
}

/// Force -0.0 to +0.0 so a sample's serialized form never depends on which
/// arithmetic path produced an (equal-comparing) zero.
double canonical(double v) { return v == 0.0 ? 0.0 : v; }

/// Nearest-rank percentile over an ascending-sorted sample set.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  return quantile_sorted(sorted, p / 100.0);
}

MetricValue aggregate_samples(const std::string& name, MetricKind kind,
                              std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  MetricValue m;
  m.name = name;
  m.kind = kind;
  m.count = samples.size();
  if (samples.empty()) return m;
  m.min = samples.front();
  m.max = samples.back();
  // Summing in sorted order pins the floating-point accumulation order, so
  // the sum (and mean) is bit-identical however the observations were
  // sharded across threads.
  double sum = 0.0;
  for (const double v : samples) sum += v;
  m.sum = canonical(sum);
  m.mean = canonical(sum / static_cast<double>(samples.size()));
  m.p50 = percentile_sorted(samples, 50.0);
  m.p90 = percentile_sorted(samples, 90.0);
  m.p99 = percentile_sorted(samples, 99.0);
  return m;
}

void write_histogram_entries(JsonWriter& json, const std::vector<MetricValue>& ms,
                             bool include_values) {
  json.begin_array();
  for (const auto& m : ms) {
    json.begin_object();
    json.key("name").value(m.name);
    json.key("count").value(m.count);
    if (include_values) {
      json.key("min").value(m.min);
      json.key("max").value(m.max);
      json.key("sum").value(m.sum);
      json.key("mean").value(m.mean);
      json.key("p50").value(m.p50);
      json.key("p90").value(m.p90);
      json.key("p99").value(m.p99);
    }
    json.end_object();
  }
  json.end_array();
}

}  // namespace

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx == 0) idx = 1;
  return sorted[std::min(idx, sorted.size()) - 1];
}

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  auto& cache = shard_cache();
  const auto it = cache.find(id_);
  if (it != cache.end()) return *static_cast<Shard*>(it->second);
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.emplace(id_, shard);
  return *shard;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.counters[std::string(name)] += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.gauges[std::string(name)] = canonical(value);
}

void MetricsRegistry::observe(std::string_view name, double value) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.histograms[std::string(name)].push_back(canonical(value));
}

void MetricsRegistry::observe_duration_us(std::string_view name, double us) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.timers[std::string(name)].push_back(canonical(us));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // std::map keys the merge by name, which both deduplicates across shards
  // and delivers the sorted-by-name output order in one pass.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::vector<double>> histograms;
  std::map<std::string, std::vector<double>> timers;

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [name, v] : shard->counters) counters[name] += v;
    for (const auto& [name, v] : shard->gauges) {
      const auto [it, inserted] = gauges.emplace(name, v);
      if (!inserted) it->second = std::max(it->second, v);
    }
    for (const auto& [name, vs] : shard->histograms) {
      auto& dst = histograms[name];
      dst.insert(dst.end(), vs.begin(), vs.end());
    }
    for (const auto& [name, vs] : shard->timers) {
      auto& dst = timers[name];
      dst.insert(dst.end(), vs.begin(), vs.end());
    }
  }

  MetricsSnapshot snap;
  for (const auto& [name, v] : counters) {
    MetricValue m;
    m.name = name;
    m.kind = MetricKind::kCounter;
    m.count = v;
    snap.counters.push_back(std::move(m));
  }
  for (const auto& [name, v] : gauges) {
    MetricValue m;
    m.name = name;
    m.kind = MetricKind::kGauge;
    m.value = v;
    snap.gauges.push_back(std::move(m));
  }
  for (auto& [name, vs] : histograms)
    snap.histograms.push_back(aggregate_samples(name, MetricKind::kHistogram, std::move(vs)));
  for (auto& [name, vs] : timers)
    snap.timers.push_back(aggregate_samples(name, MetricKind::kTimer, std::move(vs)));
  return snap;
}

std::vector<double> MetricsRegistry::histogram_samples(std::string_view name) const {
  // The same shard merge snapshot() performs, restricted to one histogram:
  // concatenation across shards (any order) then an ascending sort, so the
  // result — and every quantile of it — is thread-count-invariant.
  std::vector<double> samples;
  const std::string key(name);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    const auto it = shard->histograms.find(key);
    if (it != shard->histograms.end())
      samples.insert(samples.end(), it->second.begin(), it->second.end());
  }
  std::sort(samples.begin(), samples.end());
  return samples;
}

double MetricsRegistry::histogram_quantile(std::string_view name, double q) const {
  return quantile_sorted(histogram_samples(name), q);
}

std::vector<HistogramCdfPoint> MetricsRegistry::histogram_cdf(std::string_view name,
                                                              std::size_t points) const {
  const std::vector<double> samples = histogram_samples(name);
  std::vector<HistogramCdfPoint> cdf;
  if (samples.empty() || points == 0) return cdf;
  cdf.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points);
    cdf.push_back({p, quantile_sorted(samples, p)});
  }
  return cdf;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->gauges.clear();
    shard->histograms.clear();
    shard->timers.clear();
  }
}

// ---------------------------------------------------------------- exporters

std::string MetricsSnapshot::to_json(bool include_timer_values) const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value(std::string(kSchema));
  json.key("counters");
  json.begin_array();
  for (const auto& m : counters) {
    json.begin_object();
    json.key("name").value(m.name);
    json.key("value").value(m.count);
    json.end_object();
  }
  json.end_array();
  json.key("gauges");
  json.begin_array();
  for (const auto& m : gauges) {
    json.begin_object();
    json.key("name").value(m.name);
    json.key("value").value(m.value);
    json.end_object();
  }
  json.end_array();
  json.key("histograms");
  write_histogram_entries(json, histograms, /*include_values=*/true);
  json.key("timers");
  write_histogram_entries(json, timers, include_timer_values);
  json.end_object();
  return json.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "name,kind,count,value,min,max,sum,mean,p50,p90,p99\n";
  const auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto row = [&](const MetricValue& m) {
    os << m.name << ',' << to_string(m.kind) << ',' << m.count << ',';
    if (m.kind == MetricKind::kGauge) os << num(m.value);
    os << ',';
    if (m.kind == MetricKind::kHistogram || m.kind == MetricKind::kTimer)
      os << num(m.min) << ',' << num(m.max) << ',' << num(m.sum) << ',' << num(m.mean) << ','
         << num(m.p50) << ',' << num(m.p90) << ',' << num(m.p99);
    else
      os << ",,,,,,";
    os << '\n';
  };
  for (const auto& m : counters) row(m);
  for (const auto& m : gauges) row(m);
  for (const auto& m : histograms) row(m);
  for (const auto& m : timers) row(m);
  return os.str();
}

}  // namespace ff
