// Deterministic RNG stream derivation — the "PR 1 trick" as a shared
// vocabulary.
//
// Every deterministic-parallel subsystem (the experiment engine, the stream
// elements, the city simulation) pins its randomness the same way: a master
// Rng forks one child stream per named sub-domain (floor plan, city site,
// "noise"/"drift" role) with the label hashed by FNV-1a — pinned by
// common/rng.hpp, so streams are identical across standard libraries — and
// each item within a sub-domain forks again by its index. All forking
// happens in a serial planning phase; the parallel compute phase then only
// ever draws from pre-forked per-item streams, which is what makes results
// bit-identical at any thread, shard, or chunk count.
//
// These helpers replace the previously duplicated inline spellings
// (`master.fork(fnv1a_64(plan.name()))` in eval/experiment.cpp,
// `Rng(seed).fork(fnv1a_64("noise"))` in stream/elements.cpp). They are
// byte-for-byte equivalent to those spellings: the committed experiment and
// stream checksums depend on it (tests/parallel_test.cpp pins the
// equivalence).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.hpp"

namespace ff::seeding {

/// Child stream for the named sub-domain `name` under `parent`. Advances
/// `parent` by exactly one engine draw (forking IS a parent draw), like any
/// other fork.
inline Rng fork_named(Rng& parent, std::string_view name) {
  return parent.fork(fnv1a_64(name));
}

/// Child stream for the `index`-th item of a sub-domain. Thin alias for
/// Rng::fork kept so planning loops read as named-then-indexed derivation.
inline Rng fork_indexed(Rng& parent, std::uint64_t index) { return parent.fork(index); }

/// Named stream rooted directly at a raw seed (no shared master): the
/// stream elements' per-role streams, where one config seed feeds several
/// independent consumers ("noise", "drift"). Each call builds a fresh root,
/// so sibling roles never perturb each other's sequences.
inline Rng named_stream(std::uint64_t seed, std::string_view name) {
  Rng root(seed);
  return fork_named(root, name);
}

}  // namespace ff::seeding
