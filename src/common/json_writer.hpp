// Minimal JSON emitter shared by the machine-readable telemetry files
// (BENCH_*.json, metrics reports): flat objects, arrays of objects, numbers
// and strings only. Numbers are formatted with %.6g, so a given double
// always serializes to the same bytes — the determinism checks that diff
// these files byte-for-byte rely on that.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ff {

class JsonWriter {
 public:
  JsonWriter& key(const std::string& k) {
    comma();
    os_ << '"' << k << "\":";
    fresh_ = true;
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    os_ << format_number(v);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    comma();
    os_ << '"';
    for (const char c : v)
      if (c == '"' || c == '\\')
        os_ << '\\' << c;
      else
        os_ << c;
    os_ << '"';
    return *this;
  }
  JsonWriter& begin_object() {
    comma();
    os_ << '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    os_ << '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    os_ << '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    os_ << ']';
    fresh_ = false;
    return *this;
  }

  std::string str() const { return os_.str(); }

  bool write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << str() << '\n';
    return static_cast<bool>(f);
  }

 private:
  static std::string format_number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  void comma() {
    if (!fresh_) os_ << ',';
    fresh_ = false;
  }

  std::ostringstream os_;
  bool fresh_ = true;
};

}  // namespace ff
