// Deterministic random number generation. Every stochastic component in the
// simulator draws from an Rng seeded explicitly by the experiment, so all
// results are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ff {

/// FNV-1a 64-bit string hash. Used wherever a seed is derived from a name
/// (floor plans, scheme labels): unlike std::hash, the value is pinned by
/// this implementation, so forked RNG streams — and therefore every figure —
/// are identical across standard libraries and platforms.
constexpr std::uint64_t fnv1a_64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform() { return uniform_(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). `n` must be positive: n == 0 would build a
  /// uniform_int_distribution with hi < lo, whose behavior is undefined.
  std::size_t index(std::size_t n) {
    FF_CHECK_MSG(n > 0, "Rng::index needs a non-empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Standard normal.
  double gaussian() { return normal_(engine_); }

  /// Zero-mean circularly-symmetric complex Gaussian with E[|x|^2] = variance.
  Complex cgaussian(double variance = 1.0) {
    const double s = std::sqrt(variance / 2.0);
    return {s * gaussian(), s * gaussian()};
  }

  /// Float32 twin of cgaussian(): the float32 kernel family's noise draw.
  /// Marsaglia polar method entirely in float arithmetic, one 64-bit engine
  /// draw per trial (the top two 24-bit fields feed the two uniforms) —
  /// several times cheaper than the two normal_distribution<double> draws
  /// behind cgaussian(), which is what keeps noise injection off the
  /// critical path of a float32 stream session. Deliberately a DIFFERENT
  /// draw sequence from cgaussian() with the same statistics; the f32
  /// checksum family pins it separately (docs/PERFORMANCE.md, "The float32
  /// family").
  Complex32 cgaussian32(float variance = 1.0f) {
    float u, v, q;
    do {
      const std::uint64_t bits = engine_();
      u = static_cast<float>(bits >> 40) * 0x1p-23f - 1.0f;
      v = static_cast<float>((bits >> 16) & 0xFFFFFFu) * 0x1p-23f - 1.0f;
      q = u * u + v * v;
    } while (q >= 1.0f || q == 0.0f);
    const float m =
        std::sqrt(variance * 0.5f) * std::sqrt(-2.0f * std::log(q) / q);
    return {u * m, v * m};
  }

  /// Random phase point on the unit circle.
  Complex unit_phasor() {
    const double phi = uniform(0.0, 6.283185307179586);
    return {std::cos(phi), std::sin(phi)};
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (stable given the same label).
  Rng fork(std::uint64_t label) {
    return Rng(engine_() ^ (label * 0x9E3779B97F4A7C15ULL));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace ff
