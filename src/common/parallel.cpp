#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ff {
namespace {

thread_local bool tl_inside_parallel = false;

struct InsideGuard {
  bool previous;
  InsideGuard() : previous(tl_inside_parallel) { tl_inside_parallel = true; }
  ~InsideGuard() { tl_inside_parallel = previous; }
};

/// One parallel_for invocation: a shared cursor hands out contiguous index
/// chunks; the first exception wins and aborts the remaining chunks.
struct Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  void record_error(std::exception_ptr e) {
    failed.store(true, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lk(error_mutex);
    if (!error) error = std::move(e);
  }

  void run_chunks() {
    const InsideGuard guard;
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t start = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= n) return;
      const std::size_t end = std::min(n, start + chunk);
      try {
        for (std::size_t i = start; i < end; ++i) (*body)(i);
      } catch (...) {
        record_error(std::current_exception());
        return;
      }
    }
  }
};

/// Fixed worker pool, created once on first parallel call. Workers sleep on
/// a condition variable between jobs; each job admits at most the requested
/// number of extra workers (the caller always participates too).
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t capacity() const { return workers_.size() + 1; }

  void run(Job& job, std::size_t extra_workers) {
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      job_ = &job;
      slots_ = std::min(extra_workers, workers_.size());
      ++generation_;
    }
    cv_.notify_all();
    job.run_chunks();  // the caller is always one of the workers
    {
      std::unique_lock<std::mutex> lk(mutex_);
      slots_ = 0;  // no late joiners once the caller has drained the cursor
      done_cv_.wait(lk, [&] { return active_ == 0; });
      job_ = nullptr;
    }
  }

 private:
  Pool() {
    // Size the pool so small machines can still exercise (oversubscribed)
    // multi-thread schedules up to kMinCapacity ways; determinism never
    // depends on the physical core count.
    static constexpr std::size_t kMinCapacity = 8;
    static constexpr std::size_t kMaxCapacity = 64;
    const std::size_t cap =
        std::clamp(default_thread_count(), kMinCapacity, kMaxCapacity);
    workers_.reserve(cap - 1);
    for (std::size_t i = 0; i + 1 < cap; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
      cv_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen && slots_ > 0);
      });
      if (stop_) return;
      seen = generation_;
      --slots_;
      ++active_;
      Job* job = job_;
      lk.unlock();
      job->run_chunks();
      lk.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;          // guarded by mutex_
  std::size_t slots_ = 0;       // remaining worker slots for the current job
  std::size_t active_ = 0;      // workers currently inside the current job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("FF_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool inside_parallel_region() { return tl_inside_parallel; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();

  // Serial fast path; also taken for nested calls so a body that itself
  // parallelizes can never deadlock waiting on the pool it runs inside.
  if (threads <= 1 || n == 1 || inside_parallel_region()) {
    const InsideGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Pool& pool = Pool::instance();
  threads = std::min({threads, n, pool.capacity()});

  Job job;
  job.n = n;
  // ~4 chunks per worker balances scheduling slack against cursor traffic.
  job.chunk = std::max<std::size_t>(1, n / (threads * 4));
  job.body = &body;
  pool.run(job, threads - 1);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace ff
