// Thread-to-core pinning for the throughput-mode pipeline scheduler.
//
// Pinning a long-lived worker to one core keeps its element chain's state
// (filter delay lines, ring cache lines) resident in that core's private
// caches and stops the OS from migrating the thread mid-stream. It is an
// optimization, never a requirement: on platforms without an affinity API
// (or when the mask is rejected — containers often expose fewer cores than
// the host has) pinning degrades to a graceful no-op and the caller keeps
// running unpinned.
#pragma once

#include <cstddef>

namespace ff {

/// True when the platform has a usable thread-affinity API compiled in
/// (Linux pthread_setaffinity_np). False means pin_current_thread_to_core
/// always returns false without attempting anything.
bool affinity_supported();

/// Number of CPUs the calling thread may run on right now (the affinity
/// mask cardinality where available, else std::thread::hardware_concurrency,
/// else 1). This is what a cgroup-limited CI container actually sees.
std::size_t visible_cpu_count();

/// Pin the calling thread to `core` (modulo the online CPU count, so any
/// chain index is a valid argument). Returns true when the affinity call
/// succeeded; false on unsupported platforms or a rejected mask. Never
/// throws — failure to pin is a performance note, not an error.
bool pin_current_thread_to_core(std::size_t core);

}  // namespace ff
