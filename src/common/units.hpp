// dB/linear conversions and the physical constants used throughout the
// simulator. Conventions: power quantities in dB/dBm, amplitudes linear.
#pragma once

#include <cmath>

namespace ff {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kSpeedOfLight = 2.99792458e8;  // m/s

/// Power ratio -> dB. `ratio` must be > 0.
inline double db_from_power(double ratio) { return 10.0 * std::log10(ratio); }

/// dB -> power ratio.
inline double power_from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude ratio -> dB.
inline double db_from_amplitude(double ratio) { return 20.0 * std::log10(ratio); }

/// dB -> amplitude ratio.
inline double amplitude_from_db(double db) { return std::pow(10.0, db / 20.0); }

/// dBm -> watts and back (power referenced to 1 mW).
inline double watts_from_dbm(double dbm) { return 1e-3 * power_from_db(dbm); }
inline double dbm_from_watts(double w) { return db_from_power(w / 1e-3); }

/// Thermal noise floor for bandwidth `bw_hz` at the given noise figure.
/// kT = -174 dBm/Hz at 290 K.
inline double thermal_noise_dbm(double bw_hz, double noise_figure_db = 0.0) {
  return -174.0 + 10.0 * std::log10(bw_hz) + noise_figure_db;
}

/// Degrees <-> radians.
inline double rad_from_deg(double deg) { return deg * kPi / 180.0; }
inline double deg_from_rad(double rad) { return rad * 180.0 / kPi; }

}  // namespace ff
