// Lightweight contract checking (Core Guidelines I.6/I.8 style).
// FF_CHECK is always on: the simulator prefers a crisp failure over silently
// producing wrong physics.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ff::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "FF_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ff::detail

#define FF_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr)) ::ff::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define FF_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream ff_os_;                                      \
      ff_os_ << msg;                                                  \
      ::ff::detail::check_failed(#expr, __FILE__, __LINE__, ff_os_.str()); \
    }                                                                 \
  } while (false)
