#include "common/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ff {

bool affinity_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

std::size_t visible_cpu_count() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool pin_current_thread_to_core(std::size_t core) {
#if defined(__linux__)
  const std::size_t n = visible_cpu_count();
  if (n == 0) return false;
  // Pin to the core'th *allowed* CPU, so masks restricted by cgroups (CI
  // containers) still get a valid target.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  std::size_t want = core % n;
  int target = -1;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (want == 0) {
      target = cpu;
      break;
    }
    --want;
  }
  if (target < 0) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(target, &one);
  return pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace ff
