// Lightweight metrics registry for the relay stack.
//
// The paper's evaluation hinges on internal quantities the subsystems
// otherwise compute and throw away: self-interference residual per
// cancellation stage (Sec. 3.3), tuner convergence, CNF design residuals
// (Sec. 3.4), per-location link categories (Fig. 15). A MetricsRegistry
// collects them as named metrics with hierarchical dotted names
// (`relay.tuner.iterations`, `fd.digital.residual_dbm`,
// `eval.location.wall_us`) and exports JSON/CSV reports.
//
// Injection, not globals: each subsystem's config struct carries a
// `MetricsRegistry*` (default nullptr). A null pointer is a no-op — the
// null-safe helpers in ff::metrics compile down to one branch, so the
// deterministic compute phase stays pure and the hot path pays nothing
// when observability is off.
//
// Thread-safety and determinism: each thread writes to its own shard
// (created on first use); `snapshot()` merges shards with order-independent
// rules and sorts metrics by name, so a report produced under the parallel
// engine is byte-identical at any thread count:
//
//   * counters   — integer sums (associative and commutative);
//   * gauges     — the maximum of the per-shard last-set values (use them
//                  from serial code when last-write semantics matter);
//   * histograms — exact sample sets, merged and sorted ascending before
//                  any aggregate (sum/mean/percentiles) is computed, so
//                  floating-point accumulation order is pinned;
//   * timers     — histograms of wall-clock durations. Their VALUES are
//                  inherently nondeterministic; exporters can exclude them
//                  (`to_json(/*include_timer_values=*/false)`) so the rest
//                  of a report can be diffed byte-for-byte.
//
// Histograms store every observation (8 bytes each). That is exact and
// deterministic, and cheap at this codebase's scale (hundreds of
// observations per experiment); counters — not histograms — belong on
// per-sample hot loops.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ff {

enum class MetricKind { kCounter, kGauge, kHistogram, kTimer };

std::string to_string(MetricKind k);

/// One merged metric as of a snapshot. Histogram/timer aggregates are
/// computed over the ascending-sorted sample set.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  // counter value, or number of observations
  double value = 0.0;       // gauge value
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Deterministically merged view of a registry: sorted by name within each
/// kind. `schema` tags the export format for downstream tooling.
struct MetricsSnapshot {
  static constexpr const char* kSchema = "ff-metrics-v1";

  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
  std::vector<MetricValue> histograms;
  std::vector<MetricValue> timers;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() && timers.empty();
  }

  /// JSON report (see docs/OBSERVABILITY.md for the schema). With
  /// `include_timer_values = false` the timers section keeps only metric
  /// names and observation counts — everything left is deterministic and
  /// can be compared byte-for-byte across runs and thread counts.
  std::string to_json(bool include_timer_values = true) const;

  /// Flat CSV: name,kind,count,value,min,max,sum,mean,p50,p90,p99.
  std::string to_csv() const;
};

/// One point of a deterministic histogram CDF: P(X <= value) = prob.
struct HistogramCdfPoint {
  double prob = 0.0;   // cumulative probability in (0, 1]
  double value = 0.0;  // nearest-rank quantile at that probability
};

/// Nearest-rank quantile (q in [0, 1]) over an ascending-sorted sample set —
/// the exact rule snapshot() uses for p50/p90/p99, exposed so callers can
/// take any quantile of a histogram (the city throughput CDF). Returns the
/// sample at index ceil(q*n)-1 (clamped); 0.0 on an empty set. Because the
/// input is the merged-and-sorted sample set, the result is bit-identical
/// however the observations were sharded across threads.
double quantile_sorted(const std::vector<double>& sorted, double q);

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Counter: add `delta` (registers the metric even when delta == 0).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Gauge: record the latest value (merged across shards by max).
  void set(std::string_view name, double value);

  /// Histogram: record one observation.
  void observe(std::string_view name, double value);

  /// Timer-kind histogram: record a wall-clock duration in microseconds.
  void observe_duration_us(std::string_view name, double us);

  /// Merge every shard into a deterministic snapshot.
  MetricsSnapshot snapshot() const;

  /// All observations of one histogram metric, merged across shards and
  /// sorted ascending — the exact sample set snapshot() aggregates. Empty
  /// when the metric has never been observed (or is not a histogram).
  std::vector<double> histogram_samples(std::string_view name) const;

  /// Deterministic quantile of a histogram: quantile_sorted() over the
  /// merged sample set. q in [0, 1]; 0.0 for an unrecorded metric.
  double histogram_quantile(std::string_view name, double q) const;

  /// Deterministic CDF of a histogram sampled at `points` evenly spaced
  /// probabilities (1/points, 2/points, ..., 1): each entry pairs the
  /// probability with the nearest-rank quantile there. Empty when the
  /// metric has never been observed. Like every snapshot aggregate, the
  /// result is byte-identical at any thread count.
  std::vector<HistogramCdfPoint> histogram_cdf(std::string_view name,
                                               std::size_t points = 20) const;

  /// Drop all recorded values (shards stay registered to their threads).
  void clear();

  /// Scoped wall-clock timer: records into `registry` (nullptr = no-op,
  /// not even a clock read) on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(MetricsRegistry* registry, std::string_view name)
        : registry_(registry), name_(name) {
      if (registry_) start_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer() {
      if (!registry_) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->observe_duration_us(
          name_, std::chrono::duration<double, std::micro>(elapsed).count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    MetricsRegistry* registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_{};
  };

 private:
  struct Shard;

  Shard& local_shard();

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Null-safe instrumentation helpers: the injected-pointer no-op path.
/// `metrics::add(cfg.metrics, ...)` costs one predictable branch when no
/// registry is injected.
namespace metrics {

inline void add(MetricsRegistry* r, std::string_view name, std::uint64_t delta = 1) {
  if (r) r->add(name, delta);
}
inline void set(MetricsRegistry* r, std::string_view name, double value) {
  if (r) r->set(name, value);
}
inline void observe(MetricsRegistry* r, std::string_view name, double value) {
  if (r) r->observe(name, value);
}

}  // namespace metrics

}  // namespace ff
