// Aligned console table printing shared by the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ff::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner for bench output.
void print_banner(const std::string& title);

}  // namespace ff::eval
