#include "eval/timedomain.hpp"

#include <cmath>

#include "channel/cfo.hpp"
#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"
#include "dsp/noise.hpp"
#include "dsp/resample.hpp"
#include "phy/mcs.hpp"
#include "relay/amplification.hpp"
#include "relay/cnf_design.hpp"
#include "relay/digital_prefilter.hpp"

namespace ff::eval {

namespace {

/// The prototype's converter oversampling (80 Msps for the 20 MHz PHY).
constexpr std::size_t kOversample = 4;

/// Common discretization lead (high-rate samples) so sub-sample path delays
/// keep their two-sided interpolation kernels. The direct path gets twice
/// the lead so both arrival paths share identical total alignment.
constexpr double kAlignSamples = 16.0;

}  // namespace

TimeDomainLink build_td_link(const Placement& placement, const channel::Point& client,
                             const TestbedConfig& cfg, Rng& rng) {
  channel::PropagationConfig prop = cfg.prop;
  prop.carrier_hz = cfg.ofdm.carrier_hz;
  const channel::IndoorPropagation model(placement.plan, prop);

  TimeDomainLink link;
  link.sd = model.siso_link(placement.ap, client, rng);
  link.sr = model.siso_link(placement.ap, placement.relay, rng);
  link.rd = model.siso_link(placement.relay, client, rng);
  link.source_power_dbm = cfg.ap_power_dbm;
  link.dest_noise_dbm = cfg.noise_floor_dbm;
  link.relay_noise_dbm = cfg.relay_noise_dbm;
  link.source_cfo_hz = rng.uniform(-45e3, 45e3);
  return link;
}

relay::PipelineConfig make_ff_pipeline(const TimeDomainLink& link,
                                       const phy::OfdmParams& params,
                                       double extra_latency_s, bool restore_cfo) {
  const double fs_hi = params.sample_rate_hz * static_cast<double>(kOversample);

  relay::PipelineConfig p;
  p.sample_rate_hz = fs_hi;
  p.adc_dac_delay_samples = kOversample;  // 50 ns, the paper's ADC+DAC figure
  p.extra_buffer_samples =
      static_cast<std::size_t>(std::llround(extra_latency_s * fs_hi));
  p.cfo_hz = link.source_cfo_hz;  // the relay's CFO estimate (Sec. 4.1)
  p.restore_cfo = restore_cfo;

  // CNF design against the channels INCLUDING the chain's nominal bulk
  // delay: the hardware measures its channels through its own front-end, so
  // the design genuinely fights the ADC/DAC delay ramp. The ARTIFICIAL
  // buffering of the Fig. 16 sweep is deliberately NOT given to the design —
  // the paper injects it below the filter's knowledge, which is why gains
  // collapse (phase-incoherent forwarding) and eventually go negative (ISI
  // once outside the CP).
  const auto freqs = params.used_subcarrier_freqs();
  const CVec h_sd = link.sd.response(freqs);
  const CVec h_sr = link.sr.response(freqs);
  CVec h_rd = link.rd.response(freqs);
  const double chain_delay_s = static_cast<double>(p.adc_dac_delay_samples) / fs_hi;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double phase = -kTwoPi * freqs[i] * chain_delay_s;
    h_rd[i] *= Complex{std::cos(phase), std::sin(phase)};
  }

  const CVec ideal = relay::cnf_siso_ideal(h_sd, h_sr, h_rd);
  relay::CnfSplitConfig split_cfg;
  split_cfg.sample_rate_hz = fs_hi;
  const relay::CnfSplit split = relay::design_cnf_split(ideal, freqs, split_cfg);
  p.prefilter = split.prefilter;
  p.analog_rotation = split.analog.response(0.0);
  // DAC/TX reconstruction low-pass: passband covers the occupied band
  // (fs_low/2 of the 4x-oversampled rate = 0.135 normalized incl. margin);
  // its group delay IS the modelled converter latency.
  p.tx_filter = dsp::design_lowpass(2 * p.adc_dac_delay_samples + 1, 0.17);

  const double rd_atten = -link.rd.power_gain_db();
  const double rx_dbm = link.source_power_dbm + link.sr.power_gain_db();
  const auto amp = relay::decide_amplification(110.0, rd_atten, rx_dbm);
  // The amplifier absorbs the realized filter's insertion loss so the total
  // forward gain sits at the decided ceiling.
  p.gain_db = amp.gain_db - db_from_amplitude(split.insertion_gain());
  return p;
}

TdRunResult run_td_packet(const TimeDomainLink& link, const TdRunOptions& opts, Rng& rng) {
  const phy::OfdmParams& params = opts.params;
  const phy::Transmitter tx(params);
  const phy::Receiver rx(params);
  const double fs_hi = params.sample_rate_hz * static_cast<double>(kOversample);
  const double align_s = kAlignSamples / fs_hi;

  // Source packet, upconverted to the 80 Msps simulation rate.
  phy::TxOptions txo;
  txo.mcs_index = opts.mcs_index;
  std::vector<std::uint8_t> payload(opts.payload_bits);
  for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;
  CVec x20 = tx.modulate(payload, txo);
  CVec padded(60, Complex{});
  padded.insert(padded.end(), x20.begin(), x20.end());
  padded.resize(padded.size() + 120, Complex{});
  CVec x = dsp::upsample(padded, kOversample);
  dsp::set_mean_power(x, power_from_db(link.source_power_dbm));
  // Source oscillator offset relative to the destination's.
  x = channel::apply_cfo(x, link.source_cfo_hz, fs_hi);

  // Out-of-band noise scaling: the floor is defined over the 20 MHz channel,
  // the simulation runs 4x wider.
  const double wideband_noise_scale = static_cast<double>(kOversample);

  // Direct path (double alignment so both arrival paths share it).
  CVec at_dest = link.sd.apply(x, fs_hi, -2.0 * align_s);

  TdRunResult result;
  if (opts.use_relay) {
    CVec at_relay = link.sr.apply(x, fs_hi, -align_s);
    dsp::add_awgn(rng, at_relay,
                  power_from_db(link.relay_noise_dbm) * wideband_noise_scale);
    relay::ForwardPipeline pipeline(opts.pipeline);
    const CVec relay_tx = pipeline.process(at_relay);
    const CVec relayed = link.rd.apply(relay_tx, fs_hi, -align_s);
    dsp::accumulate(at_dest, relayed);
    result.relay_extra_delay_s = link.sr.min_delay_s() + link.rd.min_delay_s() +
                                 pipeline.max_delay_s() - link.sd.min_delay_s();
  }
  dsp::add_awgn(rng, at_dest, power_from_db(link.dest_noise_dbm) * wideband_noise_scale);

  const CVec at_dest_20 = dsp::downsample(at_dest, kOversample);
  const auto decoded = rx.receive(at_dest_20);
  if (!decoded) return result;
  result.decoded = true;
  result.crc_ok = decoded->crc_ok;
  result.snr_db = decoded->snr_db;
  result.throughput_mbps = phy::rate_from_snr_db(decoded->snr_db);
  return result;
}

}  // namespace ff::eval
