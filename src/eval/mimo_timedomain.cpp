#include "eval/mimo_timedomain.hpp"

#include <cmath>

#include "channel/cfo.hpp"
#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"
#include "dsp/noise.hpp"
#include "dsp/resample.hpp"
#include "phy/mcs.hpp"
#include "relay/amplification.hpp"
#include "relay/cnf_design.hpp"
#include "relay/digital_prefilter.hpp"

namespace ff::eval {

namespace {

constexpr std::size_t kOversample = 4;
constexpr double kAlignSamples = 16.0;

}  // namespace

MimoTdLink build_mimo_td_link(const Placement& placement, const channel::Point& client,
                              const TestbedConfig& cfg, Rng& rng) {
  channel::PropagationConfig prop = cfg.prop;
  prop.carrier_hz = cfg.ofdm.carrier_hz;
  const channel::IndoorPropagation model(placement.plan, prop);
  const std::size_t n = cfg.antennas;

  MimoTdLink link;
  link.sd = model.link(placement.ap, client, n, n, rng);
  link.sr = model.link(placement.ap, placement.relay, n, n, rng);
  link.rd = model.link(placement.relay, client, n, n, rng);
  link.source_power_dbm = cfg.ap_power_dbm;
  link.dest_noise_dbm = cfg.noise_floor_dbm;
  link.relay_noise_dbm = cfg.relay_noise_dbm;
  link.source_cfo_hz = rng.uniform(-45e3, 45e3);
  return link;
}

std::vector<CVec> MimoRelayBank::process(const std::vector<CVec>& rx) const {
  FF_CHECK(rx.size() == k);
  std::vector<CVec> out(k);
  for (std::size_t j = 0; j < k; ++j) {
    out[j].assign(rx[0].size(), Complex{});
    for (std::size_t i = 0; i < k; ++i) {
      relay::ForwardPipeline pipe(chains[j * k + i]);
      const CVec contribution = pipe.process(rx[i]);
      dsp::accumulate(out[j], contribution);
    }
  }
  return out;
}

MimoRelayBank make_mimo_relay_bank(const MimoTdLink& link, const phy::OfdmParams& params,
                                   double extra_latency_s) {
  const std::size_t k = link.sr.n_rx();
  const double fs_hi = params.sample_rate_hz * static_cast<double>(kOversample);
  const auto freqs = params.used_subcarrier_freqs();

  // Per-subcarrier channel matrices, with the converter chain's bulk delay
  // folded into the relay->destination leg (the design fights it, as in the
  // SISO case; artificial buffering stays hidden from the design).
  const double chain_delay_s = static_cast<double>(kOversample) / fs_hi;
  std::vector<linalg::Matrix> h_sd, h_sr, h_rd;
  for (const double f : freqs) {
    h_sd.push_back(link.sd.response(f));
    h_sr.push_back(link.sr.response(f));
    const double ang = -kTwoPi * f * chain_delay_s;
    h_rd.push_back(link.rd.response(f) * Complex{std::cos(ang), std::sin(ang)});
  }

  // Amplification: stability / noise-rule / power, as in the SISO design.
  double rd_gain = 0.0, sr_gain = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double fr = h_rd[i].frobenius();
    const double fs = h_sr[i].frobenius();
    rd_gain += fr * fr / static_cast<double>(k * k);
    sr_gain += fs * fs / static_cast<double>(k * k);
  }
  rd_gain /= static_cast<double>(freqs.size());
  sr_gain /= static_cast<double>(freqs.size());
  const auto amp = relay::decide_amplification(
      110.0, -db_from_power(rd_gain), link.source_power_dbm + db_from_power(sr_gain));
  const double a = amplitude_from_db(amp.gain_db);

  // Per-subcarrier unitary CNF matrix (Eq. 2), warm-started across tones.
  std::vector<linalg::Matrix> filters(freqs.size());
  std::vector<double> warm;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const auto r = relay::cnf_mimo_design(h_sd[i], h_sr[i], h_rd[i], a,
                                          warm.empty() ? nullptr : &warm);
    warm = r.params;
    filters[i] = r.filter;
  }

  // Realize each of the K x K entries with its own digital/analog split.
  MimoRelayBank bank;
  bank.k = k;
  relay::CnfSplitConfig split_cfg;
  split_cfg.sample_rate_hz = fs_hi;
  double insertion_acc = 0.0;
  std::vector<relay::CnfSplit> splits;
  splits.reserve(k * k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      CVec target(freqs.size());
      for (std::size_t t = 0; t < freqs.size(); ++t) target[t] = filters[t](j, i);
      splits.push_back(relay::design_cnf_split(target, freqs, split_cfg));
      insertion_acc += splits.back().insertion_gain();
    }
  }
  const double gain_db =
      amp.gain_db -
      db_from_amplitude(std::max(insertion_acc / static_cast<double>(k * k), 1e-6));

  for (std::size_t e = 0; e < k * k; ++e) {
    relay::PipelineConfig p;
    p.sample_rate_hz = fs_hi;
    p.adc_dac_delay_samples = kOversample;
    p.extra_buffer_samples =
        static_cast<std::size_t>(std::llround(extra_latency_s * fs_hi));
    p.cfo_hz = link.source_cfo_hz;
    p.prefilter = splits[e].prefilter;
    p.analog_rotation = splits[e].analog.response(0.0);
    p.gain_db = gain_db;
    p.tx_filter = dsp::design_lowpass(2 * p.adc_dac_delay_samples + 1, 0.17);
    bank.chains.push_back(std::move(p));
  }
  {
    relay::ForwardPipeline probe(bank.chains[0]);
    bank.max_delay_s = probe.max_delay_s();
  }
  return bank;
}

MimoTdResult run_mimo_td_packet(const MimoTdLink& link, const MimoTdOptions& opts, Rng& rng) {
  const phy::OfdmParams& params = opts.params;
  const std::size_t k = link.sd.n_tx();
  const phy::MimoTransmitter tx(params);
  const phy::MimoReceiver rx(params);
  const double fs_hi = params.sample_rate_hz * static_cast<double>(kOversample);
  const double align_s = kAlignSamples / fs_hi;
  const double wideband = static_cast<double>(kOversample);

  // ---- source packet (K streams) ----
  std::vector<std::uint8_t> payload(opts.payload_bits_per_stream * k);
  for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;
  phy::MimoTxOptions txo;
  txo.mcs_index = opts.mcs_index;
  txo.streams = k;
  auto streams20 = tx.modulate(payload, txo);

  // Upconvert, scale so the TOTAL transmit power is source_power_dbm, CFO.
  std::vector<CVec> x(k);
  double total_power = 0.0;
  for (std::size_t a = 0; a < k; ++a) {
    CVec padded(60, Complex{});
    padded.insert(padded.end(), streams20[a].begin(), streams20[a].end());
    padded.resize(padded.size() + 120, Complex{});
    x[a] = dsp::upsample(padded, kOversample);
    total_power += dsp::mean_power(x[a]);
  }
  const double scale =
      std::sqrt(power_from_db(link.source_power_dbm) / std::max(total_power, 1e-300));
  for (auto& s : x) {
    dsp::scale(s, scale);
    s = channel::apply_cfo(s, link.source_cfo_hz, fs_hi);
  }

  // ---- direct path ----
  const std::size_t len = x[0].size();
  std::vector<CVec> at_dest(k, CVec(len, Complex{}));
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t t = 0; t < k; ++t)
      dsp::accumulate(at_dest[a],
                      link.sd.subchannel(a, t).apply(x[t], fs_hi, -2.0 * align_s));

  MimoTdResult result;
  if (opts.use_relay) {
    FF_CHECK_MSG(opts.bank.k == k, "relay bank not designed for this link");
    std::vector<CVec> at_relay(k, CVec(len, Complex{}));
    for (std::size_t r = 0; r < k; ++r) {
      for (std::size_t t = 0; t < k; ++t)
        dsp::accumulate(at_relay[r],
                        link.sr.subchannel(r, t).apply(x[t], fs_hi, -align_s));
      dsp::add_awgn(rng, at_relay[r], power_from_db(link.relay_noise_dbm) * wideband);
    }
    const auto relay_tx = opts.bank.process(at_relay);
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t j = 0; j < k; ++j)
        dsp::accumulate(at_dest[a],
                        link.rd.subchannel(a, j).apply(relay_tx[j], fs_hi, -align_s));
  }
  for (std::size_t a = 0; a < k; ++a)
    dsp::add_awgn(rng, at_dest[a], power_from_db(link.dest_noise_dbm) * wideband);

  // ---- client decode ----
  std::vector<CVec> at20(k);
  for (std::size_t a = 0; a < k; ++a) at20[a] = dsp::downsample(at_dest[a], kOversample);
  const auto decoded = rx.receive(at20);
  if (!decoded) return result;
  result.decoded = true;
  result.crc_ok = decoded->crc_ok;
  result.stream_crc_ok = decoded->stream_crc_ok;
  result.stream_snr_db = decoded->stream_snr_db;
  for (const double snr : decoded->stream_snr_db)
    result.sum_rate_mbps += phy::rate_from_snr_db(snr);
  return result;
}

}  // namespace ff::eval
