// ASCII heatmaps over a floor-plan grid (Figs. 1 and 2 of the paper:
// SNR and MIMO-stream maps with and without the FF relay).
#pragma once

#include <functional>
#include <string>

#include "channel/floorplan.hpp"

namespace ff::eval {

struct HeatmapConfig {
  double step_m = 0.5;       // grid resolution
  double min_value = 0.0;    // colour-scale bottom
  double max_value = 30.0;   // colour-scale top
};

/// Render f(x, y) over the plan as an ASCII-shaded grid (one char per cell,
/// dark '.' -> bright '#'), with a legend. Origin is the plan's south-west
/// corner; rows print north-to-south like the paper's figures.
std::string render_heatmap(const channel::FloorPlan& plan,
                           const std::function<double(double, double)>& f,
                           const HeatmapConfig& cfg);

}  // namespace ff::eval
