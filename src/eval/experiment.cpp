#include "eval/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/seeding.hpp"
#include "common/telemetry.hpp"
#include "dsp/kernels/kernels.hpp"
#include "eval/stats.hpp"

namespace ff::eval {

std::string to_string(LinkCategory c) {
  switch (c) {
    case LinkCategory::kLowSnrLowRank: return "low-SNR/low-rank";
    case LinkCategory::kMediumSnrLowRank: return "medium-SNR/low-rank";
    case LinkCategory::kHighSnrHighRank: return "high-SNR/high-rank";
    case LinkCategory::kOther: return "other";
  }
  return "?";
}

std::string category_slug(LinkCategory c) {
  switch (c) {
    case LinkCategory::kLowSnrLowRank: return "low_snr_low_rank";
    case LinkCategory::kMediumSnrLowRank: return "medium_snr_low_rank";
    case LinkCategory::kHighSnrHighRank: return "high_snr_high_rank";
    case LinkCategory::kOther: return "other";
  }
  return "unknown";
}

LinkCategory categorize(double baseline_snr_db, std::size_t baseline_streams,
                        std::size_t max_streams) {
  // Exhaustive partition mirroring Sec. 5.3: coverage-edge clients (low SNR
  // — rank is degraded there too), pinhole victims (usable SNR but fewer
  // streams than antennas), and healthy near-AP links.
  const bool low_rank = baseline_streams < max_streams;
  if (baseline_snr_db < 10.0) return LinkCategory::kLowSnrLowRank;
  if (low_rank) return LinkCategory::kMediumSnrLowRank;
  return LinkCategory::kHighSnrHighRank;
}

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kApOnly: return "ap_only";
    case Scheme::kHdMesh: return "hd_mesh";
    case Scheme::kFastForward: return "ff";
    case Scheme::kAmplifyForward: return "af";
  }
  return "?";
}

double scheme_mbps(const SchemeResult& r, Scheme s) {
  switch (s) {
    case Scheme::kApOnly: return r.ap_only_mbps;
    case Scheme::kHdMesh: return r.hd_mesh_mbps;
    case Scheme::kFastForward: return r.ff_mbps;
    case Scheme::kAmplifyForward: return r.af_mbps;
  }
  return 0.0;
}

Scheme winner(const SchemeResult& r) {
  Scheme best = Scheme::kApOnly;
  double best_mbps = scheme_mbps(r, best);
  for (const Scheme s : kAllSchemes) {
    const double m = scheme_mbps(r, s);
    if (m > best_mbps) {
      best = s;
      best_mbps = m;
    }
  }
  return best;
}

TestbedConfig make_testbed(TestbedPreset preset) {
  TestbedConfig tb;
  switch (preset) {
    case TestbedPreset::kMimo2x2: break;  // the defaults ARE the 2x2 testbed
    case TestbedPreset::kSiso: tb.antennas = 1; break;
  }
  return tb;
}

std::vector<double> ExperimentResults::throughputs(Scheme s) const {
  std::vector<double> out;
  out.reserve(locations_.size());
  for (const auto& r : locations_) out.push_back(scheme_mbps(r.schemes, s));
  return out;
}

std::vector<double> ExperimentResults::gains_vs_hd(Scheme s) const {
  std::vector<double> out;
  out.reserve(locations_.size());
  for (const auto& r : locations_) {
    const double hd = r.schemes.hd_mesh_mbps;
    if (hd > 0.0) out.push_back(scheme_mbps(r.schemes, s) / hd);
  }
  return out;
}

ExperimentResults ExperimentResults::by_category(LinkCategory c) const {
  std::vector<LocationResult> subset;
  for (const auto& r : locations_)
    if (r.category == c) subset.push_back(r);
  return ExperimentResults(std::move(subset));
}

ExperimentSummary ExperimentResults::summary() const {
  ExperimentSummary s;
  s.locations = locations_.size();
  for (const auto& r : locations_) {
    s.category_counts[static_cast<std::size_t>(r.category)]++;
    s.wins[static_cast<std::size_t>(winner(r.schemes))]++;
  }
  for (const Scheme scheme : kAllSchemes) {
    const auto t = throughputs(scheme);
    s.median_mbps[static_cast<std::size_t>(scheme)] = t.empty() ? 0.0 : median(t);
  }
  return s;
}

relay::DesignOptions default_design_options(const TestbedConfig& cfg) {
  relay::DesignOptions opts;
  opts.f_grid_hz = cfg.ofdm.used_subcarrier_freqs();
  // The split runs at the prototype's 80 Msps converter rate (its default);
  // only the frequency grid depends on the PHY numerology.
  return opts;
}

namespace {

/// Serial post-pass: aggregate tallies that describe the WHOLE experiment.
/// Runs after the parallel phase so recording order — and therefore the
/// snapshot — is independent of the thread schedule.
void record_experiment_metrics(const ExperimentConfig& cfg,
                               const ExperimentResults& results) {
  MetricsRegistry* m = cfg.metrics;
  metrics::add(m, "eval.experiments");
  metrics::add(m, "eval.locations", results.size());
  // Which kernel ISA this process resolved (docs/PERFORMANCE.md, "Kernel
  // layer") — the tag that lets a telemetry snapshot explain a perf delta.
  metrics::set(m, "ff.kernels.isa",
               static_cast<double>(static_cast<int>(dsp::kernels::active_isa())));
  // Which arithmetic width the experiment ran at. The eval path is float64
  // end to end (the float32 family is a stream-runtime fast path, see
  // docs/PERFORMANCE.md "The float32 family"), so this is a constant tag —
  // recorded anyway so snapshots from mixed deployments stay comparable.
  metrics::set(m, "ff.kernels.precision", 64.0);
  const ExperimentSummary s = results.summary();
  for (std::size_t c = 0; c < s.category_counts.size(); ++c)
    metrics::add(m, "eval.category." + category_slug(static_cast<LinkCategory>(c)),
                 s.category_counts[c]);
  for (const Scheme scheme : kAllSchemes) {
    const auto i = static_cast<std::size_t>(scheme);
    // AF wins/medians are only meaningful when AF was evaluated.
    if (scheme == Scheme::kAmplifyForward && !cfg.evaluate_af) continue;
    metrics::add(m, "eval.wins." + to_string(scheme), s.wins[i]);
    metrics::set(m, "eval.median_mbps." + to_string(scheme), s.median_mbps[i]);
  }
}

}  // namespace

ExperimentResults run_experiment(const ExperimentConfig& cfg) {
  FF_CHECK_MSG(cfg.clients_per_plan > 0,
               "ExperimentConfig.clients_per_plan must be positive — an experiment "
               "with no clients has no results to aggregate");
  FF_CHECK_MSG(std::isfinite(cfg.testbed.cancellation_db),
               "TestbedConfig.cancellation_db must be finite");
  MetricsRegistry::ScopedTimer experiment_timer(cfg.metrics, "eval.experiment.wall_us");

  SchemeOptions sopts;
  sopts.evaluate_af = cfg.evaluate_af;
  sopts.design = default_design_options(cfg.testbed);
  // Design metrics flow through the same sink. They are recorded from the
  // parallel phase, but every record is an order-independent merge (counter
  // sums, sample sets), so the snapshot stays thread-count-invariant.
  sopts.design.metrics = cfg.metrics;

  // Phase 1 (serial): draw every client location and fork one RNG stream per
  // location, in a fixed order. This pins all randomness up front, so the
  // expensive phase below can run its locations in any schedule — on any
  // number of threads — and still produce bit-identical results.
  struct LocationJob {
    const Placement* placement = nullptr;
    channel::Point client{};
    Rng rng{0};
  };
  const auto plans = channel::FloorPlan::evaluation_set();
  std::vector<Placement> placements;
  placements.reserve(plans.size());
  std::vector<LocationJob> jobs;
  jobs.reserve(plans.size() * cfg.clients_per_plan);

  Rng master(cfg.seed);
  for (const auto& plan : plans) {
    placements.push_back(make_placement(plan));
    Rng plan_rng = seeding::fork_named(master, plan.name());
    for (std::size_t c = 0; c < cfg.clients_per_plan; ++c) {
      LocationJob job;
      job.placement = &placements.back();
      job.client = random_client_location(plan, plan_rng);
      job.rng = seeding::fork_indexed(plan_rng, c);
      jobs.push_back(std::move(job));
    }
  }

  // Phase 2 (parallel): each location evaluates independently from its own
  // RNG stream and writes only its own slot of the pre-sized output.
  std::vector<LocationResult> out(jobs.size());
  parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        MetricsRegistry::ScopedTimer location_timer(cfg.metrics, "eval.location.wall_us");
        LocationJob& job = jobs[i];
        LocationResult r;
        r.plan = job.placement->plan.name();
        r.client = job.client;
        const relay::RelayLink link =
            build_link(*job.placement, job.client, cfg.testbed, job.rng);
        r.schemes = evaluate_location(link, sopts);
        r.category = categorize(r.schemes.baseline_snr_db, r.schemes.baseline_streams,
                                cfg.testbed.antennas);
        out[i] = std::move(r);
      },
      cfg.threads);

  ExperimentResults results(std::move(out));
  if (cfg.metrics) record_experiment_metrics(cfg, results);
  return results;
}

}  // namespace ff::eval
