#include "eval/experiment.hpp"

#include "common/check.hpp"

namespace ff::eval {

std::string to_string(LinkCategory c) {
  switch (c) {
    case LinkCategory::kLowSnrLowRank: return "low-SNR/low-rank";
    case LinkCategory::kMediumSnrLowRank: return "medium-SNR/low-rank";
    case LinkCategory::kHighSnrHighRank: return "high-SNR/high-rank";
    case LinkCategory::kOther: return "other";
  }
  return "?";
}

LinkCategory categorize(double baseline_snr_db, std::size_t baseline_streams,
                        std::size_t max_streams) {
  // Exhaustive partition mirroring Sec. 5.3: coverage-edge clients (low SNR
  // — rank is degraded there too), pinhole victims (usable SNR but fewer
  // streams than antennas), and healthy near-AP links.
  const bool low_rank = baseline_streams < max_streams;
  if (baseline_snr_db < 10.0) return LinkCategory::kLowSnrLowRank;
  if (low_rank) return LinkCategory::kMediumSnrLowRank;
  return LinkCategory::kHighSnrHighRank;
}

relay::DesignOptions default_design_options(const TestbedConfig& cfg) {
  relay::DesignOptions opts;
  opts.f_grid_hz = cfg.ofdm.used_subcarrier_freqs();
  // The split runs at the prototype's 80 Msps converter rate (its default);
  // only the frequency grid depends on the PHY numerology.
  return opts;
}

std::vector<LocationResult> run_experiment(const ExperimentConfig& cfg) {
  std::vector<LocationResult> out;
  Rng master(cfg.seed);

  SchemeOptions sopts;
  sopts.evaluate_af = cfg.evaluate_af;
  sopts.design = default_design_options(cfg.testbed);

  for (const auto& plan : channel::FloorPlan::evaluation_set()) {
    const Placement placement = make_placement(plan);
    Rng rng = master.fork(std::hash<std::string>{}(plan.name()));
    for (std::size_t c = 0; c < cfg.clients_per_plan; ++c) {
      LocationResult r;
      r.plan = plan.name();
      r.client = random_client_location(plan, rng);
      const relay::RelayLink link = build_link(placement, r.client, cfg.testbed, rng);
      r.schemes = evaluate_location(link, sopts);
      r.category = categorize(r.schemes.baseline_snr_db, r.schemes.baseline_streams,
                              cfg.testbed.antennas);
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<double> extract(const std::vector<LocationResult>& results,
                            double SchemeResult::*field) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(r.schemes.*field);
  return out;
}

}  // namespace ff::eval
