#include "eval/experiment.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace ff::eval {

std::string to_string(LinkCategory c) {
  switch (c) {
    case LinkCategory::kLowSnrLowRank: return "low-SNR/low-rank";
    case LinkCategory::kMediumSnrLowRank: return "medium-SNR/low-rank";
    case LinkCategory::kHighSnrHighRank: return "high-SNR/high-rank";
    case LinkCategory::kOther: return "other";
  }
  return "?";
}

LinkCategory categorize(double baseline_snr_db, std::size_t baseline_streams,
                        std::size_t max_streams) {
  // Exhaustive partition mirroring Sec. 5.3: coverage-edge clients (low SNR
  // — rank is degraded there too), pinhole victims (usable SNR but fewer
  // streams than antennas), and healthy near-AP links.
  const bool low_rank = baseline_streams < max_streams;
  if (baseline_snr_db < 10.0) return LinkCategory::kLowSnrLowRank;
  if (low_rank) return LinkCategory::kMediumSnrLowRank;
  return LinkCategory::kHighSnrHighRank;
}

relay::DesignOptions default_design_options(const TestbedConfig& cfg) {
  relay::DesignOptions opts;
  opts.f_grid_hz = cfg.ofdm.used_subcarrier_freqs();
  // The split runs at the prototype's 80 Msps converter rate (its default);
  // only the frequency grid depends on the PHY numerology.
  return opts;
}

std::vector<LocationResult> run_experiment(const ExperimentConfig& cfg) {
  SchemeOptions sopts;
  sopts.evaluate_af = cfg.evaluate_af;
  sopts.design = default_design_options(cfg.testbed);

  // Phase 1 (serial): draw every client location and fork one RNG stream per
  // location, in a fixed order. This pins all randomness up front, so the
  // expensive phase below can run its locations in any schedule — on any
  // number of threads — and still produce bit-identical results.
  struct LocationJob {
    const Placement* placement = nullptr;
    channel::Point client{};
    Rng rng{0};
  };
  const auto plans = channel::FloorPlan::evaluation_set();
  std::vector<Placement> placements;
  placements.reserve(plans.size());
  std::vector<LocationJob> jobs;
  jobs.reserve(plans.size() * cfg.clients_per_plan);

  Rng master(cfg.seed);
  for (const auto& plan : plans) {
    placements.push_back(make_placement(plan));
    Rng plan_rng = master.fork(fnv1a_64(plan.name()));
    for (std::size_t c = 0; c < cfg.clients_per_plan; ++c) {
      LocationJob job;
      job.placement = &placements.back();
      job.client = random_client_location(plan, plan_rng);
      job.rng = plan_rng.fork(c);
      jobs.push_back(std::move(job));
    }
  }

  // Phase 2 (parallel): each location evaluates independently from its own
  // RNG stream and writes only its own slot of the pre-sized output.
  std::vector<LocationResult> out(jobs.size());
  parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        LocationJob& job = jobs[i];
        LocationResult r;
        r.plan = job.placement->plan.name();
        r.client = job.client;
        const relay::RelayLink link =
            build_link(*job.placement, job.client, cfg.testbed, job.rng);
        r.schemes = evaluate_location(link, sopts);
        r.category = categorize(r.schemes.baseline_snr_db, r.schemes.baseline_streams,
                                cfg.testbed.antennas);
        out[i] = std::move(r);
      },
      cfg.threads);
  return out;
}

std::vector<double> extract(const std::vector<LocationResult>& results,
                            double SchemeResult::*field) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(r.schemes.*field);
  return out;
}

}  // namespace ff::eval
