#include "eval/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ff::eval {

namespace cli_detail {

namespace {

/// True when strtoX consumed the whole token without error.
bool consumed(const std::string& text, const char* end) {
  return !text.empty() && errno == 0 && end == text.c_str() + text.size();
}

}  // namespace

bool parse_value(const std::string& text, std::string& out) {
  out = text;
  return true;
}

bool parse_value(const std::string& text, double& out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (!consumed(text, end)) return false;
  // Every option bound to a double is a finite physical parameter; "inf"
  // and "nan" are valid strtod spellings but never valid configurations,
  // and overflow ("1e999" -> HUGE_VAL, ERANGE) is caught by consumed().
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

bool parse_signed(const std::string& text, long long& out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (!consumed(text, end)) return false;
  out = v;
  return true;
}

bool parse_unsigned(const std::string& text, unsigned long long& out) {
  // strtoull silently negates "-1"; reject signs ourselves.
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (!consumed(text, end)) return false;
  out = v;
  return true;
}

}  // namespace cli_detail

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::add_flag(const std::string& name, bool* target, const std::string& help) {
  specs_.push_back(Spec{name, help, /*is_flag=*/true, [target](const std::string&) {
                          *target = true;
                          return true;
                        }});
  return *this;
}

Cli& Cli::add_repeatable(const std::string& name, std::vector<std::string>* target,
                         const std::string& help) {
  specs_.push_back(Spec{name, help, /*is_flag=*/false, [target](const std::string& v) {
                          target->push_back(v);
                          return true;
                        }});
  return *this;
}

const Cli::Spec* Cli::find_option(const std::string& name) const {
  for (const auto& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

bool Cli::parse(int argc, char** argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      exit_code_ = 0;
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string value;
      bool has_value = false;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_value = true;
      }
      const Spec* spec = find_option(arg);
      if (!spec) {
        std::fprintf(stderr, "%s: unknown option '%s'\n\n%s", program_.c_str(),
                     arg.c_str(), usage().c_str());
        exit_code_ = 2;
        return false;
      }
      if (!spec->is_flag && !has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: option '%s' needs a value\n", program_.c_str(),
                       arg.c_str());
          exit_code_ = 2;
          return false;
        }
        value = argv[++i];
      }
      if (spec->is_flag && has_value) {
        std::fprintf(stderr, "%s: flag '%s' takes no value\n", program_.c_str(),
                     arg.c_str());
        exit_code_ = 2;
        return false;
      }
      if (!spec->assign(value)) {
        std::fprintf(stderr, "%s: bad value '%s' for option '%s'\n", program_.c_str(),
                     value.c_str(), arg.c_str());
        exit_code_ = 2;
        return false;
      }
      continue;
    }
    if (next_positional >= positionals_.size()) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n\n%s", program_.c_str(),
                   arg.c_str(), usage().c_str());
      exit_code_ = 2;
      return false;
    }
    const Spec& spec = positionals_[next_positional++];
    if (!spec.assign(arg)) {
      std::fprintf(stderr, "%s: bad value '%s' for argument '%s'\n", program_.c_str(),
                   arg.c_str(), spec.name.c_str());
      exit_code_ = 2;
      return false;
    }
  }
  return true;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "Usage: " << program_ << " [options]";
  for (const auto& p : positionals_) os << " [" << p.name << "]";
  os << "\n\n  " << description_ << "\n";
  if (!positionals_.empty()) {
    os << "\nArguments:\n";
    for (const auto& p : positionals_) os << "  " << p.name << "\n      " << p.help << "\n";
  }
  os << "\nOptions:\n";
  for (const auto& s : specs_) {
    os << "  " << s.name;
    if (!s.is_flag) os << " <value>";
    os << "\n      " << s.help << "\n";
  }
  os << "  --help\n      print this message and exit\n";
  return os.str();
}

void MetricsSink::register_options(Cli& cli) {
  cli.add_option("--metrics", &path_,
                 "write telemetry (ff-metrics-v1 JSON, see docs/OBSERVABILITY.md) "
                 "to this file");
}

bool MetricsSink::write() const {
  if (!enabled()) return true;
  std::ofstream out(path_, std::ios::binary);
  if (out) out << registry_.snapshot().to_json();
  if (!out) {
    std::fprintf(stderr, "failed to write metrics to %s\n", path_.c_str());
    return false;
  }
  std::fprintf(stderr, "metrics written to %s\n", path_.c_str());
  return true;
}

void ExperimentCli::register_options(Cli& cli) {
  clients_ = defaults_.clients_per_plan;
  seed_ = defaults_.seed;
  threads_ = defaults_.threads;
  cli.add_option("--preset", &preset_, "testbed preset: mimo2x2 or siso");
  cli.add_option("--clients", &clients_, "client locations per floor plan");
  cli.add_option("--seed", &seed_, "experiment RNG seed");
  cli.add_option("--threads", &threads_, "worker threads (0 = FF_THREADS / hardware)");
  sink_.register_options(cli);
}

ExperimentConfig ExperimentCli::config() {
  ExperimentConfig cfg = defaults_;
  if (preset_ == "mimo2x2") {
    cfg.testbed = make_testbed(TestbedPreset::kMimo2x2);
  } else if (preset_ == "siso") {
    cfg.testbed = make_testbed(TestbedPreset::kSiso);
  } else if (!preset_.empty()) {
    std::fprintf(stderr, "unknown testbed preset '%s', keeping the default\n",
                 preset_.c_str());
  }
  return cfg.with_clients(clients_).with_seed(seed_).with_threads(threads_).with_metrics(
      sink_.registry());
}

void StreamCli::register_options(Cli& cli, bool with_metrics_option) {
  cli.add_option("--block-size", &block_size_,
                 "samples per stream block (output is block-size invariant; "
                 "this only trades latency against per-block overhead)");
  cli.add_option("--duration", &duration_s_, "session length in seconds");
  cli.add_option("--backpressure", &backpressure_,
                 "bounded-channel capacity in blocks (smaller = tighter "
                 "memory bound, more producer stalls)");
  cli.add_option("--threads", &threads_,
                 "scheduler worker threads (reference: level workers; "
                 "throughput: pipeline chains; 0 = FF_THREADS / hardware)");
  cli.add_option("--mode", &mode_,
                 "scheduler: 'reference' (deterministic level rounds) or "
                 "'throughput' (pinned pipeline chains over SPSC rings; "
                 "same output, higher rate)");
  cli.add_option("--batch-size", &batch_size_,
                 "throughput mode: blocks moved per element pass and per "
                 "ring transfer (amortizes per-block overhead)");
  cli.add_option("--precision", &precision_,
                 "sample-path arithmetic: 'f64' (the accuracy reference) or "
                 "'f32' (the mixed-precision fast path — double the SIMD "
                 "lanes, ~-120 dB conversion noise, own checksum family)");
  cli.add_flag("--pin-cores", &pin_cores_,
               "throughput mode: pin each chain's worker to a core "
               "(graceful no-op where unsupported)");
  cli.add_option("--graph", &graph_,
                 "build the session from this graph description file "
                 "(docs/STREAMING.md) instead of the built-in topology");
  cli.add_repeatable("--set", &sets_,
                     "call a write handler before the run: elem.handler=value "
                     "(repeatable, e.g. --set fir.set_taps=(0.9,0))");
  if (with_metrics_option) sink_.register_options(cli);
}

bool parse_handler_write(const std::string& text, HandlerWrite& out) {
  const auto eq = text.find('=');
  if (eq == std::string::npos) return false;
  const std::string target = text.substr(0, eq);
  const auto dot = target.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == target.size()) return false;
  out.element = target.substr(0, dot);
  out.handler = target.substr(dot + 1);
  out.value = text.substr(eq + 1);
  return true;
}

std::vector<HandlerWrite> StreamCli::writes() const {
  std::vector<HandlerWrite> out;
  out.reserve(sets_.size());
  for (const std::string& s : sets_) {
    HandlerWrite w;
    if (parse_handler_write(s, w)) out.push_back(std::move(w));
  }
  return out;
}

bool StreamCli::validate() const {
  bool ok = true;
  if (block_size_ == 0) {
    std::fprintf(stderr, "--block-size must be >= 1\n");
    ok = false;
  }
  if (!std::isfinite(duration_s_) || duration_s_ <= 0.0) {
    std::fprintf(stderr, "--duration must be positive and finite\n");
    ok = false;
  }
  if (backpressure_ == 0) {
    std::fprintf(stderr, "--backpressure must be >= 1 block\n");
    ok = false;
  }
  if (mode_ != "reference" && mode_ != "throughput") {
    std::fprintf(stderr, "--mode must be 'reference' or 'throughput' (got '%s')\n",
                 mode_.c_str());
    ok = false;
  }
  if (batch_size_ == 0) {
    std::fprintf(stderr, "--batch-size must be >= 1 block\n");
    ok = false;
  }
  if (precision_ != "f64" && precision_ != "f32") {
    std::fprintf(stderr, "--precision must be 'f64' or 'f32' (got '%s')\n",
                 precision_.c_str());
    ok = false;
  }
  for (const std::string& s : sets_) {
    HandlerWrite w;
    if (!parse_handler_write(s, w)) {
      std::fprintf(stderr, "--set expects elem.handler=value, got '%s'\n", s.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace ff::eval
