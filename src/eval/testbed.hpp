// Testbed scenario generation: floor plans -> device placements ->
// per-subcarrier channel state, mirroring the paper's indoor experiments
// (Sec. 5: open office, L-corridor, wide rooms, and the Fig. 1 home; AP and
// relay fixed, clients placed across the space).
#pragma once

#include "channel/floorplan.hpp"
#include "channel/propagation.hpp"
#include "common/rng.hpp"
#include "phy/params.hpp"
#include "relay/design.hpp"

namespace ff::eval {

struct TestbedConfig {
  std::size_t antennas = 2;            // per device (1 => SISO experiments)
  double ap_power_dbm = 20.0;
  double noise_floor_dbm = -90.0;
  double relay_noise_dbm = -90.0;
  double cancellation_db = 110.0;      // what the relay's SIC stack achieves
  /// Bulk processing delay of the relay chain (ADC + DAC, Sec. 4.3). Folded
  /// into the relay->destination responses as a linear phase ramp so the
  /// CNF design must genuinely fight it, exactly as the hardware does.
  double relay_chain_delay_s = 50e-9;
  phy::OfdmParams ofdm{};
  channel::PropagationConfig prop{};
};

struct Placement {
  channel::FloorPlan plan;
  channel::Point ap;
  channel::Point relay;
};

/// Canonical AP/relay placement for a floor plan: AP near one corner (like
/// Fig. 1's living-room AP), relay near the centre of the space.
Placement make_placement(const channel::FloorPlan& plan);

/// Uniformly random client location inside the plan (margin from walls).
channel::Point random_client_location(const channel::FloorPlan& plan, Rng& rng);

/// Grid of client locations for heatmaps.
std::vector<channel::Point> grid_locations(const channel::FloorPlan& plan, double step_m);

/// Build the per-subcarrier three-link channel state for one client.
relay::RelayLink build_link(const Placement& placement, const channel::Point& client,
                            const TestbedConfig& cfg, Rng& rng);

}  // namespace ff::eval
