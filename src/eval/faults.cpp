#include "eval/faults.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/telemetry.hpp"

namespace ff::eval {

namespace {

void check_rate(double rate, const char* name) {
  FF_CHECK_MSG(std::isfinite(rate) && rate >= 0.0 && rate <= 1.0,
               "FaultConfig." << name << " must be a rate in [0, 1], got " << rate);
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  check_rate(cfg_.sample_drop_rate, "sample_drop_rate");
  check_rate(cfg_.sample_corrupt_rate, "sample_corrupt_rate");
  check_rate(cfg_.sample_nan_rate, "sample_nan_rate");
  check_rate(cfg_.sounding_failure_rate, "sounding_failure_rate");
  FF_CHECK_MSG(std::isfinite(cfg_.corrupt_amplitude) && cfg_.corrupt_amplitude >= 0.0,
               "FaultConfig.corrupt_amplitude must be finite and non-negative");
  FF_CHECK_MSG(std::isfinite(cfg_.estimate_sigma) && cfg_.estimate_sigma >= 0.0,
               "FaultConfig.estimate_sigma must be finite and non-negative");
}

std::uint64_t FaultInjector::expected_count(std::uint64_t n, double rate) {
  return static_cast<std::uint64_t>(static_cast<double>(n) * rate);
}

bool FaultInjector::Schedule::step(double rate) {
  ++seen;
  if (expected_count(seen, rate) > fired) {
    ++fired;
    return true;
  }
  return false;
}

void FaultInjector::apply(CMutSpan x) {
  const std::uint64_t dropped0 = drop_.fired;
  const std::uint64_t corrupted0 = corrupt_.fired;
  const std::uint64_t poisoned0 = nan_.fired;
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  for (auto& s : x) {
    // Each class keeps its own schedule; the value RNG is only advanced on
    // a corruption hit, so drop/NaN rates never shift the corruption noise.
    if (drop_.step(cfg_.sample_drop_rate)) s = Complex{};
    if (corrupt_.step(cfg_.sample_corrupt_rate))
      s = rng_.cgaussian(cfg_.corrupt_amplitude * cfg_.corrupt_amplitude);
    if (nan_.step(cfg_.sample_nan_rate)) s = Complex{kNan, kNan};
  }
  samples_seen_ += x.size();
  if (MetricsRegistry* m = cfg_.metrics) {
    metrics::add(m, "fd.faults.samples", x.size());
    metrics::add(m, "fd.faults.samples_dropped", drop_.fired - dropped0);
    metrics::add(m, "fd.faults.samples_corrupted", corrupt_.fired - corrupted0);
    metrics::add(m, "fd.faults.samples_poisoned", nan_.fired - poisoned0);
  }
}

CVec FaultInjector::apply_copy(CSpan x) {
  CVec out(x.begin(), x.end());
  apply(out);
  return out;
}

CVec FaultInjector::perturb_estimate(CSpan h) {
  CVec out(h.begin(), h.end());
  if (cfg_.estimate_sigma > 0.0) {
    for (auto& tap : out)
      tap *= Complex{1.0, 0.0} + cfg_.estimate_sigma * rng_.cgaussian();
    estimates_perturbed_ += out.size();
    metrics::add(cfg_.metrics, "fd.faults.estimates_perturbed", out.size());
  }
  return out;
}

bool FaultInjector::sounding_fails() {
  const bool failed = sounding_.step(cfg_.sounding_failure_rate);
  if (MetricsRegistry* m = cfg_.metrics) {
    metrics::add(m, "fd.faults.soundings");
    if (failed) metrics::add(m, "fd.faults.sounding_failures");
  }
  return failed;
}

}  // namespace ff::eval
