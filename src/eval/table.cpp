#include "eval/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace ff::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  FF_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print() const { print(std::cout); }

void print_banner(const std::string& title) {
  std::cout << '\n' << std::string(72, '=') << '\n'
            << title << '\n'
            << std::string(72, '=') << '\n';
}

}  // namespace ff::eval
