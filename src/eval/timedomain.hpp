// Sample-level end-to-end link simulation: source -> {direct path, relay
// forward path} -> destination, with real packet decoding at the client.
//
// The frequency-domain evaluator (schemes.hpp) is valid only while every
// relayed component lands inside the OFDM cyclic prefix — the paper's own
// premise. This simulator makes no such assumption: it convolves the actual
// sample streams with the channels, runs the relay's forward pipeline at the
// configured processing latency, and decodes at the client. It is what the
// Fig. 16 latency sweep and the CFO-restore ablation run on.
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"
#include "eval/testbed.hpp"
#include "phy/frame.hpp"
#include "relay/pipeline.hpp"

namespace ff::eval {

struct TimeDomainLink {
  channel::MultipathChannel sd;  // source -> destination
  channel::MultipathChannel sr;  // source -> relay
  channel::MultipathChannel rd;  // relay -> destination
  double source_power_dbm = 20.0;
  double dest_noise_dbm = -90.0;
  double relay_noise_dbm = -90.0;
  double source_cfo_hz = 0.0;    // source oscillator offset vs destination
};

/// Build a SISO time-domain link from a testbed placement.
TimeDomainLink build_td_link(const Placement& placement, const channel::Point& client,
                             const TestbedConfig& cfg, Rng& rng);

struct TdRunResult {
  bool decoded = false;       // preamble found and SIGNAL parsed
  bool crc_ok = false;
  double snr_db = 0.0;        // EVM-derived SINR at the client
  double throughput_mbps = 0.0;  // rate_from_snr on the measured SINR
  double relay_extra_delay_s = 0.0;  // relayed-path delay beyond the direct path
};

struct TdRunOptions {
  phy::OfdmParams params{};      // numerology (default: the WiFi 20 MHz PHY)
  int mcs_index = 3;             // probing MCS for the EVM measurement
  std::size_t payload_bits = 600;
  bool use_relay = true;
  /// Forward-pipeline settings (gain is decided by the caller; the CNF
  /// filter/rotation come from the frequency-domain design).
  relay::PipelineConfig pipeline{};
};

/// Transmit one packet over the link and decode at the destination.
TdRunResult run_td_packet(const TimeDomainLink& link, const TdRunOptions& opts, Rng& rng);

/// Convenience: configure the pipeline with the FF design for this link
/// (CNF split + noise-aware amplification + CFO estimate), with
/// `extra_latency_s` of artificial buffering (the Fig. 16 knob).
relay::PipelineConfig make_ff_pipeline(const TimeDomainLink& link,
                                       const phy::OfdmParams& params,
                                       double extra_latency_s, bool restore_cfo = true);

}  // namespace ff::eval
