#include "eval/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ff::eval {

double percentile(std::vector<double> values, double p) {
  FF_CHECK(!values.empty());
  FF_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

double mean(const std::vector<double>& values) {
  FF_CHECK(!values.empty());
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

std::vector<CdfPoint> make_cdf(std::vector<double> values) {
  FF_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = {values[i],
              static_cast<double>(i + 1) / static_cast<double>(values.size())};
  return out;
}

std::vector<CdfPoint> resample_cdf(const std::vector<CdfPoint>& cdf, std::size_t n) {
  FF_CHECK(!cdf.empty() && n >= 2);
  std::vector<CdfPoint> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = static_cast<double>(i + 1) / static_cast<double>(n);
    // First CDF entry with prob >= p.
    std::size_t j = 0;
    while (j + 1 < cdf.size() && cdf[j].prob < p) ++j;
    out.push_back({cdf[j].value, p});
  }
  return out;
}

std::vector<double> ratios(const std::vector<double>& a, const std::vector<double>& b) {
  FF_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = b[i] > 0.0 ? a[i] / b[i] : 0.0;
  return out;
}

}  // namespace ff::eval
