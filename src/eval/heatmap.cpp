#include "eval/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace ff::eval {

std::string render_heatmap(const channel::FloorPlan& plan,
                           const std::function<double(double, double)>& f,
                           const HeatmapConfig& cfg) {
  FF_CHECK(cfg.step_m > 0.0 && cfg.max_value > cfg.min_value);
  static constexpr char kShades[] = " .:-=+*%@#";
  constexpr int kLevels = 10;

  std::ostringstream os;
  for (double y = plan.height() - cfg.step_m / 2.0; y > 0.0; y -= cfg.step_m) {
    for (double x = cfg.step_m / 2.0; x < plan.width(); x += cfg.step_m) {
      const double v = f(x, y);
      const double t = (v - cfg.min_value) / (cfg.max_value - cfg.min_value);
      const int level = std::clamp(static_cast<int>(t * kLevels), 0, kLevels - 1);
      os << kShades[level];
    }
    os << '\n';
  }
  os << "scale: '" << kShades[0] << "' <= " << cfg.min_value << "  ...  '"
     << kShades[kLevels - 1] << "' >= " << cfg.max_value << '\n';
  return os.str();
}

}  // namespace ff::eval
