#include "eval/schemes.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace ff::eval {

phy::MimoRate ap_only_rate(const relay::RelayLink& link) {
  return phy::mimo_throughput_mbps(link.h_sd, power_from_db(link.source_power_dbm),
                                   power_from_db(link.dest_noise_dbm));
}

double hd_two_hop_mbps(const relay::RelayLink& link, double mesh_power_dbm) {
  // Hop 1: AP -> mesh router (the router sits where the relay sits).
  const auto hop1 = phy::mimo_throughput_mbps(
      link.h_sr, power_from_db(link.source_power_dbm), power_from_db(link.relay_noise_dbm));
  // Hop 2: mesh router -> client.
  const auto hop2 = phy::mimo_throughput_mbps(
      link.h_rd, power_from_db(mesh_power_dbm), power_from_db(link.dest_noise_dbm));
  // Perfect alternate-slot scheduling: each packet consumes two slots.
  return 0.5 * std::min(hop1.throughput_mbps, hop2.throughput_mbps);
}

phy::MimoRate relayed_rate(const relay::RelayLink& link, const relay::RelayDesign& design) {
  return phy::mimo_throughput_mbps(design.h_eff, power_from_db(link.source_power_dbm),
                                   power_from_db(link.dest_noise_dbm),
                                   design.relay_noise_mw);
}

SchemeResult evaluate_location(const relay::RelayLink& link, const SchemeOptions& opts) {
  SchemeResult r;

  const phy::MimoRate direct = ap_only_rate(link);
  r.ap_only_mbps = direct.throughput_mbps;
  r.baseline_snr_db = direct.effective_snr_db;
  r.baseline_streams = direct.streams;

  r.hd_mesh_mbps = std::max(direct.throughput_mbps, hd_two_hop_mbps(link));

  const relay::RelayDesign ff = relay::design_ff_relay(link, opts.design);
  r.ff_mbps = relayed_rate(link, ff).throughput_mbps;

  if (opts.evaluate_af) {
    const relay::RelayDesign af = relay::design_af_relay(link, opts.design);
    r.af_mbps = relayed_rate(link, af).throughput_mbps;
  }
  return r;
}

}  // namespace ff::eval
