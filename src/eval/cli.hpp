// Shared command-line surface for the examples and bench binaries.
//
// Before this existed every example hand-rolled its own argv loop (atoi on
// positionals, ad-hoc flag matching, no --help). Cli centralizes that:
// declare options bound to variables, call parse(), and get consistent
// `--name value` / `--name=value` handling plus generated usage text.
//
// Two higher-level helpers cover the recurring shapes:
//   * MetricsSink     — the `--metrics out.json` convention: owns a
//     MetricsRegistry, hands out a pointer only when the user asked for
//     metrics (so the default path stays the telemetry no-op), and writes
//     the ff-metrics-v1 JSON on demand.
//   * ExperimentCli   — the standard run_experiment knobs (testbed preset,
//     --clients, --seed, --threads) plus a MetricsSink, building an
//     ExperimentConfig via the fluent builder.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "common/telemetry.hpp"
#include "eval/experiment.hpp"

namespace ff::eval {

namespace cli_detail {

bool parse_value(const std::string& text, std::string& out);
bool parse_value(const std::string& text, double& out);
bool parse_signed(const std::string& text, long long& out);
bool parse_unsigned(const std::string& text, unsigned long long& out);

/// Integral parse with range check, shared by every int-ish target type
/// (keeps std::size_t and std::uint64_t from needing colliding overloads
/// on LP64, where they are the same type).
template <typename T>
  requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
bool parse_value(const std::string& text, T& out) {
  if constexpr (std::is_signed_v<T>) {
    long long v = 0;
    if (!parse_signed(text, v)) return false;
    if (v < static_cast<long long>(std::numeric_limits<T>::min()) ||
        v > static_cast<long long>(std::numeric_limits<T>::max()))
      return false;
    out = static_cast<T>(v);
  } else {
    unsigned long long v = 0;
    if (!parse_unsigned(text, v)) return false;
    if (v > static_cast<unsigned long long>(std::numeric_limits<T>::max())) return false;
    out = static_cast<T>(v);
  }
  return true;
}

}  // namespace cli_detail

/// Declarative argv parser. Options are matched as `--name value` or
/// `--name=value`; flags take no value; positionals fill in declaration
/// order. `--help` is built in.
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Bind `--name <value>` to *target (which also supplies the default
  /// shown in usage). Any type with a cli_detail::parse_value overload.
  template <typename T>
  Cli& add_option(const std::string& name, T* target, const std::string& help) {
    specs_.push_back(Spec{
        name, help, /*is_flag=*/false,
        [target](const std::string& v) { return cli_detail::parse_value(v, *target); }});
    return *this;
  }

  /// Bind `--name` (no value) to *target = true.
  Cli& add_flag(const std::string& name, bool* target, const std::string& help);

  /// Bind `--name value`, repeatable: every occurrence appends to *target
  /// (`--set a.b=1 --set c.d=2` collects both, in argv order).
  Cli& add_repeatable(const std::string& name, std::vector<std::string>* target,
                      const std::string& help);

  /// Bind the next positional argument to *target. Positionals are
  /// optional: trailing ones keep their defaults when omitted.
  template <typename T>
  Cli& add_positional(const std::string& name, T* target, const std::string& help) {
    positionals_.push_back(Spec{
        name, help, /*is_flag=*/false,
        [target](const std::string& v) { return cli_detail::parse_value(v, *target); }});
    return *this;
  }

  /// Parse argv. Returns true when the program should proceed; false when
  /// it should exit immediately with exit_code() (after `--help`, or a
  /// parse error that has already been reported on stderr).
  bool parse(int argc, char** argv);

  int exit_code() const { return exit_code_; }

  std::string usage() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    bool is_flag = false;
    std::function<bool(const std::string&)> assign;
  };

  const Spec* find_option(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<Spec> positionals_;
  int exit_code_ = 0;
};

/// The `--metrics out.json` convention: an owned registry that subsystems
/// see only when the user asked for telemetry, so the default run keeps the
/// zero-overhead null-registry path.
class MetricsSink {
 public:
  /// Adds `--metrics` to the Cli.
  void register_options(Cli& cli);

  const std::string& path() const { return path_; }
  bool enabled() const { return !path_.empty(); }

  /// The injection pointer: the registry when --metrics was given, else
  /// nullptr (subsystems then skip all recording).
  MetricsRegistry* registry() { return enabled() ? &registry_ : nullptr; }

  /// Write the snapshot as ff-metrics-v1 JSON to path(). No-op (returns
  /// true) when metrics were not requested; reports failures on stderr.
  bool write() const;

 private:
  std::string path_;
  MetricsRegistry registry_;
};

/// The standard experiment surface shared by the figure benches and
/// experiment-driven examples: testbed preset, client count, seed, threads,
/// and the metrics sink.
class ExperimentCli {
 public:
  ExperimentCli() = default;
  explicit ExperimentCli(const ExperimentConfig& defaults) : defaults_(defaults) {}

  /// Adds --preset, --clients, --seed, --threads and --metrics.
  void register_options(Cli& cli);

  /// Build the config: the defaults given at construction, overridden by
  /// whatever the user passed, with the metrics sink wired in.
  ExperimentConfig config();

  MetricsSink& metrics_sink() { return sink_; }
  MetricsRegistry* metrics() { return sink_.registry(); }

  /// Write the metrics JSON if --metrics was given.
  bool write_metrics() const { return sink_.write(); }

 private:
  ExperimentConfig defaults_{};
  std::string preset_;           // "" = keep the defaults' testbed
  std::size_t clients_ = 0;      // seeded from defaults_ in register_options
  std::uint64_t seed_ = 0;
  std::size_t threads_ = 0;      // 0 = auto (FF_THREADS / hardware)
  MetricsSink sink_;
};

/// One parsed `--set elem.handler=value` request: call write handler
/// `handler` on element `elem` with `value` before the run starts. Plain
/// strings — StreamCli stays ff_stream-agnostic; the host binary resolves
/// them through Graph::handler.
struct HandlerWrite {
  std::string element;
  std::string handler;
  std::string value;
};

/// Parse one `elem.handler=value` request (first '.', first '='); false on
/// a malformed string. Shared by StreamCli's --set and ffrelayd's presets.
bool parse_handler_write(const std::string& text, HandlerWrite& out);

/// The streaming-runtime surface shared by examples/streaming_relay and
/// bench_runtime's stream_relay kernel: how the session is blocked
/// (--block-size), how long it runs (--duration), how deep the bounded
/// queues are (--backpressure), which scheduler executes it (--mode,
/// --batch-size, --pin-cores), worker threads, the metrics sink, and the
/// declarative surface (--graph file.ff, repeatable --set elem.handler=v).
///
/// The mode is kept as a validated string ("reference" | "throughput")
/// rather than a stream::SchedulerMode so ff_eval stays independent of
/// ff_stream; callers map it with is_throughput(). --graph/--set follow the
/// same rule: StreamCli validates the shape, the host builds the graph.
class StreamCli {
 public:
  /// Adds --block-size, --duration, --backpressure, --threads, --mode,
  /// --batch-size, --pin-cores, --graph, --set, --metrics. Hosts that
  /// already own a --metrics option (bench_runtime) pass
  /// with_metrics_option = false to keep the option name unambiguous.
  void register_options(Cli& cli, bool with_metrics_option = true);

  /// Range-check the parsed values (block size, queue capacity and batch
  /// size >= 1, duration positive and finite, mode a known name, every
  /// --set of the form elem.handler=value). Reports violations on stderr;
  /// callers exit non-zero when this returns false.
  bool validate() const;

  std::size_t block_size() const { return block_size_; }
  double duration_s() const { return duration_s_; }
  /// Bounded-channel capacity in blocks (the backpressure depth).
  std::size_t backpressure() const { return backpressure_; }
  std::size_t threads() const { return threads_; }

  /// Scheduler selection ("reference" | "throughput", validated).
  const std::string& mode() const { return mode_; }
  bool is_throughput() const { return mode_ == "throughput"; }

  /// Arithmetic precision of the session's sample paths ("f64" | "f32",
  /// validated). Hosts map it onto the `precision=` config of the elements
  /// they build (pipeline, channels, canceller) — same rule as --mode:
  /// StreamCli validates the name, the host applies it.
  const std::string& precision() const { return precision_; }
  bool is_f32() const { return precision_ == "f32"; }
  /// Throughput mode: blocks per work_batch pass and per ring transfer.
  std::size_t batch_size() const { return batch_size_; }
  /// Throughput mode: pin chain workers to cores (no-op where unsupported).
  bool pin_cores() const { return pin_cores_; }

  /// Graph description file to build the session from ("" = the host's
  /// hand-wired default topology).
  const std::string& graph() const { return graph_; }
  /// The raw `--set` arguments, argv order.
  const std::vector<std::string>& sets() const { return sets_; }
  /// The `--set` arguments parsed as elem.handler=value triples (validate()
  /// has already rejected malformed ones).
  std::vector<HandlerWrite> writes() const;

  MetricsSink& metrics_sink() { return sink_; }
  MetricsRegistry* metrics() { return sink_.registry(); }
  bool write_metrics() const { return sink_.write(); }

 private:
  std::size_t block_size_ = 256;
  double duration_s_ = 5e-3;
  std::size_t backpressure_ = 8;
  std::size_t threads_ = 1;
  std::string mode_ = "reference";
  std::string precision_ = "f64";
  std::size_t batch_size_ = 8;
  bool pin_cores_ = false;
  std::string graph_;
  std::vector<std::string> sets_;
  MetricsSink sink_;
};

}  // namespace ff::eval
