// Per-location PHY throughput of every compared scheme (Sec. 5):
//   AP only            — direct link, ideal rate selection.
//   AP + HD mesh       — decode-and-forward router at the relay position,
//                        perfectly scheduled alternating slots; the AP picks
//                        max(direct, two-hop/2).
//   AP + FF relay      — construct-and-forward full duplex (this paper).
//   AP + AF relay      — blind amplify-and-forward repeater (Sec. 5.5).
#pragma once

#include "eval/testbed.hpp"
#include "phy/mcs.hpp"
#include "relay/design.hpp"

namespace ff::eval {

struct SchemeResult {
  double ap_only_mbps = 0.0;
  double hd_mesh_mbps = 0.0;
  double ff_mbps = 0.0;
  double af_mbps = 0.0;
  // Baseline (AP-only) link diagnostics used for Fig. 15's categorization.
  double baseline_snr_db = 0.0;     // effective SNR of the strongest stream
  std::size_t baseline_streams = 0; // spatial streams the AP-only link uses
};

struct SchemeOptions {
  bool evaluate_af = false;                 // AF needs its own design pass
  relay::DesignOptions design{};            // filled with the f-grid by caller
};

/// Throughput of the direct link only.
phy::MimoRate ap_only_rate(const relay::RelayLink& link);

/// Throughput of the half-duplex decode-and-forward mesh path:
/// 0.5 * min(R(source->mesh), R(mesh->client)), where the mesh transmits at
/// the same power as the AP. The caller takes max with the direct rate.
double hd_two_hop_mbps(const relay::RelayLink& link, double mesh_power_dbm = 20.0);

/// Throughput with a designed relay (FF or AF): the effective channel plus
/// the relay-injected noise.
phy::MimoRate relayed_rate(const relay::RelayLink& link, const relay::RelayDesign& design);

/// Evaluate every scheme at one location.
SchemeResult evaluate_location(const relay::RelayLink& link, const SchemeOptions& opts);

}  // namespace ff::eval
