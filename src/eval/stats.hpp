// Summary statistics and CDF helpers for the evaluation harness.
#pragma once

#include <string>
#include <vector>

namespace ff::eval {

/// p-th percentile (p in [0, 100]) by linear interpolation; input copied.
double percentile(std::vector<double> values, double p);

double median(std::vector<double> values);
double mean(const std::vector<double>& values);

/// CDF sampled at the values themselves: sorted (value, cumulative prob).
struct CdfPoint {
  double value = 0.0;
  double prob = 0.0;
};
std::vector<CdfPoint> make_cdf(std::vector<double> values);

/// Downsample a CDF to ~n evenly spaced probability points for printing.
std::vector<CdfPoint> resample_cdf(const std::vector<CdfPoint>& cdf, std::size_t n);

/// Element-wise ratio a/b (0 when b == 0), used for relative-gain metrics.
std::vector<double> ratios(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ff::eval
