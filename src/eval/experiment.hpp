// Multi-scenario experiment runner: places clients across every evaluation
// floor plan, computes all schemes' throughput, and carries the diagnostics
// needed by each figure's bench binary.
#pragma once

#include <array>
#include <string>

#include "eval/schemes.hpp"
#include "eval/testbed.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::eval {

enum class LinkCategory {
  kLowSnrLowRank,    // coverage edge (Fig. 15a)
  kMediumSnrLowRank, // pinhole victims (Fig. 15b)
  kHighSnrHighRank,  // near the AP (Fig. 15c)
  kOther,
};

std::string to_string(LinkCategory c);

/// Metric-name-safe slug ("low_snr_low_rank", ...).
std::string category_slug(LinkCategory c);

/// Fig. 15 categorization from AP-only diagnostics.
LinkCategory categorize(double baseline_snr_db, std::size_t baseline_streams,
                        std::size_t max_streams);

/// The compared schemes of Sec. 5, in the order SchemeResult stores them.
enum class Scheme {
  kApOnly,
  kHdMesh,
  kFastForward,
  kAmplifyForward,
};
inline constexpr std::array<Scheme, 4> kAllSchemes{
    Scheme::kApOnly, Scheme::kHdMesh, Scheme::kFastForward, Scheme::kAmplifyForward};

std::string to_string(Scheme s);

/// The scheme's throughput within one location's results.
double scheme_mbps(const SchemeResult& r, Scheme s);

/// Highest-throughput scheme at a location. Ties resolve to the earlier
/// (simpler) scheme in enum order, so the choice is deterministic.
Scheme winner(const SchemeResult& r);

struct LocationResult {
  std::string plan;
  channel::Point client;
  SchemeResult schemes;
  LinkCategory category = LinkCategory::kOther;
};

/// Canonical testbed shapes used by the figures.
enum class TestbedPreset {
  kMimo2x2,  // the default 2x2 evaluation (Figs. 12/13/15/17/18)
  kSiso,     // single-antenna devices (Fig. 14)
};

TestbedConfig make_testbed(TestbedPreset preset);

struct ExperimentConfig {
  TestbedConfig testbed{};
  std::size_t clients_per_plan = 40;
  std::uint64_t seed = 1;
  bool evaluate_af = false;
  /// Worker threads for the per-location evaluations. 0 = FF_THREADS env /
  /// hardware default (see common/parallel.hpp). Results are bit-identical
  /// at every thread count: all randomness is drawn in a serial phase that
  /// assigns each location its own pre-forked RNG stream before the
  /// parallel compute phase starts.
  std::size_t threads = 0;
  /// Optional metrics sink (common/telemetry.hpp): run_experiment records
  /// per-location timings, category tallies, scheme win counts, and the
  /// relay-design metrics of every evaluated location. Everything except
  /// timer values is deterministic at any thread count. Default nullptr.
  MetricsRegistry* metrics = nullptr;

  /// Fluent construction, so call sites state intent instead of mutating
  /// public fields in ad-hoc orders:
  ///   ExperimentConfig::for_testbed(TestbedPreset::kSiso)
  ///       .with_clients(50).with_seed(20140817)
  static ExperimentConfig for_testbed(TestbedPreset preset) {
    ExperimentConfig cfg;
    cfg.testbed = make_testbed(preset);
    return cfg;
  }
  static ExperimentConfig for_testbed(const TestbedConfig& tb) {
    ExperimentConfig cfg;
    cfg.testbed = tb;
    return cfg;
  }
  ExperimentConfig& with_clients(std::size_t n) {
    clients_per_plan = n;
    return *this;
  }
  ExperimentConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  ExperimentConfig& with_af(bool enabled = true) {
    evaluate_af = enabled;
    return *this;
  }
  ExperimentConfig& with_threads(std::size_t n) {
    threads = n;
    return *this;
  }
  ExperimentConfig& with_cancellation_db(double db) {
    testbed.cancellation_db = db;
    return *this;
  }
  ExperimentConfig& with_metrics(MetricsRegistry* m) {
    metrics = m;
    return *this;
  }
};

/// Aggregate view of one experiment (ExperimentResults::summary()).
struct ExperimentSummary {
  std::size_t locations = 0;
  /// Locations per LinkCategory, indexed by the enum's value.
  std::array<std::size_t, 4> category_counts{};
  /// Locations each scheme wins (argmax throughput), indexed by Scheme.
  std::array<std::size_t, 4> wins{};
  /// Median throughput per scheme, indexed by Scheme (0 when empty).
  std::array<double, 4> median_mbps{};
};

/// Owning wrapper around the per-location results. Replaces the old
/// free-function `extract(results, &SchemeResult::field)` idiom with named
/// accessors; iteration and indexing pass through to the location vector,
/// so range-for call sites keep working unchanged.
class ExperimentResults {
 public:
  ExperimentResults() = default;
  explicit ExperimentResults(std::vector<LocationResult> locations)
      : locations_(std::move(locations)) {}

  const std::vector<LocationResult>& locations() const { return locations_; }
  std::size_t size() const { return locations_.size(); }
  bool empty() const { return locations_.empty(); }
  const LocationResult& operator[](std::size_t i) const { return locations_[i]; }
  auto begin() const { return locations_.begin(); }
  auto end() const { return locations_.end(); }

  /// One scheme's throughput at every location, in location order.
  std::vector<double> throughputs(Scheme s) const;

  /// Per-location gains of `s` relative to the HD-mesh baseline (the
  /// paper's metric). Locations where even the HD mesh gets nothing have
  /// undefined gain and are excluded, as in Sec. 5.
  std::vector<double> gains_vs_hd(Scheme s) const;

  /// The subset of locations in a Fig. 15 category.
  ExperimentResults by_category(LinkCategory c) const;

  ExperimentSummary summary() const;

 private:
  std::vector<LocationResult> locations_;
};

/// Run the full evaluation across FloorPlan::evaluation_set().
ExperimentResults run_experiment(const ExperimentConfig& cfg);

/// Default relay design options for a testbed (fills the subcarrier grid).
relay::DesignOptions default_design_options(const TestbedConfig& cfg);

}  // namespace ff::eval
