// Multi-scenario experiment runner: places clients across every evaluation
// floor plan, computes all schemes' throughput, and carries the diagnostics
// needed by each figure's bench binary.
#pragma once

#include <string>

#include "eval/schemes.hpp"
#include "eval/testbed.hpp"

namespace ff::eval {

enum class LinkCategory {
  kLowSnrLowRank,    // coverage edge (Fig. 15a)
  kMediumSnrLowRank, // pinhole victims (Fig. 15b)
  kHighSnrHighRank,  // near the AP (Fig. 15c)
  kOther,
};

std::string to_string(LinkCategory c);

/// Fig. 15 categorization from AP-only diagnostics.
LinkCategory categorize(double baseline_snr_db, std::size_t baseline_streams,
                        std::size_t max_streams);

struct LocationResult {
  std::string plan;
  channel::Point client;
  SchemeResult schemes;
  LinkCategory category = LinkCategory::kOther;
};

struct ExperimentConfig {
  TestbedConfig testbed{};
  std::size_t clients_per_plan = 40;
  std::uint64_t seed = 1;
  bool evaluate_af = false;
  /// Worker threads for the per-location evaluations. 0 = FF_THREADS env /
  /// hardware default (see common/parallel.hpp). Results are bit-identical
  /// at every thread count: all randomness is drawn in a serial phase that
  /// assigns each location its own pre-forked RNG stream before the
  /// parallel compute phase starts.
  std::size_t threads = 0;
};

/// Run the full evaluation across FloorPlan::evaluation_set().
std::vector<LocationResult> run_experiment(const ExperimentConfig& cfg);

/// Default relay design options for a testbed (fills the subcarrier grid).
relay::DesignOptions default_design_options(const TestbedConfig& cfg);

/// Extract one scheme's throughputs from results.
std::vector<double> extract(const std::vector<LocationResult>& results,
                            double SchemeResult::*field);

}  // namespace ff::eval
