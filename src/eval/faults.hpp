// Deterministic fault injection for robustness evaluation.
//
// Deployed full-duplex relays see degraded inputs long before they see clean
// ones: converter/DMA glitches corrupt or drop IQ samples, AGC clamps zero
// them, snooped channel estimates arrive perturbed, and sounding rounds are
// lost to collisions. Sahai et al. and Duarte et al. both show cancellation
// collapsing ungracefully when its estimation assumptions break, so the
// reproduction must *prove* the pipeline degrades gracefully — a structured
// error or bounded throughput loss, never a crash, hang, or silently
// NaN-poisoned result (docs/HARDENING.md).
//
// Injection follows the telemetry pattern (common/telemetry.hpp): config
// structs carry an optional `eval::FaultInjector*` whose default nullptr
// means no faults and no cost. Fault POSITIONS are exact and deterministic,
// not Bernoulli: a rate-r fault class fires on its k-th opportunity
// (1-based) iff floor(k*r) > floor((k-1)*r), so any run of n opportunities
// sees exactly expected_count(n, r) = floor(n*r) faults, independent of
// batching. Fault VALUES (corruption noise, estimate perturbations) come
// from a seeded Rng, so faulted runs reproduce bit-for-bit.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::eval {

struct FaultConfig {
  /// Fraction of IQ samples zeroed (deep fade / AGC clamp / dropped DMA).
  double sample_drop_rate = 0.0;
  /// Fraction of IQ samples replaced by strong complex Gaussian noise
  /// (bus glitch, impulsive interference) of amplitude `corrupt_amplitude`.
  double sample_corrupt_rate = 0.0;
  /// Fraction of IQ samples NaN-poisoned (driver handing back an
  /// uninitialized buffer — the worst realistic input).
  double sample_nan_rate = 0.0;
  /// RMS amplitude of corrupted samples (10 = +20 dB over a unit signal).
  double corrupt_amplitude = 10.0;
  /// Relative error on channel estimates: each tap h is replaced by
  /// h * (1 + estimate_sigma * cgaussian()).
  double estimate_sigma = 0.0;
  /// Fraction of sounding rounds that fail outright (no CSI updates land).
  double sounding_failure_rate = 0.0;
  std::uint64_t seed = 0x0FF5EED;
  /// Optional telemetry sink: the injector counts everything it touches
  /// under `fd.faults.*` (samples seen/dropped/corrupted/poisoned, sounding
  /// rounds seen/failed, estimates perturbed). Default nullptr.
  MetricsRegistry* metrics = nullptr;

  bool any_sample_faults() const {
    return sample_drop_rate > 0.0 || sample_corrupt_rate > 0.0 || sample_nan_rate > 0.0;
  }
};

/// Applies the configured faults with exact deterministic rates. Stateful
/// (per-class fault schedules + value RNG); one injector models one faulty
/// front-end and is NOT thread-safe — give each parallel lane its own.
class FaultInjector {
 public:
  /// Validates rates are finite and within [0, 1].
  explicit FaultInjector(FaultConfig cfg);

  const FaultConfig& config() const { return cfg_; }

  /// Faults the next `x.size()` samples of the stream in place, in order
  /// drop -> corrupt -> NaN (a sample drawing several faults keeps the
  /// most severe). Batch boundaries do not matter: two calls of n/2 fault
  /// exactly the samples one call of n would.
  void apply(CMutSpan x);

  /// Copying convenience for const inputs.
  CVec apply_copy(CSpan x);

  /// Perturb a channel estimate: h[i] *= 1 + estimate_sigma * cgaussian().
  CVec perturb_estimate(CSpan h);

  /// Advance the sounding schedule one round; true = this round is lost.
  bool sounding_fails();

  /// Faults a rate-r class has fired after n opportunities: floor(n * r).
  /// Tests assert telemetry counters against exactly this value.
  static std::uint64_t expected_count(std::uint64_t n, double rate);

  std::uint64_t samples_seen() const { return samples_seen_; }
  std::uint64_t samples_dropped() const { return drop_.fired; }
  std::uint64_t samples_corrupted() const { return corrupt_.fired; }
  std::uint64_t samples_poisoned() const { return nan_.fired; }
  std::uint64_t soundings_seen() const { return sounding_.seen; }
  std::uint64_t soundings_failed() const { return sounding_.fired; }

 private:
  /// Exact-rate schedule: fires on opportunity k (1-based) iff
  /// floor(k*rate) exceeds the count fired so far.
  struct Schedule {
    std::uint64_t seen = 0;
    std::uint64_t fired = 0;
    bool step(double rate);
  };

  FaultConfig cfg_;
  Rng rng_;
  Schedule drop_;
  Schedule corrupt_;
  Schedule nan_;
  Schedule sounding_;
  std::uint64_t samples_seen_ = 0;
  std::uint64_t estimates_perturbed_ = 0;
};

}  // namespace ff::eval
