// Sample-level 2x2 MIMO end-to-end link with the FF relay in the loop —
// the paper's actual prototype configuration (Sec. 4.3/5).
//
// The relay realizes the per-subcarrier unitary CNF matrix as K x K scalar
// forward chains (the prototype's four analog CNF boards): entry (j, i) is
// its own digital pre-filter + analog rotator, fitted by the Sec. 3.4
// split. The destination runs the full MIMO receiver (HT-LTF channel
// estimation + per-subcarrier MMSE), so MIMO rank expansion — the paper's
// second gain mechanism — can be observed on real decoded packets.
#pragma once

#include "channel/mimo.hpp"
#include "common/rng.hpp"
#include "eval/testbed.hpp"
#include "phy/mimo_frame.hpp"
#include "relay/pipeline.hpp"

namespace ff::eval {

struct MimoTdLink {
  channel::MimoChannel sd;  // AP -> client      (N x M)
  channel::MimoChannel sr;  // AP -> relay       (K x M)
  channel::MimoChannel rd;  // relay -> client   (N x K)
  double source_power_dbm = 20.0;
  double dest_noise_dbm = -90.0;
  double relay_noise_dbm = -90.0;
  double source_cfo_hz = 0.0;
};

/// Build a 2x2 link from a placement.
MimoTdLink build_mimo_td_link(const Placement& placement, const channel::Point& client,
                              const TestbedConfig& cfg, Rng& rng);

/// The relay's K x K bank of forward chains, designed from the link's
/// channels (including the converter chain delay) via the MIMO CNF
/// optimization and per-entry splits.
struct MimoRelayBank {
  std::vector<relay::PipelineConfig> chains;  // row-major K x K: out j, in i
  std::size_t k = 0;
  double max_delay_s = 0.0;

  /// Run the bank over per-antenna receive streams.
  std::vector<CVec> process(const std::vector<CVec>& rx) const;
};

MimoRelayBank make_mimo_relay_bank(const MimoTdLink& link, const phy::OfdmParams& params,
                                   double extra_latency_s = 0.0);

struct MimoTdResult {
  bool decoded = false;
  bool crc_ok = false;
  std::vector<bool> stream_crc_ok;
  std::vector<double> stream_snr_db;
  double sum_rate_mbps = 0.0;  // sum over streams of rate_from_snr
};

struct MimoTdOptions {
  phy::OfdmParams params{};
  int mcs_index = 2;
  std::size_t payload_bits_per_stream = 300;
  bool use_relay = true;
  MimoRelayBank bank{};
};

/// Transmit one 2-stream packet and decode at the client.
MimoTdResult run_mimo_td_packet(const MimoTdLink& link, const MimoTdOptions& opts, Rng& rng);

}  // namespace ff::eval
