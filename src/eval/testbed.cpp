#include "eval/testbed.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::eval {

Placement make_placement(const channel::FloorPlan& plan) {
  // AP near one corner (Fig. 1's living-room AP); relay a few metres out
  // with a good view of the AP — the paper's own Sec. 3.5 example has the
  // relay hearing the AP at ~20 dB SNR, and since the noise-aware gain rule
  // caps the relayed path at (SNR_at_relay - 3) dB, relay placement relative
  // to the AP is what sets the ceiling of FF's gains.
  Placement p;
  p.plan = plan;
  p.ap = {0.08 * plan.width(), 0.10 * plan.height()};
  p.relay = {0.22 * plan.width(), 0.28 * plan.height()};
  return p;
}

channel::Point random_client_location(const channel::FloorPlan& plan, Rng& rng) {
  const double margin = 0.4;
  return {rng.uniform(margin, plan.width() - margin),
          rng.uniform(margin, plan.height() - margin)};
}

std::vector<channel::Point> grid_locations(const channel::FloorPlan& plan, double step_m) {
  FF_CHECK(step_m > 0.0);
  std::vector<channel::Point> out;
  for (double y = step_m / 2.0; y < plan.height(); y += step_m)
    for (double x = step_m / 2.0; x < plan.width(); x += step_m) out.push_back({x, y});
  return out;
}

relay::RelayLink build_link(const Placement& placement, const channel::Point& client,
                            const TestbedConfig& cfg, Rng& rng) {
  channel::PropagationConfig prop = cfg.prop;
  prop.carrier_hz = cfg.ofdm.carrier_hz;
  const channel::IndoorPropagation model(placement.plan, prop);

  const std::size_t n = cfg.antennas;
  const auto ch_sd = model.link(placement.ap, client, n, n, rng);
  const auto ch_sr = model.link(placement.ap, placement.relay, n, n, rng);
  const auto ch_rd = model.link(placement.relay, client, n, n, rng);

  const auto freqs = cfg.ofdm.used_subcarrier_freqs();
  relay::RelayLink link;
  link.h_sd.reserve(freqs.size());
  link.h_sr.reserve(freqs.size());
  link.h_rd.reserve(freqs.size());
  for (const double f : freqs) {
    link.h_sd.push_back(ch_sd.response(f));
    link.h_sr.push_back(ch_sr.response(f));
    // The relay's bulk processing delay rides on the relay->destination leg.
    const double phase = -kTwoPi * f * cfg.relay_chain_delay_s;
    link.h_rd.push_back(ch_rd.response(f) * Complex{std::cos(phase), std::sin(phase)});
  }
  link.source_power_dbm = cfg.ap_power_dbm;
  link.dest_noise_dbm = cfg.noise_floor_dbm;
  link.relay_noise_dbm = cfg.relay_noise_dbm;
  link.cancellation_db = cfg.cancellation_db;
  return link;
}

}  // namespace ff::eval
