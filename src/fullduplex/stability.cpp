#include "fullduplex/stability.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"

namespace ff::fd {

double loop_isolation_db(CSpan residual_fir, double sample_rate_hz, double bandwidth_hz) {
  FF_CHECK(!residual_fir.empty());
  double peak = 0.0;
  const int n_grid = 201;
  for (int i = 0; i < n_grid; ++i) {
    const double f = -bandwidth_hz / 2.0 +
                     bandwidth_hz * static_cast<double>(i) / static_cast<double>(n_grid - 1);
    peak = std::max(peak, std::abs(dsp::freq_response(residual_fir, f / sample_rate_hz)));
  }
  if (peak <= 0.0) return 400.0;
  return -db_from_amplitude(peak);
}

double LoopSimResult::growth_db() const {
  if (diverged) return 400.0;
  if (early_tx_power <= 0.0 || late_tx_power <= 0.0) return 0.0;
  return db_from_power(late_tx_power / early_tx_power);
}

LoopSimResult simulate_relay_loop(CSpan input, CSpan residual_fir, double gain_db,
                                  std::size_t delay_samples) {
  FF_CHECK(delay_samples >= 1);
  const double gain = amplitude_from_db(gain_db);
  const std::size_t n = input.size();
  LoopSimResult result;
  result.tx.assign(n, Complex{});
  result.input_power = dsp::mean_power(input);

  CVec rx(n, Complex{});
  constexpr double kOverflow = 1e18;
  for (std::size_t t = 0; t < n; ++t) {
    Complex si{0.0, 0.0};
    for (std::size_t k = 0; k < residual_fir.size() && k <= t; ++k)
      si += residual_fir[k] * result.tx[t - k];
    rx[t] = input[t] + si;
    if (t >= delay_samples) result.tx[t] = gain * rx[t - delay_samples];
    if (std::norm(result.tx[t]) > kOverflow) {
      result.diverged = true;
      // Freeze the remainder at the overflow level to keep stats finite.
      for (std::size_t u = t; u < n; ++u) result.tx[u] = result.tx[t];
      break;
    }
  }

  const std::size_t q = n / 4;
  result.early_tx_power = dsp::mean_power(CSpan(result.tx).subspan(delay_samples, q));
  result.late_tx_power = dsp::mean_power(CSpan(result.tx).subspan(n - q, q));
  return result;
}

}  // namespace ff::fd
