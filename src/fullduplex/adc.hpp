// ADC model: clipping plus uniform quantization.
//
// This is why the ANALOG cancellation stage exists at all (Sec. 3.3): the
// digital canceller can only subtract what the ADC faithfully captured. If
// self-interference reaches the converter at high power, the AGC must scale
// the full range to fit it, and the desired signal (and the residual the
// digital stage needs to model) drowns in quantization noise. Analog
// cancellation buys back that dynamic range before digitization.
#pragma once

#include "common/types.hpp"

namespace ff::fd {

struct AdcConfig {
  int bits = 12;               // effective bits per I/Q rail (WARP-class)
  double backoff_db = 12.0;    // AGC headroom between RMS input and clipping
};

/// Digitize a stream: AGC sets full scale from the input RMS plus backoff,
/// then each rail is clipped and uniformly quantized to `bits`.
CVec adc_quantize(CSpan x, const AdcConfig& cfg = {});

/// Quantization-noise floor of the model (dB below the input power) for a
/// given configuration — the ceiling any later cancellation can reach.
double adc_noise_floor_db(const AdcConfig& cfg);

}  // namespace ff::fd
