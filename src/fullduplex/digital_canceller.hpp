// Digital self-interference cancellation.
//
// The paper's second key invention (Sec. 3.3): prior full-duplex digital
// cancellers are NON-CAUSAL — they buffer received samples so the filter can
// "peek ahead" at transmitted samples that bracket the current instant.
// Buffering means delay (5 samples at 100 Msps = 50 ns), which blows the
// relay's CP budget. FF's canceller is strictly CAUSAL: it reconstructs the
// residual self-interference using only already-transmitted samples, at the
// cost of more taps, and adds zero delay to the receive path.
//
// Both variants are implemented so the ablation benches can show the
// trade-off (causal: more taps, 0 ns; non-causal: fewer taps, +lookahead).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dsp/kernels/workspace.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::fd {

/// Least-squares FIR estimation: find h (length `taps`, with `lookahead`
/// anti-causal taps) minimizing || y[n] - sum_k h[k] x[n - k + lookahead] ||.
/// With lookahead = 0 the filter is strictly causal in x.
/// Uses rows n in [taps, x.size()) so every row has full history.
CVec estimate_fir_ls(CSpan x, CSpan y, std::size_t taps, std::size_t lookahead = 0,
                     double ridge = 1e-9);

/// Fast variant using the autocorrelation (normal-equations) method: builds
/// the Hermitian Toeplitz Gram matrix from lag correlations in O(N*taps) and
/// solves a taps x taps system. Statistically equivalent to estimate_fir_ls
/// for N >> taps; used for the long training records real tuning needs.
CVec estimate_fir_ls_fast(CSpan x, CSpan y, std::size_t taps, std::size_t lookahead = 0,
                          double ridge = 1e-9);

struct DigitalCancellerConfig {
  std::size_t taps = 120;       // the paper's 120-tap causal filter
  std::size_t lookahead = 0;    // 0 = causal (FF); >0 = prior-work buffering
  double ridge = 1e-9;
  /// Optional metrics sink: train() counts fits and records the configured
  /// tap budget (`fd.digital.trainings`, `fd.digital.taps`). Default off.
  MetricsRegistry* metrics = nullptr;
};

/// Trains on a (tx, residual) record and then subtracts its reconstruction
/// of the self-interference from the receive stream.
class DigitalCanceller {
 public:
  explicit DigitalCanceller(DigitalCancellerConfig cfg = {});

  const DigitalCancellerConfig& config() const { return cfg_; }
  const CVec& taps() const { return taps_; }
  bool trained() const { return !taps_.empty(); }

  /// Fit the canceller: `tx` is the known transmitted stream, `residual` the
  /// receive stream after analog cancellation (during a training window —
  /// ideally dominated by self-interference or probe noise).
  void train(CSpan tx, CSpan residual);

  /// Subtract the reconstructed self-interference: returns
  /// residual[n] - sum_k h[k] tx[n - k + lookahead].
  /// With lookahead > 0 the output is only valid where future tx exists; the
  /// final `lookahead` samples use zero-padded tx (mirrors the real buffer
  /// flush).
  CVec cancel(CSpan tx, CSpan rx) const;

  /// Allocation-free form of cancel(): writes into `out` (same length as
  /// `rx`, exact aliasing allowed), scratch from `ws` (slot 0: zero-padded
  /// tx, slot 1: reconstruction). Runs on dsp::fir_core over the padded
  /// buffer [zeros(taps-1-lookahead) | tx | zeros(lookahead)], so batch and
  /// streaming cancellation share one accumulation order bit for bit.
  void cancel_into(CSpan tx, CSpan rx, CMutSpan out,
                   dsp::kernels::Workspace& ws) const;

  /// Receive-path delay this canceller adds (samples): its lookahead.
  std::size_t added_delay_samples() const { return cfg_.lookahead; }

 private:
  DigitalCancellerConfig cfg_;
  CVec taps_;
};

/// Measured cancellation: 10*log10(P_before / P_after).
double cancellation_db(CSpan before, CSpan after);

}  // namespace ff::fd
