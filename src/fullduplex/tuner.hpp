// Cancellation tuning for a full-duplex RELAY (Sec. 3.3).
//
// Tuning a relay's canceller is harder than a normal full-duplex radio's:
// the transmitted signal is a delayed copy of the received signal, so a
// naive frequency-domain estimate H(f) = Y(f)/X_T(f) converges to
// alpha(f) + H(f) (alpha = the source-signal term) and the "canceller" then
// nulls the desired signal too. FF's fix: inject known Gaussian probe noise
// ~30 dB below the transmitted signal, and estimate the self-interference
// channel by regressing the received signal against the probe alone — the
// probe never traverses the source path, so the estimate is unbiased.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fullduplex/si_channel.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::fd {

struct ProbeConfig {
  double level_below_signal_db = 30.0;  // paper: 30 dB below the TX signal
  std::size_t est_taps = 24;            // FIR taps for the probe-based estimate
};

/// Add probe noise to a transmit stream. Returns the noise that was added
/// (the tuner correlates against it). With a registry, each injection is
/// counted (`fd.probe.injections`) alongside its configured level.
CVec inject_probe(Rng& rng, CMutSpan tx, double level_below_signal_db,
                  MetricsRegistry* metrics = nullptr);

/// Estimate the (discretized, alignment-grid) SI channel FIR by least
/// squares of `rx` against the known injected `probe` only.
CVec estimate_si_fir_probe(CSpan probe, CSpan rx, std::size_t taps);

/// Iterative probe-based estimation (what the hardware tuning loop does:
/// observe the residual after the current canceller setting, correlate with
/// the probe, update). Each round removes self-interference using the full
/// transmitted stream, so the probe regression sees less interference and
/// the estimate sharpens. Iteration stops early when the residual stops
/// improving; the record must be long enough that taps/N * P_tx/P_probe < 1
/// or the first estimate is the best one obtainable. A registry records the
/// convergence behaviour (`relay.tuner.iterations`, the executed round
/// count, and `relay.tuner.residual_dbm`, the best residual power reached).
CVec estimate_si_fir_probe_iterative(CSpan probe, CSpan tx, CSpan rx, std::size_t taps,
                                     int iterations = 12,
                                     MetricsRegistry* metrics = nullptr);

/// The biased NAIVE estimator for comparison: frequency-domain division of
/// rx by the full transmitted stream (what prior-work tuning would do).
/// Returns an FIR fit of rx against tx with the same tap count.
CVec estimate_si_fir_naive(CSpan tx, CSpan rx, std::size_t taps);

/// Evaluate a sample-spaced FIR (on the kSiAlignSamples grid) at baseband
/// frequencies, de-rotated so it is directly comparable with
/// MultipathChannel::response on the same grid.
CVec fir_response_on_grid(CSpan fir, RSpan f_bb_hz, double sample_rate_hz);

}  // namespace ff::fd
