// The complete two-stage cancellation stack of an FF relay: tunable analog
// FIR board + causal digital canceller, tuned with the Gaussian-probe
// procedure of Sec. 3.3.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsp/kernels/workspace.hpp"
#include "fullduplex/analog_canceller.hpp"
#include "fullduplex/digital_canceller.hpp"
#include "fullduplex/si_channel.hpp"
#include "fullduplex/tuner.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::fd {

struct StackConfig {
  AnalogCancellerConfig analog{};
  DigitalCancellerConfig digital{};
  ProbeConfig probe{};
  double sample_rate_hz = 20e6;
  std::size_t sinc_half_width = 6;
  /// Baseband frequency grid for analog tuning (filled from OFDM subcarriers
  /// by callers; defaults to 56 HT20 tones).
  std::vector<double> f_grid_hz;
  /// Optional metrics sink (common/telemetry.hpp). When set, tune() records
  /// the per-stage residual powers (`fd.analog.residual_dbm`,
  /// `fd.digital.residual_dbm`) measured on the training record. nullptr
  /// (the default) records nothing.
  MetricsRegistry* metrics = nullptr;

  StackConfig();
};

class CancellationStack {
 public:
  explicit CancellationStack(StackConfig cfg = {});

  const StackConfig& config() const { return cfg_; }
  const AnalogCanceller& analog() const { return analog_; }
  const DigitalCanceller& digital() const { return digital_; }
  bool tuned() const { return tuned_; }

  /// Tune both stages from a training record. `tx` is everything the relay
  /// transmitted (signal + probe), `probe` the known injected noise within
  /// it, `rx` the received stream (source signal + self-interference +
  /// thermal noise).
  void tune(CSpan tx, CSpan probe, CSpan rx);

  /// Apply both stages to a fresh record. Adds digital().added_delay
  /// samples of receive-path delay if the digital stage is non-causal.
  CVec apply(CSpan tx, CSpan rx) const;

  /// Apply only the analog stage.
  CVec apply_analog_only(CSpan tx, CSpan rx) const;

  /// Allocation-free forms: write into `out` (same length as `rx`, exact
  /// aliasing with `rx` allowed), scratch from a caller-owned Workspace.
  /// Slot budget: 0 (FIR extended buffers), 1 (digital reconstruction),
  /// 2 (analog reconstruction). The streaming CancellerElement runs its
  /// steady state on these; apply()/apply_analog_only() are thin
  /// allocating wrappers, so batch and stream cancellation are bit-identical.
  void apply_into(CSpan tx, CSpan rx, CMutSpan out,
                  dsp::kernels::Workspace& ws) const;
  void apply_analog_only_into(CSpan tx, CSpan rx, CMutSpan out,
                              dsp::kernels::Workspace& ws) const;

  /// Discretized FIR of the tuned analog canceller on the SI alignment grid.
  const CVec& analog_fir() const { return analog_fir_; }

 private:
  StackConfig cfg_;
  AnalogCanceller analog_;
  DigitalCanceller digital_;
  CVec analog_fir_;
  bool tuned_ = false;
};

}  // namespace ff::fd
