#include "fullduplex/analog_canceller.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "linalg/matrix.hpp"

namespace ff::fd {

AnalogCanceller::AnalogCanceller(AnalogCancellerConfig cfg) : cfg_(cfg) {
  FF_CHECK(cfg_.taps > 0);
  delays_.resize(static_cast<std::size_t>(cfg_.taps));
  for (int k = 0; k < cfg_.taps; ++k)
    delays_[static_cast<std::size_t>(k)] = cfg_.first_tap_delay_s + k * cfg_.tap_spacing_s;
  gains_.assign(delays_.size(), 0.0);
}

double AnalogCanceller::quantize(double gain) const {
  const double max_gain = amplitude_from_db(cfg_.insertion_gain_db);
  const double min_gain = amplitude_from_db(cfg_.insertion_gain_db - cfg_.attenuator_range_db);
  if (gain < min_gain / 2.0) return 0.0;  // attenuator switched out
  const double clamped = std::clamp(gain, min_gain, max_gain);
  // Snap the attenuation to the 0.25 dB grid.
  const double atten_db = cfg_.insertion_gain_db - db_from_amplitude(clamped);
  const double snapped = std::round(atten_db / cfg_.attenuator_step_db) * cfg_.attenuator_step_db;
  return amplitude_from_db(cfg_.insertion_gain_db - std::clamp(snapped, 0.0, cfg_.attenuator_range_db));
}

double AnalogCanceller::tune(const channel::MultipathChannel& si, RSpan f_grid_hz) {
  return tune(si.response(f_grid_hz), f_grid_hz);
}

double AnalogCanceller::tune(CSpan si_response, RSpan f_grid_hz) {
  FF_CHECK(si_response.size() == f_grid_hz.size());
  const std::size_t n_f = f_grid_hz.size();
  const std::size_t n_k = delays_.size();
  FF_CHECK(2 * n_f >= n_k);

  // Basis response of tap k at frequency i.
  const auto basis = [&](std::size_t i, std::size_t k) {
    const double ang = -kTwoPi * (cfg_.carrier_hz + f_grid_hz[i]) * delays_[k];
    return Complex{std::cos(ang), std::sin(ang)};
  };

  // Real-valued least squares over the stacked re/im system (gains are
  // real), with an active-set loop enforcing non-negativity: repeatedly
  // drop the most negative gain from the active set and re-solve.
  std::vector<bool> active(n_k, true);
  std::vector<double> raw(n_k, 0.0);
  for (int round = 0; round < static_cast<int>(n_k); ++round) {
    std::vector<std::size_t> cols;
    for (std::size_t k = 0; k < n_k; ++k)
      if (active[k]) cols.push_back(k);
    if (cols.empty()) break;
    linalg::Matrix a(2 * n_f, cols.size()), b(2 * n_f, 1);
    for (std::size_t i = 0; i < n_f; ++i) {
      for (std::size_t c = 0; c < cols.size(); ++c) {
        const Complex e = basis(i, cols[c]);
        a(i, c) = Complex{e.real(), 0.0};
        a(n_f + i, c) = Complex{e.imag(), 0.0};
      }
      b(i, 0) = Complex{si_response[i].real(), 0.0};
      b(n_f + i, 0) = Complex{si_response[i].imag(), 0.0};
    }
    const linalg::Matrix g = linalg::least_squares(a, b, 1e-12);
    std::fill(raw.begin(), raw.end(), 0.0);
    double most_negative = 0.0;
    std::size_t worst = n_k;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      raw[cols[c]] = g(c, 0).real();
      if (raw[cols[c]] < most_negative) {
        most_negative = raw[cols[c]];
        worst = cols[c];
      }
    }
    if (worst == n_k) break;  // all non-negative: done
    active[worst] = false;
    raw[worst] = 0.0;
  }
  for (std::size_t k = 0; k < n_k; ++k) gains_[k] = quantize(raw[k]);

  // One greedy polish pass per tap over the quantization grid: with the
  // other taps frozen, pick the attenuator setting minimizing the residual.
  auto residual_power = [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < n_f; ++i) {
      Complex r = si_response[i];
      for (std::size_t k = 0; k < n_k; ++k) r -= gains_[k] * basis(i, k);
      acc += std::norm(r);
    }
    return acc;
  };

  const long max_steps =
      std::lround(cfg_.attenuator_range_db / cfg_.attenuator_step_db);
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    for (std::size_t k = 0; k < n_k; ++k) {
      double best_gain = gains_[k];
      double best_res = residual_power();
      // Candidate settings: off, plus the +-6 dB neighbourhood of the
      // current attenuation (the whole range when the tap is off).
      const double current_atten =
          gains_[k] > 0.0 ? cfg_.insertion_gain_db - db_from_amplitude(gains_[k])
                          : cfg_.attenuator_range_db / 2.0;
      const long centre = std::lround(current_atten / cfg_.attenuator_step_db);
      const long radius =
          gains_[k] > 0.0 ? std::lround(6.0 / cfg_.attenuator_step_db) : max_steps;
      const long lo = std::max<long>(0, centre - radius);
      const long hi = std::min<long>(max_steps, centre + radius);
      for (long s = lo - 1; s <= hi; ++s) {
        const double cand =
            s < lo ? 0.0
                   : amplitude_from_db(cfg_.insertion_gain_db -
                                       static_cast<double>(s) * cfg_.attenuator_step_db);
        const double saved = gains_[k];
        gains_[k] = cand;
        const double res = residual_power();
        if (res < best_res) {
          best_res = res;
          best_gain = cand;
        }
        gains_[k] = saved;
      }
      if (best_gain != gains_[k]) changed = true;
      gains_[k] = best_gain;
    }
    if (!changed) break;
  }

  double si_power = 0.0;
  for (std::size_t i = 0; i < n_f; ++i) si_power += std::norm(si_response[i]);
  return si_power > 0.0 ? residual_power() / si_power : 0.0;
}

channel::MultipathChannel AnalogCanceller::as_channel() const {
  std::vector<channel::PathTap> taps;
  for (std::size_t k = 0; k < delays_.size(); ++k)
    if (gains_[k] > 0.0) taps.push_back({delays_[k], Complex{gains_[k], 0.0}});
  return channel::MultipathChannel(std::move(taps), cfg_.carrier_hz);
}

Complex AnalogCanceller::response(double f_bb_hz) const {
  Complex acc{0.0, 0.0};
  for (std::size_t k = 0; k < delays_.size(); ++k) {
    const double ang = -kTwoPi * (cfg_.carrier_hz + f_bb_hz) * delays_[k];
    acc += gains_[k] * Complex{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

}  // namespace ff::fd
