#include "fullduplex/digital_canceller.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"
#include "dsp/kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace ff::fd {

CVec estimate_fir_ls(CSpan x, CSpan y, std::size_t taps, std::size_t lookahead,
                     double ridge) {
  FF_CHECK(x.size() == y.size());
  FF_CHECK(taps > 0);
  FF_CHECK(lookahead < taps);
  FF_CHECK_MSG(x.size() > 2 * taps, "not enough samples to fit " << taps << " taps");

  // Row n uses x[n + lookahead - k] for k in [0, taps).
  const std::size_t first = taps;  // ensure full history
  const std::size_t last = x.size() - lookahead;
  const std::size_t rows = last - first;
  linalg::Matrix a(rows, taps), b(rows, 1);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t n = first + r;
    for (std::size_t k = 0; k < taps; ++k) a(r, k) = x[n + lookahead - k];
    b(r, 0) = y[n];
  }
  const linalg::Matrix h = linalg::least_squares(a, b, ridge);
  CVec out(taps);
  for (std::size_t k = 0; k < taps; ++k) out[k] = h(k, 0);
  return out;
}

CVec estimate_fir_ls_fast(CSpan x, CSpan y, std::size_t taps, std::size_t lookahead,
                          double ridge) {
  FF_CHECK(x.size() == y.size());
  FF_CHECK(taps > 0 && lookahead < taps);
  FF_CHECK_MSG(x.size() > 2 * taps, "not enough samples to fit " << taps << " taps");

  const std::size_t first = taps;
  const std::size_t last = x.size() - lookahead;

  // Exact covariance-method Gram matrix in O(N*taps + taps^2): compute the
  // first row exactly, then use the shift recurrence
  //   G[i+1][j+1] = G[i][j] + boundary corrections.
  const std::size_t rows = last - first;
  linalg::Matrix g(taps, taps), b(taps, 1);
  for (std::size_t j = 0; j < taps; ++j)
    g(0, j) = dsp::kernels::cdot_conj(CSpan{x.data() + first + lookahead, rows},
                                      CSpan{x.data() + first + lookahead - j, rows});
  for (std::size_t i = 0; i + 1 < taps; ++i) {
    // First entry of the next row comes from Hermitian symmetry with row 0
    // (needed by the recurrence below when it reads g(i, 0)).
    g(i + 1, 0) = std::conj(g(0, i + 1));
    for (std::size_t j = 0; j + 1 < taps; ++j) {
      // Shifting both filters back one sample swaps in the sample before the
      // window and drops the last one.
      const Complex add = std::conj(x[first - 1 + lookahead - i]) * x[first - 1 + lookahead - j];
      const Complex sub = std::conj(x[last - 1 + lookahead - i]) * x[last - 1 + lookahead - j];
      g(i + 1, j + 1) = g(i, j) + add - sub;
    }
  }

  CVec cross(taps, Complex{});
  for (std::size_t k = 0; k < taps; ++k)
    cross[k] = dsp::kernels::cdot_conj(CSpan{x.data() + first + lookahead - k, rows},
                                       CSpan{y.data() + first, rows});
  const double scale = std::max(std::abs(g(0, 0)), 1.0);
  for (std::size_t i = 0; i < taps; ++i) {
    g(i, i) += ridge * scale;
    b(i, 0) = cross[i];
  }
  const linalg::Matrix h = linalg::solve(g, b);
  CVec out(taps);
  for (std::size_t k = 0; k < taps; ++k) out[k] = h(k, 0);
  return out;
}

DigitalCanceller::DigitalCanceller(DigitalCancellerConfig cfg) : cfg_(cfg) {}

void DigitalCanceller::train(CSpan tx, CSpan residual) {
  taps_ = estimate_fir_ls_fast(tx, residual, cfg_.taps, cfg_.lookahead, cfg_.ridge);
  metrics::add(cfg_.metrics, "fd.digital.trainings");
  metrics::set(cfg_.metrics, "fd.digital.taps", static_cast<double>(cfg_.taps));
}

CVec DigitalCanceller::cancel(CSpan tx, CSpan rx) const {
  CVec out(rx.size());
  thread_local dsp::kernels::Workspace ws;
  cancel_into(tx, rx, out, ws);
  return out;
}

void DigitalCanceller::cancel_into(CSpan tx, CSpan rx, CMutSpan out,
                                   dsp::kernels::Workspace& ws) const {
  FF_CHECK(trained());
  FF_CHECK(tx.size() == rx.size());
  FF_CHECK_MSG(out.size() == rx.size(),
               "DigitalCanceller::cancel_into needs out.size() == rx.size(), got "
                   << out.size() << " vs " << rx.size());
  const std::size_t n = rx.size();
  if (n == 0) return;
  // est[i] = sum_k h[k] tx_pad[i + lookahead - k] with tx zero-padded on both
  // sides: leading zeros are the pre-stream history, trailing zeros the
  // lookahead buffer flush. Laid out as the fir_core extended buffer
  // ext[j] = tx_pad[j - (taps-1) + lookahead].
  const std::size_t hist = taps_.size() - 1;
  const std::size_t lead = hist - cfg_.lookahead;
  CMutSpan ext = ws.get(0, hist + n);
  std::fill(ext.begin(), ext.begin() + static_cast<std::ptrdiff_t>(lead), Complex{});
  std::copy(tx.begin(), tx.end(), ext.begin() + static_cast<std::ptrdiff_t>(lead));
  std::fill(ext.begin() + static_cast<std::ptrdiff_t>(lead + n), ext.end(), Complex{});
  CMutSpan est = ws.get(1, n);
  dsp::fir_core(taps_, ext.data(), est);
  for (std::size_t i = 0; i < n; ++i) out[i] = rx[i] - est[i];
}

double cancellation_db(CSpan before, CSpan after) {
  const double pb = dsp::mean_power(before);
  const double pa = dsp::mean_power(after);
  if (pa <= 0.0) return 400.0;
  if (pb <= 0.0) return 0.0;
  return 10.0 * std::log10(pb / pa);
}

}  // namespace ff::fd
