// Positive-feedback stability of an amplify-and-forward full-duplex relay
// (Fig. 7 of the paper): if the relay's amplification exceeds its TX->RX
// isolation, leftover self-interference is re-amplified every pass around
// the loop and the output diverges.
#pragma once

#include "common/types.hpp"

namespace ff::fd {

/// Isolation (dB) provided by a residual self-interference loop filter:
/// the negative peak gain of its frequency response over the given band.
/// Amplification below this value keeps the loop stable.
double loop_isolation_db(CSpan residual_fir, double sample_rate_hz, double bandwidth_hz);

struct LoopSimResult {
  CVec tx;                     // what the relay transmitted
  double input_power = 0.0;    // mean power of the injected signal
  double early_tx_power = 0.0; // relay TX power over the first quarter
  double late_tx_power = 0.0;  // relay TX power over the last quarter
  bool diverged = false;       // numerical overflow guard tripped

  /// Growth of the loop in dB between the early and late windows; ~0 for a
  /// stable loop, large and positive for an unstable one.
  double growth_db() const;
};

/// Time-domain simulation of the relay loop:
///   rx[n]      = input[n] + sum_k h_res[k] tx[n-k]
///   tx[n]      = A * rx[n - d]
/// with `h_res` the residual (post-cancellation) SI loop filter, amplitude
/// gain `A` = 10^(gain_db/20) and processing delay `d` >= 1 samples.
/// The k = 0 term of `residual_fir` would form an algebraic (zero-delay)
/// loop on the sample grid and is treated as zero; residual filters on the
/// SI alignment grid have only sinc leakage there.
LoopSimResult simulate_relay_loop(CSpan input, CSpan residual_fir, double gain_db,
                                  std::size_t delay_samples = 2);

}  // namespace ff::fd
