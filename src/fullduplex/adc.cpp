#include "fullduplex/adc.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"

namespace ff::fd {

CVec adc_quantize(CSpan x, const AdcConfig& cfg) {
  FF_CHECK(cfg.bits >= 2 && cfg.bits <= 24);
  const double rms = std::sqrt(std::max(dsp::mean_power(x), 1e-300));
  const double full_scale = rms * amplitude_from_db(cfg.backoff_db);
  const double levels = std::pow(2.0, cfg.bits - 1) - 1.0;  // per rail, signed
  const double step = full_scale / levels;

  CVec out(x.size());
  const auto rail = [&](double v) {
    const double clipped = std::clamp(v, -full_scale, full_scale);
    return std::round(clipped / step) * step;
  };
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = Complex{rail(x[i].real()), rail(x[i].imag())};
  return out;
}

double adc_noise_floor_db(const AdcConfig& cfg) {
  // Quantization noise per rail: step^2 / 12; two rails. Input power is the
  // RMS^2 reference the AGC used.
  const double levels = std::pow(2.0, cfg.bits - 1) - 1.0;
  const double step_rel = amplitude_from_db(cfg.backoff_db) / levels;  // vs RMS
  return db_from_power(2.0 * step_rel * step_rel / 12.0);
}

}  // namespace ff::fd
