// Model of the tunable analog FIR cancellation board (Sec. 4.3).
//
// Structure copied from the hardware: a bank of fixed delay lines spaced
// 100-200 ps apart around the circulator leakage delay, each followed by a
// digital step attenuator adjustable from 0 to 31.75 dB in 0.25 dB steps.
// A copy of the transmitted RF signal feeds the bank and the summed output
// is subtracted at the receive coupler. Because the taps are pure delay +
// attenuation (no phase shifters), the achievable responses are
//   Hc(f) = sum_k g_k e^{-j 2 pi (fc + f) tau_k},  g_k in [g_min, 1] U {0},
// and tuning = fitting g_k against the observed self-interference. The
// 100 ps spacing makes adjacent taps ~90 degrees apart at 2.45 GHz, which is
// what lets non-negative gains reach arbitrary phases.
#pragma once

#include "channel/multipath.hpp"
#include "common/types.hpp"

namespace ff::fd {

struct AnalogCancellerConfig {
  double carrier_hz = 2.45e9;
  int taps = 8;
  double first_tap_delay_s = 0.6e-9;
  double tap_spacing_s = 110e-12;          // ~100 ps, quarter period at 2.45 GHz
  double attenuator_step_db = 0.25;
  double attenuator_range_db = 31.75;      // max attenuation (min gain)
  double insertion_gain_db = -14.0;        // coupler + splitter loss per tap path
};

class AnalogCanceller {
 public:
  explicit AnalogCanceller(AnalogCancellerConfig cfg = {});

  const AnalogCancellerConfig& config() const { return cfg_; }

  /// Current per-tap linear gains (0 = tap switched off).
  const std::vector<double>& gains() const { return gains_; }

  /// Fixed tap delays.
  const std::vector<double>& delays() const { return delays_; }

  /// Tune the attenuators to best cancel `si`, evaluated on the given
  /// baseband frequency grid. Returns the residual power ratio (residual
  /// energy / SI energy) achieved on that grid.
  double tune(const channel::MultipathChannel& si, RSpan f_grid_hz);

  /// Tune directly from per-subcarrier SI estimates (what the hardware does:
  /// the estimate comes from the Gaussian-probe correlation, Sec. 3.3).
  double tune(CSpan si_response, RSpan f_grid_hz);

  /// The canceller's own response as a multipath channel (for composing with
  /// the SI channel or discretizing onto the sample grid).
  channel::MultipathChannel as_channel() const;

  /// Frequency response at a baseband frequency.
  Complex response(double f_bb_hz) const;

 private:
  /// Quantize a linear gain onto the attenuator grid.
  double quantize(double gain) const;

  AnalogCancellerConfig cfg_;
  std::vector<double> delays_;
  std::vector<double> gains_;
};

}  // namespace ff::fd
