#include "fullduplex/stack.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"

namespace ff::fd {

StackConfig::StackConfig() {
  // Default grid: the 56 HT20 subcarrier frequencies.
  f_grid_hz.reserve(56);
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    f_grid_hz.push_back(static_cast<double>(k) * 20e6 / 64.0);
  }
}

namespace {

/// The stack's registry flows into its digital stage unless the caller
/// already injected a distinct one there.
DigitalCancellerConfig propagate_metrics(DigitalCancellerConfig d, MetricsRegistry* m) {
  if (!d.metrics) d.metrics = m;
  return d;
}

}  // namespace

CancellationStack::CancellationStack(StackConfig cfg)
    : cfg_(std::move(cfg)),
      analog_(cfg_.analog),
      digital_(propagate_metrics(cfg_.digital, cfg_.metrics)) {}

namespace {

/// Training records must be finite: a single NaN would propagate through
/// the least-squares estimates into every tap of both cancellation stages
/// and silently zero the relay's isolation. Fail crisply instead.
void check_finite_record(CSpan x, const char* name) {
  for (std::size_t i = 0; i < x.size(); ++i)
    FF_CHECK_MSG(std::isfinite(x[i].real()) && std::isfinite(x[i].imag()),
                 "CancellationStack::tune: non-finite sample in " << name << "["
                                                                  << i << "]");
}

}  // namespace

void CancellationStack::tune(CSpan tx, CSpan probe, CSpan rx) {
  FF_CHECK_MSG(!rx.empty(), "CancellationStack::tune needs a non-empty record");
  FF_CHECK(tx.size() == rx.size() && probe.size() == rx.size());
  check_finite_record(tx, "tx");
  check_finite_record(probe, "probe");
  check_finite_record(rx, "rx");

  // Stage 1 — analog. Bootstrap the SI estimate from the Gaussian probe
  // (regressing against the probe only avoids the correlated-relay-signal
  // bias, Sec. 3.3), then refine by causal regression of the residual on
  // the full transmitted stream: causality excludes the source path (the
  // source reaches tx only after the relay's processing delay), so the
  // refinement is unbiased — the same argument that makes the causal
  // digital canceller safe.
  CVec si_fir = estimate_si_fir_probe(probe, rx, cfg_.probe.est_taps);
  {
    const CVec recon = dsp::filter(si_fir, tx);
    CVec residual(rx.size());
    for (std::size_t i = 0; i < rx.size(); ++i) residual[i] = rx[i] - recon[i];
    const CVec delta =
        estimate_fir_ls_fast(tx, residual, cfg_.probe.est_taps, 0, 1e-12);
    for (std::size_t k = 0; k < si_fir.size(); ++k) si_fir[k] += delta[k];
  }
  const CVec si_resp = fir_response_on_grid(si_fir, cfg_.f_grid_hz, cfg_.sample_rate_hz);
  analog_.tune(si_resp, cfg_.f_grid_hz);
  analog_fir_ =
      si_loop_fir(analog_.as_channel(), cfg_.sample_rate_hz, cfg_.sinc_half_width);

  // Stage 2 — digital, trained on the analog residual. Causality of the
  // filter is what keeps it from eating the (earlier-in-time) source signal.
  const CVec after_analog = apply_analog_only(tx, rx);
  digital_.train(tx, after_analog);
  tuned_ = true;

  if (cfg_.metrics) {
    metrics::add(cfg_.metrics, "fd.stack.tunes");
    metrics::observe(cfg_.metrics, "fd.rx.pre_cancel_dbm", dsp::mean_power_db(rx));
    metrics::observe(cfg_.metrics, "fd.analog.residual_dbm",
                     dsp::mean_power_db(after_analog));
    // The digital stage's training-record residual costs one extra cancel()
    // pass, paid only when a registry is injected.
    metrics::observe(cfg_.metrics, "fd.digital.residual_dbm",
                     dsp::mean_power_db(digital_.cancel(tx, after_analog)));
  }
}

CVec CancellationStack::apply_analog_only(CSpan tx, CSpan rx) const {
  CVec out(rx.size());
  thread_local dsp::kernels::Workspace ws;
  apply_analog_only_into(tx, rx, out, ws);
  return out;
}

void CancellationStack::apply_analog_only_into(CSpan tx, CSpan rx, CMutSpan out,
                                               dsp::kernels::Workspace& ws) const {
  FF_CHECK(tx.size() == rx.size());
  FF_CHECK_MSG(out.size() == rx.size(),
               "CancellationStack::apply_analog_only_into needs out.size() == "
               "rx.size(), got "
                   << out.size() << " vs " << rx.size());
  FF_CHECK(!analog_fir_.empty());
  if (rx.empty()) return;
  CMutSpan recon = ws.get(2, tx.size());
  dsp::filter_into(analog_fir_, tx, recon, ws);
  for (std::size_t i = 0; i < rx.size(); ++i) out[i] = rx[i] - recon[i];
}

CVec CancellationStack::apply(CSpan tx, CSpan rx) const {
  CVec out(rx.size());
  thread_local dsp::kernels::Workspace ws;
  apply_into(tx, rx, out, ws);
  return out;
}

void CancellationStack::apply_into(CSpan tx, CSpan rx, CMutSpan out,
                                   dsp::kernels::Workspace& ws) const {
  FF_CHECK(tuned_);
  apply_analog_only_into(tx, rx, out, ws);
  // Digital stage in place on the analog residual (slots 0 and 1; the slot-2
  // analog reconstruction is dead by now).
  digital_.cancel_into(tx, out, out, ws);
}

}  // namespace ff::fd
