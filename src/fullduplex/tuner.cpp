#include "fullduplex/tuner.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"
#include "fullduplex/digital_canceller.hpp"

namespace ff::fd {

CVec inject_probe(Rng& rng, CMutSpan tx, double level_below_signal_db,
                  MetricsRegistry* metrics) {
  const double sig_power = dsp::mean_power(tx);
  const double probe_power = sig_power * power_from_db(-level_below_signal_db);
  CVec probe(tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    probe[i] = rng.cgaussian(probe_power);
    tx[i] += probe[i];
  }
  ff::metrics::add(metrics, "fd.probe.injections");
  ff::metrics::set(metrics, "fd.probe.level_below_signal_db", level_below_signal_db);
  return probe;
}

CVec estimate_si_fir_probe(CSpan probe, CSpan rx, std::size_t taps) {
  return estimate_fir_ls_fast(probe, rx, taps, /*lookahead=*/0, /*ridge=*/1e-12);
}

CVec estimate_si_fir_probe_iterative(CSpan probe, CSpan tx, CSpan rx, std::size_t taps,
                                     int iterations, MetricsRegistry* metrics) {
  FF_CHECK(tx.size() == rx.size() && probe.size() == rx.size());
  // Convergence condition: each round shrinks the estimation error by
  // roughly (taps / N) * (P_tx / P_probe); the record must be long enough
  // that this factor is < 1 (the hardware adapts over ms-scale windows, i.e.
  // tens of thousands of samples, for the same reason).
  CVec h(taps, Complex{});
  CVec best_h = h;
  double best_power = dsp::mean_power(rx);
  CVec residual(rx.begin(), rx.end());
  int stall = 0;
  int executed = 0;
  for (int it = 0; it < iterations; ++it) {
    ++executed;
    const CVec delta = estimate_si_fir_probe(probe, residual, taps);
    for (std::size_t k = 0; k < taps; ++k) h[k] += delta[k];
    const CVec recon = dsp::filter(h, tx);
    for (std::size_t i = 0; i < rx.size(); ++i) residual[i] = rx[i] - recon[i];
    const double p = dsp::mean_power(residual);
    if (p < best_power * 0.999) {
      best_power = p;
      best_h = h;
      stall = 0;
    } else if (++stall >= 3) {
      break;  // diverging or converged — keep the best setting seen
    }
  }
  ff::metrics::add(metrics, "relay.tuner.calls");
  ff::metrics::add(metrics, "relay.tuner.iterations", static_cast<std::uint64_t>(executed));
  ff::metrics::observe(metrics, "relay.tuner.residual_dbm", db_from_power(best_power));
  return best_h;
}

CVec estimate_si_fir_naive(CSpan tx, CSpan rx, std::size_t taps) {
  return estimate_fir_ls(tx, rx, taps, /*lookahead=*/0, /*ridge=*/1e-12);
}

CVec fir_response_on_grid(CSpan fir, RSpan f_bb_hz, double sample_rate_hz) {
  CVec out(f_bb_hz.size());
  for (std::size_t i = 0; i < f_bb_hz.size(); ++i) {
    const double f_norm = f_bb_hz[i] / sample_rate_hz;
    const Complex h = dsp::freq_response(fir, f_norm);
    // De-rotate the shared alignment delay so the value is comparable with
    // MultipathChannel::response (which has no alignment term).
    const double ang = kTwoPi * f_norm * static_cast<double>(kSiAlignSamples);
    out[i] = h * Complex{std::cos(ang), std::sin(ang)};
  }
  return out;
}

}  // namespace ff::fd
