#include "fullduplex/si_channel.hpp"

#include "common/units.hpp"

namespace ff::fd {

channel::MultipathChannel make_si_channel(Rng& rng, const SiChannelConfig& cfg) {
  std::vector<channel::PathTap> taps;
  // Circulator leakage: the dominant tap.
  taps.push_back({cfg.leakage_delay_s,
                  amplitude_from_db(-cfg.circulator_isolation_db) * rng.unit_phasor()});
  // Environment reflections.
  for (int i = 0; i < cfg.reflections; ++i) {
    const double level_db =
        rng.uniform(cfg.reflection_min_db, cfg.reflection_max_db);
    const double delay = cfg.leakage_delay_s +
                         rng.uniform(5e-9, cfg.reflection_max_delay_s);
    taps.push_back({delay, amplitude_from_db(-level_db) * rng.unit_phasor()});
  }
  return channel::MultipathChannel(std::move(taps), cfg.carrier_hz);
}

CVec si_loop_fir(const channel::MultipathChannel& ch, double sample_rate_hz,
                 std::size_t sinc_half_width) {
  const double align_s = static_cast<double>(kSiAlignSamples) / sample_rate_hz;
  return ch.to_fir(sample_rate_hz, -align_s, sinc_half_width);
}

}  // namespace ff::fd
