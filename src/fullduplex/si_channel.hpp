// Self-interference channel model for a full-duplex relay.
//
// The relay's own transmission leaks into its receiver through (a) the
// circulator's finite isolation (a strong, near-instantaneous tap) and
// (b) environment reflections of the transmitted signal re-entering the
// antenna (weaker taps spread over tens of ns). This is the channel family
// the paper's 8-tap analog cancellation board (Sec. 4.3) was built against.
//
// Discretization note: all SI-loop filters (channel and cancellers) are
// discretized against a shared alignment delay so the sub-sample (ps-scale)
// tap structure survives sampling; the alignment is common to both sides of
// the subtraction, so it does not bias the achievable cancellation, and it
// is not part of the relay's forward-path latency.
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"

namespace ff::fd {

struct SiChannelConfig {
  double carrier_hz = 2.45e9;
  double circulator_isolation_db = 20.0;  // leakage tap level below TX
  double leakage_delay_s = 1.0e-9;        // through the circulator
  int reflections = 3;                    // environment bounce-backs
  double reflection_min_db = 70.0;        // below TX
  double reflection_max_db = 85.0;
  double reflection_max_delay_s = 80e-9;
};

/// Draw a self-interference channel realization.
channel::MultipathChannel make_si_channel(Rng& rng, const SiChannelConfig& cfg = {});

/// Common alignment delay (in samples) used when discretizing SI-loop
/// filters; keeps sinc interpolation kernels causal.
inline constexpr std::size_t kSiAlignSamples = 6;

/// Discretize a SI-loop filter on the shared alignment grid.
CVec si_loop_fir(const channel::MultipathChannel& ch, double sample_rate_hz,
                 std::size_t sinc_half_width = 6);

}  // namespace ff::fd
