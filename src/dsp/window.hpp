// Window functions for spectral analysis and FIR design.
#pragma once

#include <cstddef>
#include <vector>

namespace ff::dsp {

enum class WindowType { kRect, kHann, kHamming, kBlackman, kBlackmanHarris };

/// Generate a length-n window (symmetric form).
std::vector<double> make_window(WindowType type, std::size_t n);

/// Coherent gain: mean of the window (amplitude scaling of a windowed tone).
double coherent_gain(const std::vector<double>& w);

/// Equivalent noise bandwidth in bins: n * sum(w^2) / sum(w)^2.
double enbw_bins(const std::vector<double>& w);

}  // namespace ff::dsp
