#include "dsp/noise.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"

namespace ff::dsp {

CVec awgn(Rng& rng, std::size_t n, double power_mw) {
  FF_CHECK_MSG(std::isfinite(power_mw) && power_mw >= 0.0,
               "awgn noise power must be finite and non-negative, got " << power_mw);
  CVec out(n);
  for (auto& s : out) s = rng.cgaussian(power_mw);
  return out;
}

CVec awgn_dbm(Rng& rng, std::size_t n, double power_dbm) {
  return awgn(rng, n, power_from_db(power_dbm));
}

CVec add_awgn(Rng& rng, CMutSpan x, double power_mw) {
  CVec noise = awgn(rng, x.size(), power_mw);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += noise[i];
  return noise;
}

void set_mean_power(CMutSpan x, double power_mw) {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const double g = std::sqrt(power_mw / p);
  for (auto& s : x) s *= g;
}

void scale(CMutSpan x, double amplitude) {
  for (auto& s : x) s *= amplitude;
}

void accumulate(CMutSpan a, CSpan b) {
  FF_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

}  // namespace ff::dsp
