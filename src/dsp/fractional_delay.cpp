#include "dsp/fractional_delay.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"

namespace ff::dsp {

namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

}  // namespace

CVec design_fractional_delay(double delay_samples, std::size_t half_width) {
  FF_CHECK_MSG(delay_samples >= 0.0, "delay must be non-negative");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(int_delay);

  // Center of the sinc sits at index int_delay + frac; pad half_width on each
  // side. For a purely integer delay, collapse to an exact impulse.
  if (frac < 1e-12) {
    CVec taps(int_delay + 1, Complex{});
    taps[int_delay] = 1.0;
    return taps;
  }

  const std::size_t center = int_delay;
  const std::size_t lead = std::min(center, half_width);
  const std::size_t len = center + half_width + 2;
  CVec taps(len, Complex{});
  const double peak = static_cast<double>(center) + frac;
  for (std::size_t n = center - lead; n < len; ++n) {
    const double t = static_cast<double>(n) - peak;
    // Hamming window over the sinc support.
    const double w = 0.54 + 0.46 * std::cos(kPi * t / (static_cast<double>(half_width) + 1.0));
    if (std::abs(t) <= static_cast<double>(half_width) + 1.0)
      taps[n] = sinc(t) * std::max(w, 0.0);
  }
  return taps;
}

CVec delay_signal(CSpan x, double delay_samples, std::size_t half_width) {
  const CVec taps = design_fractional_delay(delay_samples, half_width);
  return filter(taps, x);
}

}  // namespace ff::dsp
