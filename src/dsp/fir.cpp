#include "dsp/fir.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::dsp {

FirFilter::FirFilter(CVec taps) : taps_(std::move(taps)), delay_(taps_.size()) {
  FF_CHECK_MSG(!taps_.empty(), "FIR filter needs at least one tap");
}

Complex FirFilter::push(Complex x) {
  head_ = (head_ + delay_.size() - 1) % delay_.size();
  delay_[head_] = x;
  Complex acc{0.0, 0.0};
  std::size_t idx = head_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * delay_[idx];
    idx = (idx + 1) % delay_.size();
  }
  return acc;
}

CVec FirFilter::process(CSpan x) {
  CVec out(x.size());
  process_into(x, out);
  return out;
}

void FirFilter::process_into(CSpan x, CMutSpan out) {
  FF_CHECK_MSG(out.size() == x.size(),
               "FirFilter::process_into needs out.size() == x.size(), got "
                   << out.size() << " vs " << x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = push(x[i]);
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), Complex{});
  head_ = 0;
}

void FirFilter::set_taps(CVec taps) {
  FF_CHECK(!taps.empty());
  if (taps.size() != taps_.size()) {
    // Carry the input history across the resize: slot k of the delay line
    // holds x[n-k], so copy newest-first and zero-pad beyond the old depth.
    // (Clearing it instead — the old behavior — restarted every resized
    // filter from a cold delay line mid-stream.)
    CVec resized(taps.size(), Complex{});
    const std::size_t keep = std::min(taps.size(), delay_.size());
    for (std::size_t k = 0; k < keep; ++k)
      resized[k] = delay_[(head_ + k) % delay_.size()];
    delay_ = std::move(resized);
    head_ = 0;
  }
  taps_ = std::move(taps);
}

CVec convolve(CSpan x, CSpan h) {
  if (x.empty() || h.empty()) return {};
  CVec y(x.size() + h.size() - 1, Complex{});
  for (std::size_t n = 0; n < x.size(); ++n)
    for (std::size_t k = 0; k < h.size(); ++k) y[n + k] += x[n] * h[k];
  return y;
}

CVec filter(CSpan h, CSpan x) {
  CVec y(x.size(), Complex{});
  for (std::size_t n = 0; n < x.size(); ++n) {
    Complex acc{0.0, 0.0};
    const std::size_t kmax = std::min(h.size() - 1, n);
    for (std::size_t k = 0; k <= kmax; ++k) acc += h[k] * x[n - k];
    y[n] = acc;
  }
  return y;
}

CVec design_lowpass(std::size_t taps, double cutoff_norm) {
  FF_CHECK(taps >= 3);
  FF_CHECK(cutoff_norm > 0.0 && cutoff_norm <= 0.5);
  CVec h(taps);
  const double centre = static_cast<double>(taps - 1) / 2.0;
  double dc = 0.0;
  for (std::size_t n = 0; n < taps; ++n) {
    const double t = static_cast<double>(n) - centre;
    const double s = std::abs(t) < 1e-12
                         ? 2.0 * cutoff_norm
                         : std::sin(kTwoPi * cutoff_norm * t) / (kPi * t);
    const double w = 0.54 + 0.46 * std::cos(kPi * t / (centre + 1.0));
    h[n] = Complex{s * w, 0.0};
    dc += h[n].real();
  }
  for (auto& v : h) v /= dc;  // unit DC gain
  return h;
}

Complex freq_response(CSpan taps, double f_norm) {
  Complex acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double ang = -kTwoPi * f_norm * static_cast<double>(k);
    acc += taps[k] * Complex{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

}  // namespace ff::dsp
