#include "dsp/fir.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::dsp {

// Shared block-convolution core: y[i] = sum_k h[k] * ext[H + i - k] where
// ext = [H context samples | block] and H = h.size() - 1. One axpy per tap,
// taps ascending — the same serial accumulation order as a per-sample
// delay-line loop, so block and per-sample filtering agree bit for bit.
void fir_core(CSpan taps, const Complex* ext, CMutSpan y) {
  const std::size_t h = taps.size() - 1;
  std::fill(y.begin(), y.end(), Complex{});
  for (std::size_t k = 0; k <= h; ++k)
    kernels::axpy(taps[k], CSpan{ext + (h - k), y.size()}, y);
}

FirFilter::FirFilter(CVec taps) : taps_(std::move(taps)), delay_(taps_.size()) {
  FF_CHECK_MSG(!taps_.empty(), "FIR filter needs at least one tap");
}

Complex FirFilter::push(Complex x) {
  head_ = (head_ + delay_.size() - 1) % delay_.size();
  delay_[head_] = x;
  Complex acc{0.0, 0.0};
  std::size_t idx = head_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * delay_[idx];
    ++idx;
    if (idx == delay_.size()) idx = 0;
  }
  return acc;
}

CVec FirFilter::process(CSpan x) {
  CVec out(x.size());
  process_into(x, out);
  return out;
}

void FirFilter::process_into(CSpan x, CMutSpan out) { process_into(x, out, ws_); }

void FirFilter::process_into(CSpan x, CMutSpan out, kernels::Workspace& ws) {
  FF_CHECK_MSG(out.size() == x.size(),
               "FirFilter::process_into needs out.size() == x.size(), got "
                   << out.size() << " vs " << x.size());
  const std::size_t n = x.size();
  if (n == 0) return;
  const std::size_t taps = taps_.size();
  const std::size_t hist = taps - 1;
  CMutSpan ext = ws.get(0, hist + n);
  // Delay-line slot (head_ + k) % taps holds x[-1 - k]; lay the history out
  // chronologically so ext[hist - 1] is the sample right before x[0]. The
  // block is staged before any output is written (out may alias x).
  for (std::size_t k = 0; k < hist; ++k)
    ext[hist - 1 - k] = delay_[(head_ + k) % taps];
  std::copy(x.begin(), x.end(), ext.begin() + static_cast<std::ptrdiff_t>(hist));
  fir_core(taps_, ext.data(), out);
  // Refill the delay line with the newest `taps` inputs (history included
  // when the block is shorter than the filter).
  for (std::size_t k = 0; k < taps; ++k) delay_[k] = ext[hist + n - 1 - k];
  head_ = 0;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), Complex{});
  head_ = 0;
}

void FirFilter::set_taps(CVec taps) {
  FF_CHECK(!taps.empty());
  if (taps.size() != taps_.size()) {
    // Carry the input history across the resize: slot k of the delay line
    // holds x[n-k], so copy newest-first and zero-pad beyond the old depth.
    // (Clearing it instead — the old behavior — restarted every resized
    // filter from a cold delay line mid-stream.)
    CVec resized(taps.size(), Complex{});
    const std::size_t keep = std::min(taps.size(), delay_.size());
    for (std::size_t k = 0; k < keep; ++k)
      resized[k] = delay_[(head_ + k) % delay_.size()];
    delay_ = std::move(resized);
    head_ = 0;
  }
  taps_ = std::move(taps);
}

// ------------------------------------------------------------ float32 family

void fir_core32(CSpan32 taps, const Complex32* ext, CMutSpan32 y) {
  const std::size_t h = taps.size() - 1;
  std::fill(y.begin(), y.end(), Complex32{});
  for (std::size_t k = 0; k <= h; ++k)
    kernels::axpy(taps[k], CSpan32{ext + (h - k), y.size()}, y);
}

FirFilter32::FirFilter32(CVec32 taps) : taps_(std::move(taps)), delay_(taps_.size()) {
  FF_CHECK_MSG(!taps_.empty(), "FIR filter needs at least one tap");
}

Complex32 FirFilter32::push(Complex32 x) {
  head_ = (head_ + delay_.size() - 1) % delay_.size();
  delay_[head_] = x;
  Complex32 acc{0.0f, 0.0f};
  std::size_t idx = head_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * delay_[idx];
    ++idx;
    if (idx == delay_.size()) idx = 0;
  }
  return acc;
}

void FirFilter32::process_into(CSpan32 x, CMutSpan32 out, kernels::Workspace& ws) {
  FF_CHECK_MSG(out.size() == x.size(),
               "FirFilter32::process_into needs out.size() == x.size(), got "
                   << out.size() << " vs " << x.size());
  const std::size_t n = x.size();
  if (n == 0) return;
  const std::size_t taps = taps_.size();
  const std::size_t hist = taps - 1;
  CMutSpan32 ext = ws.get_f32(0, hist + n);
  for (std::size_t k = 0; k < hist; ++k)
    ext[hist - 1 - k] = delay_[(head_ + k) % taps];
  std::copy(x.begin(), x.end(), ext.begin() + static_cast<std::ptrdiff_t>(hist));
  fir_core32(taps_, ext.data(), out);
  for (std::size_t k = 0; k < taps; ++k) delay_[k] = ext[hist + n - 1 - k];
  head_ = 0;
}

void FirFilter32::reset() {
  std::fill(delay_.begin(), delay_.end(), Complex32{});
  head_ = 0;
}

void FirFilter32::set_taps(CVec32 taps) {
  FF_CHECK(!taps.empty());
  if (taps.size() != taps_.size()) {
    CVec32 resized(taps.size(), Complex32{});
    const std::size_t keep = std::min(taps.size(), delay_.size());
    for (std::size_t k = 0; k < keep; ++k)
      resized[k] = delay_[(head_ + k) % delay_.size()];
    delay_ = std::move(resized);
    head_ = 0;
  }
  taps_ = std::move(taps);
}

CVec convolve(CSpan x, CSpan h) {
  if (x.empty() || h.empty()) return {};
  CVec y(x.size() + h.size() - 1, Complex{});
  // Scatter formulation: y[n..n+K) += x[n] * h. Each output element still
  // receives its terms in ascending n, the same order as the textbook
  // gather double loop.
  for (std::size_t n = 0; n < x.size(); ++n)
    kernels::axpy(x[n], h, CMutSpan{y.data() + n, h.size()});
  return y;
}

void filter_into(CSpan h, CSpan x, CMutSpan y, kernels::Workspace& ws) {
  FF_CHECK_MSG(y.size() == x.size(),
               "filter_into needs y.size() == x.size(), got " << y.size()
                                                              << " vs " << x.size());
  FF_CHECK_MSG(!h.empty(), "filter_into needs at least one tap");
  if (x.empty()) return;
  const std::size_t hist = h.size() - 1;
  CMutSpan ext = ws.get(0, hist + x.size());
  std::fill(ext.begin(), ext.begin() + static_cast<std::ptrdiff_t>(hist), Complex{});
  std::copy(x.begin(), x.end(), ext.begin() + static_cast<std::ptrdiff_t>(hist));
  fir_core(h, ext.data(), y);
}

CVec filter(CSpan h, CSpan x) {
  CVec y(x.size(), Complex{});
  thread_local kernels::Workspace ws;
  filter_into(h, x, y, ws);
  return y;
}

CVec design_lowpass(std::size_t taps, double cutoff_norm) {
  FF_CHECK(taps >= 3);
  FF_CHECK(cutoff_norm > 0.0 && cutoff_norm <= 0.5);
  CVec h(taps);
  const double centre = static_cast<double>(taps - 1) / 2.0;
  double dc = 0.0;
  for (std::size_t n = 0; n < taps; ++n) {
    const double t = static_cast<double>(n) - centre;
    const double s = std::abs(t) < 1e-12
                         ? 2.0 * cutoff_norm
                         : std::sin(kTwoPi * cutoff_norm * t) / (kPi * t);
    const double w = 0.54 + 0.46 * std::cos(kPi * t / (centre + 1.0));
    h[n] = Complex{s * w, 0.0};
    dc += h[n].real();
  }
  for (auto& v : h) v /= dc;  // unit DC gain
  return h;
}

Complex freq_response(CSpan taps, double f_norm) {
  Complex acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double ang = -kTwoPi * f_norm * static_cast<double>(k);
    acc += taps[k] * Complex{std::cos(ang), std::sin(ang)};
  }
  return acc;
}

}  // namespace ff::dsp
