#include "dsp/window.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::dsp {

std::vector<double> make_window(WindowType type, std::size_t n) {
  FF_CHECK(n >= 2);
  std::vector<double> w(n);
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;  // 0..1
    switch (type) {
      case WindowType::kRect:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2.0 * kTwoPi * x);
        break;
      case WindowType::kBlackmanHarris:
        w[i] = 0.35875 - 0.48829 * std::cos(kTwoPi * x) + 0.14128 * std::cos(2.0 * kTwoPi * x) -
               0.01168 * std::cos(3.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

double coherent_gain(const std::vector<double>& w) {
  FF_CHECK(!w.empty());
  double acc = 0.0;
  for (const double v : w) acc += v;
  return acc / static_cast<double>(w.size());
}

double enbw_bins(const std::vector<double>& w) {
  FF_CHECK(!w.empty());
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : w) {
    sum += v;
    sum_sq += v * v;
  }
  return static_cast<double>(w.size()) * sum_sq / (sum * sum);
}

}  // namespace ff::dsp
