// Pseudo-random sequence generation.
//
// Sec. 6 of the paper prepends a per-client PN signature (4 us, repeated
// twice) to downlink packets so the relay can pick the right constructive
// filter before the PHY header arrives. We generate those signatures from
// maximal-length LFSRs (distinct seeds/offsets per client) so different
// clients' signatures have low cross-correlation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace ff::dsp {

/// Maximal-length LFSR over GF(2).
///
/// Default polynomial x^7 + x^4 + 1 (the 802.11 scrambler polynomial,
/// period 127); degree-15 taps are also provided for longer signatures.
class Lfsr {
 public:
  /// `taps` is the feedback mask (bit i set => x^{i+1} term), `degree` the
  /// register length in bits. `seed` must be nonzero in the low `degree` bits.
  Lfsr(std::uint32_t taps, unsigned degree, std::uint32_t seed);

  /// Standard 802.11 scrambler LFSR (x^7 + x^4 + 1).
  static Lfsr scrambler(std::uint32_t seed = 0x7F);

  /// Long-period LFSR for signatures (x^15 + x^14 + 1).
  static Lfsr signature(std::uint32_t seed);

  /// Next output bit.
  int next_bit();

  /// Next `n` bits packed as 0/1 bytes.
  std::vector<std::uint8_t> bits(std::size_t n);

 private:
  std::uint32_t taps_;
  unsigned degree_;
  std::uint32_t state_;
};

/// BPSK-map a bit sequence to unit-power complex samples (+1/-1).
CVec bpsk_map(std::span<const std::uint8_t> bits);

/// Per-client PN signature of `length` samples: distinct clients get
/// signatures with low cross-correlation. Deterministic in `client_id`.
CVec pn_signature(std::uint32_t client_id, std::size_t length);

}  // namespace ff::dsp
