// Correlation primitives used by preamble detection, PN-signature matching
// (Sec. 6) and the Gaussian-noise cancellation tuner (Sec. 3.3).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp {

/// Sliding cross-correlation of `x` against template `ref`:
///   c[n] = sum_k conj(ref[k]) x[n+k],   n in [0, x.size()-ref.size()].
/// Empty if x is shorter than ref.
CVec cross_correlate(CSpan x, CSpan ref);

/// Normalized sliding correlation magnitude in [0, 1]:
///   m[n] = |c[n]| / (||ref|| * ||x[n..n+K)||).
/// Robust detection statistic: invariant to signal scale.
std::vector<double> normalized_correlation(CSpan x, CSpan ref);

/// Lag-domain autocorrelation r[l] = sum_n conj(x[n]) x[n+l] for l in [0, max_lag].
CVec autocorrelate(CSpan x, std::size_t max_lag);

/// Index of the maximum of a real sequence (first occurrence).
std::size_t argmax(std::span<const double> v);

/// Mean of |x[n]|^2 over the span (0 for empty spans).
double mean_power(CSpan x);

/// Mean power expressed in dB (returns -inf-like -400 dB for silence).
double mean_power_db(CSpan x);

/// Error vector magnitude between a received and a reference sequence,
/// as a power ratio: sum|x-ref|^2 / sum|ref|^2.
double evm_power_ratio(CSpan x, CSpan ref);

}  // namespace ff::dsp
