#include "dsp/sequence.hpp"

#include "common/check.hpp"

namespace ff::dsp {

Lfsr::Lfsr(std::uint32_t taps, unsigned degree, std::uint32_t seed)
    : taps_(taps), degree_(degree), state_(seed & ((1u << degree) - 1u)) {
  FF_CHECK_MSG(degree >= 2 && degree <= 31, "LFSR degree out of range");
  FF_CHECK_MSG(state_ != 0, "LFSR seed must be nonzero");
}

Lfsr Lfsr::scrambler(std::uint32_t seed) { return Lfsr(0x48, 7, seed); }  // x^7+x^4+1

Lfsr Lfsr::signature(std::uint32_t seed) { return Lfsr(0x6000, 15, seed); }  // x^15+x^14+1

int Lfsr::next_bit() {
  // Output the MSB; feedback is the XOR of tapped stages.
  const int out = static_cast<int>((state_ >> (degree_ - 1)) & 1u);
  unsigned fb = 0;
  std::uint32_t t = taps_;
  while (t) {
    const unsigned bit = static_cast<unsigned>(__builtin_ctz(t));
    fb ^= (state_ >> bit) & 1u;
    t &= t - 1;
  }
  state_ = ((state_ << 1) | fb) & ((1u << degree_) - 1u);
  return out;
}

std::vector<std::uint8_t> Lfsr::bits(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_bit());
  return out;
}

CVec bpsk_map(std::span<const std::uint8_t> bits) {
  CVec out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    out[i] = bits[i] ? Complex{-1.0, 0.0} : Complex{1.0, 0.0};
  return out;
}

CVec pn_signature(std::uint32_t client_id, std::size_t length) {
  // Distinct seeds far apart in the LFSR state space keep cross-correlation
  // between client signatures near 1/sqrt(length).
  auto lfsr = Lfsr::signature(0x1234u + client_id * 0x2817u + 1u);
  // Burn a client-dependent offset so even adjacent seeds decorrelate.
  for (std::uint32_t i = 0; i < client_id * 37u % 1024u; ++i) lfsr.next_bit();
  return bpsk_map(lfsr.bits(length));
}

}  // namespace ff::dsp
