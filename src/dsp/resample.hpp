// Integer-factor resampling (windowed-sinc).
//
// The FF prototype digitizes the 20 MHz signal at 80 Msps (Sec. 3.4): the
// 4x oversampling is what gives the short CNF pre-filter enough in-band
// freedom to realize the phase trajectories constructive forwarding needs.
// The time-domain simulator therefore runs the relay at the oversampled
// rate and converts at the PHY boundaries with these helpers.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp {

/// Upsample by an integer factor: zero-stuff then interpolate with a
/// Hamming-windowed sinc low-pass (cutoff Nyquist/factor, passband gain 1).
/// Output length = x.size() * factor; the interpolation filter's group
/// delay (half_width * factor samples at the high rate) is NOT removed —
/// callers tracking absolute timing must account for it (or apply the same
/// operator to every parallel path, as the link simulator does).
CVec upsample(CSpan x, std::size_t factor, std::size_t half_width = 12);

/// Downsample by an integer factor with the matching anti-alias filter.
/// Output length = x.size() / factor.
CVec downsample(CSpan x, std::size_t factor, std::size_t half_width = 12);

/// The interpolation low-pass used by both directions (exposed for tests).
CVec resample_kernel(std::size_t factor, std::size_t half_width);

/// Group delay (in high-rate samples) of the resampling kernel.
std::size_t resample_group_delay(std::size_t factor, std::size_t half_width = 12);

}  // namespace ff::dsp
