#include "dsp/spectrum.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"

namespace ff::dsp {

std::vector<double> welch_psd(CSpan x, const WelchConfig& cfg) {
  FF_CHECK(is_power_of_two(cfg.segment));
  FF_CHECK(cfg.overlap < cfg.segment);
  FF_CHECK_MSG(x.size() >= cfg.segment, "signal shorter than one Welch segment");

  // Hann window, normalized so the PSD integrates to the mean power.
  std::vector<double> window(cfg.segment);
  double window_power = 0.0;
  for (std::size_t i = 0; i < cfg.segment; ++i) {
    window[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) /
                                     static_cast<double>(cfg.segment));
    window_power += window[i] * window[i];
  }

  const dsp::FftPlan& plan = dsp::FftPlan::cached(cfg.segment);
  const std::size_t hop = cfg.segment - cfg.overlap;
  std::vector<double> psd(cfg.segment, 0.0);
  std::size_t segments = 0;
  CVec buf(cfg.segment);
  for (std::size_t start = 0; start + cfg.segment <= x.size(); start += hop) {
    for (std::size_t i = 0; i < cfg.segment; ++i) buf[i] = x[start + i] * window[i];
    plan.forward(buf);
    for (std::size_t i = 0; i < cfg.segment; ++i) psd[i] += std::norm(buf[i]);
    ++segments;
  }
  FF_CHECK(segments > 0);
  const double norm =
      1.0 / (static_cast<double>(segments) * window_power * static_cast<double>(cfg.segment));
  for (auto& p : psd) p *= norm;
  return psd;
}

double band_power(const std::vector<double>& psd, double sample_rate_hz, double f_lo_hz,
                  double f_hi_hz) {
  FF_CHECK(f_lo_hz <= f_hi_hz);
  const std::size_t n = psd.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Bin i covers frequency i*fs/n, wrapped to (-fs/2, fs/2].
    double f = static_cast<double>(i) * sample_rate_hz / static_cast<double>(n);
    if (f > sample_rate_hz / 2.0) f -= sample_rate_hz;
    if (f >= f_lo_hz && f <= f_hi_hz) acc += psd[i];
  }
  return acc;
}

double oob_power_ratio_db(CSpan x, double sample_rate_hz, double occupied_bw_hz,
                          const WelchConfig& cfg) {
  const auto psd = welch_psd(x, cfg);
  const double in_band = band_power(psd, sample_rate_hz, -occupied_bw_hz / 2.0,
                                    occupied_bw_hz / 2.0);
  double total = 0.0;
  for (const double p : psd) total += p;
  const double oob = std::max(total - in_band, 0.0);
  if (in_band <= 0.0) return 400.0;
  if (oob <= 0.0) return -400.0;
  return db_from_power(oob / in_band);
}

}  // namespace ff::dsp
