#include "dsp/correlation.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ff::dsp {

CVec cross_correlate(CSpan x, CSpan ref) {
  if (x.size() < ref.size() || ref.empty()) return {};
  CVec out(x.size() - ref.size() + 1, Complex{});
  for (std::size_t n = 0; n < out.size(); ++n) {
    Complex acc{0.0, 0.0};
    for (std::size_t k = 0; k < ref.size(); ++k) acc += std::conj(ref[k]) * x[n + k];
    out[n] = acc;
  }
  return out;
}

std::vector<double> normalized_correlation(CSpan x, CSpan ref) {
  if (x.size() < ref.size() || ref.empty()) return {};
  double ref_energy = 0.0;
  for (const Complex r : ref) ref_energy += std::norm(r);
  const double ref_norm = std::sqrt(ref_energy);

  std::vector<double> out(x.size() - ref.size() + 1, 0.0);
  // Running window energy of x.
  double win_energy = 0.0;
  for (std::size_t k = 0; k < ref.size(); ++k) win_energy += std::norm(x[k]);
  for (std::size_t n = 0; n < out.size(); ++n) {
    Complex acc{0.0, 0.0};
    for (std::size_t k = 0; k < ref.size(); ++k) acc += std::conj(ref[k]) * x[n + k];
    const double denom = ref_norm * std::sqrt(std::max(win_energy, 1e-30));
    out[n] = std::abs(acc) / denom;
    if (n + ref.size() < x.size())
      win_energy += std::norm(x[n + ref.size()]) - std::norm(x[n]);
  }
  return out;
}

CVec autocorrelate(CSpan x, std::size_t max_lag) {
  CVec out(max_lag + 1, Complex{});
  for (std::size_t l = 0; l <= max_lag && l < x.size(); ++l) {
    Complex acc{0.0, 0.0};
    for (std::size_t n = 0; n + l < x.size(); ++n) acc += std::conj(x[n]) * x[n + l];
    out[l] = acc;
  }
  return out;
}

std::size_t argmax(std::span<const double> v) {
  FF_CHECK(!v.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

double mean_power(CSpan x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const Complex s : x) acc += std::norm(s);
  return acc / static_cast<double>(x.size());
}

double mean_power_db(CSpan x) {
  const double p = mean_power(x);
  if (p <= 0.0) return -400.0;
  return 10.0 * std::log10(p);
}

double evm_power_ratio(CSpan x, CSpan ref) {
  FF_CHECK(x.size() == ref.size());
  double err = 0.0, sig = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err += std::norm(x[i] - ref[i]);
    sig += std::norm(ref[i]);
  }
  if (sig <= 0.0) return 0.0;
  return err / sig;
}

}  // namespace ff::dsp
