#include "dsp/correlation.hpp"

#include <cmath>

#include "common/check.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::dsp {

CVec cross_correlate(CSpan x, CSpan ref) {
  if (x.size() < ref.size() || ref.empty()) return {};
  CVec out(x.size() - ref.size() + 1, Complex{});
  for (std::size_t n = 0; n < out.size(); ++n)
    out[n] = kernels::cdot_conj(ref, CSpan{x.data() + n, ref.size()});
  return out;
}

std::vector<double> normalized_correlation(CSpan x, CSpan ref) {
  if (x.size() < ref.size() || ref.empty()) return {};
  const double ref_norm = std::sqrt(kernels::magsq_accum(ref));

  std::vector<double> out(x.size() - ref.size() + 1, 0.0);
  // Running window energy of x: the sliding add/subtract recurrence must stay
  // serial (each window's value depends on the previous one), so only the
  // initial window uses the block reduction.
  double win_energy = kernels::magsq_accum(CSpan{x.data(), ref.size()});
  for (std::size_t n = 0; n < out.size(); ++n) {
    const Complex acc = kernels::cdot_conj(ref, CSpan{x.data() + n, ref.size()});
    const double denom = ref_norm * std::sqrt(std::max(win_energy, 1e-30));
    out[n] = std::abs(acc) / denom;
    if (n + ref.size() < x.size())
      win_energy += std::norm(x[n + ref.size()]) - std::norm(x[n]);
  }
  return out;
}

CVec autocorrelate(CSpan x, std::size_t max_lag) {
  CVec out(max_lag + 1, Complex{});
  for (std::size_t l = 0; l <= max_lag && l < x.size(); ++l)
    out[l] = kernels::cdot_conj(CSpan{x.data(), x.size() - l},
                                CSpan{x.data() + l, x.size() - l});
  return out;
}

std::size_t argmax(std::span<const double> v) {
  FF_CHECK(!v.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

double mean_power(CSpan x) {
  if (x.empty()) return 0.0;
  return kernels::magsq_accum(x) / static_cast<double>(x.size());
}

double mean_power_db(CSpan x) {
  const double p = mean_power(x);
  if (p <= 0.0) return -400.0;
  return 10.0 * std::log10(p);
}

double evm_power_ratio(CSpan x, CSpan ref) {
  FF_CHECK(x.size() == ref.size());
  double err = 0.0, sig = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err += std::norm(x[i] - ref[i]);
    sig += std::norm(ref[i]);
  }
  if (sig <= 0.0) return 0.0;
  return err / sig;
}

}  // namespace ff::dsp
