// AWGN generation and power scaling helpers.
//
// Power convention used throughout the simulator: a complex baseband sample
// stream with mean |x|^2 = P carries P milliwatts, so 10*log10(mean|x|^2)
// is directly dBm. TX at 20 dBm => mean power 100; noise floor -90 dBm =>
// variance 1e-9.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ff::dsp {

/// Generate `n` complex AWGN samples with total (I+Q) variance `power_mw`.
CVec awgn(Rng& rng, std::size_t n, double power_mw);

/// Generate AWGN at a dBm level.
CVec awgn_dbm(Rng& rng, std::size_t n, double power_dbm);

/// Add noise of the given power in place; returns the noise actually added
/// (needed by the cancellation tuner, which correlates against it).
CVec add_awgn(Rng& rng, CMutSpan x, double power_mw);

/// Scale a signal to an exact mean power (no-op on silence).
void set_mean_power(CMutSpan x, double power_mw);

/// Multiply all samples by a linear amplitude factor.
void scale(CMutSpan x, double amplitude);

/// Element-wise sum b into a (sizes must match).
void accumulate(CMutSpan a, CSpan b);

}  // namespace ff::dsp
