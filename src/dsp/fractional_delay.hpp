// Fractional-delay FIR design (windowed sinc).
//
// Channel taps in the simulator fall at arbitrary (non-integer) sample
// offsets: a 100 ps analog-filter tap is 0.002 samples at 20 Msps. A
// windowed-sinc interpolator realizes e^{-j w d} across the band to high
// accuracy, which is exactly what Sec. 3.4 of the paper says is expensive to
// do with a short digital filter — our CNF design experiments rely on this
// reference implementation being accurate.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp {

/// Design a real-coefficient fractional-delay filter.
///
/// The returned taps implement a total delay of `delay_samples` (may be
/// non-integer, must be >= 0). The integer part shifts the filter peak, the
/// fractional part comes from a Hamming-windowed sinc of `half_width` taps on
/// each side of the peak. Filter length ~= ceil(delay) + 2*half_width + 1.
CVec design_fractional_delay(double delay_samples, std::size_t half_width = 16);

/// Delay a signal by a (possibly fractional) number of samples, keeping the
/// output aligned with the input timeline (output[n] ~= x(n - delay)).
CVec delay_signal(CSpan x, double delay_samples, std::size_t half_width = 16);

}  // namespace ff::dsp
