// Iterative radix-2 FFT with a precomputed twiddle plan.
//
// The OFDM PHY performs thousands of 64-point transforms per packet and the
// evaluation harness runs tens of thousands of packets, so the plan caches
// bit-reversal indices and twiddle factors once per size.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp {

/// FFT execution plan for a fixed power-of-two size. Immutable once built,
/// so a single plan may be shared freely across threads.
class FftPlan {
 public:
  /// `n` must be a power of two >= 2.
  explicit FftPlan(std::size_t n);

  /// Shared process-wide plan for size `n`, built on first use. Plans are
  /// immutable and never evicted, so the returned reference stays valid for
  /// the lifetime of the process and is safe to use concurrently — this is
  /// what the parallel evaluation engine's workers hit.
  static const FftPlan& cached(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_n x[n] e^{-j 2pi k n / N}.
  void forward(CMutSpan data) const;

  /// In-place inverse DFT including the 1/N normalization.
  void inverse(CMutSpan data) const;

 private:
  template <bool kInvert>
  void transform(CMutSpan data) const;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  CVec twiddle_;      // forward twiddles, n_/2 entries
  CVec inv_twiddle_;  // conjugate table: the inverse butterfly stays branch-free
};

/// One-shot convenience transforms (plan is built per call).
CVec fft(CSpan x);
CVec ifft(CSpan x);

/// True if n is a power of two (and >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// Circular frequency shift helpers: reorder a spectrum between
/// "DC-first" (natural FFT order) and "negative-frequencies-first" layouts.
CVec fftshift(CSpan x);
CVec ifftshift(CSpan x);

/// Linear convolution of two sequences via zero-padded FFT.
CVec fft_convolve(CSpan a, CSpan b);

}  // namespace ff::dsp
