// FFT plans: Stockham autosort mixed-radix (radix-4 with one radix-2
// stage when log2(n) is odd) as the production transform, plus the original
// iterative radix-2 kept as a reference implementation.
//
// The OFDM PHY performs thousands of 64-point transforms per packet and the
// evaluation harness runs tens of thousands of packets, so the plan caches
// per-stage twiddle tables (64-byte aligned for the SIMD stage kernels in
// dsp/kernels) once per size. The Stockham formulation needs no bit-reversal
// permutation — each stage streams src -> dst through the kernel layer's
// vectorized butterflies — and per-thread scratch makes `forward`/`inverse`
// allocation-free in steady state.
//
// Numerics: the mixed-radix transform associates floating-point additions
// differently from the radix-2 reference (same O(eps) accuracy, different
// low bits — tests/kernels_test.cpp bounds the ulp distance). Within ONE
// implementation results are a pure function of the input: identical across
// thread counts, block sizes and FF_SIMD=ON/OFF (see kernels.hpp for the
// scalar/SIMD bitwise contract).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "dsp/kernels/workspace.hpp"

namespace ff::dsp {

/// FFT execution plan for a fixed power-of-two size. Immutable once built,
/// so a single plan may be shared freely across threads (per-thread scratch
/// lives in thread_local storage, not in the plan).
class FftPlan {
 public:
  /// `n` must be a power of two >= 2.
  explicit FftPlan(std::size_t n);

  /// Shared process-wide plan for size `n`, built on first use. Plans are
  /// immutable and never evicted, so the returned reference stays valid for
  /// the lifetime of the process and is safe to use concurrently — this is
  /// what the parallel evaluation engine's workers hit.
  static const FftPlan& cached(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_n x[n] e^{-j 2pi k n / N}.
  void forward(CMutSpan data) const;

  /// In-place inverse DFT including the 1/N normalization.
  void inverse(CMutSpan data) const;

  /// Batched transform of `count` contiguous length-n blocks: in-place when
  /// `in.data() == out.data()`, otherwise fully out-of-place (spans must not
  /// partially overlap). This is the entry point for burst OFDM
  /// (de)modulation — one call per burst instead of one per symbol.
  void execute_many(CSpan in, CMutSpan out, std::size_t count,
                    bool invert = false) const;

  /// Reference transforms: the original iterative radix-2 implementation
  /// (bit-reversal permutation + in-place butterflies). Kept for ulp-bound
  /// tests and as the baseline row in bench_micro_kernels.
  void forward_radix2(CMutSpan data) const;
  void inverse_radix2(CMutSpan data) const;

 private:
  // One Stockham pass: `butterflies` butterflies of width `radix` over
  // sub-transforms of stride m; twiddles at stage_tw_[tw_offset].
  struct Stage {
    std::size_t radix;
    std::size_t butterflies;
    std::size_t m;
    std::size_t tw_offset;
  };

  template <bool kInvert>
  void transform_radix2(CMutSpan data) const;

  void run_stages(const Complex* src, Complex* dst, Complex* scratch,
                  bool invert) const;
  void transform_stockham(CMutSpan data, bool invert) const;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;          // radix-2 reference only
  kernels::AlignedCVec twiddle_;             // radix-2 forward twiddles
  kernels::AlignedCVec inv_twiddle_;         // conjugate table
  std::vector<Stage> stages_;                // mixed-radix schedule
  kernels::AlignedCVec stage_tw_;            // per-stage twiddles, forward
  kernels::AlignedCVec stage_tw_inv_;        // conjugate table
};

/// Float32 twin of FftPlan: the same mixed-radix Stockham schedule running
/// on the f32 kernel family (4 complex lanes per AVX2 register instead of
/// 2). Twiddles are computed in double and narrowed once, so the tables are
/// a pure function of n on every platform — f32 transform output depends on
/// the input alone, never on libm's float variants. No radix-2 reference
/// twin: the f64 plan remains the accuracy baseline
/// (docs/PERFORMANCE.md, "The float32 family").
class FftPlan32 {
 public:
  /// `n` must be a power of two >= 2.
  explicit FftPlan32(std::size_t n);

  /// Shared process-wide plan for size `n` (same lifetime/concurrency
  /// contract as FftPlan::cached; a separate cache).
  static const FftPlan32& cached(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT.
  void forward(CMutSpan32 data) const;

  /// In-place inverse DFT including the 1/N normalization.
  void inverse(CMutSpan32 data) const;

  /// Batched transform, mirror of FftPlan::execute_many.
  void execute_many(CSpan32 in, CMutSpan32 out, std::size_t count,
                    bool invert = false) const;

 private:
  struct Stage {
    std::size_t radix;
    std::size_t butterflies;
    std::size_t m;
    std::size_t tw_offset;
  };

  void run_stages(const Complex32* src, Complex32* dst, Complex32* scratch,
                  bool invert) const;
  void transform_stockham(CMutSpan32 data, bool invert) const;

  std::size_t n_;
  std::vector<Stage> stages_;
  kernels::AlignedCVec32 stage_tw_;
  kernels::AlignedCVec32 stage_tw_inv_;
};

/// One-shot convenience transforms (shared cached plan).
CVec fft(CSpan x);
CVec ifft(CSpan x);

/// True if n is a power of two (and >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// Circular frequency shift helpers: reorder a spectrum between
/// "DC-first" (natural FFT order) and "negative-frequencies-first" layouts.
CVec fftshift(CSpan x);
CVec ifftshift(CSpan x);

/// Linear convolution of two sequences via zero-padded FFT. Scratch comes
/// from per-thread workspace slots — only the returned vector is allocated.
CVec fft_convolve(CSpan a, CSpan b);

}  // namespace ff::dsp
