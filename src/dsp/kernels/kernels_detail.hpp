// Internal glue shared by the kernel TUs (scalar, SSE2, AVX2). Not installed
// as public API — include kernels.hpp instead.
//
// The scalar cores here are the bitwise ground truth: SIMD TUs reuse them for
// loop tails so a vectorized call is indistinguishable from the scalar one on
// any span length. Keep every formula in this header in sync with the
// contract documented in kernels.hpp (no FMA, fixed association).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp::kernels::detail {

// Pointer-level dispatch table. One instance per compiled ISA; resolve() in
// kernels.cpp picks one at process start.
struct KernelOps {
  void (*cmul)(const Complex*, const Complex*, Complex*, std::size_t);
  void (*cmac)(const Complex*, const Complex*, Complex*, std::size_t);
  void (*axpy)(Complex, const Complex*, Complex*, std::size_t);
  void (*scale)(Complex, const Complex*, Complex*, std::size_t);
  void (*scale_real)(double, const Complex*, Complex*, std::size_t);
  Complex (*cdot_conj)(const Complex*, const Complex*, std::size_t);
  double (*magsq_accum)(const Complex*, std::size_t);
  void (*split)(const Complex*, double*, double*, std::size_t);
  void (*interleave)(const double*, const double*, Complex*, std::size_t);
  void (*radix2_stage)(const Complex*, Complex*, const Complex*, std::size_t,
                       std::size_t);
  void (*radix4_stage)(const Complex*, Complex*, const Complex*, std::size_t,
                       std::size_t, bool);

  // Float32 twins (same contract, float lanes — an AVX2 register holds 4
  // complex<float> instead of 2 complex<double>).
  void (*cmul32)(const Complex32*, const Complex32*, Complex32*, std::size_t);
  void (*cmac32)(const Complex32*, const Complex32*, Complex32*, std::size_t);
  void (*axpy32)(Complex32, const Complex32*, Complex32*, std::size_t);
  void (*scale32)(Complex32, const Complex32*, Complex32*, std::size_t);
  void (*scale_real32)(float, const Complex32*, Complex32*, std::size_t);
  Complex32 (*cdot_conj32)(const Complex32*, const Complex32*, std::size_t);
  float (*magsq_accum32)(const Complex32*, std::size_t);
  void (*split32)(const Complex32*, float*, float*, std::size_t);
  void (*interleave32)(const float*, const float*, Complex32*, std::size_t);
  void (*radix2_stage32)(const Complex32*, Complex32*, const Complex32*,
                         std::size_t, std::size_t);
  void (*radix4_stage32)(const Complex32*, Complex32*, const Complex32*,
                         std::size_t, std::size_t, bool);
};

// The textbook complex product, spelled out on raw doubles so no operator
// overload (which libstdc++ may route through __mulsc3-style scaling on
// other platforms) can change the arithmetic. re = ar*br - ai*bi,
// im = ar*bi + ai*br — exactly what the SIMD paths compute.
inline Complex cmul_one(Complex a, Complex b) {
  const double ar = a.real(), ai = a.imag();
  const double br = b.real(), bi = b.imag();
  return {ar * br - ai * bi, ar * bi + ai * br};
}

// conj(a) * b: re = ar*br + ai*bi, im = ar*bi - ai*br.
inline Complex cmul_conj_one(Complex a, Complex b) {
  const double ar = a.real(), ai = a.imag();
  const double br = b.real(), bi = b.imag();
  return {ar * br + ai * bi, ar * bi - ai * br};
}

// Float32 twins of the one-element products. Spelled out on raw floats for
// the same reason as above; every multiply/add is a single-precision IEEE
// operation (no double-rounded intermediates), matching the f32 SIMD lanes.
inline Complex32 cmul_one32(Complex32 a, Complex32 b) {
  const float ar = a.real(), ai = a.imag();
  const float br = b.real(), bi = b.imag();
  return {ar * br - ai * bi, ar * bi + ai * br};
}

inline Complex32 cmul_conj_one32(Complex32 a, Complex32 b) {
  const float ar = a.real(), ai = a.imag();
  const float br = b.real(), bi = b.imag();
  return {ar * br + ai * bi, ar * bi - ai * br};
}

// ----------------------------------------------------------- scalar cores
// Defined in kernels.cpp; declared here so the SIMD TUs can call them for
// tails and tiny spans.

void cmul_scalar(const Complex* a, const Complex* b, Complex* out, std::size_t n);
void cmac_scalar(const Complex* a, const Complex* b, Complex* acc, std::size_t n);
void axpy_scalar(Complex alpha, const Complex* x, Complex* y, std::size_t n);
void scale_scalar(Complex alpha, const Complex* x, Complex* out, std::size_t n);
void scale_real_scalar(double alpha, const Complex* x, Complex* out, std::size_t n);
Complex cdot_conj_scalar(const Complex* a, const Complex* b, std::size_t n);
double magsq_accum_scalar(const Complex* x, std::size_t n);
void split_scalar(const Complex* x, double* re, double* im, std::size_t n);
void interleave_scalar(const double* re, const double* im, Complex* out, std::size_t n);
void radix2_stage_scalar(const Complex* src, Complex* dst, const Complex* tw,
                         std::size_t half, std::size_t m);
void radix4_stage_scalar(const Complex* src, Complex* dst, const Complex* tw,
                         std::size_t quarter, std::size_t m, bool invert);

// Float32 scalar cores, same layout as above.
void cmul_scalar32(const Complex32* a, const Complex32* b, Complex32* out, std::size_t n);
void cmac_scalar32(const Complex32* a, const Complex32* b, Complex32* acc, std::size_t n);
void axpy_scalar32(Complex32 alpha, const Complex32* x, Complex32* y, std::size_t n);
void scale_scalar32(Complex32 alpha, const Complex32* x, Complex32* out, std::size_t n);
void scale_real_scalar32(float alpha, const Complex32* x, Complex32* out, std::size_t n);
Complex32 cdot_conj_scalar32(const Complex32* a, const Complex32* b, std::size_t n);
float magsq_accum_scalar32(const Complex32* x, std::size_t n);
void split_scalar32(const Complex32* x, float* re, float* im, std::size_t n);
void interleave_scalar32(const float* re, const float* im, Complex32* out, std::size_t n);
void radix2_stage_scalar32(const Complex32* src, Complex32* dst, const Complex32* tw,
                           std::size_t half, std::size_t m);
void radix4_stage_scalar32(const Complex32* src, Complex32* dst, const Complex32* tw,
                           std::size_t quarter, std::size_t m, bool invert);

// Tail helpers that continue a reduction started by a SIMD loop: terms keep
// their round-robin lane assignment (term k -> lane k mod 4) so the final
// (p0 + p1) + (p2 + p3) combine matches the scalar reference bit for bit.
void cdot_conj_tail(const Complex* a, const Complex* b, std::size_t start,
                    std::size_t n, Complex lanes[4]);
void magsq_accum_tail(const Complex* x, std::size_t start, std::size_t n,
                      double lanes[4]);
void cdot_conj_tail32(const Complex32* a, const Complex32* b, std::size_t start,
                      std::size_t n, Complex32 lanes[4]);
void magsq_accum_tail32(const Complex32* x, std::size_t start, std::size_t n,
                        float lanes[4]);

const KernelOps& scalar_ops();
#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
const KernelOps& sse2_ops();
const KernelOps& avx2_ops();
#endif

}  // namespace ff::dsp::kernels::detail
