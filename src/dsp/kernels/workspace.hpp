// Reusable aligned scratch arena for the DSP hot paths.
//
// Every block-processing call used to allocate its temporaries (`CVec ext`,
// phasor tables, reconstruction buffers) per invocation; a Workspace turns
// those into grow-only slots that reach steady-state size after the first
// few blocks and never touch the heap again. ForwardPipeline and the stream
// elements own one Workspace each and thread it through their stage calls;
// `grows()`/`bytes()` back the `ff.alloc.*` telemetry that proves the
// steady state is allocation-free (tests/kernels_test.cpp additionally
// asserts it with an operator-new hook).
//
// Slots are independent buffers: a span returned by `get(slot, n)` stays
// valid until the SAME slot is requested with a larger n. Callers that
// nest (e.g. CancellerElement holding slot-1/2 outputs across
// FirFilter::process_into, which uses slot 0 internally) rely on that.
// Workspace is not thread-safe; one per owning element/pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/types.hpp"

namespace ff::dsp::kernels {

/// Minimal aligned allocator routing through ::operator new so allocation
/// hooks (the zero-alloc test, sanitizers) observe workspace growth.
template <typename T, std::size_t kAlign = 64>
struct AlignedAllocator {
  using value_type = T;
  // allocator_traits cannot auto-rebind past the non-type kAlign parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };
  static_assert(kAlign >= alignof(T) && (kAlign & (kAlign - 1)) == 0);

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, kAlign>&) const noexcept {
    return true;
  }
};

/// 64-byte-aligned complex vector: twiddle tables, FFT scratch, workspaces.
using AlignedCVec = std::vector<Complex, AlignedAllocator<Complex>>;

/// Float32 twin, for the f32 kernel family's tables and scratch.
using AlignedCVec32 = std::vector<Complex32, AlignedAllocator<Complex32>>;

class Workspace {
 public:
  /// Aligned scratch span of `n` complexes for `slot`; contents are
  /// unspecified (callers overwrite). Grows the slot if needed — steady
  /// state performs no allocation.
  CMutSpan get(std::size_t slot, std::size_t n);

  /// Float32 twin of get(): a separate slot namespace (f32 slot 0 and f64
  /// slot 0 are distinct buffers), so mixed-precision stages can hold spans
  /// of both without aliasing. Growth is tracked separately — the
  /// `ff.alloc.workspace_f32_*` telemetry.
  CMutSpan32 get_f32(std::size_t slot, std::size_t n);

  /// Number of allocations performed so far (slot growth events).
  std::uint64_t grows() const { return grows_; }
  /// Growth events of the float32 slots alone.
  std::uint64_t grows_f32() const { return grows_f32_; }

  /// Total bytes currently held across slots (both precisions).
  std::size_t bytes() const;
  /// Bytes held by the float32 slots alone.
  std::size_t bytes_f32() const;

  /// Drop all slots (allocation counters are preserved).
  void release();

 private:
  std::vector<AlignedCVec> slots_;
  std::vector<AlignedCVec32> slots_f32_;
  std::uint64_t grows_ = 0;
  std::uint64_t grows_f32_ = 0;
};

}  // namespace ff::dsp::kernels
