// Vectorized complex-arithmetic kernel layer (docs/PERFORMANCE.md, "Kernel
// layer").
//
// Every IQ hot loop in the repository — FIR filtering, CFO rotation, FFT
// butterflies, correlation sums, cancellation — bottoms out in a handful of
// block primitives. This header is their single home: a scalar reference
// implementation (namespace kernels::scalar, always compiled) plus SSE2 and
// AVX2 paths (compiled when the FF_SIMD CMake option is ON, selected at
// runtime via __builtin_cpu_supports). Callers use the dispatched free
// functions; `active_isa()` reports which path is live so benchmarks and
// telemetry can record it.
//
// The bitwise contract — the reason this layer can sit under the streaming
// runtime's determinism guarantees:
//
//   * Elementwise kernels (cmul, cmac, axpy, scale, rotate_phasor, split,
//     interleave) perform IDENTICAL per-element arithmetic in every ISA:
//     the textbook complex product re = ar*br - ai*bi, im = ar*bi + ai*br,
//     no FMA contraction (the kernel TUs are built -ffp-contract=off), no
//     re-association. Scalar and SIMD outputs are equal bit for bit, which
//     tests/kernels_test.cpp asserts on aligned, unaligned and odd-tail
//     spans.
//   * Reduction kernels (cdot_conj, magsq_accum) define their association
//     explicitly: term k accumulates into partial sum k mod 4, and the
//     result is (p0 + p1) + (p2 + p3). The scalar reference implements the
//     same four-lane schedule, so SIMD and scalar reductions are also
//     bitwise equal — a deterministic function of the input alone.
//
// Alignment: kernels accept any alignment (unaligned SIMD loads); 32-byte
// aligned storage (Workspace, AlignedCVec) is preferred for throughput.
// In-place operation is supported when an output span IS an input span
// (same pointer); partially overlapping spans are not.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp::kernels {

/// Instruction set the dispatched kernels are running on.
enum class Isa { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The ISA resolved at process start: the widest compiled-in path the CPU
/// supports, overridable downward with FF_KERNEL_ISA=scalar|sse2|avx2.
Isa active_isa();

const char* isa_name(Isa isa);
/// isa_name(active_isa()) — what bench JSON and telemetry record.
const char* isa_name();

/// True when this build compiled the SIMD paths (FF_SIMD=ON on x86-64).
bool simd_compiled();

// ---------------------------------------------------------------- elementwise

/// out[i] = a[i] * b[i]. `out` may alias `a` or `b` exactly.
void cmul(CSpan a, CSpan b, CMutSpan out);

/// acc[i] += a[i] * b[i]. `acc` must not alias `a`/`b`.
void cmac(CSpan a, CSpan b, CMutSpan acc);

/// y[i] += alpha * x[i]. The FIR workhorse: a block convolution is one axpy
/// per tap, which preserves the tap-ascending accumulation order of the
/// sample-at-a-time reference (see FirFilter::process_into).
void axpy(Complex alpha, CSpan x, CMutSpan y);

/// out[i] = alpha * x[i]. In-place allowed.
void scale(Complex alpha, CSpan x, CMutSpan out);

/// out[i] = alpha * x[i] with a real scalar (the inverse-FFT 1/N).
void scale_real(double alpha, CSpan x, CMutSpan out);

/// out[i] = x[i] * phasor[i]: apply a precomputed unit-phasor table (CFO
/// rotate/restore). Same arithmetic as cmul; a distinct entry point because
/// rotators are a named stage of the relay's forward path.
void rotate_phasor(CSpan x, CSpan phasors, CMutSpan out);

// ----------------------------------------------------------------- reductions

/// sum_k conj(a[k]) * b[k] with the fixed four-lane association above.
Complex cdot_conj(CSpan a, CSpan b);

/// sum_k |x[k]|^2 (re^2 + im^2 per element, then four-lane accumulation).
double magsq_accum(CSpan x);

// -------------------------------------------------------- layout conversion

/// Deinterleave IQ pairs into split re/im arrays (planar layout).
void split(CSpan x, std::span<double> re, std::span<double> im);

/// Interleave split re/im arrays back into IQ pairs.
void interleave(std::span<const double> re, std::span<const double> im, CMutSpan out);

// ------------------------------------------------------------- FFT butterflies
// Stage kernels for the Stockham mixed-radix FFT (dsp::FftPlan). `src` and
// `dst` are distinct n-sample buffers; `tw` points at the stage's twiddle
// run (1 entry per butterfly for radix-2, a {w, w^2, w^3} triple for
// radix-4). `half`/`quarter` is the butterfly count, `m` the intra-stage
// stride. Twiddle tables are pre-conjugated for the inverse transform;
// radix-4 additionally needs `invert` for its +/-i rotation.

void radix2_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t half, std::size_t m);
void radix4_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t quarter, std::size_t m, bool invert);

// ------------------------------------------------------------ float32 family
// Overloads on the CSpan32/CMutSpan32 types (common/types.hpp): the same
// kernels with float lanes, doubling SIMD width per register. Same bitwise
// scalar==SIMD contract, same four-lane reduction schedule — but the f32
// family is its OWN checksum family: f32 results are deterministic across
// ISAs/blocks/threads yet numerically distinct from the double kernels
// (docs/PERFORMANCE.md, "The float32 family").

void cmul(CSpan32 a, CSpan32 b, CMutSpan32 out);
void cmac(CSpan32 a, CSpan32 b, CMutSpan32 acc);
void axpy(Complex32 alpha, CSpan32 x, CMutSpan32 y);
void scale(Complex32 alpha, CSpan32 x, CMutSpan32 out);
void scale_real(float alpha, CSpan32 x, CMutSpan32 out);
void rotate_phasor(CSpan32 x, CSpan32 phasors, CMutSpan32 out);
Complex32 cdot_conj(CSpan32 a, CSpan32 b);
float magsq_accum(CSpan32 x);
void split(CSpan32 x, std::span<float> re, std::span<float> im);
void interleave(std::span<const float> re, std::span<const float> im, CMutSpan32 out);
void radix2_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t half, std::size_t m);
void radix4_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t quarter, std::size_t m, bool invert);

// Precision edge conversion (scalar by design: one rounding per sample, the
// only place a value changes width). narrow() rounds-to-nearest into f32;
// widen() is exact, so narrow-then-widen of any f32-representable value is
// the identity (tests/kernels_test.cpp pins that).
void widen(CSpan32 x, CMutSpan out);
void narrow(CSpan x, CMutSpan32 out);

/// Allocating conveniences for configuration-time conversion (tap sets,
/// twiddle constants). Hot paths use narrow()/widen() into workspace slots.
CVec32 narrowed(CSpan x);
CVec widened(CSpan32 x);

// ------------------------------------------------------------ scalar reference
// Always compiled; what the dispatched functions fall back to, and what
// tests/bench compare the SIMD paths against.
namespace scalar {
void cmul(CSpan a, CSpan b, CMutSpan out);
void cmac(CSpan a, CSpan b, CMutSpan acc);
void axpy(Complex alpha, CSpan x, CMutSpan y);
void scale(Complex alpha, CSpan x, CMutSpan out);
void scale_real(double alpha, CSpan x, CMutSpan out);
void rotate_phasor(CSpan x, CSpan phasors, CMutSpan out);
Complex cdot_conj(CSpan a, CSpan b);
double magsq_accum(CSpan x);
void split(CSpan x, std::span<double> re, std::span<double> im);
void interleave(std::span<const double> re, std::span<const double> im, CMutSpan out);
void radix2_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t half, std::size_t m);
void radix4_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t quarter, std::size_t m, bool invert);
void cmul(CSpan32 a, CSpan32 b, CMutSpan32 out);
void cmac(CSpan32 a, CSpan32 b, CMutSpan32 acc);
void axpy(Complex32 alpha, CSpan32 x, CMutSpan32 y);
void scale(Complex32 alpha, CSpan32 x, CMutSpan32 out);
void scale_real(float alpha, CSpan32 x, CMutSpan32 out);
void rotate_phasor(CSpan32 x, CSpan32 phasors, CMutSpan32 out);
Complex32 cdot_conj(CSpan32 a, CSpan32 b);
float magsq_accum(CSpan32 x);
void split(CSpan32 x, std::span<float> re, std::span<float> im);
void interleave(std::span<const float> re, std::span<const float> im, CMutSpan32 out);
void radix2_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t half, std::size_t m);
void radix4_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t quarter, std::size_t m, bool invert);
}  // namespace scalar

}  // namespace ff::dsp::kernels
