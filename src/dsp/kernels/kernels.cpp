#include "dsp/kernels/kernels.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/check.hpp"
#include "dsp/kernels/kernels_detail.hpp"

namespace ff::dsp::kernels {
namespace detail {

// ----------------------------------------------------------- scalar cores
// This TU is compiled -ffp-contract=off: the mul/add sequences below must
// not be fused into FMA, or scalar and SIMD results would diverge.

void cmul_scalar(const Complex* a, const Complex* b, Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = cmul_one(a[i], b[i]);
}

void cmac_scalar(const Complex* a, const Complex* b, Complex* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Complex p = cmul_one(a[i], b[i]);
    acc[i] = {acc[i].real() + p.real(), acc[i].imag() + p.imag()};
  }
}

void axpy_scalar(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
  const double ar = alpha.real(), ai = alpha.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[i].real(), xi = x[i].imag();
    y[i] = {y[i].real() + (xr * ar - xi * ai), y[i].imag() + (xr * ai + xi * ar)};
  }
}

void scale_scalar(Complex alpha, const Complex* x, Complex* out, std::size_t n) {
  const double ar = alpha.real(), ai = alpha.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[i].real(), xi = x[i].imag();
    out[i] = {xr * ar - xi * ai, xr * ai + xi * ar};
  }
}

void scale_real_scalar(double alpha, const Complex* x, Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = {x[i].real() * alpha, x[i].imag() * alpha};
}

void cdot_conj_tail(const Complex* a, const Complex* b, std::size_t start,
                    std::size_t n, Complex lanes[4]) {
  for (std::size_t k = start; k < n; ++k) {
    const Complex p = cmul_conj_one(a[k], b[k]);
    Complex& acc = lanes[k % 4];
    acc = {acc.real() + p.real(), acc.imag() + p.imag()};
  }
}

Complex cdot_conj_scalar(const Complex* a, const Complex* b, std::size_t n) {
  Complex lanes[4] = {};
  cdot_conj_tail(a, b, 0, n, lanes);
  const Complex s01{lanes[0].real() + lanes[1].real(), lanes[0].imag() + lanes[1].imag()};
  const Complex s23{lanes[2].real() + lanes[3].real(), lanes[2].imag() + lanes[3].imag()};
  return {s01.real() + s23.real(), s01.imag() + s23.imag()};
}

void magsq_accum_tail(const Complex* x, std::size_t start, std::size_t n,
                      double lanes[4]) {
  for (std::size_t k = start; k < n; ++k) {
    const double re = x[k].real(), im = x[k].imag();
    lanes[k % 4] += re * re + im * im;
  }
}

double magsq_accum_scalar(const Complex* x, std::size_t n) {
  double lanes[4] = {};
  magsq_accum_tail(x, 0, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_scalar(const Complex* x, double* re, double* im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
}

void interleave_scalar(const double* re, const double* im, Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = {re[i], im[i]};
}

void radix2_stage_scalar(const Complex* src, Complex* dst, const Complex* tw,
                         std::size_t half, std::size_t m) {
  for (std::size_t j = 0; j < half; ++j) {
    const Complex w = tw[j];
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + half);
    Complex* d0 = dst + m * (2 * j);
    Complex* d1 = d0 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const Complex c0 = s0[k];
      const Complex c1 = s1[k];
      d0[k] = {c0.real() + c1.real(), c0.imag() + c1.imag()};
      d1[k] = cmul_one(w, {c0.real() - c1.real(), c0.imag() - c1.imag()});
    }
  }
}

void radix4_stage_scalar(const Complex* src, Complex* dst, const Complex* tw,
                         std::size_t quarter, std::size_t m, bool invert) {
  for (std::size_t j = 0; j < quarter; ++j) {
    const Complex w1 = tw[3 * j];
    const Complex w2 = tw[3 * j + 1];
    const Complex w3 = tw[3 * j + 2];
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + quarter);
    const Complex* s2 = src + m * (j + 2 * quarter);
    const Complex* s3 = src + m * (j + 3 * quarter);
    Complex* d0 = dst + m * (4 * j);
    Complex* d1 = d0 + m;
    Complex* d2 = d1 + m;
    Complex* d3 = d2 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const Complex c0 = s0[k], c1 = s1[k], c2 = s2[k], c3 = s3[k];
      const Complex e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      // e3 = -i*t (forward) or +i*t (inverse): pure component swap + sign
      // flip, exact in IEEE arithmetic.
      const Complex e3 = invert ? Complex{-t.imag(), t.real()}
                                : Complex{t.imag(), -t.real()};
      d0[k] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      d1[k] = cmul_one(w1, {e1.real() + e3.real(), e1.imag() + e3.imag()});
      d2[k] = cmul_one(w2, {e0.real() - e2.real(), e0.imag() - e2.imag()});
      d3[k] = cmul_one(w3, {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
  }
}

// ------------------------------------------------------ float32 scalar cores
// Same structure as the double cores above; every operation is a
// single-precision IEEE multiply/add (no double-precision intermediates), so
// the f32 SIMD lanes reproduce them bit for bit.

void cmul_scalar32(const Complex32* a, const Complex32* b, Complex32* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = cmul_one32(a[i], b[i]);
}

void cmac_scalar32(const Complex32* a, const Complex32* b, Complex32* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Complex32 p = cmul_one32(a[i], b[i]);
    acc[i] = {acc[i].real() + p.real(), acc[i].imag() + p.imag()};
  }
}

void axpy_scalar32(Complex32 alpha, const Complex32* x, Complex32* y, std::size_t n) {
  const float ar = alpha.real(), ai = alpha.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const float xr = x[i].real(), xi = x[i].imag();
    y[i] = {y[i].real() + (xr * ar - xi * ai), y[i].imag() + (xr * ai + xi * ar)};
  }
}

void scale_scalar32(Complex32 alpha, const Complex32* x, Complex32* out, std::size_t n) {
  const float ar = alpha.real(), ai = alpha.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const float xr = x[i].real(), xi = x[i].imag();
    out[i] = {xr * ar - xi * ai, xr * ai + xi * ar};
  }
}

void scale_real_scalar32(float alpha, const Complex32* x, Complex32* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = {x[i].real() * alpha, x[i].imag() * alpha};
}

void cdot_conj_tail32(const Complex32* a, const Complex32* b, std::size_t start,
                      std::size_t n, Complex32 lanes[4]) {
  for (std::size_t k = start; k < n; ++k) {
    const Complex32 p = cmul_conj_one32(a[k], b[k]);
    Complex32& acc = lanes[k % 4];
    acc = {acc.real() + p.real(), acc.imag() + p.imag()};
  }
}

Complex32 cdot_conj_scalar32(const Complex32* a, const Complex32* b, std::size_t n) {
  Complex32 lanes[4] = {};
  cdot_conj_tail32(a, b, 0, n, lanes);
  const Complex32 s01{lanes[0].real() + lanes[1].real(), lanes[0].imag() + lanes[1].imag()};
  const Complex32 s23{lanes[2].real() + lanes[3].real(), lanes[2].imag() + lanes[3].imag()};
  return {s01.real() + s23.real(), s01.imag() + s23.imag()};
}

void magsq_accum_tail32(const Complex32* x, std::size_t start, std::size_t n,
                        float lanes[4]) {
  for (std::size_t k = start; k < n; ++k) {
    const float re = x[k].real(), im = x[k].imag();
    lanes[k % 4] += re * re + im * im;
  }
}

float magsq_accum_scalar32(const Complex32* x, std::size_t n) {
  float lanes[4] = {};
  magsq_accum_tail32(x, 0, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_scalar32(const Complex32* x, float* re, float* im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
}

void interleave_scalar32(const float* re, const float* im, Complex32* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = {re[i], im[i]};
}

void radix2_stage_scalar32(const Complex32* src, Complex32* dst, const Complex32* tw,
                           std::size_t half, std::size_t m) {
  for (std::size_t j = 0; j < half; ++j) {
    const Complex32 w = tw[j];
    const Complex32* s0 = src + m * j;
    const Complex32* s1 = src + m * (j + half);
    Complex32* d0 = dst + m * (2 * j);
    Complex32* d1 = d0 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const Complex32 c0 = s0[k];
      const Complex32 c1 = s1[k];
      d0[k] = {c0.real() + c1.real(), c0.imag() + c1.imag()};
      d1[k] = cmul_one32(w, {c0.real() - c1.real(), c0.imag() - c1.imag()});
    }
  }
}

void radix4_stage_scalar32(const Complex32* src, Complex32* dst, const Complex32* tw,
                           std::size_t quarter, std::size_t m, bool invert) {
  for (std::size_t j = 0; j < quarter; ++j) {
    const Complex32 w1 = tw[3 * j];
    const Complex32 w2 = tw[3 * j + 1];
    const Complex32 w3 = tw[3 * j + 2];
    const Complex32* s0 = src + m * j;
    const Complex32* s1 = src + m * (j + quarter);
    const Complex32* s2 = src + m * (j + 2 * quarter);
    const Complex32* s3 = src + m * (j + 3 * quarter);
    Complex32* d0 = dst + m * (4 * j);
    Complex32* d1 = d0 + m;
    Complex32* d2 = d1 + m;
    Complex32* d3 = d2 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const Complex32 c0 = s0[k], c1 = s1[k], c2 = s2[k], c3 = s3[k];
      const Complex32 e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex32 e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex32 e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex32 t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      const Complex32 e3 = invert ? Complex32{-t.imag(), t.real()}
                                  : Complex32{t.imag(), -t.real()};
      d0[k] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      d1[k] = cmul_one32(w1, {e1.real() + e3.real(), e1.imag() + e3.imag()});
      d2[k] = cmul_one32(w2, {e0.real() - e2.real(), e0.imag() - e2.imag()});
      d3[k] = cmul_one32(w3, {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
  }
}

const KernelOps& scalar_ops() {
  static const KernelOps ops = {
      &cmul_scalar,     &cmac_scalar,        &axpy_scalar,
      &scale_scalar,    &scale_real_scalar,  &cdot_conj_scalar,
      &magsq_accum_scalar, &split_scalar,    &interleave_scalar,
      &radix2_stage_scalar, &radix4_stage_scalar,
      &cmul_scalar32,   &cmac_scalar32,      &axpy_scalar32,
      &scale_scalar32,  &scale_real_scalar32, &cdot_conj_scalar32,
      &magsq_accum_scalar32, &split_scalar32, &interleave_scalar32,
      &radix2_stage_scalar32, &radix4_stage_scalar32,
  };
  return ops;
}

namespace {

struct Dispatch {
  const KernelOps* ops;
  Isa isa;
};

Dispatch resolve() {
  Isa want = Isa::kScalar;
#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
  // SSE2 is part of the x86-64 baseline; AVX2 needs a runtime check.
  want = __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kSse2;
#endif
  if (const char* env = std::getenv("FF_KERNEL_ISA")) {
    const std::string_view v{env};
    // The override can only narrow: forcing an ISA the build/CPU lacks
    // falls back to the widest supported one.
    if (v == "scalar") {
      want = Isa::kScalar;
    } else if (v == "sse2" && want != Isa::kScalar) {
      want = Isa::kSse2;
    } else if (v == "avx2") {
      // keep `want` — avx2 is already the widest we would pick.
    }
  }
  switch (want) {
#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
    case Isa::kAvx2:
      return {&avx2_ops(), Isa::kAvx2};
    case Isa::kSse2:
      return {&sse2_ops(), Isa::kSse2};
#endif
    default:
      return {&scalar_ops(), Isa::kScalar};
  }
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace
}  // namespace detail

Isa active_isa() { return detail::dispatch().isa; }

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

const char* isa_name() { return isa_name(active_isa()); }

bool simd_compiled() {
#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
  return true;
#else
  return false;
#endif
}

// ------------------------------------------------------- dispatched span API

void cmul(CSpan a, CSpan b, CMutSpan out) {
  FF_CHECK(a.size() == b.size() && a.size() == out.size());
  detail::dispatch().ops->cmul(a.data(), b.data(), out.data(), a.size());
}

void cmac(CSpan a, CSpan b, CMutSpan acc) {
  FF_CHECK(a.size() == b.size() && a.size() == acc.size());
  detail::dispatch().ops->cmac(a.data(), b.data(), acc.data(), a.size());
}

void axpy(Complex alpha, CSpan x, CMutSpan y) {
  FF_CHECK(x.size() == y.size());
  detail::dispatch().ops->axpy(alpha, x.data(), y.data(), x.size());
}

void scale(Complex alpha, CSpan x, CMutSpan out) {
  FF_CHECK(x.size() == out.size());
  detail::dispatch().ops->scale(alpha, x.data(), out.data(), x.size());
}

void scale_real(double alpha, CSpan x, CMutSpan out) {
  FF_CHECK(x.size() == out.size());
  detail::dispatch().ops->scale_real(alpha, x.data(), out.data(), x.size());
}

void rotate_phasor(CSpan x, CSpan phasors, CMutSpan out) {
  FF_CHECK(x.size() == phasors.size() && x.size() == out.size());
  detail::dispatch().ops->cmul(x.data(), phasors.data(), out.data(), x.size());
}

Complex cdot_conj(CSpan a, CSpan b) {
  FF_CHECK(a.size() == b.size());
  return detail::dispatch().ops->cdot_conj(a.data(), b.data(), a.size());
}

double magsq_accum(CSpan x) {
  return detail::dispatch().ops->magsq_accum(x.data(), x.size());
}

void split(CSpan x, std::span<double> re, std::span<double> im) {
  FF_CHECK(x.size() == re.size() && x.size() == im.size());
  detail::dispatch().ops->split(x.data(), re.data(), im.data(), x.size());
}

void interleave(std::span<const double> re, std::span<const double> im, CMutSpan out) {
  FF_CHECK(re.size() == im.size() && re.size() == out.size());
  detail::dispatch().ops->interleave(re.data(), im.data(), out.data(), out.size());
}

void radix2_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t half, std::size_t m) {
  detail::dispatch().ops->radix2_stage(src, dst, tw, half, m);
}

void radix4_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t quarter, std::size_t m, bool invert) {
  detail::dispatch().ops->radix4_stage(src, dst, tw, quarter, m, invert);
}

// --------------------------------------------- dispatched span API (float32)

void cmul(CSpan32 a, CSpan32 b, CMutSpan32 out) {
  FF_CHECK(a.size() == b.size() && a.size() == out.size());
  detail::dispatch().ops->cmul32(a.data(), b.data(), out.data(), a.size());
}

void cmac(CSpan32 a, CSpan32 b, CMutSpan32 acc) {
  FF_CHECK(a.size() == b.size() && a.size() == acc.size());
  detail::dispatch().ops->cmac32(a.data(), b.data(), acc.data(), a.size());
}

void axpy(Complex32 alpha, CSpan32 x, CMutSpan32 y) {
  FF_CHECK(x.size() == y.size());
  detail::dispatch().ops->axpy32(alpha, x.data(), y.data(), x.size());
}

void scale(Complex32 alpha, CSpan32 x, CMutSpan32 out) {
  FF_CHECK(x.size() == out.size());
  detail::dispatch().ops->scale32(alpha, x.data(), out.data(), x.size());
}

void scale_real(float alpha, CSpan32 x, CMutSpan32 out) {
  FF_CHECK(x.size() == out.size());
  detail::dispatch().ops->scale_real32(alpha, x.data(), out.data(), x.size());
}

void rotate_phasor(CSpan32 x, CSpan32 phasors, CMutSpan32 out) {
  FF_CHECK(x.size() == phasors.size() && x.size() == out.size());
  detail::dispatch().ops->cmul32(x.data(), phasors.data(), out.data(), x.size());
}

Complex32 cdot_conj(CSpan32 a, CSpan32 b) {
  FF_CHECK(a.size() == b.size());
  return detail::dispatch().ops->cdot_conj32(a.data(), b.data(), a.size());
}

float magsq_accum(CSpan32 x) {
  return detail::dispatch().ops->magsq_accum32(x.data(), x.size());
}

void split(CSpan32 x, std::span<float> re, std::span<float> im) {
  FF_CHECK(x.size() == re.size() && x.size() == im.size());
  detail::dispatch().ops->split32(x.data(), re.data(), im.data(), x.size());
}

void interleave(std::span<const float> re, std::span<const float> im, CMutSpan32 out) {
  FF_CHECK(re.size() == im.size() && re.size() == out.size());
  detail::dispatch().ops->interleave32(re.data(), im.data(), out.data(), out.size());
}

void radix2_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t half, std::size_t m) {
  detail::dispatch().ops->radix2_stage32(src, dst, tw, half, m);
}

void radix4_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t quarter, std::size_t m, bool invert) {
  detail::dispatch().ops->radix4_stage32(src, dst, tw, quarter, m, invert);
}

// ------------------------------------------------ precision edge conversion

void widen(CSpan32 x, CMutSpan out) {
  FF_CHECK(x.size() == out.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = {static_cast<double>(x[i].real()), static_cast<double>(x[i].imag())};
}

void narrow(CSpan x, CMutSpan32 out) {
  FF_CHECK(x.size() == out.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = {static_cast<float>(x[i].real()), static_cast<float>(x[i].imag())};
}

CVec32 narrowed(CSpan x) {
  CVec32 out(x.size());
  narrow(x, out);
  return out;
}

CVec widened(CSpan32 x) {
  CVec out(x.size());
  widen(x, out);
  return out;
}

// ------------------------------------------------------------ scalar wrappers

namespace scalar {

void cmul(CSpan a, CSpan b, CMutSpan out) {
  FF_CHECK(a.size() == b.size() && a.size() == out.size());
  detail::cmul_scalar(a.data(), b.data(), out.data(), a.size());
}

void cmac(CSpan a, CSpan b, CMutSpan acc) {
  FF_CHECK(a.size() == b.size() && a.size() == acc.size());
  detail::cmac_scalar(a.data(), b.data(), acc.data(), a.size());
}

void axpy(Complex alpha, CSpan x, CMutSpan y) {
  FF_CHECK(x.size() == y.size());
  detail::axpy_scalar(alpha, x.data(), y.data(), x.size());
}

void scale(Complex alpha, CSpan x, CMutSpan out) {
  FF_CHECK(x.size() == out.size());
  detail::scale_scalar(alpha, x.data(), out.data(), x.size());
}

void scale_real(double alpha, CSpan x, CMutSpan out) {
  FF_CHECK(x.size() == out.size());
  detail::scale_real_scalar(alpha, x.data(), out.data(), x.size());
}

void rotate_phasor(CSpan x, CSpan phasors, CMutSpan out) {
  FF_CHECK(x.size() == phasors.size() && x.size() == out.size());
  detail::cmul_scalar(x.data(), phasors.data(), out.data(), x.size());
}

Complex cdot_conj(CSpan a, CSpan b) {
  FF_CHECK(a.size() == b.size());
  return detail::cdot_conj_scalar(a.data(), b.data(), a.size());
}

double magsq_accum(CSpan x) { return detail::magsq_accum_scalar(x.data(), x.size()); }

void split(CSpan x, std::span<double> re, std::span<double> im) {
  FF_CHECK(x.size() == re.size() && x.size() == im.size());
  detail::split_scalar(x.data(), re.data(), im.data(), x.size());
}

void interleave(std::span<const double> re, std::span<const double> im, CMutSpan out) {
  FF_CHECK(re.size() == im.size() && re.size() == out.size());
  detail::interleave_scalar(re.data(), im.data(), out.data(), out.size());
}

void radix2_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t half, std::size_t m) {
  detail::radix2_stage_scalar(src, dst, tw, half, m);
}

void radix4_stage(const Complex* src, Complex* dst, const Complex* tw,
                  std::size_t quarter, std::size_t m, bool invert) {
  detail::radix4_stage_scalar(src, dst, tw, quarter, m, invert);
}

// float32 reference wrappers

void cmul(CSpan32 a, CSpan32 b, CMutSpan32 out) {
  FF_CHECK(a.size() == b.size() && a.size() == out.size());
  detail::cmul_scalar32(a.data(), b.data(), out.data(), a.size());
}

void cmac(CSpan32 a, CSpan32 b, CMutSpan32 acc) {
  FF_CHECK(a.size() == b.size() && a.size() == acc.size());
  detail::cmac_scalar32(a.data(), b.data(), acc.data(), a.size());
}

void axpy(Complex32 alpha, CSpan32 x, CMutSpan32 y) {
  FF_CHECK(x.size() == y.size());
  detail::axpy_scalar32(alpha, x.data(), y.data(), x.size());
}

void scale(Complex32 alpha, CSpan32 x, CMutSpan32 out) {
  FF_CHECK(x.size() == out.size());
  detail::scale_scalar32(alpha, x.data(), out.data(), x.size());
}

void scale_real(float alpha, CSpan32 x, CMutSpan32 out) {
  FF_CHECK(x.size() == out.size());
  detail::scale_real_scalar32(alpha, x.data(), out.data(), x.size());
}

void rotate_phasor(CSpan32 x, CSpan32 phasors, CMutSpan32 out) {
  FF_CHECK(x.size() == phasors.size() && x.size() == out.size());
  detail::cmul_scalar32(x.data(), phasors.data(), out.data(), x.size());
}

Complex32 cdot_conj(CSpan32 a, CSpan32 b) {
  FF_CHECK(a.size() == b.size());
  return detail::cdot_conj_scalar32(a.data(), b.data(), a.size());
}

float magsq_accum(CSpan32 x) { return detail::magsq_accum_scalar32(x.data(), x.size()); }

void split(CSpan32 x, std::span<float> re, std::span<float> im) {
  FF_CHECK(x.size() == re.size() && x.size() == im.size());
  detail::split_scalar32(x.data(), re.data(), im.data(), x.size());
}

void interleave(std::span<const float> re, std::span<const float> im, CMutSpan32 out) {
  FF_CHECK(re.size() == im.size() && re.size() == out.size());
  detail::interleave_scalar32(re.data(), im.data(), out.data(), out.size());
}

void radix2_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t half, std::size_t m) {
  detail::radix2_stage_scalar32(src, dst, tw, half, m);
}

void radix4_stage(const Complex32* src, Complex32* dst, const Complex32* tw,
                  std::size_t quarter, std::size_t m, bool invert) {
  detail::radix4_stage_scalar32(src, dst, tw, quarter, m, invert);
}

}  // namespace scalar
}  // namespace ff::dsp::kernels
