// AVX2 kernel path: two complex doubles per __m256d. Compiled with -mavx2
// (only this TU) when FF_SIMD=ON; selected at runtime by
// __builtin_cpu_supports("avx2") in kernels.cpp.
//
// Bitwise contract (kernels.hpp): identical per-element formulas to the
// scalar reference — same products, additions commuted at most (IEEE
// addition is commutative bitwise), subtraction as addition of a negation
// (exact), +/-i rotation as swap + sign flip (exact). Reductions keep the
// fixed four-lane association. -ffp-contract=off pins out FMA fusion.
#include "dsp/kernels/kernels_detail.hpp"

#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace ff::dsp::kernels::detail {
namespace {

inline __m256d load2(const Complex* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void store2(Complex* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

// [wr, wi, wr, wi] from a single complex.
inline __m256d bcast(const Complex* w) {
  return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(w));
}

// a * b per complex lane: re = ar*br - ai*bi, im = ai*br + ar*bi.
inline __m256d cmul2(__m256d a, __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);
  const __m256d bi = _mm256_permute_pd(b, 0xF);
  const __m256d asw = _mm256_permute_pd(a, 0x5);
  return _mm256_addsub_pd(_mm256_mul_pd(a, br), _mm256_mul_pd(asw, bi));
}

// conj(a) * b per complex lane: re = br*ar + bi*ai, im = bi*ar - br*ai.
inline __m256d cmul2_conj(__m256d a, __m256d b) {
  const __m256d ar = _mm256_movedup_pd(a);
  const __m256d ai = _mm256_permute_pd(a, 0xF);
  const __m256d bsw = _mm256_permute_pd(b, 0x5);
  const __m256d t0 = _mm256_mul_pd(b, ar);
  const __m256d t1 = _mm256_mul_pd(bsw, ai);
  // [t0.re + t1.re, t0.im - t1.im]: negate the imaginary (odd) lanes of t1.
  const __m256d mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  return _mm256_add_pd(t0, _mm256_xor_pd(t1, mask));
}

void cmul_avx2(const Complex* a, const Complex* b, Complex* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) store2(out + i, cmul2(load2(a + i), load2(b + i)));
  cmul_scalar(a + i, b + i, out + i, n - i);
}

void cmac_avx2(const Complex* a, const Complex* b, Complex* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d p = cmul2(load2(a + i), load2(b + i));
    store2(acc + i, _mm256_add_pd(load2(acc + i), p));
  }
  cmac_scalar(a + i, b + i, acc + i, n - i);
}

void axpy_avx2(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
  const __m256d av = bcast(&alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p0 = cmul2(load2(x + i), av);
    const __m256d p1 = cmul2(load2(x + i + 2), av);
    store2(y + i, _mm256_add_pd(load2(y + i), p0));
    store2(y + i + 2, _mm256_add_pd(load2(y + i + 2), p1));
  }
  for (; i + 2 <= n; i += 2) {
    const __m256d p = cmul2(load2(x + i), av);
    store2(y + i, _mm256_add_pd(load2(y + i), p));
  }
  axpy_scalar(alpha, x + i, y + i, n - i);
}

void scale_avx2(Complex alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m256d av = bcast(&alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) store2(out + i, cmul2(load2(x + i), av));
  scale_scalar(alpha, x + i, out + i, n - i);
}

void scale_real_avx2(double alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) store2(out + i, _mm256_mul_pd(load2(x + i), av));
  scale_real_scalar(alpha, x + i, out + i, n - i);
}

Complex cdot_conj_avx2(const Complex* a, const Complex* b, std::size_t n) {
  // v01 holds lanes {0,1}, v23 lanes {2,3} of the four-lane schedule.
  __m256d v01 = _mm256_setzero_pd(), v23 = v01;
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    v01 = _mm256_add_pd(v01, cmul2_conj(load2(a + k), load2(b + k)));
    v23 = _mm256_add_pd(v23, cmul2_conj(load2(a + k + 2), load2(b + k + 2)));
  }
  Complex lanes[4];
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[0]), _mm256_castpd256_pd128(v01));
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[1]), _mm256_extractf128_pd(v01, 1));
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[2]), _mm256_castpd256_pd128(v23));
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[3]), _mm256_extractf128_pd(v23, 1));
  cdot_conj_tail(a, b, n4, n, lanes);
  const double re = (lanes[0].real() + lanes[1].real()) + (lanes[2].real() + lanes[3].real());
  const double im = (lanes[0].imag() + lanes[1].imag()) + (lanes[2].imag() + lanes[3].imag());
  return {re, im};
}

double magsq_accum_avx2(const Complex* x, std::size_t n) {
  // vacc lanes accumulate [A0, A2, A1, A3] of the four-lane schedule.
  __m256d vacc = _mm256_setzero_pd();
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256d va = load2(x + k);
    const __m256d vb = load2(x + k + 2);
    const __m256d sqa = _mm256_mul_pd(va, va);
    const __m256d sqb = _mm256_mul_pd(vb, vb);
    // Pairwise re^2 + im^2 (term order matches the scalar core).
    const __m256d pa = _mm256_add_pd(sqa, _mm256_permute_pd(sqa, 0x5));
    const __m256d pb = _mm256_add_pd(sqb, _mm256_permute_pd(sqb, 0x5));
    // [t0, t2, t1, t3]
    vacc = _mm256_add_pd(vacc, _mm256_shuffle_pd(pa, pb, 0x0));
  }
  alignas(32) double e[4];
  _mm256_store_pd(e, vacc);
  double lanes[4] = {e[0], e[2], e[1], e[3]};
  magsq_accum_tail(x, n4, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_avx2(const Complex* x, double* re, double* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = load2(x + i);      // [r0 i0 r1 i1]
    const __m256d v1 = load2(x + i + 2);  // [r2 i2 r3 i3]
    const __m256d lo = _mm256_unpacklo_pd(v0, v1);  // [r0 r2 r1 r3]
    const __m256d hi = _mm256_unpackhi_pd(v0, v1);  // [i0 i2 i1 i3]
    _mm256_storeu_pd(re + i, _mm256_permute4x64_pd(lo, 0xD8));  // [r0 r1 r2 r3]
    _mm256_storeu_pd(im + i, _mm256_permute4x64_pd(hi, 0xD8));
  }
  split_scalar(x + i, re + i, im + i, n - i);
}

void interleave_avx2(const double* re, const double* im, Complex* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vr = _mm256_permute4x64_pd(_mm256_loadu_pd(re + i), 0xD8);  // [r0 r2 r1 r3]
    const __m256d vi = _mm256_permute4x64_pd(_mm256_loadu_pd(im + i), 0xD8);  // [i0 i2 i1 i3]
    store2(out + i, _mm256_unpacklo_pd(vr, vi));      // [r0 i0 r1 i1]
    store2(out + i + 2, _mm256_unpackhi_pd(vr, vi));  // [r2 i2 r3 i3]
  }
  interleave_scalar(re + i, im + i, out + i, n - i);
}

void radix2_stage_avx2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t half, std::size_t m) {
  if (m < 2) {
    radix2_stage_scalar(src, dst, tw, half, m);
    return;
  }
  for (std::size_t j = 0; j < half; ++j) {
    const __m256d w = bcast(tw + j);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + half);
    Complex* d0 = dst + m * (2 * j);
    Complex* d1 = d0 + m;
    std::size_t k = 0;
    for (; k + 2 <= m; k += 2) {
      const __m256d c0 = load2(s0 + k);
      const __m256d c1 = load2(s1 + k);
      store2(d0 + k, _mm256_add_pd(c0, c1));
      store2(d1 + k, cmul2(_mm256_sub_pd(c0, c1), w));
    }
    for (; k < m; ++k) {
      const Complex c0 = s0[k];
      const Complex c1 = s1[k];
      d0[k] = {c0.real() + c1.real(), c0.imag() + c1.imag()};
      d1[k] = cmul_one(tw[j], {c0.real() - c1.real(), c0.imag() - c1.imag()});
    }
  }
}

void radix4_stage_avx2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t quarter, std::size_t m, bool invert) {
  if (m < 2) {
    // First Stockham stage (m == 1): strided single complexes; the 128-bit
    // path in radix4_stage_scalar-compatible form isn't worth dedicated
    // shuffles — delegate (bitwise identical by the scalar contract).
    radix4_stage_scalar(src, dst, tw, quarter, m, invert);
    return;
  }
  // e3 = -i*t (forward): [t.im, -t.re]; +i*t (inverse): [-t.im, t.re].
  const __m256d fwd_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  const __m256d inv_mask = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
  const __m256d rot = invert ? inv_mask : fwd_mask;
  for (std::size_t j = 0; j < quarter; ++j) {
    const __m256d w1 = bcast(tw + 3 * j);
    const __m256d w2 = bcast(tw + 3 * j + 1);
    const __m256d w3 = bcast(tw + 3 * j + 2);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + quarter);
    const Complex* s2 = src + m * (j + 2 * quarter);
    const Complex* s3 = src + m * (j + 3 * quarter);
    Complex* d0 = dst + m * (4 * j);
    Complex* d1 = d0 + m;
    Complex* d2 = d1 + m;
    Complex* d3 = d2 + m;
    std::size_t k = 0;
    for (; k + 2 <= m; k += 2) {
      const __m256d c0 = load2(s0 + k), c1 = load2(s1 + k);
      const __m256d c2 = load2(s2 + k), c3 = load2(s3 + k);
      const __m256d e0 = _mm256_add_pd(c0, c2);
      const __m256d e1 = _mm256_sub_pd(c0, c2);
      const __m256d e2 = _mm256_add_pd(c1, c3);
      const __m256d t = _mm256_sub_pd(c1, c3);
      const __m256d e3 = _mm256_xor_pd(_mm256_permute_pd(t, 0x5), rot);
      store2(d0 + k, _mm256_add_pd(e0, e2));
      store2(d1 + k, cmul2(_mm256_add_pd(e1, e3), w1));
      store2(d2 + k, cmul2(_mm256_sub_pd(e0, e2), w2));
      store2(d3 + k, cmul2(_mm256_sub_pd(e1, e3), w3));
    }
    for (; k < m; ++k) {
      const Complex c0 = s0[k], c1 = s1[k], c2 = s2[k], c3 = s3[k];
      const Complex e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      const Complex e3 = invert ? Complex{-t.imag(), t.real()}
                                : Complex{t.imag(), -t.real()};
      d0[k] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      d1[k] = cmul_one(tw[3 * j], {e1.real() + e3.real(), e1.imag() + e3.imag()});
      d2[k] = cmul_one(tw[3 * j + 1], {e0.real() - e2.real(), e0.imag() - e2.imag()});
      d3[k] = cmul_one(tw[3 * j + 2], {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
  }
}

}  // namespace

const KernelOps& avx2_ops() {
  static const KernelOps ops = {
      &cmul_avx2,     &cmac_avx2,        &axpy_avx2,
      &scale_avx2,    &scale_real_avx2,  &cdot_conj_avx2,
      &magsq_accum_avx2, &split_avx2,    &interleave_avx2,
      &radix2_stage_avx2, &radix4_stage_avx2,
  };
  return ops;
}

}  // namespace ff::dsp::kernels::detail

#endif  // FF_SIMD_ENABLED && x86-64
