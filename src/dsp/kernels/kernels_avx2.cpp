// AVX2 kernel path: two complex doubles per __m256d. Compiled with -mavx2
// (only this TU) when FF_SIMD=ON; selected at runtime by
// __builtin_cpu_supports("avx2") in kernels.cpp.
//
// Bitwise contract (kernels.hpp): identical per-element formulas to the
// scalar reference — same products, additions commuted at most (IEEE
// addition is commutative bitwise), subtraction as addition of a negation
// (exact), +/-i rotation as swap + sign flip (exact). Reductions keep the
// fixed four-lane association. -ffp-contract=off pins out FMA fusion.
#include "dsp/kernels/kernels_detail.hpp"

#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace ff::dsp::kernels::detail {
namespace {

inline __m256d load2(const Complex* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void store2(Complex* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

// [wr, wi, wr, wi] from a single complex.
inline __m256d bcast(const Complex* w) {
  return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(w));
}

// a * b per complex lane: re = ar*br - ai*bi, im = ai*br + ar*bi.
inline __m256d cmul2(__m256d a, __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);
  const __m256d bi = _mm256_permute_pd(b, 0xF);
  const __m256d asw = _mm256_permute_pd(a, 0x5);
  return _mm256_addsub_pd(_mm256_mul_pd(a, br), _mm256_mul_pd(asw, bi));
}

// conj(a) * b per complex lane: re = br*ar + bi*ai, im = bi*ar - br*ai.
inline __m256d cmul2_conj(__m256d a, __m256d b) {
  const __m256d ar = _mm256_movedup_pd(a);
  const __m256d ai = _mm256_permute_pd(a, 0xF);
  const __m256d bsw = _mm256_permute_pd(b, 0x5);
  const __m256d t0 = _mm256_mul_pd(b, ar);
  const __m256d t1 = _mm256_mul_pd(bsw, ai);
  // [t0.re + t1.re, t0.im - t1.im]: negate the imaginary (odd) lanes of t1.
  const __m256d mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  return _mm256_add_pd(t0, _mm256_xor_pd(t1, mask));
}

void cmul_avx2(const Complex* a, const Complex* b, Complex* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) store2(out + i, cmul2(load2(a + i), load2(b + i)));
  cmul_scalar(a + i, b + i, out + i, n - i);
}

void cmac_avx2(const Complex* a, const Complex* b, Complex* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d p = cmul2(load2(a + i), load2(b + i));
    store2(acc + i, _mm256_add_pd(load2(acc + i), p));
  }
  cmac_scalar(a + i, b + i, acc + i, n - i);
}

void axpy_avx2(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
  const __m256d av = bcast(&alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p0 = cmul2(load2(x + i), av);
    const __m256d p1 = cmul2(load2(x + i + 2), av);
    store2(y + i, _mm256_add_pd(load2(y + i), p0));
    store2(y + i + 2, _mm256_add_pd(load2(y + i + 2), p1));
  }
  for (; i + 2 <= n; i += 2) {
    const __m256d p = cmul2(load2(x + i), av);
    store2(y + i, _mm256_add_pd(load2(y + i), p));
  }
  axpy_scalar(alpha, x + i, y + i, n - i);
}

void scale_avx2(Complex alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m256d av = bcast(&alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) store2(out + i, cmul2(load2(x + i), av));
  scale_scalar(alpha, x + i, out + i, n - i);
}

void scale_real_avx2(double alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) store2(out + i, _mm256_mul_pd(load2(x + i), av));
  scale_real_scalar(alpha, x + i, out + i, n - i);
}

Complex cdot_conj_avx2(const Complex* a, const Complex* b, std::size_t n) {
  // v01 holds lanes {0,1}, v23 lanes {2,3} of the four-lane schedule.
  __m256d v01 = _mm256_setzero_pd(), v23 = v01;
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    v01 = _mm256_add_pd(v01, cmul2_conj(load2(a + k), load2(b + k)));
    v23 = _mm256_add_pd(v23, cmul2_conj(load2(a + k + 2), load2(b + k + 2)));
  }
  Complex lanes[4];
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[0]), _mm256_castpd256_pd128(v01));
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[1]), _mm256_extractf128_pd(v01, 1));
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[2]), _mm256_castpd256_pd128(v23));
  _mm_storeu_pd(reinterpret_cast<double*>(&lanes[3]), _mm256_extractf128_pd(v23, 1));
  cdot_conj_tail(a, b, n4, n, lanes);
  const double re = (lanes[0].real() + lanes[1].real()) + (lanes[2].real() + lanes[3].real());
  const double im = (lanes[0].imag() + lanes[1].imag()) + (lanes[2].imag() + lanes[3].imag());
  return {re, im};
}

double magsq_accum_avx2(const Complex* x, std::size_t n) {
  // vacc lanes accumulate [A0, A2, A1, A3] of the four-lane schedule.
  __m256d vacc = _mm256_setzero_pd();
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256d va = load2(x + k);
    const __m256d vb = load2(x + k + 2);
    const __m256d sqa = _mm256_mul_pd(va, va);
    const __m256d sqb = _mm256_mul_pd(vb, vb);
    // Pairwise re^2 + im^2 (term order matches the scalar core).
    const __m256d pa = _mm256_add_pd(sqa, _mm256_permute_pd(sqa, 0x5));
    const __m256d pb = _mm256_add_pd(sqb, _mm256_permute_pd(sqb, 0x5));
    // [t0, t2, t1, t3]
    vacc = _mm256_add_pd(vacc, _mm256_shuffle_pd(pa, pb, 0x0));
  }
  alignas(32) double e[4];
  _mm256_store_pd(e, vacc);
  double lanes[4] = {e[0], e[2], e[1], e[3]};
  magsq_accum_tail(x, n4, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_avx2(const Complex* x, double* re, double* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = load2(x + i);      // [r0 i0 r1 i1]
    const __m256d v1 = load2(x + i + 2);  // [r2 i2 r3 i3]
    const __m256d lo = _mm256_unpacklo_pd(v0, v1);  // [r0 r2 r1 r3]
    const __m256d hi = _mm256_unpackhi_pd(v0, v1);  // [i0 i2 i1 i3]
    _mm256_storeu_pd(re + i, _mm256_permute4x64_pd(lo, 0xD8));  // [r0 r1 r2 r3]
    _mm256_storeu_pd(im + i, _mm256_permute4x64_pd(hi, 0xD8));
  }
  split_scalar(x + i, re + i, im + i, n - i);
}

void interleave_avx2(const double* re, const double* im, Complex* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vr = _mm256_permute4x64_pd(_mm256_loadu_pd(re + i), 0xD8);  // [r0 r2 r1 r3]
    const __m256d vi = _mm256_permute4x64_pd(_mm256_loadu_pd(im + i), 0xD8);  // [i0 i2 i1 i3]
    store2(out + i, _mm256_unpacklo_pd(vr, vi));      // [r0 i0 r1 i1]
    store2(out + i + 2, _mm256_unpackhi_pd(vr, vi));  // [r2 i2 r3 i3]
  }
  interleave_scalar(re + i, im + i, out + i, n - i);
}

void radix2_stage_avx2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t half, std::size_t m) {
  if (m < 2) {
    radix2_stage_scalar(src, dst, tw, half, m);
    return;
  }
  for (std::size_t j = 0; j < half; ++j) {
    const __m256d w = bcast(tw + j);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + half);
    Complex* d0 = dst + m * (2 * j);
    Complex* d1 = d0 + m;
    std::size_t k = 0;
    for (; k + 2 <= m; k += 2) {
      const __m256d c0 = load2(s0 + k);
      const __m256d c1 = load2(s1 + k);
      store2(d0 + k, _mm256_add_pd(c0, c1));
      store2(d1 + k, cmul2(_mm256_sub_pd(c0, c1), w));
    }
    for (; k < m; ++k) {
      const Complex c0 = s0[k];
      const Complex c1 = s1[k];
      d0[k] = {c0.real() + c1.real(), c0.imag() + c1.imag()};
      d1[k] = cmul_one(tw[j], {c0.real() - c1.real(), c0.imag() - c1.imag()});
    }
  }
}

void radix4_stage_avx2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t quarter, std::size_t m, bool invert) {
  if (m < 2) {
    // First Stockham stage (m == 1): strided single complexes; the 128-bit
    // path in radix4_stage_scalar-compatible form isn't worth dedicated
    // shuffles — delegate (bitwise identical by the scalar contract).
    radix4_stage_scalar(src, dst, tw, quarter, m, invert);
    return;
  }
  // e3 = -i*t (forward): [t.im, -t.re]; +i*t (inverse): [-t.im, t.re].
  const __m256d fwd_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  const __m256d inv_mask = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
  const __m256d rot = invert ? inv_mask : fwd_mask;
  for (std::size_t j = 0; j < quarter; ++j) {
    const __m256d w1 = bcast(tw + 3 * j);
    const __m256d w2 = bcast(tw + 3 * j + 1);
    const __m256d w3 = bcast(tw + 3 * j + 2);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + quarter);
    const Complex* s2 = src + m * (j + 2 * quarter);
    const Complex* s3 = src + m * (j + 3 * quarter);
    Complex* d0 = dst + m * (4 * j);
    Complex* d1 = d0 + m;
    Complex* d2 = d1 + m;
    Complex* d3 = d2 + m;
    std::size_t k = 0;
    for (; k + 2 <= m; k += 2) {
      const __m256d c0 = load2(s0 + k), c1 = load2(s1 + k);
      const __m256d c2 = load2(s2 + k), c3 = load2(s3 + k);
      const __m256d e0 = _mm256_add_pd(c0, c2);
      const __m256d e1 = _mm256_sub_pd(c0, c2);
      const __m256d e2 = _mm256_add_pd(c1, c3);
      const __m256d t = _mm256_sub_pd(c1, c3);
      const __m256d e3 = _mm256_xor_pd(_mm256_permute_pd(t, 0x5), rot);
      store2(d0 + k, _mm256_add_pd(e0, e2));
      store2(d1 + k, cmul2(_mm256_add_pd(e1, e3), w1));
      store2(d2 + k, cmul2(_mm256_sub_pd(e0, e2), w2));
      store2(d3 + k, cmul2(_mm256_sub_pd(e1, e3), w3));
    }
    for (; k < m; ++k) {
      const Complex c0 = s0[k], c1 = s1[k], c2 = s2[k], c3 = s3[k];
      const Complex e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      const Complex e3 = invert ? Complex{-t.imag(), t.real()}
                                : Complex{t.imag(), -t.real()};
      d0[k] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      d1[k] = cmul_one(tw[3 * j], {e1.real() + e3.real(), e1.imag() + e3.imag()});
      d2[k] = cmul_one(tw[3 * j + 1], {e0.real() - e2.real(), e0.imag() - e2.imag()});
      d3[k] = cmul_one(tw[3 * j + 2], {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
  }
}

// ------------------------------------------------------------ float32 path
// Four complex<float> per __m256 — double the lane count of the f64 path,
// which is the entire point of the f32 family. Same bitwise contract: every
// lane computes the scalar reference formula, reductions keep the four-lane
// schedule (one __m256 accumulator IS the four lanes).

inline __m256 load4f(const Complex32* p) {
  return _mm256_loadu_ps(reinterpret_cast<const float*>(p));
}

inline void store4f(Complex32* p, __m256 v) {
  _mm256_storeu_ps(reinterpret_cast<float*>(p), v);
}

// [wr, wi] broadcast into all four complex lanes (64-bit dup, data movement
// only — no FP operation touches the bits).
inline __m256 bcast1f(const Complex32* w) {
  return _mm256_castpd_ps(_mm256_broadcast_sd(reinterpret_cast<const double*>(w)));
}

// a * b per complex lane: re = ar*br - ai*bi, im = ai*br + ar*bi.
inline __m256 cmul4f(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);
  const __m256 bi = _mm256_movehdup_ps(b);
  const __m256 asw = _mm256_permute_ps(a, 0xB1);
  return _mm256_addsub_ps(_mm256_mul_ps(a, br), _mm256_mul_ps(asw, bi));
}

// conj(a) * b per complex lane: re = br*ar + bi*ai, im = bi*ar - br*ai.
inline __m256 cmul_conj4f(__m256 a, __m256 b) {
  const __m256 ar = _mm256_moveldup_ps(a);
  const __m256 ai = _mm256_movehdup_ps(a);
  const __m256 bsw = _mm256_permute_ps(b, 0xB1);
  const __m256 t0 = _mm256_mul_ps(b, ar);
  const __m256 t1 = _mm256_mul_ps(bsw, ai);
  const __m256 mask = _mm256_set_ps(-0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f);
  return _mm256_add_ps(t0, _mm256_xor_ps(t1, mask));
}

void cmul_avx2_32(const Complex32* a, const Complex32* b, Complex32* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) store4f(out + i, cmul4f(load4f(a + i), load4f(b + i)));
  cmul_scalar32(a + i, b + i, out + i, n - i);
}

void cmac_avx2_32(const Complex32* a, const Complex32* b, Complex32* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 p = cmul4f(load4f(a + i), load4f(b + i));
    store4f(acc + i, _mm256_add_ps(load4f(acc + i), p));
  }
  cmac_scalar32(a + i, b + i, acc + i, n - i);
}

void axpy_avx2_32(Complex32 alpha, const Complex32* x, Complex32* y, std::size_t n) {
  const __m256 av = bcast1f(&alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 p0 = cmul4f(load4f(x + i), av);
    const __m256 p1 = cmul4f(load4f(x + i + 4), av);
    store4f(y + i, _mm256_add_ps(load4f(y + i), p0));
    store4f(y + i + 4, _mm256_add_ps(load4f(y + i + 4), p1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256 p = cmul4f(load4f(x + i), av);
    store4f(y + i, _mm256_add_ps(load4f(y + i), p));
  }
  axpy_scalar32(alpha, x + i, y + i, n - i);
}

void scale_avx2_32(Complex32 alpha, const Complex32* x, Complex32* out, std::size_t n) {
  const __m256 av = bcast1f(&alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) store4f(out + i, cmul4f(load4f(x + i), av));
  scale_scalar32(alpha, x + i, out + i, n - i);
}

void scale_real_avx2_32(float alpha, const Complex32* x, Complex32* out, std::size_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) store4f(out + i, _mm256_mul_ps(load4f(x + i), av));
  scale_real_scalar32(alpha, x + i, out + i, n - i);
}

Complex32 cdot_conj_avx2_32(const Complex32* a, const Complex32* b, std::size_t n) {
  // One __m256 accumulator holds the four reduction lanes in order: term
  // k + j lands in complex lane j, i.e. lane (k + j) mod 4 — the scalar
  // schedule exactly.
  __m256 vacc = _mm256_setzero_ps();
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4)
    vacc = _mm256_add_ps(vacc, cmul_conj4f(load4f(a + k), load4f(b + k)));
  Complex32 lanes[4];
  _mm256_storeu_ps(reinterpret_cast<float*>(lanes), vacc);
  cdot_conj_tail32(a, b, n4, n, lanes);
  const float re = (lanes[0].real() + lanes[1].real()) + (lanes[2].real() + lanes[3].real());
  const float im = (lanes[0].imag() + lanes[1].imag()) + (lanes[2].imag() + lanes[3].imag());
  return {re, im};
}

float magsq_accum_avx2_32(const Complex32* x, std::size_t n) {
  // Four terms per iteration packed into a __m128 accumulator = the four
  // scalar lanes in order.
  __m128 vacc = _mm_setzero_ps();
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m256 v = load4f(x + k);
    const __m256 sq = _mm256_mul_ps(v, v);
    // term = re^2 + im^2 at the even lanes (one add per term, scalar order).
    const __m256 p = _mm256_add_ps(sq, _mm256_movehdup_ps(sq));
    const __m256 s = _mm256_shuffle_ps(p, p, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 lo = _mm256_castps256_ps128(s);       // [t0 t1 t0 t1]
    const __m128 hi = _mm256_extractf128_ps(s, 1);     // [t2 t3 t2 t3]
    vacc = _mm_add_ps(vacc, _mm_shuffle_ps(lo, hi, _MM_SHUFFLE(1, 0, 1, 0)));
  }
  float lanes[4];
  _mm_storeu_ps(lanes, vacc);
  magsq_accum_tail32(x, n4, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_avx2_32(const Complex32* x, float* re, float* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v0 = load4f(x + i);      // [r0 i0 r1 i1 | r2 i2 r3 i3]
    const __m256 v1 = load4f(x + i + 4);  // [r4 i4 r5 i5 | r6 i6 r7 i7]
    const __m256 lo = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));  // [r0 r1 r4 r5 | r2 r3 r6 r7]
    const __m256 hi = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));  // imag twin
    _mm256_storeu_ps(re + i, _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(lo), 0xD8)));
    _mm256_storeu_ps(im + i, _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(hi), 0xD8)));
  }
  split_scalar32(x + i, re + i, im + i, n - i);
}

void interleave_avx2_32(const float* re, const float* im, Complex32* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vr = _mm256_castpd_ps(
        _mm256_permute4x64_pd(_mm256_castps_pd(_mm256_loadu_ps(re + i)), 0xD8));  // [r0 r1 r4 r5 | r2 r3 r6 r7]
    const __m256 vi = _mm256_castpd_ps(
        _mm256_permute4x64_pd(_mm256_castps_pd(_mm256_loadu_ps(im + i)), 0xD8));
    store4f(out + i, _mm256_unpacklo_ps(vr, vi));      // [r0 i0 r1 i1 | r2 i2 r3 i3]
    store4f(out + i + 4, _mm256_unpackhi_ps(vr, vi));  // [r4 i4 r5 i5 | r6 i6 r7 i7]
  }
  interleave_scalar32(re + i, im + i, out + i, n - i);
}

void radix2_stage_avx2_32(const Complex32* src, Complex32* dst, const Complex32* tw,
                          std::size_t half, std::size_t m) {
  if (m < 4) {
    radix2_stage_scalar32(src, dst, tw, half, m);
    return;
  }
  for (std::size_t j = 0; j < half; ++j) {
    const __m256 w = bcast1f(tw + j);
    const Complex32* s0 = src + m * j;
    const Complex32* s1 = src + m * (j + half);
    Complex32* d0 = dst + m * (2 * j);
    Complex32* d1 = d0 + m;
    std::size_t k = 0;
    for (; k + 4 <= m; k += 4) {
      const __m256 c0 = load4f(s0 + k);
      const __m256 c1 = load4f(s1 + k);
      store4f(d0 + k, _mm256_add_ps(c0, c1));
      store4f(d1 + k, cmul4f(_mm256_sub_ps(c0, c1), w));
    }
    for (; k < m; ++k) {
      const Complex32 c0 = s0[k];
      const Complex32 c1 = s1[k];
      d0[k] = {c0.real() + c1.real(), c0.imag() + c1.imag()};
      d1[k] = cmul_one32(tw[j], {c0.real() - c1.real(), c0.imag() - c1.imag()});
    }
  }
}

void radix4_stage_avx2_32(const Complex32* src, Complex32* dst, const Complex32* tw,
                          std::size_t quarter, std::size_t m, bool invert) {
  const __m256 fwd_mask = _mm256_set_ps(-0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f);
  const __m256 inv_mask = _mm256_set_ps(0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f);
  const __m256 rot = invert ? inv_mask : fwd_mask;
  if (m == 1) {
    // First Stockham stage: one complex per butterfly, so vectorize ACROSS
    // butterflies — four j's per register. Loads are contiguous within each
    // quarter, twiddles gather at stride 3, and the four result streams
    // transpose (4x4 over 64-bit complex lanes) into contiguous
    // dst[4j .. 4j+15]. Every lane computes the scalar butterfly formula
    // with the same per-op rounding, so the bitwise contract holds.
    const __m256i idx3 = _mm256_setr_epi64x(0, 3, 6, 9);
    std::size_t j = 0;
    for (; j + 4 <= quarter; j += 4) {
      const __m256 c0 = load4f(src + j);
      const __m256 c1 = load4f(src + quarter + j);
      const __m256 c2 = load4f(src + 2 * quarter + j);
      const __m256 c3 = load4f(src + 3 * quarter + j);
      const __m256 e0 = _mm256_add_ps(c0, c2);
      const __m256 e1 = _mm256_sub_ps(c0, c2);
      const __m256 e2 = _mm256_add_ps(c1, c3);
      const __m256 t = _mm256_sub_ps(c1, c3);
      const __m256 e3 = _mm256_xor_ps(_mm256_permute_ps(t, 0xB1), rot);
      const long long* twp = reinterpret_cast<const long long*>(tw + 3 * j);
      const __m256 w1 = _mm256_castsi256_ps(_mm256_i64gather_epi64(twp, idx3, 8));
      const __m256 w2 = _mm256_castsi256_ps(_mm256_i64gather_epi64(twp + 1, idx3, 8));
      const __m256 w3 = _mm256_castsi256_ps(_mm256_i64gather_epi64(twp + 2, idx3, 8));
      const __m256d r0 = _mm256_castps_pd(_mm256_add_ps(e0, e2));
      const __m256d r1 = _mm256_castps_pd(cmul4f(_mm256_add_ps(e1, e3), w1));
      const __m256d r2 = _mm256_castps_pd(cmul4f(_mm256_sub_ps(e0, e2), w2));
      const __m256d r3 = _mm256_castps_pd(cmul4f(_mm256_sub_ps(e1, e3), w3));
      const __m256d lo01 = _mm256_unpacklo_pd(r0, r1);  // [j:0 j:1 | j+2:0 j+2:1]
      const __m256d hi01 = _mm256_unpackhi_pd(r0, r1);  // [j+1:0 j+1:1 | j+3:0 j+3:1]
      const __m256d lo23 = _mm256_unpacklo_pd(r2, r3);
      const __m256d hi23 = _mm256_unpackhi_pd(r2, r3);
      store4f(dst + 4 * j, _mm256_castpd_ps(_mm256_permute2f128_pd(lo01, lo23, 0x20)));
      store4f(dst + 4 * j + 4, _mm256_castpd_ps(_mm256_permute2f128_pd(hi01, hi23, 0x20)));
      store4f(dst + 4 * j + 8, _mm256_castpd_ps(_mm256_permute2f128_pd(lo01, lo23, 0x31)));
      store4f(dst + 4 * j + 12, _mm256_castpd_ps(_mm256_permute2f128_pd(hi01, hi23, 0x31)));
    }
    for (; j < quarter; ++j) {
      const Complex32 c0 = src[j], c1 = src[quarter + j];
      const Complex32 c2 = src[2 * quarter + j], c3 = src[3 * quarter + j];
      const Complex32 e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex32 e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex32 e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex32 t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      const Complex32 e3 = invert ? Complex32{-t.imag(), t.real()}
                                  : Complex32{t.imag(), -t.real()};
      dst[4 * j] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      dst[4 * j + 1] = cmul_one32(tw[3 * j], {e1.real() + e3.real(), e1.imag() + e3.imag()});
      dst[4 * j + 2] = cmul_one32(tw[3 * j + 1], {e0.real() - e2.real(), e0.imag() - e2.imag()});
      dst[4 * j + 3] = cmul_one32(tw[3 * j + 2], {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
    return;
  }
  if (m < 4) {
    // m == 2 never occurs in the mixed-radix schedule (m multiplies by 4
    // from 1); delegate anyway so the kernel stays total.
    radix4_stage_scalar32(src, dst, tw, quarter, m, invert);
    return;
  }
  for (std::size_t j = 0; j < quarter; ++j) {
    const __m256 w1 = bcast1f(tw + 3 * j);
    const __m256 w2 = bcast1f(tw + 3 * j + 1);
    const __m256 w3 = bcast1f(tw + 3 * j + 2);
    const Complex32* s0 = src + m * j;
    const Complex32* s1 = src + m * (j + quarter);
    const Complex32* s2 = src + m * (j + 2 * quarter);
    const Complex32* s3 = src + m * (j + 3 * quarter);
    Complex32* d0 = dst + m * (4 * j);
    Complex32* d1 = d0 + m;
    Complex32* d2 = d1 + m;
    Complex32* d3 = d2 + m;
    std::size_t k = 0;
    for (; k + 4 <= m; k += 4) {
      const __m256 c0 = load4f(s0 + k), c1 = load4f(s1 + k);
      const __m256 c2 = load4f(s2 + k), c3 = load4f(s3 + k);
      const __m256 e0 = _mm256_add_ps(c0, c2);
      const __m256 e1 = _mm256_sub_ps(c0, c2);
      const __m256 e2 = _mm256_add_ps(c1, c3);
      const __m256 t = _mm256_sub_ps(c1, c3);
      const __m256 e3 = _mm256_xor_ps(_mm256_permute_ps(t, 0xB1), rot);
      store4f(d0 + k, _mm256_add_ps(e0, e2));
      store4f(d1 + k, cmul4f(_mm256_add_ps(e1, e3), w1));
      store4f(d2 + k, cmul4f(_mm256_sub_ps(e0, e2), w2));
      store4f(d3 + k, cmul4f(_mm256_sub_ps(e1, e3), w3));
    }
    for (; k < m; ++k) {
      const Complex32 c0 = s0[k], c1 = s1[k], c2 = s2[k], c3 = s3[k];
      const Complex32 e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex32 e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex32 e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex32 t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      const Complex32 e3 = invert ? Complex32{-t.imag(), t.real()}
                                  : Complex32{t.imag(), -t.real()};
      d0[k] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      d1[k] = cmul_one32(tw[3 * j], {e1.real() + e3.real(), e1.imag() + e3.imag()});
      d2[k] = cmul_one32(tw[3 * j + 1], {e0.real() - e2.real(), e0.imag() - e2.imag()});
      d3[k] = cmul_one32(tw[3 * j + 2], {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
  }
}

}  // namespace

const KernelOps& avx2_ops() {
  static const KernelOps ops = {
      &cmul_avx2,     &cmac_avx2,        &axpy_avx2,
      &scale_avx2,    &scale_real_avx2,  &cdot_conj_avx2,
      &magsq_accum_avx2, &split_avx2,    &interleave_avx2,
      &radix2_stage_avx2, &radix4_stage_avx2,
      &cmul_avx2_32,  &cmac_avx2_32,     &axpy_avx2_32,
      &scale_avx2_32, &scale_real_avx2_32, &cdot_conj_avx2_32,
      &magsq_accum_avx2_32, &split_avx2_32, &interleave_avx2_32,
      &radix2_stage_avx2_32, &radix4_stage_avx2_32,
  };
  return ops;
}

}  // namespace ff::dsp::kernels::detail

#endif  // FF_SIMD_ENABLED && x86-64
