#include "dsp/kernels/workspace.hpp"

namespace ff::dsp::kernels {

CMutSpan Workspace::get(std::size_t slot, std::size_t n) {
  if (slot >= slots_.size()) {
    slots_.resize(slot + 1);
    ++grows_;
  }
  AlignedCVec& buf = slots_[slot];
  if (buf.size() < n) {
    // Slot growth invalidates previous spans of THIS slot only: the
    // AlignedCVec objects may move when slots_ reallocates, but their heap
    // storage (what the spans point at) does not.
    buf.resize(n);
    ++grows_;
  }
  return CMutSpan{buf.data(), n};
}

CMutSpan32 Workspace::get_f32(std::size_t slot, std::size_t n) {
  if (slot >= slots_f32_.size()) {
    slots_f32_.resize(slot + 1);
    ++grows_f32_;
  }
  AlignedCVec32& buf = slots_f32_[slot];
  if (buf.size() < n) {
    buf.resize(n);
    ++grows_f32_;
  }
  return CMutSpan32{buf.data(), n};
}

std::size_t Workspace::bytes() const {
  std::size_t total = bytes_f32();
  for (const auto& s : slots_) total += s.capacity() * sizeof(Complex);
  return total;
}

std::size_t Workspace::bytes_f32() const {
  std::size_t total = 0;
  for (const auto& s : slots_f32_) total += s.capacity() * sizeof(Complex32);
  return total;
}

void Workspace::release() {
  slots_.clear();
  slots_.shrink_to_fit();
  slots_f32_.clear();
  slots_f32_.shrink_to_fit();
}

}  // namespace ff::dsp::kernels
