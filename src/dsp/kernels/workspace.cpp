#include "dsp/kernels/workspace.hpp"

namespace ff::dsp::kernels {

CMutSpan Workspace::get(std::size_t slot, std::size_t n) {
  if (slot >= slots_.size()) {
    slots_.resize(slot + 1);
    ++grows_;
  }
  AlignedCVec& buf = slots_[slot];
  if (buf.size() < n) {
    // Slot growth invalidates previous spans of THIS slot only: the
    // AlignedCVec objects may move when slots_ reallocates, but their heap
    // storage (what the spans point at) does not.
    buf.resize(n);
    ++grows_;
  }
  return CMutSpan{buf.data(), n};
}

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s.capacity() * sizeof(Complex);
  return total;
}

void Workspace::release() {
  slots_.clear();
  slots_.shrink_to_fit();
}

}  // namespace ff::dsp::kernels
