// SSE2 kernel path: one complex double per __m128d. SSE2 is part of the
// x86-64 baseline, so this TU needs no special -m flags; it exists as the
// guaranteed-available SIMD floor under AVX2. Compiled only when FF_SIMD=ON.
//
// Bitwise contract (kernels.hpp): every operation below is the exact
// per-element formula of the scalar reference — multiplies and adds in the
// same order, subtraction expressed as addition of a negation (IEEE-exact),
// +/-i rotations as component swaps with sign flips (exact). The TU is
// compiled -ffp-contract=off so no mul/add pair can fuse into an FMA.
#include "dsp/kernels/kernels_detail.hpp"

#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))

#include <emmintrin.h>

namespace ff::dsp::kernels::detail {
namespace {

inline __m128d loadc(const Complex* p) {
  return _mm_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void storec(Complex* p, __m128d v) {
  _mm_storeu_pd(reinterpret_cast<double*>(p), v);
}

// [a0 - b0, a1 + b1] via a + (b ^ [-0, +0]); IEEE a + (-b) == a - b.
inline __m128d addsub(__m128d a, __m128d b) {
  const __m128d mask = _mm_set_pd(0.0, -0.0);
  return _mm_add_pd(a, _mm_xor_pd(b, mask));
}

// [a0 + b0, a1 - b1].
inline __m128d subadd(__m128d a, __m128d b) {
  const __m128d mask = _mm_set_pd(-0.0, 0.0);
  return _mm_add_pd(a, _mm_xor_pd(b, mask));
}

// a * b: re = ar*br - ai*bi, im = ai*br + ar*bi (same products as the
// scalar ar*bi + ai*br, addition commuted — bitwise equal).
inline __m128d cmul(__m128d a, __m128d b) {
  const __m128d br = _mm_unpacklo_pd(b, b);
  const __m128d bi = _mm_unpackhi_pd(b, b);
  const __m128d asw = _mm_shuffle_pd(a, a, 1);
  return addsub(_mm_mul_pd(a, br), _mm_mul_pd(asw, bi));
}

// conj(a) * b: re = br*ar + bi*ai, im = bi*ar - br*ai.
inline __m128d cmul_conj(__m128d a, __m128d b) {
  const __m128d ar = _mm_unpacklo_pd(a, a);
  const __m128d ai = _mm_unpackhi_pd(a, a);
  const __m128d bsw = _mm_shuffle_pd(b, b, 1);
  return subadd(_mm_mul_pd(b, ar), _mm_mul_pd(bsw, ai));
}

void cmul_sse2(const Complex* a, const Complex* b, Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) storec(out + i, cmul(loadc(a + i), loadc(b + i)));
}

void cmac_sse2(const Complex* a, const Complex* b, Complex* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d p = cmul(loadc(a + i), loadc(b + i));
    storec(acc + i, _mm_add_pd(loadc(acc + i), p));
  }
}

void axpy_sse2(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
  const __m128d av = loadc(&alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d p = cmul(loadc(x + i), av);
    storec(y + i, _mm_add_pd(loadc(y + i), p));
  }
}

void scale_sse2(Complex alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m128d av = loadc(&alpha);
  for (std::size_t i = 0; i < n; ++i) storec(out + i, cmul(loadc(x + i), av));
}

void scale_real_sse2(double alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m128d av = _mm_set1_pd(alpha);
  for (std::size_t i = 0; i < n; ++i)
    storec(out + i, _mm_mul_pd(loadc(x + i), av));
}

Complex cdot_conj_sse2(const Complex* a, const Complex* b, std::size_t n) {
  __m128d v0 = _mm_setzero_pd(), v1 = v0, v2 = v0, v3 = v0;
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    v0 = _mm_add_pd(v0, cmul_conj(loadc(a + k), loadc(b + k)));
    v1 = _mm_add_pd(v1, cmul_conj(loadc(a + k + 1), loadc(b + k + 1)));
    v2 = _mm_add_pd(v2, cmul_conj(loadc(a + k + 2), loadc(b + k + 2)));
    v3 = _mm_add_pd(v3, cmul_conj(loadc(a + k + 3), loadc(b + k + 3)));
  }
  Complex lanes[4];
  storec(&lanes[0], v0);
  storec(&lanes[1], v1);
  storec(&lanes[2], v2);
  storec(&lanes[3], v3);
  cdot_conj_tail(a, b, n4, n, lanes);
  const double re = (lanes[0].real() + lanes[1].real()) + (lanes[2].real() + lanes[3].real());
  const double im = (lanes[0].imag() + lanes[1].imag()) + (lanes[2].imag() + lanes[3].imag());
  return {re, im};
}

double magsq_accum_sse2(const Complex* x, std::size_t n) {
  double lanes[4] = {};
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const __m128d v = loadc(x + k + j);
      const __m128d sq = _mm_mul_pd(v, v);
      // term = re^2 + im^2, summed in that order like the scalar core.
      lanes[j] += _mm_cvtsd_f64(_mm_add_pd(sq, _mm_unpackhi_pd(sq, sq)));
    }
  }
  magsq_accum_tail(x, n4, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_sse2(const Complex* x, double* re, double* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v0 = loadc(x + i);
    const __m128d v1 = loadc(x + i + 1);
    _mm_storeu_pd(re + i, _mm_unpacklo_pd(v0, v1));
    _mm_storeu_pd(im + i, _mm_unpackhi_pd(v0, v1));
  }
  split_scalar(x + i, re + i, im + i, n - i);
}

void interleave_sse2(const double* re, const double* im, Complex* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vr = _mm_loadu_pd(re + i);
    const __m128d vi = _mm_loadu_pd(im + i);
    storec(out + i, _mm_unpacklo_pd(vr, vi));
    storec(out + i + 1, _mm_unpackhi_pd(vr, vi));
  }
  interleave_scalar(re + i, im + i, out + i, n - i);
}

void radix2_stage_sse2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t half, std::size_t m) {
  for (std::size_t j = 0; j < half; ++j) {
    const __m128d w = loadc(tw + j);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + half);
    Complex* d0 = dst + m * (2 * j);
    Complex* d1 = d0 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const __m128d c0 = loadc(s0 + k);
      const __m128d c1 = loadc(s1 + k);
      storec(d0 + k, _mm_add_pd(c0, c1));
      storec(d1 + k, cmul(w, _mm_sub_pd(c0, c1)));
    }
  }
}

void radix4_stage_sse2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t quarter, std::size_t m, bool invert) {
  // +/-i rotation masks: forward e3 = [t.im, -t.re], inverse e3 = [-t.im, t.re].
  const __m128d fwd_mask = _mm_set_pd(-0.0, 0.0);
  const __m128d inv_mask = _mm_set_pd(0.0, -0.0);
  const __m128d rot = invert ? inv_mask : fwd_mask;
  for (std::size_t j = 0; j < quarter; ++j) {
    const __m128d w1 = loadc(tw + 3 * j);
    const __m128d w2 = loadc(tw + 3 * j + 1);
    const __m128d w3 = loadc(tw + 3 * j + 2);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + quarter);
    const Complex* s2 = src + m * (j + 2 * quarter);
    const Complex* s3 = src + m * (j + 3 * quarter);
    Complex* d0 = dst + m * (4 * j);
    Complex* d1 = d0 + m;
    Complex* d2 = d1 + m;
    Complex* d3 = d2 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const __m128d c0 = loadc(s0 + k), c1 = loadc(s1 + k);
      const __m128d c2 = loadc(s2 + k), c3 = loadc(s3 + k);
      const __m128d e0 = _mm_add_pd(c0, c2);
      const __m128d e1 = _mm_sub_pd(c0, c2);
      const __m128d e2 = _mm_add_pd(c1, c3);
      const __m128d t = _mm_sub_pd(c1, c3);
      const __m128d e3 = _mm_xor_pd(_mm_shuffle_pd(t, t, 1), rot);
      storec(d0 + k, _mm_add_pd(e0, e2));
      storec(d1 + k, cmul(w1, _mm_add_pd(e1, e3)));
      storec(d2 + k, cmul(w2, _mm_sub_pd(e0, e2)));
      storec(d3 + k, cmul(w3, _mm_sub_pd(e1, e3)));
    }
  }
}

}  // namespace

const KernelOps& sse2_ops() {
  static const KernelOps ops = {
      &cmul_sse2,     &cmac_sse2,        &axpy_sse2,
      &scale_sse2,    &scale_real_sse2,  &cdot_conj_sse2,
      &magsq_accum_sse2, &split_sse2,    &interleave_sse2,
      &radix2_stage_sse2, &radix4_stage_sse2,
  };
  return ops;
}

}  // namespace ff::dsp::kernels::detail

#endif  // FF_SIMD_ENABLED && x86-64
