// SSE2 kernel path: one complex double per __m128d. SSE2 is part of the
// x86-64 baseline, so this TU needs no special -m flags; it exists as the
// guaranteed-available SIMD floor under AVX2. Compiled only when FF_SIMD=ON.
//
// Bitwise contract (kernels.hpp): every operation below is the exact
// per-element formula of the scalar reference — multiplies and adds in the
// same order, subtraction expressed as addition of a negation (IEEE-exact),
// +/-i rotations as component swaps with sign flips (exact). The TU is
// compiled -ffp-contract=off so no mul/add pair can fuse into an FMA.
#include "dsp/kernels/kernels_detail.hpp"

#if defined(FF_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))

#include <emmintrin.h>

namespace ff::dsp::kernels::detail {
namespace {

inline __m128d loadc(const Complex* p) {
  return _mm_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void storec(Complex* p, __m128d v) {
  _mm_storeu_pd(reinterpret_cast<double*>(p), v);
}

// [a0 - b0, a1 + b1] via a + (b ^ [-0, +0]); IEEE a + (-b) == a - b.
inline __m128d addsub(__m128d a, __m128d b) {
  const __m128d mask = _mm_set_pd(0.0, -0.0);
  return _mm_add_pd(a, _mm_xor_pd(b, mask));
}

// [a0 + b0, a1 - b1].
inline __m128d subadd(__m128d a, __m128d b) {
  const __m128d mask = _mm_set_pd(-0.0, 0.0);
  return _mm_add_pd(a, _mm_xor_pd(b, mask));
}

// a * b: re = ar*br - ai*bi, im = ai*br + ar*bi (same products as the
// scalar ar*bi + ai*br, addition commuted — bitwise equal).
inline __m128d cmul(__m128d a, __m128d b) {
  const __m128d br = _mm_unpacklo_pd(b, b);
  const __m128d bi = _mm_unpackhi_pd(b, b);
  const __m128d asw = _mm_shuffle_pd(a, a, 1);
  return addsub(_mm_mul_pd(a, br), _mm_mul_pd(asw, bi));
}

// conj(a) * b: re = br*ar + bi*ai, im = bi*ar - br*ai.
inline __m128d cmul_conj(__m128d a, __m128d b) {
  const __m128d ar = _mm_unpacklo_pd(a, a);
  const __m128d ai = _mm_unpackhi_pd(a, a);
  const __m128d bsw = _mm_shuffle_pd(b, b, 1);
  return subadd(_mm_mul_pd(b, ar), _mm_mul_pd(bsw, ai));
}

void cmul_sse2(const Complex* a, const Complex* b, Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) storec(out + i, cmul(loadc(a + i), loadc(b + i)));
}

void cmac_sse2(const Complex* a, const Complex* b, Complex* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d p = cmul(loadc(a + i), loadc(b + i));
    storec(acc + i, _mm_add_pd(loadc(acc + i), p));
  }
}

void axpy_sse2(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
  const __m128d av = loadc(&alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d p = cmul(loadc(x + i), av);
    storec(y + i, _mm_add_pd(loadc(y + i), p));
  }
}

void scale_sse2(Complex alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m128d av = loadc(&alpha);
  for (std::size_t i = 0; i < n; ++i) storec(out + i, cmul(loadc(x + i), av));
}

void scale_real_sse2(double alpha, const Complex* x, Complex* out, std::size_t n) {
  const __m128d av = _mm_set1_pd(alpha);
  for (std::size_t i = 0; i < n; ++i)
    storec(out + i, _mm_mul_pd(loadc(x + i), av));
}

Complex cdot_conj_sse2(const Complex* a, const Complex* b, std::size_t n) {
  __m128d v0 = _mm_setzero_pd(), v1 = v0, v2 = v0, v3 = v0;
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    v0 = _mm_add_pd(v0, cmul_conj(loadc(a + k), loadc(b + k)));
    v1 = _mm_add_pd(v1, cmul_conj(loadc(a + k + 1), loadc(b + k + 1)));
    v2 = _mm_add_pd(v2, cmul_conj(loadc(a + k + 2), loadc(b + k + 2)));
    v3 = _mm_add_pd(v3, cmul_conj(loadc(a + k + 3), loadc(b + k + 3)));
  }
  Complex lanes[4];
  storec(&lanes[0], v0);
  storec(&lanes[1], v1);
  storec(&lanes[2], v2);
  storec(&lanes[3], v3);
  cdot_conj_tail(a, b, n4, n, lanes);
  const double re = (lanes[0].real() + lanes[1].real()) + (lanes[2].real() + lanes[3].real());
  const double im = (lanes[0].imag() + lanes[1].imag()) + (lanes[2].imag() + lanes[3].imag());
  return {re, im};
}

double magsq_accum_sse2(const Complex* x, std::size_t n) {
  double lanes[4] = {};
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const __m128d v = loadc(x + k + j);
      const __m128d sq = _mm_mul_pd(v, v);
      // term = re^2 + im^2, summed in that order like the scalar core.
      lanes[j] += _mm_cvtsd_f64(_mm_add_pd(sq, _mm_unpackhi_pd(sq, sq)));
    }
  }
  magsq_accum_tail(x, n4, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_sse2(const Complex* x, double* re, double* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v0 = loadc(x + i);
    const __m128d v1 = loadc(x + i + 1);
    _mm_storeu_pd(re + i, _mm_unpacklo_pd(v0, v1));
    _mm_storeu_pd(im + i, _mm_unpackhi_pd(v0, v1));
  }
  split_scalar(x + i, re + i, im + i, n - i);
}

void interleave_sse2(const double* re, const double* im, Complex* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vr = _mm_loadu_pd(re + i);
    const __m128d vi = _mm_loadu_pd(im + i);
    storec(out + i, _mm_unpacklo_pd(vr, vi));
    storec(out + i + 1, _mm_unpackhi_pd(vr, vi));
  }
  interleave_scalar(re + i, im + i, out + i, n - i);
}

void radix2_stage_sse2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t half, std::size_t m) {
  for (std::size_t j = 0; j < half; ++j) {
    const __m128d w = loadc(tw + j);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + half);
    Complex* d0 = dst + m * (2 * j);
    Complex* d1 = d0 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const __m128d c0 = loadc(s0 + k);
      const __m128d c1 = loadc(s1 + k);
      storec(d0 + k, _mm_add_pd(c0, c1));
      storec(d1 + k, cmul(w, _mm_sub_pd(c0, c1)));
    }
  }
}

void radix4_stage_sse2(const Complex* src, Complex* dst, const Complex* tw,
                       std::size_t quarter, std::size_t m, bool invert) {
  // +/-i rotation masks: forward e3 = [t.im, -t.re], inverse e3 = [-t.im, t.re].
  const __m128d fwd_mask = _mm_set_pd(-0.0, 0.0);
  const __m128d inv_mask = _mm_set_pd(0.0, -0.0);
  const __m128d rot = invert ? inv_mask : fwd_mask;
  for (std::size_t j = 0; j < quarter; ++j) {
    const __m128d w1 = loadc(tw + 3 * j);
    const __m128d w2 = loadc(tw + 3 * j + 1);
    const __m128d w3 = loadc(tw + 3 * j + 2);
    const Complex* s0 = src + m * j;
    const Complex* s1 = src + m * (j + quarter);
    const Complex* s2 = src + m * (j + 2 * quarter);
    const Complex* s3 = src + m * (j + 3 * quarter);
    Complex* d0 = dst + m * (4 * j);
    Complex* d1 = d0 + m;
    Complex* d2 = d1 + m;
    Complex* d3 = d2 + m;
    for (std::size_t k = 0; k < m; ++k) {
      const __m128d c0 = loadc(s0 + k), c1 = loadc(s1 + k);
      const __m128d c2 = loadc(s2 + k), c3 = loadc(s3 + k);
      const __m128d e0 = _mm_add_pd(c0, c2);
      const __m128d e1 = _mm_sub_pd(c0, c2);
      const __m128d e2 = _mm_add_pd(c1, c3);
      const __m128d t = _mm_sub_pd(c1, c3);
      const __m128d e3 = _mm_xor_pd(_mm_shuffle_pd(t, t, 1), rot);
      storec(d0 + k, _mm_add_pd(e0, e2));
      storec(d1 + k, cmul(w1, _mm_add_pd(e1, e3)));
      storec(d2 + k, cmul(w2, _mm_sub_pd(e0, e2)));
      storec(d3 + k, cmul(w3, _mm_sub_pd(e1, e3)));
    }
  }
}

// ------------------------------------------------------------ float32 path
// Two complex<float> per __m128. SSE2 lacks the SSE3 moveldup/movehdup and
// addsub instructions, so broadcasts are shuffles and add/sub pairs go
// through sign-mask XORs (IEEE a + (-b) == a - b, exact).

inline __m128 loadc2f(const Complex32* p) {
  return _mm_loadu_ps(reinterpret_cast<const float*>(p));
}

inline void storec2f(Complex32* p, __m128 v) {
  _mm_storeu_ps(reinterpret_cast<float*>(p), v);
}

// Duplicate one Complex32 into both register halves (pure data movement).
inline __m128 bcastc1f(Complex32 c) {
  const __m128 v = _mm_castpd_ps(_mm_load_sd(reinterpret_cast<const double*>(&c)));
  return _mm_shuffle_ps(v, v, _MM_SHUFFLE(1, 0, 1, 0));
}

// Real lanes subtract, imag lanes add: a + (b ^ [-0,+0,-0,+0]).
inline __m128 addsubf(__m128 a, __m128 b) {
  const __m128 mask = _mm_set_ps(0.0f, -0.0f, 0.0f, -0.0f);
  return _mm_add_ps(a, _mm_xor_ps(b, mask));
}

// Real lanes add, imag lanes subtract.
inline __m128 subaddf(__m128 a, __m128 b) {
  const __m128 mask = _mm_set_ps(-0.0f, 0.0f, -0.0f, 0.0f);
  return _mm_add_ps(a, _mm_xor_ps(b, mask));
}

// Two independent complex products, same per-element formula as the scalar
// reference (addition commuted in the imag lane, bitwise equal).
inline __m128 cmul2f(__m128 a, __m128 b) {
  const __m128 br = _mm_shuffle_ps(b, b, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128 bi = _mm_shuffle_ps(b, b, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128 asw = _mm_shuffle_ps(a, a, _MM_SHUFFLE(2, 3, 0, 1));
  return addsubf(_mm_mul_ps(a, br), _mm_mul_ps(asw, bi));
}

// conj(a) * b on both halves: re = br*ar + bi*ai, im = bi*ar - br*ai.
inline __m128 cmul_conj2f(__m128 a, __m128 b) {
  const __m128 ar = _mm_shuffle_ps(a, a, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128 ai = _mm_shuffle_ps(a, a, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128 bsw = _mm_shuffle_ps(b, b, _MM_SHUFFLE(2, 3, 0, 1));
  return subaddf(_mm_mul_ps(b, ar), _mm_mul_ps(bsw, ai));
}

void cmul_sse2_32(const Complex32* a, const Complex32* b, Complex32* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) storec2f(out + i, cmul2f(loadc2f(a + i), loadc2f(b + i)));
  cmul_scalar32(a + i, b + i, out + i, n - i);
}

void cmac_sse2_32(const Complex32* a, const Complex32* b, Complex32* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 p = cmul2f(loadc2f(a + i), loadc2f(b + i));
    storec2f(acc + i, _mm_add_ps(loadc2f(acc + i), p));
  }
  cmac_scalar32(a + i, b + i, acc + i, n - i);
}

void axpy_sse2_32(Complex32 alpha, const Complex32* x, Complex32* y, std::size_t n) {
  const __m128 av = bcastc1f(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 p = cmul2f(loadc2f(x + i), av);
    storec2f(y + i, _mm_add_ps(loadc2f(y + i), p));
  }
  axpy_scalar32(alpha, x + i, y + i, n - i);
}

void scale_sse2_32(Complex32 alpha, const Complex32* x, Complex32* out, std::size_t n) {
  const __m128 av = bcastc1f(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) storec2f(out + i, cmul2f(loadc2f(x + i), av));
  scale_scalar32(alpha, x + i, out + i, n - i);
}

void scale_real_sse2_32(float alpha, const Complex32* x, Complex32* out, std::size_t n) {
  const __m128 av = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) storec2f(out + i, _mm_mul_ps(loadc2f(x + i), av));
  scale_real_scalar32(alpha, x + i, out + i, n - i);
}

Complex32 cdot_conj_sse2_32(const Complex32* a, const Complex32* b, std::size_t n) {
  // v01 holds reduction lanes {0,1}, v23 lanes {2,3}: term k lands in lane
  // k mod 4 exactly like the scalar core.
  __m128 v01 = _mm_setzero_ps(), v23 = v01;
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    v01 = _mm_add_ps(v01, cmul_conj2f(loadc2f(a + k), loadc2f(b + k)));
    v23 = _mm_add_ps(v23, cmul_conj2f(loadc2f(a + k + 2), loadc2f(b + k + 2)));
  }
  Complex32 lanes[4];
  storec2f(&lanes[0], v01);
  storec2f(&lanes[2], v23);
  cdot_conj_tail32(a, b, n4, n, lanes);
  const float re = (lanes[0].real() + lanes[1].real()) + (lanes[2].real() + lanes[3].real());
  const float im = (lanes[0].imag() + lanes[1].imag()) + (lanes[2].imag() + lanes[3].imag());
  return {re, im};
}

float magsq_accum_sse2_32(const Complex32* x, std::size_t n) {
  // Vector accumulator holds the four scalar reduction lanes in order.
  __m128 vacc = _mm_setzero_ps();
  const std::size_t n4 = n - n % 4;
  for (std::size_t k = 0; k < n4; k += 4) {
    const __m128 v01 = loadc2f(x + k);
    const __m128 v23 = loadc2f(x + k + 2);
    const __m128 sq01 = _mm_mul_ps(v01, v01);
    const __m128 sq23 = _mm_mul_ps(v23, v23);
    // term = re^2 + im^2, one add per term like the scalar core.
    const __m128 s01 = _mm_add_ps(sq01, _mm_shuffle_ps(sq01, sq01, _MM_SHUFFLE(3, 3, 1, 1)));
    const __m128 s23 = _mm_add_ps(sq23, _mm_shuffle_ps(sq23, sq23, _MM_SHUFFLE(3, 3, 1, 1)));
    // Gather the even lanes [t0,t1,t2,t3] and accumulate lane-wise.
    vacc = _mm_add_ps(vacc, _mm_shuffle_ps(s01, s23, _MM_SHUFFLE(2, 0, 2, 0)));
  }
  float lanes[4];
  _mm_storeu_ps(lanes, vacc);
  magsq_accum_tail32(x, n4, n, lanes);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void split_sse2_32(const Complex32* x, float* re, float* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v01 = loadc2f(x + i);
    const __m128 v23 = loadc2f(x + i + 2);
    _mm_storeu_ps(re + i, _mm_shuffle_ps(v01, v23, _MM_SHUFFLE(2, 0, 2, 0)));
    _mm_storeu_ps(im + i, _mm_shuffle_ps(v01, v23, _MM_SHUFFLE(3, 1, 3, 1)));
  }
  split_scalar32(x + i, re + i, im + i, n - i);
}

void interleave_sse2_32(const float* re, const float* im, Complex32* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vr = _mm_loadu_ps(re + i);
    const __m128 vi = _mm_loadu_ps(im + i);
    storec2f(out + i, _mm_unpacklo_ps(vr, vi));
    storec2f(out + i + 2, _mm_unpackhi_ps(vr, vi));
  }
  interleave_scalar32(re + i, im + i, out + i, n - i);
}

void radix2_stage_sse2_32(const Complex32* src, Complex32* dst, const Complex32* tw,
                          std::size_t half, std::size_t m) {
  for (std::size_t j = 0; j < half; ++j) {
    const Complex32 w = tw[j];
    const __m128 wv = bcastc1f(w);
    const Complex32* s0 = src + m * j;
    const Complex32* s1 = src + m * (j + half);
    Complex32* d0 = dst + m * (2 * j);
    Complex32* d1 = d0 + m;
    std::size_t k = 0;
    for (; k + 2 <= m; k += 2) {
      const __m128 c0 = loadc2f(s0 + k);
      const __m128 c1 = loadc2f(s1 + k);
      storec2f(d0 + k, _mm_add_ps(c0, c1));
      storec2f(d1 + k, cmul2f(wv, _mm_sub_ps(c0, c1)));
    }
    for (; k < m; ++k) {
      const Complex32 c0 = s0[k];
      const Complex32 c1 = s1[k];
      d0[k] = {c0.real() + c1.real(), c0.imag() + c1.imag()};
      d1[k] = cmul_one32(w, {c0.real() - c1.real(), c0.imag() - c1.imag()});
    }
  }
}

void radix4_stage_sse2_32(const Complex32* src, Complex32* dst, const Complex32* tw,
                          std::size_t quarter, std::size_t m, bool invert) {
  // +/-i rotation: swap components then flip one sign per complex, exact.
  const __m128 fwd_mask = _mm_set_ps(-0.0f, 0.0f, -0.0f, 0.0f);
  const __m128 inv_mask = _mm_set_ps(0.0f, -0.0f, 0.0f, -0.0f);
  const __m128 rot = invert ? inv_mask : fwd_mask;
  for (std::size_t j = 0; j < quarter; ++j) {
    const Complex32 w1 = tw[3 * j];
    const Complex32 w2 = tw[3 * j + 1];
    const Complex32 w3 = tw[3 * j + 2];
    const __m128 w1v = bcastc1f(w1), w2v = bcastc1f(w2), w3v = bcastc1f(w3);
    const Complex32* s0 = src + m * j;
    const Complex32* s1 = src + m * (j + quarter);
    const Complex32* s2 = src + m * (j + 2 * quarter);
    const Complex32* s3 = src + m * (j + 3 * quarter);
    Complex32* d0 = dst + m * (4 * j);
    Complex32* d1 = d0 + m;
    Complex32* d2 = d1 + m;
    Complex32* d3 = d2 + m;
    std::size_t k = 0;
    for (; k + 2 <= m; k += 2) {
      const __m128 c0 = loadc2f(s0 + k), c1 = loadc2f(s1 + k);
      const __m128 c2 = loadc2f(s2 + k), c3 = loadc2f(s3 + k);
      const __m128 e0 = _mm_add_ps(c0, c2);
      const __m128 e1 = _mm_sub_ps(c0, c2);
      const __m128 e2 = _mm_add_ps(c1, c3);
      const __m128 t = _mm_sub_ps(c1, c3);
      const __m128 e3 =
          _mm_xor_ps(_mm_shuffle_ps(t, t, _MM_SHUFFLE(2, 3, 0, 1)), rot);
      storec2f(d0 + k, _mm_add_ps(e0, e2));
      storec2f(d1 + k, cmul2f(w1v, _mm_add_ps(e1, e3)));
      storec2f(d2 + k, cmul2f(w2v, _mm_sub_ps(e0, e2)));
      storec2f(d3 + k, cmul2f(w3v, _mm_sub_ps(e1, e3)));
    }
    for (; k < m; ++k) {
      const Complex32 c0 = s0[k], c1 = s1[k], c2 = s2[k], c3 = s3[k];
      const Complex32 e0{c0.real() + c2.real(), c0.imag() + c2.imag()};
      const Complex32 e1{c0.real() - c2.real(), c0.imag() - c2.imag()};
      const Complex32 e2{c1.real() + c3.real(), c1.imag() + c3.imag()};
      const Complex32 t{c1.real() - c3.real(), c1.imag() - c3.imag()};
      const Complex32 e3 = invert ? Complex32{-t.imag(), t.real()}
                                  : Complex32{t.imag(), -t.real()};
      d0[k] = {e0.real() + e2.real(), e0.imag() + e2.imag()};
      d1[k] = cmul_one32(w1, {e1.real() + e3.real(), e1.imag() + e3.imag()});
      d2[k] = cmul_one32(w2, {e0.real() - e2.real(), e0.imag() - e2.imag()});
      d3[k] = cmul_one32(w3, {e1.real() - e3.real(), e1.imag() - e3.imag()});
    }
  }
}

}  // namespace

const KernelOps& sse2_ops() {
  static const KernelOps ops = {
      &cmul_sse2,     &cmac_sse2,        &axpy_sse2,
      &scale_sse2,    &scale_real_sse2,  &cdot_conj_sse2,
      &magsq_accum_sse2, &split_sse2,    &interleave_sse2,
      &radix2_stage_sse2, &radix4_stage_sse2,
      &cmul_sse2_32,  &cmac_sse2_32,     &axpy_sse2_32,
      &scale_sse2_32, &scale_real_sse2_32, &cdot_conj_sse2_32,
      &magsq_accum_sse2_32, &split_sse2_32, &interleave_sse2_32,
      &radix2_stage_sse2_32, &radix4_stage_sse2_32,
  };
  return ops;
}

}  // namespace ff::dsp::kernels::detail

#endif  // FF_SIMD_ENABLED && x86-64
