// Power spectral density estimation (Welch's method) and band-power
// utilities.
//
// The relay transmits whatever its filter chain produces: the CNF
// pre-filter fit deliberately trades some out-of-band gain for in-band
// phase freedom (see relay/digital_prefilter.cpp), and a real deployment
// must keep that within the regulatory spectral mask. These tools measure
// it in the simulator.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp {

struct WelchConfig {
  std::size_t segment = 256;   // FFT size per segment (power of two)
  std::size_t overlap = 128;   // samples shared by adjacent segments
};

/// Welch PSD estimate. Returns `segment` bins of power per bin (linear,
/// same power units as |x|^2), in natural FFT order (DC first). The sum of
/// all bins equals the mean signal power.
std::vector<double> welch_psd(CSpan x, const WelchConfig& cfg = {});

/// Total power in a baseband frequency band [f_lo, f_hi] (Hz) of a PSD
/// computed at the given sample rate.
double band_power(const std::vector<double>& psd, double sample_rate_hz, double f_lo_hz,
                  double f_hi_hz);

/// Ratio (dB) of power outside [-bw/2, +bw/2] to power inside it — the
/// out-of-band emission figure a spectral mask constrains.
double oob_power_ratio_db(CSpan x, double sample_rate_hz, double occupied_bw_hz,
                          const WelchConfig& cfg = {});

}  // namespace ff::dsp
