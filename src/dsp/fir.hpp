// FIR filtering: a streaming sample-by-sample filter (used by the relay
// pipeline, where causality and per-sample latency matter) and block helpers.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::dsp {

/// Streaming causal FIR filter.
///
/// y[n] = sum_k h[k] x[n-k].  The filter owns a circular delay line; each
/// push() consumes one input sample and produces one output sample with zero
/// look-ahead, matching hardware tap-line semantics.
class FirFilter {
 public:
  explicit FirFilter(CVec taps);

  /// Feed one input sample, get the filter output at this instant.
  Complex push(Complex x);

  /// Filter a whole block (stateful: continues from previous pushes).
  CVec process(CSpan x);

  /// Filter a whole block into a caller-owned buffer (stateful). `out` must
  /// be exactly x.size() samples and may alias `x` (in-place filtering):
  /// each input sample is copied into the delay line before its output slot
  /// is written. This is the allocation-free path the streaming hot loop
  /// uses to reuse one buffer per block.
  void process_into(CSpan x, CMutSpan out);

  /// Reset the delay line to zeros (taps are kept).
  void reset();

  /// Replace the taps (live retuning, as in the canceller and the drifting
  /// streaming channel). The input history is preserved: when the tap count
  /// changes, the most recent min(old, new) samples carry over into the
  /// resized delay line (older history is zero-padded), so a retune in the
  /// middle of a stream never re-introduces a cold-start transient.
  void set_taps(CVec taps);

  const CVec& taps() const { return taps_; }
  std::size_t order() const { return taps_.size(); }

 private:
  CVec taps_;
  CVec delay_;        // circular buffer of past inputs
  std::size_t head_ = 0;  // index of the most recent sample
};

/// Stateless linear convolution (output length = x.size() + h.size() - 1).
CVec convolve(CSpan x, CSpan h);

/// Stateless "same-length" causal filtering: y[n] = sum_k h[k] x[n-k],
/// zero initial conditions, output trimmed to x.size().
CVec filter(CSpan h, CSpan x);

/// Frequency response of a sample-spaced FIR at normalized frequency
/// `f_norm` in cycles/sample (i.e. H(e^{j 2 pi f_norm})).
Complex freq_response(CSpan taps, double f_norm);

/// Linear-phase low-pass design (Hamming-windowed sinc): `taps` coefficients
/// with cutoff `cutoff_norm` (cycles/sample, 0 < cutoff <= 0.5), unit DC
/// gain, group delay (taps-1)/2 samples. Odd tap counts give integer delay.
CVec design_lowpass(std::size_t taps, double cutoff_norm);

}  // namespace ff::dsp
