// FIR filtering: a streaming sample-by-sample filter (used by the relay
// pipeline, where causality and per-sample latency matter) and block helpers.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dsp/kernels/workspace.hpp"

namespace ff::dsp {

/// Streaming causal FIR filter.
///
/// y[n] = sum_k h[k] x[n-k].  The filter owns a circular delay line; each
/// push() consumes one input sample and produces one output sample with zero
/// look-ahead, matching hardware tap-line semantics.
class FirFilter {
 public:
  explicit FirFilter(CVec taps);

  /// Feed one input sample, get the filter output at this instant.
  Complex push(Complex x);

  /// Filter a whole block (stateful: continues from previous pushes).
  CVec process(CSpan x);

  /// Filter a whole block into a caller-owned buffer (stateful). `out` must
  /// be exactly x.size() samples and may alias `x` (in-place filtering): the
  /// input is staged into an extended history+block buffer before any output
  /// is written. This is the allocation-free path the streaming hot loop
  /// uses to reuse one buffer per block.
  ///
  /// Implementation: one vectorized kernels::axpy per tap over the extended
  /// buffer, taps ascending — the exact accumulation order of push(), so a
  /// block-filtered stream is bit-identical to a sample-at-a-time one at any
  /// block size.
  void process_into(CSpan x, CMutSpan out);

  /// Same, with scratch drawn from a caller-owned Workspace (slot 0) —
  /// lets an owning pipeline/element share one arena across stages instead
  /// of each filter holding its own.
  void process_into(CSpan x, CMutSpan out, kernels::Workspace& ws);

  /// Reset the delay line to zeros (taps are kept).
  void reset();

  /// Replace the taps (live retuning, as in the canceller and the drifting
  /// streaming channel). The input history is preserved: when the tap count
  /// changes, the most recent min(old, new) samples carry over into the
  /// resized delay line (older history is zero-padded), so a retune in the
  /// middle of a stream never re-introduces a cold-start transient.
  void set_taps(CVec taps);

  const CVec& taps() const { return taps_; }
  std::size_t order() const { return taps_.size(); }

 private:
  CVec taps_;
  CVec delay_;        // circular buffer of past inputs
  std::size_t head_ = 0;  // index of the most recent sample
  kernels::Workspace ws_;  // scratch for the two-argument process_into
};

/// Stateless linear convolution (output length = x.size() + h.size() - 1).
CVec convolve(CSpan x, CSpan h);

/// Stateless "same-length" causal filtering: y[n] = sum_k h[k] x[n-k],
/// zero initial conditions, output trimmed to x.size().
CVec filter(CSpan h, CSpan x);

/// Allocation-free form of `filter`: writes into `y` (same length as `x`,
/// may alias it), scratch from `ws` slot 0. This is the core the full-duplex
/// cancellation hot path (`CancellationStack::apply_into`) runs on; `filter`
/// and the streaming `FirFilter` block path produce bit-identical samples
/// for identical histories, which the canceller's batch-vs-stream
/// equivalence test relies on.
void filter_into(CSpan h, CSpan x, CMutSpan y, kernels::Workspace& ws);

/// Lowest-level block-convolution core shared by every FIR path (FirFilter,
/// filter_into, the digital canceller's lookahead form):
///   y[i] = sum_k h[k] * ext[(h.size()-1) + i - k]
/// where `ext` holds (h.size()-1) leading context samples followed by (at
/// least) y.size() block samples. Callers choose what the context is — real
/// filter history, zeros, or future samples for an anti-causal filter. One
/// kernels::axpy per tap, taps ascending, so every caller inherits the same
/// accumulation order (and therefore bit-identical results for identical
/// `ext` contents).
void fir_core(CSpan h, const Complex* ext, CMutSpan y);

// ------------------------------------------------------------ float32 family
// Twins of the FIR hot paths for the mixed-precision relay stream path
// (docs/PERFORMANCE.md, "The float32 family"). Same accumulation order as
// the double versions — one f32 kernels::axpy per tap, taps ascending — so
// f32 block filtering is block-size invariant for the same reason the f64
// path is. Design helpers (design_lowpass, taps from a channel model) stay
// double; narrow the taps once with kernels::narrowed at configure time.

/// Float32 fir_core: y[i] = sum_k h[k] * ext[(h.size()-1) + i - k].
void fir_core32(CSpan32 h, const Complex32* ext, CMutSpan32 y);

/// Streaming causal FIR filter on float32 samples — FirFilter restated with
/// an f32 delay line and taps. State layout and semantics (history carry-over
/// on set_taps, the allocation-free process_into path) mirror FirFilter.
class FirFilter32 {
 public:
  explicit FirFilter32(CVec32 taps);

  Complex32 push(Complex32 x);

  /// Block path: `out` must be exactly x.size() samples and may alias `x`.
  /// Scratch comes from the Workspace's f32 slot 0.
  void process_into(CSpan32 x, CMutSpan32 out, kernels::Workspace& ws);

  void reset();

  /// History-preserving live retune (see FirFilter::set_taps).
  void set_taps(CVec32 taps);

  const CVec32& taps() const { return taps_; }
  std::size_t order() const { return taps_.size(); }

 private:
  CVec32 taps_;
  CVec32 delay_;
  std::size_t head_ = 0;
};

/// Frequency response of a sample-spaced FIR at normalized frequency
/// `f_norm` in cycles/sample (i.e. H(e^{j 2 pi f_norm})).
Complex freq_response(CSpan taps, double f_norm);

/// Linear-phase low-pass design (Hamming-windowed sinc): `taps` coefficients
/// with cutoff `cutoff_norm` (cycles/sample, 0 < cutoff <= 0.5), unit DC
/// gain, group delay (taps-1)/2 samples. Odd tap counts give integer delay.
CVec design_lowpass(std::size_t taps, double cutoff_norm);

}  // namespace ff::dsp
