#include "dsp/fft.hpp"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::dsp {
namespace {

// Per-thread Stockham ping-pong scratch (2n: one staging buffer plus one
// pre-copy buffer for odd-stage-count in-place transforms). Thread-local so
// shared cached plans stay immutable and lock-free across workers; grows to
// the largest size a thread has used and is then allocation-free.
Complex* tl_scratch(std::size_t n) {
  thread_local kernels::AlignedCVec buf;
  if (buf.size() < 2 * n) buf.resize(2 * n);
  return buf.data();
}

// Float32 twin of the scratch; separate thread_local so mixed-precision
// callers on one thread don't evict each other's steady-state size.
Complex32* tl_scratch32(std::size_t n) {
  thread_local kernels::AlignedCVec32 buf;
  if (buf.size() < 2 * n) buf.resize(2 * n);
  return buf.data();
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  // A zero request is always an upstream bug: the "next" power of two of
  // nothing would be 1, which then builds a size-1 plan FftPlan rejects
  // with a message pointing at the wrong layer.
  FF_CHECK_MSG(n > 0, "next_power_of_two needs a positive size");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  FF_CHECK_MSG(is_power_of_two(n) && n >= 2, "FFT size must be a power of two >= 2, got " << n);
  bitrev_.resize(n_);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n_) ++log2n;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    bitrev_[i] = r;
  }
  twiddle_.resize(n_ / 2);
  inv_twiddle_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n_);
    twiddle_[k] = {std::cos(ang), std::sin(ang)};
    inv_twiddle_[k] = std::conj(twiddle_[k]);
  }

  // Mixed-radix Stockham schedule: decimate-in-frequency, radix 4 whenever
  // the remaining sub-transform length allows, one radix-2 stage otherwise
  // (exactly once, when log2(n) is odd — it lands last, where m is largest
  // and the stage kernel vectorizes best).
  std::size_t len = n_;
  std::size_t m = 1;
  while (len > 1) {
    const std::size_t radix = (len % 4 == 0) ? 4 : 2;
    const std::size_t bf = len / radix;
    stages_.push_back({radix, bf, m, stage_tw_.size()});
    for (std::size_t j = 0; j < bf; ++j) {
      const double base = -kTwoPi * static_cast<double>(j) / static_cast<double>(len);
      stage_tw_.push_back({std::cos(base), std::sin(base)});
      if (radix == 4) {
        stage_tw_.push_back({std::cos(2.0 * base), std::sin(2.0 * base)});
        stage_tw_.push_back({std::cos(3.0 * base), std::sin(3.0 * base)});
      }
    }
    m *= radix;
    len = bf;
  }
  stage_tw_inv_.resize(stage_tw_.size());
  for (std::size_t i = 0; i < stage_tw_.size(); ++i)
    stage_tw_inv_[i] = std::conj(stage_tw_[i]);
}

const FftPlan& FftPlan::cached(std::size_t n) {
  // Plans are immutable, so only the map itself needs the lock; callers keep
  // using the returned plan lock-free. Entries live for the whole process.
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<FftPlan>>* cache =
      new std::map<std::size_t, std::unique_ptr<FftPlan>>();
  const std::lock_guard<std::mutex> lk(mutex);
  auto& slot = (*cache)[n];
  if (!slot) slot = std::make_unique<FftPlan>(n);
  return *slot;
}

template <bool kInvert>
void FftPlan::transform_radix2(CMutSpan data) const {
  FF_CHECK(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (i < bitrev_[i]) std::swap(data[i], data[bitrev_[i]]);

  const Complex* tw = kInvert ? inv_twiddle_.data() : twiddle_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex u = data[start + k];
        const Complex v = data[start + k + half] * tw[k * stride];
        data[start + k] = u + v;
        data[start + k + half] = u - v;
      }
    }
  }
}

void FftPlan::run_stages(const Complex* src, Complex* dst, Complex* scratch,
                         bool invert) const {
  // Stage s writes dst when s has the same parity as the last stage, else
  // scratch — so the final stage always lands in dst with no trailing copy.
  const std::size_t last_parity = (stages_.size() - 1) % 2;
  const Complex* tw_base = invert ? stage_tw_inv_.data() : stage_tw_.data();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    Complex* out = (s % 2 == last_parity) ? dst : scratch;
    const Complex* tw = tw_base + st.tw_offset;
    if (st.radix == 4)
      kernels::radix4_stage(src, out, tw, st.butterflies, st.m, invert);
    else
      kernels::radix2_stage(src, out, tw, st.butterflies, st.m);
    src = out;
  }
}

void FftPlan::transform_stockham(CMutSpan data, bool invert) const {
  FF_CHECK(data.size() == n_);
  Complex* scratch = tl_scratch(n_);
  if (stages_.size() % 2 == 1) {
    // Odd stage count: stage 0 would write `data` while reading it. Run
    // from a copy instead (the copy moves no arithmetic — bits unchanged).
    Complex* staging = scratch + n_;
    std::memcpy(staging, data.data(), n_ * sizeof(Complex));
    run_stages(staging, data.data(), scratch, invert);
  } else {
    run_stages(data.data(), data.data(), scratch, invert);
  }
}

void FftPlan::forward(CMutSpan data) const { transform_stockham(data, false); }

void FftPlan::inverse(CMutSpan data) const {
  transform_stockham(data, true);
  kernels::scale_real(1.0 / static_cast<double>(n_), data, data);
}

void FftPlan::execute_many(CSpan in, CMutSpan out, std::size_t count,
                           bool invert) const {
  FF_CHECK_MSG(in.size() == count * n_ && out.size() == count * n_,
               "execute_many: spans must hold count*n samples");
  const bool in_place = in.data() == out.data();
  Complex* scratch = tl_scratch(n_);
  const double inv_scale = 1.0 / static_cast<double>(n_);
  for (std::size_t t = 0; t < count; ++t) {
    const Complex* src = in.data() + t * n_;
    CMutSpan dst{out.data() + t * n_, n_};
    if (in_place) {
      transform_stockham(dst, invert);
    } else {
      run_stages(src, dst.data(), scratch, invert);
    }
    if (invert) kernels::scale_real(inv_scale, dst, dst);
  }
}

void FftPlan::forward_radix2(CMutSpan data) const { transform_radix2<false>(data); }

void FftPlan::inverse_radix2(CMutSpan data) const {
  transform_radix2<true>(data);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& x : data) x *= scale;
}

FftPlan32::FftPlan32(std::size_t n) : n_(n) {
  FF_CHECK_MSG(is_power_of_two(n) && n >= 2, "FFT size must be a power of two >= 2, got " << n);
  // Same schedule as FftPlan; twiddle angles evaluated in double and
  // narrowed once, so the f32 tables never depend on float libm variants.
  std::size_t len = n_;
  std::size_t m = 1;
  while (len > 1) {
    const std::size_t radix = (len % 4 == 0) ? 4 : 2;
    const std::size_t bf = len / radix;
    stages_.push_back({radix, bf, m, stage_tw_.size()});
    for (std::size_t j = 0; j < bf; ++j) {
      const double base = -kTwoPi * static_cast<double>(j) / static_cast<double>(len);
      stage_tw_.push_back({static_cast<float>(std::cos(base)),
                           static_cast<float>(std::sin(base))});
      if (radix == 4) {
        stage_tw_.push_back({static_cast<float>(std::cos(2.0 * base)),
                             static_cast<float>(std::sin(2.0 * base))});
        stage_tw_.push_back({static_cast<float>(std::cos(3.0 * base)),
                             static_cast<float>(std::sin(3.0 * base))});
      }
    }
    m *= radix;
    len = bf;
  }
  stage_tw_inv_.resize(stage_tw_.size());
  for (std::size_t i = 0; i < stage_tw_.size(); ++i)
    stage_tw_inv_[i] = std::conj(stage_tw_[i]);
}

const FftPlan32& FftPlan32::cached(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<FftPlan32>>* cache =
      new std::map<std::size_t, std::unique_ptr<FftPlan32>>();
  const std::lock_guard<std::mutex> lk(mutex);
  auto& slot = (*cache)[n];
  if (!slot) slot = std::make_unique<FftPlan32>(n);
  return *slot;
}

void FftPlan32::run_stages(const Complex32* src, Complex32* dst,
                           Complex32* scratch, bool invert) const {
  const std::size_t last_parity = (stages_.size() - 1) % 2;
  const Complex32* tw_base = invert ? stage_tw_inv_.data() : stage_tw_.data();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    Complex32* out = (s % 2 == last_parity) ? dst : scratch;
    const Complex32* tw = tw_base + st.tw_offset;
    if (st.radix == 4)
      kernels::radix4_stage(src, out, tw, st.butterflies, st.m, invert);
    else
      kernels::radix2_stage(src, out, tw, st.butterflies, st.m);
    src = out;
  }
}

void FftPlan32::transform_stockham(CMutSpan32 data, bool invert) const {
  FF_CHECK(data.size() == n_);
  Complex32* scratch = tl_scratch32(n_);
  if (stages_.size() % 2 == 1) {
    Complex32* staging = scratch + n_;
    std::memcpy(staging, data.data(), n_ * sizeof(Complex32));
    run_stages(staging, data.data(), scratch, invert);
  } else {
    run_stages(data.data(), data.data(), scratch, invert);
  }
}

void FftPlan32::forward(CMutSpan32 data) const { transform_stockham(data, false); }

void FftPlan32::inverse(CMutSpan32 data) const {
  transform_stockham(data, true);
  kernels::scale_real(1.0f / static_cast<float>(n_), data, data);
}

void FftPlan32::execute_many(CSpan32 in, CMutSpan32 out, std::size_t count,
                             bool invert) const {
  FF_CHECK_MSG(in.size() == count * n_ && out.size() == count * n_,
               "execute_many: spans must hold count*n samples");
  const bool in_place = in.data() == out.data();
  Complex32* scratch = tl_scratch32(n_);
  const float inv_scale = 1.0f / static_cast<float>(n_);
  for (std::size_t t = 0; t < count; ++t) {
    const Complex32* src = in.data() + t * n_;
    CMutSpan32 dst{out.data() + t * n_, n_};
    if (in_place) {
      transform_stockham(dst, invert);
    } else {
      run_stages(src, dst.data(), scratch, invert);
    }
    if (invert) kernels::scale_real(inv_scale, dst, dst);
  }
}

CVec fft(CSpan x) {
  FF_CHECK_MSG(!x.empty(), "fft: input must be non-empty");
  CVec out(x.begin(), x.end());
  FftPlan::cached(out.size()).forward(out);
  return out;
}

CVec ifft(CSpan x) {
  FF_CHECK_MSG(!x.empty(), "ifft: input must be non-empty");
  CVec out(x.begin(), x.end());
  FftPlan::cached(out.size()).inverse(out);
  return out;
}

CVec fftshift(CSpan x) {
  CVec out(x.size());
  const std::size_t h = (x.size() + 1) / 2;  // elements in the first half
  for (std::size_t i = 0; i < x.size(); ++i) out[(i + x.size() - h) % x.size()] = x[i];
  return out;
}

CVec ifftshift(CSpan x) {
  CVec out(x.size());
  const std::size_t h = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[(i + x.size() - h) % x.size()] = x[i];
  return out;
}

CVec fft_convolve(CSpan a, CSpan b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  // Scratch spectra come from per-thread workspace slots: in steady state
  // (e.g. the canceller's repeated link convolutions) only the returned
  // vector allocates.
  thread_local kernels::Workspace ws;
  CMutSpan fa = ws.get(0, n);
  CMutSpan fb = ws.get(1, n);
  std::copy(a.begin(), a.end(), fa.begin());
  std::fill(fa.begin() + static_cast<std::ptrdiff_t>(a.size()), fa.end(), Complex{});
  std::copy(b.begin(), b.end(), fb.begin());
  std::fill(fb.begin() + static_cast<std::ptrdiff_t>(b.size()), fb.end(), Complex{});
  const FftPlan& plan = FftPlan::cached(n);
  plan.forward(fa);
  plan.forward(fb);
  kernels::cmul(fa, fb, fa);
  plan.inverse(fa);
  return CVec(fa.begin(), fa.begin() + static_cast<std::ptrdiff_t>(out_len));
}

}  // namespace ff::dsp
