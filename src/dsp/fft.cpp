#include "dsp/fft.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  // A zero request is always an upstream bug: the "next" power of two of
  // nothing would be 1, which then builds a size-1 plan FftPlan rejects
  // with a message pointing at the wrong layer.
  FF_CHECK_MSG(n > 0, "next_power_of_two needs a positive size");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  FF_CHECK_MSG(is_power_of_two(n) && n >= 2, "FFT size must be a power of two >= 2, got " << n);
  bitrev_.resize(n_);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n_) ++log2n;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    bitrev_[i] = r;
  }
  twiddle_.resize(n_ / 2);
  inv_twiddle_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n_);
    twiddle_[k] = {std::cos(ang), std::sin(ang)};
    inv_twiddle_[k] = std::conj(twiddle_[k]);
  }
}

const FftPlan& FftPlan::cached(std::size_t n) {
  // Plans are immutable, so only the map itself needs the lock; callers keep
  // using the returned plan lock-free. Entries live for the whole process.
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<FftPlan>>* cache =
      new std::map<std::size_t, std::unique_ptr<FftPlan>>();
  const std::lock_guard<std::mutex> lk(mutex);
  auto& slot = (*cache)[n];
  if (!slot) slot = std::make_unique<FftPlan>(n);
  return *slot;
}

template <bool kInvert>
void FftPlan::transform(CMutSpan data) const {
  FF_CHECK(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (i < bitrev_[i]) std::swap(data[i], data[bitrev_[i]]);

  const Complex* tw = kInvert ? inv_twiddle_.data() : twiddle_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex u = data[start + k];
        const Complex v = data[start + k + half] * tw[k * stride];
        data[start + k] = u + v;
        data[start + k + half] = u - v;
      }
    }
  }
}

void FftPlan::forward(CMutSpan data) const { transform<false>(data); }

void FftPlan::inverse(CMutSpan data) const {
  transform<true>(data);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& x : data) x *= scale;
}

CVec fft(CSpan x) {
  FF_CHECK_MSG(!x.empty(), "fft: input must be non-empty");
  CVec out(x.begin(), x.end());
  FftPlan::cached(out.size()).forward(out);
  return out;
}

CVec ifft(CSpan x) {
  FF_CHECK_MSG(!x.empty(), "ifft: input must be non-empty");
  CVec out(x.begin(), x.end());
  FftPlan::cached(out.size()).inverse(out);
  return out;
}

CVec fftshift(CSpan x) {
  CVec out(x.size());
  const std::size_t h = (x.size() + 1) / 2;  // elements in the first half
  for (std::size_t i = 0; i < x.size(); ++i) out[(i + x.size() - h) % x.size()] = x[i];
  return out;
}

CVec ifftshift(CSpan x) {
  CVec out(x.size());
  const std::size_t h = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[(i + x.size() - h) % x.size()] = x[i];
  return out;
}

CVec fft_convolve(CSpan a, CSpan b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  CVec fa(n), fb(n);
  std::copy(a.begin(), a.end(), fa.begin());
  std::copy(b.begin(), b.end(), fb.begin());
  const FftPlan& plan = FftPlan::cached(n);
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  plan.inverse(fa);
  fa.resize(out_len);
  return fa;
}

}  // namespace ff::dsp
