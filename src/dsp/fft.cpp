#include "dsp/fft.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  FF_CHECK_MSG(is_power_of_two(n) && n >= 2, "FFT size must be a power of two >= 2, got " << n);
  bitrev_.resize(n_);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n_) ++log2n;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    bitrev_[i] = r;
  }
  twiddle_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n_);
    twiddle_[k] = {std::cos(ang), std::sin(ang)};
  }
}

void FftPlan::transform(CMutSpan data, bool invert) const {
  FF_CHECK(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (i < bitrev_[i]) std::swap(data[i], data[bitrev_[i]]);

  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = twiddle_[k * stride];
        if (invert) w = std::conj(w);
        const Complex u = data[start + k];
        const Complex v = data[start + k + half] * w;
        data[start + k] = u + v;
        data[start + k + half] = u - v;
      }
    }
  }
}

void FftPlan::forward(CMutSpan data) const { transform(data, /*invert=*/false); }

void FftPlan::inverse(CMutSpan data) const {
  transform(data, /*invert=*/true);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& x : data) x *= scale;
}

CVec fft(CSpan x) {
  CVec out(x.begin(), x.end());
  FftPlan(out.size()).forward(out);
  return out;
}

CVec ifft(CSpan x) {
  CVec out(x.begin(), x.end());
  FftPlan(out.size()).inverse(out);
  return out;
}

CVec fftshift(CSpan x) {
  CVec out(x.size());
  const std::size_t h = (x.size() + 1) / 2;  // elements in the first half
  for (std::size_t i = 0; i < x.size(); ++i) out[(i + x.size() - h) % x.size()] = x[i];
  return out;
}

CVec ifftshift(CSpan x) {
  CVec out(x.size());
  const std::size_t h = x.size() / 2;
  for (std::size_t i = 0; i < x.size(); ++i) out[(i + x.size() - h) % x.size()] = x[i];
  return out;
}

CVec fft_convolve(CSpan a, CSpan b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  CVec fa(n), fb(n);
  std::copy(a.begin(), a.end(), fa.begin());
  std::copy(b.begin(), b.end(), fb.begin());
  const FftPlan plan(n);
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  plan.inverse(fa);
  fa.resize(out_len);
  return fa;
}

}  // namespace ff::dsp
