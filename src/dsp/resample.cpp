#include "dsp/resample.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"

namespace ff::dsp {

CVec resample_kernel(std::size_t factor, std::size_t half_width) {
  FF_CHECK(factor >= 1);
  FF_CHECK_MSG(half_width >= 1,
               "resample half_width must be >= 1: a zero-width kernel degenerates to "
               "a passthrough that leaves the stuffed zeros in the output");
  const auto span = static_cast<long>(half_width * factor);
  CVec taps;
  taps.reserve(static_cast<std::size_t>(2 * span + 1));
  for (long m = -span; m <= span; ++m) {
    const double x = static_cast<double>(m) / static_cast<double>(factor);
    const double s = std::abs(x) < 1e-12 ? 1.0 : std::sin(kPi * x) / (kPi * x);
    const double w =
        0.54 + 0.46 * std::cos(kPi * static_cast<double>(m) / (static_cast<double>(span) + 1.0));
    taps.push_back(Complex{s * w, 0.0});
  }
  return taps;
}

std::size_t resample_group_delay(std::size_t factor, std::size_t half_width) {
  return half_width * factor;
}

CVec upsample(CSpan x, std::size_t factor, std::size_t half_width) {
  FF_CHECK(factor >= 1);
  if (factor == 1) return CVec(x.begin(), x.end());
  CVec stuffed(x.size() * factor, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) stuffed[i * factor] = x[i];
  const CVec kernel = resample_kernel(factor, half_width);
  CVec out = filter(kernel, stuffed);  // passband gain 1 after zero-stuffing
  return out;
}

CVec downsample(CSpan x, std::size_t factor, std::size_t half_width) {
  FF_CHECK(factor >= 1);
  if (factor == 1) return CVec(x.begin(), x.end());
  const CVec kernel = resample_kernel(factor, half_width);
  CVec filtered = filter(kernel, x);
  CVec out(x.size() / factor);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = filtered[i * factor] / static_cast<double>(factor);
  return out;
}

}  // namespace ff::dsp
