#include "net/drift.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ff::net {

DriftingChannel::DriftingChannel(channel::MultipathChannel initial, double coherence_time_s)
    : initial_(initial), current_(std::move(initial)), coherence_time_s_(coherence_time_s) {
  FF_CHECK(coherence_time_s_ > 0.0);
}

void DriftingChannel::advance(double dt_s, Rng& rng) {
  FF_CHECK(dt_s >= 0.0);
  if (dt_s == 0.0 || current_.empty()) return;
  const double rho = std::exp(-dt_s / coherence_time_s_);
  const double innovation = std::sqrt(std::max(1.0 - rho * rho, 0.0));
  std::vector<channel::PathTap> taps = current_.taps();
  const auto& init_taps = initial_.taps();
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double sigma = std::abs(init_taps[i].amp);
    taps[i].amp = rho * taps[i].amp + innovation * sigma * rng.cgaussian(1.0);
  }
  current_ = channel::MultipathChannel(std::move(taps), current_.carrier_hz());
}

double DriftingChannel::correlation_with_initial() const {
  Complex acc{0.0, 0.0};
  double pa = 0.0, pb = 0.0;
  const auto& a = current_.taps();
  const auto& b = initial_.taps();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::conj(a[i].amp) * b[i].amp;
    pa += std::norm(a[i].amp);
    pb += std::norm(b[i].amp);
  }
  if (pa <= 0.0 || pb <= 0.0) return 0.0;
  return std::abs(acc) / std::sqrt(pa * pb);
}

}  // namespace ff::net
