// Packet-level simulation of a deployed FastForward network.
//
// One AP, one FF relay, N unmodified clients, all SISO (the deployment
// machinery is antenna-count agnostic). The simulator exercises the whole
// Sec. 4.2 + Sec. 6 control plane end to end:
//
//   * every `sounding_interval` the AP sounds and polls; clients reply with
//     their AP->client CSI, which the relay snoops (and it measures the
//     relay->client channel from the same replies and AP->relay from the
//     AP's packets) — all through its ChannelBook with realistic staleness;
//   * downlink data packets carry the per-client PN signature prefix; the
//     relay runs the REAL correlator on synthesized samples and only
//     forwards on a match;
//   * uplink packets are identified with the REAL STF channel fingerprinter;
//     the downlink filter is reused by reciprocity (Sec. 4.2, footnote 1:
//     the amplification is re-decided per direction);
//   * channels drift continuously, so stale CSI genuinely mis-rotates the
//     constructive filter.
//
// Rates are ideal-PHY rates (the paper's metric) computed against the TRUE
// current channels while the relay designs from its estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/floorplan.hpp"
#include "common/rng.hpp"
#include "eval/faults.hpp"
#include "eval/testbed.hpp"
#include "ident/pn_detector.hpp"
#include "ident/stf_fingerprint.hpp"
#include "net/drift.hpp"
#include "relay/channel_book.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::net {

struct NetworkConfig {
  std::size_t n_clients = 4;
  double duration_s = 1.0;
  double sounding_interval_s = 0.05;  // the paper's 50 ms
  double packet_interval_s = 1e-3;    // one data packet per ms, round robin
  double downlink_fraction = 0.7;
  double coherence_time_s = 0.5;      // indoor pedestrian-speed drift
  double csi_noise_db = -30.0;        // estimation error on snooped CSI
  std::uint64_t seed = 1;
  channel::FloorPlan plan = channel::FloorPlan::paper_home();
  eval::TestbedConfig testbed{};      // antennas forced to 1 by the simulator
  /// Optional metrics sink: run_network records sounding/forward/silence
  /// counters (`net.soundings`, `net.relay.forwards`, `net.relay.silences`),
  /// identification tallies, and the whole-run wall clock. Default nullptr.
  MetricsRegistry* metrics = nullptr;
  /// Optional fault injector (eval/faults.hpp): sounding rounds for which
  /// sounding_fails() fires are lost outright (no CSI reaches the relay's
  /// book, estimates age toward staleness) and every snooped estimate is
  /// perturbed by estimate_sigma. The relay's correct response to both is
  /// silence, never a crash. Default nullptr = clean control plane.
  eval::FaultInjector* faults = nullptr;
};

struct ClientReport {
  std::uint32_t id = 0;
  double dl_ap_only_mbps = 0.0;   // mean downlink rate without the relay
  double dl_with_ff_mbps = 0.0;   // mean downlink rate in the FF network
  double ul_ap_only_mbps = 0.0;
  double ul_with_ff_mbps = 0.0;
  std::size_t dl_packets = 0;
  std::size_t ul_packets = 0;
  std::size_t dl_identified = 0;  // PN signature hits
  std::size_t ul_identified = 0;  // fingerprint hits
  std::size_t ul_misidentified = 0;
};

struct NetworkReport {
  std::vector<ClientReport> clients;
  std::size_t soundings = 0;
  std::size_t soundings_lost = 0;  // rounds killed by the fault injector
  std::size_t relay_forwards = 0;  // packets the relay actually assisted
  std::size_t relay_silences = 0;  // packets it (correctly) stayed out of

  double total_dl_gain() const;
  double total_ul_gain() const;
};

/// Run the packet-level simulation.
NetworkReport run_network(const NetworkConfig& cfg);

}  // namespace ff::net
