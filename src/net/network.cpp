#include "net/network.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/noise.hpp"
#include "dsp/sequence.hpp"
#include "phy/frame.hpp"
#include "phy/mcs.hpp"
#include "phy/preamble.hpp"
#include "relay/cnf_design.hpp"
#include "relay/design.hpp"

namespace ff::net {

namespace {

/// Per-subcarrier responses of a channel, with the relay chain's delay ramp
/// folded into relay->destination legs when requested.
CVec responses(const channel::MultipathChannel& ch, const std::vector<double>& freqs,
               double chain_delay_s = 0.0) {
  CVec out(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    out[i] = ch.response(freqs[i]);
    if (chain_delay_s > 0.0) {
      const double ang = -kTwoPi * freqs[i] * chain_delay_s;
      out[i] *= Complex{std::cos(ang), std::sin(ang)};
    }
  }
  return out;
}

/// Snooped/estimated CSI: the true response plus estimation noise.
CVec estimate(const CVec& truth, double csi_noise_db, Rng& rng) {
  CVec out = truth;
  double p = dsp::mean_power(out);
  for (auto& h : out) h += rng.cgaussian(p * power_from_db(csi_noise_db));
  return out;
}

/// SISO ideal-PHY rate for per-subcarrier responses.
double direct_rate_mbps(const CVec& h, double tx_dbm, double noise_dbm) {
  return phy::siso_throughput_mbps(h, power_from_db(tx_dbm), power_from_db(noise_dbm));
}

/// Build a SISO RelayLink from response vectors.
relay::RelayLink make_link(const CVec& h_sd, const CVec& h_sr, const CVec& h_rd,
                           const eval::TestbedConfig& tb) {
  relay::RelayLink link;
  for (std::size_t i = 0; i < h_sd.size(); ++i) {
    link.h_sd.push_back(linalg::Matrix{{h_sd[i]}});
    link.h_sr.push_back(linalg::Matrix{{h_sr[i]}});
    link.h_rd.push_back(linalg::Matrix{{h_rd[i]}});
  }
  link.source_power_dbm = tb.ap_power_dbm;
  link.dest_noise_dbm = tb.noise_floor_dbm;
  link.relay_noise_dbm = tb.relay_noise_dbm;
  link.cancellation_db = tb.cancellation_db;
  return link;
}

/// Rate when the relay forwards with a (possibly stale) design, evaluated
/// against the TRUE channels.
double relayed_rate_true(const relay::RelayDesign& design, const CVec& h_sd_true,
                         const CVec& h_sr_true, const CVec& h_rd_true,
                         const eval::TestbedConfig& tb) {
  const double a = design.amp_linear_eff;
  const double n_floor = power_from_db(tb.noise_floor_dbm);
  const double n_relay =
      power_from_db(tb.relay_noise_dbm) +
      power_from_db(tb.ap_power_dbm - tb.cancellation_db);  // thermal + SI residual
  const double tx = power_from_db(tb.ap_power_dbm);

  std::vector<double> snr_db(h_sd_true.size());
  for (std::size_t i = 0; i < h_sd_true.size(); ++i) {
    const Complex f = design.filter[i](0, 0);
    const Complex h_eff = h_sd_true[i] + h_rd_true[i] * f * a * h_sr_true[i];
    const double injected = std::norm(h_rd_true[i] * f) * a * a * n_relay;
    const double p = std::norm(h_eff) * tx;
    snr_db[i] = p > 0.0 ? db_from_power(p / (n_floor + injected)) : -100.0;
  }
  return phy::rate_from_snr_db(phy::effective_snr_db(snr_db));
}

struct ClientState {
  DriftingChannel sd;  // AP -> client
  DriftingChannel rd;  // relay -> client (and, reciprocally, client -> relay)
};

}  // namespace

double NetworkReport::total_dl_gain() const {
  double ap = 0.0, ff = 0.0;
  for (const auto& c : clients) {
    ap += c.dl_ap_only_mbps;
    ff += c.dl_with_ff_mbps;
  }
  return ap > 0.0 ? ff / ap : 0.0;
}

double NetworkReport::total_ul_gain() const {
  double ap = 0.0, ff = 0.0;
  for (const auto& c : clients) {
    ap += c.ul_ap_only_mbps;
    ff += c.ul_with_ff_mbps;
  }
  return ap > 0.0 ? ff / ap : 0.0;
}

NetworkReport run_network(const NetworkConfig& cfg) {
  FF_CHECK(cfg.n_clients >= 1);
  FF_CHECK_MSG(std::isfinite(cfg.duration_s) && cfg.duration_s > 0.0,
               "NetworkConfig.duration_s must be positive and finite");
  FF_CHECK_MSG(std::isfinite(cfg.sounding_interval_s) && cfg.sounding_interval_s > 0.0,
               "NetworkConfig.sounding_interval_s must be positive and finite");
  FF_CHECK_MSG(std::isfinite(cfg.packet_interval_s) && cfg.packet_interval_s > 0.0,
               "NetworkConfig.packet_interval_s must be positive and finite — a zero "
               "interval would spin the event loop forever");
  FF_CHECK_MSG(cfg.downlink_fraction >= 0.0 && cfg.downlink_fraction <= 1.0,
               "NetworkConfig.downlink_fraction must be in [0, 1]");
  MetricsRegistry::ScopedTimer run_timer(cfg.metrics, "net.run.wall_us");
  Rng rng(cfg.seed);

  eval::TestbedConfig tb = cfg.testbed;
  tb.antennas = 1;
  const auto freqs = tb.ofdm.used_subcarrier_freqs();
  const phy::OfdmParams& params = tb.ofdm;

  // ---- placement and initial channels ----
  const eval::Placement placement = eval::make_placement(cfg.plan);
  channel::PropagationConfig prop = tb.prop;
  prop.carrier_hz = params.carrier_hz;
  const channel::IndoorPropagation model(cfg.plan, prop);

  DriftingChannel sr(model.siso_link(placement.ap, placement.relay, rng),
                     cfg.coherence_time_s);
  std::vector<ClientState> clients;
  std::vector<channel::Point> spots;
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    const auto spot = eval::random_client_location(cfg.plan, rng);
    spots.push_back(spot);
    clients.push_back({DriftingChannel(model.siso_link(placement.ap, spot, rng),
                                       cfg.coherence_time_s),
                       DriftingChannel(model.siso_link(placement.relay, spot, rng),
                                       cfg.coherence_time_s)});
  }

  // ---- relay control plane ----
  relay::ChannelBook book(4.0 * cfg.sounding_interval_s);
  ident::PnSignatureDetector pn_detector;
  const std::size_t sig_half = phy::signature_prefix_len(params) / 2;
  for (std::uint32_t c = 1; c <= cfg.n_clients; ++c) pn_detector.register_client(c, sig_half);
  ident::StfFingerprinter fingerprinter(params);
  relay::DesignOptions design_opts;
  design_opts.f_grid_hz = freqs;

  const CVec stf = phy::stf_time(params);
  NetworkReport report;
  report.clients.resize(cfg.n_clients);
  for (std::uint32_t c = 0; c < cfg.n_clients; ++c) report.clients[c].id = c + 1;

  double last_sounding = -1e9;
  std::size_t packet_index = 0;

  for (double t = 0.0; t < cfg.duration_s; t += cfg.packet_interval_s) {
    // Channels drift between events.
    sr.advance(cfg.packet_interval_s, rng);
    for (auto& c : clients) {
      c.sd.advance(cfg.packet_interval_s, rng);
      c.rd.advance(cfg.packet_interval_s, rng);
    }

    // ---- sounding / polling (Sec. 4.2) ----
    if (t - last_sounding >= cfg.sounding_interval_s) {
      last_sounding = t;
      ++report.soundings;
      if (cfg.faults && cfg.faults->sounding_fails()) {
        // The round collided: no CSI reaches the book, which keeps aging
        // toward staleness — the relay falls back to silence, not a crash.
        ++report.soundings_lost;
      } else {
        // Snooped/estimated CSI, optionally degraded by the fault injector.
        const auto snoop = [&](const CVec& h_true) {
          CVec e = estimate(h_true, cfg.csi_noise_db, rng);
          return cfg.faults ? cfg.faults->perturb_estimate(e) : e;
        };
        const CVec h_sr_true = responses(sr.now(), freqs);
        for (std::uint32_t c = 0; c < cfg.n_clients; ++c) {
          const CVec h_sd_true = responses(clients[c].sd.now(), freqs);
          const CVec h_rd_true =
              responses(clients[c].rd.now(), freqs, tb.relay_chain_delay_s);
          // Client's CSI report of the AP->client channel, snooped by the relay.
          book.update_source_client(c + 1, snoop(h_sd_true), t);
          // The relay measures relay<->client from the poll reply...
          book.update_relay_client(c + 1, snoop(h_rd_true), t);
          // ...and AP->relay from the AP's own sounding packet.
          book.update_source_relay(c + 1, snoop(h_sr_true), t);
          // Fingerprint enrollment from the identified poll reply.
          CVec stf_rx = clients[c].rd.now().apply(stf, params.sample_rate_hz);
          const double p = dsp::mean_power(stf_rx);
          dsp::add_awgn(rng, stf_rx, p * power_from_db(-35.0));
          fingerprinter.enroll_from_stf(c + 1, stf_rx);
        }
      }
    }

    // ---- one data packet, round robin, random direction ----
    const std::uint32_t c = static_cast<std::uint32_t>(packet_index++ % cfg.n_clients);
    ClientReport& cr = report.clients[c];
    const bool downlink = rng.bernoulli(cfg.downlink_fraction);

    const CVec h_sd_true = responses(clients[c].sd.now(), freqs);
    const CVec h_sr_true = responses(sr.now(), freqs);
    const CVec h_rd_true = responses(clients[c].rd.now(), freqs, tb.relay_chain_delay_s);

    if (downlink) {
      ++cr.dl_packets;
      const double ap_rate = direct_rate_mbps(h_sd_true, tb.ap_power_dbm, tb.noise_floor_dbm);
      cr.dl_ap_only_mbps += ap_rate;

      // The relay sees the PN prefix through the AP->relay channel.
      CVec prefix = dsp::pn_signature(c + 1, sig_half);
      prefix.insert(prefix.end(), prefix.begin(), prefix.end());
      CVec at_relay = sr.now().apply(prefix, params.sample_rate_hz);
      dsp::set_mean_power(at_relay, power_from_db(tb.ap_power_dbm + sr.now().power_gain_db()));
      dsp::add_awgn(rng, at_relay, power_from_db(tb.relay_noise_dbm));
      const auto hit = pn_detector.detect(at_relay);

      double ff_rate = ap_rate;
      if (hit && book.ready(hit->client, t)) {
        ++cr.dl_identified;
        ++report.relay_forwards;
        const auto link = make_link(*book.source_client(hit->client, t),
                                    *book.source_relay(hit->client, t),
                                    *book.relay_client(hit->client, t), tb);
        const auto design = relay::design_ff_relay(link, design_opts);
        ff_rate = relayed_rate_true(design, h_sd_true, h_sr_true, h_rd_true, tb);
      } else {
        ++report.relay_silences;
      }
      cr.dl_with_ff_mbps += ff_rate;
    } else {
      ++cr.ul_packets;
      // Uplink: client -> AP; by reciprocity the direct channel response is
      // the same, the hops swap roles.
      const double ap_rate = direct_rate_mbps(h_sd_true, tb.ap_power_dbm, tb.noise_floor_dbm);
      cr.ul_ap_only_mbps += ap_rate;

      // The relay fingerprints the client's STF (client->relay channel).
      CVec stf_rx = clients[c].rd.now().apply(stf, params.sample_rate_hz);
      const double p = dsp::mean_power(stf_rx);
      dsp::add_awgn(rng, stf_rx, p * power_from_db(-rng.uniform(20.0, 30.0)));
      const auto match = fingerprinter.identify(stf_rx);

      double ff_rate = ap_rate;
      if (match && book.ready(match->client, t)) {
        if (match->client == c + 1) ++cr.ul_identified;
        else ++cr.ul_misidentified;
        ++report.relay_forwards;
        // Same constructive filter as downlink (reciprocity/commutativity);
        // hops swapped, amplification re-decided for this direction.
        const auto ul_link = make_link(*book.source_client(match->client, t),
                                       *book.relay_client(match->client, t),
                                       *book.source_relay(match->client, t), tb);
        const auto design = relay::design_ff_relay(ul_link, design_opts);
        ff_rate = relayed_rate_true(design, h_sd_true, h_rd_true, h_sr_true, tb);
      } else {
        ++report.relay_silences;
      }
      cr.ul_with_ff_mbps += ff_rate;
    }
  }

  // Averages.
  for (auto& c : report.clients) {
    if (c.dl_packets > 0) {
      c.dl_ap_only_mbps /= static_cast<double>(c.dl_packets);
      c.dl_with_ff_mbps /= static_cast<double>(c.dl_packets);
    }
    if (c.ul_packets > 0) {
      c.ul_ap_only_mbps /= static_cast<double>(c.ul_packets);
      c.ul_with_ff_mbps /= static_cast<double>(c.ul_packets);
    }
  }
  if (cfg.metrics) {
    // Mirror the report's control-plane tallies into the shared sink so a
    // --metrics run captures the relay's forwarding behaviour alongside the
    // DSP-layer metrics. The simulation is serial, so counters recorded
    // here are trivially deterministic.
    metrics::add(cfg.metrics, "net.runs");
    metrics::add(cfg.metrics, "net.soundings", report.soundings);
    metrics::add(cfg.metrics, "net.soundings_lost", report.soundings_lost);
    metrics::add(cfg.metrics, "net.relay.forwards", report.relay_forwards);
    metrics::add(cfg.metrics, "net.relay.silences", report.relay_silences);
    std::size_t dl = 0, ul = 0, dl_hit = 0, ul_hit = 0, ul_miss = 0;
    for (const auto& c : report.clients) {
      dl += c.dl_packets;
      ul += c.ul_packets;
      dl_hit += c.dl_identified;
      ul_hit += c.ul_identified;
      ul_miss += c.ul_misidentified;
    }
    metrics::add(cfg.metrics, "net.packets.dl", dl);
    metrics::add(cfg.metrics, "net.packets.ul", ul);
    metrics::add(cfg.metrics, "net.ident.dl_hits", dl_hit);
    metrics::add(cfg.metrics, "net.ident.ul_hits", ul_hit);
    metrics::add(cfg.metrics, "net.ident.ul_misses", ul_miss);
  }
  return report;
}

}  // namespace ff::net
