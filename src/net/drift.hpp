// Temporal channel dynamics for the system-level simulator.
//
// The relay's channel knowledge ages: Sec. 4.2 refreshes it via the AP's
// 50 ms sounding cadence precisely because indoor channels drift (people
// move, doors open). Each propagation path's complex amplitude evolves as a
// stationary AR(1) process with the configured coherence time, so a filter
// designed from t-old estimates mis-rotates by an amount that grows with
// staleness — the effect the sounding interval has to outrun.
#pragma once

#include "channel/multipath.hpp"
#include "common/rng.hpp"

namespace ff::net {

class DriftingChannel {
 public:
  DriftingChannel() = default;
  DriftingChannel(channel::MultipathChannel initial, double coherence_time_s);

  /// Advance time by dt: every tap amplitude takes an AR(1) step
  ///   a <- rho a + sqrt(1 - rho^2) a0 w,  rho = exp(-dt / Tc),
  /// which keeps the per-tap power stationary at its initial value.
  void advance(double dt_s, Rng& rng);

  /// The channel as it is right now.
  const channel::MultipathChannel& now() const { return current_; }

  /// Correlation with the initial state (diagnostic).
  double correlation_with_initial() const;

 private:
  channel::MultipathChannel initial_;
  channel::MultipathChannel current_;
  double coherence_time_s_ = 0.5;
};

}  // namespace ff::net
