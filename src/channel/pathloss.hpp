// Large-scale path loss models.
//
// The paper motivates FF with indoor propagation loss (Fig. 1): a 2000 sq ft
// home sees 10-15 dB SNR in the middle and 0-6 dB at the edge with a corner
// AP. Free-space loss plus per-wall attenuation plus log-normal shadowing
// reproduces those regimes; the exponents/wall losses follow the usual
// 2.4 GHz indoor measurement literature.
#pragma once

#include "common/rng.hpp"

namespace ff::channel {

/// Free-space path loss in dB at distance `d_m` (meters), carrier `f_hz`.
double free_space_loss_db(double d_m, double f_hz);

/// Log-distance model: FSPL at d0=1m plus 10*n*log10(d) with exponent `n`.
double log_distance_loss_db(double d_m, double f_hz, double exponent);

struct ShadowingModel {
  double sigma_db = 3.0;  // log-normal standard deviation

  /// Draw one shadowing realization (dB, zero mean).
  double sample(Rng& rng) const { return sigma_db * rng.gaussian(); }
};

/// Typical material attenuations at 2.4 GHz (one traversal).
inline constexpr double kDrywallLossDb = 3.0;
inline constexpr double kBrickWallLossDb = 8.0;
inline constexpr double kConcreteWallLossDb = 12.0;

}  // namespace ff::channel
