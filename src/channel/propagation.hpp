// Indoor propagation model: floor-plan geometry -> MIMO multipath channels.
//
// This is the software stand-in for the paper's physical testbed (and for
// the commercial ray-propagation software used for Fig. 1/2). For a TX/RX
// placement it synthesizes:
//   - the direct ray: free-space loss + per-wall attenuation + shadowing,
//   - first-order specular wall reflections (image method),
//   - a configurable sprinkle of diffuse scatterers (late, weak taps),
// each with uniform-linear-array steering vectors derived from the ray's
// departure/arrival angles, so MIMO rank emerges from geometry: locations
// reached through a single door/corridor see one dominant angle and hence a
// rank-deficient channel (the paper's pinhole effect).
#pragma once

#include "channel/floorplan.hpp"
#include "channel/mimo.hpp"
#include "common/rng.hpp"

namespace ff::channel {

struct PropagationConfig {
  double carrier_hz = 2.45e9;
  double antenna_spacing_wavelengths = 0.5;
  /// Dual-slope indoor path loss: near free-space decay out to the
  /// breakpoint, much faster beyond it (clutter, floor/furniture Fresnel
  /// blockage); wall crossings add their losses on top. Together with
  /// system_loss_db this calibrates the Fig. 1 home to the paper's regime:
  /// ~25-30 dB near the AP, 10-15 dB mid-home, 0-6 dB at the edge
  /// (20 dBm source, -90 dBm noise floor).
  double path_loss_exponent_near = 2.0;
  double path_loss_exponent_far = 3.6;
  double path_loss_breakpoint_m = 4.0;
  /// Fixed excess loss (device antennas, clutter, front-end) on every ray.
  double system_loss_db = 40.0;
  double shadowing_sigma_db = 2.5;
  int diffuse_scatterers = 3;           // extra late weak taps per link
  double diffuse_power_db = -18.0;      // mean power of a diffuse tap vs direct ray
  double diffuse_delay_spread_s = 60e-9;  // exponential tail of extra delay
  double angle_jitter_rad = 0.05;       // per-path steering angle perturbation
  /// Angular spread of paths on obstructed (through-wall) links: the RF
  /// pinhole collapses arrival bearings to a narrow cone, degrading rank.
  double keyhole_angle_spread_rad = 0.12;
  double min_path_amp = 1e-9;           // drop paths below -180 dB
};

class IndoorPropagation {
 public:
  IndoorPropagation(FloorPlan plan, PropagationConfig cfg = {});

  const FloorPlan& plan() const { return plan_; }
  const PropagationConfig& config() const { return cfg_; }

  /// Synthesize the channel from `tx` (n_tx antennas) to `rx` (n_rx
  /// antennas). Deterministic given the Rng state.
  MimoChannel link(const Point& tx, const Point& rx, std::size_t n_rx, std::size_t n_tx,
                   Rng& rng) const;

  /// SISO convenience wrapper.
  MultipathChannel siso_link(const Point& tx, const Point& rx, Rng& rng) const;

 private:
  FloorPlan plan_;
  PropagationConfig cfg_;
};

/// Uniform-linear-array steering vector for `n` elements at arrival angle
/// `theta` (radians off broadside), `spacing` in wavelengths.
CVec ula_steering(std::size_t n, double theta_rad, double spacing_wavelengths);

}  // namespace ff::channel
