#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::channel {

double free_space_loss_db(double d_m, double f_hz) {
  FF_CHECK(f_hz > 0.0);
  const double d = std::max(d_m, 0.1);  // clamp inside the near field
  return 20.0 * std::log10(4.0 * kPi * d * f_hz / kSpeedOfLight);
}

double log_distance_loss_db(double d_m, double f_hz, double exponent) {
  const double d = std::max(d_m, 0.1);
  return free_space_loss_db(1.0, f_hz) + 10.0 * exponent * std::log10(d);
}

}  // namespace ff::channel
