#include "channel/multipath.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"
#include "dsp/fractional_delay.hpp"

namespace ff::channel {

MultipathChannel::MultipathChannel(std::vector<PathTap> taps, double carrier_hz)
    : taps_(std::move(taps)), carrier_hz_(carrier_hz) {
  FF_CHECK_MSG(carrier_hz_ > 0.0, "carrier frequency must be positive");
  for (const auto& t : taps_) FF_CHECK_MSG(t.delay_s >= 0.0, "negative path delay");
}

MultipathChannel MultipathChannel::single_path(double amplitude, double delay_s,
                                               double carrier_hz) {
  return MultipathChannel({{delay_s, Complex{amplitude, 0.0}}}, carrier_hz);
}

double MultipathChannel::min_delay_s() const {
  if (taps_.empty()) return 0.0;
  double d = taps_[0].delay_s;
  for (const auto& t : taps_) d = std::min(d, t.delay_s);
  return d;
}

double MultipathChannel::max_delay_s() const {
  double d = 0.0;
  for (const auto& t : taps_) d = std::max(d, t.delay_s);
  return d;
}

double MultipathChannel::power_gain() const {
  double p = 0.0;
  for (const auto& t : taps_) p += std::norm(t.amp);
  return p;
}

double MultipathChannel::power_gain_db() const {
  const double p = power_gain();
  return p > 0.0 ? db_from_power(p) : -400.0;
}

Complex MultipathChannel::response(double f_bb_hz) const {
  Complex acc{0.0, 0.0};
  for (const auto& t : taps_) {
    const double phase = -kTwoPi * (carrier_hz_ + f_bb_hz) * t.delay_s;
    acc += t.amp * Complex{std::cos(phase), std::sin(phase)};
  }
  return acc;
}

CVec MultipathChannel::response(RSpan f_bb_hz) const {
  CVec out(f_bb_hz.size());
  for (std::size_t i = 0; i < f_bb_hz.size(); ++i) out[i] = response(f_bb_hz[i]);
  return out;
}

CVec MultipathChannel::to_fir(double sample_rate, double delay_ref_s,
                              std::size_t sinc_half_width) const {
  FF_CHECK(sample_rate > 0.0);
  if (taps_.empty()) return {Complex{}};
  FF_CHECK_MSG(delay_ref_s <= min_delay_s() + 1e-15,
               "delay reference later than earliest path");
  CVec fir;
  for (const auto& t : taps_) {
    const double d = (t.delay_s - delay_ref_s) * sample_rate;
    const double carrier_phase = -kTwoPi * carrier_hz_ * t.delay_s;
    const Complex gain = t.amp * Complex{std::cos(carrier_phase), std::sin(carrier_phase)};
    const CVec kernel = dsp::design_fractional_delay(d, sinc_half_width);
    if (kernel.size() > fir.size()) fir.resize(kernel.size(), Complex{});
    for (std::size_t i = 0; i < kernel.size(); ++i) fir[i] += gain * kernel[i];
  }
  return fir;
}

CVec MultipathChannel::apply(CSpan x, double sample_rate, double delay_ref_s) const {
  if (taps_.empty()) return CVec(x.size(), Complex{});
  return dsp::filter(to_fir(sample_rate, delay_ref_s), x);
}

MultipathChannel MultipathChannel::scaled(double amplitude) const {
  std::vector<PathTap> taps = taps_;
  for (auto& t : taps) t.amp *= amplitude;
  return MultipathChannel(std::move(taps), carrier_hz_);
}

MultipathChannel MultipathChannel::delayed(double extra_delay_s) const {
  std::vector<PathTap> taps = taps_;
  for (auto& t : taps) t.delay_s += extra_delay_s;
  return MultipathChannel(std::move(taps), carrier_hz_);
}

MultipathChannel MultipathChannel::combine(const MultipathChannel& a,
                                           const MultipathChannel& b) {
  FF_CHECK(a.carrier_hz_ == b.carrier_hz_ || a.empty() || b.empty());
  std::vector<PathTap> taps = a.taps_;
  taps.insert(taps.end(), b.taps_.begin(), b.taps_.end());
  return MultipathChannel(std::move(taps), a.empty() ? b.carrier_hz_ : a.carrier_hz_);
}

CVec cascade_response(const MultipathChannel& a, const MultipathChannel& b, RSpan f_bb_hz) {
  CVec out(f_bb_hz.size());
  for (std::size_t i = 0; i < f_bb_hz.size(); ++i)
    out[i] = a.response(f_bb_hz[i]) * b.response(f_bb_hz[i]);
  return out;
}

}  // namespace ff::channel
