#include "channel/propagation.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "channel/pathloss.hpp"

namespace ff::channel {

CVec ula_steering(std::size_t n, double theta_rad, double spacing_wavelengths) {
  CVec v(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double phase = -kTwoPi * spacing_wavelengths * static_cast<double>(k) *
                         std::sin(theta_rad);
    v[k] = {std::cos(phase), std::sin(phase)};
  }
  return v;
}

IndoorPropagation::IndoorPropagation(FloorPlan plan, PropagationConfig cfg)
    : plan_(std::move(plan)), cfg_(cfg) {}

MimoChannel IndoorPropagation::link(const Point& tx, const Point& rx, std::size_t n_rx,
                                    std::size_t n_tx, Rng& rng) const {
  std::vector<MimoPath> paths;

  const auto add_path = [&](double length_m, double loss_db, double angle_tx,
                            double angle_rx, Complex extra_phase) {
    const double amp = amplitude_from_db(-loss_db);
    if (amp < cfg_.min_path_amp) return;
    MimoPath p;
    p.delay_s = length_m / kSpeedOfLight;
    p.amp = amp * extra_phase;
    p.tx_steering = ula_steering(n_tx, angle_tx + cfg_.angle_jitter_rad * rng.gaussian(),
                                 cfg_.antenna_spacing_wavelengths);
    p.rx_steering = ula_steering(n_rx, angle_rx + cfg_.angle_jitter_rad * rng.gaussian(),
                                 cfg_.antenna_spacing_wavelengths);
    paths.push_back(std::move(p));
  };

  const auto ray_loss = [&](double length_m) {
    const double d_near = std::min(length_m, cfg_.path_loss_breakpoint_m);
    double loss = log_distance_loss_db(d_near, cfg_.carrier_hz,
                                       cfg_.path_loss_exponent_near) +
                  cfg_.system_loss_db;
    if (length_m > cfg_.path_loss_breakpoint_m)
      loss += 10.0 * cfg_.path_loss_exponent_far *
              std::log10(length_m / cfg_.path_loss_breakpoint_m);
    return loss;
  };

  // Direct ray.
  const double d = std::max(distance(tx, rx), 0.3);
  const double los_angle = std::atan2(rx.y - tx.y, rx.x - tx.x);
  const int crossings = plan_.wall_crossings(tx, rx);
  const double direct_loss = ray_loss(d) + plan_.wall_loss_db(tx, rx) +
                             cfg_.shadowing_sigma_db * rng.gaussian();
  add_path(d, direct_loss, los_angle, los_angle + kPi, Complex{1.0, 0.0});

  // Angular spread: the RF-pinhole effect (Sec. 1). An unobstructed link
  // sees reflections arriving from all over the room; an obstructed link's
  // energy funnels through doors/apertures, so every surviving path shares
  // roughly the same bearing — which is exactly what collapses MIMO rank.
  const double spread = crossings == 0 ? kPi / 2.0 : cfg_.keyhole_angle_spread_rad;

  // First-order specular reflections. Angle approximation: use the geometric
  // angle from each endpoint to the bounce point.
  for (const auto& refl : plan_.first_order_reflections(tx, rx)) {
    const double loss = ray_loss(refl.path_length_m) +
                        refl.wall_loss_db - db_from_amplitude(refl.reflectivity) +
                        0.5 * cfg_.shadowing_sigma_db * rng.gaussian();
    const double angle_tx = los_angle + rng.uniform(-spread, spread);
    const double angle_rx = los_angle + kPi + rng.uniform(-spread, spread);
    add_path(refl.path_length_m, loss, angle_tx, angle_rx, rng.unit_phasor());
  }

  // Diffuse scatterers: late weak taps; their angles also collapse when the
  // link is keyholed.
  for (int s = 0; s < cfg_.diffuse_scatterers; ++s) {
    const double extra_delay = -cfg_.diffuse_delay_spread_s * std::log(1.0 - rng.uniform());
    const double extra_len = extra_delay * kSpeedOfLight;
    const double loss = direct_loss - cfg_.diffuse_power_db + 3.0 * rng.gaussian() +
                        ray_loss(d + extra_len) - ray_loss(d);
    const double angle_tx = crossings == 0 ? rng.uniform(-kPi, kPi)
                                           : los_angle + rng.uniform(-spread, spread);
    const double angle_rx = crossings == 0
                                ? rng.uniform(-kPi, kPi)
                                : los_angle + kPi + rng.uniform(-spread, spread);
    add_path(d + extra_len, loss, angle_tx, angle_rx, rng.unit_phasor());
  }

  return MimoChannel(n_rx, n_tx, std::move(paths), cfg_.carrier_hz);
}

MultipathChannel IndoorPropagation::siso_link(const Point& tx, const Point& rx,
                                              Rng& rng) const {
  return link(tx, rx, 1, 1, rng).subchannel(0, 0);
}

}  // namespace ff::channel
