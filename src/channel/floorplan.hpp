// 2-D floor-plan geometry for indoor propagation.
//
// The paper evaluates in several indoor layouts: a ~2000 sq ft home (Fig. 1,
// AP in the living-room corner, relay mid-home), an open office, an L-shaped
// corridor, and wide rooms. A floor plan is a set of wall segments with
// per-wall attenuation; rays accumulate the losses of every wall they cross,
// and first-order specular reflections are generated with the image method.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace ff::channel {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b);

struct Wall {
  Point a, b;
  double loss_db = 3.0;       // attenuation per traversal
  double reflectivity = 0.3;  // amplitude reflection coefficient
};

/// Returns the intersection parameter of segment pq with segment ab, if the
/// open segments properly intersect.
std::optional<Point> segment_intersection(const Point& p, const Point& q, const Point& a,
                                          const Point& b);

/// Mirror point p across the infinite line through the wall.
Point mirror_across(const Point& p, const Wall& w);

class FloorPlan {
 public:
  FloorPlan() = default;
  FloorPlan(std::string name, std::vector<Wall> walls, double width_m, double height_m)
      : name_(std::move(name)), walls_(std::move(walls)), width_(width_m), height_(height_m) {}

  const std::string& name() const { return name_; }
  const std::vector<Wall>& walls() const { return walls_; }
  double width() const { return width_; }
  double height() const { return height_; }

  /// Total wall attenuation (dB) along the straight ray from p to q.
  double wall_loss_db(const Point& p, const Point& q) const;

  /// Number of walls crossed on the straight ray from p to q.
  int wall_crossings(const Point& p, const Point& q) const;

  struct Reflection {
    double path_length_m = 0.0;   // tx -> wall -> rx total length
    double wall_loss_db = 0.0;    // attenuation of walls crossed on both legs
    double reflectivity = 0.0;    // amplitude coefficient of the bounce
  };

  /// First-order specular reflections from tx to rx (image method): for each
  /// wall whose mirror image of tx sees rx through the wall segment.
  std::vector<Reflection> first_order_reflections(const Point& tx, const Point& rx) const;

  // ---- canonical layouts used in the evaluation ----

  /// The Fig. 1 home: 9 m x 6.5 m, living room + two bedrooms, interior
  /// drywall, exterior brick.
  static FloorPlan paper_home();

  /// Open office: one big room, exterior walls only, a few pillars.
  static FloorPlan open_office();

  /// L-shaped corridor with rooms off it (the RF-pinhole generator).
  static FloorPlan l_corridor();

  /// Two large rooms separated by a heavy wall with a door gap.
  static FloorPlan two_wide_rooms();

  /// All four evaluation layouts.
  static std::vector<FloorPlan> evaluation_set();

 private:
  std::string name_;
  std::vector<Wall> walls_;
  double width_ = 0.0, height_ = 0.0;
};

}  // namespace ff::channel
