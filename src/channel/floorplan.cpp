#include "channel/floorplan.hpp"

#include <cmath>

#include "common/check.hpp"
#include "channel/pathloss.hpp"

namespace ff::channel {

double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

std::optional<Point> segment_intersection(const Point& p, const Point& q, const Point& a,
                                          const Point& b) {
  const double rx = q.x - p.x, ry = q.y - p.y;
  const double sx = b.x - a.x, sy = b.y - a.y;
  const double denom = rx * sy - ry * sx;
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel
  const double qpx = a.x - p.x, qpy = a.y - p.y;
  const double t = (qpx * sy - qpy * sx) / denom;  // along pq
  const double u = (qpx * ry - qpy * rx) / denom;  // along ab
  constexpr double eps = 1e-9;
  if (t <= eps || t >= 1.0 - eps || u <= eps || u >= 1.0 - eps) return std::nullopt;
  return Point{p.x + t * rx, p.y + t * ry};
}

Point mirror_across(const Point& p, const Wall& w) {
  const double dx = w.b.x - w.a.x, dy = w.b.y - w.a.y;
  const double len_sq = dx * dx + dy * dy;
  FF_CHECK(len_sq > 1e-12);
  const double t = ((p.x - w.a.x) * dx + (p.y - w.a.y) * dy) / len_sq;
  const Point foot{w.a.x + t * dx, w.a.y + t * dy};
  return Point{2.0 * foot.x - p.x, 2.0 * foot.y - p.y};
}

double FloorPlan::wall_loss_db(const Point& p, const Point& q) const {
  double loss = 0.0;
  for (const auto& w : walls_)
    if (segment_intersection(p, q, w.a, w.b)) loss += w.loss_db;
  return loss;
}

int FloorPlan::wall_crossings(const Point& p, const Point& q) const {
  int n = 0;
  for (const auto& w : walls_)
    if (segment_intersection(p, q, w.a, w.b)) ++n;
  return n;
}

std::vector<FloorPlan::Reflection> FloorPlan::first_order_reflections(const Point& tx,
                                                                      const Point& rx) const {
  std::vector<Reflection> out;
  for (std::size_t i = 0; i < walls_.size(); ++i) {
    const Wall& w = walls_[i];
    if (w.reflectivity <= 0.0) continue;
    const Point image = mirror_across(tx, w);
    const auto hit = segment_intersection(image, rx, w.a, w.b);
    if (!hit) continue;
    Reflection r;
    r.path_length_m = distance(tx, *hit) + distance(*hit, rx);
    r.reflectivity = w.reflectivity;
    // Wall losses on both legs, excluding the reflecting wall itself.
    double loss = 0.0;
    for (std::size_t j = 0; j < walls_.size(); ++j) {
      if (j == i) continue;
      if (segment_intersection(tx, *hit, walls_[j].a, walls_[j].b)) loss += walls_[j].loss_db;
      if (segment_intersection(*hit, rx, walls_[j].a, walls_[j].b)) loss += walls_[j].loss_db;
    }
    r.wall_loss_db = loss;
    out.push_back(r);
  }
  return out;
}

namespace {

void add_box(std::vector<Wall>& walls, double x0, double y0, double x1, double y1,
             double loss, double refl) {
  walls.push_back({{x0, y0}, {x1, y0}, loss, refl});
  walls.push_back({{x1, y0}, {x1, y1}, loss, refl});
  walls.push_back({{x1, y1}, {x0, y1}, loss, refl});
  walls.push_back({{x0, y1}, {x0, y0}, loss, refl});
}

}  // namespace

FloorPlan FloorPlan::paper_home() {
  // 9 m wide x 6.5 m deep (~2000 sq ft footprint scaled to the Fig. 1 sketch).
  // Living room spans the south side (AP at the south-west corner); two
  // bedrooms across the north side; interior drywall with door gaps.
  std::vector<Wall> walls;
  add_box(walls, 0.0, 0.0, 9.0, 6.5, kBrickWallLossDb, 0.45);
  // East-west interior wall separating living room from bedrooms, with a
  // door gap between x = 4.2 and x = 5.2.
  walls.push_back({{0.0, 3.4}, {4.2, 3.4}, kDrywallLossDb, 0.3});
  walls.push_back({{5.2, 3.4}, {9.0, 3.4}, kDrywallLossDb, 0.3});
  // North-south wall between the bedrooms, door gap at y in [3.4, 4.2].
  walls.push_back({{4.7, 4.2}, {4.7, 6.5}, kDrywallLossDb, 0.3});
  return FloorPlan("home", std::move(walls), 9.0, 6.5);
}

FloorPlan FloorPlan::open_office() {
  std::vector<Wall> walls;
  add_box(walls, 0.0, 0.0, 16.0, 11.0, kConcreteWallLossDb, 0.5);
  // Two structural pillars modelled as small high-loss boxes.
  add_box(walls, 6.0, 6.0, 6.6, 6.6, kConcreteWallLossDb, 0.4);
  add_box(walls, 11.0, 7.0, 11.6, 7.6, kConcreteWallLossDb, 0.4);
  // Cubicle partition rows (low loss each, but they stack up across the
  // room and starve distant desks of both SNR and independent paths).
  constexpr double kPartitionLossDb = 2.0;
  walls.push_back({{2.0, 4.5}, {9.0, 4.5}, kPartitionLossDb, 0.15});
  walls.push_back({{10.0, 4.5}, {14.5, 4.5}, kPartitionLossDb, 0.15});
  walls.push_back({{2.0, 8.5}, {8.0, 8.5}, kPartitionLossDb, 0.15});
  walls.push_back({{10.0, 8.5}, {14.5, 8.5}, kPartitionLossDb, 0.15});
  walls.push_back({{9.0, 1.5}, {9.0, 5.5}, kPartitionLossDb, 0.15});
  walls.push_back({{9.0, 7.0}, {9.0, 10.0}, kPartitionLossDb, 0.15});
  return FloorPlan("open-office", std::move(walls), 16.0, 11.0);
}

FloorPlan FloorPlan::l_corridor() {
  // A 2 m wide corridor running south then turning east, with rooms off it.
  // Heavy interior walls make the corridor the only strong path: the RF
  // pinhole of Sec. 1.
  std::vector<Wall> walls;
  add_box(walls, 0.0, 0.0, 14.0, 9.0, kBrickWallLossDb, 0.45);
  // Corridor boundary walls: horizontal corridor y in [4,6] across the
  // building, vertical leg x in [7,9] running north. Door gaps 1 m wide.
  walls.push_back({{0.0, 4.0}, {3.0, 4.0}, kConcreteWallLossDb, 0.55});
  walls.push_back({{4.0, 4.0}, {10.5, 4.0}, kConcreteWallLossDb, 0.55});
  walls.push_back({{11.5, 4.0}, {14.0, 4.0}, kConcreteWallLossDb, 0.55});
  walls.push_back({{0.0, 6.0}, {7.0, 6.0}, kConcreteWallLossDb, 0.55});
  walls.push_back({{9.0, 6.0}, {14.0, 6.0}, kConcreteWallLossDb, 0.55});
  walls.push_back({{7.0, 6.0}, {7.0, 8.0}, kConcreteWallLossDb, 0.55});
  walls.push_back({{9.0, 6.0}, {9.0, 9.0}, kConcreteWallLossDb, 0.55});
  return FloorPlan("l-corridor", std::move(walls), 14.0, 9.0);
}

FloorPlan FloorPlan::two_wide_rooms() {
  std::vector<Wall> walls;
  add_box(walls, 0.0, 0.0, 15.0, 8.0, kBrickWallLossDb, 0.45);
  // Heavy dividing wall with a single 1.2 m door.
  walls.push_back({{7.5, 0.0}, {7.5, 3.5}, kConcreteWallLossDb, 0.5});
  walls.push_back({{7.5, 4.7}, {7.5, 8.0}, kConcreteWallLossDb, 0.5});
  // Furniture/shelving lines inside each room.
  walls.push_back({{3.5, 2.0}, {3.5, 6.5}, 2.5, 0.2});
  walls.push_back({{11.5, 1.5}, {11.5, 6.0}, 2.5, 0.2});
  return FloorPlan("two-wide-rooms", std::move(walls), 15.0, 8.0);
}

std::vector<FloorPlan> FloorPlan::evaluation_set() {
  return {paper_home(), open_office(), l_corridor(), two_wide_rooms()};
}

}  // namespace ff::channel
