// Carrier frequency offset application (oscillator mismatch between radios).
//
// Sec. 4.1: the relay must remove the source's CFO for its own processing but
// restore it before retransmission, so the destination sees a single
// consistent offset. These helpers rotate a sample stream by a frequency
// offset with phase continuity across blocks.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dsp/kernels/workspace.hpp"

namespace ff::channel {

/// Stateful CFO rotator: multiplies successive samples by e^{j 2 pi f n Ts},
/// keeping phase across process() calls (a real oscillator doesn't reset).
class CfoRotator {
 public:
  CfoRotator(double cfo_hz, double sample_rate_hz, double initial_phase_rad = 0.0);

  double cfo_hz() const { return cfo_hz_; }

  /// Rotate one sample.
  Complex push(Complex x);

  /// Rotate a block (stateful).
  CVec process(CSpan x);

  /// Rotate a block into a caller-owned buffer (stateful). `out` must be
  /// exactly x.size() samples and may alias `x` — the streaming runtime's
  /// allocation-free block path.
  ///
  /// The phase recurrence (including the wrap at +/-2pi) advances scalar and
  /// sample-sequential exactly as push() does — only the complex multiply is
  /// vectorized (kernels::rotate_phasor over a per-block phasor table) — so
  /// block and per-sample rotation are bit-identical at any block size.
  void process_into(CSpan x, CMutSpan out);

  /// Same, with the phasor table drawn from a caller-owned Workspace
  /// (slot 0) shared across an owning pipeline's stages.
  void process_into(CSpan x, CMutSpan out, dsp::kernels::Workspace& ws);

  /// Float32 block path (the mixed-precision relay fast path). The phase
  /// recurrence stays DOUBLE and advances exactly as the f64 paths do — a
  /// rotator's phase never loses precision to the sample format — but the
  /// per-sample phasor comes from a double rotation recurrence re-anchored
  /// with one sincos every 256 samples at absolute stream positions (so the
  /// bits stay block-size invariant), then narrowed once to f32 before the
  /// f32 rotate kernel. Phasor table: the Workspace's f32 slot 0.
  void process_into(CSpan32 x, CMutSpan32 out, dsp::kernels::Workspace& ws);

  /// Retune the oscillator frequency while keeping the accumulated phase —
  /// a real oscillator drifts continuously, it never phase-jumps. This is
  /// the retune path for long-running streams; constructing a fresh rotator
  /// instead would reset the phase and glitch the stream.
  void set_cfo(double cfo_hz, double sample_rate_hz);

  /// Current accumulated phase (radians).
  double phase() const { return phase_; }

  void reset(double initial_phase_rad = 0.0) {
    phase_ = initial_phase_rad;
    pos32_ = 0;  // re-anchor the f32 phasor recurrence on the next block
  }

 private:
  double cfo_hz_;
  double step_rad_;
  double phase_;
  // Float32 fast-path state: a double phasor recurrence stands in for
  // per-sample sincos, re-anchored at absolute positions (see the CSpan32
  // process_into overload). pos32_ counts f32 samples since reset().
  double rec_cos_ = 1.0;
  double rec_sin_ = 0.0;
  double step_cos_ = 1.0;
  double step_sin_ = 0.0;
  bool step_trig_cached_ = false;
  std::uint64_t pos32_ = 0;
  dsp::kernels::Workspace ws_;  // phasor table for the two-arg process_into
};

/// One-shot: apply CFO `cfo_hz` to a block starting at phase 0.
CVec apply_cfo(CSpan x, double cfo_hz, double sample_rate_hz, double initial_phase_rad = 0.0);

}  // namespace ff::channel
