#include "channel/cfo.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::channel {

CfoRotator::CfoRotator(double cfo_hz, double sample_rate_hz, double initial_phase_rad)
    : cfo_hz_(cfo_hz),
      step_rad_(kTwoPi * cfo_hz / sample_rate_hz),
      phase_(initial_phase_rad) {
  FF_CHECK(sample_rate_hz > 0.0);
}

Complex CfoRotator::push(Complex x) {
  const Complex rot{std::cos(phase_), std::sin(phase_)};
  phase_ += step_rad_;
  if (phase_ > kTwoPi) phase_ -= kTwoPi;
  if (phase_ < -kTwoPi) phase_ += kTwoPi;
  return x * rot;
}

CVec CfoRotator::process(CSpan x) {
  CVec out(x.size());
  process_into(x, out);
  return out;
}

void CfoRotator::process_into(CSpan x, CMutSpan out) { process_into(x, out, ws_); }

void CfoRotator::process_into(CSpan x, CMutSpan out, dsp::kernels::Workspace& ws) {
  FF_CHECK_MSG(out.size() == x.size(),
               "CfoRotator::process_into needs out.size() == x.size(), got "
                   << out.size() << " vs " << x.size());
  if (x.empty()) return;
  // Phase recurrence stays scalar and sequential (identical to push(), wrap
  // included) so the rotation is block-size invariant; only the multiply is
  // vectorized.
  CMutSpan phasors = ws.get(0, x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    phasors[i] = {std::cos(phase_), std::sin(phase_)};
    phase_ += step_rad_;
    if (phase_ > kTwoPi) phase_ -= kTwoPi;
    if (phase_ < -kTwoPi) phase_ += kTwoPi;
  }
  dsp::kernels::rotate_phasor(x, phasors, out);
}

void CfoRotator::process_into(CSpan32 x, CMutSpan32 out, dsp::kernels::Workspace& ws) {
  FF_CHECK_MSG(out.size() == x.size(),
               "CfoRotator::process_into needs out.size() == x.size(), got "
                   << out.size() << " vs " << x.size());
  if (x.empty()) return;
  // The PHASE recurrence stays double and sample-sequential, identical to
  // the f64 paths. The per-sample PHASOR, though, comes from a double
  // complex-rotation recurrence re-anchored with one sincos every kAnchor
  // samples — not from per-sample sincos, which dominates the f64 rotator's
  // cost. Between anchors the recurrence drifts by at most ~kAnchor ulps of
  // double (~1e-13), invisible after narrowing to f32 (eps ~1.2e-7).
  // Anchors fire at absolute f32-stream positions (pos32_), so the emitted
  // bits are a function of stream position alone — the f32 rotation is
  // block-size invariant exactly like the f64 one.
  constexpr std::uint64_t kAnchor = 256;
  if (!step_trig_cached_) {
    step_cos_ = std::cos(step_rad_);
    step_sin_ = std::sin(step_rad_);
    step_trig_cached_ = true;
  }
  CMutSpan32 phasors = ws.get_f32(0, x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (pos32_ % kAnchor == 0) {
      rec_cos_ = std::cos(phase_);
      rec_sin_ = std::sin(phase_);
    }
    phasors[i] = {static_cast<float>(rec_cos_), static_cast<float>(rec_sin_)};
    const double c = rec_cos_ * step_cos_ - rec_sin_ * step_sin_;
    rec_sin_ = rec_cos_ * step_sin_ + rec_sin_ * step_cos_;
    rec_cos_ = c;
    phase_ += step_rad_;
    if (phase_ > kTwoPi) phase_ -= kTwoPi;
    if (phase_ < -kTwoPi) phase_ += kTwoPi;
    ++pos32_;
  }
  dsp::kernels::rotate_phasor(x, phasors, out);
}

void CfoRotator::set_cfo(double cfo_hz, double sample_rate_hz) {
  FF_CHECK(sample_rate_hz > 0.0);
  cfo_hz_ = cfo_hz;
  step_rad_ = kTwoPi * cfo_hz / sample_rate_hz;
  step_trig_cached_ = false;  // the f32 phasor recurrence re-derives its step
}

CVec apply_cfo(CSpan x, double cfo_hz, double sample_rate_hz, double initial_phase_rad) {
  CfoRotator rot(cfo_hz, sample_rate_hz, initial_phase_rad);
  return rot.process(x);
}

}  // namespace ff::channel
