#include "channel/cfo.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ff::channel {

CfoRotator::CfoRotator(double cfo_hz, double sample_rate_hz, double initial_phase_rad)
    : cfo_hz_(cfo_hz),
      step_rad_(kTwoPi * cfo_hz / sample_rate_hz),
      phase_(initial_phase_rad) {
  FF_CHECK(sample_rate_hz > 0.0);
}

Complex CfoRotator::push(Complex x) {
  const Complex rot{std::cos(phase_), std::sin(phase_)};
  phase_ += step_rad_;
  if (phase_ > kTwoPi) phase_ -= kTwoPi;
  if (phase_ < -kTwoPi) phase_ += kTwoPi;
  return x * rot;
}

CVec CfoRotator::process(CSpan x) {
  CVec out(x.size());
  process_into(x, out);
  return out;
}

void CfoRotator::process_into(CSpan x, CMutSpan out) { process_into(x, out, ws_); }

void CfoRotator::process_into(CSpan x, CMutSpan out, dsp::kernels::Workspace& ws) {
  FF_CHECK_MSG(out.size() == x.size(),
               "CfoRotator::process_into needs out.size() == x.size(), got "
                   << out.size() << " vs " << x.size());
  if (x.empty()) return;
  // Phase recurrence stays scalar and sequential (identical to push(), wrap
  // included) so the rotation is block-size invariant; only the multiply is
  // vectorized.
  CMutSpan phasors = ws.get(0, x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    phasors[i] = {std::cos(phase_), std::sin(phase_)};
    phase_ += step_rad_;
    if (phase_ > kTwoPi) phase_ -= kTwoPi;
    if (phase_ < -kTwoPi) phase_ += kTwoPi;
  }
  dsp::kernels::rotate_phasor(x, phasors, out);
}

void CfoRotator::set_cfo(double cfo_hz, double sample_rate_hz) {
  FF_CHECK(sample_rate_hz > 0.0);
  cfo_hz_ = cfo_hz;
  step_rad_ = kTwoPi * cfo_hz / sample_rate_hz;
}

CVec apply_cfo(CSpan x, double cfo_hz, double sample_rate_hz, double initial_phase_rad) {
  CfoRotator rot(cfo_hz, sample_rate_hz, initial_phase_rad);
  return rot.process(x);
}

}  // namespace ff::channel
