// Baseband-equivalent multipath channel model.
//
// A channel is a set of discrete propagation paths, each with a physical
// delay and a complex amplitude. The baseband-equivalent response at carrier
// fc is  H(f) = sum_p a_p * e^{-j 2 pi fc tau_p} * e^{-j 2 pi f tau_p},
// where f is the baseband (subcarrier) frequency. Path amplitudes a_p store
// everything except the carrier phase (attenuation, reflection coefficients),
// so moving a path by 100 ps rotates it by ~90 degrees at 2.45 GHz — the
// physical effect FF's analog constructive filter exploits (Sec. 3.4).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ff::channel {

struct PathTap {
  double delay_s = 0.0;  // absolute propagation delay
  Complex amp{};         // complex amplitude excluding the carrier phase term
};

class MultipathChannel {
 public:
  MultipathChannel() = default;
  MultipathChannel(std::vector<PathTap> taps, double carrier_hz);

  /// Channel with a single path of the given linear amplitude and delay.
  static MultipathChannel single_path(double amplitude, double delay_s, double carrier_hz);

  /// An ideal zero channel (no propagation).
  static MultipathChannel null(double carrier_hz) { return MultipathChannel({}, carrier_hz); }

  const std::vector<PathTap>& taps() const { return taps_; }
  double carrier_hz() const { return carrier_hz_; }
  bool empty() const { return taps_.empty(); }

  /// Delay of the earliest path (0 for an empty channel).
  double min_delay_s() const;
  /// Delay of the latest path.
  double max_delay_s() const;

  /// Total power gain sum |a_p|^2 (i.e. average flat-fading power ratio).
  double power_gain() const;
  double power_gain_db() const;

  /// Baseband frequency response at offset `f_bb_hz` from the carrier.
  Complex response(double f_bb_hz) const;

  /// Responses at each of the given baseband frequencies.
  CVec response(RSpan f_bb_hz) const;

  /// Discretize to a causal FIR at `sample_rate`, resolving fractional delays
  /// with windowed-sinc interpolation. `delay_ref_s` is subtracted from every
  /// path delay first (timeline origin; must be <= min_delay).
  CVec to_fir(double sample_rate, double delay_ref_s = 0.0,
              std::size_t sinc_half_width = 16) const;

  /// Convolve a signal with the discretized channel (common timeline origin
  /// at delay_ref_s). Output has the same length as the input.
  CVec apply(CSpan x, double sample_rate, double delay_ref_s = 0.0) const;

  /// Scale every path amplitude by a linear factor.
  MultipathChannel scaled(double amplitude) const;

  /// Add an extra delay to every path (e.g. relay processing latency).
  MultipathChannel delayed(double extra_delay_s) const;

  /// Merge two channels observed at the same receiver (path union).
  static MultipathChannel combine(const MultipathChannel& a, const MultipathChannel& b);

 private:
  std::vector<PathTap> taps_;
  double carrier_hz_ = 2.45e9;
};

/// Series composition of two SISO channels evaluated in frequency domain at
/// the given baseband frequencies: H(f) = Ha(f) * Hb(f). (Used for
/// source->relay->destination cascades in the frequency-domain evaluator.)
CVec cascade_response(const MultipathChannel& a, const MultipathChannel& b, RSpan f_bb_hz);

}  // namespace ff::channel
