#include "channel/mimo.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::channel {

MimoChannel::MimoChannel(std::size_t n_rx, std::size_t n_tx, std::vector<MimoPath> paths,
                         double carrier_hz)
    : n_rx_(n_rx), n_tx_(n_tx), paths_(std::move(paths)), carrier_hz_(carrier_hz) {
  FF_CHECK(n_rx_ > 0 && n_tx_ > 0);
  for (const auto& p : paths_) {
    FF_CHECK_MSG(p.rx_steering.size() == n_rx_ && p.tx_steering.size() == n_tx_,
                 "steering vector length mismatch");
    FF_CHECK(p.delay_s >= 0.0);
  }
}

MimoChannel MimoChannel::from_siso(const MultipathChannel& ch) {
  std::vector<MimoPath> paths;
  paths.reserve(ch.taps().size());
  for (const auto& t : ch.taps())
    paths.push_back({t.delay_s, t.amp, CVec{Complex{1.0, 0.0}}, CVec{Complex{1.0, 0.0}}});
  return MimoChannel(1, 1, std::move(paths), ch.carrier_hz());
}

double MimoChannel::min_delay_s() const {
  if (paths_.empty()) return 0.0;
  double d = paths_[0].delay_s;
  for (const auto& p : paths_) d = std::min(d, p.delay_s);
  return d;
}

double MimoChannel::max_delay_s() const {
  double d = 0.0;
  for (const auto& p : paths_) d = std::max(d, p.delay_s);
  return d;
}

linalg::Matrix MimoChannel::response(double f_bb_hz) const {
  linalg::Matrix h(n_rx_, n_tx_);
  for (const auto& p : paths_) {
    const double phase = -kTwoPi * (carrier_hz_ + f_bb_hz) * p.delay_s;
    const Complex g = p.amp * Complex{std::cos(phase), std::sin(phase)};
    for (std::size_t i = 0; i < n_rx_; ++i)
      for (std::size_t j = 0; j < n_tx_; ++j)
        h(i, j) += g * p.rx_steering[i] * std::conj(p.tx_steering[j]);
  }
  return h;
}

double MimoChannel::mean_power_gain() const {
  // Paths are delay-separated, so cross-terms average out across the band:
  // E||H||_F^2 = sum_p |amp|^2 ||a_rx||^2 ||a_tx||^2.
  double acc = 0.0;
  for (const auto& p : paths_) {
    double rx = 0.0, tx = 0.0;
    for (const Complex v : p.rx_steering) rx += std::norm(v);
    for (const Complex v : p.tx_steering) tx += std::norm(v);
    acc += std::norm(p.amp) * rx * tx;
  }
  return acc / static_cast<double>(n_rx_ * n_tx_);
}

double MimoChannel::mean_power_gain_db() const {
  const double p = mean_power_gain();
  return p > 0.0 ? db_from_power(p) : -400.0;
}

MultipathChannel MimoChannel::subchannel(std::size_t rx, std::size_t tx) const {
  FF_CHECK(rx < n_rx_ && tx < n_tx_);
  std::vector<PathTap> taps;
  taps.reserve(paths_.size());
  for (const auto& p : paths_)
    taps.push_back({p.delay_s, p.amp * p.rx_steering[rx] * std::conj(p.tx_steering[tx])});
  return MultipathChannel(std::move(taps), carrier_hz_);
}

MimoChannel MimoChannel::scaled(double amplitude) const {
  std::vector<MimoPath> paths = paths_;
  for (auto& p : paths) p.amp *= amplitude;
  return MimoChannel(n_rx_, n_tx_, std::move(paths), carrier_hz_);
}

MimoChannel MimoChannel::delayed(double extra_delay_s) const {
  std::vector<MimoPath> paths = paths_;
  for (auto& p : paths) p.delay_s += extra_delay_s;
  return MimoChannel(n_rx_, n_tx_, std::move(paths), carrier_hz_);
}

}  // namespace ff::channel
