// Geometric MIMO multipath channel.
//
// Each propagation path carries a scalar complex amplitude plus transmit and
// receive array steering vectors; the channel matrix at baseband frequency f
// is  H(f) = sum_p amp_p e^{-j 2 pi (fc + f) tau_p} a_rx(p) a_tx(p)^H.
//
// This per-path outer-product structure is what produces the paper's MIMO
// rank physics: a location reached by one dominant path (the RF pinhole of
// Sec. 1) has a rank-1 channel no matter how many antennas the AP has, and
// the FF relay restores rank precisely because its path arrives with an
// independent steering pair.
#pragma once

#include <cstddef>

#include "channel/multipath.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace ff::channel {

struct MimoPath {
  double delay_s = 0.0;
  Complex amp{};       // scalar amplitude excluding carrier phase
  CVec rx_steering;    // length = #rx antennas, unit-magnitude entries
  CVec tx_steering;    // length = #tx antennas
};

class MimoChannel {
 public:
  MimoChannel() = default;
  MimoChannel(std::size_t n_rx, std::size_t n_tx, std::vector<MimoPath> paths,
              double carrier_hz);

  /// SISO special case from a scalar multipath channel.
  static MimoChannel from_siso(const MultipathChannel& ch);

  std::size_t n_rx() const { return n_rx_; }
  std::size_t n_tx() const { return n_tx_; }
  const std::vector<MimoPath>& paths() const { return paths_; }
  double carrier_hz() const { return carrier_hz_; }
  bool empty() const { return paths_.empty(); }

  double min_delay_s() const;
  double max_delay_s() const;

  /// Channel matrix at baseband frequency offset `f_bb_hz`.
  linalg::Matrix response(double f_bb_hz) const;

  /// Average per-antenna-pair power gain: ||H||_F^2 / (n_rx * n_tx) averaged
  /// over paths (frequency-flat aggregate).
  double mean_power_gain() const;
  double mean_power_gain_db() const;

  /// Scalar sub-channel between rx antenna i and tx antenna j.
  MultipathChannel subchannel(std::size_t rx, std::size_t tx) const;

  /// Scale all path amplitudes.
  MimoChannel scaled(double amplitude) const;

  /// Add processing/propagation delay to every path.
  MimoChannel delayed(double extra_delay_s) const;

 private:
  std::size_t n_rx_ = 0, n_tx_ = 0;
  std::vector<MimoPath> paths_;
  double carrier_hz_ = 2.45e9;
};

}  // namespace ff::channel
