// Modulation-and-coding-scheme table and the PHY-throughput metric.
//
// The paper's evaluation metric (Sec. 5): "PHY layer throughput ... the
// optimal bitrate that can be used at any location given the SNR and the
// MIMO rank", with ideal rate adaptation and no MAC effects. These helpers
// compute exactly that: per-subcarrier SINRs are reduced to an effective SNR
// (capacity-equivalent mapping), the best MCS whose threshold is met is
// selected per spatial stream, and MIMO uses SVD eigenbeamforming (the AP
// has CSI through the 802.11n/ac sounding the relay also snoops, Sec. 4.2).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "phy/constellation.hpp"
#include "phy/fec.hpp"
#include "phy/params.hpp"

namespace ff::phy {

struct Mcs {
  int index = 0;
  Modulation modulation = Modulation::BPSK;
  CodeRate rate = CodeRate::R1_2;
  double min_snr_db = 0.0;   // effective-SNR threshold for ~1% PER
  double data_rate_mbps = 0.0;  // single stream, 20 MHz, 400 ns GI
};

/// The 10-entry MCS table (BPSK 1/2 ... 256-QAM 5/6). Data rates follow
/// 52 data subcarriers / 3.6 us symbols; thresholds follow the usual link
/// curves, topping out at 28 dB for the highest rate (the figure the paper
/// quotes in Sec. 3.3).
const std::vector<Mcs>& mcs_table();

/// Highest-rate MCS whose threshold is <= snr_db, or nullptr below MCS0.
const Mcs* select_mcs(double snr_db);

/// Throughput (Mbps) of a single stream at the given effective SNR (0 when
/// even MCS0 does not fit).
double rate_from_snr_db(double snr_db);

/// Capacity-equivalent effective SNR of a set of per-subcarrier SINRs:
/// mean capacity is computed and inverted back through the AWGN curve.
/// (Standard effective-SNR mapping for frequency-selective channels.)
double effective_snr_db(std::span<const double> per_subcarrier_snr_db);

/// PHY throughput for a SISO link given per-subcarrier channel gains and a
/// flat noise+interference power (same linear units as |h|^2 * tx power).
double siso_throughput_mbps(CSpan h_per_subcarrier, double tx_power_mw, double noise_mw);

struct MimoRate {
  double throughput_mbps = 0.0;
  std::size_t streams = 0;          // chosen number of spatial streams
  double effective_snr_db = 0.0;    // of the strongest stream
};

/// PHY throughput for a MIMO link: per-subcarrier channel matrices
/// (n_rx x n_tx each, one per used subcarrier). Transmit power is split
/// across streams; eigenbeamforming on each subcarrier; the stream count
/// maximizing total rate is chosen.
///
/// `noise_mw` may be per-subcarrier-uniform; for relay-injected noise use
/// `extra_noise_mw_per_sc` (one entry per subcarrier, added to noise_mw).
MimoRate mimo_throughput_mbps(const std::vector<linalg::Matrix>& h_per_subcarrier,
                              double tx_power_mw, double noise_mw,
                              std::span<const double> extra_noise_mw_per_sc = {});

}  // namespace ff::phy
