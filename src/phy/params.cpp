#include "phy/params.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ff::phy {

std::vector<int> OfdmParams::used_subcarriers() const {
  const int half = static_cast<int>(used_half);
  std::vector<int> out;
  out.reserve(2 * used_half);
  for (int k = -half; k <= half; ++k)
    if (k != 0) out.push_back(k);
  return out;
}

std::vector<int> OfdmParams::pilot_subcarriers() const {
  const int half = static_cast<int>(used_half);
  const int inner = (half + 2) / 4;       // 28 -> 7
  const int outer = (3 * half + 2) / 4;   // 28 -> 21
  return {-outer, -inner, inner, outer};
}

std::vector<int> OfdmParams::data_subcarriers() const {
  const auto pilots = pilot_subcarriers();
  std::vector<int> out;
  out.reserve(2 * used_half - 4);
  for (const int k : used_subcarriers())
    if (std::find(pilots.begin(), pilots.end(), k) == pilots.end()) out.push_back(k);
  return out;
}

std::vector<double> OfdmParams::used_subcarrier_freqs() const {
  std::vector<double> out;
  out.reserve(56);
  for (const int k : used_subcarriers()) out.push_back(subcarrier_freq_hz(k));
  return out;
}

std::size_t OfdmParams::fft_bin(int k) const {
  const int n = static_cast<int>(fft_size);
  FF_CHECK_MSG(k > -n / 2 && k < n / 2, "subcarrier index out of range: " << k);
  return static_cast<std::size_t>((k + n) % n);
}

OfdmParams default_params() { return OfdmParams{}; }

}  // namespace ff::phy
