#include "phy/mcs.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ff::phy {

const std::vector<Mcs>& mcs_table() {
  // Rates: 52 data subcarriers * bits * code_rate / 3.6 us.
  static const std::vector<Mcs> table = {
      {0, Modulation::BPSK, CodeRate::R1_2, 2.0, 7.2},
      {1, Modulation::QPSK, CodeRate::R1_2, 5.0, 14.4},
      {2, Modulation::QPSK, CodeRate::R3_4, 8.0, 21.7},
      {3, Modulation::QAM16, CodeRate::R1_2, 11.0, 28.9},
      {4, Modulation::QAM16, CodeRate::R3_4, 14.5, 43.3},
      {5, Modulation::QAM64, CodeRate::R2_3, 18.5, 57.8},
      {6, Modulation::QAM64, CodeRate::R3_4, 20.5, 65.0},
      {7, Modulation::QAM64, CodeRate::R5_6, 22.5, 72.2},
      {8, Modulation::QAM256, CodeRate::R3_4, 26.0, 86.7},
      {9, Modulation::QAM256, CodeRate::R5_6, 28.0, 96.3},
  };
  return table;
}

const Mcs* select_mcs(double snr_db) {
  const Mcs* best = nullptr;
  for (const auto& m : mcs_table())
    if (snr_db >= m.min_snr_db) best = &m;
  return best;
}

double rate_from_snr_db(double snr_db) {
  const Mcs* m = select_mcs(snr_db);
  return m ? m->data_rate_mbps : 0.0;
}

double effective_snr_db(std::span<const double> per_subcarrier_snr_db) {
  FF_CHECK(!per_subcarrier_snr_db.empty());
  double mean_cap = 0.0;
  for (const double snr : per_subcarrier_snr_db)
    mean_cap += std::log2(1.0 + power_from_db(snr));
  mean_cap /= static_cast<double>(per_subcarrier_snr_db.size());
  const double eff_linear = std::pow(2.0, mean_cap) - 1.0;
  return eff_linear > 0.0 ? db_from_power(eff_linear) : -100.0;
}

double siso_throughput_mbps(CSpan h_per_subcarrier, double tx_power_mw, double noise_mw) {
  FF_CHECK(!h_per_subcarrier.empty());
  FF_CHECK(noise_mw > 0.0);
  std::vector<double> snr_db;
  snr_db.reserve(h_per_subcarrier.size());
  for (const Complex h : h_per_subcarrier) {
    const double p = std::norm(h) * tx_power_mw;
    snr_db.push_back(p > 0.0 ? db_from_power(p / noise_mw) : -100.0);
  }
  return rate_from_snr_db(effective_snr_db(snr_db));
}

MimoRate mimo_throughput_mbps(const std::vector<linalg::Matrix>& h_per_subcarrier,
                              double tx_power_mw, double noise_mw,
                              std::span<const double> extra_noise_mw_per_sc) {
  FF_CHECK(!h_per_subcarrier.empty());
  FF_CHECK(noise_mw > 0.0);
  FF_CHECK(extra_noise_mw_per_sc.empty() ||
           extra_noise_mw_per_sc.size() == h_per_subcarrier.size());

  const std::size_t max_streams =
      std::min(h_per_subcarrier[0].rows(), h_per_subcarrier[0].cols());

  // Per-subcarrier singular values (computed once, reused per stream count).
  std::vector<std::vector<double>> sv(h_per_subcarrier.size());
  for (std::size_t i = 0; i < h_per_subcarrier.size(); ++i)
    sv[i] = linalg::singular_values(h_per_subcarrier[i]);

  MimoRate best;
  for (std::size_t ns = 1; ns <= max_streams; ++ns) {
    // Equal power split across ns streams; stream s rides singular value s.
    double total = 0.0;
    double strongest_eff = -100.0;
    for (std::size_t s = 0; s < ns; ++s) {
      std::vector<double> snr_db(h_per_subcarrier.size());
      for (std::size_t i = 0; i < h_per_subcarrier.size(); ++i) {
        const double n =
            noise_mw + (extra_noise_mw_per_sc.empty() ? 0.0 : extra_noise_mw_per_sc[i]);
        const double gain = s < sv[i].size() ? sv[i][s] * sv[i][s] : 0.0;
        const double p = gain * tx_power_mw / static_cast<double>(ns);
        snr_db[i] = p > 0.0 ? db_from_power(p / n) : -100.0;
      }
      const double eff = effective_snr_db(snr_db);
      if (s == 0) strongest_eff = eff;
      total += rate_from_snr_db(eff);
    }
    if (total > best.throughput_mbps) {
      best.throughput_mbps = total;
      best.streams = ns;
      best.effective_snr_db = strongest_eff;
    }
  }
  if (best.streams == 0) {
    // Even one stream gives zero rate; report the strongest stream's SNR.
    std::vector<double> snr_db(h_per_subcarrier.size());
    for (std::size_t i = 0; i < h_per_subcarrier.size(); ++i) {
      const double n =
          noise_mw + (extra_noise_mw_per_sc.empty() ? 0.0 : extra_noise_mw_per_sc[i]);
      const double gain = sv[i].empty() ? 0.0 : sv[i][0] * sv[i][0];
      const double p = gain * tx_power_mw;
      snr_db[i] = p > 0.0 ? db_from_power(p / n) : -100.0;
    }
    best.effective_snr_db = effective_snr_db(snr_db);
  }
  return best;
}

}  // namespace ff::phy
