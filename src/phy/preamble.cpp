#include "phy/preamble.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "phy/ofdm.hpp"

namespace ff::phy {

namespace {

// 802.11a STF sign pattern on subcarriers -24,-20,...,24 (multiples of 4).
// Extended to +-28 to cover the HT20 56-subcarrier set while keeping the
// 16-sample periodicity (non-zero only at multiples of 4).
/// Deterministic pseudo-random sign for tones beyond the 802.11 tables
/// (wider numerologies such as LTE): a tiny integer hash of k.
int hashed_sign(int k) {
  std::uint32_t x = static_cast<std::uint32_t>(k * 2654435761u + 0x9E3779B9u);
  x ^= x >> 16;
  x *= 0x45D9F3Bu;
  x ^= x >> 13;
  return (x & 1u) ? 1 : -1;
}

int stf_sign(int k) {
  if (k % 4 != 0) return 0;
  if (k < -28 || k > 28) return hashed_sign(k);
  switch (k) {
    case -28: return 1;
    case -24: return 1;
    case -20: return -1;
    case -16: return 1;
    case -12: return -1;
    case -8: return -1;
    case -4: return 1;
    case 4: return -1;
    case 8: return -1;
    case 12: return 1;
    case 16: return 1;
    case 20: return 1;
    case 24: return 1;
    case 28: return 1;
    default: return 0;
  }
}

// 802.11a LTF sequence for k = -26..-1 then +1..+26, extended to +-28.
constexpr int kLtfNeg[26] = {1, 1, -1, -1, 1,  1, -1, 1, -1, 1, 1, 1, 1,
                             1, 1, -1, -1, 1,  1, -1, 1, -1, 1, 1, 1, 1};
constexpr int kLtfPos[26] = {1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1,
                             -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1};

int ltf_sign(int k) {
  if (k >= -26 && k <= -1) return kLtfNeg[k + 26];
  if (k >= 1 && k <= 26) return kLtfPos[k - 1];
  if (k == -28 || k == 28) return 1;
  if (k == -27 || k == 27) return -1;
  if (k != 0) return hashed_sign(k ^ 0x55);  // wider numerologies
  return 0;
}

}  // namespace

CVec stf_used_values(const OfdmParams& params) {
  const auto used = params.used_subcarriers();
  // The STF occupies every 4th tone (16-sample periodicity); boost each
  // occupied tone so the total subcarrier power matches a data symbol's and
  // the STF comes out at the same mean sample power.
  std::size_t occupied = 0;
  for (const int k : used) occupied += stf_sign(k) != 0;
  const double amp = std::sqrt(static_cast<double>(used.size()) /
                               std::max<std::size_t>(occupied, 1));
  const Complex unit = Complex{1.0, 1.0} / std::sqrt(2.0);
  CVec out(used.size(), Complex{});
  for (std::size_t i = 0; i < used.size(); ++i)
    out[i] = static_cast<double>(stf_sign(used[i])) * amp * unit;
  return out;
}

CVec ltf_used_values(const OfdmParams& params) {
  const auto used = params.used_subcarriers();
  CVec out(used.size());
  for (std::size_t i = 0; i < used.size(); ++i)
    out[i] = Complex{static_cast<double>(ltf_sign(used[i])), 0.0};
  return out;
}

CVec stf_time(const OfdmParams& params) {
  const OfdmModem modem(params);
  const CVec sym = modem.modulate_symbol(stf_used_values(params));
  // Body of the symbol (skip CP); the first 16 samples are the STF word.
  const std::size_t word_len = params.fft_size / 4;
  CVec out;
  out.reserve(10 * word_len);
  for (int rep = 0; rep < 10; ++rep)
    out.insert(out.end(), sym.begin() + static_cast<long>(params.cp_len),
               sym.begin() + static_cast<long>(params.cp_len + word_len));
  return out;
}

CVec ltf_time(const OfdmParams& params) {
  const OfdmModem modem(params);
  const CVec sym = modem.modulate_symbol(ltf_used_values(params));
  CSpan body = CSpan(sym).subspan(params.cp_len);  // 64-sample word
  CVec out;
  out.reserve(2 * params.cp_len + 2 * params.fft_size);
  // Double-length guard: tail of the word.
  out.insert(out.end(), body.end() - static_cast<long>(2 * params.cp_len), body.end());
  out.insert(out.end(), body.begin(), body.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

CVec preamble_time(const OfdmParams& params) {
  CVec out = stf_time(params);
  const CVec ltf = ltf_time(params);
  out.insert(out.end(), ltf.begin(), ltf.end());
  return out;
}

std::size_t preamble_len(const OfdmParams& params) {
  return 10 * (params.fft_size / 4) + 2 * params.cp_len + 2 * params.fft_size;
}

double estimate_cfo_stf(CSpan rx, const OfdmParams& params) {
  const std::size_t word = params.fft_size / 4;        // 16 samples
  const std::size_t stf_len = 10 * word;
  FF_CHECK(rx.size() >= stf_len);
  Complex acc{0.0, 0.0};
  for (std::size_t n = 0; n + word < stf_len; ++n) acc += std::conj(rx[n]) * rx[n + word];
  const double phase = std::arg(acc);
  return phase / (kTwoPi * static_cast<double>(word) * params.sample_period_s());
}

double estimate_cfo_ltf(CSpan rx, const OfdmParams& params) {
  const std::size_t n = params.fft_size;
  FF_CHECK(rx.size() >= 2 * n);
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) acc += std::conj(rx[i]) * rx[i + n];
  return std::arg(acc) / (kTwoPi * static_cast<double>(n) * params.sample_period_s());
}

CVec estimate_channel_ltf(CSpan rx, const OfdmParams& params) {
  const std::size_t n = params.fft_size;
  FF_CHECK(rx.size() >= 2 * n);
  const auto used = params.used_subcarriers();
  const CVec ref = ltf_used_values(params);
  const dsp::FftPlan& plan = dsp::FftPlan::cached(n);
  const double norm = 1.0 / std::sqrt(static_cast<double>(n) * static_cast<double>(n) /
                                      static_cast<double>(used.size()));
  CVec est(used.size(), Complex{});
  for (int word = 0; word < 2; ++word) {
    CVec freq(rx.begin() + word * static_cast<long>(n),
              rx.begin() + (word + 1) * static_cast<long>(n));
    plan.forward(freq);
    for (std::size_t i = 0; i < used.size(); ++i)
      est[i] += freq[params.fft_bin(used[i])] * norm / ref[i];
  }
  for (auto& h : est) h *= 0.5;
  return est;
}

}  // namespace ff::phy
