#include "phy/crc.hpp"

namespace ff::phy {

std::uint32_t crc32_bits(std::span<const std::uint8_t> bits) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t bit : bits) {
    const std::uint32_t top = (crc >> 31) & 1u;
    crc <<= 1;
    if (top ^ (bit & 1u)) crc ^= 0x04C11DB7u;
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> append_crc(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out(bits.begin(), bits.end());
  const std::uint32_t crc = crc32_bits(bits);
  for (int i = 31; i >= 0; --i) out.push_back(static_cast<std::uint8_t>((crc >> i) & 1u));
  return out;
}

bool check_crc(std::span<const std::uint8_t> bits_with_crc) {
  if (bits_with_crc.size() < 32) return false;
  const std::size_t n = bits_with_crc.size() - 32;
  const std::uint32_t expect = crc32_bits(bits_with_crc.subspan(0, n));
  std::uint32_t got = 0;
  for (std::size_t i = 0; i < 32; ++i) got = (got << 1) | (bits_with_crc[n + i] & 1u);
  return got == expect;
}

}  // namespace ff::phy
