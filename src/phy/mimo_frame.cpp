#include "phy/mimo_frame.hpp"

#include <algorithm>
#include <cmath>

#include "channel/cfo.hpp"
#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/sequence.hpp"
#include "dsp/fft.hpp"
#include "phy/crc.hpp"
#include "phy/interleaver.hpp"
#include "phy/preamble.hpp"
#include "phy/scrambler.hpp"

namespace ff::phy {

namespace {

/// Pilot polarity shared with the SISO frame (same LFSR construction).
double pilot_polarity(std::size_t symbol_index) {
  static const std::vector<std::uint8_t> seq = [] {
    auto lfsr = dsp::Lfsr::scrambler(0x7F);
    return lfsr.bits(127);
  }();
  return seq[symbol_index % seq.size()] ? -1.0 : 1.0;
}

struct SubcarrierLayout {
  std::vector<std::size_t> pilot_pos;
  std::vector<std::size_t> data_pos;
};

SubcarrierLayout layout(const OfdmParams& params) {
  SubcarrierLayout out;
  const auto used = params.used_subcarriers();
  const auto pilots = params.pilot_subcarriers();
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (std::find(pilots.begin(), pilots.end(), used[i]) != pilots.end())
      out.pilot_pos.push_back(i);
    else
      out.data_pos.push_back(i);
  }
  return out;
}

}  // namespace

linalg::Matrix htltf_mapping(std::size_t k) {
  FF_CHECK_MSG(k == 1 || k == 2 || k == 4, "P-matrix defined for K in {1,2,4}");
  if (k == 1) return linalg::Matrix{{Complex{1.0, 0.0}}};
  if (k == 2)
    return linalg::Matrix{{Complex{1, 0}, Complex{1, 0}},
                          {Complex{1, 0}, Complex{-1, 0}}};
  // Hadamard 4.
  linalg::Matrix p(4, 4);
  const int h2[2][2] = {{1, 1}, {1, -1}};
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = 0; b < 4; ++b)
      p(a, b) = Complex{static_cast<double>(h2[a / 2][b / 2] * h2[a % 2][b % 2]), 0.0};
  return p;
}

MimoTransmitter::MimoTransmitter(OfdmParams params) : params_(params), modem_(params) {}

std::vector<CVec> MimoTransmitter::modulate(std::span<const std::uint8_t> payload,
                                            const MimoTxOptions& opts) const {
  const std::size_t k = opts.streams;
  FF_CHECK(k >= 1);
  FF_CHECK_MSG(payload.size() % k == 0, "payload must split evenly across streams");
  const Mcs& mcs = mcs_table().at(static_cast<std::size_t>(opts.mcs_index));
  const auto lay = layout(params_);
  const std::size_t n_data_sc = lay.data_pos.size();
  const std::size_t n_used = params_.used_subcarriers().size();
  const double power_scale = 1.0 / std::sqrt(static_cast<double>(k));

  std::vector<CVec> out(k);

  // ---- legacy preamble from antenna 0 only ----
  const CVec pre = preamble_time(params_);
  out[0].insert(out[0].end(), pre.begin(), pre.end());
  for (std::size_t a = 1; a < k; ++a) out[a].assign(pre.size(), Complex{});

  // ---- HT-LTFs: K training symbols mapped across antennas by P ----
  const linalg::Matrix p = htltf_mapping(k);
  const CVec ltf_vals = ltf_used_values(params_);
  for (std::size_t l = 0; l < k; ++l) {
    for (std::size_t a = 0; a < k; ++a) {
      CVec vals(n_used);
      for (std::size_t i = 0; i < n_used; ++i)
        vals[i] = p(a, l) * ltf_vals[i] * power_scale;
      const CVec sym = modem_.modulate_symbol(vals);
      out[a].insert(out[a].end(), sym.begin(), sym.end());
    }
  }

  // ---- SIG symbol (antenna 0 only): per-stream payload length ----
  {
    const auto msg = detail::encode_signal_field(opts.mcs_index, payload.size() / k);
    auto coded = convolutional_encode(msg, CodeRate::R1_2);
    FF_CHECK(coded.size() <= n_data_sc);
    coded.resize(n_data_sc, 0);
    coded = interleave(coded, Modulation::BPSK, n_data_sc);
    const CVec syms = phy::modulate(coded, Modulation::BPSK);
    CVec used(n_used, Complex{});
    for (std::size_t i = 0; i < n_data_sc; ++i)
      used[lay.data_pos[i]] = syms[i] * power_scale;
    for (const std::size_t pp : lay.pilot_pos)
      used[pp] = Complex{pilot_polarity(0) * power_scale, 0.0};
    const CVec sym = modem_.modulate_symbol(used);
    out[0].insert(out[0].end(), sym.begin(), sym.end());
    for (std::size_t a = 1; a < k; ++a)
      out[a].insert(out[a].end(), sym.size(), Complex{});
  }

  // ---- DATA: one stream per antenna ----
  const std::size_t chunk = payload.size() / k;
  const std::size_t n_cbps = n_data_sc * bits_per_symbol(mcs.modulation);
  const std::size_t coded_len = coded_length(chunk + 32, mcs.rate);
  const std::size_t n_sym = (coded_len + n_cbps - 1) / n_cbps;
  for (std::size_t a = 0; a < k; ++a) {
    std::vector<std::uint8_t> msg(payload.begin() + static_cast<long>(a * chunk),
                                  payload.begin() + static_cast<long>((a + 1) * chunk));
    msg = append_crc(msg);
    // Per-stream scrambler seed: if a confused detector hands one stream's
    // symbols to another stream's decoder, the descramble mismatch breaks
    // the CRC instead of silently duplicating data.
    msg = scramble(msg, static_cast<std::uint8_t>(0x5D ^ (a * 0x21)));
    auto coded = convolutional_encode(msg, mcs.rate);
    coded.resize(n_sym * n_cbps, 0);
    coded = interleave(coded, mcs.modulation, n_data_sc);
    const CVec syms = phy::modulate(coded, mcs.modulation);
    for (std::size_t s = 0; s < n_sym; ++s) {
      CVec used(n_used, Complex{});
      for (std::size_t i = 0; i < n_data_sc; ++i)
        used[lay.data_pos[i]] = syms[s * n_data_sc + i] * power_scale;
      if (a == 0) {
        const double pol = pilot_polarity(s + 1);
        for (const std::size_t pp : lay.pilot_pos)
          used[pp] = Complex{pol * power_scale, 0.0};
      }
      const CVec sym = modem_.modulate_symbol(used);
      out[a].insert(out[a].end(), sym.begin(), sym.end());
    }
  }
  return out;
}

MimoReceiver::MimoReceiver(OfdmParams params) : params_(params), modem_(params) {}

std::optional<MimoRxResult> MimoReceiver::receive(const std::vector<CVec>& rx) const {
  const std::size_t k = rx.size();
  FF_CHECK(k >= 1);
  for (const auto& r : rx) FF_CHECK(r.size() == rx[0].size());

  // ---- detection on the strongest antenna ----
  const Receiver siso(params_);
  std::optional<std::size_t> start;
  std::size_t detect_antenna = 0;
  const auto stf_power = [&](std::size_t a, std::size_t at) {
    const std::size_t len = std::min<std::size_t>(rx[a].size() - at, 160);
    return dsp::mean_power(CSpan(rx[a]).subspan(at, len));
  };
  for (std::size_t a = 0; a < k; ++a) {
    const auto s = siso.detect_preamble(rx[a]);
    if (s && (!start || stf_power(a, *s) > stf_power(detect_antenna, *start))) {
      start = s;
      detect_antenna = a;
    }
  }
  if (!start) return std::nullopt;

  const std::size_t stf_len = 10 * (params_.fft_size / 4);
  const std::size_t ltf_guard = 2 * params_.cp_len;
  const std::size_t ltf_len = ltf_guard + 2 * params_.fft_size;
  const std::size_t sym_len = params_.symbol_len();
  const std::size_t htltf_off = stf_len + ltf_len;
  const std::size_t sig_off = htltf_off + k * sym_len;
  if (*start + sig_off + sym_len > rx[0].size()) return std::nullopt;

  // ---- CFO (common oscillator): estimate on the detection antenna ----
  const double coarse =
      estimate_cfo_stf(CSpan(rx[detect_antenna]).subspan(*start, stf_len), params_);
  std::vector<CVec> corr(k);
  for (std::size_t a = 0; a < k; ++a) {
    CVec tail(rx[a].begin() + static_cast<long>(*start), rx[a].end());
    corr[a] = channel::apply_cfo(tail, -coarse, params_.sample_rate_hz);
  }
  const double fine = estimate_cfo_ltf(
      CSpan(corr[detect_antenna]).subspan(stf_len + ltf_guard, 2 * params_.fft_size), params_);
  for (std::size_t a = 0; a < k; ++a) {
    channel::CfoRotator rot(-fine, params_.sample_rate_hz);
    corr[a] = rot.process(corr[a]);
  }

  // ---- noise estimate from legacy LTF word difference, per antenna ----
  const auto used = params_.used_subcarriers();
  double noise_var = 0.0;
  {
    const dsp::FftPlan& plan = dsp::FftPlan::cached(params_.fft_size);
    const double norm = 1.0 / std::sqrt(static_cast<double>(params_.fft_size) *
                                        static_cast<double>(params_.fft_size) /
                                        static_cast<double>(used.size()));
    double acc = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      CVec w1(corr[a].begin() + static_cast<long>(stf_len + ltf_guard),
              corr[a].begin() + static_cast<long>(stf_len + ltf_guard + params_.fft_size));
      CVec w2(corr[a].begin() + static_cast<long>(stf_len + ltf_guard + params_.fft_size),
              corr[a].begin() + static_cast<long>(stf_len + ltf_guard + 2 * params_.fft_size));
      plan.forward(w1);
      plan.forward(w2);
      for (const int kk : used) {
        const std::size_t b = params_.fft_bin(kk);
        acc += std::norm((w1[b] - w2[b]) * norm);
      }
    }
    noise_var = std::max(acc / (2.0 * static_cast<double>(used.size() * k)), 1e-30);
  }

  // ---- HT-LTF channel estimation: per-subcarrier K x K ----
  const CVec ltf_vals = ltf_used_values(params_);
  const linalg::Matrix p = htltf_mapping(k);
  const linalg::Matrix p_inv = linalg::inverse(p);
  std::vector<linalg::Matrix> h(used.size(), linalg::Matrix(k, k));
  {
    // y_matrix[i]: rows = rx antennas, cols = HT-LTF symbol index.
    for (std::size_t l = 0; l < k; ++l) {
      for (std::size_t a = 0; a < k; ++a) {
        const CVec sym = modem_.demodulate_symbol(
            CSpan(corr[a]).subspan(htltf_off + l * sym_len, sym_len));
        for (std::size_t i = 0; i < used.size(); ++i) {
          // Y(a, l) accumulated into H after the P^-1: do it in two passes.
          h[i](a, l) = sym[i] / ltf_vals[i];
        }
      }
    }
    for (auto& hi : h) hi = hi * p_inv;
  }

  const auto lay = layout(params_);
  const std::size_t n_data_sc = lay.data_pos.size();

  MimoRxResult result;
  result.streams = k;
  result.cfo_hz = coarse + fine;
  result.sync_index = *start;

  // ---- SIG (antenna-0 column, maximum-ratio combined) ----
  detail::SignalField sig;
  {
    CVec eq(n_data_sc);
    std::vector<CVec> y(k);
    for (std::size_t a = 0; a < k; ++a)
      y[a] = modem_.demodulate_symbol(CSpan(corr[a]).subspan(sig_off, sym_len));
    // Common phase from pilots on the h(:,0) column.
    Complex cpe{0.0, 0.0};
    for (const std::size_t pp : lay.pilot_pos)
      for (std::size_t a = 0; a < k; ++a)
        cpe += y[a][pp] * std::conj(h[pp](a, 0) * pilot_polarity(0));
    const Complex rot = std::abs(cpe) > 1e-30 ? cpe / std::abs(cpe) : Complex{1.0, 0.0};
    double nv_acc = 0.0;
    for (std::size_t i = 0; i < n_data_sc; ++i) {
      const std::size_t pos = lay.data_pos[i];
      Complex num{0.0, 0.0};
      double den = 0.0;
      for (std::size_t a = 0; a < k; ++a) {
        num += std::conj(h[pos](a, 0)) * y[a][pos];
        den += std::norm(h[pos](a, 0));
      }
      eq[i] = num * std::conj(rot) / std::max(den, 1e-30);
      nv_acc += noise_var / std::max(den, 1e-30);
    }
    auto llrs = demodulate_soft(eq, Modulation::BPSK, nv_acc / n_data_sc);
    auto deint = deinterleave(llrs, Modulation::BPSK, n_data_sc);
    deint.resize(coded_length(detail::signal_field_bits(), CodeRate::R1_2));
    const auto msg = viterbi_decode(deint, CodeRate::R1_2, detail::signal_field_bits());
    const auto decoded = detail::decode_signal_field(msg);
    if (!decoded) return std::nullopt;
    sig = *decoded;
    result.mcs_index = sig.mcs_index;
  }

  const Mcs& mcs = mcs_table().at(static_cast<std::size_t>(sig.mcs_index));
  const std::size_t n_cbps = n_data_sc * bits_per_symbol(mcs.modulation);
  const std::size_t coded_len = coded_length(sig.payload_bits + 32, mcs.rate);
  const std::size_t n_sym = (coded_len + n_cbps - 1) / n_cbps;
  const std::size_t data_off = sig_off + sym_len;
  if (*start + data_off + n_sym * sym_len > rx[0].size()) return std::nullopt;

  // ---- MMSE detection per subcarrier, per symbol ----
  std::vector<std::vector<double>> llr_streams(k);
  std::vector<double> evm_acc(k, 0.0);
  std::size_t evm_count = 0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    std::vector<CVec> y(k);
    for (std::size_t a = 0; a < k; ++a)
      y[a] = modem_.demodulate_symbol(CSpan(corr[a]).subspan(data_off + s * sym_len, sym_len));

    // Common phase error from pilots (antenna-0 column carries them).
    Complex cpe{0.0, 0.0};
    const double pol = pilot_polarity(s + 1);
    for (const std::size_t pp : lay.pilot_pos)
      for (std::size_t a = 0; a < k; ++a)
        cpe += y[a][pp] * std::conj(h[pp](a, 0) * pol);
    const Complex rot = std::abs(cpe) > 1e-30 ? cpe / std::abs(cpe) : Complex{1.0, 0.0};

    std::vector<CVec> eq(k, CVec(n_data_sc));
    std::vector<double> nv(k, 0.0);
    for (std::size_t i = 0; i < n_data_sc; ++i) {
      const std::size_t pos = lay.data_pos[i];
      const linalg::Matrix& hi = h[pos];
      // MMSE: W = (H^H H + sigma^2 I)^-1 H^H.
      linalg::Matrix gram = hi.adjoint() * hi;
      for (std::size_t d = 0; d < k; ++d) gram(d, d) += noise_var;
      const linalg::Matrix w = linalg::solve(gram, hi.adjoint());
      linalg::Matrix yv(k, 1);
      for (std::size_t a = 0; a < k; ++a) yv(a, 0) = y[a][pos] * std::conj(rot);
      const linalg::Matrix xhat = w * yv;
      for (std::size_t st = 0; st < k; ++st) {
        eq[st][i] = xhat(st, 0);
        double wrow = 0.0;
        for (std::size_t a = 0; a < k; ++a) wrow += std::norm(w(st, a));
        nv[st] += noise_var * wrow;
      }
    }
    for (std::size_t st = 0; st < k; ++st) {
      auto sym_llrs = demodulate_soft(eq[st], mcs.modulation, nv[st] / n_data_sc);
      const auto deint = deinterleave(sym_llrs, mcs.modulation, n_data_sc);
      llr_streams[st].insert(llr_streams[st].end(), deint.begin(), deint.end());
      const auto hard = demodulate_hard(eq[st], mcs.modulation);
      const CVec ideal = phy::modulate(hard, mcs.modulation);
      for (std::size_t i = 0; i < eq[st].size(); ++i)
        evm_acc[st] += std::norm(eq[st][i] - ideal[i]);
    }
    evm_count += n_data_sc;
  }

  // ---- per-stream decode and payload reassembly ----
  result.stream_crc_ok.assign(k, false);
  result.stream_snr_db.assign(k, 0.0);
  result.crc_ok = true;
  for (std::size_t st = 0; st < k; ++st) {
    llr_streams[st].resize(coded_len);
    auto decoded = viterbi_decode(llr_streams[st], mcs.rate, sig.payload_bits + 32);
    decoded = scramble(decoded, static_cast<std::uint8_t>(0x5D ^ (st * 0x21)));
    result.stream_crc_ok[st] = check_crc(decoded);
    result.crc_ok = result.crc_ok && result.stream_crc_ok[st];
    decoded.resize(sig.payload_bits);
    result.payload.insert(result.payload.end(), decoded.begin(), decoded.end());
    const double evm = evm_acc[st] / std::max<double>(static_cast<double>(evm_count), 1.0);
    result.stream_snr_db[st] = evm > 0.0 ? -db_from_power(evm) : 100.0;
  }
  return result;
}

}  // namespace ff::phy
