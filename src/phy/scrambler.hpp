// 802.11 data scrambler (x^7 + x^4 + 1, self-synchronizing additive form).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ff::phy {

/// Scramble (or descramble — the operation is an involution) a bit stream
/// with the 127-bit 802.11 scrambling sequence starting from `seed`.
std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits, std::uint8_t seed = 0x5D);

}  // namespace ff::phy
