// CRC-32 (IEEE 802.3 polynomial) over bit sequences, used as the frame check
// sequence of PHY packets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ff::phy {

/// CRC-32 of a bit sequence (bits as 0/1 bytes, MSB-first semantics).
std::uint32_t crc32_bits(std::span<const std::uint8_t> bits);

/// Append the 32 CRC bits to a message.
std::vector<std::uint8_t> append_crc(std::span<const std::uint8_t> bits);

/// True if the last 32 bits are the CRC of the preceding bits.
bool check_crc(std::span<const std::uint8_t> bits_with_crc);

}  // namespace ff::phy
