// OFDM symbol modulation/demodulation for the 64-point, 56-subcarrier PHY.
#pragma once

#include "common/types.hpp"
#include "dsp/fft.hpp"
#include "phy/params.hpp"

namespace ff::phy {

/// Maps frequency-domain subcarrier values to/from time-domain OFDM symbols
/// (IFFT + cyclic prefix). One instance caches the FFT plan.
class OfdmModem {
 public:
  explicit OfdmModem(OfdmParams params);

  const OfdmParams& params() const { return params_; }

  /// Build one time-domain symbol (cp_len + fft_size samples) from values on
  /// the used subcarriers (ascending logical index order, 56 entries).
  CVec modulate_symbol(CSpan used_values) const;

  /// Recover the used-subcarrier values from one received symbol. `symbol`
  /// must be symbol_len() samples; the CP is discarded.
  CVec demodulate_symbol(CSpan symbol) const;

  /// Demodulate with an intra-CP timing offset: start the FFT window
  /// `cp_advance` samples early (robustness margin against multipath that
  /// arrives before the sync point).
  CVec demodulate_symbol(CSpan symbol, std::size_t cp_advance) const;

  /// Build a full burst of symbols; `values` has 56 entries per symbol.
  /// All symbols go through one batched FftPlan::execute_many call (each
  /// transform is bit-identical to the per-symbol path).
  CVec modulate_burst(CSpan values) const;

  /// Split a burst into symbols and demodulate each. Batched like
  /// modulate_burst; per-symbol results match demodulate_symbol bit for bit.
  std::vector<CVec> demodulate_burst(CSpan samples, std::size_t n_symbols) const;

 private:
  /// Pull the used-subcarrier values out of one FFT output (shared by the
  /// single-symbol and burst demodulators).
  CVec extract_used(CSpan freq, std::size_t cp_advance) const;

  OfdmParams params_;
  dsp::FftPlan plan_;
  std::vector<int> used_;
};

}  // namespace ff::phy
