#include "phy/scrambler.hpp"

#include "common/check.hpp"
#include "dsp/sequence.hpp"

namespace ff::phy {

std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits, std::uint8_t seed) {
  FF_CHECK_MSG(seed != 0, "scrambler seed must be nonzero");
  auto lfsr = dsp::Lfsr::scrambler(seed);
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    out[i] = static_cast<std::uint8_t>((bits[i] ^ lfsr.next_bit()) & 1);
  return out;
}

}  // namespace ff::phy
