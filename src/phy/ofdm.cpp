#include "phy/ofdm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ff::phy {

OfdmModem::OfdmModem(OfdmParams params)
    : params_(params), plan_(params.fft_size), used_(params.used_subcarriers()) {}

CVec OfdmModem::modulate_symbol(CSpan used_values) const {
  FF_CHECK_MSG(used_values.size() == used_.size(),
               "expected " << used_.size() << " subcarrier values, got " << used_values.size());
  CVec freq(params_.fft_size, Complex{});
  for (std::size_t i = 0; i < used_.size(); ++i)
    freq[params_.fft_bin(used_[i])] = used_values[i];
  plan_.inverse(freq);
  // Normalize so symbol power equals mean subcarrier power: the IFFT's 1/N
  // spreads power across N bins but only |used| carry signal.
  const double norm = std::sqrt(static_cast<double>(params_.fft_size) *
                                static_cast<double>(params_.fft_size) /
                                static_cast<double>(used_.size()));
  CVec symbol(params_.symbol_len());
  for (std::size_t i = 0; i < params_.fft_size; ++i) freq[i] *= norm;
  // Cyclic prefix = tail of the IFFT output.
  for (std::size_t i = 0; i < params_.cp_len; ++i)
    symbol[i] = freq[params_.fft_size - params_.cp_len + i];
  for (std::size_t i = 0; i < params_.fft_size; ++i) symbol[params_.cp_len + i] = freq[i];
  return symbol;
}

CVec OfdmModem::demodulate_symbol(CSpan symbol) const { return demodulate_symbol(symbol, 0); }

CVec OfdmModem::demodulate_symbol(CSpan symbol, std::size_t cp_advance) const {
  FF_CHECK(symbol.size() == params_.symbol_len());
  FF_CHECK(cp_advance < params_.cp_len);
  CVec freq(params_.fft_size);
  const std::size_t start = params_.cp_len - cp_advance;
  for (std::size_t i = 0; i < params_.fft_size; ++i) freq[i] = symbol[start + i];
  plan_.forward(freq);
  const double norm = 1.0 / std::sqrt(static_cast<double>(params_.fft_size) *
                                      static_cast<double>(params_.fft_size) /
                                      static_cast<double>(used_.size()));
  CVec out(used_.size());
  for (std::size_t i = 0; i < used_.size(); ++i) {
    Complex v = freq[params_.fft_bin(used_[i])] * norm;
    if (cp_advance != 0) {
      // Undo the phase ramp introduced by the early FFT window: starting the
      // window d samples early delays the content, multiplying bin k by
      // e^{-j 2 pi k d / N}; compensate with the conjugate ramp.
      const double ang = 2.0 * 3.14159265358979323846 * static_cast<double>(used_[i]) *
                         static_cast<double>(cp_advance) / static_cast<double>(params_.fft_size);
      v *= Complex{std::cos(ang), std::sin(ang)};
    }
    out[i] = v;
  }
  return out;
}

CVec OfdmModem::modulate_burst(CSpan values) const {
  FF_CHECK(values.size() % used_.size() == 0);
  const std::size_t n_symbols = values.size() / used_.size();
  CVec out;
  out.reserve(n_symbols * params_.symbol_len());
  for (std::size_t s = 0; s < n_symbols; ++s) {
    const CVec sym = modulate_symbol(values.subspan(s * used_.size(), used_.size()));
    out.insert(out.end(), sym.begin(), sym.end());
  }
  return out;
}

std::vector<CVec> OfdmModem::demodulate_burst(CSpan samples, std::size_t n_symbols) const {
  FF_CHECK(samples.size() >= n_symbols * params_.symbol_len());
  std::vector<CVec> out;
  out.reserve(n_symbols);
  for (std::size_t s = 0; s < n_symbols; ++s)
    out.push_back(demodulate_symbol(samples.subspan(s * params_.symbol_len(),
                                                    params_.symbol_len())));
  return out;
}

}  // namespace ff::phy
