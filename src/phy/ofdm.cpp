#include "phy/ofdm.hpp"

#include <cmath>

#include "common/check.hpp"
#include "dsp/kernels/kernels.hpp"
#include "dsp/kernels/workspace.hpp"

namespace ff::phy {

OfdmModem::OfdmModem(OfdmParams params)
    : params_(params), plan_(params.fft_size), used_(params.used_subcarriers()) {}

CVec OfdmModem::modulate_symbol(CSpan used_values) const {
  FF_CHECK_MSG(used_values.size() == used_.size(),
               "expected " << used_.size() << " subcarrier values, got " << used_values.size());
  CVec freq(params_.fft_size, Complex{});
  for (std::size_t i = 0; i < used_.size(); ++i)
    freq[params_.fft_bin(used_[i])] = used_values[i];
  plan_.inverse(freq);
  // Normalize so symbol power equals mean subcarrier power: the IFFT's 1/N
  // spreads power across N bins but only |used| carry signal.
  const double norm = std::sqrt(static_cast<double>(params_.fft_size) *
                                static_cast<double>(params_.fft_size) /
                                static_cast<double>(used_.size()));
  CVec symbol(params_.symbol_len());
  for (std::size_t i = 0; i < params_.fft_size; ++i) freq[i] *= norm;
  // Cyclic prefix = tail of the IFFT output.
  for (std::size_t i = 0; i < params_.cp_len; ++i)
    symbol[i] = freq[params_.fft_size - params_.cp_len + i];
  for (std::size_t i = 0; i < params_.fft_size; ++i) symbol[params_.cp_len + i] = freq[i];
  return symbol;
}

CVec OfdmModem::extract_used(CSpan freq, std::size_t cp_advance) const {
  const double norm = 1.0 / std::sqrt(static_cast<double>(params_.fft_size) *
                                      static_cast<double>(params_.fft_size) /
                                      static_cast<double>(used_.size()));
  CVec out(used_.size());
  for (std::size_t i = 0; i < used_.size(); ++i) {
    Complex v = freq[params_.fft_bin(used_[i])] * norm;
    if (cp_advance != 0) {
      // Undo the phase ramp introduced by the early FFT window: starting the
      // window d samples early delays the content, multiplying bin k by
      // e^{-j 2 pi k d / N}; compensate with the conjugate ramp.
      const double ang = 2.0 * 3.14159265358979323846 * static_cast<double>(used_[i]) *
                         static_cast<double>(cp_advance) / static_cast<double>(params_.fft_size);
      v *= Complex{std::cos(ang), std::sin(ang)};
    }
    out[i] = v;
  }
  return out;
}

CVec OfdmModem::demodulate_symbol(CSpan symbol) const { return demodulate_symbol(symbol, 0); }

CVec OfdmModem::demodulate_symbol(CSpan symbol, std::size_t cp_advance) const {
  FF_CHECK(symbol.size() == params_.symbol_len());
  FF_CHECK(cp_advance < params_.cp_len);
  CVec freq(params_.fft_size);
  const std::size_t start = params_.cp_len - cp_advance;
  for (std::size_t i = 0; i < params_.fft_size; ++i) freq[i] = symbol[start + i];
  plan_.forward(freq);
  return extract_used(freq, cp_advance);
}

CVec OfdmModem::modulate_burst(CSpan values) const {
  FF_CHECK(values.size() % used_.size() == 0);
  const std::size_t n_symbols = values.size() / used_.size();
  CVec out(n_symbols * params_.symbol_len());
  if (n_symbols == 0) return out;
  const std::size_t nfft = params_.fft_size;
  // Stage every symbol's subcarrier grid contiguously and run ONE batched
  // inverse transform (each block bit-identical to plan_.inverse on it).
  thread_local dsp::kernels::Workspace ws;
  CMutSpan freq = ws.get(0, n_symbols * nfft);
  std::fill(freq.begin(), freq.end(), Complex{});
  for (std::size_t s = 0; s < n_symbols; ++s)
    for (std::size_t i = 0; i < used_.size(); ++i)
      freq[s * nfft + params_.fft_bin(used_[i])] = values[s * used_.size() + i];
  CMutSpan time = ws.get(1, n_symbols * nfft);
  plan_.execute_many(freq, time, n_symbols, /*invert=*/true);
  const double norm = std::sqrt(static_cast<double>(nfft) * static_cast<double>(nfft) /
                                static_cast<double>(used_.size()));
  dsp::kernels::scale_real(norm, time, time);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    const Complex* sym = time.data() + s * nfft;
    Complex* dst = out.data() + s * params_.symbol_len();
    for (std::size_t i = 0; i < params_.cp_len; ++i)
      dst[i] = sym[nfft - params_.cp_len + i];
    for (std::size_t i = 0; i < nfft; ++i) dst[params_.cp_len + i] = sym[i];
  }
  return out;
}

std::vector<CVec> OfdmModem::demodulate_burst(CSpan samples, std::size_t n_symbols) const {
  FF_CHECK(samples.size() >= n_symbols * params_.symbol_len());
  std::vector<CVec> out;
  out.reserve(n_symbols);
  if (n_symbols == 0) return out;
  const std::size_t nfft = params_.fft_size;
  // Gather the CP-stripped windows contiguously, one batched forward
  // transform, then per-symbol bin extraction.
  thread_local dsp::kernels::Workspace ws;
  CMutSpan windows = ws.get(0, n_symbols * nfft);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    const CSpan sym = samples.subspan(s * params_.symbol_len(), params_.symbol_len());
    std::copy(sym.begin() + static_cast<std::ptrdiff_t>(params_.cp_len), sym.end(),
              windows.begin() + static_cast<std::ptrdiff_t>(s * nfft));
  }
  CMutSpan spectra = ws.get(1, n_symbols * nfft);
  plan_.execute_many(windows, spectra, n_symbols);
  for (std::size_t s = 0; s < n_symbols; ++s)
    out.push_back(extract_used(CSpan{spectra.data() + s * nfft, nfft}, 0));
  return out;
}

}  // namespace ff::phy
