// OFDM PHY numerology.
//
// Matches the paper's prototype (Sec. 4.3): "a standard 20MHz OFDM PHY that
// is based on the WiFi PHY. The PHY uses 56 subcarriers and a 400ns cyclic
// prefix interval". That is 802.11n HT20 numerology with the short guard
// interval: 64-point FFT at 20 Msps, 52 data + 4 pilot subcarriers, CP of 8
// samples = 400 ns, symbol 3.2 us + 0.4 us.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace ff::phy {

struct OfdmParams {
  std::size_t fft_size = 64;
  std::size_t cp_len = 8;          // 400 ns at 20 Msps (short guard interval)
  double sample_rate_hz = 20e6;
  double carrier_hz = 2.45e9;
  /// Used subcarriers span -used_half..-1, +1..+used_half (28 => HT20's 56).
  std::size_t used_half = 28;

  /// The WiFi numerology above (the prototype's PHY).
  static OfdmParams wifi20() { return OfdmParams{}; }

  /// LTE 5 MHz numerology: 512-point FFT at 7.68 Msps (15 kHz subcarriers),
  /// 300 used tones, normal CP of 36 samples = 4.69 us — the figure the
  /// paper quotes when arguing FF's latency budget is easy for LTE.
  static OfdmParams lte5() {
    OfdmParams p;
    p.fft_size = 512;
    p.cp_len = 36;
    p.sample_rate_hz = 7.68e6;
    p.carrier_hz = 2.6e9;
    p.used_half = 150;
    return p;
  }

  std::size_t symbol_len() const { return fft_size + cp_len; }
  double sample_period_s() const { return 1.0 / sample_rate_hz; }
  double cp_duration_s() const { return static_cast<double>(cp_len) * sample_period_s(); }
  double symbol_duration_s() const {
    return static_cast<double>(symbol_len()) * sample_period_s();
  }
  double subcarrier_spacing_hz() const {
    return sample_rate_hz / static_cast<double>(fft_size);
  }

  /// Logical subcarrier indices in use: -used_half..-1, +1..+used_half.
  std::vector<int> used_subcarriers() const;

  /// Pilot subcarrier indices at +-1/4 and +-3/4 of the used span: for the
  /// default WiFi numerology this is exactly HT20's {-21, -7, +7, +21}.
  std::vector<int> pilot_subcarriers() const;

  /// Data subcarriers = used minus pilots (52 entries, ascending).
  std::vector<int> data_subcarriers() const;

  /// Baseband frequency (Hz) of logical subcarrier k.
  double subcarrier_freq_hz(int k) const {
    return static_cast<double>(k) * subcarrier_spacing_hz();
  }

  /// Baseband frequencies of all used subcarriers, ascending index order.
  std::vector<double> used_subcarrier_freqs() const;

  /// Map logical index k (negative allowed) to the FFT bin in [0, fft_size).
  std::size_t fft_bin(int k) const;
};

/// The numerology used across the project unless stated otherwise.
OfdmParams default_params();

}  // namespace ff::phy
