// 802.11-style preamble: short training field (STF, 10 repetitions of a
// 16-sample word) and long training field (LTF, double-length guard plus two
// 64-sample words).
//
// The preamble matters twice in this system: the OFDM receiver uses it for
// sync / CFO / channel estimation as usual, and the FF relay's uplink sender
// identification (Sec. 6) fingerprints the channel-transformed STF against a
// per-client database.
#pragma once

#include "common/types.hpp"
#include "phy/params.hpp"

namespace ff::phy {

/// Frequency-domain STF values on the 56 used subcarriers (ascending index
/// order). Non-zero on every 4th subcarrier, which makes the time signal
/// periodic with period 16.
CVec stf_used_values(const OfdmParams& params);

/// Frequency-domain LTF values (+-1 on all 56 used subcarriers).
CVec ltf_used_values(const OfdmParams& params);

/// Time-domain STF: 10 repetitions of the 16-sample word (160 samples),
/// unit average power.
CVec stf_time(const OfdmParams& params);

/// Time-domain LTF: 2*cp guard followed by two 64-sample words
/// (2*cp + 128 samples), unit average power.
CVec ltf_time(const OfdmParams& params);

/// Complete preamble: STF followed by LTF.
CVec preamble_time(const OfdmParams& params);

/// Total preamble length in samples.
std::size_t preamble_len(const OfdmParams& params);

/// Coarse CFO estimate from STF periodicity: the phase drift across one
/// 16-sample period. Averages over the whole STF span in `rx`.
/// `rx` must contain the STF starting at index 0.
double estimate_cfo_stf(CSpan rx, const OfdmParams& params);

/// Fine CFO estimate from the two repeated LTF words (`rx` starts at the
/// first LTF word, i.e. after the LTF guard).
double estimate_cfo_ltf(CSpan rx, const OfdmParams& params);

/// Least-squares channel estimate on the 56 used subcarriers from the two
/// received LTF words (`rx` starts at the first LTF word). Averages the two.
CVec estimate_channel_ltf(CSpan rx, const OfdmParams& params);

}  // namespace ff::phy
