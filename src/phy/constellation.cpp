#include "phy/constellation.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ff::phy {

namespace {

/// Inverse Gray code.
std::uint32_t inverse_gray(std::uint32_t g) {
  std::uint32_t x = 0;
  for (; g; g >>= 1) x ^= g;
  return x;
}

/// Per-axis PAM amplitude for a square QAM with `levels` levels per axis,
/// Gray-mapped: bit pattern b in [0, levels) -> odd integer coordinate.
double pam_level(std::uint32_t bits, std::uint32_t levels) {
  const std::uint32_t idx = inverse_gray(bits);
  return 2.0 * static_cast<double>(idx) - static_cast<double>(levels - 1);
}

/// Normalization so the constellation has unit average power.
double qam_scale(std::uint32_t levels) {
  // E[x^2] over PAM levels {±1, ±3, ...}: (levels^2 - 1)/3 per axis.
  const double per_axis = (static_cast<double>(levels) * levels - 1.0) / 3.0;
  return 1.0 / std::sqrt(2.0 * per_axis);
}

struct QamSpec {
  std::uint32_t bits_i;  // bits on the I axis
  std::uint32_t bits_q;  // bits on the Q axis
};

QamSpec spec(Modulation m) {
  switch (m) {
    case Modulation::BPSK: return {1, 0};
    case Modulation::QPSK: return {1, 1};
    case Modulation::QAM16: return {2, 2};
    case Modulation::QAM64: return {3, 3};
    case Modulation::QAM256: return {4, 4};
  }
  FF_CHECK_MSG(false, "unknown modulation");
  return {};
}

}  // namespace

std::size_t bits_per_symbol(Modulation m) {
  const auto s = spec(m);
  return s.bits_i + s.bits_q;
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::BPSK: return "BPSK";
    case Modulation::QPSK: return "QPSK";
    case Modulation::QAM16: return "16-QAM";
    case Modulation::QAM64: return "64-QAM";
    case Modulation::QAM256: return "256-QAM";
  }
  return "?";
}

CVec modulate(std::span<const std::uint8_t> bits, Modulation m) {
  const auto s = spec(m);
  const std::size_t bps = s.bits_i + s.bits_q;
  FF_CHECK_MSG(bits.size() % bps == 0, "bit count not a multiple of bits/symbol");
  const std::uint32_t levels_i = 1u << s.bits_i;
  const std::uint32_t levels_q = s.bits_q ? (1u << s.bits_q) : 1u;
  const double scale = (m == Modulation::BPSK)
                           ? 1.0
                           : qam_scale(levels_i);

  CVec out;
  out.reserve(bits.size() / bps);
  for (std::size_t n = 0; n < bits.size(); n += bps) {
    std::uint32_t bi = 0, bq = 0;
    for (std::uint32_t k = 0; k < s.bits_i; ++k) bi = (bi << 1) | bits[n + k];
    for (std::uint32_t k = 0; k < s.bits_q; ++k) bq = (bq << 1) | bits[n + s.bits_i + k];
    if (m == Modulation::BPSK) {
      out.push_back(Complex{bi ? -1.0 : 1.0, 0.0});
    } else {
      out.push_back(scale * Complex{pam_level(bi, levels_i), pam_level(bq, levels_q)});
    }
  }
  return out;
}

CVec constellation_points(Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  const std::size_t count = std::size_t{1} << bps;
  std::vector<std::uint8_t> bits(bps);
  CVec pts;
  pts.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    for (std::size_t k = 0; k < bps; ++k) bits[k] = static_cast<std::uint8_t>((v >> (bps - 1 - k)) & 1);
    const CVec one = modulate(bits, m);
    pts.push_back(one[0]);
  }
  return pts;
}

std::vector<std::uint8_t> demodulate_hard(CSpan symbols, Modulation m) {
  const CVec pts = constellation_points(m);
  const std::size_t bps = bits_per_symbol(m);
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * bps);
  for (const Complex y : symbols) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const double d = std::norm(y - pts[i]);
      if (d < best_d) { best_d = d; best = i; }
    }
    for (std::size_t k = 0; k < bps; ++k)
      bits.push_back(static_cast<std::uint8_t>((best >> (bps - 1 - k)) & 1));
  }
  return bits;
}

std::vector<double> demodulate_soft(CSpan symbols, Modulation m, double noise_var) {
  const CVec pts = constellation_points(m);
  const std::size_t bps = bits_per_symbol(m);
  const double inv_nv = 1.0 / std::max(noise_var, 1e-30);
  std::vector<double> llrs;
  llrs.reserve(symbols.size() * bps);
  for (const Complex y : symbols) {
    for (std::size_t k = 0; k < bps; ++k) {
      double best0 = std::numeric_limits<double>::max();
      double best1 = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const double d = std::norm(y - pts[i]);
        const bool bit = ((i >> (bps - 1 - k)) & 1) != 0;
        if (bit) best1 = std::min(best1, d); else best0 = std::min(best0, d);
      }
      llrs.push_back((best1 - best0) * inv_nv);
    }
  }
  return llrs;
}

double min_snr_db(Modulation m) {
  switch (m) {
    case Modulation::BPSK: return 1.0;
    case Modulation::QPSK: return 4.0;
    case Modulation::QAM16: return 11.0;
    case Modulation::QAM64: return 17.5;
    case Modulation::QAM256: return 24.0;
  }
  return 0.0;
}

}  // namespace ff::phy
