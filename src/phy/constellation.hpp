// Gray-mapped QAM constellations, BPSK through 256-QAM.
//
// 256-QAM matters here: the paper's headline mechanism is that FF's SNR gain
// lets the AP step up from BPSK/QAM16 to 64/256-QAM (Sec. 5.2), so the rate
// table must extend to the 802.11ac modulations.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace ff::phy {

enum class Modulation : std::uint8_t { BPSK, QPSK, QAM16, QAM64, QAM256 };

/// Bits carried per constellation symbol (1, 2, 4, 6, 8).
std::size_t bits_per_symbol(Modulation m);

std::string to_string(Modulation m);

/// Map a bit sequence to unit-average-power constellation points.
/// bits.size() must be a multiple of bits_per_symbol(m).
CVec modulate(std::span<const std::uint8_t> bits, Modulation m);

/// Hard-decision demap (minimum distance).
std::vector<std::uint8_t> demodulate_hard(CSpan symbols, Modulation m);

/// Soft demap: max-log LLRs, one per bit, positive means bit 0 more likely.
/// `noise_var` is the complex noise variance per symbol.
std::vector<double> demodulate_soft(CSpan symbols, Modulation m, double noise_var);

/// All constellation points of a modulation (Gray-mapped order: the point at
/// index i is the encoding of the bit pattern i).
CVec constellation_points(Modulation m);

/// Minimum SNR (dB) at which the modulation's uncoded symbol error rate is
/// acceptable — used for sanity checks, the MCS table has the real
/// operational thresholds.
double min_snr_db(Modulation m);

}  // namespace ff::phy
