// Forward error correction: the 802.11 rate-1/2 K=7 convolutional code
// (generators 133/171 octal) with puncturing to 2/3, 3/4 and 5/6, and a
// soft-decision Viterbi decoder.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace ff::phy {

enum class CodeRate : std::uint8_t { R1_2, R2_3, R3_4, R5_6 };

/// Numeric value of the rate (0.5, 2/3, ...).
double code_rate_value(CodeRate r);

std::string to_string(CodeRate r);

/// Convolutionally encode (rate 1/2 mother code), then puncture to `rate`.
/// The encoder is terminated with 6 tail zeros (callers account for them).
std::vector<std::uint8_t> convolutional_encode(std::span<const std::uint8_t> bits,
                                               CodeRate rate);

/// Soft-decision Viterbi decode. `llrs` are per-coded-bit log-likelihood
/// ratios (positive = bit 0); punctured positions are re-inserted as
/// zero-confidence erasures. `message_bits` is the original message length
/// (excluding the 6 tail bits).
std::vector<std::uint8_t> viterbi_decode(std::span<const double> llrs, CodeRate rate,
                                         std::size_t message_bits);

/// Number of coded bits produced for a message of `message_bits` (includes
/// tail termination and puncturing).
std::size_t coded_length(std::size_t message_bits, CodeRate rate);

/// Puncturing pattern (1 = transmitted) over the mother-code bit pairs.
/// Exposed for tests.
std::vector<std::uint8_t> puncture_pattern(CodeRate rate);

}  // namespace ff::phy
