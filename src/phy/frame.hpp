// End-to-end SISO packet transmitter and receiver.
//
// Packet layout (Fig. 19 of the paper, downlink form):
//
//   [PN signature (optional, 2 x 80 samples)] STF (160) | LTF (144) |
//   SIGNAL (1 OFDM symbol, BPSK 1/2) | DATA (N OFDM symbols at the MCS)
//
// The optional signature is FF's downlink client identifier (Sec. 6): the
// relay correlates against it and switches in the right constructive filter
// before the standard preamble starts; clients ignore it because their
// decoding only kicks in at the standard WiFi preamble.
//
// The receiver implements packet detection (STF cross-correlation), coarse +
// fine CFO estimation/correction, LS channel estimation from the LTF,
// per-subcarrier equalization with pilot-based common-phase tracking, soft
// demapping, deinterleaving, Viterbi decoding, descrambling and CRC check.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "phy/fec.hpp"
#include "phy/mcs.hpp"
#include "phy/ofdm.hpp"
#include "phy/params.hpp"

namespace ff::phy {

struct TxOptions {
  int mcs_index = 0;
  std::uint32_t signature_client = 0;  // 0 = no PN signature prefix
  std::uint8_t scrambler_seed = 0x5D;
};

/// Length (samples) of the optional PN signature prefix: 4 us repeated
/// twice at 20 Msps.
std::size_t signature_prefix_len(const OfdmParams& params);

class Transmitter {
 public:
  explicit Transmitter(OfdmParams params);

  const OfdmParams& params() const { return params_; }

  /// Build a complete packet at unit mean power. `payload` is a bit
  /// sequence (max 4095 bits).
  CVec modulate(std::span<const std::uint8_t> payload, const TxOptions& opts = {}) const;

  /// Number of DATA symbols a payload needs at the given MCS (payload + CRC
  /// + tail, after puncturing, rounded up to whole symbols).
  std::size_t data_symbols(std::size_t payload_bits, int mcs_index) const;

 private:
  OfdmParams params_;
  OfdmModem modem_;
};

struct RxResult {
  std::vector<std::uint8_t> payload;
  bool crc_ok = false;
  int mcs_index = 0;
  double cfo_hz = 0.0;           // estimated carrier offset
  double snr_db = 0.0;           // per-subcarrier-averaged estimate from EVM
  double evm_db = 0.0;           // data-symbol EVM vs decided constellation
  CVec channel_est;              // 56 per-subcarrier channel values
  std::size_t sync_index = 0;    // sample index where the STF was found
};

namespace detail {
/// SIGNAL-field payload codec shared by the SISO and MIMO transceivers:
/// 4-bit MCS + 12-bit length + 4-bit checksum, rate-1/2 coded to 52 bits.
std::vector<std::uint8_t> encode_signal_field(int mcs_index, std::size_t payload_bits);
struct SignalField {
  int mcs_index = 0;
  std::size_t payload_bits = 0;
};
std::optional<SignalField> decode_signal_field(std::span<const std::uint8_t> bits);
std::size_t signal_field_bits();
}  // namespace detail

class Receiver {
 public:
  explicit Receiver(OfdmParams params);

  const OfdmParams& params() const { return params_; }

  /// Detect and decode the first packet in `samples`. Returns nullopt when
  /// no preamble is found or the SIGNAL field is undecodable.
  std::optional<RxResult> receive(CSpan samples) const;

  /// Decode a packet whose preamble starts at `start` (skips detection —
  /// used by tests and by the relay, which has its own detection).
  std::optional<RxResult> receive_at(CSpan samples, std::size_t start) const;

  /// Packet detection only: index where the STF begins, if found.
  std::optional<std::size_t> detect_preamble(CSpan samples, double threshold = 0.6) const;

 private:
  OfdmParams params_;
  OfdmModem modem_;
};

}  // namespace ff::phy
