// Per-OFDM-symbol block interleaver (802.11a two-permutation form, adapted
// to 52 data subcarriers). Spreads adjacent coded bits across subcarriers so
// a frequency-selective notch doesn't wipe out a run of bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/constellation.hpp"

namespace ff::phy {

/// Interleaving permutation for one OFDM symbol carrying
/// `data_subcarriers * bits_per_symbol(m)` coded bits.
/// Returns perm such that output[perm[k]] = input[k].
std::vector<std::size_t> interleave_permutation(Modulation m, std::size_t data_subcarriers);

/// Apply the per-symbol interleaver to a whole stream (length must be a
/// multiple of the symbol bit count).
std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits, Modulation m,
                                     std::size_t data_subcarriers);

/// Inverse operation, usable on soft values too.
std::vector<double> deinterleave(std::span<const double> llrs, Modulation m,
                                 std::size_t data_subcarriers);

}  // namespace ff::phy
