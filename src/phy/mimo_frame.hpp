// 2x2 (generally K x K) MIMO packet transmitter and receiver with spatial
// multiplexing — the sample-level counterpart of the paper's 2x2 prototype
// (Sec. 4.3: "a MIMO full duplex 2x2 FF relay").
//
// Packet layout (HT-style, simplified):
//
//   antenna 0 : STF | LTF | HT-LTF_1 .. HT-LTF_K | SIG | DATA(stream 0)
//   antenna k : 0   | 0   | HT-LTF_1 .. HT-LTF_K |  0  | DATA(stream k)
//
// The legacy STF/LTF (antenna 0 only) provide detection, CFO and timing;
// the K HT-LTF symbols, mapped across antennas with a Hadamard P-matrix,
// give the receiver the full per-subcarrier K x K channel; data symbols are
// spatially multiplexed one stream per antenna and detected with MMSE.
// Payload bits are split evenly across streams, each with its own FEC chain
// and CRC.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "phy/frame.hpp"
#include "phy/params.hpp"

namespace ff::phy {

struct MimoTxOptions {
  int mcs_index = 0;        // per-stream MCS (same for all streams)
  std::size_t streams = 2;  // = transmit antennas
};

class MimoTransmitter {
 public:
  explicit MimoTransmitter(OfdmParams params);

  /// Build one packet; returns one sample stream per transmit antenna (all
  /// the same length). `payload` is split evenly across streams (its size
  /// must be a multiple of `streams`).
  std::vector<CVec> modulate(std::span<const std::uint8_t> payload,
                             const MimoTxOptions& opts) const;

 private:
  OfdmParams params_;
  OfdmModem modem_;
};

struct MimoRxResult {
  std::vector<std::uint8_t> payload;   // reassembled from all streams
  bool crc_ok = false;                 // all streams' CRCs passed
  std::vector<bool> stream_crc_ok;     // per stream
  int mcs_index = 0;
  std::size_t streams = 0;
  double cfo_hz = 0.0;
  /// Post-MMSE SINR estimate per stream (dB), from data-symbol EVM.
  std::vector<double> stream_snr_db;
  std::size_t sync_index = 0;
};

class MimoReceiver {
 public:
  explicit MimoReceiver(OfdmParams params);

  /// Decode the first packet found in the per-antenna receive streams.
  std::optional<MimoRxResult> receive(const std::vector<CVec>& rx) const;

 private:
  OfdmParams params_;
  OfdmModem modem_;
};

/// The P-matrix mapping HT-LTF symbols across antennas (Hadamard-like,
/// entries +-1, invertible): row = antenna, column = HT-LTF symbol index.
linalg::Matrix htltf_mapping(std::size_t k);

}  // namespace ff::phy
