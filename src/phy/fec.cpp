#include "phy/fec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ff::phy {

namespace {

constexpr unsigned kConstraint = 7;
constexpr unsigned kStates = 1u << (kConstraint - 1);  // 64

// 802.11 generators: g0 = 133 octal = 1011011b, g1 = 171 octal = 1111001b.
// Convention: bit 6 is the newest input bit.
constexpr unsigned kGen0 = 0b1011011;
constexpr unsigned kGen1 = 0b1111001;

int parity(unsigned x) { return __builtin_popcount(x) & 1; }

/// Output pair for transitioning from `state` with input `bit`.
/// State holds the previous 6 inputs, newest in the MSB... we use:
/// register r = [newest ... oldest] of 7 bits = (bit << 6) | state.
std::pair<int, int> encode_step(unsigned state, unsigned bit) {
  const unsigned reg = (bit << 6) | state;
  return {parity(reg & kGen0), parity(reg & kGen1)};
}

unsigned next_state(unsigned state, unsigned bit) { return ((bit << 6) | state) >> 1; }

}  // namespace

double code_rate_value(CodeRate r) {
  switch (r) {
    case CodeRate::R1_2: return 1.0 / 2.0;
    case CodeRate::R2_3: return 2.0 / 3.0;
    case CodeRate::R3_4: return 3.0 / 4.0;
    case CodeRate::R5_6: return 5.0 / 6.0;
  }
  return 0.0;
}

std::string to_string(CodeRate r) {
  switch (r) {
    case CodeRate::R1_2: return "1/2";
    case CodeRate::R2_3: return "2/3";
    case CodeRate::R3_4: return "3/4";
    case CodeRate::R5_6: return "5/6";
  }
  return "?";
}

std::vector<std::uint8_t> puncture_pattern(CodeRate rate) {
  // Patterns over (A, B) output pairs per input bit, 802.11 style.
  switch (rate) {
    case CodeRate::R1_2: return {1, 1};
    case CodeRate::R2_3: return {1, 1, 1, 0};
    case CodeRate::R3_4: return {1, 1, 1, 0, 0, 1};
    case CodeRate::R5_6: return {1, 1, 1, 0, 0, 1, 1, 0, 0, 1};
  }
  return {1, 1};
}

std::vector<std::uint8_t> convolutional_encode(std::span<const std::uint8_t> bits,
                                               CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  std::vector<std::uint8_t> mother;
  mother.reserve(2 * (bits.size() + 6));
  unsigned state = 0;
  auto push = [&](unsigned bit) {
    const auto [a, b] = encode_step(state, bit);
    mother.push_back(static_cast<std::uint8_t>(a));
    mother.push_back(static_cast<std::uint8_t>(b));
    state = next_state(state, bit);
  };
  for (const std::uint8_t b : bits) push(b & 1u);
  for (int i = 0; i < 6; ++i) push(0);  // tail termination

  std::vector<std::uint8_t> out;
  out.reserve(mother.size());
  for (std::size_t i = 0; i < mother.size(); ++i)
    if (pattern[i % pattern.size()]) out.push_back(mother[i]);
  return out;
}

std::size_t coded_length(std::size_t message_bits, CodeRate rate) {
  const auto pattern = puncture_pattern(rate);
  const std::size_t mother = 2 * (message_bits + 6);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < mother; ++i)
    if (pattern[i % pattern.size()]) ++kept;
  return kept;
}

std::vector<std::uint8_t> viterbi_decode(std::span<const double> llrs, CodeRate rate,
                                         std::size_t message_bits) {
  const auto pattern = puncture_pattern(rate);
  const std::size_t total_bits = message_bits + 6;

  // Re-insert erasures (LLR 0) at punctured positions.
  std::vector<double> full(2 * total_bits, 0.0);
  std::size_t src = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (pattern[i % pattern.size()]) {
      FF_CHECK_MSG(src < llrs.size(), "LLR stream too short for message length");
      full[i] = llrs[src++];
    }
  }

  constexpr double kNegInf = -std::numeric_limits<double>::max() / 4.0;
  std::vector<double> metric(kStates, kNegInf);
  metric[0] = 0.0;
  std::vector<double> next_metric(kStates);
  // Survivor bits, one row per trellis step.
  std::vector<std::vector<std::uint8_t>> survivor(total_bits,
                                                  std::vector<std::uint8_t>(kStates, 0));
  std::vector<std::vector<std::uint8_t>> prev_state_bit = survivor;  // input bit taken
  std::vector<std::vector<std::uint8_t>> prev_state_hi(total_bits,
                                                       std::vector<std::uint8_t>(kStates, 0));

  for (std::size_t t = 0; t < total_bits; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const double la = full[2 * t];
    const double lb = full[2 * t + 1];
    for (unsigned s = 0; s < kStates; ++s) {
      if (metric[s] <= kNegInf / 2) continue;
      for (unsigned bit = 0; bit <= 1; ++bit) {
        const auto [a, b] = encode_step(s, bit);
        // LLR convention: positive favours bit 0. Branch reward adds +llr/2
        // when the coded bit is 0, -llr/2 when it is 1.
        const double reward = (a ? -la : la) * 0.5 + (b ? -lb : lb) * 0.5;
        const unsigned ns = next_state(s, bit);
        const double cand = metric[s] + reward;
        if (cand > next_metric[ns]) {
          next_metric[ns] = cand;
          prev_state_bit[t][ns] = static_cast<std::uint8_t>(bit);
          prev_state_hi[t][ns] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Encoder is terminated, so trace back from state 0.
  std::vector<std::uint8_t> decoded(total_bits);
  unsigned state = 0;
  for (std::size_t t = total_bits; t-- > 0;) {
    decoded[t] = prev_state_bit[t][state];
    state = prev_state_hi[t][state];
  }
  decoded.resize(message_bits);
  return decoded;
}

}  // namespace ff::phy
