#include "phy/frame.hpp"

#include <algorithm>
#include <cmath>

#include "channel/cfo.hpp"
#include "common/check.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/sequence.hpp"
#include "phy/crc.hpp"
#include "phy/interleaver.hpp"
#include "phy/preamble.hpp"
#include "phy/scrambler.hpp"

namespace ff::phy {

namespace {

constexpr std::size_t kSignalMsgBits = 20;  // 4 mcs + 12 length + 4 checksum

std::vector<std::uint8_t> signal_message(int mcs_index, std::size_t payload_bits) {
  FF_CHECK(mcs_index >= 0 && mcs_index < 16);
  FF_CHECK_MSG(payload_bits < 4096, "payload too long for the 12-bit length field");
  std::vector<std::uint8_t> bits;
  bits.reserve(kSignalMsgBits);
  for (int i = 3; i >= 0; --i) bits.push_back(static_cast<std::uint8_t>((mcs_index >> i) & 1));
  for (int i = 11; i >= 0; --i)
    bits.push_back(static_cast<std::uint8_t>((payload_bits >> i) & 1));
  // 4-bit checksum: XOR of the four nibbles.
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i < 16; i += 4) {
    std::uint8_t nib = 0;
    for (std::size_t j = 0; j < 4; ++j) nib = static_cast<std::uint8_t>((nib << 1) | bits[i + j]);
    sum ^= nib;
  }
  for (int i = 3; i >= 0; --i) bits.push_back(static_cast<std::uint8_t>((sum >> i) & 1));
  return bits;
}

struct SignalInfo {
  int mcs_index = 0;
  std::size_t payload_bits = 0;
};

std::optional<SignalInfo> parse_signal(std::span<const std::uint8_t> bits) {
  if (bits.size() != kSignalMsgBits) return std::nullopt;
  int mcs = 0;
  for (int i = 0; i < 4; ++i) mcs = (mcs << 1) | bits[static_cast<std::size_t>(i)];
  std::size_t len = 0;
  for (int i = 0; i < 12; ++i) len = (len << 1) | bits[static_cast<std::size_t>(4 + i)];
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i < 16; i += 4) {
    std::uint8_t nib = 0;
    for (std::size_t j = 0; j < 4; ++j) nib = static_cast<std::uint8_t>((nib << 1) | bits[i + j]);
    sum ^= nib;
  }
  std::uint8_t got = 0;
  for (std::size_t i = 16; i < 20; ++i) got = static_cast<std::uint8_t>((got << 1) | bits[i]);
  if (sum != got) return std::nullopt;
  if (mcs >= static_cast<int>(mcs_table().size())) return std::nullopt;
  return SignalInfo{mcs, len};
}

/// Pilot polarity for data symbol s (deterministic, shared by TX and RX).
double pilot_polarity(std::size_t symbol_index) {
  // 127-periodic 802.11 polarity sequence from the scrambler LFSR.
  static const std::vector<std::uint8_t> seq = [] {
    auto lfsr = dsp::Lfsr::scrambler(0x7F);
    return lfsr.bits(127);
  }();
  return seq[symbol_index % seq.size()] ? -1.0 : 1.0;
}

/// Indices of pilots/data within the 56-entry used-subcarrier array.
struct SubcarrierLayout {
  std::vector<std::size_t> pilot_pos;  // 4 positions
  std::vector<std::size_t> data_pos;   // 52 positions
};

SubcarrierLayout layout(const OfdmParams& params) {
  SubcarrierLayout out;
  const auto used = params.used_subcarriers();
  const auto pilots = params.pilot_subcarriers();
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (std::find(pilots.begin(), pilots.end(), used[i]) != pilots.end())
      out.pilot_pos.push_back(i);
    else
      out.data_pos.push_back(i);
  }
  return out;
}

}  // namespace

namespace detail {

std::vector<std::uint8_t> encode_signal_field(int mcs_index, std::size_t payload_bits) {
  return signal_message(mcs_index, payload_bits);
}

std::optional<SignalField> decode_signal_field(std::span<const std::uint8_t> bits) {
  const auto info = parse_signal(bits);
  if (!info) return std::nullopt;
  return SignalField{info->mcs_index, info->payload_bits};
}

std::size_t signal_field_bits() { return kSignalMsgBits; }

}  // namespace detail

std::size_t signature_prefix_len(const OfdmParams& params) {
  // 4 us repeated twice.
  return 2 * static_cast<std::size_t>(4e-6 * params.sample_rate_hz);
}

Transmitter::Transmitter(OfdmParams params) : params_(params), modem_(params) {}

std::size_t Transmitter::data_symbols(std::size_t payload_bits, int mcs_index) const {
  const Mcs& mcs = mcs_table().at(static_cast<std::size_t>(mcs_index));
  const std::size_t n_cbps =
      params_.data_subcarriers().size() * bits_per_symbol(mcs.modulation);
  const std::size_t coded = coded_length(payload_bits + 32, mcs.rate);
  return (coded + n_cbps - 1) / n_cbps;
}

CVec Transmitter::modulate(std::span<const std::uint8_t> payload, const TxOptions& opts) const {
  const Mcs& mcs = mcs_table().at(static_cast<std::size_t>(opts.mcs_index));
  const auto lay = layout(params_);
  const std::size_t n_data_sc = lay.data_pos.size();

  CVec out;
  // Optional FF downlink signature prefix (Sec. 6).
  if (opts.signature_client != 0) {
    const std::size_t half = signature_prefix_len(params_) / 2;
    const CVec sig = dsp::pn_signature(opts.signature_client, half);
    out.insert(out.end(), sig.begin(), sig.end());
    out.insert(out.end(), sig.begin(), sig.end());
  }

  // Standard preamble.
  const CVec pre = preamble_time(params_);
  out.insert(out.end(), pre.begin(), pre.end());

  // SIGNAL symbol: BPSK rate 1/2, not scrambled.
  {
    const auto msg = signal_message(opts.mcs_index, payload.size());
    auto coded = convolutional_encode(msg, CodeRate::R1_2);
    // 52 coded bits fill the WiFi numerology exactly; wider numerologies
    // zero-pad the rest of the SIGNAL symbol.
    FF_CHECK(coded.size() <= n_data_sc);
    coded.resize(n_data_sc, 0);
    coded = interleave(coded, Modulation::BPSK, n_data_sc);
    const CVec syms = phy::modulate(coded, Modulation::BPSK);
    CVec used(params_.used_subcarriers().size(), Complex{});
    for (std::size_t i = 0; i < lay.data_pos.size(); ++i) used[lay.data_pos[i]] = syms[i];
    for (const std::size_t p : lay.pilot_pos) used[p] = Complex{pilot_polarity(0), 0.0};
    const CVec sym = modem_.modulate_symbol(used);
    out.insert(out.end(), sym.begin(), sym.end());
  }

  // DATA symbols.
  {
    std::vector<std::uint8_t> msg = append_crc(payload);
    msg = scramble(msg, opts.scrambler_seed);
    auto coded = convolutional_encode(msg, mcs.rate);
    const std::size_t n_cbps = n_data_sc * bits_per_symbol(mcs.modulation);
    const std::size_t n_sym = (coded.size() + n_cbps - 1) / n_cbps;
    coded.resize(n_sym * n_cbps, 0);
    coded = interleave(coded, mcs.modulation, n_data_sc);
    const CVec syms = phy::modulate(coded, mcs.modulation);
    for (std::size_t s = 0; s < n_sym; ++s) {
      CVec used(params_.used_subcarriers().size(), Complex{});
      for (std::size_t i = 0; i < n_data_sc; ++i)
        used[lay.data_pos[i]] = syms[s * n_data_sc + i];
      const double pol = pilot_polarity(s + 1);
      for (const std::size_t p : lay.pilot_pos) used[p] = Complex{pol, 0.0};
      const CVec sym = modem_.modulate_symbol(used);
      out.insert(out.end(), sym.begin(), sym.end());
    }
  }
  return out;
}

Receiver::Receiver(OfdmParams params) : params_(params), modem_(params) {}

std::optional<std::size_t> Receiver::detect_preamble(CSpan samples, double threshold) const {
  // Stage 1 — coarse, Schmidl-Cox delay-and-correlate on the STF's 16-sample
  // periodicity: P(n) = sum r*[n+k] r[n+k+16] over three words, normalized
  // by the window energy. Any (multipath, relayed, CFO-rotated) channel
  // preserves the periodicity, so the metric is channel-independent —
  // unlike a cross-correlation against the clean STF, which smears as soon
  // as a strong delayed copy (e.g. an FF relay's) arrives.
  const std::size_t word = params_.fft_size / 4;
  const std::size_t span = 3 * word;
  if (samples.size() < span + word + 1) return std::nullopt;
  std::optional<std::size_t> coarse;
  Complex p{0.0, 0.0};
  double r_energy = 0.0;
  for (std::size_t k = 0; k < span; ++k) {
    p += std::conj(samples[k]) * samples[k + word];
    r_energy += std::norm(samples[k + word]);
  }
  const std::size_t probe = 4 * word;  // fine-stage search granularity below
  for (std::size_t n = 0;; ++n) {
    if (r_energy > 1e-30 && std::abs(p) / r_energy >= threshold) {
      coarse = n;
      break;
    }
    if (n + span + word + 1 >= samples.size()) break;
    p += std::conj(samples[n + span]) * samples[n + span + word] -
         std::conj(samples[n]) * samples[n + word];
    r_energy += std::norm(samples[n + span + word]) - std::norm(samples[n + word]);
  }
  if (!coarse) return std::nullopt;

  // Stage 2 — fine: cross-correlate with the first (non-periodic) LTF word
  // around the position the coarse estimate implies, and anchor timing on
  // the earliest of the two equal-height word peaks.
  const std::size_t stf_len = 10 * (params_.fft_size / 4);
  const std::size_t ltf_guard = 2 * params_.cp_len;
  const CVec ltf = ltf_time(params_);
  const CSpan ltf_word = CSpan(ltf).subspan(ltf_guard, params_.fft_size);

  const std::size_t ltf_nominal = *coarse + stf_len + ltf_guard;
  const std::size_t lo = ltf_nominal > 2 * probe ? ltf_nominal - 2 * probe : 0;
  const std::size_t hi =
      std::min(samples.size(), ltf_nominal + 2 * probe + params_.fft_size);
  if (lo + params_.fft_size >= hi) return std::nullopt;
  const auto fine = dsp::normalized_correlation(samples.subspan(lo, hi - lo), ltf_word);
  if (fine.empty()) return std::nullopt;
  std::size_t peak = dsp::argmax(fine);
  // The LTF repeats, so the correlation has two near-equal peaks 64 samples
  // apart; take the earlier of the pair.
  for (std::size_t n = 0; n < peak; ++n) {
    if (fine[n] >= 0.90 * fine[peak]) {
      peak = n;
      break;
    }
  }
  // Then anchor timing on the EARLIEST significant channel tap: with a
  // strong delayed copy (relay) the global peak sits on the late path, and
  // locking to it would turn the early path into pre-cursor ISI.
  std::size_t first = peak;
  const std::size_t lookback = std::min<std::size_t>(peak, params_.cp_len);
  for (std::size_t n = peak - lookback; n < peak; ++n) {
    if (fine[n] >= 0.30 * fine[peak]) {
      first = n;
      break;
    }
  }
  const std::size_t ltf_word1 = lo + first;
  // Back the sync point off by 2 samples: when a strong relayed/multipath
  // copy dominates the correlation, the earliest (weaker) arrival would
  // otherwise sit BEFORE the FFT window and become pre-cursor ISI that the
  // cyclic prefix cannot absorb. The early window converts it into ordinary
  // CP-protected spread (the LTF's double-length guard tolerates the shift).
  constexpr std::size_t kSyncBackoff = 2;
  // The earliest-tap search can land a sample or two before the true word
  // (the LTF autocorrelation mainlobe is a few samples wide for numerologies
  // with dense tone occupancy); clamp packets that begin at the buffer edge
  // rather than rejecting them.
  const std::size_t ref = stf_len + ltf_guard + kSyncBackoff;
  return ltf_word1 >= ref ? ltf_word1 - ref : 0;
}

std::optional<RxResult> Receiver::receive(CSpan samples) const {
  const auto start = detect_preamble(samples);
  if (!start) return std::nullopt;
  return receive_at(samples, *start);
}

std::optional<RxResult> Receiver::receive_at(CSpan samples, std::size_t start) const {
  const std::size_t stf_len = 10 * (params_.fft_size / 4);
  const std::size_t ltf_guard = 2 * params_.cp_len;
  const std::size_t ltf_len = ltf_guard + 2 * params_.fft_size;
  const std::size_t sym_len = params_.symbol_len();
  if (start + stf_len + ltf_len + sym_len > samples.size()) return std::nullopt;

  // ---- CFO estimation and correction ----
  const CSpan stf_rx = samples.subspan(start, stf_len);
  const double coarse = estimate_cfo_stf(stf_rx, params_);
  // Correct everything from `start` onwards.
  CVec corrected(samples.begin() + static_cast<long>(start), samples.end());
  corrected = channel::apply_cfo(corrected, -coarse, params_.sample_rate_hz);
  const CSpan ltf_words = CSpan(corrected).subspan(stf_len + ltf_guard, 2 * params_.fft_size);
  const double fine = estimate_cfo_ltf(ltf_words, params_);
  {
    // Apply the residual fine correction with phase continuity from the LTF.
    channel::CfoRotator rot(-fine, params_.sample_rate_hz);
    corrected = rot.process(corrected);
  }
  const double cfo_total = coarse + fine;

  // ---- Channel estimation ----
  const CSpan ltf_again = CSpan(corrected).subspan(stf_len + ltf_guard, 2 * params_.fft_size);
  const CVec h = estimate_channel_ltf(ltf_again, params_);

  // Per-subcarrier noise estimate from the difference of the two LTF words.
  const auto used = params_.used_subcarriers();
  double noise_var = 0.0;
  {
    const dsp::FftPlan& plan = dsp::FftPlan::cached(params_.fft_size);
    CVec w1(ltf_again.begin(), ltf_again.begin() + static_cast<long>(params_.fft_size));
    CVec w2(ltf_again.begin() + static_cast<long>(params_.fft_size), ltf_again.end());
    plan.forward(w1);
    plan.forward(w2);
    const double norm = 1.0 / std::sqrt(static_cast<double>(params_.fft_size) *
                                        static_cast<double>(params_.fft_size) /
                                        static_cast<double>(used.size()));
    double acc = 0.0;
    for (const int k : used) {
      const std::size_t b = params_.fft_bin(k);
      acc += std::norm((w1[b] - w2[b]) * norm);
    }
    // Var of (n1 - n2)/1 is 2 sigma^2; the two-word average halves it again.
    noise_var = std::max(acc / (2.0 * static_cast<double>(used.size())), 1e-30);
  }

  const auto lay = layout(params_);
  const std::size_t n_data_sc = lay.data_pos.size();

  auto equalize_symbol = [&](std::size_t offset, std::size_t pilot_index,
                             CVec& data_out, double& noise_out) -> bool {
    if (offset + sym_len > corrected.size()) return false;
    const CVec y = modem_.demodulate_symbol(CSpan(corrected).subspan(offset, sym_len));
    // Common phase error from pilots.
    Complex cpe{0.0, 0.0};
    const double pol = pilot_polarity(pilot_index);
    for (const std::size_t p : lay.pilot_pos) cpe += y[p] * std::conj(h[p] * pol);
    const Complex rot = std::abs(cpe) > 1e-30 ? cpe / std::abs(cpe) : Complex{1.0, 0.0};
    data_out.resize(n_data_sc);
    double nv = 0.0;
    for (std::size_t i = 0; i < n_data_sc; ++i) {
      const std::size_t p = lay.data_pos[i];
      const double hg = std::max(std::norm(h[p]), 1e-30);
      data_out[i] = y[p] * std::conj(rot) / h[p];
      nv += noise_var / hg;
    }
    noise_out = nv / static_cast<double>(n_data_sc);
    return true;
  };

  // ---- SIGNAL ----
  RxResult result;
  result.cfo_hz = cfo_total;
  result.channel_est = h;
  result.sync_index = start;
  const std::size_t sig_offset = stf_len + ltf_len;
  CVec sig_eq;
  double sig_noise = 0.0;
  if (!equalize_symbol(sig_offset, 0, sig_eq, sig_noise)) return std::nullopt;
  {
    auto llrs = demodulate_soft(sig_eq, Modulation::BPSK, sig_noise);
    auto deint = deinterleave(llrs, Modulation::BPSK, n_data_sc);
    deint.resize(coded_length(kSignalMsgBits, CodeRate::R1_2));  // drop the pad
    const auto msg = viterbi_decode(deint, CodeRate::R1_2, kSignalMsgBits);
    const auto info = parse_signal(msg);
    if (!info) return std::nullopt;
    result.mcs_index = info->mcs_index;

    const Mcs& mcs = mcs_table().at(static_cast<std::size_t>(info->mcs_index));
    const std::size_t n_cbps = n_data_sc * bits_per_symbol(mcs.modulation);
    const std::size_t coded = coded_length(info->payload_bits + 32, mcs.rate);
    const std::size_t n_sym = (coded + n_cbps - 1) / n_cbps;

    // ---- DATA ----
    std::vector<double> llr_stream;
    llr_stream.reserve(n_sym * n_cbps);
    double evm_acc = 0.0;
    std::size_t evm_count = 0;
    for (std::size_t s = 0; s < n_sym; ++s) {
      CVec eq;
      double nv = 0.0;
      if (!equalize_symbol(sig_offset + (s + 1) * sym_len, s + 1, eq, nv)) return std::nullopt;
      auto sym_llrs = demodulate_soft(eq, mcs.modulation, nv);
      const auto deint = deinterleave(sym_llrs, mcs.modulation, n_data_sc);
      llr_stream.insert(llr_stream.end(), deint.begin(), deint.end());
      // EVM against hard decisions.
      const auto hard = demodulate_hard(eq, mcs.modulation);
      const CVec ideal = phy::modulate(hard, mcs.modulation);
      for (std::size_t i = 0; i < eq.size(); ++i) {
        evm_acc += std::norm(eq[i] - ideal[i]);
        ++evm_count;
      }
    }
    llr_stream.resize(coded);  // drop the zero-padding tail
    auto decoded = viterbi_decode(llr_stream, mcs.rate, info->payload_bits + 32);
    decoded = scramble(decoded);  // involution
    result.crc_ok = check_crc(decoded);
    decoded.resize(info->payload_bits);
    result.payload = std::move(decoded);
    if (evm_count > 0 && evm_acc > 0.0) {
      const double evm = evm_acc / static_cast<double>(evm_count);
      result.evm_db = db_from_power(evm);
      result.snr_db = -result.evm_db;  // unit-power constellations
    } else {
      result.evm_db = -100.0;
      result.snr_db = 100.0;
    }
  }
  return result;
}

}  // namespace ff::phy
