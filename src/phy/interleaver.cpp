#include "phy/interleaver.hpp"

#include "common/check.hpp"

namespace ff::phy {

std::vector<std::size_t> interleave_permutation(Modulation m, std::size_t data_subcarriers) {
  const std::size_t bpsc = bits_per_symbol(m);
  const std::size_t n_cbps = data_subcarriers * bpsc;
  // Column count: the largest divisor of the SUBCARRIER count <= 16 (13 for
  // the 52-subcarrier WiFi numerology, matching 802.11's layout). Dividing
  // the subcarrier count keeps the two-permutation construction a bijection
  // for every modulation order.
  std::size_t n_col = 1;
  for (std::size_t c = 2; c <= 16; ++c)
    if (data_subcarriers % c == 0) n_col = c;
  const std::size_t s = std::max<std::size_t>(bpsc / 2, 1);

  std::vector<std::size_t> perm(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t i = (n_cbps / n_col) * (k % n_col) + k / n_col;
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (n_col * i) / n_cbps) % s;
    perm[k] = j;
  }
  return perm;
}

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits, Modulation m,
                                     std::size_t data_subcarriers) {
  const auto perm = interleave_permutation(m, data_subcarriers);
  const std::size_t n = perm.size();
  FF_CHECK_MSG(bits.size() % n == 0, "bit stream not a multiple of symbol size");
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += n)
    for (std::size_t k = 0; k < n; ++k) out[base + perm[k]] = bits[base + k];
  return out;
}

std::vector<double> deinterleave(std::span<const double> llrs, Modulation m,
                                 std::size_t data_subcarriers) {
  const auto perm = interleave_permutation(m, data_subcarriers);
  const std::size_t n = perm.size();
  FF_CHECK_MSG(llrs.size() % n == 0, "LLR stream not a multiple of symbol size");
  std::vector<double> out(llrs.size());
  for (std::size_t base = 0; base < llrs.size(); base += n)
    for (std::size_t k = 0; k < n; ++k) out[base + k] = llrs[base + perm[k]];
  return out;
}

}  // namespace ff::phy
