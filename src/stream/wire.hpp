// Socket plumbing for the stream transports and the relay daemon: endpoint
// parsing, RAII file descriptors, and the ff-iq-v1 frame protocol.
//
// The wire format is deliberately tiny — it carries IQ blocks between two
// FastForward processes on ONE machine (a client feeding/draining ffrelayd
// over a Unix-domain socket or local TCP), not a network protocol:
//
//   magic   "FFIQ1\n"                      (6 bytes, sent once per stream)
//   frame   u32le sample count, then count x (f64le I, f64le Q)
//   EOS     a frame with count == 0 — nothing follows
//
// One frame becomes one Block on the receiving graph, so the SENDER's
// framing defines the receiver's block structure; the elements are
// block-size invariant, so the sample stream (and its checksum) does not
// depend on the frame size. A clean close between frames is treated like
// EOS (peer died after its last frame); a close mid-frame is a crisp error.
// Byte order is host order (the transports are same-machine by design).
//
// Admission rejections and control responses travel as text lines
// (wire_send_text); the daemon's control protocol lives in serve/control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace ff::stream {

/// A local transport address: `unix:/path/to.sock` or `tcp:host:port`.
struct WireEndpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         // kUnix: filesystem path of the socket
  std::string host;         // kTcp: hostname or dotted quad (local only)
  std::uint16_t port = 0;   // kTcp

  /// Canonical text form (round-trips through parse_endpoint).
  std::string text() const;
};

/// Parse `unix:...` / `tcp:host:port` (FF_CHECK with `context` on errors).
WireEndpoint parse_endpoint(const std::string& context, const std::string& text);

/// RAII file descriptor (sockets here, but any fd works).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Give up ownership (caller closes).
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// ---- connection setup --------------------------------------------------

/// Bind + listen on the endpoint (a stale Unix socket path is unlinked
/// first). FF_CHECK on failure.
OwnedFd wire_listen(const WireEndpoint& ep, int backlog = 4);

/// Accept one connection (blocking). FF_CHECK on failure.
OwnedFd wire_accept(int listen_fd);

/// Connect to the endpoint, retrying until `timeout_s` elapses (covers the
/// listener racing up). FF_CHECK when the deadline passes.
OwnedFd wire_connect(const WireEndpoint& ep, double timeout_s = 10.0);

/// True when fd has readable data (or EOF) within `timeout_ms`
/// (0 = immediate check, < 0 = block).
bool wire_poll_readable(int fd, int timeout_ms);

// ---- the ff-iq-v1 frame protocol ---------------------------------------

inline constexpr char kWireMagic[6] = {'F', 'F', 'I', 'Q', '1', '\n'};
/// Sanity ceiling on one frame (16 Mi samples = 256 MiB): a count beyond it
/// means a desynchronized or hostile peer, not a big block.
inline constexpr std::uint32_t kWireMaxFrameSamples = 1u << 24;

void wire_send_magic(int fd);
/// FF_CHECK: the peer's first 6 bytes are the magic (blocking).
void wire_expect_magic(int fd);

/// Send one frame (count must be >= 1; EOS has its own call).
void wire_send_frame(int fd, CSpan samples);
/// Send the end-of-stream marker (count == 0).
void wire_send_eos(int fd);

enum class WireRecv {
  kFrame,    ///< `out` holds one frame of samples
  kEos,      ///< explicit end-of-stream marker
  kEof,      ///< peer closed cleanly between frames (treated like EOS)
  kTimeout,  ///< nothing readable within timeout_ms
};

/// Receive the next frame. Waits up to `timeout_ms` for the HEADER
/// (< 0 = block); once a header arrives the payload read blocks (frames are
/// written in one piece by the sender, so the window is microseconds).
/// A close mid-frame is an FF_CHECK error.
WireRecv wire_recv_frame(int fd, CVec& out, int timeout_ms);

// ---- text lines (control protocol, admission errors) -------------------

/// Send raw text (the caller includes any trailing '\n'). FF_CHECK on error.
void wire_send_text(int fd, const std::string& text);

}  // namespace ff::stream
