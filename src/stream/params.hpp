// Typed key=value configuration for declarative element construction.
//
// A Params carries the parsed `key=value` pairs of one element declaration
// in the graph language (lang.hpp) — or, equivalently, of one programmatic
// Element::configure() call. Values are stored as raw text; the typed
// getters parse on demand with FF_CHECK errors that name the owning element
// and the offending field ("Fir 'fir': taps: expected a complex list"), so
// a typo in a 40-line graph file fails crisply instead of deep inside DSP.
//
// Getters mark their key as consumed; check_all_used() then rejects any
// leftover key — the "unknown parameter" diagnostic that catches
// `Fir(tap=...)` (the ElementRegistry calls it after every configure()).
//
// Value syntax (shared with write-handler values, docs/STREAMING.md):
//   double    3.25, -110, 2e6          (finite; inf/nan rejected)
//   bool      true | false | 1 | 0
//   complex   (re,im)  or a bare real
//   list      comma-separated entries; parentheses protect inner commas,
//             so taps=(0.8,-0.6),(0.1,0) is two complex taps
// The format_* helpers print values that round-trip bit-exactly (%.17g),
// which is what makes a text-built graph reproduce a hand-wired one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ff::stream {

class Params {
 public:
  Params() = default;

  /// Name the owner for error messages (e.g. "Fir 'fir'"). Set by the
  /// ElementRegistry before configure(); empty = messages omit the owner.
  void set_context(std::string context) { context_ = std::move(context); }
  const std::string& context() const { return context_; }

  /// Insert a key (FF_CHECK: a duplicate key is a configuration bug).
  void set(const std::string& key, std::string value);
  /// Presence probe. Non-consuming: probing a key does not mark it used, so
  /// a probed-but-never-read key still fails check_all_used().
  bool has(const std::string& key) const;
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Insertion-ordered view (keys print back in declaration order).
  const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }

  // ---- typed getters -------------------------------------------------
  // The plain forms FF_CHECK the key is present; the *_or forms fall back.
  // Every getter marks the key consumed (see check_all_used).
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& key) const;
  std::size_t get_size_or(const std::string& key, std::size_t fallback) const;
  std::uint64_t get_u64(const std::string& key) const;
  std::uint64_t get_u64_or(const std::string& key, std::uint64_t fallback) const;
  int get_int(const std::string& key) const;
  int get_int_or(const std::string& key, int fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool_or(const std::string& key, bool fallback) const;
  Complex get_complex(const std::string& key) const;
  Complex get_complex_or(const std::string& key, Complex fallback) const;
  CVec get_cvec(const std::string& key) const;
  CVec get_cvec_or(const std::string& key, CVec fallback) const;

  /// FF_CHECK every key was consumed by a getter — the unknown-parameter
  /// diagnostic, naming the first leftover key.
  void check_all_used() const;

 private:
  const std::string* find(const std::string& key) const;
  const std::string& require(const std::string& key) const;
  [[noreturn]] void fail(const std::string& key, const std::string& what) const;

  std::string context_;
  std::vector<std::pair<std::string, std::string>> items_;
  mutable std::vector<bool> used_;  // parallel to items_
};

// ---- value parsing shared with write handlers ------------------------
// `context` prefixes the FF_CHECK message ("fir: set_taps"); pass what the
// reader should grep for.
double parse_double_value(const std::string& context, const std::string& text);
bool parse_bool_value(const std::string& context, const std::string& text);
std::uint64_t parse_u64_value(const std::string& context, const std::string& text);
Complex parse_complex_value(const std::string& context, const std::string& text);
CVec parse_cvec_value(const std::string& context, const std::string& text);
/// Split a list value at top-level commas (parentheses protect inner ones).
/// A stray ')' or an unterminated '(' is an immediate FF_CHECK failure
/// naming `context`, not a silent mis-split.
std::vector<std::string> split_list_value(const std::string& context,
                                          const std::string& text);

// ---- exact round-trip formatting -------------------------------------
std::string format_double(double v);
std::string format_complex(Complex v);
std::string format_cvec(CSpan v);

}  // namespace ff::stream
