// Graph builder and validator for the streaming runtime.
//
// A Graph owns its Elements and the Channels wired between them. connect()
// joins an output port to an input port through a bounded channel;
// validate() then checks the wiring is complete (every port connected
// exactly once), names are unique (they key the stream.* metrics), and the
// graph is acyclic — and computes the level schedule the Scheduler runs:
// level(e) = 0 for sources, else 1 + max(level of upstream). Because every
// channel crosses from a lower level to a strictly higher one, elements
// within one level share no state and can run concurrently.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "stream/element.hpp"

namespace ff::stream {

class Graph {
 public:
  /// Default per-channel capacity (blocks) when connect() is not told one.
  static constexpr std::size_t kDefaultChannelCapacity = 8;

  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Take ownership of an element; returns a handle for connect() calls.
  template <typename E>
  E* add(std::unique_ptr<E> element) {
    E* raw = element.get();
    elements_.push_back(std::move(element));
    invalidate();
    return raw;
  }

  /// Construct an element in place: g.emplace<VectorSource>("src", data, 64).
  template <typename E, typename... Args>
  E* emplace(Args&&... args) {
    return add(std::make_unique<E>(std::forward<Args>(args)...));
  }

  /// Wire `from`'s output port to `to`'s input port through a bounded
  /// channel of `capacity` blocks (>= 1). Each port connects exactly once.
  void connect(Element& from, std::size_t out_port, Element& to, std::size_t in_port,
               std::size_t capacity = kDefaultChannelCapacity);

  /// Check wiring, name uniqueness and acyclicity; build the level
  /// schedule. Throws (FF_CHECK) with the offending element named on any
  /// violation. Idempotent; Scheduler::run calls it if needed.
  void validate();
  bool validated() const { return validated_; }

  std::size_t n_elements() const { return elements_.size(); }
  std::size_t n_channels() const { return channels_.size(); }

  /// Look up an element by instance name (nullptr when absent).
  Element* find(const std::string& name) const;
  /// Look up an element by instance name (FF_CHECK: present, naming the
  /// known elements in the error).
  Element& at(const std::string& name) const;

  /// The handler `elem.name` (FF_CHECK: element and handler both exist) —
  /// the runtime introspection surface: call h.read() / h.write(value) at a
  /// quiescent point (between reference-mode rounds, or before/after a
  /// run); for sample-exact mid-stream writes use Element::write_at.
  const Handler& handler(const std::string& elem, const std::string& name);

  /// The owned elements, insertion order (e.g. for handler catalogs).
  const std::vector<std::unique_ptr<Element>>& elements() const { return elements_; }

  /// Every channel closed and empty: the run is complete.
  bool finished() const;

  /// The level schedule (valid after validate()): levels in topological
  /// order, elements within a level in insertion order.
  const std::vector<std::vector<Element*>>& levels() const { return levels_; }
  const std::vector<std::unique_ptr<Channel>>& channels() const { return channels_; }

  /// Elements flattened in (level, insertion) topological order — every
  /// channel points forward in this sequence. This is the order the
  /// throughput scheduler cuts into contiguous chains. Valid after
  /// validate().
  std::vector<Element*> topo_order() const;

  /// Install a telemetry sink on every element (nullptr = record nothing).
  void set_metrics(MetricsRegistry* metrics);

 private:
  void invalidate() {
    validated_ = false;
    levels_.clear();
  }

  std::vector<std::unique_ptr<Element>> elements_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::vector<Element*>> levels_;
  bool validated_ = false;
};

}  // namespace ff::stream
