// The Click-style graph description language.
//
// A relay session is text, not C++:
//
//   // declarations
//   src :: PacketSource(packets=50, block=256);
//   fir :: Fir(taps=@taps.txt);             // @file reads the value from a file
//   // chains (anonymous elements auto-name as Class@N)
//   src -> fir -> Cfo(hz=1200) -> sink :: AccumulatorSink;
//   tee[1] -> [0]add;                       // output port 1 -> input port 0
//   q -[4]-> slow;                          // channel capacity 4 blocks
//
// Statements end with ';'. `//` and `#` comment to end of line. An endpoint
// in a chain is: a bare name (must be declared somewhere in the file), an
// inline declaration `name :: Class(config)`, or an anonymous declaration
// `Class(config)` — the trailing parens are what mark a class use, so a
// bare `Queue` is a *reference* to an element named Queue, not an anonymous
// Queue (write `Queue()` for that). Port selectors `[n]` suffix the
// producing endpoint and prefix the consuming one, Click-style.
//
// parse_graph() produces a GraphSpec (a plain AST: declarations with their
// Params, connections with ports/capacities), with every diagnostic carrying
// `source:line:col`. build_graph() instantiates the spec into a validated
// Graph through an ElementRegistry of factories; a graph built from text is
// bit-identical to the equivalent hand-wired one (tests/lang_test.cpp pins
// the session checksum under both scheduler modes). GraphSpec::to_text()
// prints back a canonical form that re-parses to the same spec.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stream/graph.hpp"
#include "stream/params.hpp"

namespace ff::stream {

/// Class-name -> factory table used by build_graph. make() runs the full
/// declarative construction protocol: factory, Params context naming,
/// configure(), and the unknown-parameter check.
class ElementRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Element>(std::string name)>;

  /// Register a factory under a class name (FF_CHECK: not yet taken).
  void add(const std::string& class_name, Factory factory);

  /// Register class E's name-only constructor: add<FirElement>("Fir").
  template <typename E>
  void add(const std::string& class_name) {
    add(class_name,
        [](std::string name) { return std::make_unique<E>(std::move(name)); });
  }

  bool has(const std::string& class_name) const;
  /// Registered class names, sorted (for catalogs and error messages).
  std::vector<std::string> class_names() const;

  /// Construct `class_name` as instance `name` and configure it from
  /// `params`. FF_CHECKs the class is known (naming the known ones), and
  /// rejects unknown parameters after configure() (Params::check_all_used).
  std::unique_ptr<Element> make(const std::string& class_name, std::string name,
                                Params params) const;

  /// The registry holding every built-in element class (elements.hpp).
  static const ElementRegistry& builtin();

 private:
  std::map<std::string, Factory> factories_;
};

/// One `name :: Class(config)` declaration (explicit, inline or anonymous).
struct ElementDecl {
  std::string name;
  std::string class_name;
  Params params;
  int line = 0;
  int col = 0;
};

/// One `from[p] -> [q]to` edge; capacity 0 = builder default.
struct Connection {
  std::string from;
  std::size_t from_port = 0;
  std::string to;
  std::size_t to_port = 0;
  std::size_t capacity = 0;
  int line = 0;
  int col = 0;
};

/// Parsed graph description: declarations in appearance order plus the
/// connection list. A plain value type — build_graph() turns it into a
/// live Graph, to_text() prints the canonical round-trippable form.
struct GraphSpec {
  std::string source = "<graph>";  // name used in diagnostics
  std::vector<ElementDecl> decls;
  std::vector<Connection> connections;

  const ElementDecl* find_decl(const std::string& name) const;

  /// Canonical text form: every declaration explicit (anonymous elements
  /// keep their generated Class@N names), then every connection, ports and
  /// capacities printed only when non-default. parse_graph(to_text()) of a
  /// valid spec yields an equal spec.
  std::string to_text() const;
};

/// Reads the file behind a `key=@path` substitution; throws on failure.
/// Injectable for tests; the default opens the path with std::ifstream.
using FileReader = std::function<std::string(const std::string& path)>;

/// Parse a graph description. Throws std::logic_error with
/// `source:line:col` on syntax errors, duplicate declarations, and bare
/// references to names never declared. `read_file` serves `@path` values
/// (nullptr = the default filesystem reader).
GraphSpec parse_graph(const std::string& text, const std::string& source = "<graph>",
                      FileReader read_file = nullptr);

/// Convenience: read `path` and parse it (source = path).
GraphSpec parse_graph_file(const std::string& path, FileReader read_file = nullptr);

/// Instantiate a parsed spec into `graph` through `registry` and validate
/// the result. Construction/configuration errors are rethrown with the
/// declaration's source:line:col prepended. Returns the built elements in
/// declaration order (handles for further wiring or inspection).
std::vector<Element*> build_graph(Graph& graph, const GraphSpec& spec,
                                  const ElementRegistry& registry = ElementRegistry::builtin(),
                                  std::size_t default_capacity = Graph::kDefaultChannelCapacity);

/// Parse + build in one call (the `--graph file.ff` path).
std::vector<Element*> build_graph(Graph& graph, const std::string& text,
                                  const std::string& source = "<graph>",
                                  const ElementRegistry& registry = ElementRegistry::builtin(),
                                  std::size_t default_capacity = Graph::kDefaultChannelCapacity);

}  // namespace ff::stream
