// Transport elements: IQ streams entering and leaving the process.
//
// These are the daemon-facing edge of the element library (wire.hpp holds
// the frame protocol; serve/ holds the daemon that adopts connections).
// Each element works in two modes:
//
//   * standalone — the element owns its endpoint: a listening element binds
//     and accepts lazily on first work()/consume(), a connecting element
//     dials out with a retry deadline. This is what `streaming_relay
//     --graph` or a test gets from graph text alone.
//   * adopted — a daemon hands the element an already-accepted connection
//     (adopt_connection) before the run; the element never touches the
//     endpoint itself. This is how ffrelayd multiplexes admission control
//     over one listener across back-to-back sessions.
//
// Determinism: one received frame becomes one Block, so the SENDER chooses
// the receiver's block structure — and since every element is block-size
// invariant, the sample stream downstream is bit-identical to an in-process
// graph fed the same samples (tests/serve_test.cpp pins the relay-session
// checksum through SocketSource -> graph -> SocketSink). Scheduling
// observables (round counts, stalls) become timing-dependent, because a
// socket element reports waiting_external() while its peer is quiet.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "stream/element.hpp"
#include "stream/wire.hpp"

namespace ff::stream {

/// 0-in/1-out: reads ff-iq-v1 frames from a socket and emits one Block per
/// frame. EOS (zero frame or clean close between frames) closes the output.
///
/// Not a Source subclass: a Source must produce whenever !exhausted(), but
/// a socket discovers exhaustion only by reading — so this element polls
/// with a timeout and reports waiting_external() on quiet rounds.
///
/// Params: endpoint (unix:<path> | tcp:<host>:<port>; required unless a
/// connection is adopted), listen (default true: bind+accept; false: dial
/// out), poll_ms (default 50: per-round wait for the peer),
/// connect_timeout (default 10 s, dial-out mode).
/// Handlers: produced, frames, connected (read).
class SocketSource : public Element {
 public:
  explicit SocketSource(std::string name);

  const char* class_name() const override { return "SocketSource"; }
  void configure(const Params& params) override;

  bool work() override;
  bool waiting_external() const override { return waiting_; }

  /// Daemon-managed mode: install an accepted, not-yet-read connection.
  /// Must precede the first work(); the element skips endpoint setup.
  void adopt_connection(OwnedFd conn);

  const std::optional<WireEndpoint>& endpoint() const { return endpoint_; }
  bool listening() const { return listen_; }
  std::uint64_t produced() const { return pos_; }
  std::uint64_t frames() const { return frames_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;

 private:
  /// Standalone connection setup; true when a peer is ready, false to wait.
  bool poll_connection();

  std::optional<WireEndpoint> endpoint_;
  bool listen_ = true;
  int poll_ms_ = 50;
  double connect_timeout_s_ = 10.0;

  OwnedFd listener_;
  OwnedFd conn_;
  bool magic_seen_ = false;
  bool eos_ = false;
  bool waiting_ = false;
  std::uint64_t pos_ = 0;
  std::uint64_t frames_ = 0;
};

/// 1-in/0-out: sends each consumed Block as one ff-iq-v1 frame, then the
/// EOS marker when the input stream ends (kBlockLast or a drained input).
///
/// Params: endpoint (required unless adopted), listen (default false: dial
/// out; true: bind+accept lazily), connect_timeout (default 10 s).
/// Handlers: consumed, frames, connected (read).
class SocketSink : public Element {
 public:
  explicit SocketSink(std::string name);

  const char* class_name() const override { return "SocketSink"; }
  void configure(const Params& params) override;

  bool work() override;

  /// Daemon-managed mode: install an accepted connection before the run.
  void adopt_connection(OwnedFd conn);

  const std::optional<WireEndpoint>& endpoint() const { return endpoint_; }
  bool listening() const { return listen_; }
  std::uint64_t consumed() const { return consumed_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;

 private:
  void ensure_connected();
  void send_eos_once();

  std::optional<WireEndpoint> endpoint_;
  bool listen_ = false;
  double connect_timeout_s_ = 10.0;

  OwnedFd listener_;
  OwnedFd conn_;
  bool magic_sent_ = false;
  bool eos_sent_ = false;
  std::uint64_t consumed_ = 0;
  std::uint64_t frames_ = 0;
};

/// 1-in/1-out pass-through that tees the stream to a file as raw
/// interleaved float64 IQ (the layout tools like numpy.fromfile or GNU
/// Radio file sources read directly). The streaming analog of `tee(1)`:
/// wire it anywhere to capture what flowed through that edge, without
/// disturbing the graph's output.
///
/// Params: path (required), append (default false).
/// Handlers: written, path (read).
class FileTapSink : public Transform {
 public:
  explicit FileTapSink(std::string name);
  ~FileTapSink() override;

  const char* class_name() const override { return "FileTapSink"; }
  void configure(const Params& params) override;

  std::uint64_t written() const { return written_; }
  const std::string& path() const { return path_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& block) override;

 private:
  std::string path_;
  bool append_ = false;
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

}  // namespace ff::stream
