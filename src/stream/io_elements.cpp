#include "stream/io_elements.hpp"

#include <utility>

#include "common/check.hpp"

namespace ff::stream {

// ------------------------------------------------------------ SocketSource

SocketSource::SocketSource(std::string name) : Element(std::move(name), 0, 1) {}

void SocketSource::configure(const Params& p) {
  FF_CHECK_MSG(pos_ == 0 && !conn_.valid(), name() << ": configure before streaming");
  if (p.has("endpoint"))
    endpoint_ = parse_endpoint(p.context() + ": endpoint", p.get_string("endpoint"));
  listen_ = p.get_bool_or("listen", listen_);
  poll_ms_ = p.get_int_or("poll_ms", poll_ms_);
  FF_CHECK_MSG(poll_ms_ >= 1, p.context() << ": poll_ms: must be >= 1");
  connect_timeout_s_ = p.get_double_or("connect_timeout", connect_timeout_s_);
  FF_CHECK_MSG(connect_timeout_s_ > 0.0,
               p.context() << ": connect_timeout: must be > 0");
}

void SocketSource::adopt_connection(OwnedFd conn) {
  FF_CHECK_MSG(conn.valid(), name() << ": adopt_connection needs a valid fd");
  FF_CHECK_MSG(!conn_.valid() && pos_ == 0,
               name() << ": adopt_connection before streaming, once");
  conn_ = std::move(conn);
}

bool SocketSource::poll_connection() {
  if (conn_.valid()) return true;
  FF_CHECK_MSG(endpoint_.has_value(),
               name() << ": no endpoint configured and no connection adopted");
  if (listen_) {
    if (!listener_.valid()) listener_ = wire_listen(*endpoint_);
    if (!wire_poll_readable(listener_.get(), poll_ms_)) return false;
    conn_ = wire_accept(listener_.get());
    return true;
  }
  conn_ = wire_connect(*endpoint_, connect_timeout_s_);
  return true;
}

bool SocketSource::work() {
  waiting_ = false;
  if (eos_) {
    if (!outputs_closed()) {
      close_outputs();
      return true;
    }
    return false;
  }
  bool moved = false;
  while (out_ready(0)) {
    if (!conn_.valid() && !poll_connection()) {
      waiting_ = true;
      break;
    }
    if (!magic_seen_) {
      if (!wire_poll_readable(conn_.get(), poll_ms_)) {
        waiting_ = true;
        break;
      }
      wire_expect_magic(conn_.get());
      magic_seen_ = true;
    }
    CVec samples;
    const WireRecv st = wire_recv_frame(conn_.get(), samples, poll_ms_);
    if (st == WireRecv::kTimeout) {
      waiting_ = true;
      break;
    }
    if (st == WireRecv::kEos || st == WireRecv::kEof) {
      eos_ = true;
      break;
    }
    Block b;
    b.samples = std::move(samples);
    b.start = pos_;
    if (pos_ == 0) b.flags |= kBlockFirst;
    pos_ += b.samples.size();
    ++frames_;
    emit(0, std::move(b));
    moved = true;
  }
  if (!eos_ && !out_ready(0)) note_stall();
  if (eos_) {
    close_outputs();
    moved = true;
  }
  return moved;
}

void SocketSource::add_handlers(HandlerRegistry& h) {
  Element::add_handlers(h);
  h.add_read("produced", [this] { return std::to_string(pos_); });
  h.add_read("frames", [this] { return std::to_string(frames_); });
  h.add_read("connected", [this] { return conn_.valid() ? "true" : "false"; });
}

// -------------------------------------------------------------- SocketSink

SocketSink::SocketSink(std::string name) : Element(std::move(name), 1, 0) {}

void SocketSink::configure(const Params& p) {
  FF_CHECK_MSG(consumed_ == 0 && !conn_.valid(),
               name() << ": configure before streaming");
  if (p.has("endpoint"))
    endpoint_ = parse_endpoint(p.context() + ": endpoint", p.get_string("endpoint"));
  listen_ = p.get_bool_or("listen", listen_);
  connect_timeout_s_ = p.get_double_or("connect_timeout", connect_timeout_s_);
  FF_CHECK_MSG(connect_timeout_s_ > 0.0,
               p.context() << ": connect_timeout: must be > 0");
}

void SocketSink::adopt_connection(OwnedFd conn) {
  FF_CHECK_MSG(conn.valid(), name() << ": adopt_connection needs a valid fd");
  FF_CHECK_MSG(!conn_.valid() && consumed_ == 0,
               name() << ": adopt_connection before streaming, once");
  conn_ = std::move(conn);
}

void SocketSink::ensure_connected() {
  if (conn_.valid()) return;
  FF_CHECK_MSG(endpoint_.has_value(),
               name() << ": no endpoint configured and no connection adopted");
  if (listen_) {
    // Blocks until the consumer dials in: the stream cannot leave the
    // process without a peer, and dropping it would break the
    // stalls-never-drops contract.
    if (!listener_.valid()) listener_ = wire_listen(*endpoint_);
    conn_ = wire_accept(listener_.get());
  } else {
    conn_ = wire_connect(*endpoint_, connect_timeout_s_);
  }
}

void SocketSink::send_eos_once() {
  if (eos_sent_) return;
  ensure_connected();
  if (!magic_sent_) {
    wire_send_magic(conn_.get());
    magic_sent_ = true;
  }
  wire_send_eos(conn_.get());
  eos_sent_ = true;
}

bool SocketSink::work() {
  bool moved = false;
  while (in_available(0)) {
    const Block b = pop(0);
    ensure_connected();
    if (!magic_sent_) {
      wire_send_magic(conn_.get());
      magic_sent_ = true;
    }
    {
      MetricsRegistry::ScopedTimer timer(metrics(), block_timer_name());
      wire_send_frame(conn_.get(), b.samples);
    }
    ++frames_;
    consumed_ += b.samples.size();
    note_consumed(b);
    moved = true;
    if (b.last()) send_eos_once();
  }
  // A drained input without a kBlockLast marker (e.g. fed by a
  // SocketSource, which never flags last) still owes the peer an EOS.
  if (!eos_sent_ && in_drained(0)) {
    send_eos_once();
    moved = true;
  }
  return moved;
}

void SocketSink::add_handlers(HandlerRegistry& h) {
  Element::add_handlers(h);
  h.add_read("consumed", [this] { return std::to_string(consumed_); });
  h.add_read("frames", [this] { return std::to_string(frames_); });
  h.add_read("connected", [this] { return conn_.valid() ? "true" : "false"; });
}

// ------------------------------------------------------------- FileTapSink

FileTapSink::FileTapSink(std::string name) : Transform(std::move(name)) {}

FileTapSink::~FileTapSink() {
  if (file_) std::fclose(file_);
}

void FileTapSink::configure(const Params& p) {
  FF_CHECK_MSG(file_ == nullptr && written_ == 0,
               name() << ": configure before streaming");
  path_ = p.get_string("path");
  FF_CHECK_MSG(!path_.empty(), p.context() << ": path: must not be empty");
  append_ = p.get_bool_or("append", append_);
}

void FileTapSink::process(Block& block) {
  if (!file_) {
    FF_CHECK_MSG(!path_.empty(), name() << ": no path configured");
    file_ = std::fopen(path_.c_str(), append_ ? "ab" : "wb");
    FF_CHECK_MSG(file_ != nullptr, name() << ": cannot open '" << path_ << "'");
  }
  // Raw interleaved float64 I/Q — the layout numpy.fromfile(dtype=complex128)
  // and GNU Radio file sources read directly.
  const std::size_t n =
      std::fwrite(block.samples.data(), sizeof(Complex), block.samples.size(), file_);
  FF_CHECK_MSG(n == block.samples.size(),
               name() << ": short write to '" << path_ << "'");
  written_ += n;
  if (block.last()) std::fflush(file_);
}

void FileTapSink::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("written", [this] { return std::to_string(written_); });
  h.add_read("path", [this] { return path_; });
}

}  // namespace ff::stream
