// Element model of the streaming runtime (Click-style modular dataflow).
//
// An Element is a stateful processing stage with numbered input and output
// ports. Ports are wired point-to-point through bounded Channels (FIFOs of
// Blocks) owned by the Graph; an element never sees its neighbours, only its
// channels. Each scheduling opportunity the Scheduler calls work(), which
// moves as many blocks as the channels allow and returns whether anything
// moved. A full output channel is backpressure: the element simply leaves
// its input queued and reports a stall — nothing is ever dropped.
//
// Determinism contract (what makes multi-threaded runs bit-identical):
//   * an element touches only its own state and its own channels;
//   * a channel has exactly one producer and one consumer, and the Graph's
//     level schedule never runs both in the same parallel region;
//   * all randomness is owned per-element and consumed in sample order.
// Under that contract the sample stream an element emits depends only on
// the graph and its configuration — not on thread count, and (for the
// provided elements, which wrap push()-style stateful kernels) not on how
// the stream is cut into blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "common/telemetry.hpp"
#include "stream/block.hpp"
#include "stream/handlers.hpp"
#include "stream/params.hpp"

namespace ff::stream {

class Element;

/// Bounded single-producer single-consumer FIFO connecting two ports.
/// Capacity is in blocks; a full channel stalls the producer (backpressure),
/// a closed channel tells the consumer no more blocks will ever arrive.
struct Channel {
  std::deque<Block> fifo;
  std::size_t capacity = 8;
  bool closed = false;

  // Occupancy bookkeeping for the stream.* telemetry.
  std::uint64_t blocks_total = 0;
  std::size_t depth_peak = 0;

  // Wiring (set by Graph::connect; used for validation and metric names).
  Element* producer = nullptr;
  Element* consumer = nullptr;
  std::size_t producer_port = 0;
  std::size_t consumer_port = 0;

  bool full() const { return fifo.size() >= capacity; }
  bool empty() const { return fifo.empty(); }
  /// Nothing queued and nothing coming: the consumer is finished with it.
  bool drained() const { return closed && fifo.empty(); }
};

class Element {
 public:
  Element(std::string name, std::size_t n_inputs, std::size_t n_outputs);
  virtual ~Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }
  std::size_t n_inputs() const { return inputs_.size(); }
  std::size_t n_outputs() const { return outputs_.size(); }

  /// Click-style class name ("Fir", "PacketSource", ...): the name this
  /// element is declared with in the graph language and registered under in
  /// the ElementRegistry. A class constant, not the instance name.
  virtual const char* class_name() const = 0;

  /// Apply declarative key=value configuration (the graph-language path;
  /// equivalent to the convenience constructors). Must be called before the
  /// element processes any block. The base class consumes nothing, so any
  /// key left unread fails Params::check_all_used() with a field-naming
  /// error — the ElementRegistry runs that check after every configure().
  virtual void configure(const Params& params) { (void)params; }

  /// This element's handler table, built lazily from add_handlers() on
  /// first access. Every element carries at least the base read handlers
  /// `class` and `stalls`.
  const HandlerRegistry& handlers();

  /// Invoke a read handler by name (FF_CHECK: exists and is readable).
  std::string call_read(const std::string& handler);

  /// Invoke a write handler immediately (FF_CHECK: exists and is
  /// writable). Only safe at quiescent points — before/after a run or
  /// between reference-mode rounds (SchedulerConfig::on_round); for a
  /// sample-exact mid-stream write under ANY scheduler, use write_at().
  void call_write(const std::string& handler, const std::string& value);

  /// Queue a write handler to fire at exact input-stream position `pos`:
  /// the element splits the enclosing block so the write lands between
  /// samples pos-1 and pos, regardless of block size, batch size, thread
  /// count or scheduler mode — the determinism contract for live retunes
  /// (docs/STREAMING.md). A position already consumed applies at the next
  /// block boundary; one at/after end-of-stream never fires. FF_CHECKs the
  /// element supports positioned writes (Transforms do) and the handler is
  /// writable.
  void write_at(std::uint64_t pos, const std::string& handler, const std::string& value);

  /// True when write_at() queues are applied sample-exactly by this class.
  virtual bool supports_positioned_writes() const { return false; }
  std::size_t pending_writes() const { return writes_.size(); }

  /// One scheduling opportunity: move whatever the channels allow without
  /// blocking. Returns true when any block was consumed or emitted.
  virtual bool work() = 0;

  /// Batched scheduling opportunity for the throughput-mode pipeline
  /// scheduler: process up to `max_blocks` blocks per inner pass so
  /// per-block overhead (virtual dispatch, timer scopes, channel
  /// bookkeeping) is amortized. The default simply runs work() — which
  /// already moves everything movable — so every element supports batching;
  /// Transform overrides it with a real span-of-blocks path
  /// (process_batch). Whatever the batch size, blocks are processed in
  /// FIFO order through the same per-block state updates, so the sample
  /// stream is bit-identical to the unbatched path.
  virtual bool work_batch(std::size_t max_blocks) {
    (void)max_blocks;
    return work();
  }

  /// True when the element's last work() ended idle waiting on an EXTERNAL
  /// peer (e.g. a socket with no frame ready) rather than on another
  /// element. Both schedulers use it to tell "idle" from "wedged": the
  /// reference mode's stuck-graph check tolerates a round that moved
  /// nothing while some element waits externally, and the throughput
  /// watchdog keeps ticking. Such elements must throttle themselves (poll
  /// with a timeout) — the schedulers will call work() again immediately.
  /// Note this makes scheduling observables (round counts, stall counters)
  /// timing-dependent for graphs containing such elements; sample streams
  /// stay deterministic.
  virtual bool waiting_external() const { return false; }

  /// Blocks this element stalled on a full output (backpressure events).
  std::uint64_t stalls() const { return stalls_; }

 protected:
  /// Register this class's handlers. Overrides call the base first (it
  /// registers `class` and `stalls`), then add their own.
  virtual void add_handlers(HandlerRegistry& handlers);

  /// Resize the port arrays (configure-time only: FF_CHECKs every current
  /// port is still unwired). Lets declarative classes with variable arity
  /// (Tee) pick their port count from Params.
  void set_port_counts(std::size_t n_inputs, std::size_t n_outputs);

  /// Hook invoked when a telemetry sink is (un)installed — override to
  /// forward the registry into wrapped components that record their own
  /// metrics (e.g. relay::ForwardPipeline).
  virtual void on_metrics(MetricsRegistry* metrics) { (void)metrics; }

  /// A write handler scheduled at an exact input-stream position
  /// (write_at); the queue is kept sorted by pos, FIFO among equals.
  struct PendingWrite {
    std::uint64_t pos = 0;
    std::string handler;
    std::string value;
  };
  std::vector<PendingWrite> writes_;

  // ---- channel access for concrete elements -------------------------
  bool in_available(std::size_t port) const { return !inputs_[port]->empty(); }
  /// Blocks currently queued on an input.
  std::size_t in_count(std::size_t port) const { return inputs_[port]->fifo.size(); }
  /// Blocks an output can accept right now (0 when full or closed).
  std::size_t out_space(std::size_t port) const {
    const Channel& ch = *outputs_[port];
    return ch.closed || ch.fifo.size() >= ch.capacity ? 0 : ch.capacity - ch.fifo.size();
  }
  /// Upstream closed and everything consumed: this input is finished.
  bool in_drained(std::size_t port) const { return inputs_[port]->drained(); }
  /// Output can accept a block right now.
  bool out_ready(std::size_t port) const {
    return !outputs_[port]->full() && !outputs_[port]->closed;
  }
  Block pop(std::size_t port);
  /// Emit a block (counts stream.<name>.blocks / .samples when metrics on).
  void emit(std::size_t port, Block&& block);
  /// Close every output channel (idempotent): end of this element's stream.
  void close_outputs();
  bool outputs_closed() const;
  /// Record one backpressure stall (input ready but output full).
  void note_stall();
  /// Count a consumed block for elements with no outputs (sinks count here
  /// what emit() would have counted).
  void note_consumed(const Block& block);

  MetricsRegistry* metrics() const { return metrics_; }
  /// Per-block processing timer name (empty until metrics are attached).
  const std::string& block_timer_name() const { return m_block_us_; }

 private:
  friend class Graph;
  friend class Scheduler;

  void attach_input(std::size_t port, Channel* ch);
  void attach_output(std::size_t port, Channel* ch);
  /// Install the telemetry sink and precompute this element's metric names
  /// (so the hot loop never builds strings). nullptr disables recording.
  void set_metrics(MetricsRegistry* metrics);

  std::string name_;
  std::vector<Channel*> inputs_;
  std::vector<Channel*> outputs_;
  std::uint64_t stalls_ = 0;

  MetricsRegistry* metrics_ = nullptr;
  std::string m_blocks_;    // stream.<name>.blocks
  std::string m_samples_;   // stream.<name>.samples
  std::string m_block_us_;  // stream.<name>.block_us
  std::string m_stalls_;    // stream.<name>.stalls

  HandlerRegistry handler_registry_;
  bool handlers_built_ = false;
};

/// Convenience base for 0-in/1-out sources. Concrete sources implement
/// exhausted() and next_block(); the base drives the emit loop, stamps
/// stream positions and first/last flags, and closes the output.
class Source : public Element {
 public:
  Source(std::string name, std::size_t block_size);

  bool work() final;

  std::size_t block_size() const { return block_size_; }
  /// Samples emitted so far (the stream clock).
  std::uint64_t produced() const { return pos_; }

 protected:
  /// True once the source will produce no further samples.
  virtual bool exhausted() const = 0;
  /// Produce the next up-to-block_size() samples (called only when
  /// !exhausted()). May return fewer than block_size() samples (e.g. the
  /// stream tail); must not return an empty vector.
  virtual CVec generate() = 0;

  /// Base handlers plus the `produced` stream-clock read.
  void add_handlers(HandlerRegistry& handlers) override;

  /// Configure-time block-size change (FF_CHECK: >= 1, nothing emitted yet).
  void set_block_size(std::size_t block_size);

 private:
  std::size_t block_size_;
  std::uint64_t pos_ = 0;
};

/// Convenience base for 1-in/1-out transforms: pops a block, processes it
/// in place (stateful kernels keep their own delay lines, so block
/// boundaries are invisible), re-emits it, and propagates end-of-stream.
///
/// work_batch() is the amortized variant: it pops up to max_blocks blocks
/// at once, hands them to process_batch() as one span, and emits them all.
/// The default process_batch loops process() block by block — bit-identical
/// to work() by construction — while elements with real batch leverage
/// (contiguous-buffer kernels, one timer scope per batch) can override it.
class Transform : public Element {
 public:
  explicit Transform(std::string name) : Element(std::move(name), 1, 1) {}

  bool work() final;
  bool work_batch(std::size_t max_blocks) override;

  /// Transforms apply write_at() queues sample-exactly: the block containing
  /// a queued position is processed as split sub-blocks around it, with the
  /// write handler fired at the boundary. The wrapped kernels are stateful
  /// and length-preserving, so piecewise processing is bit-identical to
  /// whole-block processing, and downstream block structure is unchanged.
  bool supports_positioned_writes() const override { return true; }

 protected:
  virtual void process(Block& block) = 0;
  /// Process a run of consecutive blocks (stream order). Must equal
  /// calling process() on each block in sequence, bit for bit.
  virtual void process_batch(std::span<Block> blocks) {
    for (Block& b : blocks) process(b);
  }

 private:
  /// process(), with any due positioned writes applied sample-exactly
  /// (splits the block when a write position falls inside it). The
  /// writes_-empty fast path is a single branch on top of process().
  void process_with_writes(Block& block);

  std::vector<Block> batch_;  // work_batch staging (reused across calls)
};

/// Convenience base for aligned 2-in/1-out combiners (adders, cancellers).
/// Pops one block from each input — the streams must be block-aligned,
/// which holds whenever both derive from the same source through
/// length-preserving elements — and emits one combined block.
class Combine2 : public Element {
 public:
  explicit Combine2(std::string name) : Element(std::move(name), 2, 1) {}

  bool work() final;

 protected:
  /// Combine `b` into `a` (a is re-emitted).
  virtual void process(Block& a, const Block& b) = 0;
};

/// Convenience base for 1-in/0-out sinks. `max_blocks_per_work` throttles
/// consumption (0 = drain everything offered) — a deliberately slow sink is
/// how the backpressure tests saturate a graph.
class SinkBase : public Element {
 public:
  SinkBase(std::string name, std::size_t max_blocks_per_work = 0);

  bool work() final;

 protected:
  virtual void consume(const Block& block) = 0;

  /// Configure-time throttle change (Params key max_blocks_per_work).
  void set_max_blocks_per_work(std::size_t n) { max_blocks_per_work_ = n; }

 private:
  std::size_t max_blocks_per_work_;
};

}  // namespace ff::stream
