#include "stream/scheduler.hpp"

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace ff::stream {

Scheduler::Scheduler(Graph& graph, SchedulerConfig cfg) : graph_(graph), cfg_(cfg) {}

std::uint64_t Scheduler::run() {
  FF_CHECK_MSG(cfg_.batch_size >= 1, "SchedulerConfig.batch_size must be >= 1");
  if (cfg_.mode == SchedulerMode::kThroughput) return run_throughput();
  return run_reference();
}

std::uint64_t Scheduler::run_reference() {
  graph_.validate();
  graph_.set_metrics(cfg_.metrics);
  const std::size_t threads = cfg_.threads == 0 ? default_thread_count() : cfg_.threads;

  // Per-element result slots so parallel bodies never share a flag.
  std::vector<char> moved_slots;

  std::uint64_t rounds = 0;
  for (;;) {
    bool any_moved = false;
    for (const auto& level : graph_.levels()) {
      if (threads > 1 && level.size() > 1) {
        moved_slots.assign(level.size(), 0);
        parallel_for(
            level.size(),
            [&](std::size_t i) { moved_slots[i] = level[i]->work() ? 1 : 0; },
            threads);
        for (const char m : moved_slots) any_moved |= (m != 0);
      } else {
        for (Element* e : level) any_moved |= e->work();
      }
    }
    ++rounds;
    // Quiescent point: every element's work() for this round has returned,
    // and none runs until the next round starts — live handler calls here
    // observe and mutate element state race-free.
    if (cfg_.on_round) cfg_.on_round(rounds);
    if (graph_.finished()) break;
    if (!any_moved) {
      // A round that moved nothing is a stuck graph — unless some element is
      // merely waiting on an external peer (a socket with no frame ready),
      // which is idleness, not deadlock. Such elements throttle the loop
      // themselves (they poll with a timeout inside work()).
      bool waiting = false;
      for (const auto& e : graph_.elements()) waiting |= e->waiting_external();
      FF_CHECK_MSG(waiting,
                   "stream graph stalled after " << rounds
                                                 << " rounds: no element can make progress "
                                                    "(undrained channel with a blocked "
                                                    "producer — check queue capacities)");
    }
    FF_CHECK_MSG(cfg_.max_rounds == 0 || rounds < cfg_.max_rounds,
                 "stream graph exceeded max_rounds = " << cfg_.max_rounds);
  }

  if (cfg_.metrics) {
    cfg_.metrics->add("stream.scheduler.rounds", rounds);
    // Peak queue occupancy per channel, keyed by the consuming port. The
    // schedule is thread-count independent, so these gauges are too.
    for (const auto& ch : graph_.channels()) {
      const std::string name = "stream." + ch->consumer->name() + ".in" +
                               std::to_string(ch->consumer_port) + ".depth_peak";
      cfg_.metrics->set(name, static_cast<double>(ch->depth_peak));
    }
  }
  return rounds;
}

}  // namespace ff::stream
