#include "stream/lang.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/check.hpp"
#include "stream/elements.hpp"
#include "stream/io_elements.hpp"

namespace ff::stream {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// '@' continues an identifier so the generated anonymous names (Cfo@2)
// survive a to_text -> parse round trip.
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '@';
}

std::string trim_copy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string default_read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FF_CHECK_MSG(in.good(), "cannot open value file '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Recursive-descent parser over a raw cursor; every token records the
// line/col where it starts so diagnostics point at the offending character.
class Parser {
 public:
  Parser(const std::string& text, std::string source, FileReader read_file)
      : text_(text), read_file_(std::move(read_file)) {
    spec_.source = std::move(source);
  }

  GraphSpec parse() {
    skip_space();
    while (!eof()) {
      parse_statement();
      skip_space();
    }
    check_references();
    return std::move(spec_);
  }

 private:
  // ---- cursor ---------------------------------------------------------

  bool eof() const { return pos_ >= text_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_space() {
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '#' || (peek() == '/' && peek(1) == '/')) {
        while (!eof() && peek() != '\n') advance();
        continue;
      }
      return;
    }
  }

  [[noreturn]] void fail(int line, int col, const std::string& what) const {
    FF_CHECK_MSG(false, spec_.source << ":" << line << ":" << col << ": " << what);
    std::abort();  // unreachable; FF_CHECK_MSG(false, ...) throws
  }

  [[noreturn]] void fail_here(const std::string& what) const { fail(line_, col_, what); }

  void expect(char c, const std::string& where) {
    if (peek() != c)
      fail_here(std::string("expected '") + c + "' " + where + ", got " + describe_next());
    advance();
  }

  std::string describe_next() const {
    if (eof()) return "end of input";
    const char c = peek();
    if (c == '\n') return "end of line";
    return std::string("'") + c + "'";
  }

  // ---- tokens ---------------------------------------------------------

  std::string parse_ident(const std::string& what) {
    if (!ident_start(peek()))
      fail_here("expected " + what + ", got " + describe_next());
    std::string s;
    while (!eof() && ident_char(peek())) s.push_back(advance());
    return s;
  }

  std::size_t parse_uint(const std::string& what) {
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      fail_here("expected " + what + ", got " + describe_next());
    std::size_t v = 0;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
      v = v * 10 + static_cast<std::size_t>(advance() - '0');
    return v;
  }

  // ---- grammar --------------------------------------------------------

  // statement := endpoint ( arrow endpoint )* ';'
  // A lone declaration is a one-endpoint chain with no arrows.
  void parse_statement() {
    const int stmt_line = line_, stmt_col = col_;
    Endpoint from = parse_endpoint(/*after_arrow=*/false);
    bool any_arrow = false;
    for (;;) {
      skip_space();
      std::size_t capacity = 0;
      if (peek() == '-' && peek(1) == '>') {
        advance();
        advance();
      } else if (peek() == '-' && peek(1) == '[') {
        advance();
        advance();
        skip_space();
        capacity = parse_uint("a channel capacity");
        if (capacity == 0) fail_here("channel capacity must be >= 1 block");
        skip_space();
        if (!(peek() == ']' && peek(1) == '-' && peek(2) == '>'))
          fail_here("expected ']->' to close the capacity arrow, got " + describe_next());
        advance();
        advance();
        advance();
      } else {
        break;
      }
      any_arrow = true;
      const int conn_line = line_, conn_col = col_;
      Endpoint to = parse_endpoint(/*after_arrow=*/true);
      Connection c;
      c.from = from.name;
      c.from_port = from.out_port;
      c.to = to.name;
      c.to_port = to.in_port;
      c.capacity = capacity;
      c.line = conn_line;
      c.col = conn_col;
      spec_.connections.push_back(std::move(c));
      from = std::move(to);
    }
    skip_space();
    if (peek() != ';')
      fail_here("expected '->' or ';' after an element, got " + describe_next());
    advance();
    if (!any_arrow && !from.declared)
      fail(stmt_line, stmt_col,
           "statement does nothing: '" + from.name +
               "' is neither declared ('name :: Class') nor connected ('a -> b')");
    if (from.out_port_line)
      fail(from.out_port_line, from.out_port_col,
           "output port selector on the last endpoint of a chain (nothing follows)");
  }

  struct Endpoint {
    std::string name;
    std::size_t in_port = 0;
    std::size_t out_port = 0;
    int out_port_line = 0;  // 0 = no explicit [n] suffix
    int out_port_col = 0;
    bool declared = false;  // this endpoint introduced a declaration
  };

  // endpoint := [ '[' port ']' ] element [ '[' port ']' ]
  // element  := IDENT '::' CLASS [config]   (inline declaration)
  //           | IDENT [config-present]      ('(' => anonymous CLASS use)
  //           | IDENT                       (reference to a declared name)
  Endpoint parse_endpoint(bool after_arrow) {
    skip_space();
    Endpoint ep;
    if (peek() == '[') {
      const int l = line_, c = col_;
      if (!after_arrow)
        fail(l, c, "input port selector before the first endpoint of a chain");
      advance();
      skip_space();
      ep.in_port = parse_uint("an input port number");
      skip_space();
      expect(']', "after the input port number");
      skip_space();
    }

    const int elem_line = line_, elem_col = col_;
    const std::string first = parse_ident("an element name or class");
    skip_space();
    if (peek() == ':' && peek(1) == ':') {
      advance();
      advance();
      skip_space();
      const std::string cls = parse_ident("a class name after '::'");
      declare(first, cls, elem_line, elem_col);
      ep.name = first;
      ep.declared = true;
    } else if (peek() == '(') {
      // Anonymous use: the parens mark `first` as a class name.
      std::string name = first + "@" + std::to_string(++anon_counter_);
      declare_at_paren(name, first, elem_line, elem_col);
      ep.name = std::move(name);
      ep.declared = true;
    } else {
      ep.name = first;
      referenced_.emplace_back(first, elem_line, elem_col);
    }

    skip_space();
    if (peek() == '[') {
      ep.out_port_line = line_;
      ep.out_port_col = col_;
      advance();
      skip_space();
      ep.out_port = parse_uint("an output port number");
      skip_space();
      expect(']', "after the output port number");
    }
    return ep;
  }

  // Common tail of a declaration: optional '(config)' then record the decl.
  void declare(const std::string& name, const std::string& cls, int line, int col) {
    skip_space();
    ElementDecl d;
    d.name = name;
    d.class_name = cls;
    d.line = line;
    d.col = col;
    if (peek() == '(') parse_config(d);
    add_decl(std::move(d));
  }

  void declare_at_paren(const std::string& name, const std::string& cls, int line,
                        int col) {
    ElementDecl d;
    d.name = name;
    d.class_name = cls;
    d.line = line;
    d.col = col;
    parse_config(d);  // caller saw the '('
    add_decl(std::move(d));
  }

  void add_decl(ElementDecl d) {
    const ElementDecl* prev = spec_.find_decl(d.name);
    if (prev)
      fail(d.line, d.col,
           "duplicate element name '" + d.name + "' (first declared at line " +
               std::to_string(prev->line) + ")");
    d.params.set_context(d.class_name + " '" + d.name + "'");
    spec_.decls.push_back(std::move(d));
  }

  // config := '(' [ key '=' value ( ',' key '=' value )* ] ')'
  // The body is captured raw (parens nest, for complex lists) and split at
  // top-level commas; '@path' values substitute the file's contents.
  void parse_config(ElementDecl& d) {
    const int cfg_line = line_, cfg_col = col_;
    expect('(', "to open the configuration");
    std::string raw;
    int depth = 1;
    while (depth > 0) {
      if (eof())
        fail(cfg_line, cfg_col, "unterminated '(' in " + d.class_name + " configuration");
      const char c = advance();
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) break;
      raw.push_back(c);
    }
    // Re-join fragments of list values: `taps=(1,0),(2,0)` splits at the
    // top-level comma after the first tap, leaving a tail fragment with no
    // '=' — glue such fragments back onto the preceding entry.
    std::vector<std::string> entries;
    for (std::string& fragment : split_list_value(d.class_name + " configuration", raw)) {
      if (!entries.empty() && fragment.find('=') == std::string::npos)
        entries.back() += "," + fragment;
      else
        entries.push_back(std::move(fragment));
    }
    for (const std::string& entry : entries) {
      if (entry.empty())
        fail(cfg_line, cfg_col, d.class_name + ": empty configuration entry");
      const auto eq = entry.find('=');
      if (eq == std::string::npos)
        fail(cfg_line, cfg_col,
             d.class_name + ": configuration entry '" + entry +
                 "' is not of the form key=value");
      const std::string key = trim_copy(entry.substr(0, eq));
      std::string value = trim_copy(entry.substr(eq + 1));
      if (key.empty() || !ident_start(key[0]))
        fail(cfg_line, cfg_col,
             d.class_name + ": bad parameter name '" + key + "' in '" + entry + "'");
      if (!value.empty() && value[0] == '@') {
        const std::string path = value.substr(1);
        if (path.empty())
          fail(cfg_line, cfg_col, d.class_name + ": '" + key + "=@' names no file");
        try {
          const FileReader& rd = read_file_ ? read_file_ : default_read_file;
          value = trim_copy(rd(path));
        } catch (const std::exception& err) {
          fail(cfg_line, cfg_col,
               d.class_name + ": " + key + "=@" + path + ": " + err.what());
        }
      }
      try {
        d.params.set(key, std::move(value));
      } catch (const std::exception& err) {
        fail(cfg_line, cfg_col, err.what());
      }
    }
  }

  // Every bare name used in a chain must be declared somewhere in the file
  // (declarations may come later than the use).
  void check_references() const {
    for (const auto& [name, line, col] : referenced_)
      if (!spec_.find_decl(name))
        fail(line, col,
             "unknown element '" + name +
                 "' (declare it with 'name :: Class(...)', or add parens for an "
                 "anonymous class use)");
  }

  const std::string& text_;
  FileReader read_file_;
  GraphSpec spec_;
  std::vector<std::tuple<std::string, int, int>> referenced_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int anon_counter_ = 0;
};

}  // namespace

// ---------------------------------------------------------- ElementRegistry

void ElementRegistry::add(const std::string& class_name, Factory factory) {
  FF_CHECK_MSG(!class_name.empty() && factory, "ElementRegistry::add needs a name and factory");
  FF_CHECK_MSG(factories_.emplace(class_name, std::move(factory)).second,
               "element class '" << class_name << "' registered twice");
}

bool ElementRegistry::has(const std::string& class_name) const {
  return factories_.count(class_name) != 0;
}

std::vector<std::string> ElementRegistry::class_names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Element> ElementRegistry::make(const std::string& class_name,
                                               std::string name, Params params) const {
  const auto it = factories_.find(class_name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [cls, factory] : factories_) {
      if (!known.empty()) known += ", ";
      known += cls;
    }
    FF_CHECK_MSG(false, "unknown element class '" << class_name << "' (known: " << known
                                                  << ")");
  }
  std::unique_ptr<Element> e = it->second(std::move(name));
  FF_CHECK_MSG(e != nullptr, "factory for '" << class_name << "' returned null");
  params.set_context(std::string(e->class_name()) + " '" + e->name() + "'");
  e->configure(params);
  params.check_all_used();
  return e;
}

const ElementRegistry& ElementRegistry::builtin() {
  static const ElementRegistry registry = [] {
    ElementRegistry r;
    r.add<VectorSource>("VectorSource");
    r.add<PacketSource>("PacketSource");
    r.add<FirElement>("Fir");
    r.add<CfoElement>("Cfo");
    r.add<PipelineElement>("Pipeline");
    r.add<ChannelElement>("Channel");
    r.add<FaultElement>("Fault");
    r.add<GateElement>("Gate");
    r.add<Queue>("Queue");
    r.add<Tee>("Tee");
    r.add<Add2>("Add2");
    r.add<CancellerElement>("Canceller");
    r.add<AccumulatorSink>("AccumulatorSink");
    r.add<NullSink>("NullSink");
    r.add<SocketSource>("SocketSource");
    r.add<SocketSink>("SocketSink");
    r.add<FileTapSink>("FileTapSink");
    return r;
  }();
  return registry;
}

// ----------------------------------------------------------------- GraphSpec

const ElementDecl* GraphSpec::find_decl(const std::string& name) const {
  for (const auto& d : decls)
    if (d.name == name) return &d;
  return nullptr;
}

std::string GraphSpec::to_text() const {
  std::ostringstream os;
  for (const auto& d : decls) {
    os << d.name << " :: " << d.class_name;
    if (!d.params.empty()) {
      os << "(";
      bool first = true;
      for (const auto& [key, value] : d.params.items()) {
        if (!first) os << ", ";
        first = false;
        os << key << "=" << value;
      }
      os << ")";
    }
    os << ";\n";
  }
  for (const auto& c : connections) {
    os << c.from;
    if (c.from_port != 0) os << "[" << c.from_port << "]";
    if (c.capacity != 0)
      os << " -[" << c.capacity << "]-> ";
    else
      os << " -> ";
    if (c.to_port != 0) os << "[" << c.to_port << "]";
    os << c.to << ";\n";
  }
  return os.str();
}

// ------------------------------------------------------------------ parsing

GraphSpec parse_graph(const std::string& text, const std::string& source,
                      FileReader read_file) {
  return Parser(text, source, std::move(read_file)).parse();
}

GraphSpec parse_graph_file(const std::string& path, FileReader read_file) {
  return parse_graph(default_read_file(path), path, std::move(read_file));
}

// ----------------------------------------------------------------- building

std::vector<Element*> build_graph(Graph& graph, const GraphSpec& spec,
                                  const ElementRegistry& registry,
                                  std::size_t default_capacity) {
  std::vector<Element*> built;
  built.reserve(spec.decls.size());
  for (const auto& d : spec.decls) {
    try {
      built.push_back(graph.add(registry.make(d.class_name, d.name, d.params)));
    } catch (const std::logic_error& err) {
      FF_CHECK_MSG(false, spec.source << ":" << d.line << ":" << d.col << ": "
                                      << err.what());
    }
  }
  for (const auto& c : spec.connections) {
    Element* from = graph.find(c.from);
    Element* to = graph.find(c.to);
    // The parser guarantees both are declared; a hand-built spec may not.
    try {
      FF_CHECK_MSG(from, "unknown element '" << c.from << "'");
      FF_CHECK_MSG(to, "unknown element '" << c.to << "'");
      graph.connect(*from, c.from_port, *to, c.to_port,
                    c.capacity == 0 ? default_capacity : c.capacity);
    } catch (const std::logic_error& err) {
      FF_CHECK_MSG(false, spec.source << ":" << c.line << ":" << c.col << ": "
                                      << err.what());
    }
  }
  try {
    graph.validate();
  } catch (const std::logic_error& err) {
    FF_CHECK_MSG(false, spec.source << ": " << err.what());
  }
  return built;
}

std::vector<Element*> build_graph(Graph& graph, const std::string& text,
                                  const std::string& source,
                                  const ElementRegistry& registry,
                                  std::size_t default_capacity) {
  return build_graph(graph, parse_graph(text, source), registry, default_capacity);
}

}  // namespace ff::stream
