// The element library: concrete sources, transforms, combiners and sinks
// that wrap the simulator's stateful components for the streaming runtime.
//
// Every element here keeps the block-size invariance contract (block.hpp):
// the wrapped kernels are push()-style with internal delay lines, and any
// position-dependent behaviour (channel retunes, fault schedules, gate
// decisions) happens at exact sample indices — never "once per block". A
// stream cut into blocks of 1 and of 4096 therefore produces bit-identical
// samples, which tests/stream_test.cpp asserts against the batch path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "channel/cfo.hpp"
#include "channel/multipath.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "eval/faults.hpp"
#include "fullduplex/stack.hpp"
#include "ident/pn_detector.hpp"
#include "net/drift.hpp"
#include "phy/frame.hpp"
#include "relay/pipeline.hpp"
#include "stream/element.hpp"

namespace ff::stream {

// ---------------------------------------------------------------- sources

/// Default block size for declaratively-constructed sources that don't
/// specify `block=`.
inline constexpr std::size_t kDefaultBlockSize = 256;

/// Replays a fixed sample record (a captured trace, a precomputed packet)
/// as a stream of `block_size` blocks.
///
/// Params: data (complex list, required), block (default 256).
class VectorSource : public Source {
 public:
  explicit VectorSource(std::string name);
  VectorSource(std::string name, CVec data, std::size_t block_size);

  const char* class_name() const override { return "VectorSource"; }
  void configure(const Params& params) override;

 protected:
  bool exhausted() const override { return offset_ >= data_.size(); }
  CVec generate() override;

 private:
  CVec data_;
  std::size_t offset_ = 0;
};

struct PacketSourceConfig {
  phy::OfdmParams params{};
  int mcs_index = 0;
  std::size_t payload_bits = 256;
  std::size_t n_packets = 1;
  /// Idle (zero) samples appended after every packet, the last included —
  /// the inter-frame gap, and room for downstream filter tails.
  std::size_t gap_samples = 160;
  /// Non-zero = prepend this client's PN signature (Sec. 6 downlink form).
  std::uint32_t signature_client = 0;
  /// Upsampling factor applied per packet (the time-domain evaluator's
  /// converter oversampling; 4 = 80 Msps for the 20 MHz PHY). gap_samples
  /// count at the upsampled rate. Per-packet upsampling keeps generation —
  /// and therefore the stream — independent of the block size.
  std::size_t oversample = 1;
  std::uint64_t seed = 1;
};

/// Generates a deterministic sequence of modulated packets with random
/// payloads, lazily one packet at a time (a session of N packets never
/// holds more than one packet of staging memory).
///
/// Params: packets, payload_bits, gap, signature_client, oversample, seed,
/// mcs, block, plus OFDM numerology overrides fft_size, cp_len, rate,
/// carrier, used_half (defaults = the WiFi-20 prototype PHY).
class PacketSource : public Source {
 public:
  explicit PacketSource(std::string name);
  PacketSource(std::string name, PacketSourceConfig cfg, std::size_t block_size);

  const char* class_name() const override { return "PacketSource"; }
  void configure(const Params& params) override;

  const PacketSourceConfig& config() const { return cfg_; }
  std::size_t packets_done() const { return packets_done_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;

  bool exhausted() const override {
    return packets_done_ == cfg_.n_packets && offset_ >= staging_.size();
  }
  CVec generate() override;

 private:
  void stage_next_packet();

  PacketSourceConfig cfg_;
  phy::Transmitter tx_;
  Rng rng_;
  CVec staging_;
  std::size_t offset_ = 0;
  std::size_t packets_done_ = 0;
};

// -------------------------------------------------------------- transforms

/// Stateful FIR filtering (dsp::FirFilter): the delay line spans block
/// boundaries, so streaming equals one batch dsp::filter() call bit-for-bit.
///
/// Params: taps (complex list, required).
/// Handlers: taps (read), set_taps (write, history-preserving live retune).
class FirElement : public Transform {
 public:
  explicit FirElement(std::string name);
  FirElement(std::string name, CVec taps);

  const char* class_name() const override { return "Fir"; }
  void configure(const Params& params) override;

  const dsp::FirFilter& filter() const { return fir_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& block) override;

 private:
  dsp::FirFilter fir_;
};

/// Phase-continuous CFO rotation (channel::CfoRotator).
///
/// Params: hz (required), rate (default 20e6), precision (f64 | f32 — the
/// float32 fast path: narrow once, rotate in f32, widen once).
/// Handlers: cfo_hz, phase (read), set_cfo (write, phase-continuous retune).
class CfoElement : public Transform {
 public:
  explicit CfoElement(std::string name);
  CfoElement(std::string name, double cfo_hz, double sample_rate_hz,
             Precision precision = Precision::kF64);

  const char* class_name() const override { return "Cfo"; }
  void configure(const Params& params) override;

  const channel::CfoRotator& rotator() const { return rot_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& block) override;

 private:
  channel::CfoRotator rot_;
  double sample_rate_hz_;
  Precision precision_ = Precision::kF64;
  dsp::kernels::Workspace ws_;  // f32 narrow/widen + phasor scratch
};

/// The relay's forward path (relay::ForwardPipeline) as a stream stage:
/// CFO remove -> digital CNF -> CFO restore -> amplify -> analog CNF ->
/// TX filter / bulk delay, all stateful across blocks.
/// Params: rate, adc_dac_delay, extra_buffer, cfo_hz, restore_cfo,
/// prefilter (complex list), analog_rotation, gain_db, tx_filter
/// (complex list), scrub_nonfinite, precision (f64 | f32 — the
/// mixed-precision forward fast path, relay::PipelineConfig::precision).
/// Handlers: scrubbed, max_delay_s (read).
class PipelineElement : public Transform {
 public:
  explicit PipelineElement(std::string name);
  PipelineElement(std::string name, relay::PipelineConfig cfg);

  const char* class_name() const override { return "Pipeline"; }
  void configure(const Params& params) override;

  const relay::ForwardPipeline& pipeline() const { return pipeline_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void on_metrics(MetricsRegistry* metrics) override;
  void process(Block& block) override;

 private:
  relay::ForwardPipeline pipeline_;
};

struct ChannelElementConfig {
  channel::MultipathChannel channel;
  double sample_rate_hz = 20e6;
  /// Timeline origin subtracted from path delays before discretization
  /// (must be <= the channel's min delay; see MultipathChannel::to_fir).
  double delay_ref_s = 0.0;
  std::size_t sinc_half_width = 16;
  /// Per-sample complex noise power E[|n|^2] added after the channel
  /// (thermal floor at the receiver). 0 = noiseless.
  double noise_power = 0.0;
  /// Channel coherence time for AR(1) drift (net::DriftingChannel).
  /// 0 = static channel, no drift.
  double coherence_time_s = 0.0;
  /// Re-discretize the drifting channel every this many samples. The
  /// retune happens at exact stream positions (multiples of the interval),
  /// so drift is block-size invariant. 0 = never retune (static FIR).
  std::size_t retune_interval_samples = 0;
  std::uint64_t seed = 0x5EED;
  /// kF32 runs the channel FIR on the float32 kernel family (narrow on
  /// segment entry, widen before the noise add). Discretization, drift and
  /// the noise RNG stay double — the same draws in the same order as kF64,
  /// so the f32 stream keeps its own block-size/thread-invariant checksum.
  Precision precision = Precision::kF64;
};

/// Multipath propagation as a stream stage: the channel discretized to a
/// stateful FIR, optional AWGN, and optional AR(1) tap drift with retunes
/// at exact sample positions. Drift changes amplitudes, never delays, so
/// the FIR length is constant and set_taps() keeps the delay-line history
/// across retunes (no re-discretization transient).
/// Params: paths (list of `delay:amp` entries, amp complex), fc (carrier,
/// default 2.45e9), rate, delay_ref, sinc_half_width, noise, coherence,
/// retune_interval, seed, precision (f64 | f32).
/// Handlers: retunes (read), retune (write: advance drift by the given dt
/// seconds and re-discretize — a manual retune step).
class ChannelElement : public Transform {
 public:
  explicit ChannelElement(std::string name);
  ChannelElement(std::string name, ChannelElementConfig cfg);

  const char* class_name() const override { return "Channel"; }
  void configure(const Params& params) override;

  const ChannelElementConfig& config() const { return cfg_; }
  /// Retunes performed so far (drift steps applied to the FIR).
  std::uint64_t retunes() const { return retunes_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& block) override;

 private:
  bool drifting() const {
    return cfg_.coherence_time_s > 0.0 && cfg_.retune_interval_samples > 0;
  }

  ChannelElementConfig cfg_;
  net::DriftingChannel drift_;
  dsp::FirFilter fir_;
  dsp::FirFilter32 fir32_;  // float32 twin, active when precision == kF32
  Rng noise_rng_;
  Rng drift_rng_;
  std::uint64_t pos_ = 0;
  std::uint64_t retunes_ = 0;
  dsp::kernels::Workspace ws_;  // FIR scratch for the segment-wise block path
};

/// Deterministic front-end faults (eval::FaultInjector) applied in stream
/// order; the injector's schedules are already batch-invariant by design.
/// Params: drop, corrupt, nan (rates in [0,1]), corrupt_amplitude,
/// estimate_sigma, sounding_failure, seed — all routed through
/// FaultInjector's own validation, so a bad rate names the field.
/// Handlers: samples_seen, dropped, corrupted, poisoned (read).
class FaultElement : public Transform {
 public:
  explicit FaultElement(std::string name);
  FaultElement(std::string name, eval::FaultConfig cfg);

  const char* class_name() const override { return "Fault"; }
  void configure(const Params& params) override;

  const eval::FaultInjector& injector() const { return injector_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& block) override;

 private:
  eval::FaultInjector injector_;
};

/// PN-signature gating (Sec. 6): the relay mutes its forward path until it
/// recognizes a registered client's signature in the first `window` samples
/// of the stream. The detect decision is made exactly once, at sample index
/// `window` (or end-of-stream if shorter) — a sample-exact decision point,
/// so gating is block-size invariant. Before the decision the output is
/// muted (zeros); after it, samples pass iff a signature matched.
/// Params: window (required, >= 1), clients (required, list of `id:len`
/// signature registrations), threshold (default 0.6, in (0, 1]).
/// Handlers: decided, client (read), set_open (write: force the gate
/// decision — true opens, false mutes; overrides detection).
class GateElement : public Transform {
 public:
  explicit GateElement(std::string name);
  GateElement(std::string name, ident::PnSignatureDetector detector, std::size_t window);

  const char* class_name() const override { return "Gate"; }
  void configure(const Params& params) override;

  /// The decision, once made (empty optional before, and forever when no
  /// signature matched).
  const std::optional<ident::PnDetection>& decision() const { return decision_; }
  bool decided() const { return decided_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& block) override;

 private:
  ident::PnSignatureDetector detector_;
  std::size_t window_;
  CVec buffer_;          // first `window` samples, for the one detect() call
  bool decided_ = false;
  bool pass_ = false;
  std::optional<ident::PnDetection> decision_;
};

// --------------------------------------------------------------- plumbing

/// Explicit buffering stage (Click's Queue): passes blocks through
/// untouched; its purpose is the bounded channels on either side. Wire it
/// with small capacities to study backpressure, large ones to decouple a
/// bursty producer from a slow consumer.
class Queue : public Transform {
 public:
  explicit Queue(std::string name) : Transform(std::move(name)) {}

  const char* class_name() const override { return "Queue"; }

 protected:
  void process(Block&) override {}
  /// A queue moves blocks untouched, so the batch path needs no per-block
  /// virtual calls at all — the cheapest possible process_batch.
  void process_batch(std::span<Block>) override {}
};

/// Copies each input block to every output (the stream equivalent of a
/// signal splitter — e.g. the over-the-air signal reaching both the direct
/// path and the relay). Pops only when every output can accept the copy,
/// so one slow branch backpressures the other.
///
/// Params: outputs (default 2, >= 2).
class Tee : public Element {
 public:
  explicit Tee(std::string name);
  Tee(std::string name, std::size_t n_outputs);

  const char* class_name() const override { return "Tee"; }
  void configure(const Params& params) override;

  bool work() override;
};

/// Aligned sample-wise sum of two streams (superposition at a receiver).
class Add2 : public Combine2 {
 public:
  explicit Add2(std::string name) : Combine2(std::move(name)) {}

  const char* class_name() const override { return "Add2"; }

 protected:
  void process(Block& a, const Block& b) override;
};

/// Streaming two-stage self-interference cancellation: input 0 is the
/// receive stream, input 1 the (known) transmit stream; the output is
///   rx[n] - (analog_fir * tx)[n] - (digital_taps * tx)[n],
/// i.e. fd::CancellationStack::apply() restated with stateful FIRs so it
/// runs online. Requires a causal digital stage (lookahead 0) — the paper's
/// whole point (Sec. 3.3) is that the causal canceller needs no future tx.
/// Params: analog, digital (complex lists, either may be omitted),
/// precision (f64 | f32: run both FIR stages and the subtractions on the
/// float32 kernel family, converting at the block edges).
/// Handlers: analog_taps, digital_taps (read), set_analog_taps,
/// set_digital_taps (write, history-preserving live retunes of BOTH
/// precision twins).
class CancellerElement : public Combine2 {
 public:
  explicit CancellerElement(std::string name);

  /// From raw tap sets (empty digital taps = analog stage only).
  CancellerElement(std::string name, CVec analog_fir, CVec digital_taps);

  /// From a tuned stack (FF_CHECKs tuned() and a causal digital stage).
  CancellerElement(std::string name, const fd::CancellationStack& stack);

  const char* class_name() const override { return "Canceller"; }
  void configure(const Params& params) override;

  /// The steady-state hot loop: cancel one aligned block in place
  /// (rx[i] = (rx[i] - analog[i]) - digital[i], both stages stateful).
  /// Both FIR stages run block-wise through the element-owned Workspace
  /// (slot 0: FIR extended buffers, slots 1/2: analog/digital stage
  /// outputs), so after warmup this performs zero heap allocations —
  /// tests/kernels_test.cpp asserts that with an operator-new hook.
  void cancel_into(CMutSpan rx, CSpan tx);

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void process(Block& rx, const Block& tx) override;

 private:
  static CVec or_zero_tap(CVec taps);
  void set_analog(CVec taps);
  void set_digital(CVec taps);

  dsp::FirFilter analog_;
  dsp::FirFilter digital_;
  dsp::FirFilter32 analog32_;  // float32 twins, active when precision == kF32
  dsp::FirFilter32 digital32_;
  Precision precision_ = Precision::kF64;
  dsp::kernels::Workspace ws_;
};

// ------------------------------------------------------------------ sinks

/// Collects the stream back into one contiguous vector, asserting the
/// blocks arrive in order and gap-free. `max_blocks_per_work` (see
/// SinkBase) throttles consumption for backpressure tests.
class AccumulatorSink : public SinkBase {
 public:
  explicit AccumulatorSink(std::string name, std::size_t max_blocks_per_work = 0);

  const char* class_name() const override { return "AccumulatorSink"; }
  void configure(const Params& params) override;

  const CVec& samples() const { return samples_; }
  CVec take() { return std::move(samples_); }
  std::uint64_t blocks_seen() const { return blocks_seen_; }

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void consume(const Block& block) override;

 private:
  CVec samples_;
  std::uint64_t blocks_seen_ = 0;
};

/// Counts samples and accumulates mean power without storing the stream —
/// the bounded-memory sink for long sessions.
class NullSink : public SinkBase {
 public:
  explicit NullSink(std::string name, std::size_t max_blocks_per_work = 0);

  const char* class_name() const override { return "NullSink"; }
  void configure(const Params& params) override;

  std::uint64_t samples_seen() const { return samples_seen_; }
  /// Mean |x|^2 over everything consumed (0 before any sample).
  double mean_power() const;

 protected:
  void add_handlers(HandlerRegistry& handlers) override;
  void consume(const Block& block) override;

 private:
  std::uint64_t samples_seen_ = 0;
  double power_acc_ = 0.0;
};

}  // namespace ff::stream
