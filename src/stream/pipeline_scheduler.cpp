// Throughput-mode pipeline scheduler (Scheduler::run_throughput).
//
// The reference scheduler barriers the whole graph every round: every
// element waits for the slowest level before anyone sees the next block.
// This mode removes the barrier. The validated graph's topological order is
// cut into `threads` contiguous chains; each chain gets one long-lived
// worker thread (optionally pinned to a core) that loops over its own
// elements forever, and every chain-crossing channel is bridged by a
// lock-free SPSC ring (ring.hpp). Blocks stream down the pipeline with no
// global synchronization — the only cross-thread traffic is the ring's
// acquire/release index pair per batch.
//
// Bridging keeps the Element API untouched. A crossing channel
// producer→consumer is split into three single-threaded pieces:
//
//   producer --emit()--> origin Channel     (touched only by producer chain)
//                          | drain, batch_size at a time
//                          v
//                       SpscRing            (the only shared structure)
//                          | fill, batch_size at a time
//                          v
//                        stub Channel --pop()--> consumer
//                                           (touched only by consumer chain)
//
// The producer's worker drains origin→ring after running its elements; the
// consumer's worker fills ring→stub before running its own. Each deque is
// owned by exactly one thread, so elements never know which mode they run
// under. When the origin closes and empties, the worker closes the ring;
// when the ring drains, the consumer's worker closes the stub — end-of-
// stream propagates through the bridge exactly like through a channel.
// Total buffering per bridged edge is origin + ring + stub, strictly more
// slack than the reference mode's single channel, so no graph that
// completes under the reference scheduler can deadlock here.
//
// Determinism: each element still processes its input FIFOs in order, on
// exactly one thread, with all randomness element-owned — the dataflow
// contract of element.hpp. The output stream is therefore bit-identical to
// the reference mode at ANY chain partitioning, batch size, and core count
// (tests/stream_test.cpp proves it, down to the relay-session checksum).
// What is NOT deterministic here is scheduling observables: queue depth
// peaks, stall counters, and ring statistics depend on thread timing and
// are excluded from determinism comparisons (docs/OBSERVABILITY.md).
//
// Safety: a wall-clock progress watchdog replaces the reference mode's
// stuck-round check. If no chain moves a block for watchdog_ms, every
// worker is aborted and the error reports each bridge's ring occupancy —
// the pipeline picture of where the graph wedged.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/affinity.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "stream/ring.hpp"
#include "stream/scheduler.hpp"

namespace ff::stream {

namespace {

/// One chain-crossing channel split into producer-side origin (the
/// channel already wired into the producer), the shared ring, and the
/// consumer-side stub the consumer is rewired onto for the run.
struct Bridge {
  Channel* origin = nullptr;
  Channel stub;
  SpscRing<Block> ring;
  std::size_t producer_chain = 0;
  std::size_t consumer_chain = 0;

  Bridge(Channel* ch, std::size_t ring_cap, std::size_t prod, std::size_t cons)
      : origin(ch), ring(ring_cap), producer_chain(prod), consumer_chain(cons) {
    stub.capacity = ch->capacity;
    stub.producer = ch->producer;
    stub.consumer = ch->consumer;
    stub.producer_port = ch->producer_port;
    stub.consumer_port = ch->consumer_port;
  }
};

/// Everything one worker thread owns: its contiguous element cut and the
/// bridges it fills (inbound) and drains (outbound).
struct Chain {
  std::vector<Element*> elements;
  std::vector<Bridge*> inbound;
  std::vector<Bridge*> outbound;

  bool finished(const std::vector<const Channel*>& internal) const {
    for (const Bridge* br : inbound)
      if (!br->stub.drained()) return false;
    for (const Channel* ch : internal)
      if (!ch->drained()) return false;
    for (const Bridge* br : outbound)
      if (!br->origin->drained() || !br->ring.closed()) return false;
    return true;
  }

  std::vector<const Channel*> internal_channels;  // both endpoints in chain
};

}  // namespace

std::uint64_t Scheduler::run_throughput() {
  FF_CHECK_MSG(!cfg_.on_round,
               "SchedulerConfig.on_round is reference-mode only: the throughput "
               "pipeline has no global quiescent point between rounds — queue "
               "sample-exact writes with Element::write_at instead");
  graph_.validate();
  graph_.set_metrics(cfg_.metrics);

  const std::vector<Element*> order = graph_.topo_order();
  std::size_t n_chains = cfg_.threads == 0 ? default_thread_count() : cfg_.threads;
  if (n_chains > order.size()) n_chains = order.size();
  FF_CHECK_MSG(n_chains >= 1, "throughput scheduler needs at least one chain");

  // Contiguous cuts of the topological order: chain c gets
  // [c*n/chains, (c+1)*n/chains). Any cut is correct (determinism is
  // dataflow-borne); contiguity keeps most channels chain-internal.
  std::vector<std::size_t> chain_of(order.size());
  std::vector<Chain> chains(n_chains);
  for (std::size_t c = 0; c < n_chains; ++c) {
    const std::size_t begin = c * order.size() / n_chains;
    const std::size_t end = (c + 1) * order.size() / n_chains;
    for (std::size_t i = begin; i < end; ++i) {
      chain_of[i] = c;
      chains[c].elements.push_back(order[i]);
    }
  }
  std::unordered_map<const Element*, std::size_t> chain_of_element;
  for (std::size_t i = 0; i < order.size(); ++i) chain_of_element[order[i]] = chain_of[i];

  // Bridge every chain-crossing channel and rewire its consumer onto the
  // stub for the duration of the run.
  std::vector<std::unique_ptr<Bridge>> bridges;
  for (const auto& ch : graph_.channels()) {
    const std::size_t pc = chain_of_element.at(ch->producer);
    const std::size_t cc = chain_of_element.at(ch->consumer);
    if (pc == cc) {
      chains[pc].internal_channels.push_back(ch.get());
      continue;
    }
    std::size_t cap = cfg_.ring_capacity;
    if (cap == 0) cap = ch->capacity > cfg_.batch_size ? ch->capacity : cfg_.batch_size;
    auto br = std::make_unique<Bridge>(ch.get(), cap, pc, cc);
    ch->consumer->inputs_[ch->consumer_port] = &br->stub;
    chains[pc].outbound.push_back(br.get());
    chains[cc].inbound.push_back(br.get());
    bridges.push_back(std::move(br));
  }

  // Whatever happens below, put the consumers back on their real channels.
  struct RewireGuard {
    std::vector<std::unique_ptr<Bridge>>* bridges;
    ~RewireGuard() {
      for (auto& br : *bridges)
        br->origin->consumer->inputs_[br->origin->consumer_port] = br->origin;
    }
  } rewire_guard{&bridges};

  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> progress{0};   // bumped on any chain progress
  std::atomic<std::uint64_t> transfers{0};  // blocks moved across rings
  std::atomic<std::size_t> done{0};         // workers that have returned
  std::vector<std::exception_ptr> errors(n_chains);
  const std::size_t batch = cfg_.batch_size;

  auto chain_loop = [&](std::size_t c) {
    if (cfg_.pin_cores) pin_current_thread_to_core(c);
    Chain& chain = chains[c];
    SpinBackoff backoff;
    try {
      for (;;) {
        if (abort.load(std::memory_order_relaxed)) return;
        bool moved = false;

        // Fill: ring -> stub, so this chain's elements see fresh input.
        for (Bridge* br : chain.inbound) {
          Channel& stub = br->stub;
          std::size_t space =
              stub.fifo.size() >= stub.capacity ? 0 : stub.capacity - stub.fifo.size();
          if (space > batch) space = batch;
          if (space > 0) {
            const std::size_t got = br->ring.try_pop_batch(space, [&](Block&& b) {
              stub.fifo.push_back(std::move(b));
            });
            if (got > 0) {
              stub.blocks_total += got;
              if (stub.fifo.size() > stub.depth_peak) stub.depth_peak = stub.fifo.size();
              transfers.fetch_add(got, std::memory_order_relaxed);
              moved = true;
            }
          }
          if (!stub.closed && br->ring.drained()) {
            stub.closed = true;
            moved = true;
          }
        }

        // Run the chain's elements in topological order, batched.
        for (Element* e : chain.elements) moved |= e->work_batch(batch);

        // Drain: origin -> ring, publishing to the downstream chain.
        for (Bridge* br : chain.outbound) {
          Channel& origin = *br->origin;
          std::size_t n = origin.fifo.size();
          if (n > batch) n = batch;
          if (n > 0) {
            const std::size_t pushed = br->ring.try_push_batch(n, [&] {
              Block b = std::move(origin.fifo.front());
              origin.fifo.pop_front();
              return b;
            });
            if (pushed > 0) {
              transfers.fetch_add(pushed, std::memory_order_relaxed);
              moved = true;
            }
          }
          if (origin.closed && origin.fifo.empty() && !br->ring.closed()) {
            br->ring.close();
            moved = true;
          }
        }

        if (moved) {
          progress.fetch_add(1, std::memory_order_relaxed);
          backoff.reset();
          continue;
        }
        if (chain.finished(chain.internal_channels)) return;
        // An element idle on an external peer (waiting_external) is not a
        // wedge: feed the watchdog so a socket session with a quiet sender
        // outlives watchdog_ms. The element throttles itself (timeout poll
        // inside work()), so this pass isn't a busy spin.
        for (Element* e : chain.elements)
          if (e->waiting_external()) {
            progress.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        backoff.pause();
      }
    } catch (...) {
      errors[c] = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
    }
  };
  // Wrapper so every exit path — finished, aborted, or thrown — retires the
  // worker in `done` (the watchdog loop's termination condition).
  auto run_chain = [&](std::size_t c) {
    chain_loop(c);
    done.fetch_add(1, std::memory_order_release);
  };

  std::vector<std::thread> workers;
  workers.reserve(n_chains);
  for (std::size_t c = 0; c < n_chains; ++c) workers.emplace_back(run_chain, c);

  // The calling thread is the watchdog: some chain must make progress (or
  // retire) at least once per watchdog_ms, or the run is declared wedged
  // and torn down. A graph that is merely slow keeps ticking `progress`;
  // only a true deadlock goes quiet.
  bool watchdog_fired = false;
  if (cfg_.watchdog_ms > 0.0) {
    using clock = std::chrono::steady_clock;
    std::uint64_t last_seen = ~std::uint64_t{0};
    auto last_change = clock::now();
    while (done.load(std::memory_order_acquire) < n_chains) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const std::uint64_t now_progress = progress.load(std::memory_order_relaxed) +
                                         done.load(std::memory_order_relaxed);
      if (now_progress != last_seen) {
        last_seen = now_progress;
        last_change = clock::now();
        continue;
      }
      const double quiet_ms =
          std::chrono::duration<double, std::milli>(clock::now() - last_change).count();
      if (quiet_ms > cfg_.watchdog_ms) {
        watchdog_fired = true;
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
  for (auto& t : workers) t.join();

  for (std::size_t c = 0; c < n_chains; ++c)
    if (errors[c]) std::rethrow_exception(errors[c]);

  if (watchdog_fired && !graph_.finished()) {
    // The pipeline picture of where the graph wedged: every bridge's ring
    // occupancy plus the stub/origin queue states around it.
    std::ostringstream os;
    os << "stream graph made no progress for " << cfg_.watchdog_ms
       << " ms in throughput mode (" << n_chains << " chains, batch " << batch
       << "); ring occupancies:";
    for (const auto& br : bridges)
      os << " [" << br->origin->producer->name() << "->" << br->origin->consumer->name()
         << " chain" << br->producer_chain << "->chain" << br->consumer_chain
         << ": origin " << br->origin->fifo.size() << "/" << br->origin->capacity
         << ", ring " << br->ring.size() << "/" << br->ring.capacity()
         << (br->ring.closed() ? " closed" : "") << ", stub " << br->stub.fifo.size()
         << "/" << br->stub.capacity << "]";
    if (bridges.empty()) os << " (no rings: single chain holds the whole graph)";
    FF_CHECK_MSG(false, os.str());
  }
  FF_CHECK_MSG(graph_.finished(),
               "throughput scheduler exited with undrained channels (scheduler bug)");

  if (cfg_.metrics) {
    cfg_.metrics->set("stream.scheduler.chains", static_cast<double>(n_chains));
    cfg_.metrics->add("stream.ring.transfers",
                      transfers.load(std::memory_order_relaxed));
    // Per-channel peaks as in reference mode, plus per-ring statistics.
    // All of these are scheduling observables: in throughput mode their
    // values depend on thread timing and are excluded from determinism
    // comparisons, like timer values (docs/OBSERVABILITY.md).
    for (const auto& ch : graph_.channels()) {
      const std::string name = "stream." + ch->consumer->name() + ".in" +
                               std::to_string(ch->consumer_port) + ".depth_peak";
      cfg_.metrics->set(name, static_cast<double>(ch->depth_peak));
    }
    for (const auto& br : bridges) {
      const std::string prefix = "stream.ring." + br->origin->consumer->name() + ".in" +
                                 std::to_string(br->origin->consumer_port) + ".";
      cfg_.metrics->set(prefix + "depth_peak", static_cast<double>(br->ring.depth_peak()));
      cfg_.metrics->add(prefix + "push_stalls", br->ring.producer_stalls());
      cfg_.metrics->add(prefix + "pop_stalls", br->ring.consumer_stalls());
    }
  }
  return transfers.load(std::memory_order_relaxed);
}

}  // namespace ff::stream
