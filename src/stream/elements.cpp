#include "stream/elements.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "dsp/resample.hpp"

namespace ff::stream {

// ---------------------------------------------------------------- sources

VectorSource::VectorSource(std::string name, CVec data, std::size_t block_size)
    : Source(std::move(name), block_size), data_(std::move(data)) {
  FF_CHECK_MSG(!data_.empty(), "VectorSource needs a non-empty record");
}

CVec VectorSource::generate() {
  const std::size_t n = std::min(block_size(), data_.size() - offset_);
  CVec out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
           data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

PacketSource::PacketSource(std::string name, PacketSourceConfig cfg, std::size_t block_size)
    : Source(std::move(name), block_size),
      cfg_(cfg),
      tx_(cfg.params),
      rng_(cfg.seed) {
  FF_CHECK_MSG(cfg_.n_packets > 0, "PacketSource needs at least one packet");
  FF_CHECK_MSG(cfg_.payload_bits > 0, "PacketSource needs a non-empty payload");
  FF_CHECK_MSG(cfg_.oversample >= 1, "PacketSource oversample must be >= 1");
}

void PacketSource::stage_next_packet() {
  phy::TxOptions txo;
  txo.mcs_index = cfg_.mcs_index;
  txo.signature_client = cfg_.signature_client;
  std::vector<std::uint8_t> payload(cfg_.payload_bits);
  for (auto& b : payload) b = rng_.bernoulli(0.5) ? 1 : 0;
  staging_ = tx_.modulate(payload, txo);
  if (cfg_.oversample > 1) staging_ = dsp::upsample(staging_, cfg_.oversample);
  staging_.resize(staging_.size() + cfg_.gap_samples, Complex{});
  offset_ = 0;
  ++packets_done_;
}

CVec PacketSource::generate() {
  if (offset_ >= staging_.size()) stage_next_packet();
  const std::size_t n = std::min(block_size(), staging_.size() - offset_);
  CVec out(staging_.begin() + static_cast<std::ptrdiff_t>(offset_),
           staging_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

// -------------------------------------------------------------- transforms

FirElement::FirElement(std::string name, CVec taps)
    : Transform(std::move(name)), fir_(std::move(taps)) {}

void FirElement::process(Block& block) {
  fir_.process_into(block.samples, block.samples);
}

CfoElement::CfoElement(std::string name, double cfo_hz, double sample_rate_hz)
    : Transform(std::move(name)), rot_(cfo_hz, sample_rate_hz) {}

void CfoElement::process(Block& block) {
  rot_.process_into(block.samples, block.samples);
}

PipelineElement::PipelineElement(std::string name, relay::PipelineConfig cfg)
    : Transform(std::move(name)), pipeline_(std::move(cfg)) {}

void PipelineElement::process(Block& block) {
  pipeline_.process_into(block.samples, block.samples);
}

ChannelElement::ChannelElement(std::string name, ChannelElementConfig cfg)
    : Transform(std::move(name)),
      cfg_(std::move(cfg)),
      drift_(cfg_.channel, cfg_.coherence_time_s > 0.0 ? cfg_.coherence_time_s : 1.0),
      fir_(cfg_.channel.empty()
               ? CVec{Complex{}}
               : cfg_.channel.to_fir(cfg_.sample_rate_hz, cfg_.delay_ref_s,
                                     cfg_.sinc_half_width)),
      noise_rng_(Rng(cfg_.seed).fork(fnv1a_64("noise"))),
      drift_rng_(Rng(cfg_.seed).fork(fnv1a_64("drift"))) {
  FF_CHECK_MSG(cfg_.sample_rate_hz > 0.0, "ChannelElement needs a positive sample rate");
  FF_CHECK_MSG(cfg_.noise_power >= 0.0, "ChannelElement noise_power must be >= 0");
  FF_CHECK_MSG(cfg_.coherence_time_s >= 0.0,
               "ChannelElement coherence_time_s must be >= 0");
}

void ChannelElement::process(Block& block) {
  // Segment-wise between retune boundaries: retunes still land at exact
  // stream positions (multiples of the interval) and the noise/drift RNG
  // draws are still consumed in sample order — the FIR consumes no
  // randomness, so filtering a whole segment before drawing its noise uses
  // every draw for the same sample as the per-sample loop did. Within a
  // segment the taps are fixed, so the block FIR path applies (bit-identical
  // to push() at any block size).
  const std::size_t interval = cfg_.retune_interval_samples;
  CMutSpan samples{block.samples.data(), block.samples.size()};
  std::size_t done = 0;
  while (done < samples.size()) {
    if (drifting() && pos_ > 0 && pos_ % interval == 0) {
      const double dt = static_cast<double>(interval) / cfg_.sample_rate_hz;
      drift_.advance(dt, drift_rng_);
      // Drift moves amplitudes, not delays: the FIR length is unchanged and
      // set_taps keeps the delay-line history (no retune transient).
      fir_.set_taps(drift_.now().to_fir(cfg_.sample_rate_hz, cfg_.delay_ref_s,
                                        cfg_.sinc_half_width));
      ++retunes_;
    }
    std::size_t chunk = samples.size() - done;
    if (drifting())
      chunk = std::min<std::size_t>(
          chunk, static_cast<std::size_t>(interval - pos_ % interval));
    CMutSpan seg = samples.subspan(done, chunk);
    fir_.process_into(seg, seg, ws_);
    if (cfg_.noise_power > 0.0)
      for (auto& s : seg) s += noise_rng_.cgaussian(cfg_.noise_power);
    pos_ += chunk;
    done += chunk;
  }
}

FaultElement::FaultElement(std::string name, eval::FaultConfig cfg)
    : Transform(std::move(name)), injector_(cfg) {}

void FaultElement::process(Block& block) { injector_.apply(block.samples); }

GateElement::GateElement(std::string name, ident::PnSignatureDetector detector,
                         std::size_t window)
    : Transform(std::move(name)), detector_(std::move(detector)), window_(window) {
  FF_CHECK_MSG(window_ > 0, "GateElement needs a positive decision window");
  buffer_.reserve(window_);
}

void GateElement::process(Block& block) {
  for (auto& s : block.samples) {
    if (!decided_) {
      buffer_.push_back(s);
      if (buffer_.size() == window_) {
        decision_ = detector_.detect(buffer_);
        pass_ = decision_.has_value();
        decided_ = true;
        buffer_.clear();
        buffer_.shrink_to_fit();
      }
      // Window samples are always forwarded muted — the decision they feed
      // only affects samples after the window.
      s = Complex{};
      continue;
    }
    if (!pass_) s = Complex{};
  }
}

// --------------------------------------------------------------- plumbing

Tee::Tee(std::string name, std::size_t n_outputs) : Element(std::move(name), 1, n_outputs) {
  FF_CHECK_MSG(n_outputs >= 2, "Tee needs at least two outputs (use a wire otherwise)");
}

bool Tee::work() {
  const std::size_t n = n_outputs();
  bool moved = false;
  for (;;) {
    if (!in_available(0)) break;
    bool all_ready = true;
    for (std::size_t p = 0; p < n; ++p) all_ready &= out_ready(p);
    if (!all_ready) {
      note_stall();
      break;
    }
    Block b = pop(0);
    for (std::size_t p = 0; p + 1 < n; ++p) {
      Block copy;
      copy.samples = b.samples;
      copy.start = b.start;
      copy.flags = b.flags;
      emit(p, std::move(copy));
    }
    emit(n - 1, std::move(b));
    moved = true;
  }
  if (in_drained(0)) close_outputs();
  return moved;
}

void Add2::process(Block& a, const Block& b) {
  for (std::size_t i = 0; i < a.samples.size(); ++i) a.samples[i] += b.samples[i];
}

CVec CancellerElement::or_zero_tap(CVec taps) {
  if (taps.empty()) taps.push_back(Complex{});
  return taps;
}

CancellerElement::CancellerElement(std::string name, CVec analog_fir, CVec digital_taps)
    : Combine2(std::move(name)),
      analog_(or_zero_tap(std::move(analog_fir))),
      digital_(or_zero_tap(std::move(digital_taps))) {}

CancellerElement::CancellerElement(std::string name, const fd::CancellationStack& stack)
    : CancellerElement(std::move(name), stack.analog_fir(), stack.digital().taps()) {
  FF_CHECK_MSG(stack.tuned(), "CancellerElement needs a tuned CancellationStack");
  FF_CHECK_MSG(stack.digital().added_delay_samples() == 0,
               "CancellerElement needs a causal digital stage (lookahead 0); "
               "a non-causal canceller buffers future tx and cannot stream");
}

void CancellerElement::cancel_into(CMutSpan rx, CSpan tx) {
  FF_CHECK_MSG(tx.size() == rx.size(),
               "CancellerElement::cancel_into needs tx.size() == rx.size(), got "
                   << tx.size() << " vs " << rx.size());
  const std::size_t n = rx.size();
  if (n == 0) return;
  // Two explicit subtractions, analog first: the batch reference
  // (stack.apply_into) computes (rx - analog) - digital, and matching that
  // association is what makes streaming == batch BIT-identical, not merely
  // close — floating-point subtraction does not re-associate. Both stages
  // run the same dsp::fir_core accumulation order as the batch path; the
  // stateful delay lines make the equivalence hold across block boundaries.
  CMutSpan analog = ws_.get(1, n);
  CMutSpan digital = ws_.get(2, n);
  analog_.process_into(tx, analog, ws_);
  digital_.process_into(tx, digital, ws_);
  for (std::size_t i = 0; i < n; ++i)
    rx[i] = (rx[i] - analog[i]) - digital[i];
}

void CancellerElement::process(Block& rx, const Block& tx) {
  cancel_into(CMutSpan{rx.samples.data(), rx.samples.size()},
              CSpan{tx.samples.data(), tx.samples.size()});
}

// ------------------------------------------------------------------ sinks

AccumulatorSink::AccumulatorSink(std::string name, std::size_t max_blocks_per_work)
    : SinkBase(std::move(name), max_blocks_per_work) {}

void AccumulatorSink::consume(const Block& block) {
  FF_CHECK_MSG(block.start == samples_.size(),
               name() << " received out-of-order block: starts at " << block.start
                      << ", expected " << samples_.size());
  samples_.insert(samples_.end(), block.samples.begin(), block.samples.end());
  ++blocks_seen_;
}

NullSink::NullSink(std::string name, std::size_t max_blocks_per_work)
    : SinkBase(std::move(name), max_blocks_per_work) {}

void NullSink::consume(const Block& block) {
  for (const Complex s : block.samples) power_acc_ += std::norm(s);
  samples_seen_ += block.samples.size();
}

double NullSink::mean_power() const {
  return samples_seen_ == 0 ? 0.0 : power_acc_ / static_cast<double>(samples_seen_);
}

}  // namespace ff::stream
