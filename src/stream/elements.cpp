#include "stream/elements.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/seeding.hpp"
#include "dsp/kernels/kernels.hpp"
#include "dsp/resample.hpp"

namespace ff::stream {

namespace {

/// Split one `left:right` list entry at its first colon (path taps, client
/// registrations). FF_CHECKs the colon is present.
std::pair<std::string, std::string> split_pair(const std::string& context,
                                               const std::string& entry) {
  const auto colon = entry.find(':');
  FF_CHECK_MSG(colon != std::string::npos,
               context << ": expected 'a:b', got '" << entry << "'");
  return {entry.substr(0, colon), entry.substr(colon + 1)};
}

/// The `precision=` key shared by every element with a float32 fast path
/// (Pipeline, Channel, Canceller). Absent = f64; anything other than the
/// two canonical names is a configuration error naming the field.
Precision parse_precision(const Params& p) {
  const std::string v = p.get_string_or("precision", "f64");
  if (v == "f64") return Precision::kF64;
  if (v == "f32") return Precision::kF32;
  FF_CHECK_MSG(false, p.context() << ": precision: must be 'f64' or 'f32', got '"
                                  << v << "'");
  return Precision::kF64;  // unreachable
}

}  // namespace

// ---------------------------------------------------------------- sources

VectorSource::VectorSource(std::string name) : Source(std::move(name), kDefaultBlockSize) {}

VectorSource::VectorSource(std::string name, CVec data, std::size_t block_size)
    : Source(std::move(name), block_size), data_(std::move(data)) {
  FF_CHECK_MSG(!data_.empty(), "VectorSource needs a non-empty record");
}

void VectorSource::configure(const Params& p) {
  FF_CHECK_MSG(produced() == 0, name() << ": configure before streaming");
  data_ = p.get_cvec("data");
  FF_CHECK_MSG(!data_.empty(), p.context() << ": data: needs a non-empty record");
  set_block_size(p.get_size_or("block", block_size()));
}

CVec VectorSource::generate() {
  const std::size_t n = std::min(block_size(), data_.size() - offset_);
  CVec out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
           data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

PacketSource::PacketSource(std::string name)
    : PacketSource(std::move(name), PacketSourceConfig{}, kDefaultBlockSize) {}

PacketSource::PacketSource(std::string name, PacketSourceConfig cfg, std::size_t block_size)
    : Source(std::move(name), block_size),
      cfg_(cfg),
      tx_(cfg.params),
      rng_(cfg.seed) {
  FF_CHECK_MSG(cfg_.n_packets > 0, "PacketSource needs at least one packet");
  FF_CHECK_MSG(cfg_.payload_bits > 0, "PacketSource needs a non-empty payload");
  FF_CHECK_MSG(cfg_.oversample >= 1, "PacketSource oversample must be >= 1");
}

void PacketSource::configure(const Params& p) {
  FF_CHECK_MSG(produced() == 0 && packets_done_ == 0,
               name() << ": configure before streaming");
  PacketSourceConfig cfg;
  cfg.params.fft_size = p.get_size_or("fft_size", cfg.params.fft_size);
  cfg.params.cp_len = p.get_size_or("cp_len", cfg.params.cp_len);
  cfg.params.sample_rate_hz = p.get_double_or("rate", cfg.params.sample_rate_hz);
  cfg.params.carrier_hz = p.get_double_or("carrier", cfg.params.carrier_hz);
  cfg.params.used_half = p.get_size_or("used_half", cfg.params.used_half);
  cfg.mcs_index = p.get_int_or("mcs", cfg.mcs_index);
  cfg.payload_bits = p.get_size_or("payload_bits", cfg.payload_bits);
  cfg.n_packets = p.get_size_or("packets", cfg.n_packets);
  cfg.gap_samples = p.get_size_or("gap", cfg.gap_samples);
  cfg.signature_client =
      static_cast<std::uint32_t>(p.get_u64_or("signature_client", cfg.signature_client));
  cfg.oversample = p.get_size_or("oversample", cfg.oversample);
  cfg.seed = p.get_u64_or("seed", cfg.seed);
  FF_CHECK_MSG(cfg.n_packets > 0, p.context() << ": packets: must be >= 1");
  FF_CHECK_MSG(cfg.payload_bits > 0, p.context() << ": payload_bits: must be >= 1");
  FF_CHECK_MSG(cfg.oversample >= 1, p.context() << ": oversample: must be >= 1");
  cfg_ = cfg;
  tx_ = phy::Transmitter(cfg_.params);
  rng_ = Rng(cfg_.seed);
  set_block_size(p.get_size_or("block", block_size()));
}

void PacketSource::add_handlers(HandlerRegistry& h) {
  Source::add_handlers(h);
  h.add_read("packets_done", [this] { return std::to_string(packets_done_); });
}

void PacketSource::stage_next_packet() {
  phy::TxOptions txo;
  txo.mcs_index = cfg_.mcs_index;
  txo.signature_client = cfg_.signature_client;
  std::vector<std::uint8_t> payload(cfg_.payload_bits);
  for (auto& b : payload) b = rng_.bernoulli(0.5) ? 1 : 0;
  staging_ = tx_.modulate(payload, txo);
  if (cfg_.oversample > 1) staging_ = dsp::upsample(staging_, cfg_.oversample);
  staging_.resize(staging_.size() + cfg_.gap_samples, Complex{});
  offset_ = 0;
  ++packets_done_;
}

CVec PacketSource::generate() {
  if (offset_ >= staging_.size()) stage_next_packet();
  const std::size_t n = std::min(block_size(), staging_.size() - offset_);
  CVec out(staging_.begin() + static_cast<std::ptrdiff_t>(offset_),
           staging_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

// -------------------------------------------------------------- transforms

FirElement::FirElement(std::string name)
    : FirElement(std::move(name), CVec{Complex{1.0, 0.0}}) {}

FirElement::FirElement(std::string name, CVec taps)
    : Transform(std::move(name)), fir_(std::move(taps)) {}

void FirElement::configure(const Params& p) {
  CVec taps = p.get_cvec("taps");
  FF_CHECK_MSG(!taps.empty(), p.context() << ": taps: needs at least one tap");
  // set_taps over the all-zero initial delay line is state-identical to
  // constructing FirFilter(taps) directly — the text path stays bit-exact.
  fir_.set_taps(std::move(taps));
}

void FirElement::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("taps", [this] { return format_cvec(fir_.taps()); });
  h.add_write("set_taps", [this](const std::string& v) {
    CVec taps = parse_cvec_value(name() + ".set_taps", v);
    FF_CHECK_MSG(!taps.empty(), name() << ".set_taps: needs at least one tap");
    fir_.set_taps(std::move(taps));
  });
}

void FirElement::process(Block& block) {
  fir_.process_into(block.samples, block.samples);
}

CfoElement::CfoElement(std::string name) : CfoElement(std::move(name), 0.0, 20e6) {}

CfoElement::CfoElement(std::string name, double cfo_hz, double sample_rate_hz,
                       Precision precision)
    : Transform(std::move(name)), rot_(cfo_hz, sample_rate_hz),
      sample_rate_hz_(sample_rate_hz), precision_(precision) {}

void CfoElement::configure(const Params& p) {
  sample_rate_hz_ = p.get_double_or("rate", sample_rate_hz_);
  FF_CHECK_MSG(sample_rate_hz_ > 0.0, p.context() << ": rate: must be positive");
  // set_cfo at phase 0 is state-identical to constructing the rotator.
  rot_.set_cfo(p.get_double("hz"), sample_rate_hz_);
  precision_ = parse_precision(p);
}

void CfoElement::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("cfo_hz", [this] { return format_double(rot_.cfo_hz()); });
  h.add_read("phase", [this] { return format_double(rot_.phase()); });
  h.add_write("set_cfo", [this](const std::string& v) {
    rot_.set_cfo(parse_double_value(name() + ".set_cfo", v), sample_rate_hz_);
  });
}

void CfoElement::process(Block& block) {
  if (precision_ == Precision::kF32) {
    // Convert once at the edges, rotate in f32 (slot 0 is the rotator's
    // phasor table, slot 1 the sample buffer).
    CMutSpan samples{block.samples.data(), block.samples.size()};
    CMutSpan32 s32 = ws_.get_f32(1, samples.size());
    dsp::kernels::narrow(samples, s32);
    rot_.process_into(s32, s32, ws_);
    dsp::kernels::widen(s32, samples);
  } else {
    rot_.process_into(block.samples, block.samples);
  }
}

PipelineElement::PipelineElement(std::string name)
    : PipelineElement(std::move(name), relay::PipelineConfig{}) {}

PipelineElement::PipelineElement(std::string name, relay::PipelineConfig cfg)
    : Transform(std::move(name)), pipeline_(std::move(cfg)) {}

void PipelineElement::configure(const Params& p) {
  relay::PipelineConfig cfg;
  cfg.sample_rate_hz = p.get_double_or("rate", cfg.sample_rate_hz);
  cfg.adc_dac_delay_samples = p.get_size_or("adc_dac_delay", cfg.adc_dac_delay_samples);
  cfg.extra_buffer_samples = p.get_size_or("extra_buffer", cfg.extra_buffer_samples);
  cfg.cfo_hz = p.get_double_or("cfo_hz", cfg.cfo_hz);
  cfg.restore_cfo = p.get_bool_or("restore_cfo", cfg.restore_cfo);
  cfg.prefilter = p.get_cvec_or("prefilter", cfg.prefilter);
  FF_CHECK_MSG(!cfg.prefilter.empty(), p.context() << ": prefilter: needs >= 1 tap");
  cfg.analog_rotation = p.get_complex_or("analog_rotation", cfg.analog_rotation);
  cfg.gain_db = p.get_double_or("gain_db", cfg.gain_db);
  cfg.tx_filter = p.get_cvec_or("tx_filter", cfg.tx_filter);
  cfg.scrub_nonfinite = p.get_bool_or("scrub_nonfinite", cfg.scrub_nonfinite);
  cfg.precision = parse_precision(p);
  pipeline_ = relay::ForwardPipeline(std::move(cfg));
}

void PipelineElement::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("scrubbed",
             [this] { return std::to_string(pipeline_.scrubbed_samples()); });
  h.add_read("max_delay_s", [this] { return format_double(pipeline_.max_delay_s()); });
}

void PipelineElement::on_metrics(MetricsRegistry* metrics) {
  pipeline_.set_metrics(metrics);
}

void PipelineElement::process(Block& block) {
  pipeline_.process_into(block.samples, block.samples);
}

ChannelElement::ChannelElement(std::string name)
    : ChannelElement(std::move(name), ChannelElementConfig{}) {}

void ChannelElement::configure(const Params& p) {
  FF_CHECK_MSG(pos_ == 0, name() << ": configure before streaming");
  ChannelElementConfig cfg;
  std::vector<channel::PathTap> taps;
  if (p.has("paths")) {
    const std::string ctx = p.context() + ": paths";
    for (const std::string& entry : split_list_value(ctx, p.get_string("paths"))) {
      const auto [delay, amp] = split_pair(ctx, entry);
      taps.push_back(channel::PathTap{parse_double_value(ctx, delay),
                                      parse_complex_value(ctx, amp)});
    }
  }
  const double fc = p.get_double_or("fc", 2.45e9);
  cfg.channel = channel::MultipathChannel(std::move(taps), fc);
  cfg.sample_rate_hz = p.get_double_or("rate", cfg.sample_rate_hz);
  cfg.delay_ref_s = p.get_double_or("delay_ref", cfg.delay_ref_s);
  cfg.sinc_half_width = p.get_size_or("sinc_half_width", cfg.sinc_half_width);
  cfg.noise_power = p.get_double_or("noise", cfg.noise_power);
  cfg.coherence_time_s = p.get_double_or("coherence", cfg.coherence_time_s);
  cfg.retune_interval_samples = p.get_size_or("retune_interval", cfg.retune_interval_samples);
  cfg.seed = p.get_u64_or("seed", cfg.seed);
  cfg.precision = parse_precision(p);
  FF_CHECK_MSG(cfg.sample_rate_hz > 0.0, p.context() << ": rate: must be positive");
  FF_CHECK_MSG(cfg.noise_power >= 0.0, p.context() << ": noise: must be >= 0");
  FF_CHECK_MSG(cfg.coherence_time_s >= 0.0, p.context() << ": coherence: must be >= 0");
  cfg_ = std::move(cfg);
  drift_ = net::DriftingChannel(cfg_.channel,
                                cfg_.coherence_time_s > 0.0 ? cfg_.coherence_time_s : 1.0);
  fir_ = dsp::FirFilter(cfg_.channel.empty()
                            ? CVec{Complex{}}
                            : cfg_.channel.to_fir(cfg_.sample_rate_hz, cfg_.delay_ref_s,
                                                  cfg_.sinc_half_width));
  fir32_ = dsp::FirFilter32(dsp::kernels::narrowed(fir_.taps()));
  noise_rng_ = seeding::named_stream(cfg_.seed, "noise");
  drift_rng_ = seeding::named_stream(cfg_.seed, "drift");
  retunes_ = 0;
}

void ChannelElement::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("retunes", [this] { return std::to_string(retunes_); });
  // Manual retune: advance the drift process by dt seconds and
  // re-discretize (history-preserving). The scheduled retune_interval
  // machinery is unaffected; this is the hook for externally-driven
  // channel swaps while the stream runs.
  h.add_write("retune", [this](const std::string& v) {
    const double dt = parse_double_value(name() + ".retune", v);
    FF_CHECK_MSG(dt > 0.0, name() << ".retune: dt must be positive seconds");
    FF_CHECK_MSG(cfg_.coherence_time_s > 0.0,
                 name() << ".retune: needs a drifting channel (coherence > 0)");
    drift_.advance(dt, drift_rng_);
    CVec taps = drift_.now().to_fir(cfg_.sample_rate_hz, cfg_.delay_ref_s,
                                    cfg_.sinc_half_width);
    fir32_.set_taps(dsp::kernels::narrowed(taps));
    fir_.set_taps(std::move(taps));
    ++retunes_;
  });
}

ChannelElement::ChannelElement(std::string name, ChannelElementConfig cfg)
    : Transform(std::move(name)),
      cfg_(std::move(cfg)),
      drift_(cfg_.channel, cfg_.coherence_time_s > 0.0 ? cfg_.coherence_time_s : 1.0),
      fir_(cfg_.channel.empty()
               ? CVec{Complex{}}
               : cfg_.channel.to_fir(cfg_.sample_rate_hz, cfg_.delay_ref_s,
                                     cfg_.sinc_half_width)),
      fir32_(dsp::kernels::narrowed(fir_.taps())),
      noise_rng_(seeding::named_stream(cfg_.seed, "noise")),
      drift_rng_(seeding::named_stream(cfg_.seed, "drift")) {
  FF_CHECK_MSG(cfg_.sample_rate_hz > 0.0, "ChannelElement needs a positive sample rate");
  FF_CHECK_MSG(cfg_.noise_power >= 0.0, "ChannelElement noise_power must be >= 0");
  FF_CHECK_MSG(cfg_.coherence_time_s >= 0.0,
               "ChannelElement coherence_time_s must be >= 0");
}

void ChannelElement::process(Block& block) {
  // Segment-wise between retune boundaries: retunes still land at exact
  // stream positions (multiples of the interval) and the noise/drift RNG
  // draws are still consumed in sample order — the FIR consumes no
  // randomness, so filtering a whole segment before drawing its noise uses
  // every draw for the same sample as the per-sample loop did. Within a
  // segment the taps are fixed, so the block FIR path applies (bit-identical
  // to push() at any block size).
  const std::size_t interval = cfg_.retune_interval_samples;
  CMutSpan samples{block.samples.data(), block.samples.size()};
  std::size_t done = 0;
  while (done < samples.size()) {
    if (drifting() && pos_ > 0 && pos_ % interval == 0) {
      const double dt = static_cast<double>(interval) / cfg_.sample_rate_hz;
      drift_.advance(dt, drift_rng_);
      // Drift moves amplitudes, not delays: the FIR length is unchanged and
      // set_taps keeps the delay-line history (no retune transient). Both
      // precision twins retune together so a precision switch mid-design
      // never sees stale taps.
      CVec taps = drift_.now().to_fir(cfg_.sample_rate_hz, cfg_.delay_ref_s,
                                      cfg_.sinc_half_width);
      fir32_.set_taps(dsp::kernels::narrowed(taps));
      fir_.set_taps(std::move(taps));
      ++retunes_;
    }
    std::size_t chunk = samples.size() - done;
    if (drifting())
      chunk = std::min<std::size_t>(
          chunk, static_cast<std::size_t>(interval - pos_ % interval));
    CMutSpan seg = samples.subspan(done, chunk);
    if (cfg_.precision == Precision::kF32) {
      // Narrow once, stay f32 through the FIR and the noise add. The noise
      // comes from Rng::cgaussian32 — the float32 family's own draw
      // sequence (same named engine stream, float polar method, several
      // times cheaper than the double draws): a float32 channel pays
      // float32 prices for its noise, and the f32 checksum family pins the
      // result. Draws are still consumed per-sample in stream order, so
      // the f32 stream is invariant to blocking for the same reason kF64 is.
      CMutSpan32 seg32 = ws_.get_f32(1, chunk);  // f32 slot 0 = FIR scratch
      dsp::kernels::narrow(seg, seg32);
      fir32_.process_into(seg32, seg32, ws_);
      if (cfg_.noise_power > 0.0) {
        const float np = static_cast<float>(cfg_.noise_power);
        for (auto& s : seg32) s += noise_rng_.cgaussian32(np);
      }
      dsp::kernels::widen(seg32, seg);
    } else {
      fir_.process_into(seg, seg, ws_);
      if (cfg_.noise_power > 0.0)
        for (auto& s : seg) s += noise_rng_.cgaussian(cfg_.noise_power);
    }
    pos_ += chunk;
    done += chunk;
  }
}

FaultElement::FaultElement(std::string name)
    : FaultElement(std::move(name), eval::FaultConfig{}) {}

FaultElement::FaultElement(std::string name, eval::FaultConfig cfg)
    : Transform(std::move(name)), injector_(cfg) {}

void FaultElement::configure(const Params& p) {
  FF_CHECK_MSG(injector_.samples_seen() == 0, name() << ": configure before streaming");
  eval::FaultConfig cfg;
  cfg.sample_drop_rate = p.get_double_or("drop", cfg.sample_drop_rate);
  cfg.sample_corrupt_rate = p.get_double_or("corrupt", cfg.sample_corrupt_rate);
  cfg.sample_nan_rate = p.get_double_or("nan", cfg.sample_nan_rate);
  cfg.corrupt_amplitude = p.get_double_or("corrupt_amplitude", cfg.corrupt_amplitude);
  cfg.estimate_sigma = p.get_double_or("estimate_sigma", cfg.estimate_sigma);
  cfg.sounding_failure_rate = p.get_double_or("sounding_failure", cfg.sounding_failure_rate);
  cfg.seed = p.get_u64_or("seed", cfg.seed);
  // FaultInjector's constructor validates every rate/amplitude, so a bad
  // value fails here with the field named by the Params context.
  injector_ = eval::FaultInjector(cfg);
}

void FaultElement::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("samples_seen", [this] { return std::to_string(injector_.samples_seen()); });
  h.add_read("dropped", [this] { return std::to_string(injector_.samples_dropped()); });
  h.add_read("corrupted", [this] { return std::to_string(injector_.samples_corrupted()); });
  h.add_read("poisoned", [this] { return std::to_string(injector_.samples_poisoned()); });
}

void FaultElement::process(Block& block) { injector_.apply(block.samples); }

GateElement::GateElement(std::string name)
    : Transform(std::move(name)), detector_(), window_(1) {}

GateElement::GateElement(std::string name, ident::PnSignatureDetector detector,
                         std::size_t window)
    : Transform(std::move(name)), detector_(std::move(detector)), window_(window) {
  FF_CHECK_MSG(window_ > 0, "GateElement needs a positive decision window");
  buffer_.reserve(window_);
}

void GateElement::configure(const Params& p) {
  FF_CHECK_MSG(!decided_ && buffer_.empty(), name() << ": configure before streaming");
  window_ = p.get_size("window");
  FF_CHECK_MSG(window_ > 0, p.context() << ": window: must be >= 1");
  const double threshold = p.get_double_or("threshold", 0.6);
  FF_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
               p.context() << ": threshold: must be in (0, 1], got " << threshold);
  detector_ = ident::PnSignatureDetector(threshold);
  const std::string ctx = p.context() + ": clients";
  const auto entries = split_list_value(ctx, p.get_string("clients"));
  FF_CHECK_MSG(!entries.empty(), ctx << ": needs at least one id:len registration");
  for (const std::string& entry : entries) {
    const auto [id, len] = split_pair(ctx, entry);
    const std::uint64_t client = parse_u64_value(ctx, id);
    const std::uint64_t sig_len = parse_u64_value(ctx, len);
    FF_CHECK_MSG(sig_len >= 1, ctx << ": signature length must be >= 1");
    detector_.register_client(static_cast<std::uint32_t>(client),
                              static_cast<std::size_t>(sig_len));
  }
  buffer_.reserve(window_);
}

void GateElement::add_handlers(HandlerRegistry& h) {
  Transform::add_handlers(h);
  h.add_read("decided", [this] { return decided_ ? std::string("true") : std::string("false"); });
  h.add_read("client", [this] {
    return decision_ ? std::to_string(decision_->client) : std::string("none");
  });
  // Force the gate decision (true = pass, false = mute), overriding
  // detection — the operator's override for a stuck or misdetected gate.
  h.add_write("set_open", [this](const std::string& v) {
    pass_ = parse_bool_value(name() + ".set_open", v);
    decided_ = true;
    buffer_.clear();
    buffer_.shrink_to_fit();
  });
}

void GateElement::process(Block& block) {
  for (auto& s : block.samples) {
    if (!decided_) {
      buffer_.push_back(s);
      if (buffer_.size() == window_) {
        decision_ = detector_.detect(buffer_);
        pass_ = decision_.has_value();
        decided_ = true;
        buffer_.clear();
        buffer_.shrink_to_fit();
      }
      // Window samples are always forwarded muted — the decision they feed
      // only affects samples after the window.
      s = Complex{};
      continue;
    }
    if (!pass_) s = Complex{};
  }
}

// --------------------------------------------------------------- plumbing

Tee::Tee(std::string name) : Tee(std::move(name), 2) {}

Tee::Tee(std::string name, std::size_t n_outputs) : Element(std::move(name), 1, n_outputs) {
  FF_CHECK_MSG(n_outputs >= 2, "Tee needs at least two outputs (use a wire otherwise)");
}

void Tee::configure(const Params& p) {
  const std::size_t outputs = p.get_size_or("outputs", n_outputs());
  FF_CHECK_MSG(outputs >= 2, p.context() << ": outputs: must be >= 2");
  set_port_counts(1, outputs);
}

bool Tee::work() {
  const std::size_t n = n_outputs();
  bool moved = false;
  for (;;) {
    if (!in_available(0)) break;
    bool all_ready = true;
    for (std::size_t p = 0; p < n; ++p) all_ready &= out_ready(p);
    if (!all_ready) {
      note_stall();
      break;
    }
    Block b = pop(0);
    for (std::size_t p = 0; p + 1 < n; ++p) {
      Block copy;
      copy.samples = b.samples;
      copy.start = b.start;
      copy.flags = b.flags;
      emit(p, std::move(copy));
    }
    emit(n - 1, std::move(b));
    moved = true;
  }
  if (in_drained(0)) close_outputs();
  return moved;
}

void Add2::process(Block& a, const Block& b) {
  for (std::size_t i = 0; i < a.samples.size(); ++i) a.samples[i] += b.samples[i];
}

CVec CancellerElement::or_zero_tap(CVec taps) {
  if (taps.empty()) taps.push_back(Complex{});
  return taps;
}

CancellerElement::CancellerElement(std::string name)
    : CancellerElement(std::move(name), CVec{}, CVec{}) {}

CancellerElement::CancellerElement(std::string name, CVec analog_fir, CVec digital_taps)
    : Combine2(std::move(name)),
      analog_(or_zero_tap(std::move(analog_fir))),
      digital_(or_zero_tap(std::move(digital_taps))),
      analog32_(dsp::kernels::narrowed(analog_.taps())),
      digital32_(dsp::kernels::narrowed(digital_.taps())) {}

void CancellerElement::set_analog(CVec taps) {
  analog32_.set_taps(dsp::kernels::narrowed(taps));
  analog_.set_taps(std::move(taps));
}

void CancellerElement::set_digital(CVec taps) {
  digital32_.set_taps(dsp::kernels::narrowed(taps));
  digital_.set_taps(std::move(taps));
}

void CancellerElement::configure(const Params& p) {
  set_analog(or_zero_tap(p.get_cvec_or("analog", CVec{})));
  set_digital(or_zero_tap(p.get_cvec_or("digital", CVec{})));
  precision_ = parse_precision(p);
}

void CancellerElement::add_handlers(HandlerRegistry& h) {
  Combine2::add_handlers(h);
  h.add_read("analog_taps", [this] { return format_cvec(analog_.taps()); });
  h.add_read("digital_taps", [this] { return format_cvec(digital_.taps()); });
  h.add_write("set_analog_taps", [this](const std::string& v) {
    set_analog(or_zero_tap(parse_cvec_value(name() + ".set_analog_taps", v)));
  });
  h.add_write("set_digital_taps", [this](const std::string& v) {
    set_digital(or_zero_tap(parse_cvec_value(name() + ".set_digital_taps", v)));
  });
}

CancellerElement::CancellerElement(std::string name, const fd::CancellationStack& stack)
    : CancellerElement(std::move(name), stack.analog_fir(), stack.digital().taps()) {
  FF_CHECK_MSG(stack.tuned(), "CancellerElement needs a tuned CancellationStack");
  FF_CHECK_MSG(stack.digital().added_delay_samples() == 0,
               "CancellerElement needs a causal digital stage (lookahead 0); "
               "a non-causal canceller buffers future tx and cannot stream");
}

void CancellerElement::cancel_into(CMutSpan rx, CSpan tx) {
  FF_CHECK_MSG(tx.size() == rx.size(),
               "CancellerElement::cancel_into needs tx.size() == rx.size(), got "
                   << tx.size() << " vs " << rx.size());
  const std::size_t n = rx.size();
  if (n == 0) return;
  if (precision_ == Precision::kF32) {
    // Same association as below, restated in f32: narrow both streams once,
    // run both stages and the two subtractions on the float32 kernels, widen
    // the residual once. f32 slot 0 is FirFilter32 scratch; 1..4 hold the
    // block-lifetime buffers.
    CMutSpan32 rx32 = ws_.get_f32(1, n);
    CMutSpan32 tx32 = ws_.get_f32(2, n);
    CMutSpan32 analog = ws_.get_f32(3, n);
    CMutSpan32 digital = ws_.get_f32(4, n);
    dsp::kernels::narrow(rx, rx32);
    dsp::kernels::narrow(tx, tx32);
    analog32_.process_into(tx32, analog, ws_);
    digital32_.process_into(tx32, digital, ws_);
    for (std::size_t i = 0; i < n; ++i)
      rx32[i] = (rx32[i] - analog[i]) - digital[i];
    dsp::kernels::widen(rx32, rx);
    return;
  }
  // Two explicit subtractions, analog first: the batch reference
  // (stack.apply_into) computes (rx - analog) - digital, and matching that
  // association is what makes streaming == batch BIT-identical, not merely
  // close — floating-point subtraction does not re-associate. Both stages
  // run the same dsp::fir_core accumulation order as the batch path; the
  // stateful delay lines make the equivalence hold across block boundaries.
  CMutSpan analog = ws_.get(1, n);
  CMutSpan digital = ws_.get(2, n);
  analog_.process_into(tx, analog, ws_);
  digital_.process_into(tx, digital, ws_);
  for (std::size_t i = 0; i < n; ++i)
    rx[i] = (rx[i] - analog[i]) - digital[i];
}

void CancellerElement::process(Block& rx, const Block& tx) {
  cancel_into(CMutSpan{rx.samples.data(), rx.samples.size()},
              CSpan{tx.samples.data(), tx.samples.size()});
}

// ------------------------------------------------------------------ sinks

AccumulatorSink::AccumulatorSink(std::string name, std::size_t max_blocks_per_work)
    : SinkBase(std::move(name), max_blocks_per_work) {}

void AccumulatorSink::configure(const Params& p) {
  set_max_blocks_per_work(p.get_size_or("max_blocks_per_work", 0));
}

void AccumulatorSink::add_handlers(HandlerRegistry& h) {
  SinkBase::add_handlers(h);
  h.add_read("samples", [this] { return std::to_string(samples_.size()); });
  h.add_read("blocks", [this] { return std::to_string(blocks_seen_); });
}

void AccumulatorSink::consume(const Block& block) {
  FF_CHECK_MSG(block.start == samples_.size(),
               name() << " received out-of-order block: starts at " << block.start
                      << ", expected " << samples_.size());
  samples_.insert(samples_.end(), block.samples.begin(), block.samples.end());
  ++blocks_seen_;
}

NullSink::NullSink(std::string name, std::size_t max_blocks_per_work)
    : SinkBase(std::move(name), max_blocks_per_work) {}

void NullSink::configure(const Params& p) {
  set_max_blocks_per_work(p.get_size_or("max_blocks_per_work", 0));
}

void NullSink::add_handlers(HandlerRegistry& h) {
  SinkBase::add_handlers(h);
  h.add_read("samples_seen", [this] { return std::to_string(samples_seen_); });
  h.add_read("mean_power", [this] { return format_double(mean_power()); });
}

void NullSink::consume(const Block& block) {
  for (const Complex s : block.samples) power_acc_ += std::norm(s);
  samples_seen_ += block.samples.size();
}

double NullSink::mean_power() const {
  return samples_seen_ == 0 ? 0.0 : power_acc_ / static_cast<double>(samples_seen_);
}

}  // namespace ff::stream
