#include "stream/handlers.hpp"

#include "common/check.hpp"

namespace ff::stream {

Handler& HandlerRegistry::at_or_new(const std::string& name) {
  for (Handler& h : handlers_)
    if (h.name == name) return h;
  handlers_.push_back(Handler{name, {}, {}});
  return handlers_.back();
}

void HandlerRegistry::add_read(const std::string& name, std::function<std::string()> fn) {
  FF_CHECK_MSG(!name.empty() && fn, "read handler needs a name and a function");
  Handler& h = at_or_new(name);
  FF_CHECK_MSG(!h.readable(), "read handler '" << name << "' registered twice");
  h.read = std::move(fn);
}

void HandlerRegistry::add_write(const std::string& name,
                                std::function<void(const std::string&)> fn) {
  FF_CHECK_MSG(!name.empty() && fn, "write handler needs a name and a function");
  Handler& h = at_or_new(name);
  FF_CHECK_MSG(!h.writable(), "write handler '" << name << "' registered twice");
  h.write = std::move(fn);
}

const Handler* HandlerRegistry::find(const std::string& name) const {
  for (const Handler& h : handlers_)
    if (h.name == name) return &h;
  return nullptr;
}

}  // namespace ff::stream
