#include "stream/element.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ff::stream {

Element::Element(std::string name, std::size_t n_inputs, std::size_t n_outputs)
    : name_(std::move(name)), inputs_(n_inputs, nullptr), outputs_(n_outputs, nullptr) {
  FF_CHECK_MSG(!name_.empty(), "stream elements need a non-empty name");
}

void Element::add_handlers(HandlerRegistry& handlers) {
  handlers.add_read("class", [this] { return std::string(class_name()); });
  handlers.add_read("stalls", [this] { return std::to_string(stalls()); });
}

const HandlerRegistry& Element::handlers() {
  if (!handlers_built_) {
    add_handlers(handler_registry_);
    handlers_built_ = true;
  }
  return handler_registry_;
}

std::string Element::call_read(const std::string& handler) {
  const Handler* h = handlers().find(handler);
  FF_CHECK_MSG(h != nullptr, name_ << " (" << class_name() << ") has no handler '"
                                   << handler << "'");
  FF_CHECK_MSG(h->readable(), name_ << "." << handler << " is not readable");
  return h->read();
}

void Element::call_write(const std::string& handler, const std::string& value) {
  const Handler* h = handlers().find(handler);
  FF_CHECK_MSG(h != nullptr, name_ << " (" << class_name() << ") has no handler '"
                                   << handler << "'");
  FF_CHECK_MSG(h->writable(), name_ << "." << handler << " is not writable");
  h->write(value);
}

void Element::write_at(std::uint64_t pos, const std::string& handler,
                       const std::string& value) {
  FF_CHECK_MSG(supports_positioned_writes(),
               name_ << " (" << class_name()
                     << ") does not support positioned writes; use call_write at "
                        "a quiescent point instead");
  const Handler* h = handlers().find(handler);
  FF_CHECK_MSG(h != nullptr && h->writable(),
               name_ << " has no write handler '" << handler << "'");
  // Sorted by position, FIFO among equal positions (stable insertion).
  auto it = std::upper_bound(
      writes_.begin(), writes_.end(), pos,
      [](std::uint64_t p, const PendingWrite& w) { return p < w.pos; });
  writes_.insert(it, PendingWrite{pos, handler, value});
}

void Element::set_port_counts(std::size_t n_inputs, std::size_t n_outputs) {
  for (const Channel* ch : inputs_)
    FF_CHECK_MSG(ch == nullptr, name_ << ": port counts can only change before wiring");
  for (const Channel* ch : outputs_)
    FF_CHECK_MSG(ch == nullptr, name_ << ": port counts can only change before wiring");
  inputs_.assign(n_inputs, nullptr);
  outputs_.assign(n_outputs, nullptr);
}

Block Element::pop(std::size_t port) {
  Channel& ch = *inputs_[port];
  FF_CHECK_MSG(!ch.fifo.empty(), "pop on empty input " << port << " of " << name_);
  Block b = std::move(ch.fifo.front());
  ch.fifo.pop_front();
  return b;
}

void Element::emit(std::size_t port, Block&& block) {
  Channel& ch = *outputs_[port];
  FF_CHECK_MSG(!ch.closed, name_ << " emitted on closed output " << port);
  FF_CHECK_MSG(!ch.full(), name_ << " emitted on full output " << port
                                 << " (missing out_ready check)");
  if (metrics_) {
    metrics_->add(m_blocks_);
    metrics_->add(m_samples_, block.samples.size());
  }
  ch.fifo.push_back(std::move(block));
  ++ch.blocks_total;
  if (ch.fifo.size() > ch.depth_peak) ch.depth_peak = ch.fifo.size();
}

void Element::close_outputs() {
  for (Channel* ch : outputs_) ch->closed = true;
}

bool Element::outputs_closed() const {
  for (const Channel* ch : outputs_)
    if (!ch->closed) return false;
  return true;
}

void Element::note_stall() {
  ++stalls_;
  if (metrics_) metrics_->add(m_stalls_);
}

void Element::note_consumed(const Block& block) {
  if (!metrics_) return;
  metrics_->add(m_blocks_);
  metrics_->add(m_samples_, block.samples.size());
}

void Element::attach_input(std::size_t port, Channel* ch) {
  FF_CHECK_MSG(port < inputs_.size(),
               name_ << " has no input port " << port << " (" << inputs_.size() << " ports)");
  FF_CHECK_MSG(inputs_[port] == nullptr,
               "input " << port << " of " << name_ << " is already connected");
  inputs_[port] = ch;
}

void Element::attach_output(std::size_t port, Channel* ch) {
  FF_CHECK_MSG(port < outputs_.size(),
               name_ << " has no output port " << port << " (" << outputs_.size() << " ports)");
  FF_CHECK_MSG(outputs_[port] == nullptr,
               "output " << port << " of " << name_ << " is already connected");
  outputs_[port] = ch;
}

void Element::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_) {
    const std::string prefix = "stream." + name_ + ".";
    m_blocks_ = prefix + "blocks";
    m_samples_ = prefix + "samples";
    m_block_us_ = prefix + "block_us";
    m_stalls_ = prefix + "stalls";
  }
  on_metrics(metrics);
}

// ------------------------------------------------------------------ Source

Source::Source(std::string name, std::size_t block_size)
    : Element(std::move(name), 0, 1), block_size_(block_size) {
  FF_CHECK_MSG(block_size_ > 0, "Source block_size must be >= 1");
}

void Source::add_handlers(HandlerRegistry& handlers) {
  Element::add_handlers(handlers);
  handlers.add_read("produced", [this] { return std::to_string(produced()); });
}

void Source::set_block_size(std::size_t block_size) {
  FF_CHECK_MSG(block_size > 0, name() << ": block size must be >= 1");
  FF_CHECK_MSG(pos_ == 0, name() << ": block size can only change before streaming");
  block_size_ = block_size;
}

bool Source::work() {
  bool moved = false;
  while (!exhausted() && out_ready(0)) {
    Block b;
    {
      MetricsRegistry::ScopedTimer timer(metrics(), block_timer_name());
      b.samples = generate();
    }
    FF_CHECK_MSG(!b.samples.empty(), name() << "::generate returned no samples");
    FF_CHECK_MSG(b.samples.size() <= block_size_,
                 name() << "::generate overflowed the block size");
    b.start = pos_;
    if (pos_ == 0) b.flags |= kBlockFirst;
    pos_ += b.samples.size();
    if (exhausted()) b.flags |= kBlockLast;
    emit(0, std::move(b));
    moved = true;
  }
  if (!exhausted() && !out_ready(0)) note_stall();
  if (exhausted()) close_outputs();
  return moved;
}

// --------------------------------------------------------------- Transform

void Transform::process_with_writes(Block& block) {
  if (writes_.empty()) {
    process(block);
    return;
  }
  const std::size_t n = block.samples.size();
  std::size_t off = 0;
  while (off < n) {
    // Fire every write due at (or before — late-scheduled positions apply
    // at the next boundary) the current sample position.
    while (!writes_.empty() && writes_.front().pos <= block.start + off) {
      const PendingWrite w = std::move(writes_.front());
      writes_.erase(writes_.begin());
      call_write(w.handler, w.value);
    }
    std::size_t chunk = n - off;
    if (!writes_.empty() && writes_.front().pos < block.start + n)
      chunk = std::min<std::size_t>(
          chunk, static_cast<std::size_t>(writes_.front().pos - (block.start + off)));
    if (off == 0 && chunk == n) {
      // No position falls inside this block: whole-block fast path.
      process(block);
      return;
    }
    // Process the sub-block [off, off+chunk) as its own Block. The wrapped
    // kernels are stateful and length-preserving, so piecewise == whole
    // bit-for-bit, and copying back keeps downstream block structure
    // unchanged (combiners require block-aligned inputs).
    Block piece;
    piece.samples.assign(
        block.samples.begin() + static_cast<std::ptrdiff_t>(off),
        block.samples.begin() + static_cast<std::ptrdiff_t>(off + chunk));
    piece.start = block.start + off;
    process(piece);
    FF_CHECK_MSG(piece.samples.size() == chunk,
                 name() << ": positioned writes need a length-preserving process()");
    std::copy(piece.samples.begin(), piece.samples.end(),
              block.samples.begin() + static_cast<std::ptrdiff_t>(off));
    off += chunk;
  }
}

bool Transform::work() {
  bool moved = false;
  while (in_available(0) && out_ready(0)) {
    Block b = pop(0);
    {
      MetricsRegistry::ScopedTimer timer(metrics(), block_timer_name());
      process_with_writes(b);
    }
    emit(0, std::move(b));
    moved = true;
  }
  if (in_available(0) && !out_ready(0)) note_stall();
  if (in_drained(0)) close_outputs();
  return moved;
}

bool Transform::work_batch(std::size_t max_blocks) {
  // Pending positioned writes force the per-block path: a write position
  // must be able to split the exact block containing it.
  if (max_blocks <= 1 || !writes_.empty()) return work();
  bool moved = false;
  for (;;) {
    std::size_t n = in_count(0);
    const std::size_t space = out_space(0);
    if (n > max_blocks) n = max_blocks;
    if (n > space) n = space;  // never pop what cannot be re-emitted
    if (n == 0) break;
    batch_.clear();
    for (std::size_t i = 0; i < n; ++i) batch_.push_back(pop(0));
    {
      MetricsRegistry::ScopedTimer timer(metrics(), block_timer_name());
      process_batch(std::span<Block>(batch_));
    }
    for (Block& b : batch_) emit(0, std::move(b));
    moved = true;
  }
  if (in_available(0) && !out_ready(0)) note_stall();
  if (in_drained(0)) close_outputs();
  return moved;
}

// ---------------------------------------------------------------- Combine2

bool Combine2::work() {
  bool moved = false;
  while (in_available(0) && in_available(1) && out_ready(0)) {
    Block a = pop(0);
    const Block b = pop(1);
    FF_CHECK_MSG(a.start == b.start && a.samples.size() == b.samples.size(),
                 name() << ": misaligned input streams (block [" << a.start << ", "
                        << a.end() << ") vs [" << b.start << ", " << b.end()
                        << ")); combiners need block-aligned inputs");
    {
      MetricsRegistry::ScopedTimer timer(metrics(), block_timer_name());
      process(a, b);
    }
    a.flags |= b.flags;
    emit(0, std::move(a));
    moved = true;
  }
  if (in_available(0) && in_available(1) && !out_ready(0)) note_stall();
  if (in_drained(0) && in_drained(1)) close_outputs();
  // One side closed while the other still has samples queued or coming is a
  // misaligned graph; fail crisply instead of hanging the scheduler.
  FF_CHECK_MSG(!(in_drained(0) && in_available(1)) && !(in_drained(1) && in_available(0)),
               name() << ": one input stream ended before the other");
  return moved;
}

// ---------------------------------------------------------------- SinkBase

SinkBase::SinkBase(std::string name, std::size_t max_blocks_per_work)
    : Element(std::move(name), 1, 0), max_blocks_per_work_(max_blocks_per_work) {}

bool SinkBase::work() {
  bool moved = false;
  std::size_t taken = 0;
  while (in_available(0) &&
         (max_blocks_per_work_ == 0 || taken < max_blocks_per_work_)) {
    const Block b = pop(0);
    {
      MetricsRegistry::ScopedTimer timer(metrics(), block_timer_name());
      consume(b);
    }
    note_consumed(b);
    ++taken;
    moved = true;
  }
  return moved;
}

}  // namespace ff::stream
