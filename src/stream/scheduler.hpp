// Deterministic round-robin scheduler for element graphs.
//
// Execution proceeds in rounds. Within a round every level of the graph is
// visited in topological order and each element gets one work()
// opportunity; within one level the elements share no state (graph.hpp), so
// with threads > 1 a level runs under common/parallel's worker pool. The
// round/level structure — and therefore every element's state trajectory —
// is a function of the graph alone, so output streams and stream.* metric
// values are bit-identical at any thread count. The run ends when every
// channel is closed and drained; a round that moves nothing earlier than
// that is a stuck graph and fails crisply.
//
// Telemetry (when a registry is injected): per-element block/sample
// counters and per-block latency timers recorded by the elements
// themselves, per-channel peak-occupancy gauges
// (stream.<consumer>.in<port>.depth_peak), stall counters, and
// stream.scheduler.rounds. Never record thread counts — reports must stay
// byte-comparable across them (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>

#include "stream/graph.hpp"

namespace ff::stream {

struct SchedulerConfig {
  /// Worker threads for level execution. 1 = fully serial; 0 = the
  /// common/parallel default (FF_THREADS / hardware concurrency).
  std::size_t threads = 1;
  /// Optional telemetry sink, installed on every element for the run.
  MetricsRegistry* metrics = nullptr;
  /// Safety valve for misconfigured (e.g. unbounded-source) graphs:
  /// abort after this many rounds. 0 = no limit.
  std::uint64_t max_rounds = 0;
};

class Scheduler {
 public:
  explicit Scheduler(Graph& graph, SchedulerConfig cfg = {});

  /// Run the graph to completion (every source exhausted, every channel
  /// drained). Returns the number of rounds executed.
  std::uint64_t run();

  const SchedulerConfig& config() const { return cfg_; }

 private:
  Graph& graph_;
  SchedulerConfig cfg_;
};

}  // namespace ff::stream
