// Schedulers for element graphs: a deterministic reference mode and a
// pinned-pipeline throughput mode over the same Graph.
//
// Reference (SchedulerMode::kReference) — execution proceeds in rounds.
// Within a round every level of the graph is visited in topological order
// and each element gets one work() opportunity; within one level the
// elements share no state (graph.hpp), so with threads > 1 a level runs
// under common/parallel's worker pool. The round/level structure — and
// therefore every element's state trajectory — is a function of the graph
// alone, so output streams and stream.* metric values are bit-identical at
// any thread count. The run ends when every channel is closed and drained;
// a round that moves nothing earlier than that is a stuck graph and fails
// crisply.
//
// Throughput (SchedulerMode::kThroughput) — the graph is partitioned into
// contiguous element chains (contiguous cuts of the topological order), and
// each chain runs on its own long-lived worker thread (optionally pinned to
// a core). Chain-crossing channels are bridged by lock-free SPSC rings
// (ring.hpp), so blocks flow end to end with no global barrier: while chain
// 0 generates block k, chain 1 filters block k-1 and chain 2 decodes block
// k-2. Elements run their work_batch() path, and rings transfer up to
// batch_size blocks per index publication, amortizing per-block overhead.
// Output is still bit-identical to the reference mode — determinism comes
// from the graph's dataflow (each element processes its input FIFO in order
// on exactly one thread), not from the round structure — but *scheduling*
// observables (queue depth peaks, stall counts, rounds) become
// timing-dependent; see docs/OBSERVABILITY.md for which stream.* metrics
// stay comparable. A wall-clock progress watchdog converts deadlocked
// graphs (the pipeline analog of the reference mode's stuck-graph round)
// into a crisp error carrying every ring's occupancy.
//
// Telemetry (when a registry is injected): per-element block/sample
// counters and per-block latency timers recorded by the elements
// themselves, per-channel peak-occupancy gauges
// (stream.<consumer>.in<port>.depth_peak), stall counters, and
// stream.scheduler.rounds (reference) / stream.scheduler.chains plus
// stream.ring.* (throughput). Never record thread counts — reference-mode
// reports must stay byte-comparable across them (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <functional>

#include "stream/graph.hpp"

namespace ff::stream {

enum class SchedulerMode {
  kReference,   ///< deterministic level-parallel rounds (the bit-exact baseline)
  kThroughput,  ///< pinned per-core element chains over lock-free SPSC rings
};

struct SchedulerConfig {
  /// Reference mode: worker threads for level execution (1 = fully serial).
  /// Throughput mode: number of pipeline chains / dedicated worker threads.
  /// 0 = the common/parallel default (FF_THREADS / hardware concurrency).
  std::size_t threads = 1;
  /// Optional telemetry sink, installed on every element for the run.
  MetricsRegistry* metrics = nullptr;
  /// Safety valve for misconfigured (e.g. unbounded-source) graphs:
  /// abort after this many rounds. 0 = no limit. Reference mode only; the
  /// throughput mode's safety valve is the watchdog below.
  std::uint64_t max_rounds = 0;

  /// Execution mode. kReference is the default and the determinism
  /// reference; kThroughput must reproduce its output bit-for-bit
  /// (tests/stream_test.cpp holds it to that).
  SchedulerMode mode = SchedulerMode::kReference;
  /// Throughput mode: blocks per work_batch() pass and per ring transfer.
  /// 1 = no batching. Larger batches amortize per-block overhead at the
  /// cost of pipeline latency; output samples never change.
  std::size_t batch_size = 1;
  /// Throughput mode: pin chain k's worker to visible core k (mod core
  /// count) via common/affinity. Graceful no-op where unsupported.
  bool pin_cores = false;
  /// Throughput mode: minimum SPSC ring capacity in blocks (rounded up to
  /// a power of two). 0 = derived per bridge from the bridged channel's
  /// capacity and batch_size.
  std::size_t ring_capacity = 0;
  /// Throughput mode stuck-graph watchdog: abort when no block moves
  /// across any ring (and no chain makes local progress) for this long.
  /// The error lists per-chain ring occupancies. 0 = disabled.
  double watchdog_ms = 10000.0;

  /// Reference mode: invoked after every round (with the 1-based round
  /// number) at the global quiescent point — no element is mid-work, so
  /// this is the safe place to call live read/write handlers
  /// (Graph::handler) or queue positioned writes. Must not change the
  /// graph topology. The round structure is thread-count independent, so
  /// handler calls made here keep the determinism contract. Throughput
  /// mode has no global quiescent point and FF_CHECKs this is empty —
  /// use Element::write_at for sample-exact writes there.
  std::function<void(std::uint64_t round)> on_round;
};

class Scheduler {
 public:
  explicit Scheduler(Graph& graph, SchedulerConfig cfg = {});

  /// Run the graph to completion (every source exhausted, every channel
  /// drained). Returns the number of rounds executed (reference mode) or
  /// the total number of blocks transferred across chain-bridging rings
  /// (throughput mode; 0 when the whole graph fit in one chain).
  std::uint64_t run();

  const SchedulerConfig& config() const { return cfg_; }

 private:
  std::uint64_t run_reference();
  std::uint64_t run_throughput();  // pipeline_scheduler.cpp

  Graph& graph_;
  SchedulerConfig cfg_;
};

}  // namespace ff::stream
