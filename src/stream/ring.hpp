// Lock-free single-producer single-consumer ring buffer: the channel
// transport of the throughput-mode pipeline scheduler (scheduler.hpp).
//
// The reference scheduler moves blocks through plain deque channels because
// its level-barrier guarantees a channel's producer and consumer never run
// concurrently. The pipeline scheduler drops that barrier — each element
// chain runs on its own long-lived thread — so every chain-crossing edge
// needs a queue that is safe with exactly one producer thread and one
// consumer thread and costs nanoseconds, not locks, per transfer:
//
//   * power-of-two capacity, monotonically increasing head/tail counts
//     masked into the slot array (wraparound never needs a branch);
//   * acquire/release atomics only — the producer publishes with one
//     release store of tail_, the consumer with one release store of
//     head_; no CAS, no mutex, no seq_cst fence on the hot path;
//   * each side keeps a *cached* copy of the opposite index and refreshes
//     it only when the ring looks full/empty, so steady-state pushes and
//     pops touch no cache line the other core is writing;
//   * head, tail, and the per-side working sets live on separate
//     cache-line-aligned storage (no false sharing / line ping-pong);
//   * batch transfer (`try_push_batch` / `try_pop_batch`) moves up to
//     batch_size items under a single index publication, amortizing the
//     atomic traffic the same way work_batch amortizes element overhead.
//
// Close semantics mirror stream::Channel: the producer calls close() after
// its final push; `drained()` on the consumer side (closed and empty) means
// no item will ever arrive. The release/acquire pair on closed_ makes every
// pre-close push visible to a consumer that observes the close.
//
// Waiting is the caller's job: try_* never block. SpinBackoff packages the
// bounded spin-then-yield policy the scheduler uses between failed
// attempts (pause a few dozen times on the CPU's relax instruction, then
// fall back to std::this_thread::yield so oversubscribed hosts — e.g. a
// 4-chain graph on the 1-core CI container — still make progress).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace ff::stream {

inline constexpr std::size_t kCacheLine = 64;

/// One CPU "relax" hint (PAUSE on x86); a plain compiler barrier elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded spin-then-yield backoff: the first `spin_limit` pauses are busy
/// spins (cheap, keeps the core hot for latencies in the nanoseconds), after
/// which every pause yields the thread (keeps oversubscribed hosts live).
/// A successful operation should reset() it. The pause count doubles as the
/// stall-spin statistic the scheduler exports per ring.
class SpinBackoff {
 public:
  explicit SpinBackoff(std::uint32_t spin_limit = 64) : spin_limit_(spin_limit) {}

  void pause() {
    ++total_;
    if (streak_ < spin_limit_) {
      ++streak_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { streak_ = 0; }

  /// Total pauses taken over the object's lifetime (spins + yields).
  std::uint64_t total() const { return total_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t streak_ = 0;
  std::uint64_t total_ = 0;
};

/// Largest power of two representable in size_t (the ring capacity ceiling).
inline constexpr std::size_t kMaxRingCapacity =
    (static_cast<std::size_t>(-1) >> 1) + 1;

/// Round `n` up to the next power of two (1 <= n <= kMaxRingCapacity).
inline std::size_t ring_capacity_for(std::size_t n) {
  FF_CHECK_MSG(n >= 1, "ring capacity must be >= 1");
  // Beyond the largest size_t power of two `cap <<= 1` wraps to 0 and the
  // loop never terminates; such a request is a bug, not a big ring.
  FF_CHECK_MSG(n <= kMaxRingCapacity,
               "ring capacity " << n << " exceeds the largest size_t power of two ("
                                << kMaxRingCapacity << ")");
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (>= min_capacity >= 1).
  explicit SpscRing(std::size_t min_capacity)
      : mask_(ring_capacity_for(min_capacity) - 1),
        slots_(ring_capacity_for(min_capacity)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // ---- producer side (exactly one thread) ---------------------------

  /// Push one item; false when the ring is full. Must not be called after
  /// close() (FF_CHECK-enforced via a producer-local flag: close() is a
  /// producer-side call, so the check needs no atomic and costs one
  /// predictable branch on an already-hot line).
  bool try_push(T&& v) {
    FF_CHECK_MSG(!prod_.closed, "SpscRing: try_push after close()");
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - prod_.cached_head >= capacity()) {
      prod_.cached_head = head_.load(std::memory_order_acquire);
      if (tail - prod_.cached_head >= capacity()) {
        ++prod_.stalls;
        return false;
      }
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    const std::size_t depth = tail + 1 - prod_.cached_head;
    if (depth > prod_.depth_peak) prod_.depth_peak = depth;
    return true;
  }

  /// Move up to `n` items from `src` into the ring under one tail
  /// publication; returns how many were taken (a full ring takes fewer).
  template <typename PopFront>
  std::size_t try_push_batch(std::size_t n, PopFront&& pop_front) {
    FF_CHECK_MSG(!prod_.closed, "SpscRing: try_push_batch after close()");
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t space = capacity() - (tail - prod_.cached_head);
    if (space < n) {
      prod_.cached_head = head_.load(std::memory_order_acquire);
      space = capacity() - (tail - prod_.cached_head);
    }
    const std::size_t take = n < space ? n : space;
    if (take == 0) {
      if (n > 0) ++prod_.stalls;
      return 0;
    }
    for (std::size_t i = 0; i < take; ++i) slots_[(tail + i) & mask_] = pop_front();
    tail_.store(tail + take, std::memory_order_release);
    const std::size_t depth = tail + take - prod_.cached_head;
    if (depth > prod_.depth_peak) prod_.depth_peak = depth;
    return take;
  }

  /// End of stream: no further pushes. Idempotent. Producer-side call (the
  /// close-semantics contract above), which is what lets the push-after-close
  /// check read a plain flag.
  void close() {
    prod_.closed = true;
    closed_.store(true, std::memory_order_release);
  }

  /// Peak occupancy as observed by the producer (exact whenever the
  /// producer saw the ring at its fullest, which it does — it caused it).
  std::size_t depth_peak() const { return prod_.depth_peak; }
  /// Failed pushes (ring full when the producer wanted to move a batch).
  std::uint64_t producer_stalls() const { return prod_.stalls; }

  // ---- consumer side (exactly one thread) ---------------------------

  /// Pop one item; false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (cons_.cached_tail == head) {
      cons_.cached_tail = tail_.load(std::memory_order_acquire);
      if (cons_.cached_tail == head) {
        ++cons_.stalls;
        return false;
      }
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Pop up to `n` items under one head publication, handing each to
  /// `sink(T&&)`; returns how many moved.
  template <typename Sink>
  std::size_t try_pop_batch(std::size_t n, Sink&& sink) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cons_.cached_tail - head;
    if (avail < n) {
      cons_.cached_tail = tail_.load(std::memory_order_acquire);
      avail = cons_.cached_tail - head;
    }
    const std::size_t take = n < avail ? n : avail;
    if (take == 0) {
      if (n > 0) ++cons_.stalls;
      return 0;
    }
    for (std::size_t i = 0; i < take; ++i) sink(std::move(slots_[(head + i) & mask_]));
    head_.store(head + take, std::memory_order_release);
    return take;
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Closed and empty: nothing queued and nothing ever coming. The acquire
  /// on closed_ orders the emptiness check after the producer's final push,
  /// so a true result is final.
  bool drained() const {
    if (!closed_.load(std::memory_order_acquire)) return false;
    return head_.load(std::memory_order_relaxed) == tail_.load(std::memory_order_acquire);
  }

  /// Failed pops (ring empty when the consumer wanted a batch).
  std::uint64_t consumer_stalls() const { return cons_.stalls; }

  // ---- either side (approximate between concurrent operations) ------

  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  bool empty() const { return size() == 0; }

 private:
  /// Per-side working set: the cached opposite index plus that side's
  /// statistics, padded so producer and consumer never share a line.
  struct alignas(kCacheLine) ProducerSide {
    std::size_t cached_head = 0;
    std::size_t depth_peak = 0;
    std::uint64_t stalls = 0;
    bool closed = false;  // producer-thread mirror of closed_ for try_push checks
  };
  struct alignas(kCacheLine) ConsumerSide {
    std::size_t cached_tail = 0;
    std::uint64_t stalls = 0;
  };

  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // produced count
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumed count
  alignas(kCacheLine) std::atomic<bool> closed_{false};
  ProducerSide prod_;
  ConsumerSide cons_;
};

}  // namespace ff::stream
