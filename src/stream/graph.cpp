#include "stream/graph.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace ff::stream {

void Graph::connect(Element& from, std::size_t out_port, Element& to, std::size_t in_port,
                    std::size_t capacity) {
  FF_CHECK_MSG(capacity >= 1, "channel " << from.name() << " -> " << to.name()
                                         << " needs capacity >= 1 block");
  FF_CHECK_MSG(&from != &to, from.name() << " cannot connect to itself");
  auto ch = std::make_unique<Channel>();
  ch->capacity = capacity;
  ch->producer = &from;
  ch->consumer = &to;
  ch->producer_port = out_port;
  ch->consumer_port = in_port;
  from.attach_output(out_port, ch.get());
  to.attach_input(in_port, ch.get());
  channels_.push_back(std::move(ch));
  invalidate();
}

Element* Graph::find(const std::string& name) const {
  for (const auto& e : elements_)
    if (e->name() == name) return e.get();
  return nullptr;
}

Element& Graph::at(const std::string& name) const {
  Element* e = find(name);
  if (!e) {
    std::string known;
    for (const auto& el : elements_) {
      if (!known.empty()) known += ", ";
      known += el->name();
    }
    FF_CHECK_MSG(false, "no element named '" << name << "' (have: " << known << ")");
  }
  return *e;
}

const Handler& Graph::handler(const std::string& elem, const std::string& name) {
  Element& e = at(elem);
  const Handler* h = e.handlers().find(name);
  FF_CHECK_MSG(h != nullptr, elem << " (" << e.class_name() << ") has no handler '"
                                  << name << "'");
  return *h;
}

void Graph::validate() {
  if (validated_) return;
  FF_CHECK_MSG(!elements_.empty(), "stream graph has no elements");

  std::unordered_set<std::string> names;
  for (const auto& e : elements_) {
    FF_CHECK_MSG(names.insert(e->name()).second,
                 "duplicate element name '" << e->name()
                                            << "' (names key the stream.* metrics)");
    for (std::size_t p = 0; p < e->n_inputs(); ++p)
      FF_CHECK_MSG(e->inputs_[p] != nullptr,
                   "input " << p << " of " << e->name() << " is not connected");
    for (std::size_t p = 0; p < e->n_outputs(); ++p)
      FF_CHECK_MSG(e->outputs_[p] != nullptr,
                   "output " << p << " of " << e->name() << " is not connected");
  }

  // Kahn topological sort over the element adjacency; level(e) is the
  // longest path from any source, so a channel always crosses to a
  // strictly higher level.
  std::unordered_map<const Element*, std::size_t> in_degree;
  std::unordered_map<const Element*, std::size_t> level;
  for (const auto& e : elements_) in_degree[e.get()] = e->n_inputs();

  std::vector<Element*> frontier;
  for (const auto& e : elements_)
    if (e->n_inputs() == 0) {
      frontier.push_back(e.get());
      level[e.get()] = 0;
    }
  FF_CHECK_MSG(!frontier.empty(), "stream graph has no source (0-input element)");

  std::size_t visited = 0;
  std::size_t max_level = 0;
  while (!frontier.empty()) {
    std::vector<Element*> next;
    for (Element* e : frontier) {
      ++visited;
      max_level = std::max(max_level, level[e]);
      for (const Channel* ch : e->outputs_) {
        Element* down = ch->consumer;
        level[down] = std::max(level[down], level[e] + 1);
        if (--in_degree[down] == 0) next.push_back(down);
      }
    }
    frontier = std::move(next);
  }
  if (visited != elements_.size()) {
    // Name one element on the cycle for the error message.
    std::string culprit;
    for (const auto& e : elements_)
      if (in_degree[e.get()] != 0) {
        culprit = e->name();
        break;
      }
    FF_CHECK_MSG(false, "stream graph has a cycle (through '"
                            << culprit << "'); break it with an explicit Queue "
                            << "and a feedback-free topology");
  }

  levels_.assign(max_level + 1, {});
  for (const auto& e : elements_) levels_[level[e.get()]].push_back(e.get());
  validated_ = true;
}

std::vector<Element*> Graph::topo_order() const {
  FF_CHECK_MSG(validated_, "topo_order() needs a validated graph");
  std::vector<Element*> order;
  order.reserve(elements_.size());
  for (const auto& level : levels_)
    for (Element* e : level) order.push_back(e);
  return order;
}

bool Graph::finished() const {
  for (const auto& ch : channels_)
    if (!ch->drained()) return false;
  return true;
}

void Graph::set_metrics(MetricsRegistry* metrics) {
  for (const auto& e : elements_) e->set_metrics(metrics);
}

}  // namespace ff::stream
