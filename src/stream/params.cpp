#include "stream/params.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace ff::stream {

namespace {

bool whole_token(const std::string& text, const char* end) {
  return !text.empty() && errno == 0 && end == text.c_str() + text.size();
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

// ------------------------------------------------------------------ Params

void Params::set(const std::string& key, std::string value) {
  FF_CHECK_MSG(!key.empty(), context_ << ": empty parameter name");
  FF_CHECK_MSG(find(key) == nullptr,
               (context_.empty() ? std::string() : context_ + ": ")
                   << "duplicate parameter '" << key << "'");
  items_.emplace_back(key, std::move(value));
  used_.push_back(false);
}

bool Params::has(const std::string& key) const {
  // Deliberately a non-consuming probe: an element that checks for a key but
  // never reads it must still trip check_all_used()'s unknown-parameter
  // diagnostic, so has() must not mark the key used the way find() does.
  for (const auto& item : items_)
    if (item.first == key) return true;
  return false;
}

const std::string* Params::find(const std::string& key) const {
  for (std::size_t i = 0; i < items_.size(); ++i)
    if (items_[i].first == key) {
      used_[i] = true;
      return &items_[i].second;
    }
  return nullptr;
}

const std::string& Params::require(const std::string& key) const {
  const std::string* v = find(key);
  if (!v) fail(key, "required parameter is missing");
  return *v;
}

void Params::fail(const std::string& key, const std::string& what) const {
  std::ostringstream os;
  if (!context_.empty()) os << context_ << ": ";
  os << key << ": " << what;
  FF_CHECK_MSG(false, os.str());
  std::abort();  // unreachable: FF_CHECK_MSG(false, ...) always throws
}

std::string Params::get_string(const std::string& key) const { return require(key); }

std::string Params::get_string_or(const std::string& key,
                                  const std::string& fallback) const {
  const std::string* v = find(key);
  return v ? *v : fallback;
}

double Params::get_double(const std::string& key) const {
  return parse_double_value(context_ + ": " + key, require(key));
}

double Params::get_double_or(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  return v ? parse_double_value(context_ + ": " + key, *v) : fallback;
}

std::size_t Params::get_size(const std::string& key) const {
  return static_cast<std::size_t>(get_u64(key));
}

std::size_t Params::get_size_or(const std::string& key, std::size_t fallback) const {
  const std::string* v = find(key);
  return v ? static_cast<std::size_t>(parse_u64_value(context_ + ": " + key, *v))
           : fallback;
}

std::uint64_t Params::get_u64(const std::string& key) const {
  return parse_u64_value(context_ + ": " + key, require(key));
}

std::uint64_t Params::get_u64_or(const std::string& key, std::uint64_t fallback) const {
  const std::string* v = find(key);
  return v ? parse_u64_value(context_ + ": " + key, *v) : fallback;
}

int Params::get_int(const std::string& key) const {
  const std::string& text = require(key);
  // Trim like every other parser: strtol would skip leading whitespace on
  // its own but reject trailing whitespace via whole_token, accepting " 5"
  // while rejecting "5 " — inconsistent with get_u64/get_double.
  const std::string t = trim(text);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(t.c_str(), &end, 10);
  if (!whole_token(t, end) || v < INT_MIN || v > INT_MAX)
    fail(key, "expected an integer, got '" + text + "'");
  return static_cast<int>(v);
}

int Params::get_int_or(const std::string& key, int fallback) const {
  return has(key) ? get_int(key) : fallback;
}

bool Params::get_bool(const std::string& key) const {
  return parse_bool_value(context_ + ": " + key, require(key));
}

bool Params::get_bool_or(const std::string& key, bool fallback) const {
  const std::string* v = find(key);
  return v ? parse_bool_value(context_ + ": " + key, *v) : fallback;
}

Complex Params::get_complex(const std::string& key) const {
  return parse_complex_value(context_ + ": " + key, require(key));
}

Complex Params::get_complex_or(const std::string& key, Complex fallback) const {
  const std::string* v = find(key);
  return v ? parse_complex_value(context_ + ": " + key, *v) : fallback;
}

CVec Params::get_cvec(const std::string& key) const {
  return parse_cvec_value(context_ + ": " + key, require(key));
}

CVec Params::get_cvec_or(const std::string& key, CVec fallback) const {
  const std::string* v = find(key);
  return v ? parse_cvec_value(context_ + ": " + key, *v) : fallback;
}

void Params::check_all_used() const {
  for (std::size_t i = 0; i < items_.size(); ++i)
    if (!used_[i])
      fail(items_[i].first, "unknown parameter (no element field by this name)");
}

// ---------------------------------------------------------- value parsing

double parse_double_value(const std::string& context, const std::string& text) {
  const std::string t = trim(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  FF_CHECK_MSG(whole_token(t, end) && std::isfinite(v),
               context << ": expected a finite number, got '" << text << "'");
  return v;
}

bool parse_bool_value(const std::string& context, const std::string& text) {
  const std::string t = trim(text);
  if (t == "true" || t == "1") return true;
  if (t == "false" || t == "0") return false;
  FF_CHECK_MSG(false, context << ": expected true|false|1|0, got '" << text << "'");
  return false;
}

std::uint64_t parse_u64_value(const std::string& context, const std::string& text) {
  const std::string t = trim(text);
  // strtoull silently negates "-1"; reject signs here.
  FF_CHECK_MSG(!t.empty() && t[0] != '-' && t[0] != '+',
               context << ": expected a non-negative integer, got '" << text << "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  FF_CHECK_MSG(whole_token(t, end),
               context << ": expected a non-negative integer, got '" << text << "'");
  return static_cast<std::uint64_t>(v);
}

Complex parse_complex_value(const std::string& context, const std::string& text) {
  const std::string t = trim(text);
  if (!t.empty() && t.front() == '(') {
    FF_CHECK_MSG(t.back() == ')', context << ": unbalanced '(' in '" << text << "'");
    const std::string inner = t.substr(1, t.size() - 2);
    const auto comma = inner.find(',');
    FF_CHECK_MSG(comma != std::string::npos,
                 context << ": complex needs '(re,im)', got '" << text << "'");
    const double re = parse_double_value(context, inner.substr(0, comma));
    const double im = parse_double_value(context, inner.substr(comma + 1));
    return Complex{re, im};
  }
  return Complex{parse_double_value(context, t), 0.0};
}

std::vector<std::string> split_list_value(const std::string& context,
                                          const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') {
      // A stray ')' would drive depth negative, silently mis-splitting the
      // rest of the list (a later top-level ',' looks nested); fail here
      // with the field-naming message instead of a confusing one downstream.
      FF_CHECK_MSG(depth > 0,
                   context << ": unbalanced ')' in list '" << text << "'");
      --depth;
    }
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  FF_CHECK_MSG(depth == 0,
               context << ": unterminated '(' in list '" << text << "'");
  const std::string last = trim(cur);
  if (!last.empty() || !out.empty()) out.push_back(last);
  return out;
}

CVec parse_cvec_value(const std::string& context, const std::string& text) {
  CVec out;
  for (const std::string& entry : split_list_value(context, text)) {
    FF_CHECK_MSG(!entry.empty(), context << ": empty entry in list '" << text << "'");
    out.push_back(parse_complex_value(context, entry));
  }
  return out;
}

// ------------------------------------------------------------- formatting

std::string format_double(double v) {
  // %.17g (max_digits10) round-trips every double exactly through strtod,
  // which is what lets a printed graph rebuild a bit-identical element.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_complex(Complex v) {
  return "(" + format_double(v.real()) + "," + format_double(v.imag()) + ")";
}

std::string format_cvec(CSpan v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += format_complex(v[i]);
  }
  return out;
}

}  // namespace ff::stream
