// Click-style per-element read/write handlers.
//
// A read handler renders one piece of live element state as a string
// (counters, current taps, cfo_hz, stall stats); a write handler applies a
// control action from a string value (set_taps, set_cfo, retune, gate
// open/close). Handlers are the runtime introspection surface: the graph
// language builds the elements, handlers inspect and retune them while the
// stream runs — without rebuilding the binary.
//
// Concrete elements register handlers in their add_handlers() override;
// the registry is built lazily on first access (Element::handlers()).
// Thread-safety is by scheduling, not locking: handlers touch element
// state, so the scheduler only invokes them at quiescent points (between
// reference-mode rounds via SchedulerConfig::on_round, or before/after a
// run). For mid-stream retunes under any scheduler, use the positioned
// write queue (Element::write_at), which applies the handler at an exact
// sample index inside the element's own work() — the determinism contract
// in docs/STREAMING.md.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace ff::stream {

/// One named handler. read and/or write may be empty; readable()/writable()
/// say which directions exist.
struct Handler {
  std::string name;
  std::function<std::string()> read;
  std::function<void(const std::string&)> write;

  bool readable() const { return static_cast<bool>(read); }
  bool writable() const { return static_cast<bool>(write); }
  bool valid() const { return readable() || writable(); }
};

/// Per-element handler table, insertion-ordered (catalog printing follows
/// registration order, base-class handlers first).
class HandlerRegistry {
 public:
  /// Register a read handler (FF_CHECK: name not already readable).
  void add_read(const std::string& name, std::function<std::string()> fn);
  /// Register a write handler (FF_CHECK: name not already writable).
  /// A name may carry both directions (e.g. `taps` read + `set_taps` write
  /// are conventionally separate, but `open` could be both).
  void add_write(const std::string& name, std::function<void(const std::string&)> fn);

  /// Lookup by name; nullptr when absent.
  const Handler* find(const std::string& name) const;

  const std::vector<Handler>& all() const { return handlers_; }

 private:
  Handler& at_or_new(const std::string& name);

  std::vector<Handler> handlers_;
};

}  // namespace ff::stream
