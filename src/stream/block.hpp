// The unit of data flow in the streaming runtime: a fixed-size chunk of IQ
// samples stamped with its position on the stream timeline.
//
// The paper's relay is a streaming device — it forwards each sample within
// ~1 µs while sounding, retuning and signature detection happen concurrently.
// The batch evaluator materializes whole packets as vectors; the streaming
// runtime instead moves Blocks through an element graph (element.hpp), so a
// session of arbitrary duration runs in bounded memory. Block boundaries are
// a transport artifact, never a semantic one: every element is required to
// produce the same sample stream no matter how it is blocked (the invariance
// tests/stream_test.cpp asserts for sizes 1/7/64/4096).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ff::stream {

/// Block flags (a small bitset so future markers don't change the layout).
enum BlockFlags : std::uint32_t {
  kBlockFirst = 1u << 0,  ///< first block of the stream
  kBlockLast = 1u << 1,   ///< final block — nothing follows
};

/// A chunk of contiguous IQ samples plus its stream time.
struct Block {
  CVec samples;
  std::uint64_t start = 0;   ///< stream index of samples[0] (sample clock)
  std::uint32_t flags = 0;   ///< BlockFlags

  std::uint64_t end() const { return start + samples.size(); }
  bool first() const { return flags & kBlockFirst; }
  bool last() const { return flags & kBlockLast; }
};

}  // namespace ff::stream
