#include "stream/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/check.hpp"

namespace ff::stream {

namespace {

/// strerror without the thread-safety footgun.
std::string errno_text(int err) {
  char buf[128];
  buf[0] = '\0';
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return std::string(strerror_r(err, buf, sizeof buf));
#else
  strerror_r(err, buf, sizeof buf);
  return std::string(buf);
#endif
}

/// Full write, restarting on EINTR and short writes. Blocking fd.
void send_all(int fd, const void* data, std::size_t n, const char* what) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      FF_CHECK_MSG(false, "wire: " << what << " failed: " << errno_text(errno));
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
}

/// Full read. Returns bytes read: `n` normally, 0 on EOF at a boundary;
/// FF_CHECK on error or EOF mid-object.
std::size_t recv_all(int fd, void* data, std::size_t n, const char* what) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd, p + got, n - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      FF_CHECK_MSG(false, "wire: " << what << " failed: " << errno_text(errno));
    }
    if (k == 0) {
      FF_CHECK_MSG(got == 0, "wire: peer closed mid-" << what << " (got " << got
                                                      << " of " << n << " bytes)");
      return 0;
    }
    got += static_cast<std::size_t>(k);
  }
  return got;
}

sockaddr_un unix_addr(const WireEndpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FF_CHECK_MSG(ep.path.size() < sizeof(addr.sun_path),
               "wire: unix socket path too long: '" << ep.path << "'");
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const WireEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
  FF_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "wire: tcp host must be a local dotted quad, got '" << host << "'");
  return addr;
}

OwnedFd make_socket(const WireEndpoint& ep) {
  const int domain = ep.kind == WireEndpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  OwnedFd fd(::socket(domain, SOCK_STREAM, 0));
  FF_CHECK_MSG(fd.valid(), "wire: socket() failed: " << errno_text(errno));
  if (ep.kind == WireEndpoint::Kind::kTcp) {
    // Frames are latency-sensitive and written whole; never Nagle them.
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

}  // namespace

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::string WireEndpoint::text() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

WireEndpoint parse_endpoint(const std::string& context, const std::string& text) {
  WireEndpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = WireEndpoint::Kind::kUnix;
    ep.path = text.substr(5);
    FF_CHECK_MSG(!ep.path.empty(), context << ": unix endpoint needs a path, got '"
                                           << text << "'");
    return ep;
  }
  if (text.rfind("tcp:", 0) == 0) {
    ep.kind = WireEndpoint::Kind::kTcp;
    const std::string rest = text.substr(4);
    const auto colon = rest.rfind(':');
    FF_CHECK_MSG(colon != std::string::npos && colon + 1 < rest.size(),
                 context << ": tcp endpoint needs host:port, got '" << text << "'");
    ep.host = rest.substr(0, colon);
    errno = 0;
    char* end = nullptr;
    const unsigned long port = std::strtoul(rest.c_str() + colon + 1, &end, 10);
    FF_CHECK_MSG(errno == 0 && end == rest.c_str() + rest.size() && port >= 1 &&
                     port <= 65535,
                 context << ": bad tcp port in '" << text << "'");
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  FF_CHECK_MSG(false, context << ": endpoint must be unix:<path> or tcp:<host>:<port>, "
                                 "got '"
                              << text << "'");
  return ep;  // unreachable
}

OwnedFd wire_listen(const WireEndpoint& ep, int backlog) {
  OwnedFd fd = make_socket(ep);
  if (ep.kind == WireEndpoint::Kind::kUnix) {
    // Reclaim the path only if it is a socket nobody answers on — a stale
    // leftover from a dead process. A live listener (another daemon) or a
    // non-socket file at the path must never be silently deleted.
    struct stat st{};
    if (::lstat(ep.path.c_str(), &st) == 0) {
      FF_CHECK_MSG(S_ISSOCK(st.st_mode),
                   "wire: listen path '" << ep.path
                                         << "' exists and is not a socket; refusing "
                                            "to delete it");
      const sockaddr_un probe_addr = unix_addr(ep);
      OwnedFd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
      FF_CHECK_MSG(!(probe.valid() &&
                     ::connect(probe.get(),
                               reinterpret_cast<const sockaddr*>(&probe_addr),
                               sizeof probe_addr) == 0),
                   "wire: " << ep.text()
                            << " is in use by a live listener; refusing to hijack it");
      ::unlink(ep.path.c_str());  // stale socket: no listener answered
    }
    const sockaddr_un addr = unix_addr(ep);
    FF_CHECK_MSG(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr) == 0,
                 "wire: bind(" << ep.text() << ") failed: " << errno_text(errno));
  } else {
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in addr = tcp_addr(ep);
    FF_CHECK_MSG(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr) == 0,
                 "wire: bind(" << ep.text() << ") failed: " << errno_text(errno));
  }
  FF_CHECK_MSG(::listen(fd.get(), backlog) == 0,
               "wire: listen(" << ep.text() << ") failed: " << errno_text(errno));
  return fd;
}

OwnedFd wire_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return OwnedFd(fd);
    if (errno == EINTR) continue;
    FF_CHECK_MSG(false, "wire: accept() failed: " << errno_text(errno));
  }
}

OwnedFd wire_connect(const WireEndpoint& ep, double timeout_s) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    OwnedFd fd = make_socket(ep);
    int rc;
    if (ep.kind == WireEndpoint::Kind::kUnix) {
      const sockaddr_un addr = unix_addr(ep);
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    } else {
      const sockaddr_in addr = tcp_addr(ep);
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    }
    if (rc == 0) return fd;
    FF_CHECK_MSG(clock::now() < deadline, "wire: connect(" << ep.text() << ") failed: "
                                                           << errno_text(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool wire_poll_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      FF_CHECK_MSG(false, "wire: poll() failed: " << errno_text(errno));
    }
    // POLLHUP/POLLERR read as "readable": the recv will see EOF/error.
    return rc > 0;
  }
}

void wire_send_magic(int fd) { send_all(fd, kWireMagic, sizeof kWireMagic, "magic"); }

void wire_expect_magic(int fd) {
  char got[sizeof kWireMagic];
  FF_CHECK_MSG(recv_all(fd, got, sizeof got, "magic") == sizeof got,
               "wire: peer closed before sending the stream magic");
  FF_CHECK_MSG(std::memcmp(got, kWireMagic, sizeof got) == 0,
               "wire: bad stream magic (expected \"FFIQ1\\n\" — is the peer "
               "speaking ff-iq-v1?)");
}

void wire_send_frame(int fd, CSpan samples) {
  FF_CHECK_MSG(!samples.empty(), "wire: a data frame needs >= 1 sample");
  FF_CHECK_MSG(samples.size() <= kWireMaxFrameSamples,
               "wire: frame of " << samples.size() << " samples exceeds the "
                                 << kWireMaxFrameSamples << "-sample ceiling");
  const std::uint32_t count = static_cast<std::uint32_t>(samples.size());
  send_all(fd, &count, sizeof count, "frame header");
  // Complex is std::complex<double>: guaranteed (re, im) double layout.
  send_all(fd, samples.data(), samples.size() * sizeof(Complex), "frame payload");
}

void wire_send_eos(int fd) {
  const std::uint32_t count = 0;
  send_all(fd, &count, sizeof count, "eos marker");
}

WireRecv wire_recv_frame(int fd, CVec& out, int timeout_ms) {
  if (!wire_poll_readable(fd, timeout_ms)) return WireRecv::kTimeout;
  std::uint32_t count = 0;
  if (recv_all(fd, &count, sizeof count, "frame header") == 0) return WireRecv::kEof;
  if (count == 0) return WireRecv::kEos;
  FF_CHECK_MSG(count <= kWireMaxFrameSamples,
               "wire: frame header claims " << count << " samples (ceiling "
                                            << kWireMaxFrameSamples
                                            << ") — desynchronized peer?");
  out.resize(count);
  FF_CHECK_MSG(recv_all(fd, out.data(), count * sizeof(Complex), "frame payload") != 0,
               "wire: peer closed before the frame payload");
  return WireRecv::kFrame;
}

void wire_send_text(int fd, const std::string& text) {
  send_all(fd, text.data(), text.size(), "text");
}

}  // namespace ff::stream
