// Sharded many-relay "city" simulation: the millions-of-users axis of the
// evaluation.
//
// A city is a grid (or any custom set) of sites — one AP + one FastForward
// relay per building — with many client locations per site and one
// concurrent uplink + downlink session per client. Per-session PHY
// throughput reuses the evaluator's machinery (eval::build-link-style
// channel synthesis through channel::IndoorPropagation, relay::design_ff_relay,
// the eval::schemes rate helpers), while relay-to-relay coupling across
// sites is a scalar interference budget over the channel/pathloss
// log-distance model:
//
//   * FastForward city — every site's AP AND relay transmit concurrently
//     (full duplex), so each victim's noise floor is raised by the sum of
//     both transmitters at every other site. The relay's own residual
//     self-interference stays inside the link's cancellation_db budget
//     (Sahai et al., "Pushing the limits of Full-duplex"), exactly as in
//     the single-link evaluation.
//   * Half-duplex mesh baseline — the multi-AP deployment framing of
//     Duarte et al.: a decode-and-forward router at each relay position,
//     perfectly scheduled alternating slots. Each node transmits half the
//     time, so inter-site interference carries a 0.5 duty factor — and each
//     packet costs two slots (eval::hd_two_hop_mbps).
//   * AP-only city — no relays anywhere; only APs interfere.
//
// This makes the paper's headline ~2.3x-over-half-duplex-mesh claim a
// measured, regression-tracked number at city scale.
//
// Determinism and scale: the session list is planned serially (per-site RNG
// streams forked by FNV-1a label, per-session streams forked by index —
// common/seeding.hpp), then executed shard by shard on the common/parallel
// worker pool. Per-session results stream to a SessionSink in global
// session order as each shard completes, so memory stays bounded by the
// shard size at any city size, and both the aggregate summary and the
// streamed bytes are bit-identical at any shard count x thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/floorplan.hpp"
#include "eval/testbed.hpp"

namespace ff {
class MetricsRegistry;
}

namespace ff::city {

/// One AP + FF-relay site. The building occupies
/// [origin, origin + (site_w_m, site_h_m)) in city coordinates; ap/relay
/// are in LOCAL building coordinates (the per-site floor plan's frame).
struct Site {
  channel::Point origin;  // building's SW corner, city coordinates (m)
  channel::Point ap;      // local building coordinates (m)
  channel::Point relay;   // local building coordinates (m)
};

struct CityConfig {
  std::vector<Site> sites;
  /// Building footprint shared by every site (the per-site floor plan).
  double site_w_m = 12.0;
  double site_h_m = 9.0;
  /// Client locations per site; each client runs one downlink AND one
  /// uplink session, so sessions = sites * clients_per_site * 2.
  std::size_t clients_per_site = 4;
  std::uint64_t seed = 1;
  /// Contiguous shards the session list is split into. Each shard runs on
  /// the worker pool, then streams its results serially; peak memory is one
  /// shard's results. 0 = auto (ceil(sessions / 1024)). Results are
  /// bit-identical at ANY shard count — randomness is pinned per session in
  /// the serial planning phase, never per shard.
  std::size_t shards = 0;
  /// Worker threads within a shard (common/parallel.hpp; 0 = FF_THREADS /
  /// hardware default). Bit-identical at every thread count.
  std::size_t threads = 0;
  /// Per-link PHY parameters (antennas forced to 1: the city is SISO, like
  /// the net::network deployment machinery). cancellation_db is the relay's
  /// self-interference budget; ap_power_dbm / noise floors seed the link
  /// budgets exactly as in the single-link evaluator.
  eval::TestbedConfig testbed{};
  /// Uplink transmit power of an unmodified client.
  double client_power_dbm = 15.0;
  /// Transmit power of a half-duplex mesh router (hop 2 of the baseline).
  double mesh_power_dbm = 20.0;
  /// Transmit power an FD relay injects into OTHER sites (its interference
  /// footprint; its own link keeps the design's amplification).
  double relay_tx_power_dbm = 20.0;
  /// Inter-site coupling: log-distance path loss at this exponent between
  /// city positions, plus a fixed excess for the two building shells (plus
  /// street clutter) every cross-site ray penetrates. The defaults put an
  /// adjacent site's AP a few dB under the -90 dBm thermal floor — strong
  /// enough to measurably tax the full-duty FD city, weak enough that the
  /// deployment is interference-aware rather than interference-collapsed.
  double intersite_path_loss_exponent = 3.5;
  double intersite_extra_loss_db = 34.0;
  /// Two APs closer than this (city coordinates) are an overlapping
  /// placement and rejected by validation.
  double min_site_separation_m = 1.0;
  /// Optional metrics sink (`city.*`, docs/OBSERVABILITY.md). Default
  /// nullptr records nothing.
  MetricsRegistry* metrics = nullptr;

  /// Fluent construction mirroring ExperimentConfig:
  ///   CityConfig::grid(4, 4).with_clients(8).with_seed(7).with_shards(4)
  static CityConfig grid(std::size_t cols, std::size_t rows, double site_w_m = 12.0,
                         double site_h_m = 9.0, double street_m = 6.0);
  CityConfig& with_clients(std::size_t n) {
    clients_per_site = n;
    return *this;
  }
  CityConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  CityConfig& with_shards(std::size_t n) {
    shards = n;
    return *this;
  }
  CityConfig& with_threads(std::size_t n) {
    threads = n;
    return *this;
  }
  CityConfig& with_metrics(MetricsRegistry* m) {
    metrics = m;
    return *this;
  }

  std::size_t sessions() const { return sites.size() * clients_per_site * 2; }
};

enum class Direction { kDownlink, kUplink };

/// JSONL-stable slug ("dl" | "ul").
std::string to_string(Direction d);

/// One session's outcome under all three city deployments.
struct SessionResult {
  std::uint32_t site = 0;
  std::uint32_t client = 0;
  Direction direction = Direction::kDownlink;
  channel::Point client_pos;       // city coordinates
  double ff_mbps = 0.0;            // FastForward city
  double hd_mesh_mbps = 0.0;       // half-duplex mesh city (baseline)
  double direct_mbps = 0.0;        // AP-only city
  /// Aggregate FD inter-site interference at this session's destination.
  double interference_dbm = -400.0;
};

/// Streaming consumer of per-session results. on_session is called from the
/// serial fold phase, once per session, in global session order — never
/// concurrently — so sinks need no locking and their output is
/// deterministic at any shard/thread count.
class SessionSink {
 public:
  virtual ~SessionSink() = default;
  virtual void on_session(const SessionResult& r) = 0;
};

/// Aggregate view of a whole city run (bounded memory: totals only; the
/// per-session stream goes to the SessionSink / telemetry histograms).
struct CitySummary {
  std::size_t sites = 0;
  std::size_t sessions = 0;
  std::size_t shards = 0;  // the count actually used (auto resolved)
  double ff_total_mbps = 0.0;
  double hd_mesh_total_mbps = 0.0;
  double direct_total_mbps = 0.0;
  /// The headline: city-wide FastForward throughput over the half-duplex
  /// mesh baseline (0 when the mesh total is 0).
  double gain_vs_hd_mesh = 0.0;
  /// Median per-session FF/HD-mesh gain (sessions with a live mesh rate) —
  /// the apples-to-apples counterpart of the paper's per-location ~2.3x
  /// median; the total above is diluted by healthy near-AP clients whose
  /// direct link needs no relay.
  double median_gain_vs_hd_mesh = 0.0;
};

struct CityRun {
  CitySummary summary;
  /// FNV-1a over every session's numeric fields in session order: two runs
  /// are bit-identical iff the checksums match (tests/city_test.cpp pins it
  /// across shard counts {1,2,4,8} x FF_THREADS {1,2,4}).
  std::uint64_t checksum = 0;
};

/// Validate `cfg` (FF_CHECK with field-naming messages: zero sites,
/// non-finite/out-of-building coordinates, overlapping AP placements, ...).
/// run_city calls this; exposed so CLIs can fail fast before planning.
void validate(const CityConfig& cfg);

/// Run the city simulation. Sink may be nullptr (aggregates only).
CityRun run_city(const CityConfig& cfg, SessionSink* sink = nullptr);

}  // namespace ff::city
