#include "city/city.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "channel/pathloss.hpp"
#include "channel/propagation.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/seeding.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "eval/experiment.hpp"
#include "eval/schemes.hpp"
#include "relay/design.hpp"

namespace ff::city {

std::string to_string(Direction d) {
  return d == Direction::kDownlink ? "dl" : "ul";
}

CityConfig CityConfig::grid(std::size_t cols, std::size_t rows, double site_w_m,
                            double site_h_m, double street_m) {
  CityConfig cfg;
  cfg.site_w_m = site_w_m;
  cfg.site_h_m = site_h_m;
  cfg.sites.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Site s;
      s.origin = {static_cast<double>(c) * (site_w_m + street_m),
                  static_cast<double>(r) * (site_h_m + street_m)};
      // Same corner-AP / mid-room-relay geometry as eval::make_placement:
      // relay placement relative to the AP sets the ceiling of FF's gains.
      s.ap = {0.08 * site_w_m, 0.10 * site_h_m};
      s.relay = {0.22 * site_w_m, 0.28 * site_h_m};
      cfg.sites.push_back(s);
    }
  }
  return cfg;
}

namespace {

// The 0.4 m wall margin eval::random_client_location keeps; a building must
// be wider than twice that or the client draw has an empty support.
constexpr double kClientMarginM = 0.4;

channel::Point city_pos(const Site& site, const channel::Point& local) {
  return {site.origin.x + local.x, site.origin.y + local.y};
}

bool finite(const channel::Point& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

/// Every site shares one local floor plan: the Fig. 1 paper home scaled to
/// the building footprint. Keeping the interior partitions matters — the
/// relay's value (and the paper's 2.3x claim) lives on the
/// behind-two-drywalls clients; an open room would leave every direct link
/// healthy and compress all three deployments together.
channel::FloorPlan make_site_plan(const CityConfig& cfg) {
  const channel::FloorPlan home = channel::FloorPlan::paper_home();
  const double sx = cfg.site_w_m / home.width();
  const double sy = cfg.site_h_m / home.height();
  std::vector<channel::Wall> walls = home.walls();
  for (channel::Wall& w : walls) {
    w.a = {w.a.x * sx, w.a.y * sy};
    w.b = {w.b.x * sx, w.b.y * sy};
  }
  return channel::FloorPlan("city_site", std::move(walls), cfg.site_w_m, cfg.site_h_m);
}

// ------------------------------------------------------- interference field

/// Scalar inter-site coupling. Per victim point it sums, over every OTHER
/// site, the log-distance-attenuated transmit powers of that site's active
/// nodes under each deployment:
///   FastForward — AP and FD relay both transmit the whole time;
///   HD mesh     — AP and mesh router alternate slots (0.5 duty each);
///   AP only     — just the AP.
/// Deterministic: a pure function of geometry summed in site order.
struct InterferenceField {
  std::vector<channel::Point> ap;     // city coordinates, per site
  std::vector<channel::Point> relay;  // city coordinates, per site
  double ap_mw = 0.0;
  double relay_mw = 0.0;
  double mesh_mw = 0.0;
  double carrier_hz = 2.45e9;
  double exponent = 3.5;
  double extra_loss_db = 34.0;

  /// Attenuation from a transmitter at `from` to a victim at `to`, as a
  /// linear power gain. Distances are floored at 1 m (the log-distance
  /// reference) so a pathological co-located pair cannot blow up the sum.
  double gain(const channel::Point& from, const channel::Point& to) const {
    const double d = std::max(channel::distance(from, to), 1.0);
    return power_from_db(-(channel::log_distance_loss_db(d, carrier_hz, exponent) +
                           extra_loss_db));
  }
};

InterferenceField make_field(const CityConfig& cfg) {
  InterferenceField f;
  f.ap.reserve(cfg.sites.size());
  f.relay.reserve(cfg.sites.size());
  for (const Site& s : cfg.sites) {
    f.ap.push_back(city_pos(s, s.ap));
    f.relay.push_back(city_pos(s, s.relay));
  }
  f.ap_mw = power_from_db(cfg.testbed.ap_power_dbm);
  f.relay_mw = power_from_db(cfg.relay_tx_power_dbm);
  f.mesh_mw = power_from_db(cfg.mesh_power_dbm);
  f.carrier_hz = cfg.testbed.ofdm.carrier_hz;
  f.exponent = cfg.intersite_path_loss_exponent;
  f.extra_loss_db = cfg.intersite_extra_loss_db;
  return f;
}

struct InterferenceAt {
  double ff_mw = 0.0;  // FastForward city: every foreign AP + FD relay
  double hd_mw = 0.0;  // HD mesh city: alternating slots, 0.5 duty each
  double ap_mw = 0.0;  // AP-only city: foreign APs alone
};

InterferenceAt interference_at(const InterferenceField& f, const channel::Point& p,
                               std::size_t self_site) {
  InterferenceAt out;
  for (std::size_t i = 0; i < f.ap.size(); ++i) {
    if (i == self_site) continue;
    const double g_ap = f.gain(f.ap[i], p);
    const double g_relay = f.gain(f.relay[i], p);
    out.ap_mw += f.ap_mw * g_ap;
    out.ff_mw += f.ap_mw * g_ap + f.relay_mw * g_relay;
    out.hd_mw += 0.5 * (f.ap_mw * g_ap + f.mesh_mw * g_relay);
  }
  return out;
}

/// Thermal floor (dBm) raised by an interference power (mW).
double raised_noise_dbm(double floor_dbm, double interference_mw) {
  return db_from_power(power_from_db(floor_dbm) + interference_mw);
}

// --------------------------------------------------------------- sessions

struct SessionJob {
  std::uint32_t site = 0;
  std::uint32_t client = 0;
  Direction direction = Direction::kDownlink;
  channel::Point client_local{};
  Rng rng{0};
};

/// Evaluate one session under all three deployments. The three variants
/// share ONE synthesized channel realization (drawn from the job's private
/// stream in a fixed order) and differ only in the interference-raised
/// noise floors, so the comparison isolates the deployment, not the fading
/// draw. The relay's residual self-interference stays inside
/// cancellation_db (handled by design_ff_relay) and is NOT double counted
/// in the city field.
SessionResult evaluate_session(const CityConfig& cfg, const channel::FloorPlan& plan,
                               const InterferenceField& field,
                               const relay::DesignOptions& dopts, SessionJob& job) {
  const Site& site = cfg.sites[job.site];
  channel::PropagationConfig prop = cfg.testbed.prop;
  prop.carrier_hz = cfg.testbed.ofdm.carrier_hz;
  const channel::IndoorPropagation model(plan, prop);

  // Uplink swaps the endpoints: client -> (relay) -> AP at client power.
  const bool uplink = job.direction == Direction::kUplink;
  const channel::Point src = uplink ? job.client_local : site.ap;
  const channel::Point dst = uplink ? site.ap : job.client_local;

  // Same draw order as eval::build_link: direct, then source->relay, then
  // relay->destination — the order is part of the pinned-stream contract.
  const auto ch_sd = model.link(src, dst, 1, 1, job.rng);
  const auto ch_sr = model.link(src, site.relay, 1, 1, job.rng);
  const auto ch_rd = model.link(site.relay, dst, 1, 1, job.rng);

  const auto freqs = cfg.testbed.ofdm.used_subcarrier_freqs();
  relay::RelayLink link;
  link.h_sd.reserve(freqs.size());
  link.h_sr.reserve(freqs.size());
  link.h_rd.reserve(freqs.size());
  for (const double f : freqs) {
    link.h_sd.push_back(ch_sd.response(f));
    link.h_sr.push_back(ch_sr.response(f));
    // The relay's bulk processing delay rides on the relay->destination leg.
    const double phase = -kTwoPi * f * cfg.testbed.relay_chain_delay_s;
    link.h_rd.push_back(ch_rd.response(f) * Complex{std::cos(phase), std::sin(phase)});
  }
  link.source_power_dbm = uplink ? cfg.client_power_dbm : cfg.testbed.ap_power_dbm;
  link.cancellation_db = cfg.testbed.cancellation_db;

  const InterferenceAt i_dst = interference_at(field, city_pos(site, dst), job.site);
  const InterferenceAt i_relay =
      interference_at(field, city_pos(site, site.relay), job.site);

  SessionResult r;
  r.site = job.site;
  r.client = job.client;
  r.direction = job.direction;
  r.client_pos = city_pos(site, job.client_local);
  r.interference_dbm = i_dst.ff_mw > 0.0 ? db_from_power(i_dst.ff_mw) : -400.0;

  // AP-only city.
  link.dest_noise_dbm = raised_noise_dbm(cfg.testbed.noise_floor_dbm, i_dst.ap_mw);
  r.direct_mbps = eval::ap_only_rate(link).throughput_mbps;

  // Half-duplex mesh city: the AP still picks max(direct, two-hop/2), both
  // evaluated under the mesh deployment's own interference.
  link.dest_noise_dbm = raised_noise_dbm(cfg.testbed.noise_floor_dbm, i_dst.hd_mw);
  link.relay_noise_dbm = raised_noise_dbm(cfg.testbed.relay_noise_dbm, i_relay.hd_mw);
  r.hd_mesh_mbps = std::max(eval::ap_only_rate(link).throughput_mbps,
                            eval::hd_two_hop_mbps(link, cfg.mesh_power_dbm));

  // FastForward city.
  link.dest_noise_dbm = raised_noise_dbm(cfg.testbed.noise_floor_dbm, i_dst.ff_mw);
  link.relay_noise_dbm = raised_noise_dbm(cfg.testbed.relay_noise_dbm, i_relay.ff_mw);
  const relay::RelayDesign design = relay::design_ff_relay(link, dopts);
  r.ff_mbps = eval::relayed_rate(link, design).throughput_mbps;
  return r;
}

// --------------------------------------------------------------- checksum

// FNV-1a byte folding, the same rule the bench harness uses for its result
// checksums; duplicated here (it is 6 lines) because bench/ headers are not
// part of the library.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fold_u64(std::uint64_t& h, std::uint64_t v) { fold_bytes(h, &v, sizeof(v)); }

void fold_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fold_u64(h, bits);
}

void fold_session(std::uint64_t& h, const SessionResult& r) {
  fold_u64(h, r.site);
  fold_u64(h, r.client);
  fold_u64(h, r.direction == Direction::kUplink ? 1 : 0);
  fold_double(h, r.client_pos.x);
  fold_double(h, r.client_pos.y);
  fold_double(h, r.ff_mbps);
  fold_double(h, r.hd_mesh_mbps);
  fold_double(h, r.direct_mbps);
  fold_double(h, r.interference_dbm);
}

}  // namespace

void validate(const CityConfig& cfg) {
  FF_CHECK_MSG(!cfg.sites.empty(),
               "CityConfig.sites must be non-empty — a city with zero relay sites has "
               "nothing to simulate");
  FF_CHECK_MSG(std::isfinite(cfg.site_w_m) && std::isfinite(cfg.site_h_m) &&
                   cfg.site_w_m > 2.0 * kClientMarginM && cfg.site_h_m > 2.0 * kClientMarginM,
               "CityConfig.site_w_m/site_h_m must be finite and exceed "
                   << 2.0 * kClientMarginM
                   << " m — client locations keep a " << kClientMarginM
                   << " m margin from every wall");
  FF_CHECK_MSG(cfg.clients_per_site > 0,
               "CityConfig.clients_per_site must be positive — a city with no clients "
               "has no sessions to run");
  FF_CHECK_MSG(std::isfinite(cfg.client_power_dbm) && std::isfinite(cfg.mesh_power_dbm) &&
                   std::isfinite(cfg.relay_tx_power_dbm),
               "CityConfig.client_power_dbm/mesh_power_dbm/relay_tx_power_dbm must be "
               "finite");
  FF_CHECK_MSG(std::isfinite(cfg.intersite_path_loss_exponent) &&
                   cfg.intersite_path_loss_exponent > 0.0,
               "CityConfig.intersite_path_loss_exponent must be positive and finite");
  FF_CHECK_MSG(std::isfinite(cfg.intersite_extra_loss_db) && cfg.intersite_extra_loss_db >= 0.0,
               "CityConfig.intersite_extra_loss_db must be non-negative and finite");
  FF_CHECK_MSG(std::isfinite(cfg.min_site_separation_m) && cfg.min_site_separation_m >= 0.0,
               "CityConfig.min_site_separation_m must be non-negative and finite");
  FF_CHECK_MSG(std::isfinite(cfg.testbed.cancellation_db),
               "TestbedConfig.cancellation_db must be finite");

  for (std::size_t i = 0; i < cfg.sites.size(); ++i) {
    const Site& s = cfg.sites[i];
    FF_CHECK_MSG(finite(s.origin),
                 "CityConfig.sites[" << i << "].origin must have finite coordinates");
    FF_CHECK_MSG(finite(s.ap) && s.ap.x > 0.0 && s.ap.x < cfg.site_w_m && s.ap.y > 0.0 &&
                     s.ap.y < cfg.site_h_m,
                 "CityConfig.sites[" << i
                                     << "].ap must lie strictly inside the building "
                                        "footprint (finite local coordinates in (0, "
                                     << cfg.site_w_m << ") x (0, " << cfg.site_h_m << "))");
    FF_CHECK_MSG(finite(s.relay) && s.relay.x > 0.0 && s.relay.x < cfg.site_w_m &&
                     s.relay.y > 0.0 && s.relay.y < cfg.site_h_m,
                 "CityConfig.sites[" << i
                                     << "].relay must lie strictly inside the building "
                                        "footprint (finite local coordinates in (0, "
                                     << cfg.site_w_m << ") x (0, " << cfg.site_h_m << "))");
    FF_CHECK_MSG(channel::distance(s.ap, s.relay) > 0.0,
                 "CityConfig.sites[" << i
                                     << "].relay must not sit on top of its own AP — "
                                        "the relay needs a distinct placement");
  }
  for (std::size_t i = 0; i < cfg.sites.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg.sites.size(); ++j) {
      const double d =
          channel::distance(city_pos(cfg.sites[i], cfg.sites[i].ap),
                            city_pos(cfg.sites[j], cfg.sites[j].ap));
      FF_CHECK_MSG(d >= cfg.min_site_separation_m,
                   "CityConfig.sites[" << i << "] and sites[" << j
                                       << "] have overlapping AP placements ("
                                       << d << " m apart, min_site_separation_m = "
                                       << cfg.min_site_separation_m << ")");
    }
  }
}

CityRun run_city(const CityConfig& cfg, SessionSink* sink) {
  validate(cfg);
  MetricsRegistry* m = cfg.metrics;
  MetricsRegistry::ScopedTimer run_timer(m, "city.run.wall_us");

  const channel::FloorPlan plan = make_site_plan(cfg);
  const InterferenceField field = make_field(cfg);
  relay::DesignOptions dopts = eval::default_design_options(cfg.testbed);
  dopts.metrics = m;

  // Phase 1 (serial): plan every session in a fixed order. Each site gets
  // its own FNV-1a-labelled stream off the master seed; each client draws
  // its location from the site stream, then each of its two sessions forks
  // a private per-session stream by index. All randomness is pinned here,
  // so the execution below can be split into any shards and any thread
  // schedule and still produce bit-identical results.
  std::vector<SessionJob> jobs;
  jobs.reserve(cfg.sessions());
  Rng master(cfg.seed);
  for (std::uint32_t s = 0; s < cfg.sites.size(); ++s) {
    Rng site_rng = seeding::fork_named(master, "site." + std::to_string(s));
    for (std::uint32_t c = 0; c < cfg.clients_per_site; ++c) {
      const channel::Point local = eval::random_client_location(plan, site_rng);
      for (const Direction dir : {Direction::kDownlink, Direction::kUplink}) {
        SessionJob job;
        job.site = s;
        job.client = c;
        job.direction = dir;
        job.client_local = local;
        job.rng = seeding::fork_indexed(
            site_rng, 2ULL * c + (dir == Direction::kUplink ? 1 : 0));
        jobs.push_back(std::move(job));
      }
    }
  }

  // Phase 2 (sharded): each shard is a contiguous slice of the session
  // list. The shard runs on the worker pool into pre-sized slots, then a
  // serial fold streams its results in session order — so peak memory is
  // one shard's results, and the stream/checksum/aggregates are invariant
  // to BOTH the shard count and the thread count.
  const std::size_t n = jobs.size();
  std::size_t shards = cfg.shards != 0 ? cfg.shards : (n + 1023) / 1024;
  shards = std::max<std::size_t>(1, std::min(shards, n));

  CitySummary summary;
  summary.sites = cfg.sites.size();
  summary.sessions = n;
  summary.shards = shards;
  std::uint64_t checksum = kFnvOffset;
  // One double per mesh-live session (the same footprint the telemetry
  // histograms keep) — full SessionResults never accumulate beyond a shard.
  std::vector<double> session_gains;
  std::vector<SessionResult> slot;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    const std::size_t lo = sh * n / shards;
    const std::size_t hi = (sh + 1) * n / shards;
    slot.assign(hi - lo, SessionResult{});
    parallel_for(
        hi - lo,
        [&](std::size_t i) {
          MetricsRegistry::ScopedTimer session_timer(m, "city.session.wall_us");
          slot[i] = evaluate_session(cfg, plan, field, dopts, jobs[lo + i]);
        },
        cfg.threads);
    for (const SessionResult& r : slot) {
      fold_session(checksum, r);
      summary.ff_total_mbps += r.ff_mbps;
      summary.hd_mesh_total_mbps += r.hd_mesh_mbps;
      summary.direct_total_mbps += r.direct_mbps;
      metrics::observe(m, "city.session_mbps.ff", r.ff_mbps);
      metrics::observe(m, "city.session_mbps.hd_mesh", r.hd_mesh_mbps);
      metrics::observe(m, "city.session_mbps.direct", r.direct_mbps);
      metrics::observe(m, "city.interference_dbm", r.interference_dbm);
      if (r.hd_mesh_mbps > 0.0) {
        session_gains.push_back(r.ff_mbps / r.hd_mesh_mbps);
        metrics::observe(m, "city.session_gain_vs_hd_mesh", session_gains.back());
      }
      if (sink) sink->on_session(r);
    }
  }
  summary.gain_vs_hd_mesh = summary.hd_mesh_total_mbps > 0.0
                                ? summary.ff_total_mbps / summary.hd_mesh_total_mbps
                                : 0.0;
  std::sort(session_gains.begin(), session_gains.end());
  summary.median_gain_vs_hd_mesh = quantile_sorted(session_gains, 0.5);

  // Serial post-pass tallies (whole-run descriptors).
  metrics::add(m, "city.runs");
  metrics::add(m, "city.sites", summary.sites);
  metrics::add(m, "city.sessions", summary.sessions);
  metrics::add(m, "city.shards", summary.shards);
  metrics::set(m, "city.gain_vs_hd_mesh", summary.gain_vs_hd_mesh);
  metrics::set(m, "city.median_gain_vs_hd_mesh", summary.median_gain_vs_hd_mesh);
  metrics::set(m, "city.total_mbps.ff", summary.ff_total_mbps);
  metrics::set(m, "city.total_mbps.hd_mesh", summary.hd_mesh_total_mbps);
  metrics::set(m, "city.total_mbps.direct", summary.direct_total_mbps);

  CityRun run;
  run.summary = summary;
  run.checksum = checksum;
  return run;
}

}  // namespace ff::city
