#include "city/jsonl.hpp"

#include <stdexcept>
#include <utility>

#include "common/json_writer.hpp"

namespace ff::city {

JsonlWriter::JsonlWriter(std::ostream& os, std::string label)
    : os_(&os), label_(std::move(label)) {}

JsonlWriter::JsonlWriter(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)), label_(path) {
  if (!*owned_)
    throw std::runtime_error("city jsonl: cannot open '" + path + "' for writing");
  os_ = owned_.get();
}

JsonlWriter::~JsonlWriter() {
  if (closed_ || os_ == nullptr) return;
  os_->flush();  // best effort; errors are only surfaced by close()
}

void JsonlWriter::check_stream(const char* what) {
  if (os_->good()) return;
  throw std::runtime_error("city jsonl: short write to '" + label_ + "' (" + what +
                           " after " + std::to_string(lines_) +
                           " complete lines) — results file is truncated");
}

void JsonlWriter::write_line(const std::string& json_object) {
  if (closed_)
    throw std::runtime_error("city jsonl: write to '" + label_ + "' after close()");
  *os_ << json_object << '\n';
  check_stream("write failed");
  ++lines_;
}

void JsonlWriter::close() {
  if (closed_) return;
  os_->flush();
  check_stream("flush failed");
  closed_ = true;
  if (owned_) {
    owned_->close();
    if (!*owned_)
      throw std::runtime_error("city jsonl: closing '" + label_ + "' failed after " +
                               std::to_string(lines_) + " lines");
  }
}

std::string to_jsonl(const SessionResult& r, std::size_t session_index) {
  JsonWriter json;
  json.begin_object();
  json.key("session").value(static_cast<std::uint64_t>(session_index));
  json.key("site").value(static_cast<std::uint64_t>(r.site));
  json.key("client").value(static_cast<std::uint64_t>(r.client));
  json.key("dir").value(to_string(r.direction));
  json.key("x").value(r.client_pos.x);
  json.key("y").value(r.client_pos.y);
  json.key("ff_mbps").value(r.ff_mbps);
  json.key("hd_mesh_mbps").value(r.hd_mesh_mbps);
  json.key("direct_mbps").value(r.direct_mbps);
  json.key("interference_dbm").value(r.interference_dbm);
  json.end_object();
  return json.str();
}

}  // namespace ff::city
