// Streaming JSON-Lines output for per-session city results.
//
// One self-contained JSON object per line (schema `ff-city-session-v1`,
// docs/CITYSIM.md), appended as each shard's serial fold delivers its
// sessions — so the file grows incrementally with bounded memory at any
// city size, and its bytes are identical at any shard/thread count
// (numbers go through JsonWriter's %.6g rule).
//
// Error surfacing: every write is checked against the sink's stream state.
// A short write (disk full, closed pipe, failed flush) raises a
// std::runtime_error naming the sink and the line that failed, instead of
// silently truncating a results file that a later analysis would read as
// complete. close() performs the final flush-and-check; the destructor
// flushes but never throws.
#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "city/city.hpp"

namespace ff::city {

class JsonlWriter {
 public:
  /// Borrow an existing stream (in-memory byte comparisons, tests). `label`
  /// names the sink in error messages.
  explicit JsonlWriter(std::ostream& os, std::string label = "<stream>");

  /// Own a file opened for (truncating) write. Throws std::runtime_error if
  /// it cannot be opened.
  explicit JsonlWriter(const std::string& path);

  ~JsonlWriter();
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Append one serialized JSON object as a line. Throws std::runtime_error
  /// if the sink rejects any byte.
  void write_line(const std::string& json_object);

  /// Flush and verify the sink took every byte; throws on failure. Called
  /// implicitly by the destructor, which swallows the error — call close()
  /// explicitly when you need short writes surfaced.
  void close();

  std::size_t lines_written() const { return lines_; }

 private:
  void check_stream(const char* what);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_ = nullptr;
  std::string label_;
  std::size_t lines_ = 0;
  bool closed_ = false;
};

/// Serialize one session result as its JSONL object (no trailing newline):
///   {"session":12,"site":1,"client":2,"dir":"dl","x":...,"y":...,
///    "ff_mbps":...,"hd_mesh_mbps":...,"direct_mbps":...,
///    "interference_dbm":...}
/// `session` is the global session index (assigned by arrival order, which
/// IS the deterministic global session order).
std::string to_jsonl(const SessionResult& r, std::size_t session_index);

/// SessionSink adapter: streams every session through a JsonlWriter.
class JsonlSessionSink : public SessionSink {
 public:
  explicit JsonlSessionSink(JsonlWriter& writer) : writer_(writer) {}

  void on_session(const SessionResult& r) override {
    writer_.write_line(to_jsonl(r, index_++));
  }

 private:
  JsonlWriter& writer_;
  std::size_t index_ = 0;
};

}  // namespace ff::city
