#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ff::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    FF_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::col_vector(CSpan v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

Matrix Matrix::diagonal(CSpan d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::operator+(const Matrix& o) const {
  FF_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += o.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  FF_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= o.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& o) const {
  FF_CHECK_MSG(cols_ == o.rows_, "matmul shape mismatch " << rows_ << "x" << cols_
                                 << " * " << o.rows_ << "x" << o.cols_);
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex aik = (*this)(i, k);
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) out(i, j) += aik * o(k, j);
    }
  }
  return out;
}

Matrix Matrix::operator*(Complex s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  FF_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(Complex s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::frobenius() const {
  double acc = 0.0;
  for (const Complex x : data_) acc += std::norm(x);
  return std::sqrt(acc);
}

Matrix Matrix::column(std::size_t c) const {
  FF_CHECK(c < cols_);
  Matrix out(rows_, 1);
  for (std::size_t i = 0; i < rows_; ++i) out(i, 0) = (*this)(i, c);
  return out;
}

Matrix operator*(Complex s, const Matrix& m) { return m * s; }

namespace {

/// LU with partial pivoting; returns pivot sign and leaves LU packed in a.
/// Returns false if a pivot underflows (singular to working precision).
bool lu_decompose(Matrix& a, std::vector<std::size_t>& perm, int& sign) {
  const std::size_t n = a.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  sign = 1;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) { best = v; piv = i; }
    }
    if (best < 1e-300) return false;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(perm[k], perm[piv]);
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const Complex f = a(i, k) / a(k, k);
      a(i, k) = f;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
    }
  }
  return true;
}

}  // namespace

Complex determinant(const Matrix& a) {
  FF_CHECK(a.is_square());
  Matrix lu = a;
  std::vector<std::size_t> perm;
  int sign = 0;
  if (!lu_decompose(lu, perm, sign)) return Complex{0.0, 0.0};
  Complex det{static_cast<double>(sign), 0.0};
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

Matrix solve(const Matrix& a, const Matrix& b) {
  FF_CHECK(a.is_square());
  FF_CHECK(a.rows() == b.rows());
  Matrix lu = a;
  std::vector<std::size_t> perm;
  int sign = 0;
  FF_CHECK_MSG(lu_decompose(lu, perm, sign), "solve(): singular matrix");
  const std::size_t n = a.rows();
  Matrix x(n, b.cols());
  for (std::size_t col = 0; col < b.cols(); ++col) {
    // Forward substitution with permuted RHS.
    CVec y(n);
    for (std::size_t i = 0; i < n; ++i) {
      Complex acc = b(perm[i], col);
      for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * y[j];
      y[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      Complex acc = y[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x(j, col);
      x(ii, col) = acc / lu(ii, ii);
    }
  }
  return x;
}

Matrix inverse(const Matrix& a) { return solve(a, Matrix::identity(a.rows())); }

Matrix least_squares(const Matrix& a, const Matrix& b, double ridge) {
  FF_CHECK(a.rows() == b.rows());
  FF_CHECK_MSG(a.rows() >= a.cols(), "least_squares needs rows >= cols");
  // Householder QR on [A; sqrt(ridge) I] with RHS [b; 0].
  const std::size_t extra = ridge > 0.0 ? a.cols() : 0;
  const std::size_t m = a.rows() + extra;
  const std::size_t n = a.cols();
  Matrix r(m, n);
  Matrix qtb(m, b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < n; ++j) r(i, j) = a(i, j);
    for (std::size_t j = 0; j < b.cols(); ++j) qtb(i, j) = b(i, j);
  }
  if (extra > 0) {
    const double s = std::sqrt(ridge);
    for (std::size_t j = 0; j < n; ++j) r(a.rows() + j, j) = s;
  }

  CVec v(m);
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += std::norm(r(i, k));
    const double alpha = std::sqrt(norm_sq);
    if (alpha < 1e-300) continue;
    const Complex rkk = r(k, k);
    const double rkk_abs = std::abs(rkk);
    const Complex phase = rkk_abs > 1e-300 ? rkk / rkk_abs : Complex{1.0, 0.0};
    const Complex beta = -phase * alpha;

    double vnorm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      v[i] = r(i, k);
      if (i == k) v[i] -= beta;
      vnorm_sq += std::norm(v[i]);
    }
    if (vnorm_sq < 1e-300) continue;
    // Apply H = I - 2 v v^H / (v^H v) to R (cols k..n) and qtb.
    for (std::size_t j = k; j < n; ++j) {
      Complex dot{0.0, 0.0};
      for (std::size_t i = k; i < m; ++i) dot += std::conj(v[i]) * r(i, j);
      const Complex f = 2.0 * dot / vnorm_sq;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i];
    }
    for (std::size_t j = 0; j < qtb.cols(); ++j) {
      Complex dot{0.0, 0.0};
      for (std::size_t i = k; i < m; ++i) dot += std::conj(v[i]) * qtb(i, j);
      const Complex f = 2.0 * dot / vnorm_sq;
      for (std::size_t i = k; i < m; ++i) qtb(i, j) -= f * v[i];
    }
  }

  // Back substitution on the upper-triangular n x n block.
  Matrix x(n, b.cols());
  for (std::size_t col = 0; col < b.cols(); ++col) {
    for (std::size_t ii = n; ii-- > 0;) {
      Complex acc = qtb(ii, col);
      for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x(j, col);
      FF_CHECK_MSG(std::abs(r(ii, ii)) > 1e-300, "least_squares: rank-deficient system");
      x(ii, col) = acc / r(ii, ii);
    }
  }
  return x;
}

Svd svd(const Matrix& a) {
  // One-sided Jacobi on columns of a working copy W (starts as A, ends as
  // U * diag(sigma)); V accumulates the rotations.
  const std::size_t m = a.rows(), n = a.cols();
  FF_CHECK(m > 0 && n > 0);
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Compute the 2x2 Gram submatrix for columns p, q.
        Complex apq{0.0, 0.0};
        double app = 0.0, aqq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          apq += std::conj(w(i, p)) * w(i, q);
          app += std::norm(w(i, p));
          aqq += std::norm(w(i, q));
        }
        const double mag = std::abs(apq);
        off += mag * mag;
        if (mag < 1e-30 * std::sqrt(std::max(app * aqq, 1e-300))) continue;

        // Complex Jacobi rotation diagonalizing [[app, apq],[conj(apq), aqq]].
        const Complex phase = apq / mag;
        const double tau = (aqq - app) / (2.0 * mag);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const Complex sp = s * phase;

        for (std::size_t i = 0; i < m; ++i) {
          const Complex wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - std::conj(sp) * wq;
          w(i, q) = sp * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const Complex vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - std::conj(sp) * vq;
          v(i, q) = sp * vp + c * vq;
        }
      }
    }
    if (off < 1e-28) break;
  }

  // Column norms are the singular values.
  std::vector<double> sigma(n);
  Matrix u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm_sq += std::norm(w(i, j));
    sigma[j] = std::sqrt(norm_sq);
    if (sigma[j] > 1e-300)
      for (std::size_t i = 0; i < m; ++i) u(i, j) = w(i, j) / sigma[j];
  }

  // Sort by descending singular value.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return sigma[x] > sigma[y];
  });
  Svd out;
  out.sigma.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.sigma[j] = sigma[order[j]];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = u(i, order[j]);
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, order[j]);
  }
  return out;
}

std::vector<double> singular_values(const Matrix& a) { return svd(a).sigma; }

std::size_t rank(const Matrix& a, double tol) {
  const auto s = singular_values(a);
  if (s.empty() || s[0] <= 0.0) return 0;
  std::size_t r = 0;
  for (const double v : s)
    if (v > tol * s[0]) ++r;
  return r;
}

Eigen hermitian_eigen(const Matrix& a) {
  FF_CHECK(a.is_square());
  const std::size_t n = a.rows();
  Matrix w = a;
  Matrix vecs = Matrix::identity(n);

  for (int sweep = 0; sweep < 60; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Complex apq = w(p, q);
        const double mag = std::abs(apq);
        off += mag * mag;
        if (mag < 1e-30) continue;
        const double app = w(p, p).real(), aqq = w(q, q).real();
        const Complex phase = apq / mag;
        const double tau = (aqq - app) / (2.0 * mag);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const Complex sp = s * phase;

        // W <- J^H W J where J rotates columns p,q.
        for (std::size_t i = 0; i < n; ++i) {
          const Complex wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - std::conj(sp) * wq;
          w(i, q) = sp * wp + c * wq;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const Complex wp = w(p, j), wq = w(q, j);
          w(p, j) = c * wp - sp * wq;
          w(q, j) = std::conj(sp) * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const Complex vp = vecs(i, p), vq = vecs(i, q);
          vecs(i, p) = c * vp - std::conj(sp) * vq;
          vecs(i, q) = sp * vp + c * vq;
        }
      }
    }
    if (off < 1e-28) break;
  }

  Eigen out;
  out.values.resize(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = w(i, i).real();
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return w(x, x).real() < w(y, y).real();
  });
  Eigen sorted;
  sorted.values.resize(n);
  sorted.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted.values[j] = w(order[j], order[j]).real();
    for (std::size_t i = 0; i < n; ++i) sorted.vectors(i, j) = vecs(i, order[j]);
  }
  return sorted;
}

double mimo_capacity(const Matrix& h, double snr_linear) {
  const auto s = singular_values(h);
  const double nt = static_cast<double>(h.cols());
  double cap = 0.0;
  for (const double sv : s) cap += std::log2(1.0 + snr_linear * sv * sv / nt);
  return cap;
}

std::vector<double> water_fill(std::span<const double> gains, double total_power) {
  FF_CHECK(total_power >= 0.0);
  std::vector<double> power(gains.size(), 0.0);
  if (gains.empty() || total_power == 0.0) return power;

  // Sort channel indices by descending gain; add channels while the water
  // level stays above 1/gain.
  std::vector<std::size_t> order(gains.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return gains[a] > gains[b];
  });

  std::size_t active = 0;
  double level = 0.0;
  double inv_sum = 0.0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const double g = gains[order[k]];
    if (g <= 0.0) break;
    inv_sum += 1.0 / g;
    const double candidate = (total_power + inv_sum) / static_cast<double>(k + 1);
    if (candidate < 1.0 / g) break;  // channel k would get negative power
    active = k + 1;
    level = candidate;
  }
  for (std::size_t k = 0; k < active; ++k)
    power[order[k]] = level - 1.0 / gains[order[k]];
  return power;
}

}  // namespace ff::linalg
