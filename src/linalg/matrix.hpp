// Small dense complex matrix library.
//
// The MIMO channels in this system are tiny (2x2 to 4x4), but the digital
// cancellation least-squares problems involve tall skinny systems with a few
// hundred columns, so the implementation is dense, allocation-friendly, and
// favours numerical robustness (Householder QR, Jacobi SVD) over asymptotic
// speed.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "common/types.hpp"

namespace ff::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex{}) {}
  /// Row-major construction from nested initializer lists.
  Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }
  /// Column vector from a span.
  static Matrix col_vector(CSpan v);
  /// Diagonal matrix from a span.
  static Matrix diagonal(CSpan d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool is_square() const { return rows_ == cols_ && rows_ > 0; }

  Complex& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Complex& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  const CVec& data() const { return data_; }

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(Complex s) const;
  Matrix& operator+=(const Matrix& o);
  Matrix& operator*=(Complex s);

  /// Conjugate transpose.
  Matrix adjoint() const;
  /// Plain transpose.
  Matrix transpose() const;

  /// Frobenius norm.
  double frobenius() const;

  /// Extract column c as a vector (rows x 1 matrix).
  Matrix column(std::size_t c) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  CVec data_;
};

Matrix operator*(Complex s, const Matrix& m);

/// Determinant via LU with partial pivoting. Requires square.
Complex determinant(const Matrix& a);

/// Inverse via LU. Throws on (numerically) singular input.
Matrix inverse(const Matrix& a);

/// Solve A x = b (A square) via LU with partial pivoting.
Matrix solve(const Matrix& a, const Matrix& b);

/// Least squares: minimize ||A x - b||_2 (+ ridge * ||x||_2) by Householder QR
/// on the (optionally) augmented system. A must have rows >= cols.
Matrix least_squares(const Matrix& a, const Matrix& b, double ridge = 0.0);

/// Singular values (descending) via one-sided Jacobi. Works for any shape.
std::vector<double> singular_values(const Matrix& a);

struct Svd {
  Matrix u;                      // rows x k
  std::vector<double> sigma;     // k singular values, descending
  Matrix v;                      // cols x k  (A = U diag(sigma) V^H)
};

/// Thin SVD via one-sided Jacobi.
Svd svd(const Matrix& a);

/// Numerical rank: number of singular values > tol * max(sigma).
std::size_t rank(const Matrix& a, double tol = 1e-9);

/// Eigen-decomposition of a Hermitian matrix via cyclic Jacobi rotations.
struct Eigen {
  std::vector<double> values;  // ascending
  Matrix vectors;              // columns are eigenvectors
};
Eigen hermitian_eigen(const Matrix& a);

/// Shannon capacity (bits/s/Hz) of a MIMO channel H at per-stream SNR
/// `snr_linear` with equal power allocation: sum log2(1 + snr * s_i^2 / Nt).
double mimo_capacity(const Matrix& h, double snr_linear);

/// Water-filling power allocation over parallel channel gains
/// (gains_i = |h_i|^2 / noise_i), total power constraint `total_power`.
/// Returns per-channel powers summing to total_power.
std::vector<double> water_fill(std::span<const double> gains, double total_power);

}  // namespace ff::linalg
