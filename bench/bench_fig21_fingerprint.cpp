// Figure 21: false-positive and false-negative rates of the uplink sender-
// identification fingerprinting (Sec. 6.1), for the aggressive and passive
// thresholds. Paper: 4 clients x 100 locations x >= 1000 packets; the
// aggressive setting achieves essentially zero false positives at ~5% false
// negatives; the passive setting trades the other way.
#include "bench_common.hpp"
#include "channel/propagation.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/noise.hpp"
#include "ident/stf_fingerprint.hpp"
#include "phy/preamble.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 21 — uplink channel-fingerprint identification (aggressive vs passive)");

  const phy::OfdmParams params;
  const double kFs = params.sample_rate_hz;
  const auto plan = channel::FloorPlan::paper_home();
  const channel::IndoorPropagation model(plan);
  // Relay near a corner: client distances then span the whole plan, which
  // spreads the bulk-delay component of the fingerprints apart.
  const channel::Point relay_pos{0.8, 0.7};

  constexpr int kClients = 4;
  constexpr int kLocations = 100;
  constexpr int kPacketsPerClient = 40;  // per location; 16k packets total

  struct Rates {
    std::vector<double> fn, fp;  // per-location percentages
  };
  Rates aggressive, passive;

  const CVec stf = phy::stf_time(params);

  for (int loc = 0; loc < kLocations; ++loc) {
    Rng rng(static_cast<unsigned>(1000 + loc));
    // Place the 4 clients for this trial and build their uplink channels.
    std::vector<channel::MultipathChannel> chans;
    for (int c = 0; c < kClients; ++c)
      chans.push_back(model.siso_link(random_client_location(plan, rng), relay_pos, rng));

    for (const bool use_aggressive : {true, false}) {
      ident::StfFingerprinter fp(params, use_aggressive ? ident::aggressive_config()
                                                        : ident::passive_config());
      // Enrollment per client (identity known, e.g. poll replies); the relay
      // keeps refining its estimate over many packets, modelled as one
      // high-effective-SNR measurement.
      for (int c = 0; c < kClients; ++c) {
        CVec rx = chans[static_cast<std::size_t>(c)].apply(stf, kFs);
        const double p = dsp::mean_power(rx);
        dsp::add_awgn(rng, rx, p * power_from_db(-38.0));
        fp.enroll_from_stf(static_cast<std::uint32_t>(c + 1), rx);
      }
      int fn = 0, fpos = 0, total = 0;
      for (int pkt = 0; pkt < kPacketsPerClient; ++pkt) {
        for (int c = 0; c < kClients; ++c) {
          CVec rx = chans[static_cast<std::size_t>(c)].apply(stf, kFs);
          const double p = dsp::mean_power(rx);
          // Per-packet SNR jitter + random carrier phase (oscillator drift).
          dsp::add_awgn(rng, rx, p * power_from_db(-rng.uniform(20.0, 30.0)));
          const Complex rot = rng.unit_phasor();
          for (auto& s : rx) s *= rot;
          const auto match = fp.identify(rx);
          ++total;
          if (!match)
            ++fn;
          else if (match->client != static_cast<std::uint32_t>(c + 1))
            ++fpos;
        }
      }
      auto& rates = use_aggressive ? aggressive : passive;
      rates.fn.push_back(100.0 * fn / total);
      rates.fp.push_back(100.0 * fpos / total);
    }
  }

  Table t({"metric", "median %", "p90 %", "mean %", "paper"});
  const auto add = [&](const char* name, std::vector<double> v, const char* paper_note) {
    t.row({name, Table::num(median(v), 2), Table::num(percentile(v, 90), 2),
           Table::num(mean(v), 2), paper_note});
  };
  add("false negative (aggressive)", aggressive.fn, "[~5%]");
  add("false positive (aggressive)", aggressive.fp, "[~0%]");
  add("false negative (passive)", passive.fn, "[lower than aggressive]");
  add("false positive (passive)", passive.fp, "[higher than aggressive]");
  t.print();

  std::printf("\nCDF of per-location rates (percent):\n");
  print_cdf_columns({"FN aggr", "FP aggr", "FN passive", "FP passive"},
                    {aggressive.fn, aggressive.fp, passive.fn, passive.fp}, 10);
  return 0;
}
