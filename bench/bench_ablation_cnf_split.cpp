// Ablation: how should the constructive filter be realized?
//   ideal        — the exact per-subcarrier rotation (not implementable),
//   split        — the paper's 4-tap digital pre-filter + analog rotator,
//   analog-only  — one frequency-flat rotation for the whole band,
//   digital-only — the same tap budget without the analog stage.
// Reports the approximation error and the end-to-end throughput cost.
#include "bench_common.hpp"
#include "common/units.hpp"
#include "eval/schemes.hpp"
#include "relay/digital_prefilter.hpp"

int main() {
  using namespace ffbench;
  print_banner("Ablation — CNF filter realization (Sec. 3.4 design choices)");

  TestbedConfig tb;
  tb.antennas = 1;  // SISO isolates the filter question
  const auto freqs = tb.ofdm.used_subcarrier_freqs();

  // Filter-approximation error across many links.
  std::vector<double> err_split, err_analog, err_digital;
  std::vector<double> tput_ideal, tput_split, tput_analog;
  int seed = 0;
  for (const auto& plan : channel::FloorPlan::evaluation_set()) {
    const auto placement = make_placement(plan);
    for (int c = 0; c < 15; ++c) {
      Rng rng(static_cast<unsigned>(3000 + seed++));
      const auto client = random_client_location(plan, rng);
      const auto link = build_link(placement, client, tb, rng);
      CVec h_sd(56), h_sr(56), h_rd(56);
      for (std::size_t i = 0; i < 56; ++i) {
        h_sd[i] = link.h_sd[i](0, 0);
        h_sr[i] = link.h_sr[i](0, 0);
        h_rd[i] = link.h_rd[i](0, 0);
      }
      const CVec ideal = relay::cnf_siso_ideal(h_sd, h_sr, h_rd);
      err_split.push_back(relay::design_cnf_split(ideal, freqs).error_db);
      err_analog.push_back(relay::design_analog_only(ideal, freqs).error_db);
      err_digital.push_back(relay::design_digital_only(ideal, freqs).error_db);

      // Throughput with each realization.
      relay::DesignOptions ideal_opts;
      ideal_opts.use_realized_split = false;
      relay::DesignOptions split_opts;
      split_opts.f_grid_hz = freqs;
      tput_ideal.push_back(
          relayed_rate(link, relay::design_ff_relay(link, ideal_opts)).throughput_mbps);
      tput_split.push_back(
          relayed_rate(link, relay::design_ff_relay(link, split_opts)).throughput_mbps);
      // Analog-only realization: flatten the filter to its band mean.
      auto d = relay::design_ff_relay(link, ideal_opts);
      const auto analog = relay::design_analog_only(ideal, freqs);
      for (std::size_t i = 0; i < 56; ++i) {
        const Complex f = analog.realized[i];
        d.h_eff[i] = linalg::Matrix{
            {h_sd[i] + h_rd[i] * f * amplitude_from_db(d.amp.gain_db) * h_sr[i]}};
      }
      tput_analog.push_back(relayed_rate(link, d).throughput_mbps);
    }
  }

  Table t({"realization", "median approx error (dB)", "median FF tput (Mbps)"});
  t.row({"ideal rotation", "-inf", Table::num(median(tput_ideal), 1)});
  t.row({"digital+analog split (paper)", Table::num(median(err_split), 1),
         Table::num(median(tput_split), 1)});
  t.row({"analog only", Table::num(median(err_analog), 1),
         Table::num(median(tput_analog), 1)});
  t.row({"digital only (same taps)", Table::num(median(err_digital), 1), "-"});
  t.print();

  std::printf(
      "\nTakeaways: the split tracks the ideal rotation closely; a single\n"
      "frequency-flat analog rotation cannot follow frequency-selective\n"
      "channels; the digital-only fit matches the split numerically in\n"
      "baseband but gives up the analog stage's quantization-free fine\n"
      "rotation and its RF-domain insertion point (Sec. 3.4).\n");
  return 0;
}
