// Sec. 3.3 experimental result: total self-interference cancellation across
// relay placements. Paper: "our design consistently achieves between
// 108-110dB of cancellation", with analog contributing ~70 dB; 110 dB is
// the physical ceiling (20 dBm TX over a -90 dBm noise floor).
#include "bench_common.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"
#include "dsp/noise.hpp"
#include "fullduplex/si_channel.hpp"
#include "fullduplex/stack.hpp"

int main() {
  using namespace ffbench;
  print_banner("Sec. 3.3 — self-interference cancellation across placements");

  constexpr double kFs = 20e6;
  constexpr double kTx = 20.0;      // dBm
  constexpr double kFloor = -90.0;  // dBm

  Table t({"placement", "analog (dB)", "total (dB)", "residual (dBm)"});
  std::vector<double> totals;

  for (int placement = 1; placement <= 8; ++placement) {
    Rng rng(static_cast<unsigned>(placement));
    const auto si = fd::make_si_channel(rng);
    const CVec si_fir = fd::si_loop_fir(si, kFs);

    // Training record: relay forwards a delayed copy of a remote source and
    // injects the Gaussian probe (the Sec. 3.3 tuning procedure).
    const std::size_t n = 16000;
    CVec source = dsp::awgn_dbm(rng, n, -70.0);
    CVec tx(n, Complex{});
    for (std::size_t i = 2; i < n; ++i) tx[i] = source[i - 2];
    dsp::set_mean_power(tx, power_from_db(kTx));
    const CVec probe = fd::inject_probe(rng, tx, 30.0);
    const CVec si_sig = dsp::filter(si_fir, tx);
    CVec rx(n);
    const CVec thermal = dsp::awgn_dbm(rng, n, kFloor);
    for (std::size_t i = 0; i < n; ++i) rx[i] = source[i] + si_sig[i] + thermal[i];

    fd::CancellationStack stack;
    stack.tune(tx, probe, rx);

    // Measurement record: SI-only (the paper measures while the relay
    // receives and re-transmits; residual is read under the noise floor).
    Rng rng2(static_cast<unsigned>(placement + 50));
    CVec src2 = dsp::awgn_dbm(rng2, n, -70.0);
    CVec tx2(n, Complex{});
    for (std::size_t i = 2; i < n; ++i) tx2[i] = src2[i - 2];
    dsp::set_mean_power(tx2, power_from_db(kTx));
    const CVec si2 = dsp::filter(si_fir, tx2);
    CVec meas(n);
    const CVec th2 = dsp::awgn_dbm(rng2, n, kFloor);
    for (std::size_t i = 0; i < n; ++i) meas[i] = si2[i] + th2[i];

    const CVec after_analog = stack.apply_analog_only(tx2, si2);
    const CVec after_all = stack.apply(tx2, meas);
    const double analog_db = kTx - dsp::mean_power_db(after_analog);
    const double total_db = kTx - dsp::mean_power_db(after_all);
    totals.push_back(total_db);
    t.row({std::to_string(placement), Table::num(analog_db, 1), Table::num(total_db, 1),
           Table::num(dsp::mean_power_db(after_all), 1)});
  }
  t.print();

  std::printf("\nHeadline numbers (paper in brackets):\n");
  std::printf("  total cancellation range: %.1f - %.1f dB   [108-110 dB, ceiling 110 dB]\n",
              percentile(totals, 0), percentile(totals, 100));
  return 0;
}
