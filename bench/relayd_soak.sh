#!/usr/bin/env bash
# relayd_soak: the ffrelayd daemon smoke (ctest -L daemon).
#
# Derives a soak variant of examples/relay.ff — fault injection on the
# relay path (eval/faults, corruption scaled to the channel-attenuated
# signal so the decode survives), a longer packet train, and the sink
# replaced by a listening SocketSink — then runs the daemon against it and
# exercises every runtime surface of one live session:
#
#   * a receiver client starts the session and decodes the stream (crc=OK)
#   * control reads and a write land MID-STREAM (read relay.scrubbed,
#     read faults.corrupted, write src_cfo.set_cfo <same value>)
#   * a second receiver during the session is rejected with FFERR busy
#   * periodic ff-metrics-v1 snapshots are written atomically (>= 2 by
#     the time the session ends) and carry the serve.* counters
#   * `shutdown` over the control socket ends the daemon with exit 0
#
# Usage: relayd_soak.sh <ffrelayd> <ffrelay_client> <relay.ff> <work_dir>
set -euo pipefail

FFRELAYD=$1
CLIENT=$2
GRAPH=$3
WORK=$4

DIR=$(mktemp -d "$WORK/relayd_soak.XXXXXX")
DPID=""
RPID=""
cleanup() {
  [ -n "$RPID" ] && kill "$RPID" 2>/dev/null || true
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

OUT_EP="unix:$DIR/out.sock"
CTL_EP="unix:$DIR/ctl.sock"
SNAP="$DIR/metrics.json"

# The soak graph: more packets (a few seconds of streaming so the control
# traffic genuinely lands mid-session), faults on the S->R path, socket sink.
sed -e "s|^sink :: AccumulatorSink;|sink :: SocketSink(endpoint=$OUT_EP, listen=true);|" \
    -e "s|packets=78|packets=300|" \
    -e "s|chan_sr -> relay;|chan_sr -> faults;\nfaults -> relay;|" \
    -e "/^add :: Add2;/i\\
faults :: Fault(corrupt=0.02, corrupt_amplitude=0.001, seed=7);" \
    "$GRAPH" > "$DIR/soak.ff"
grep -q "faults :: Fault" "$DIR/soak.ff" || { echo "FAIL: graph rewrite lost the Fault element"; exit 1; }
grep -q "SocketSink" "$DIR/soak.ff" || { echo "FAIL: graph rewrite lost the SocketSink"; exit 1; }

"$FFRELAYD" --graph "$DIR/soak.ff" --control "$CTL_EP" \
            --snapshot "$SNAP" --snapshot-period 0.2 > "$DIR/daemon.log" 2>&1 &
DPID=$!

# Wait for the control plane to come up.
ok=""
for _ in $(seq 100); do
  if [ -S "$DIR/ctl.sock" ] && "$CLIENT" --ctl "$CTL_EP" --cmd ping > /dev/null 2>&1; then
    ok=1; break
  fi
  sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: control socket never came up"; cat "$DIR/daemon.log"; exit 1; }
"$CLIENT" --ctl "$CTL_EP" --cmd stats | grep -q "sessions_started=0" \
  || { echo "FAIL: daemon not idle at start"; exit 1; }

# The receiver connection admits the session; decode must report crc=OK.
"$CLIENT" --recv "$OUT_EP" --decode > "$DIR/recv.log" 2>&1 &
RPID=$!

ok=""
for _ in $(seq 200); do
  if "$CLIENT" --ctl "$CTL_EP" --cmd stats | grep -q "active=1"; then ok=1; break; fi
  sleep 0.05
done
[ -n "$ok" ] || { echo "FAIL: session never started"; cat "$DIR/daemon.log"; exit 1; }

# Mid-stream control traffic: two reads and a (value-preserving) write.
"$CLIENT" --ctl "$CTL_EP" \
          --cmd "read relay.scrubbed" \
          --cmd "read faults.corrupted" \
          --cmd "read sink.connected" \
          --cmd "write src_cfo.set_cfo 4036.5099826284422" > "$DIR/ctl.log" \
  || { echo "FAIL: mid-stream control commands failed"; cat "$DIR/ctl.log" "$DIR/daemon.log"; exit 1; }

# Admission control: a second receiver during the session must be refused
# with a structured FFERR line (client exits 3 on FFERR).
if "$CLIENT" --recv "$OUT_EP" --timeout 5 > "$DIR/reject.log" 2>&1; then
  echo "FAIL: second concurrent client was not rejected"; exit 1
fi
grep -q "busy" "$DIR/reject.log" \
  || { echo "FAIL: rejection carried no busy code"; cat "$DIR/reject.log"; exit 1; }

# Drain the session: the receiver must exit 0 with a clean decode.
if ! wait "$RPID"; then
  echo "FAIL: receiver exited non-zero"; cat "$DIR/recv.log" "$DIR/daemon.log"; exit 1
fi
RPID=""
grep -q "crc=OK" "$DIR/recv.log" \
  || { echo "FAIL: no crc=OK in receiver output"; cat "$DIR/recv.log"; exit 1; }

ok=""
for _ in $(seq 100); do
  if "$CLIENT" --ctl "$CTL_EP" --cmd stats | grep -q "sessions_completed=1"; then ok=1; break; fi
  sleep 0.05
done
[ -n "$ok" ] || { echo "FAIL: session never reaped as completed"; exit 1; }

# Snapshot validity: schema tag, serve.* counters, and at least 2 periodic
# writes recorded by the time the session ended.
"$CLIENT" --ctl "$CTL_EP" --cmd snapshot > /dev/null
grep -q '"schema":"ff-metrics-v1"' "$SNAP" || { echo "FAIL: snapshot lacks schema tag"; exit 1; }
grep -q "serve.sessions_started" "$SNAP" || { echo "FAIL: snapshot lacks serve counters"; exit 1; }
written=$(sed -n 's/.*"name":"serve.snapshots_written","value":\([0-9]*\).*/\1/p' "$SNAP")
[ -n "$written" ] && [ "$written" -ge 2 ] \
  || { echo "FAIL: expected >= 2 periodic snapshots, counter says '${written:-missing}'"; exit 1; }

# Clean shutdown through the control plane.
"$CLIENT" --ctl "$CTL_EP" --cmd shutdown > /dev/null
if ! wait "$DPID"; then
  echo "FAIL: daemon exited non-zero after shutdown"; cat "$DIR/daemon.log"; exit 1
fi
DPID=""

echo "relayd soak OK: session decoded crc=OK with live control traffic," \
     "admission rejection, $written periodic snapshots, clean shutdown"
