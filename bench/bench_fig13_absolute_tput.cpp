// Figure 13: CDF of absolute 2x2 MIMO PHY-layer throughput for the three
// schemes. Paper: a fifth of AP-only locations sit in a dead zone near
// 0 Mbps; FF lifts the whole distribution, topping out near the 2-stream
// MCS ceiling (~150 Mbps class).
#include "bench_common.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 13 — absolute 2x2 MIMO PHY throughput (Mbps)");

  const auto results = standard_run();
  const auto ap = results.throughputs(Scheme::kApOnly);
  const auto hd = results.throughputs(Scheme::kHdMesh);
  const auto ff = results.throughputs(Scheme::kFastForward);

  print_cdf_columns({"AP only", "AP+HD mesh", "AP+FF relay"}, {ap, hd, ff});

  int dead_ap = 0, dead_ff = 0;
  for (std::size_t i = 0; i < ap.size(); ++i) {
    if (ap[i] < 1.0) ++dead_ap;
    if (ff[i] < 1.0) ++dead_ff;
  }
  std::printf("\nHeadline numbers (paper in brackets):\n");
  std::printf("  AP-only median: %.1f Mbps; FF median: %.1f Mbps\n", median(ap), median(ff));
  std::printf("  AP-only dead zones (<1 Mbps): %.0f%%   [~20%% of locations near zero]\n",
              100.0 * dead_ap / static_cast<double>(ap.size()));
  std::printf("  FF dead zones: %.0f%%   [FF gives 'significant throughput for nodes that\n"
              "  were previously almost getting no connectivity']\n",
              100.0 * dead_ff / static_cast<double>(ff.size()));
  return 0;
}
