// Extension: the Fig. 15b rank-expansion mechanism on REAL decoded packets.
//
// For keyhole-degraded clients (behind the home's interior wall), send
// 2-stream packets with and without the relay and report per-stream CRC and
// SNR — the sample-level ground truth behind the frequency-domain Fig. 15b
// numbers.
#include "bench_common.hpp"
#include "common/units.hpp"
#include "eval/mimo_timedomain.hpp"

int main() {
  using namespace ffbench;
  print_banner("MIMO extension — 2-stream packets with/without FF (sample-level)");

  TestbedConfig cfg;  // 2x2
  const auto plan = channel::FloorPlan::paper_home();
  const auto placement = make_placement(plan);
  const phy::OfdmParams params;

  Table t({"client", "sv2/sv1", "streams ok (AP)", "streams ok (FF)",
           "stream SNRs AP (dB)", "stream SNRs FF (dB)"});

  int ap_streams_total = 0, ff_streams_total = 0, rows = 0;
  for (int seed = 0; seed < 24 && rows < 10; ++seed) {
    Rng rng(static_cast<unsigned>(40 + seed));
    const channel::Point client{rng.uniform(4.5, 8.5), rng.uniform(4.2, 6.2)};
    auto link = build_mimo_td_link(placement, client, cfg, rng);

    const auto sv = linalg::singular_values(link.sd.response(0.0));
    const double ratio = sv[1] / std::max(sv[0], 1e-30);
    const double snr1 = link.source_power_dbm + db_from_power(sv[0] * sv[0]) + 90.0;
    if (snr1 < 10.0 || snr1 > 30.0) continue;
    ++rows;

    MimoTdOptions base;
    base.use_relay = false;
    base.mcs_index = 1;
    Rng rng2(static_cast<unsigned>(140 + seed));
    const auto ap = run_mimo_td_packet(link, base, rng2);

    MimoTdOptions with;
    with.mcs_index = 1;
    with.bank = make_mimo_relay_bank(link, params);
    Rng rng3(static_cast<unsigned>(240 + seed));
    const auto ff = run_mimo_td_packet(link, with, rng3);

    const auto count_ok = [](const MimoTdResult& r) {
      int ok = 0;
      for (const bool b : r.stream_crc_ok) ok += b;
      return ok;
    };
    const auto snrs = [](const MimoTdResult& r) {
      if (!r.decoded) return std::string("-");
      std::string s;
      for (const double v : r.stream_snr_db) s += Table::num(v, 1) + " ";
      return s;
    };
    ap_streams_total += count_ok(ap);
    ff_streams_total += count_ok(ff);
    char pos[32];
    std::snprintf(pos, sizeof pos, "(%.1f,%.1f)", client.x, client.y);
    t.row({pos, Table::num(ratio, 3), std::to_string(count_ok(ap)) + "/2",
           std::to_string(count_ok(ff)) + "/2", snrs(ap), snrs(ff)});
  }
  t.print();
  std::printf("\nStream-decodes across all clients: AP only %d, with FF %d\n"
              "(the relay's independent path is what carries the second stream\n"
              "through the pinhole, Sec. 5.3).\n",
              ap_streams_total, ff_streams_total);
  return 0;
}
