// Extension: the Fig. 16 latency sweep repeated at LTE numerology.
//
// The paper designs to WiFi's 100 ns budget and argues the techniques
// "will work for LTE too since it has a longer CP" (4.69 us vs 400 ns).
// This sweep shows the two regimes side by side: WiFi collapses and goes
// below 1 within a few hundred ns; LTE stays ISI-free out to microseconds.
#include "bench_common.hpp"
#include "eval/timedomain.hpp"

int main() {
  using namespace ffbench;
  print_banner("LTE extension — median gain vs relay latency (WiFi CP 400 ns vs LTE 4.69 us)");

  const auto plan = channel::FloorPlan::two_wide_rooms();
  const auto placement = make_placement(plan);

  struct Numerology {
    const char* name;
    phy::OfdmParams params;
  };
  const Numerology numerologies[] = {{"WiFi 20 MHz", phy::OfdmParams::wifi20()},
                                     {"LTE 5 MHz", phy::OfdmParams::lte5()}};

  Table t({"extra buffering (ns)", "WiFi median gain", "LTE median gain"});
  const double sweep_ns[] = {0.0, 200.0, 400.0, 800.0, 1600.0, 3200.0};
  std::vector<std::vector<double>> medians(2);

  for (int ni = 0; ni < 2; ++ni) {
    const auto& num = numerologies[ni];
    TestbedConfig tb;
    tb.antennas = 1;
    tb.ofdm = num.params;

    // Fixed location set with baselines.
    struct Loc {
      TimeDomainLink link;
      double baseline;
    };
    std::vector<Loc> locs;
    for (int c = 0; c < 16; ++c) {
      Rng rng(static_cast<unsigned>(600 + c));
      const auto client = random_client_location(plan, rng);
      Loc l;
      l.link = build_td_link(placement, client, tb, rng);
      if (ni == 1) l.link.source_cfo_hz *= 0.05;  // LTE-scale oscillators
      TdRunOptions base;
      base.params = num.params;
      base.use_relay = false;
      Rng rng2(static_cast<unsigned>(800 + c));
      l.baseline = run_td_packet(l.link, base, rng2).throughput_mbps;
      locs.push_back(std::move(l));
    }

    for (const double extra : sweep_ns) {
      std::vector<double> gains;
      int seed = 0;
      for (const auto& l : locs) {
        ++seed;
        if (l.baseline <= 0.0) continue;
        TdRunOptions o;
        o.params = num.params;
        o.pipeline = make_ff_pipeline(l.link, num.params, extra * 1e-9);
        Rng rng(static_cast<unsigned>(17000 + seed + ni * 100));
        gains.push_back(run_td_packet(l.link, o, rng).throughput_mbps / l.baseline);
      }
      medians[static_cast<std::size_t>(ni)].push_back(gains.empty() ? 0.0 : median(gains));
    }
  }

  for (std::size_t i = 0; i < std::size(sweep_ns); ++i)
    t.row({Table::num(sweep_ns[i], 0), Table::num(medians[0][i], 2),
           Table::num(medians[1][i], 2)});
  t.print();
  std::printf("\nWiFi's relayed copy exits the 400 ns CP within this sweep (gain < 1);\n"
              "LTE's 4.69 us CP keeps the relayed copy ISI-free throughout.\n");
  return 0;
}
