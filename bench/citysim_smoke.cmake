# citysim-smoke: validate the "city" object (v4, schema now v5) bench_runtime emits and the
# citysim example's streamed JSONL output.
#
# bench_runtime side: run a tiny 2x2 city and require the BENCH JSON to
# carry a "city" object with the grid echoed back, a positive
# client_sessions_per_sec, non-empty throughput CDF, FF/HD-mesh gain fields,
# deterministic = ON (checksums AND JSONL bytes identical across the shard x
# thread grid — a violation also fails bench_runtime's exit code), and
# exactly one of speedup_vs_1t / skipped_reason (single visible CPU).
#
# citysim side: run the example with --jsonl and require one well-formed
# ff-city-session-v1 JSON object per line, sessions = sites x clients x 2
# lines in global session order, and the summary line on stdout.
#
# Invoked by CTest as:
#   cmake -DBENCH_RUNTIME=<path> -DCITYSIM=<path> -DWORK_DIR=<dir>
#         -P citysim_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)
if(NOT BENCH_RUNTIME)
  message(FATAL_ERROR "pass -DBENCH_RUNTIME=<path to bench_runtime>")
endif()
if(NOT CITYSIM)
  message(FATAL_ERROR "pass -DCITYSIM=<path to the citysim example>")
endif()
if(NOT WORK_DIR)
  set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(bench_json ${WORK_DIR}/BENCH_runtime_citysim_smoke.json)
execute_process(
  COMMAND ${BENCH_RUNTIME} --clients 2 --reps 1 --duration 5e-4
          --city-grid 2 --city-clients 2
          --out ${bench_json}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_runtime failed (rc=${rc}); a nonzero exit also "
                      "means a determinism violation.\n${out}\n${err}")
endif()

file(READ ${bench_json} doc)

string(JSON schema ERROR_VARIABLE jerr GET "${doc}" schema)
if(jerr)
  message(FATAL_ERROR "bench JSON does not parse: ${jerr}")
endif()
if(NOT schema STREQUAL "ff-bench-runtime-v5")
  message(FATAL_ERROR "unexpected schema tag '${schema}' (want ff-bench-runtime-v5)")
endif()

# The v4 city object: config echoed back, session count consistent.
string(JSON grid ERROR_VARIABLE jerr GET "${doc}" city grid)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v4 'city' object: ${jerr}")
endif()
if(NOT grid EQUAL 2)
  message(FATAL_ERROR "city.grid = ${grid}, expected the requested 2")
endif()
string(JSON sessions GET "${doc}" city sessions)
if(NOT sessions EQUAL 16)
  message(FATAL_ERROR "city.sessions = ${sessions}, expected 2x2 sites x 2 "
                      "clients x 2 directions = 16")
endif()

foreach(field wall_ms_1t wall_ms client_sessions_per_sec
        ff_total_mbps hd_mesh_total_mbps direct_total_mbps
        gain_vs_hd_mesh median_gain_vs_hd_mesh)
  string(JSON v ERROR_VARIABLE jerr GET "${doc}" city ${field})
  if(jerr)
    message(FATAL_ERROR "city object missing '${field}': ${jerr}")
  endif()
  if(NOT v GREATER 0)
    message(FATAL_ERROR "city.${field} = ${v}, expected > 0")
  endif()
endforeach()

# The whole-city FF throughput CDF must be present, non-empty, and end at
# cumulative probability 1.
string(JSON ncdf ERROR_VARIABLE jerr LENGTH "${doc}" city throughput_cdf_mbps)
if(jerr)
  message(FATAL_ERROR "city object missing 'throughput_cdf_mbps' array: ${jerr}")
endif()
if(NOT ncdf GREATER 0)
  message(FATAL_ERROR "city.throughput_cdf_mbps is empty")
endif()
math(EXPR last "${ncdf} - 1")
string(JSON lastp GET "${doc}" city throughput_cdf_mbps ${last} p)
if(NOT lastp EQUAL 1)
  message(FATAL_ERROR "city CDF ends at p=${lastp}, expected 1")
endif()

# Determinism across the shard x thread grid (checksums and JSONL bytes).
string(JSON det GET "${doc}" city deterministic)
if(NOT det STREQUAL "ON")
  message(FATAL_ERROR "city.deterministic = ${det}: results were not "
                      "bit-identical across shard / thread counts")
endif()
string(JSON checksum GET "${doc}" city checksum)
if(NOT checksum MATCHES "^[0-9a-f]+$")
  message(FATAL_ERROR "city.checksum '${checksum}' is not a hex FNV-1a digest")
endif()

# The honest-perf rule: a speedup ratio on multi-core hosts, an explicit
# skipped_reason on single-CPU ones — never both, never neither.
string(JSON speedup ERROR_VARIABLE sp_err GET "${doc}" city speedup_vs_1t)
string(JSON skipped ERROR_VARIABLE sk_err GET "${doc}" city skipped_reason)
if(sp_err AND sk_err)
  message(FATAL_ERROR "city carries neither speedup_vs_1t nor skipped_reason; "
                      "one of the two must explain the perf claim")
endif()
if(NOT sp_err AND NOT sk_err)
  message(FATAL_ERROR "city carries both speedup_vs_1t and skipped_reason; "
                      "they are mutually exclusive")
endif()

message(STATUS "citysim smoke OK: v4 city object valid in ${bench_json}")

# ---- the citysim example: streamed per-session JSONL.
set(jsonl ${WORK_DIR}/citysim_smoke.jsonl)
execute_process(
  COMMAND ${CITYSIM} 2 2 --clients 2 --seed 7 --shards 4 --jsonl ${jsonl}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "citysim failed (rc=${rc}).\n${out}\n${err}")
endif()
if(NOT out MATCHES "FF gain vs HD mesh:")
  message(FATAL_ERROR "citysim did not print the gain summary line.\n${out}")
endif()

file(STRINGS ${jsonl} lines)
list(LENGTH lines nlines)
if(NOT nlines EQUAL 16)
  message(FATAL_ERROR "expected 16 JSONL lines (2x2 sites x 2 clients x 2 "
                      "directions), got ${nlines} in ${jsonl}")
endif()
set(i 0)
foreach(line IN LISTS lines)
  string(JSON sess ERROR_VARIABLE jerr GET "${line}" session)
  if(jerr)
    message(FATAL_ERROR "JSONL line ${i} does not parse: ${jerr}\n${line}")
  endif()
  if(NOT sess EQUAL ${i})
    message(FATAL_ERROR "JSONL line ${i} carries session=${sess}: the stream "
                        "is not in global session order")
  endif()
  foreach(field site client dir x y ff_mbps hd_mesh_mbps direct_mbps interference_dbm)
    string(JSON v ERROR_VARIABLE jerr GET "${line}" ${field})
    if(jerr)
      message(FATAL_ERROR "JSONL line ${i} missing '${field}': ${jerr}\n${line}")
    endif()
  endforeach()
  math(EXPR i "${i} + 1")
endforeach()

message(STATUS "citysim smoke OK: ${jsonl} is ${nlines} well-formed "
               "ff-city-session-v1 lines in session order")
