# streaming-smoke: run bench_runtime with a short stream session and
# validate the stream_relay entries in the emitted ff-bench-runtime-v2 JSON:
# the kernels array must carry a stream_relay row, the top-level "stream"
# object must report throughput and per-block latency, and its determinism
# flag (output checksum identical across block sizes and thread counts) must
# be true. bench_runtime exits non-zero on a violation, which is also caught.
#
# Invoked by CTest as:
#   cmake -DBENCH_RUNTIME=<path> -DWORK_DIR=<dir> -P streaming_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)
if(NOT BENCH_RUNTIME)
  message(FATAL_ERROR "pass -DBENCH_RUNTIME=<path to bench_runtime>")
endif()
if(NOT WORK_DIR)
  set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(bench_json ${WORK_DIR}/BENCH_runtime_streaming_smoke.json)
execute_process(
  COMMAND ${BENCH_RUNTIME} --clients 2 --reps 1
          --duration 5e-4 --block-size 64 --backpressure 4
          --out ${bench_json}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_runtime failed (rc=${rc}); a nonzero exit also "
                      "means a determinism violation.\n${out}\n${err}")
endif()

file(READ ${bench_json} doc)

string(JSON schema ERROR_VARIABLE jerr GET "${doc}" schema)
if(jerr)
  message(FATAL_ERROR "bench JSON does not parse: ${jerr}")
endif()
if(NOT schema STREQUAL "ff-bench-runtime-v2")
  message(FATAL_ERROR "unexpected schema tag '${schema}' (want ff-bench-runtime-v2)")
endif()

# v2 build/runtime provenance fields: the dispatched kernel ISA must be one
# of the known names and must be consistent with whether SIMD paths were
# compiled at all (scalar is always legal — FF_KERNEL_ISA can force it).
string(JSON isa ERROR_VARIABLE jerr GET "${doc}" isa)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v2 'isa' field: ${jerr}")
endif()
if(NOT isa MATCHES "^(scalar|sse2|avx2)$")
  message(FATAL_ERROR "unexpected isa '${isa}' (want scalar|sse2|avx2)")
endif()
string(JSON simd ERROR_VARIABLE jerr GET "${doc}" ff_simd)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v2 'ff_simd' field: ${jerr}")
endif()
if(NOT simd STREQUAL "ON" AND NOT isa STREQUAL "scalar")
  message(FATAL_ERROR "ff_simd=${simd} but isa=${isa}: a SIMD ISA cannot "
                      "dispatch in a build without compiled SIMD paths")
endif()
string(JSON native ERROR_VARIABLE jerr GET "${doc}" ff_native)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v2 'ff_native' field: ${jerr}")
endif()

# The kernels array must contain a stream_relay row with a positive timing.
string(JSON n ERROR_VARIABLE jerr LENGTH "${doc}" kernels)
if(jerr)
  message(FATAL_ERROR "bench JSON missing 'kernels' array: ${jerr}")
endif()
set(found_row FALSE)
math(EXPR last "${n} - 1")
foreach(i RANGE 0 ${last})
  string(JSON name GET "${doc}" kernels ${i} name)
  if(name STREQUAL "stream_relay")
    set(found_row TRUE)
    string(JSON ms GET "${doc}" kernels ${i} best_of_ms)
    if(NOT ms GREATER 0)
      message(FATAL_ERROR "stream_relay best_of_ms = ${ms}, expected > 0")
    endif()
  endif()
endforeach()
if(NOT found_row)
  message(FATAL_ERROR "no stream_relay row in the kernels array of ${bench_json}")
endif()

# The top-level stream object: config echoed back, throughput + per-block
# latency present and positive, determinism flag true.
foreach(field samples blocks samples_per_sec us_per_block)
  string(JSON v ERROR_VARIABLE jerr GET "${doc}" stream ${field})
  if(jerr)
    message(FATAL_ERROR "stream object missing '${field}': ${jerr}")
  endif()
  if(NOT v GREATER 0)
    message(FATAL_ERROR "stream.${field} = ${v}, expected > 0")
  endif()
endforeach()
string(JSON bs GET "${doc}" stream block_size)
if(NOT bs EQUAL 64)
  message(FATAL_ERROR "stream.block_size = ${bs}, expected the requested 64")
endif()
string(JSON det GET "${doc}" stream deterministic)
if(NOT det STREQUAL "ON")
  message(FATAL_ERROR "stream.deterministic = ${det}: the session output was "
                      "not bit-identical across block sizes / thread counts")
endif()

message(STATUS "streaming smoke OK: stream_relay row and stream object valid in ${bench_json}")
