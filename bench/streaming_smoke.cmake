# streaming-smoke: run bench_runtime with a short stream session and
# validate the stream_relay entries in the emitted ff-bench-runtime-v5 JSON:
# the kernels array must carry stream_relay, stream_relay_throughput and
# stream_relay_f32 rows, the top-level "stream", "stream_throughput" and
# "stream_f32" objects must report throughput and per-block latency, the
# throughput row must carry either a speedup_vs_reference ratio or an
# explicit skipped_reason (single visible CPU), the f32 row must carry a
# speedup_f32_vs_f64 ratio (SIMD width needs no spare cores) and its own
# checksum distinct from the f64 one, and the determinism flags (output
# checksum identical across block sizes, thread counts, scheduler modes and
# batch sizes — per precision family) must be true. bench_runtime exits
# non-zero on a violation, which is also caught.
#
# When STREAMING_RELAY and RELAY_GRAPH are given, the script also runs the
# streaming_relay example with the checked-in declarative graph description
# (examples/relay.ff) and requires the decode to report crc=OK — the
# text-built session must reproduce the hand-wired physics end to end. The
# same example is then re-run with --precision f32: the float32 fast path
# must also decode crc=OK.
#
# Invoked by CTest as:
#   cmake -DBENCH_RUNTIME=<path> -DWORK_DIR=<dir>
#         [-DSTREAMING_RELAY=<path> -DRELAY_GRAPH=<file.ff>]
#         -P streaming_smoke.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON)
if(NOT BENCH_RUNTIME)
  message(FATAL_ERROR "pass -DBENCH_RUNTIME=<path to bench_runtime>")
endif()
if(NOT WORK_DIR)
  set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(bench_json ${WORK_DIR}/BENCH_runtime_streaming_smoke.json)
execute_process(
  COMMAND ${BENCH_RUNTIME} --clients 2 --reps 1
          --duration 5e-4 --block-size 64 --backpressure 4
          --city-grid 2 --city-clients 2
          --out ${bench_json}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_runtime failed (rc=${rc}); a nonzero exit also "
                      "means a determinism violation.\n${out}\n${err}")
endif()

file(READ ${bench_json} doc)

string(JSON schema ERROR_VARIABLE jerr GET "${doc}" schema)
if(jerr)
  message(FATAL_ERROR "bench JSON does not parse: ${jerr}")
endif()
if(NOT schema STREQUAL "ff-bench-runtime-v5")
  message(FATAL_ERROR "unexpected schema tag '${schema}' (want ff-bench-runtime-v5)")
endif()

# v3: the visible-CPU count that perf rows condition their speedup claims on.
string(JSON hwc ERROR_VARIABLE jerr GET "${doc}" hardware_concurrency)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v3 'hardware_concurrency' field: ${jerr}")
endif()
if(NOT hwc GREATER 0)
  message(FATAL_ERROR "hardware_concurrency = ${hwc}, expected >= 1")
endif()

# v2 build/runtime provenance fields: the dispatched kernel ISA must be one
# of the known names and must be consistent with whether SIMD paths were
# compiled at all (scalar is always legal — FF_KERNEL_ISA can force it).
string(JSON isa ERROR_VARIABLE jerr GET "${doc}" isa)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v2 'isa' field: ${jerr}")
endif()
if(NOT isa MATCHES "^(scalar|sse2|avx2)$")
  message(FATAL_ERROR "unexpected isa '${isa}' (want scalar|sse2|avx2)")
endif()
string(JSON simd ERROR_VARIABLE jerr GET "${doc}" ff_simd)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v2 'ff_simd' field: ${jerr}")
endif()
if(NOT simd STREQUAL "ON" AND NOT isa STREQUAL "scalar")
  message(FATAL_ERROR "ff_simd=${simd} but isa=${isa}: a SIMD ISA cannot "
                      "dispatch in a build without compiled SIMD paths")
endif()
string(JSON native ERROR_VARIABLE jerr GET "${doc}" ff_native)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v2 'ff_native' field: ${jerr}")
endif()

# The kernels array must contain a stream_relay row with a positive timing.
string(JSON n ERROR_VARIABLE jerr LENGTH "${doc}" kernels)
if(jerr)
  message(FATAL_ERROR "bench JSON missing 'kernels' array: ${jerr}")
endif()
set(found_row FALSE)
set(found_tp_row FALSE)
set(found_f32_row FALSE)
set(found_fft_f32_row FALSE)
math(EXPR last "${n} - 1")
foreach(i RANGE 0 ${last})
  string(JSON name GET "${doc}" kernels ${i} name)
  if(name MATCHES "^(stream_relay|stream_relay_throughput|stream_relay_f32|fft64_forward_f32)$")
    if(name STREQUAL "stream_relay")
      set(found_row TRUE)
    elseif(name STREQUAL "stream_relay_throughput")
      set(found_tp_row TRUE)
    elseif(name STREQUAL "stream_relay_f32")
      set(found_f32_row TRUE)
    else()
      set(found_fft_f32_row TRUE)
    endif()
    string(JSON ms GET "${doc}" kernels ${i} best_of_ms)
    if(NOT ms GREATER 0)
      message(FATAL_ERROR "${name} best_of_ms = ${ms}, expected > 0")
    endif()
  endif()
endforeach()
if(NOT found_row)
  message(FATAL_ERROR "no stream_relay row in the kernels array of ${bench_json}")
endif()
if(NOT found_tp_row)
  message(FATAL_ERROR "no stream_relay_throughput row in the kernels array of ${bench_json}")
endif()
if(NOT found_f32_row)
  message(FATAL_ERROR "no stream_relay_f32 row in the kernels array of ${bench_json}")
endif()
if(NOT found_fft_f32_row)
  message(FATAL_ERROR "no fft64_forward_f32 row in the kernels array of ${bench_json}")
endif()

# The top-level stream object: config echoed back, throughput + per-block
# latency present and positive, determinism flag true.
foreach(field samples blocks samples_per_sec us_per_block)
  string(JSON v ERROR_VARIABLE jerr GET "${doc}" stream ${field})
  if(jerr)
    message(FATAL_ERROR "stream object missing '${field}': ${jerr}")
  endif()
  if(NOT v GREATER 0)
    message(FATAL_ERROR "stream.${field} = ${v}, expected > 0")
  endif()
endforeach()
string(JSON bs GET "${doc}" stream block_size)
if(NOT bs EQUAL 64)
  message(FATAL_ERROR "stream.block_size = ${bs}, expected the requested 64")
endif()
string(JSON det GET "${doc}" stream deterministic)
if(NOT det STREQUAL "ON")
  message(FATAL_ERROR "stream.deterministic = ${det}: the session output was "
                      "not bit-identical across block sizes / thread counts")
endif()

# v3: the stream_throughput object — pipeline-scheduler config echoed back,
# positive rate, matching checksum, and an honest speedup field: a ratio on
# multi-core hosts, an explicit skipped_reason on single-CPU ones.
string(JSON tp_mode ERROR_VARIABLE jerr GET "${doc}" stream_throughput mode)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v3 'stream_throughput' object: ${jerr}")
endif()
if(NOT tp_mode STREQUAL "throughput")
  message(FATAL_ERROR "stream_throughput.mode = '${tp_mode}', want 'throughput'")
endif()
foreach(field batch_size samples blocks samples_per_sec us_per_block)
  string(JSON v ERROR_VARIABLE jerr GET "${doc}" stream_throughput ${field})
  if(jerr)
    message(FATAL_ERROR "stream_throughput object missing '${field}': ${jerr}")
  endif()
  if(NOT v GREATER 0)
    message(FATAL_ERROR "stream_throughput.${field} = ${v}, expected > 0")
  endif()
endforeach()
string(JSON tp_pinned ERROR_VARIABLE jerr GET "${doc}" stream_throughput pinned)
if(jerr)
  message(FATAL_ERROR "stream_throughput object missing 'pinned': ${jerr}")
endif()
string(JSON ref_cs GET "${doc}" stream checksum)
string(JSON tp_cs GET "${doc}" stream_throughput checksum)
if(NOT tp_cs STREQUAL "${ref_cs}")
  message(FATAL_ERROR "stream_throughput.checksum ${tp_cs} != stream.checksum "
                      "${ref_cs}: the pipeline scheduler changed the output")
endif()
string(JSON speedup ERROR_VARIABLE sp_err GET "${doc}" stream_throughput speedup_vs_reference)
string(JSON skipped ERROR_VARIABLE sk_err GET "${doc}" stream_throughput skipped_reason)
if(sp_err AND sk_err)
  message(FATAL_ERROR "stream_throughput carries neither speedup_vs_reference "
                      "nor skipped_reason; one of the two must explain the perf claim")
endif()
if(NOT sp_err AND NOT sk_err)
  message(FATAL_ERROR "stream_throughput carries both speedup_vs_reference and "
                      "skipped_reason; they are mutually exclusive")
endif()

# v5: the stream_f32 object — the same session on the float32 kernel family.
# Its checksum is a separate pinned family (must differ from the f64 one),
# its determinism flag covers the f32 block/thread/mode grid, and the
# speedup_f32_vs_f64 ratio is present unconditionally: SIMD width, unlike
# thread count, does not need spare cores to mean something.
string(JSON f32_prec ERROR_VARIABLE jerr GET "${doc}" stream_f32 precision)
if(jerr)
  message(FATAL_ERROR "bench JSON missing v5 'stream_f32' object: ${jerr}")
endif()
if(NOT f32_prec STREQUAL "f32")
  message(FATAL_ERROR "stream_f32.precision = '${f32_prec}', want 'f32'")
endif()
foreach(field samples blocks samples_per_sec us_per_block speedup_f32_vs_f64)
  string(JSON v ERROR_VARIABLE jerr GET "${doc}" stream_f32 ${field})
  if(jerr)
    message(FATAL_ERROR "stream_f32 object missing '${field}': ${jerr}")
  endif()
  if(NOT v GREATER 0)
    message(FATAL_ERROR "stream_f32.${field} = ${v}, expected > 0")
  endif()
endforeach()
string(JSON f32_det GET "${doc}" stream_f32 deterministic)
if(NOT f32_det STREQUAL "ON")
  message(FATAL_ERROR "stream_f32.deterministic = ${f32_det}: the f32 session "
                      "output was not bit-identical across its block/thread/mode grid")
endif()
string(JSON f32_cs GET "${doc}" stream_f32 checksum)
if(f32_cs STREQUAL "${ref_cs}")
  message(FATAL_ERROR "stream_f32.checksum equals the f64 stream checksum "
                      "${ref_cs}: the precision switch did not take effect")
endif()

message(STATUS "streaming smoke OK: stream_relay rows and stream/stream_throughput/stream_f32 objects valid in ${bench_json}")

# The declarative-graph path: build the session from the checked-in
# examples/relay.ff description and require a clean end-to-end decode.
if(STREAMING_RELAY)
  if(NOT RELAY_GRAPH)
    message(FATAL_ERROR "pass -DRELAY_GRAPH=<file.ff> along with -DSTREAMING_RELAY")
  endif()
  execute_process(
    COMMAND ${STREAMING_RELAY} --graph ${RELAY_GRAPH}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "streaming_relay --graph ${RELAY_GRAPH} failed "
                        "(rc=${rc}).\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "crc=OK")
    message(FATAL_ERROR "streaming_relay --graph ${RELAY_GRAPH} did not decode "
                        "cleanly (no 'crc=OK' in output).\n${out}")
  endif()
  message(STATUS "streaming smoke OK: text-built session from ${RELAY_GRAPH} decoded crc=OK")

  # The float32 fast path must decode the same session cleanly too (the
  # hand-wired topology; --precision f32 switches every sample path).
  execute_process(
    COMMAND ${STREAMING_RELAY} --precision f32
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "streaming_relay --precision f32 failed (rc=${rc}).\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "crc=OK")
    message(FATAL_ERROR "streaming_relay --precision f32 did not decode cleanly "
                        "(no 'crc=OK' in output).\n${out}")
  endif()
  message(STATUS "streaming smoke OK: float32 session decoded crc=OK")
endif()
