// Figure 16: median throughput gain vs processing latency at the relay.
// The sweep artificially buffers the forward pipeline (below the CNF
// design's knowledge, as the paper does) and runs the full sample-level
// simulation with real packet decoding at the client.
// Paper: gains hold at low latency, collapse as latency grows, and go BELOW
// 1 (worse than no relay) beyond ~300 ns as the relayed symbol falls outside
// the cyclic prefix and causes inter-symbol interference.
#include "bench_common.hpp"
#include "eval/timedomain.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 16 — median gain vs relay processing latency (time-domain, SISO)");

  const phy::OfdmParams params;
  TestbedConfig tb;
  tb.antennas = 1;

  // Fixed location set across all four plans.
  struct Loc {
    TimeDomainLink link;
    double baseline = 0.0;
  };
  std::vector<Loc> locs;
  {
    int seed = 0;
    for (const auto& plan : channel::FloorPlan::evaluation_set()) {
      const auto placement = make_placement(plan);
      for (int c = 0; c < 12; ++c) {
        Rng rng(static_cast<unsigned>(7000 + seed));
        const auto client = random_client_location(plan, rng);
        Loc l;
        l.link = build_td_link(placement, client, tb, rng);
        TdRunOptions base;
        base.use_relay = false;
        Rng rng2(static_cast<unsigned>(8000 + seed));
        l.baseline = run_td_packet(l.link, base, rng2).throughput_mbps;
        locs.push_back(std::move(l));
        ++seed;
      }
    }
  }

  Table t({"extra buffering (ns)", "total relay delay (~ns)", "median gain", "p25", "p75"});
  for (const double extra_ns : {0.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0, 600.0}) {
    std::vector<double> gains;
    double mean_delay = 0.0;
    int delays = 0;
    int seed = 0;
    for (const auto& l : locs) {
      if (l.baseline <= 0.0) {
        ++seed;
        continue;
      }
      TdRunOptions o;
      o.pipeline = make_ff_pipeline(l.link, params, extra_ns * 1e-9);
      Rng rng(static_cast<unsigned>(12000 + seed));
      const auto r = run_td_packet(l.link, o, rng);
      gains.push_back(r.throughput_mbps / l.baseline);
      mean_delay += r.relay_extra_delay_s * 1e9;
      ++delays;
      ++seed;
    }
    t.row({Table::num(extra_ns, 0), Table::num(mean_delay / std::max(delays, 1), 0),
           Table::num(median(gains), 2), Table::num(percentile(gains, 25), 2),
           Table::num(percentile(gains, 75), 2)});
  }
  t.print();
  std::printf(
      "\nPaper: gains drop with latency and fall below 1 (worse than no relay)\n"
      "beyond ~300 ns, once the relayed OFDM symbol exits the 400 ns CP.\n");
  return 0;
}
