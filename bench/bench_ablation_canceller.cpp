// Ablation: self-interference canceller design choices (Sec. 3.3 / 4.3).
//
// The digital canceller can only subtract what the ADC faithfully captured,
// so the benches run the honest chain: analog cancellation -> ADC (12-bit,
// AGC) -> causal digital cancellation. That is what makes the analog
// stage's structure (tap count, attenuator quantization) matter.
#include "bench_common.hpp"
#include "common/units.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fir.hpp"
#include "dsp/noise.hpp"
#include "fullduplex/adc.hpp"
#include "fullduplex/digital_canceller.hpp"
#include "fullduplex/si_channel.hpp"
#include "fullduplex/stack.hpp"
#include "fullduplex/tuner.hpp"

namespace {

using namespace ffbench;

struct Scenario {
  CVec tx, probe, rx, si_only;
};

Scenario make_scenario(Rng& rng, std::size_t n, double probe_below_db) {
  Scenario s;
  const auto si = fd::make_si_channel(rng);
  CVec source = dsp::awgn_dbm(rng, n, -70.0);
  s.tx.assign(n, Complex{});
  for (std::size_t i = 2; i < n; ++i) s.tx[i] = source[i - 2];
  dsp::set_mean_power(s.tx, power_from_db(20.0));
  s.probe = fd::inject_probe(rng, s.tx, probe_below_db);
  const CVec si_fir = fd::si_loop_fir(si, 20e6);
  s.si_only = dsp::filter(si_fir, s.tx);
  s.rx.resize(n);
  const CVec thermal = dsp::awgn_dbm(rng, n, -90.0);
  for (std::size_t i = 0; i < n; ++i) s.rx[i] = source[i] + s.si_only[i] + thermal[i];
  return s;
}

struct ChainResult {
  double analog_db = 0.0;
  double total_db = 0.0;
};

/// Full chain with the ADC between the stages.
ChainResult run_chain(const fd::StackConfig& cfg, double probe_below_db,
                      std::uint64_t seed) {
  Rng rng(seed);
  const auto s = make_scenario(rng, 16000, probe_below_db);
  fd::CancellationStack stack(cfg);
  stack.tune(s.tx, s.probe, s.rx);

  // Measurement record: SI plus the receiver's thermal noise (the physical
  // 110 dB ceiling comes from that floor).
  CVec meas = s.si_only;
  dsp::add_awgn(rng, meas, power_from_db(-90.0));
  const CVec after_analog = stack.apply_analog_only(s.tx, meas);
  // Digitize the analog residual (the AGC scales to ITS power: weak analog
  // cancellation directly costs dynamic range).
  const CVec digitized = fd::adc_quantize(after_analog);
  fd::DigitalCanceller digital(cfg.digital);
  digital.train(s.tx, digitized);
  const CVec after_all = digital.cancel(s.tx, digitized);

  return {20.0 - dsp::mean_power_db(after_analog), 20.0 - dsp::mean_power_db(after_all)};
}

ChainResult mean_over_seeds(const fd::StackConfig& cfg, double probe_below_db) {
  ChainResult acc;
  const int reps = 3;
  for (int r = 0; r < reps; ++r) {
    const auto one = run_chain(cfg, probe_below_db, 100 + static_cast<unsigned>(r));
    acc.analog_db += one.analog_db / reps;
    acc.total_db += one.total_db / reps;
  }
  return acc;
}

}  // namespace

int main() {
  print_banner("Ablation — cancellation stack design choices (Sec. 3.3 / 4.3)");
  std::printf("Chain under test: analog board -> 12-bit ADC -> causal digital filter.\n"
              "ADC quantization floor: %.1f dB below the converter input power.\n",
              fd::adc_noise_floor_db({}));

  {
    Table t({"analog taps", "analog stage (dB)", "total (dB)"});
    for (const int taps : {2, 4, 8, 16}) {
      fd::StackConfig cfg;
      cfg.analog.taps = taps;
      const auto r = mean_over_seeds(cfg, 30.0);
      t.row({std::to_string(taps), Table::num(r.analog_db, 1), Table::num(r.total_db, 1)});
    }
    std::printf("\nAnalog tap count (prototype: 8):\n");
    t.print();
  }
  {
    Table t({"attenuator step (dB)", "analog stage (dB)", "total (dB)"});
    for (const double step : {0.0625, 0.25, 1.0, 4.0}) {
      fd::StackConfig cfg;
      cfg.analog.attenuator_step_db = step;
      const auto r = mean_over_seeds(cfg, 30.0);
      t.row({Table::num(step, 4), Table::num(r.analog_db, 1), Table::num(r.total_db, 1)});
    }
    std::printf("\nAttenuator quantization (prototype: 0.25 dB):\n");
    t.print();
  }
  {
    // The probe trades estimation quality against the noise it adds to the
    // relayed signal: the destination's SINR through the relay is capped at
    // the probe's back-off (the paper picks 30 dB: above the 28 dB the top
    // MCS needs, below nothing).
    Table t({"probe below TX (dB)", "single-shot estimate error (dB)",
             "client SINR cap (dB)"});
    for (const double below : {10.0, 20.0, 30.0, 40.0}) {
      Rng rng(7);
      const auto s = make_scenario(rng, 16000, below);
      const CVec h = fd::estimate_si_fir_probe(s.probe, s.rx, 24);
      const CVec recon = dsp::filter(h, s.tx);
      CVec resid(s.rx.size());
      for (std::size_t i = 0; i < resid.size(); ++i) resid[i] = s.si_only[i] - recon[i];
      const double err_db = dsp::mean_power_db(resid) - dsp::mean_power_db(s.si_only);
      t.row({Table::num(below, 0), Table::num(err_db, 1), Table::num(below, 0)});
    }
    std::printf("\nGaussian-probe level (paper: 30 dB below the signal):\n");
    t.print();
  }
  {
    Table t({"digital taps", "total (dB)"});
    for (const std::size_t taps : {16u, 40u, 120u, 240u}) {
      fd::StackConfig cfg;
      cfg.digital.taps = taps;
      const auto r = mean_over_seeds(cfg, 30.0);
      t.row({std::to_string(taps), Table::num(r.total_db, 1)});
    }
    std::printf("\nCausal digital tap count (prototype: 120):\n");
    t.print();
  }
  return 0;
}
