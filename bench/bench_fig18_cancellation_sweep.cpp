// Figure 18: median throughput gain as a function of the cancellation the
// relay achieves. Paper: gains fall from ~2.25x at 110 dB to ~1.5x at
// 100 dB — less cancellation means a higher residual-self-interference
// noise floor at the relay and a lower stable amplification ceiling.
#include "bench_common.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 18 — median FF gain vs achieved cancellation");

  Table t({"cancellation (dB)", "median FF gain vs HD", "median FF tput (Mbps)"});
  for (const double c : {100.0, 102.0, 104.0, 106.0, 108.0, 110.0}) {
    const auto results = standard_run(/*clients_per_plan=*/40, /*with_af=*/false, c);
    const auto ff = results.gains_vs_hd(Scheme::kFastForward);
    const auto ff_abs = results.throughputs(Scheme::kFastForward);
    t.row({Table::num(c, 0), Table::num(median(ff), 2), Table::num(median(ff_abs), 1)});
  }
  t.print();
  std::printf("\nPaper: monotone drop, ~2.25x at 110 dB down to ~1.5x at 100 dB.\n");
  return 0;
}
