// Figure 12: CDF of relative throughput gains (baseline: AP + half-duplex
// mesh router). Paper: FF gives a 3x median increase over the AP alone,
// 2.3x over the HD mesh, and ~4x at the bottom of the distribution.
#include "bench_common.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 12 — overall relative throughput gains (2x2 MIMO, 4 floor plans)");

  const auto results = standard_run();

  const auto ff = results.gains_vs_hd(Scheme::kFastForward);
  const auto ap = results.gains_vs_hd(Scheme::kApOnly);
  std::vector<double> hd(ff.size(), 1.0);  // the baseline's own gain

  print_cdf_columns({"AP+FF relay", "AP only", "AP+HD mesh"}, {ff, ap, hd});

  const auto ap_abs = results.throughputs(Scheme::kApOnly);
  const auto ff_abs = results.throughputs(Scheme::kFastForward);

  std::printf("\nHeadline numbers (paper in brackets):\n");
  std::printf("  FF vs HD mesh,  median per-location gain : %.2fx   [2.3x]\n", median(ff));
  std::printf("  FF vs AP only,  ratio of median tputs    : %.2fx   [3x]\n",
              median(ff_abs) / std::max(median(ap_abs), 1e-9));
  std::printf("  FF vs HD mesh,  gain at 80th pct of CDF  : %.2fx   [~4x tail]\n",
              percentile(ff, 80));
  std::printf("  locations evaluated: %zu (HD-reachable: %zu)\n", results.size(), ff.size());
  return 0;
}
