// Figure 15 (a/b/c): throughput gains split by the AP-only link's state.
// Paper: low-SNR/low-rank locations gain ~4x (SNR + rank together);
// medium-SNR/low-rank (pinhole) locations gain ~1.7x (rank restoration);
// high-SNR/high-rank locations gain only ~15%.
#include "bench_common.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 15 — gains by baseline link category (vs AP + HD mesh)");

  const auto results = standard_run();

  const LinkCategory cats[] = {LinkCategory::kLowSnrLowRank,
                               LinkCategory::kMediumSnrLowRank,
                               LinkCategory::kHighSnrHighRank};
  const char* paper[] = {"[~4x]", "[~1.7x]", "[~1.15x]"};

  std::vector<std::vector<double>> series;
  std::vector<std::string> names;
  for (const auto cat : cats) {
    series.push_back(results.by_category(cat).gains_vs_hd(Scheme::kFastForward));
    names.push_back(to_string(cat));
  }

  Table t({"category", "n", "median gain", "p25", "p75", "paper"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].empty()) continue;
    t.row({names[i], std::to_string(series[i].size()),
           Table::num(median(series[i]), 2), Table::num(percentile(series[i], 25), 2),
           Table::num(percentile(series[i], 75), 2), paper[i]});
  }
  t.print();

  std::printf("\nPer-category CDFs:\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].size() < 5) continue;
    std::printf("\n(%c) %s\n", static_cast<char>('a' + i), names[i].c_str());
    print_cdf_table("FF gain vs HD", series[i], "x");
  }
  return 0;
}
