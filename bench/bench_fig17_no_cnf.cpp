// Figure 17: turn off construct-and-forward filtering and let the relay
// blindly amplify to its stability limit. Paper: tail gains survive (edge
// clients benefit from raw amplified power) but the median gain collapses,
// and some locations end up WORSE than no relaying because the repeater
// amplifies noise and combines destructively.
#include "bench_common.hpp"

int main() {
  using namespace ffbench;
  print_banner("Fig. 17 — amplify-and-forward (CNF disabled) vs FF");

  const auto results = standard_run(/*clients_per_plan=*/50, /*with_af=*/true);

  const auto ff = results.gains_vs_hd(Scheme::kFastForward);
  const auto af = results.gains_vs_hd(Scheme::kAmplifyForward);
  const auto ap = results.gains_vs_hd(Scheme::kApOnly);

  print_cdf_columns({"AP+FF relay", "AP+amplify-only", "AP only"}, {ff, af, ap});

  // How often does blind amplification actively hurt?
  int hurt = 0, total = 0;
  for (const auto& r : results) {
    if (r.schemes.ap_only_mbps <= 0.0) continue;
    ++total;
    if (r.schemes.af_mbps < r.schemes.ap_only_mbps) ++hurt;
  }
  std::printf("\nHeadline numbers (paper in brackets):\n");
  std::printf("  FF median gain vs HD     : %.2fx\n", median(ff));
  std::printf("  AF median gain vs HD     : %.2fx   [small to non-existent]\n", median(af));
  std::printf("  AF tail (90th pct) gain  : %.2fx   [significant gains remain at the tail]\n",
              percentile(af, 90));
  std::printf("  AF worse than AP-only at : %.0f%% of reachable locations  [sometimes worse\n"
              "  than no relaying because noise gets amplified]\n",
              100.0 * hurt / std::max(total, 1));
  return 0;
}
