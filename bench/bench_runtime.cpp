// Runtime telemetry for the evaluation engine: wall time of the standard
// full-evaluation run at 1/2/4/N threads (with a bit-exactness checksum at
// every thread count), plus best-of wall times for the hot micro-kernels.
// Emits machine-readable BENCH_runtime.json so perf PRs have a baseline to
// compare against.
//
// Usage: bench_runtime [--clients N] [--out PATH] [--reps R]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "dsp/fft.hpp"
#include "phy/frame.hpp"

namespace {

using namespace ffbench;

struct ExperimentTiming {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  std::uint64_t checksum = 0;
};

ExperimentTiming time_experiment(std::size_t clients, std::size_t threads) {
  ExperimentConfig cfg;
  cfg.clients_per_plan = clients;
  cfg.seed = 20140817;  // same seed as standard_run()
  cfg.threads = threads;
  ExperimentTiming t;
  t.threads = threads;
  std::vector<LocationResult> results;
  t.wall_ms = time_once_ms([&] { results = run_experiment(cfg); });
  t.checksum = results_checksum(results);
  return t;
}

struct KernelTiming {
  std::string name;
  double wall_ms = 0.0;   // best-of-reps for one batch
  std::size_t items = 0;  // operations per batch
};

std::vector<KernelTiming> time_kernels(int reps) {
  std::vector<KernelTiming> out;
  Rng rng(1);

  {
    // 64-point forward/inverse transforms: the OFDM modem's innermost loop.
    const dsp::FftPlan& plan = dsp::FftPlan::cached(64);
    CVec x(64);
    for (auto& v : x) v = rng.cgaussian();
    constexpr std::size_t kBatch = 20000;
    out.push_back({"fft64_forward",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.forward(x); },
                                reps),
                   kBatch});
    out.push_back({"fft64_inverse",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.inverse(x); },
                                reps),
                   kBatch});
  }
  {
    const dsp::FftPlan& plan = dsp::FftPlan::cached(1024);
    CVec x(1024);
    for (auto& v : x) v = rng.cgaussian();
    constexpr std::size_t kBatch = 2000;
    out.push_back({"fft1024_inverse",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.inverse(x); },
                                reps),
                   kBatch});
  }
  {
    // One full-location evaluation (link synthesis + every scheme's design):
    // the unit of work the parallel engine schedules.
    const TestbedConfig tb;
    const auto plan = channel::FloorPlan::paper_home();
    const auto placement = make_placement(plan);
    SchemeOptions sopts;
    sopts.design = default_design_options(tb);
    Rng loc_rng(42);
    out.push_back({"evaluate_location",
                   time_best_ms(
                       [&] {
                         Rng r = loc_rng;  // identical draws every rep
                         const auto link = build_link(placement, {6.0, 4.0}, tb, r);
                         const auto res = evaluate_location(link, sopts);
                         if (res.ap_only_mbps < 0.0) std::abort();  // keep it live
                       },
                       reps),
                   1});
  }
  {
    // Full packet decode through the SISO receiver (FFT cache beneficiary).
    const phy::OfdmParams params;
    const phy::Transmitter tx(params);
    const phy::Receiver rx(params);
    std::vector<std::uint8_t> payload(400);
    for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;
    const CVec pkt = tx.modulate(payload, {.mcs_index = 4});
    constexpr std::size_t kBatch = 20;
    out.push_back({"packet_decode",
                   time_best_ms(
                       [&] {
                         for (std::size_t i = 0; i < kBatch; ++i) {
                           const auto r = rx.receive(pkt);
                           if (!r || !r->crc_ok) std::abort();
                         }
                       },
                       reps),
                   kBatch});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 50;
  std::string out_path = "BENCH_runtime.json";
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc)
      clients = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (arg == "--out" && i + 1 < argc)
      out_path = argv[++i];
    else if (arg == "--reps" && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else {
      std::cerr << "usage: bench_runtime [--clients N] [--out PATH] [--reps R]\n";
      return 2;
    }
  }

  const std::size_t hw_threads = ff::default_thread_count();
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw_threads > 4) thread_counts.push_back(hw_threads);

  std::printf("bench_runtime: standard_run(%zu) at 1/2/4/N threads "
              "(hardware default: %zu)\n\n",
              clients, hw_threads);

  std::vector<ExperimentTiming> timings;
  for (const std::size_t t : thread_counts) timings.push_back(time_experiment(clients, t));

  bool deterministic = true;
  for (const auto& t : timings)
    if (t.checksum != timings.front().checksum) deterministic = false;

  Table table({"threads", "wall (ms)", "speedup vs 1T", "checksum"});
  char cs[32];
  for (const auto& t : timings) {
    std::snprintf(cs, sizeof(cs), "%016llx", static_cast<unsigned long long>(t.checksum));
    table.row({std::to_string(t.threads), Table::num(t.wall_ms, 1),
               Table::num(timings.front().wall_ms / t.wall_ms, 2), cs});
  }
  table.print();
  std::printf("\nresults bit-identical across thread counts: %s\n\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  const auto kernels = time_kernels(reps);
  Table ktable({"kernel", "batch", "best-of (ms)", "us/op"});
  for (const auto& k : kernels)
    ktable.row({k.name, std::to_string(k.items), Table::num(k.wall_ms, 3),
                Table::num(1e3 * k.wall_ms / static_cast<double>(k.items), 3)});
  ktable.print();

  JsonWriter json;
  json.begin_object();
  json.key("schema").value(std::string("ff-bench-runtime-v1"));
  json.key("clients_per_plan").value(clients);
  json.key("hardware_threads").value(hw_threads);
  json.key("deterministic").value(deterministic);
  json.key("experiment");
  json.begin_array();
  for (const auto& t : timings) {
    std::snprintf(cs, sizeof(cs), "%016llx", static_cast<unsigned long long>(t.checksum));
    json.begin_object();
    json.key("threads").value(t.threads);
    json.key("wall_ms").value(t.wall_ms);
    json.key("speedup_vs_1t").value(timings.front().wall_ms / t.wall_ms);
    json.key("checksum").value(std::string(cs));
    json.end_object();
  }
  json.end_array();
  json.key("kernels");
  json.begin_array();
  for (const auto& k : kernels) {
    json.begin_object();
    json.key("name").value(k.name);
    json.key("batch").value(k.items);
    json.key("best_of_ms").value(k.wall_ms);
    json.key("us_per_op").value(1e3 * k.wall_ms / static_cast<double>(k.items));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}
