// Runtime telemetry for the evaluation engine: wall time of the standard
// full-evaluation run at 1/2/4/N threads (with a bit-exactness checksum at
// every thread count), plus best-of wall times for the hot micro-kernels.
// Emits machine-readable BENCH_runtime.json so perf PRs have a baseline to
// compare against.
//
// With --metrics, every thread-count run also records telemetry into a
// fresh MetricsRegistry and the runs are cross-checked: the ff-metrics-v1
// JSON (excluding wall-clock timer values) must be byte-identical at every
// thread count — the registry's own determinism contract. The 1-thread
// run's full snapshot is written to the given path.
//
// Usage: bench_runtime [--clients N] [--out PATH] [--reps R] [--metrics PATH]
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "dsp/fft.hpp"
#include "phy/frame.hpp"

namespace {

using namespace ffbench;

struct ExperimentTiming {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  std::uint64_t checksum = 0;
  std::string metrics_canonical;  // to_json(false): timer values excluded
  std::string metrics_full;       // to_json(true)
};

ExperimentTiming time_experiment(std::size_t clients, std::size_t threads,
                                 bool with_metrics) {
  MetricsRegistry registry;
  const auto cfg = ExperimentConfig::for_testbed(TestbedPreset::kMimo2x2)
                       .with_clients(clients)
                       .with_seed(20140817)  // same seed as standard_run()
                       .with_threads(threads)
                       .with_metrics(with_metrics ? &registry : nullptr);
  ExperimentTiming t;
  t.threads = threads;
  ExperimentResults results;
  t.wall_ms = time_once_ms([&] { results = run_experiment(cfg); });
  t.checksum = results_checksum(results);
  if (with_metrics) {
    const MetricsSnapshot snap = registry.snapshot();
    t.metrics_canonical = snap.to_json(/*include_timer_values=*/false);
    t.metrics_full = snap.to_json();
  }
  return t;
}

struct KernelTiming {
  std::string name;
  double wall_ms = 0.0;   // best-of-reps for one batch
  std::size_t items = 0;  // operations per batch
};

std::vector<KernelTiming> time_kernels(int reps) {
  std::vector<KernelTiming> out;
  Rng rng(1);

  {
    // 64-point forward/inverse transforms: the OFDM modem's innermost loop.
    const dsp::FftPlan& plan = dsp::FftPlan::cached(64);
    CVec x(64);
    for (auto& v : x) v = rng.cgaussian();
    constexpr std::size_t kBatch = 20000;
    out.push_back({"fft64_forward",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.forward(x); },
                                reps),
                   kBatch});
    out.push_back({"fft64_inverse",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.inverse(x); },
                                reps),
                   kBatch});
  }
  {
    const dsp::FftPlan& plan = dsp::FftPlan::cached(1024);
    CVec x(1024);
    for (auto& v : x) v = rng.cgaussian();
    constexpr std::size_t kBatch = 2000;
    out.push_back({"fft1024_inverse",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.inverse(x); },
                                reps),
                   kBatch});
  }
  {
    // One full-location evaluation (link synthesis + every scheme's design):
    // the unit of work the parallel engine schedules.
    const TestbedConfig tb;
    const auto plan = channel::FloorPlan::paper_home();
    const auto placement = make_placement(plan);
    SchemeOptions sopts;
    sopts.design = default_design_options(tb);
    Rng loc_rng(42);
    out.push_back({"evaluate_location",
                   time_best_ms(
                       [&] {
                         Rng r = loc_rng;  // identical draws every rep
                         const auto link = build_link(placement, {6.0, 4.0}, tb, r);
                         const auto res = evaluate_location(link, sopts);
                         if (res.ap_only_mbps < 0.0) std::abort();  // keep it live
                       },
                       reps),
                   1});
  }
  {
    // Full packet decode through the SISO receiver (FFT cache beneficiary).
    const phy::OfdmParams params;
    const phy::Transmitter tx(params);
    const phy::Receiver rx(params);
    std::vector<std::uint8_t> payload(400);
    for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;
    const CVec pkt = tx.modulate(payload, {.mcs_index = 4});
    constexpr std::size_t kBatch = 20;
    out.push_back({"packet_decode",
                   time_best_ms(
                       [&] {
                         for (std::size_t i = 0; i < kBatch; ++i) {
                           const auto r = rx.receive(pkt);
                           if (!r || !r->crc_ok) std::abort();
                         }
                       },
                       reps),
                   kBatch});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 50;
  std::string out_path = "BENCH_runtime.json";
  std::string metrics_path;
  int reps = 3;
  Cli cli("bench_runtime",
          "Wall-time the standard evaluation run at 1/2/4/N threads with "
          "bit-exactness checksums, plus hot micro-kernel timings.");
  cli.add_option("--clients", &clients, "client locations per floor plan")
      .add_option("--out", &out_path, "output JSON path")
      .add_option("--reps", &reps, "best-of repetitions for the kernel timings")
      .add_option("--metrics", &metrics_path,
                  "record telemetry, cross-check it across thread counts, and "
                  "write the 1-thread ff-metrics-v1 snapshot here");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  const bool with_metrics = !metrics_path.empty();

  const std::size_t hw_threads = ff::default_thread_count();
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw_threads > 4) thread_counts.push_back(hw_threads);

  std::printf("bench_runtime: standard_run(%zu) at 1/2/4/N threads "
              "(hardware default: %zu)\n\n",
              clients, hw_threads);

  std::vector<ExperimentTiming> timings;
  for (const std::size_t t : thread_counts)
    timings.push_back(time_experiment(clients, t, with_metrics));

  bool deterministic = true;
  for (const auto& t : timings)
    if (t.checksum != timings.front().checksum) deterministic = false;

  // Metrics determinism: identical snapshot bytes (timer values aside) no
  // matter how the work was sharded. Vacuously true when metrics are off.
  bool metrics_deterministic = true;
  for (const auto& t : timings)
    if (t.metrics_canonical != timings.front().metrics_canonical)
      metrics_deterministic = false;

  Table table({"threads", "wall (ms)", "speedup vs 1T", "checksum"});
  char cs[32];
  for (const auto& t : timings) {
    std::snprintf(cs, sizeof(cs), "%016llx", static_cast<unsigned long long>(t.checksum));
    table.row({std::to_string(t.threads), Table::num(t.wall_ms, 1),
               Table::num(timings.front().wall_ms / t.wall_ms, 2), cs});
  }
  table.print();
  std::printf("\nresults bit-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
  if (with_metrics)
    std::printf("metrics snapshots byte-identical across thread counts: %s\n",
                metrics_deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
  std::printf("\n");

  const auto kernels = time_kernels(reps);
  Table ktable({"kernel", "batch", "best-of (ms)", "us/op"});
  for (const auto& k : kernels)
    ktable.row({k.name, std::to_string(k.items), Table::num(k.wall_ms, 3),
                Table::num(1e3 * k.wall_ms / static_cast<double>(k.items), 3)});
  ktable.print();

  JsonWriter json;
  json.begin_object();
  json.key("schema").value(std::string("ff-bench-runtime-v1"));
  json.key("clients_per_plan").value(clients);
  json.key("hardware_threads").value(hw_threads);
  json.key("deterministic").value(deterministic);
  json.key("metrics_enabled").value(with_metrics);
  json.key("metrics_deterministic").value(metrics_deterministic);
  json.key("experiment");
  json.begin_array();
  for (const auto& t : timings) {
    std::snprintf(cs, sizeof(cs), "%016llx", static_cast<unsigned long long>(t.checksum));
    json.begin_object();
    json.key("threads").value(t.threads);
    json.key("wall_ms").value(t.wall_ms);
    json.key("speedup_vs_1t").value(timings.front().wall_ms / t.wall_ms);
    json.key("checksum").value(std::string(cs));
    json.end_object();
  }
  json.end_array();
  json.key("kernels");
  json.begin_array();
  for (const auto& k : kernels) {
    json.begin_object();
    json.key("name").value(k.name);
    json.key("batch").value(k.items);
    json.key("best_of_ms").value(k.wall_ms);
    json.key("us_per_op").value(1e3 * k.wall_ms / static_cast<double>(k.items));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (with_metrics) {
    std::ofstream mf(metrics_path, std::ios::binary);
    if (mf) mf << timings.front().metrics_full;
    if (!mf) {
      std::cerr << "failed to write " << metrics_path << "\n";
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return deterministic && metrics_deterministic ? 0 : 1;
}
