// Runtime telemetry for the evaluation engine: wall time of the standard
// full-evaluation run at 1/2/4/N threads (with a bit-exactness checksum at
// every thread count), plus best-of wall times for the hot micro-kernels.
// Emits machine-readable BENCH_runtime.json so perf PRs have a baseline to
// compare against.
//
// With --metrics, every thread-count run also records telemetry into a
// fresh MetricsRegistry and the runs are cross-checked: the ff-metrics-v1
// JSON (excluding wall-clock timer values) must be byte-identical at every
// thread count — the registry's own determinism contract. The 1-thread
// run's full snapshot is written to the given path.
//
// The stream_relay kernel times the streaming element-graph runtime
// (src/stream/) pushing a full relay session — packet source, direct and
// relayed paths, superposition — through bounded blocks, and cross-checks
// that the output checksum is identical across block sizes and thread
// counts (the runtime's block-size/thread invariance contract). The
// stream_relay_throughput kernel times the same session under the pipeline
// scheduler (auto chain count, --batch-size blocks per ring transfer,
// --pin-cores to bind workers) and cross-checks its checksum against the
// reference row; both modes are always measured, so StreamCli's --mode is
// ignored here. Knobs: --block-size / --duration / --backpressure /
// --threads (eval::StreamCli, shared with examples/streaming_relay).
//
// The city row (v4) times the sharded many-relay city simulation
// (src/city/): client-sessions/sec, the whole-city FF throughput CDF, and
// the measured FastForward-vs-half-duplex-mesh gain, with the shard x
// thread determinism grid (checksums AND streamed JSONL bytes) folded into
// the exit code. Knobs: --city-grid / --city-clients.
//
// Usage: bench_runtime [--clients N] [--out PATH] [--reps R] [--metrics PATH]
//                      [--block-size N] [--duration S] [--backpressure B]
//                      [--batch-size N] [--pin-cores]
//                      [--city-grid N] [--city-clients N]
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "channel/floorplan.hpp"
#include "city/city.hpp"
#include "city/jsonl.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/kernels/kernels.hpp"
#include "eval/timedomain.hpp"
#include "phy/frame.hpp"
#include "stream/elements.hpp"
#include "stream/graph.hpp"
#include "stream/scheduler.hpp"

namespace {

using namespace ffbench;

struct ExperimentTiming {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  std::uint64_t checksum = 0;
  std::string metrics_canonical;  // to_json(false): timer values excluded
  std::string metrics_full;       // to_json(true)
};

ExperimentTiming time_experiment(std::size_t clients, std::size_t threads,
                                 bool with_metrics) {
  MetricsRegistry registry;
  const auto cfg = ExperimentConfig::for_testbed(TestbedPreset::kMimo2x2)
                       .with_clients(clients)
                       .with_seed(20140817)  // same seed as standard_run()
                       .with_threads(threads)
                       .with_metrics(with_metrics ? &registry : nullptr);
  ExperimentTiming t;
  t.threads = threads;
  ExperimentResults results;
  t.wall_ms = time_once_ms([&] { results = run_experiment(cfg); });
  t.checksum = results_checksum(results);
  if (with_metrics) {
    const MetricsSnapshot snap = registry.snapshot();
    t.metrics_canonical = snap.to_json(/*include_timer_values=*/false);
    t.metrics_full = snap.to_json();
  }
  return t;
}

struct KernelTiming {
  std::string name;
  double wall_ms = 0.0;   // best-of-reps for one batch
  std::size_t items = 0;  // operations per batch
};

std::vector<KernelTiming> time_kernels(int reps) {
  std::vector<KernelTiming> out;
  Rng rng(1);

  {
    // 64-point forward/inverse transforms: the OFDM modem's innermost loop.
    const dsp::FftPlan& plan = dsp::FftPlan::cached(64);
    CVec x(64);
    for (auto& v : x) v = rng.cgaussian();
    constexpr std::size_t kBatch = 20000;
    out.push_back({"fft64_forward",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.forward(x); },
                                reps),
                   kBatch});
    out.push_back({"fft64_inverse",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.inverse(x); },
                                reps),
                   kBatch});
    // The float32 twin: same transform, double the SIMD lanes per register.
    // Paired with fft64_forward so the width gain is a row-to-row ratio.
    const dsp::FftPlan32& plan32 = dsp::FftPlan32::cached(64);
    dsp::kernels::AlignedCVec32 x32(64);
    dsp::kernels::narrow(x, x32);
    out.push_back({"fft64_forward_f32",
                   time_best_ms(
                       [&] { for (std::size_t i = 0; i < kBatch; ++i) plan32.forward(x32); },
                       reps),
                   kBatch});
  }
  {
    const dsp::FftPlan& plan = dsp::FftPlan::cached(1024);
    CVec x(1024);
    for (auto& v : x) v = rng.cgaussian();
    constexpr std::size_t kBatch = 2000;
    out.push_back({"fft1024_inverse",
                   time_best_ms([&] { for (std::size_t i = 0; i < kBatch; ++i) plan.inverse(x); },
                                reps),
                   kBatch});
  }
  {
    // One full-location evaluation (link synthesis + every scheme's design):
    // the unit of work the parallel engine schedules.
    const TestbedConfig tb;
    const auto plan = channel::FloorPlan::paper_home();
    const auto placement = make_placement(plan);
    SchemeOptions sopts;
    sopts.design = default_design_options(tb);
    Rng loc_rng(42);
    out.push_back({"evaluate_location",
                   time_best_ms(
                       [&] {
                         Rng r = loc_rng;  // identical draws every rep
                         const auto link = build_link(placement, {6.0, 4.0}, tb, r);
                         const auto res = evaluate_location(link, sopts);
                         if (res.ap_only_mbps < 0.0) std::abort();  // keep it live
                       },
                       reps),
                   1});
  }
  {
    // Full packet decode through the SISO receiver (FFT cache beneficiary).
    const phy::OfdmParams params;
    const phy::Transmitter tx(params);
    const phy::Receiver rx(params);
    std::vector<std::uint8_t> payload(400);
    for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;
    const CVec pkt = tx.modulate(payload, {.mcs_index = 4});
    constexpr std::size_t kBatch = 20;
    out.push_back({"packet_decode",
                   time_best_ms(
                       [&] {
                         for (std::size_t i = 0; i < kBatch; ++i) {
                           const auto r = rx.receive(pkt);
                           if (!r || !r->crc_ok) std::abort();
                         }
                       },
                       reps),
                   kBatch});
  }
  return out;
}

// --------------------------------------------------------------- streaming

/// Everything the stream_relay sessions share: one time-domain link, the FF
/// pipeline designed for it, and the packet schedule sized from --duration.
struct StreamSetup {
  TimeDomainLink link;
  relay::PipelineConfig pipeline;
  ff::stream::PacketSourceConfig packets;
  double fs_hi = 0.0;
  ff::Precision precision = ff::Precision::kF64;
};

StreamSetup make_stream_setup(double duration_s,
                              ff::Precision precision = ff::Precision::kF64) {
  constexpr std::size_t kOversample = 4;  // the evaluator's converter rate
  const TestbedConfig tb;
  const auto plan = channel::FloorPlan::paper_home();
  const auto placement = make_placement(plan);
  Rng rng(20140817);

  StreamSetup s;
  s.link = build_td_link(placement, {6.0, 4.0}, tb, rng);
  s.fs_hi = tb.ofdm.sample_rate_hz * static_cast<double>(kOversample);
  s.pipeline = make_ff_pipeline(s.link, tb.ofdm, /*extra_latency_s=*/0.0);
  s.precision = precision;
  s.pipeline.precision = precision;

  s.packets.params = tb.ofdm;
  s.packets.mcs_index = 3;
  s.packets.payload_bits = 600;
  s.packets.gap_samples = 400 * kOversample;
  s.packets.oversample = kOversample;
  s.packets.seed = 20140817;
  const phy::Transmitter tx(tb.ofdm);
  const std::size_t stride =
      tx.modulate(std::vector<std::uint8_t>(s.packets.payload_bits, 0),
                  {.mcs_index = s.packets.mcs_index})
              .size() *
          kOversample +
      s.packets.gap_samples;
  const auto want = static_cast<std::size_t>(duration_s * s.fs_hi);
  s.packets.n_packets = std::max<std::size_t>(1, want / stride);
  return s;
}

struct StreamRun {
  std::uint64_t samples = 0;
  std::uint64_t blocks = 0;
  std::uint64_t checksum = 0;
};

/// Scheduler selection for one stream run (reference rounds by default).
struct StreamExec {
  bool throughput = false;
  std::size_t batch_size = 1;
  bool pin_cores = false;
};

/// One full streaming session: packet source -> tee -> {direct channel,
/// S->R channel -> relay pipeline -> R->D channel} -> superposition -> sink.
/// The same graph shape as examples/streaming_relay, self-checked here via
/// an FNV-1a checksum of the output stream.
StreamRun run_stream_once(const StreamSetup& s, std::size_t block_size,
                          std::size_t backpressure, std::size_t threads,
                          const StreamExec& exec = {}) {
  namespace st = ff::stream;
  const std::size_t cap = backpressure;
  st::Graph g;
  auto* src = g.emplace<st::PacketSource>("src", s.packets, block_size);
  auto* cfo = g.emplace<st::CfoElement>("src_cfo", s.link.source_cfo_hz, s.fs_hi,
                                        s.precision);
  auto* tee = g.emplace<st::Tee>("tee", 2);

  st::ChannelElementConfig sd;
  sd.channel = s.link.sd;
  sd.sample_rate_hz = s.fs_hi;
  sd.noise_power = power_from_db(s.link.dest_noise_dbm) * 4.0;
  sd.seed = s.packets.seed ^ 0xD5;
  sd.precision = s.precision;
  auto* chan_sd = g.emplace<st::ChannelElement>("chan_sd", sd);
  auto* q = g.emplace<st::Queue>("q");

  st::ChannelElementConfig sr;
  sr.channel = s.link.sr;
  sr.sample_rate_hz = s.fs_hi;
  sr.noise_power = power_from_db(s.link.relay_noise_dbm) * 4.0;
  sr.seed = s.packets.seed ^ 0x5F;
  sr.precision = s.precision;
  auto* chan_sr = g.emplace<st::ChannelElement>("chan_sr", sr);
  auto* relay = g.emplace<st::PipelineElement>("relay", s.pipeline);

  st::ChannelElementConfig rd;
  rd.channel = s.link.rd;
  rd.sample_rate_hz = s.fs_hi;
  rd.seed = s.packets.seed ^ 0xFD;
  rd.precision = s.precision;
  auto* chan_rd = g.emplace<st::ChannelElement>("chan_rd", rd);

  auto* add = g.emplace<st::Add2>("add");
  auto* sink = g.emplace<st::AccumulatorSink>("sink");

  g.connect(*src, 0, *cfo, 0, cap);
  g.connect(*cfo, 0, *tee, 0, cap);
  g.connect(*tee, 0, *chan_sd, 0, cap);
  g.connect(*chan_sd, 0, *q, 0, cap);
  g.connect(*q, 0, *add, 0, cap);
  g.connect(*tee, 1, *chan_sr, 0, cap);
  g.connect(*chan_sr, 0, *relay, 0, cap);
  g.connect(*relay, 0, *chan_rd, 0, cap);
  g.connect(*chan_rd, 0, *add, 1, cap);
  g.connect(*add, 0, *sink, 0, cap);

  st::SchedulerConfig sc;
  sc.threads = threads;
  if (exec.throughput) {
    sc.mode = st::SchedulerMode::kThroughput;
    sc.batch_size = exec.batch_size;
    sc.pin_cores = exec.pin_cores;
  }
  st::Scheduler(g, sc).run();

  StreamRun r;
  r.blocks = sink->blocks_seen();
  const CVec out = sink->take();
  r.samples = out.size();
  r.checksum = fnv1a_accumulate(0xCBF29CE484222325ULL, out.data(),
                                out.size() * sizeof(Complex));
  return r;
}

// -------------------------------------------------------------------- city

struct CityBench {
  ff::city::CityRun run;            // 1-thread reference run
  double wall_ms_1t = 0.0;          // 1 worker thread, auto shards
  double wall_ms = 0.0;             // hardware-default worker threads
  double sessions_per_sec = 0.0;    // from the hardware-default run
  bool deterministic = true;        // checksums AND JSONL bytes across the grid
};

/// Time the city simulation at 1 thread and at the hardware default, then
/// re-run it across shard counts {1,2,4,8} x thread counts {1,2,4} with a
/// JSONL sink attached: every run must reproduce the reference checksum and
/// the streamed bytes exactly (the city's execution-schedule-independence
/// contract, tests/city_test.cpp).
CityBench run_city_bench(std::size_t grid, std::size_t clients_per_site,
                         MetricsRegistry* registry) {
  namespace ct = ff::city;
  const auto base = [&] {
    return ct::CityConfig::grid(grid, grid)
        .with_clients(clients_per_site)
        .with_seed(20140817);  // same seed family as the experiment sweep
  };

  CityBench b;
  {
    auto cfg = base().with_threads(1).with_metrics(registry);
    b.wall_ms_1t = time_once_ms([&] { b.run = ct::run_city(cfg); });
  }
  {
    auto cfg = base();  // threads = 0: FF_THREADS / hardware default
    ct::CityRun run_auto;
    b.wall_ms = time_once_ms([&] { run_auto = ct::run_city(cfg); });
    if (run_auto.checksum != b.run.checksum) b.deterministic = false;
  }
  b.sessions_per_sec = b.wall_ms > 0.0
                           ? 1e3 * static_cast<double>(b.run.summary.sessions) / b.wall_ms
                           : 0.0;

  std::string jsonl_reference;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    for (const std::size_t threads : {1, 2, 4}) {
      std::ostringstream os;
      ct::JsonlWriter writer(os, "<bench>");
      ct::JsonlSessionSink sink(writer);
      auto cfg = base().with_shards(shards).with_threads(threads);
      const ct::CityRun r = ct::run_city(cfg, &sink);
      writer.close();
      if (r.checksum != b.run.checksum) b.deterministic = false;
      if (jsonl_reference.empty())
        jsonl_reference = os.str();
      else if (os.str() != jsonl_reference)
        b.deterministic = false;
    }
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 50;
  std::size_t city_grid = 3;
  std::size_t city_clients = 4;
  std::string out_path = "BENCH_runtime.json";
  std::string metrics_path;
  int reps = 3;
  StreamCli stream_cli;
  Cli cli("bench_runtime",
          "Wall-time the standard evaluation run at 1/2/4/N threads with "
          "bit-exactness checksums, plus hot micro-kernel timings, the "
          "stream_relay element-graph session, and the sharded city "
          "simulation.");
  cli.add_option("--clients", &clients, "client locations per floor plan")
      .add_option("--out", &out_path, "output JSON path")
      .add_option("--reps", &reps, "best-of repetitions for the kernel timings")
      .add_option("--metrics", &metrics_path,
                  "record telemetry, cross-check it across thread counts, and "
                  "write the 1-thread ff-metrics-v1 snapshot here")
      .add_option("--city-grid", &city_grid,
                  "city simulation grid dimension (N x N AP+relay sites)")
      .add_option("--city-clients", &city_clients,
                  "client locations per city site");
  // --threads here scopes to the stream session; the experiment sweep is
  // fixed at 1/2/4/N by design.
  stream_cli.register_options(cli, /*with_metrics_option=*/false);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  if (!stream_cli.validate()) return 2;
  const bool with_metrics = !metrics_path.empty();

  const std::size_t hw_threads = ff::default_thread_count();
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw_threads > 4) thread_counts.push_back(hw_threads);

  std::printf("bench_runtime: standard_run(%zu) at 1/2/4/N threads "
              "(hardware default: %zu, kernel ISA: %s)\n\n",
              clients, hw_threads, dsp::kernels::isa_name());

  std::vector<ExperimentTiming> timings;
  for (const std::size_t t : thread_counts)
    timings.push_back(time_experiment(clients, t, with_metrics));

  bool deterministic = true;
  for (const auto& t : timings)
    if (t.checksum != timings.front().checksum) deterministic = false;

  // Metrics determinism: identical snapshot bytes (timer values aside) no
  // matter how the work was sharded. Vacuously true when metrics are off.
  bool metrics_deterministic = true;
  for (const auto& t : timings)
    if (t.metrics_canonical != timings.front().metrics_canonical)
      metrics_deterministic = false;

  Table table({"threads", "wall (ms)", "speedup vs 1T", "checksum"});
  char cs[32];
  for (const auto& t : timings) {
    std::snprintf(cs, sizeof(cs), "%016llx", static_cast<unsigned long long>(t.checksum));
    table.row({std::to_string(t.threads), Table::num(t.wall_ms, 1),
               Table::num(timings.front().wall_ms / t.wall_ms, 2), cs});
  }
  table.print();
  std::printf("\nresults bit-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
  if (with_metrics)
    std::printf("metrics snapshots byte-identical across thread counts: %s\n",
                metrics_deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
  std::printf("\n");

  auto kernels = time_kernels(reps);

  // ---- stream_relay: the streaming runtime pushing a full relay session.
  const StreamSetup setup = make_stream_setup(stream_cli.duration_s());
  StreamRun stream_run;
  const double stream_ms = time_best_ms(
      [&] {
        stream_run = run_stream_once(setup, stream_cli.block_size(),
                                     stream_cli.backpressure(), stream_cli.threads());
      },
      reps);
  kernels.push_back(
      {"stream_relay", stream_ms, static_cast<std::size_t>(stream_run.blocks)});

  // ---- stream_relay_throughput: the same session under the pipeline
  // scheduler (pinned per-core chains over SPSC rings). threads = 0 lets
  // the chain count follow the host, so this row scales on multi-core
  // machines; the checksum cross-check below still holds it to the
  // reference output bit for bit.
  StreamExec texec;
  texec.throughput = true;
  texec.batch_size = stream_cli.batch_size();
  texec.pin_cores = stream_cli.pin_cores();
  StreamRun stream_tp_run;
  const double stream_tp_ms = time_best_ms(
      [&] {
        stream_tp_run = run_stream_once(setup, stream_cli.block_size(),
                                        stream_cli.backpressure(), /*threads=*/0, texec);
      },
      reps);
  kernels.push_back({"stream_relay_throughput", stream_tp_ms,
                     static_cast<std::size_t>(stream_tp_run.blocks)});

  // ---- stream_relay_f32 (v5): the same session on the float32 kernel
  // family (precision=f32 on the channels and the relay pipeline). Unlike
  // the thread-scaling rows, this speedup comes from SIMD width, so it is
  // meaningful even on a single visible CPU — no skipped_reason branch.
  const StreamSetup setup_f32 =
      make_stream_setup(stream_cli.duration_s(), ff::Precision::kF32);
  StreamRun stream_f32_run;
  const double stream_f32_ms = time_best_ms(
      [&] {
        stream_f32_run = run_stream_once(setup_f32, stream_cli.block_size(),
                                         stream_cli.backpressure(), stream_cli.threads());
      },
      reps);
  kernels.push_back({"stream_relay_f32", stream_f32_ms,
                     static_cast<std::size_t>(stream_f32_run.blocks)});

  // The runtime's invariance contract: the output stream is bit-identical
  // for any block size and thread count (tests/stream_test.cpp proves it on
  // synthetic graphs; this re-proves it on the full relay session). The
  // variant grid deliberately spans degenerate (1), odd (7), and large
  // (4096) block sizes against 1/2/4 threads — the shapes where a
  // vectorized block path could diverge from the per-sample reference if
  // it re-associated anything.
  bool stream_deterministic = stream_tp_run.checksum == stream_run.checksum &&
                              stream_tp_run.samples == stream_run.samples;
  const struct { std::size_t block_size, threads; } variants[] = {
      {1, 1},    {7, 2},    {64, 1},   {64, 4},
      {4096, 1}, {4096, 2}, {4096, 4}, {stream_cli.block_size(), 4}};
  for (const auto& v : variants) {
    const StreamRun r =
        run_stream_once(setup, v.block_size, stream_cli.backpressure(), v.threads);
    if (r.checksum != stream_run.checksum || r.samples != stream_run.samples)
      stream_deterministic = false;
  }
  // Throughput-mode grid: partitionings and batch sizes that exercise ring
  // traffic (2 and 4 chains) and batching (1 and 16 blocks per transfer).
  const struct { std::size_t chains, batch; } tp_variants[] = {
      {1, 1}, {2, 4}, {4, 16}};
  for (const auto& v : tp_variants) {
    StreamExec e;
    e.throughput = true;
    e.batch_size = v.batch;
    const StreamRun r = run_stream_once(setup, stream_cli.block_size(),
                                        stream_cli.backpressure(), v.chains, e);
    if (r.checksum != stream_run.checksum || r.samples != stream_run.samples)
      stream_deterministic = false;
  }

  // The f32 family holds the same invariance contract around its OWN
  // checksum (a different constant from the f64 one — the families never
  // mix): reference rounds across block sizes and threads, plus the
  // pipeline scheduler, must all reproduce stream_f32_run bit for bit.
  bool stream_f32_deterministic = stream_f32_run.samples == stream_run.samples;
  const struct { std::size_t block_size, threads; } f32_variants[] = {
      {1, 1}, {7, 2}, {4096, 4}};
  for (const auto& v : f32_variants) {
    const StreamRun r = run_stream_once(setup_f32, v.block_size,
                                        stream_cli.backpressure(), v.threads);
    if (r.checksum != stream_f32_run.checksum || r.samples != stream_f32_run.samples)
      stream_f32_deterministic = false;
  }
  {
    StreamExec e;
    e.throughput = true;
    e.batch_size = 4;
    const StreamRun r = run_stream_once(setup_f32, stream_cli.block_size(),
                                        stream_cli.backpressure(), /*threads=*/2, e);
    if (r.checksum != stream_f32_run.checksum || r.samples != stream_f32_run.samples)
      stream_f32_deterministic = false;
  }

  // The pipeline speedup claim is only testable when the host actually has
  // cores to pipeline across; on a 1-CPU container the chains time-slice
  // one core and the honest answer is "skipped", not a meaningless ratio.
  const unsigned hw_concurrency = std::thread::hardware_concurrency();
  const double tp_speedup = stream_ms / stream_tp_ms;
  std::string tp_skipped_reason;
  if (hw_concurrency <= 1)
    tp_skipped_reason =
        "single visible CPU: pipeline chains time-slice one core, "
        "speedup-vs-reference not meaningful";

  Table ktable({"kernel", "batch", "best-of (ms)", "us/op"});
  for (const auto& k : kernels)
    ktable.row({k.name, std::to_string(k.items), Table::num(k.wall_ms, 3),
                Table::num(1e3 * k.wall_ms / static_cast<double>(k.items), 3)});
  ktable.print();

  const double stream_msps = static_cast<double>(stream_run.samples) / (1e3 * stream_ms);
  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(stream_run.checksum));
  std::printf("\nstream_relay: %llu samples in %llu blocks of %zu "
              "(%.1f Msamples/s, %.2f us/block, checksum %s)\n",
              static_cast<unsigned long long>(stream_run.samples),
              static_cast<unsigned long long>(stream_run.blocks),
              stream_cli.block_size(), stream_msps,
              1e3 * stream_ms / static_cast<double>(stream_run.blocks), cs);
  const double stream_tp_msps =
      static_cast<double>(stream_tp_run.samples) / (1e3 * stream_tp_ms);
  std::printf("stream_relay_throughput: %.1f Msamples/s at batch %zu "
              "(auto chains, %u visible CPUs)",
              stream_tp_msps, stream_cli.batch_size(), hw_concurrency);
  if (tp_skipped_reason.empty())
    std::printf(", %.2fx vs reference\n", tp_speedup);
  else
    std::printf(", speedup check skipped: %s\n", tp_skipped_reason.c_str());
  std::printf("stream output bit-identical across block sizes, threads, "
              "modes and batch sizes: %s\n",
              stream_deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
  const double stream_f32_msps =
      static_cast<double>(stream_f32_run.samples) / (1e3 * stream_f32_ms);
  const double f32_speedup = stream_f32_ms > 0.0 ? stream_ms / stream_f32_ms : 0.0;
  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(stream_f32_run.checksum));
  std::printf("stream_relay_f32: %.1f Msamples/s (%.2fx vs f64, own checksum %s)\n",
              stream_f32_msps, f32_speedup, cs);
  std::printf("f32 stream output bit-identical across block sizes, threads "
              "and modes: %s\n",
              stream_f32_deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  // ---- city: the sharded many-relay simulation. Like the pipeline row,
  // the parallel-speedup claim needs real cores; the checksum/JSONL
  // determinism grid is meaningful (and enforced) everywhere.
  MetricsRegistry city_registry;
  const CityBench city = run_city_bench(city_grid, city_clients, &city_registry);
  const double city_speedup = city.wall_ms > 0.0 ? city.wall_ms_1t / city.wall_ms : 0.0;
  std::string city_skipped_reason;
  if (hw_concurrency <= 1)
    city_skipped_reason =
        "single visible CPU: shard workers time-slice one core, "
        "speedup-vs-1t not meaningful";
  const auto city_cdf = city_registry.histogram_cdf("city.session_mbps.ff", 10);

  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(city.run.checksum));
  std::printf("\ncity %zux%zu (%zu sessions): %.0f client-sessions/sec, "
              "FF %.2fx HD mesh city-wide (%.2fx median session), checksum %s",
              city_grid, city_grid, city.run.summary.sessions,
              city.sessions_per_sec, city.run.summary.gain_vs_hd_mesh,
              city.run.summary.median_gain_vs_hd_mesh, cs);
  if (city_skipped_reason.empty())
    std::printf(", %.2fx vs 1T\n", city_speedup);
  else
    std::printf(", speedup check skipped: %s\n", city_skipped_reason.c_str());
  std::printf("city results and JSONL bytes bit-identical across shard and "
              "thread counts: %s\n",
              city.deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  JsonWriter json;
  json.begin_object();
  json.key("schema").value(std::string("ff-bench-runtime-v5"));
  json.key("clients_per_plan").value(clients);
  json.key("hardware_threads").value(hw_threads);
  // v3: the CPUs actually visible to this process — perf rows that depend
  // on real parallelism carry a "skipped_reason" instead of a ratio when
  // this is 1 (single-core CI container).
  json.key("hardware_concurrency").value(static_cast<std::size_t>(hw_concurrency));
  // v2: the build/runtime configuration a perf number is meaningless
  // without — which kernel ISA dispatched, whether SIMD paths were compiled
  // (FF_SIMD), whether the build targeted the host CPU (FF_NATIVE).
  json.key("isa").value(std::string(dsp::kernels::isa_name()));
  json.key("ff_simd").value(dsp::kernels::simd_compiled());
#ifdef FF_NATIVE_ENABLED
  json.key("ff_native").value(true);
#else
  json.key("ff_native").value(false);
#endif
  json.key("deterministic").value(deterministic);
  json.key("metrics_enabled").value(with_metrics);
  json.key("metrics_deterministic").value(metrics_deterministic);
  json.key("experiment");
  json.begin_array();
  for (const auto& t : timings) {
    std::snprintf(cs, sizeof(cs), "%016llx", static_cast<unsigned long long>(t.checksum));
    json.begin_object();
    json.key("threads").value(t.threads);
    json.key("wall_ms").value(t.wall_ms);
    json.key("speedup_vs_1t").value(timings.front().wall_ms / t.wall_ms);
    json.key("checksum").value(std::string(cs));
    json.end_object();
  }
  json.end_array();
  json.key("kernels");
  json.begin_array();
  for (const auto& k : kernels) {
    json.begin_object();
    json.key("name").value(k.name);
    json.key("batch").value(k.items);
    json.key("best_of_ms").value(k.wall_ms);
    json.key("us_per_op").value(1e3 * k.wall_ms / static_cast<double>(k.items));
    json.end_object();
  }
  json.end_array();
  json.key("stream");
  json.begin_object();
  json.key("block_size").value(stream_cli.block_size());
  json.key("backpressure_blocks").value(stream_cli.backpressure());
  json.key("threads").value(stream_cli.threads());
  json.key("duration_s").value(stream_cli.duration_s());
  json.key("samples").value(static_cast<std::size_t>(stream_run.samples));
  json.key("blocks").value(static_cast<std::size_t>(stream_run.blocks));
  json.key("best_of_ms").value(stream_ms);
  json.key("samples_per_sec").value(1e6 * stream_msps);
  json.key("us_per_block").value(1e3 * stream_ms / static_cast<double>(stream_run.blocks));
  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(stream_run.checksum));
  json.key("checksum").value(std::string(cs));
  json.key("deterministic").value(stream_deterministic);
  json.key("mode").value(std::string("reference"));
  json.end_object();
  // v3: the same session under the pipeline scheduler. `chains` = 0 means
  // auto (one per visible core); speedup_vs_reference is replaced by
  // skipped_reason on hosts where it cannot mean anything.
  json.key("stream_throughput");
  json.begin_object();
  json.key("mode").value(std::string("throughput"));
  json.key("block_size").value(stream_cli.block_size());
  json.key("backpressure_blocks").value(stream_cli.backpressure());
  json.key("batch_size").value(stream_cli.batch_size());
  json.key("pinned").value(stream_cli.pin_cores());
  json.key("chains").value(std::size_t{0});
  json.key("samples").value(static_cast<std::size_t>(stream_tp_run.samples));
  json.key("blocks").value(static_cast<std::size_t>(stream_tp_run.blocks));
  json.key("best_of_ms").value(stream_tp_ms);
  json.key("samples_per_sec").value(1e6 * stream_tp_msps);
  json.key("us_per_block").value(1e3 * stream_tp_ms /
                                 static_cast<double>(stream_tp_run.blocks));
  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(stream_tp_run.checksum));
  json.key("checksum").value(std::string(cs));
  if (tp_skipped_reason.empty())
    json.key("speedup_vs_reference").value(tp_speedup);
  else
    json.key("skipped_reason").value(tp_skipped_reason);
  json.end_object();
  // v5: the same session on the float32 kernel family. Its checksum is a
  // different constant from stream.checksum by design (own pinned family,
  // docs/PERFORMANCE.md); speedup_f32_vs_f64 is a SIMD-width gain and is
  // therefore reported unconditionally — it does not need spare cores.
  json.key("stream_f32");
  json.begin_object();
  json.key("mode").value(std::string("reference"));
  json.key("precision").value(std::string("f32"));
  json.key("block_size").value(stream_cli.block_size());
  json.key("backpressure_blocks").value(stream_cli.backpressure());
  json.key("threads").value(stream_cli.threads());
  json.key("samples").value(static_cast<std::size_t>(stream_f32_run.samples));
  json.key("blocks").value(static_cast<std::size_t>(stream_f32_run.blocks));
  json.key("best_of_ms").value(stream_f32_ms);
  json.key("samples_per_sec").value(1e6 * stream_f32_msps);
  json.key("us_per_block").value(1e3 * stream_f32_ms /
                                 static_cast<double>(stream_f32_run.blocks));
  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(stream_f32_run.checksum));
  json.key("checksum").value(std::string(cs));
  json.key("deterministic").value(stream_f32_deterministic);
  json.key("speedup_f32_vs_f64").value(f32_speedup);
  json.end_object();
  // v4: the sharded many-relay city simulation — deployment-scale
  // throughput under inter-site interference, the whole-city FF session
  // CDF, and an honest parallel-speedup field following the same
  // speedup-XOR-skipped_reason rule as stream_throughput.
  json.key("city");
  json.begin_object();
  json.key("grid").value(city_grid);
  json.key("clients_per_site").value(city_clients);
  json.key("sites").value(city.run.summary.sites);
  json.key("sessions").value(city.run.summary.sessions);
  json.key("shards").value(city.run.summary.shards);
  json.key("wall_ms_1t").value(city.wall_ms_1t);
  json.key("wall_ms").value(city.wall_ms);
  json.key("client_sessions_per_sec").value(city.sessions_per_sec);
  json.key("ff_total_mbps").value(city.run.summary.ff_total_mbps);
  json.key("hd_mesh_total_mbps").value(city.run.summary.hd_mesh_total_mbps);
  json.key("direct_total_mbps").value(city.run.summary.direct_total_mbps);
  json.key("gain_vs_hd_mesh").value(city.run.summary.gain_vs_hd_mesh);
  json.key("median_gain_vs_hd_mesh").value(city.run.summary.median_gain_vs_hd_mesh);
  json.key("throughput_cdf_mbps");
  json.begin_array();
  for (const auto& pt : city_cdf) {
    json.begin_object();
    json.key("p").value(pt.prob);
    json.key("mbps").value(pt.value);
    json.end_object();
  }
  json.end_array();
  std::snprintf(cs, sizeof(cs), "%016llx",
                static_cast<unsigned long long>(city.run.checksum));
  json.key("checksum").value(std::string(cs));
  json.key("deterministic").value(city.deterministic);
  if (city_skipped_reason.empty())
    json.key("speedup_vs_1t").value(city_speedup);
  else
    json.key("skipped_reason").value(city_skipped_reason);
  json.end_object();
  json.end_object();

  if (!json.write_file(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (with_metrics) {
    std::ofstream mf(metrics_path, std::ios::binary);
    if (mf) mf << timings.front().metrics_full;
    if (!mf) {
      std::cerr << "failed to write " << metrics_path << "\n";
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return deterministic && metrics_deterministic && stream_deterministic &&
                 stream_f32_deterministic && city.deterministic
             ? 0
             : 1;
}
