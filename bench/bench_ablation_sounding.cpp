// Ablation: the sounding cadence (Sec. 4.2 fixes it at 50 ms).
//
// The constructive filter is only as good as the relay's channel knowledge;
// with drifting channels, slower sounding means staler filters and smaller
// gains — while sounding too fast burns airtime for nothing. The sweep runs
// the full packet-level network at several cadences and drift speeds.
#include "bench_common.hpp"
#include "net/network.hpp"

int main() {
  using namespace ffbench;
  print_banner("Ablation — sounding cadence vs channel drift (Sec. 4.2's 50 ms)");

  Table t({"coherence time (s)", "sounding (ms)", "DL gain", "UL gain",
           "relay assisted (%)"});
  for (const double coherence : {0.5, 0.15, 0.05}) {
    for (const double interval_ms : {10.0, 50.0, 200.0, 500.0}) {
      net::NetworkConfig cfg;
      cfg.n_clients = 4;
      cfg.duration_s = 1.5;
      cfg.packet_interval_s = 2e-3;
      cfg.coherence_time_s = coherence;
      cfg.sounding_interval_s = interval_ms * 1e-3;
      cfg.seed = 99;
      const auto r = net::run_network(cfg);
      const double assisted =
          100.0 * static_cast<double>(r.relay_forwards) /
          static_cast<double>(std::max<std::size_t>(r.relay_forwards + r.relay_silences, 1));
      t.row({Table::num(coherence, 2), Table::num(interval_ms, 0),
             Table::num(r.total_dl_gain(), 2), Table::num(r.total_ul_gain(), 2),
             Table::num(assisted, 0)});
    }
  }
  t.print();
  std::printf("\nReading: at pedestrian-speed drift (Tc ~0.5 s) the paper's 50 ms cadence\n"
              "is comfortably fast; under fast drift, slow sounding leaves the relay\n"
              "with stale filters (lower gains) or silent (stale-book packets).\n");
  return 0;
}
