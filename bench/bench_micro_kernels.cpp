// Google-benchmark micro kernels: throughput of the sample-level primitives
// on the relay's critical path (how many Msps each stage sustains in this
// software model).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "fullduplex/digital_canceller.hpp"
#include "phy/fec.hpp"
#include "phy/frame.hpp"
#include "relay/cnf_design.hpp"
#include "relay/pipeline.hpp"

namespace {

using namespace ff;

void BM_Fft64(benchmark::State& state) {
  const dsp::FftPlan plan(64);
  Rng rng(1);
  CVec x(64);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    plan.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Fft64);

void BM_ForwardPipelinePush(benchmark::State& state) {
  relay::PipelineConfig cfg;
  cfg.cfo_hz = 30e3;
  cfg.prefilter = CVec(4, Complex{0.5, 0.1});
  cfg.gain_db = 80.0;
  relay::ForwardPipeline pipe(cfg);
  Rng rng(2);
  const Complex s = rng.cgaussian();
  for (auto _ : state) benchmark::DoNotOptimize(pipe.push(s));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardPipelinePush);

void BM_CausalCanceller120Taps(benchmark::State& state) {
  Rng rng(3);
  CVec taps(120);
  for (auto& t : taps) t = rng.cgaussian(1e-6);
  dsp::FirFilter fir(taps);
  const Complex s = rng.cgaussian();
  for (auto _ : state) benchmark::DoNotOptimize(fir.push(s));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CausalCanceller120Taps);

// ---- block processing: allocating process() vs in-place process_into().
// Same arithmetic either way; the delta is the per-block allocation, which
// is what the streaming runtime's block path avoids.

void BM_FirProcessBlock(benchmark::State& state) {
  Rng rng(9);
  CVec taps(32);
  for (auto& t : taps) t = rng.cgaussian(1e-3);
  dsp::FirFilter fir(taps);
  CVec x(256);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    CVec y = fir.process(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirProcessBlock);

void BM_FirProcessIntoBlock(benchmark::State& state) {
  Rng rng(9);
  CVec taps(32);
  for (auto& t : taps) t = rng.cgaussian(1e-3);
  dsp::FirFilter fir(taps);
  CVec x(256);
  CVec y(256);  // preallocated once: the streaming runtime's block path
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    fir.process_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirProcessIntoBlock);

void BM_PipelineProcessBlock(benchmark::State& state) {
  relay::PipelineConfig cfg;
  cfg.cfo_hz = 30e3;
  cfg.prefilter = CVec(4, Complex{0.5, 0.1});
  cfg.gain_db = 80.0;
  relay::ForwardPipeline pipe(cfg);
  Rng rng(10);
  CVec x(256);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    CVec y = pipe.process(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_PipelineProcessBlock);

void BM_PipelineProcessIntoBlock(benchmark::State& state) {
  relay::PipelineConfig cfg;
  cfg.cfo_hz = 30e3;
  cfg.prefilter = CVec(4, Complex{0.5, 0.1});
  cfg.gain_db = 80.0;
  relay::ForwardPipeline pipe(cfg);
  Rng rng(10);
  CVec x(256);
  CVec y(256);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    pipe.process_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_PipelineProcessIntoBlock);

void BM_DigitalCancellerTraining(benchmark::State& state) {
  Rng rng(4);
  const std::size_t n = 8000;
  CVec tx(n), rx(n);
  for (auto& v : tx) v = rng.cgaussian();
  for (std::size_t i = 0; i < n; ++i) rx[i] = Complex{0.01, 0.0} * tx[i];
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::estimate_fir_ls_fast(tx, rx, 120));
  }
}
BENCHMARK(BM_DigitalCancellerTraining);

void BM_CnfSisoDesign(benchmark::State& state) {
  Rng rng(5);
  CVec h_sd(56), h_sr(56), h_rd(56);
  for (std::size_t i = 0; i < 56; ++i) {
    h_sd[i] = rng.cgaussian();
    h_sr[i] = rng.cgaussian();
    h_rd[i] = rng.cgaussian();
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(relay::cnf_siso_ideal(h_sd, h_sr, h_rd));
}
BENCHMARK(BM_CnfSisoDesign);

void BM_CnfMimoDesignPerSubcarrier(benchmark::State& state) {
  Rng rng(6);
  linalg::Matrix h_sd(2, 2), h_sr(2, 2), h_rd(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      h_sd(i, j) = rng.cgaussian();
      h_sr(i, j) = rng.cgaussian();
      h_rd(i, j) = rng.cgaussian();
    }
  std::vector<double> warm;
  for (auto _ : state) {
    const auto r = relay::cnf_mimo_design(h_sd, h_sr, h_rd, 1.0,
                                          warm.empty() ? nullptr : &warm);
    warm = r.params;
    benchmark::DoNotOptimize(warm.data());
  }
}
BENCHMARK(BM_CnfMimoDesignPerSubcarrier);

void BM_ViterbiDecode(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::uint8_t> msg(200);
  for (auto& b : msg) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto coded = phy::convolutional_encode(msg, phy::CodeRate::R1_2);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? -4.0 : 4.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(phy::viterbi_decode(llrs, phy::CodeRate::R1_2, msg.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(msg.size()));
}
BENCHMARK(BM_ViterbiDecode);

void BM_PacketDecode(benchmark::State& state) {
  const phy::OfdmParams params;
  const phy::Transmitter tx(params);
  const phy::Receiver rx(params);
  Rng rng(8);
  std::vector<std::uint8_t> payload(400);
  for (auto& b : payload) b = rng.bernoulli(0.5) ? 1 : 0;
  const CVec pkt = tx.modulate(payload, {.mcs_index = 4});
  for (auto _ : state) benchmark::DoNotOptimize(rx.receive(pkt));
}
BENCHMARK(BM_PacketDecode);

}  // namespace

BENCHMARK_MAIN();
